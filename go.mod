module safemem

go 1.22
