#!/bin/sh
# coverage_floor.sh PACKAGE THRESHOLD [PACKAGE THRESHOLD]... — fail if any
# package's total statement coverage drops below its THRESHOLD percent.
#
#   ./scripts/coverage_floor.sh ./internal/sampletool 85 ./internal/fleet 80
set -eu

[ $# -ge 2 ] || { echo "usage: coverage_floor.sh PACKAGE THRESHOLD [PACKAGE THRESHOLD]..." >&2; exit 2; }
[ $(($# % 2)) -eq 0 ] || { echo "coverage_floor: arguments must come in PACKAGE THRESHOLD pairs" >&2; exit 2; }

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

status=0
while [ $# -ge 2 ]; do
    pkg=$1
    floor=$2
    shift 2

    go test -count=1 -coverprofile="$profile" "$pkg" >/dev/null

    total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
    if [ -z "$total" ]; then
        echo "coverage_floor: no total in cover profile for $pkg" >&2
        exit 2
    fi

    ok=$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t + 0 >= f + 0) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "coverage_floor: $pkg at ${total}% statement coverage, floor is ${floor}%" >&2
        status=1
    else
        echo "coverage_floor: $pkg at ${total}% (floor ${floor}%)"
    fi
done
exit $status
