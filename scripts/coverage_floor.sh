#!/bin/sh
# coverage_floor.sh PACKAGE THRESHOLD — fail if the package's total
# statement coverage drops below THRESHOLD percent.
#
#   ./scripts/coverage_floor.sh ./internal/sampletool 85
set -eu

pkg=${1:?usage: coverage_floor.sh PACKAGE THRESHOLD}
floor=${2:?usage: coverage_floor.sh PACKAGE THRESHOLD}

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -count=1 -coverprofile="$profile" "$pkg" >/dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "coverage_floor: no total in cover profile for $pkg" >&2
    exit 2
fi

ok=$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "coverage_floor: $pkg at ${total}% statement coverage, floor is ${floor}%" >&2
    exit 1
fi
echo "coverage_floor: $pkg at ${total}% (floor ${floor}%)"
