#!/bin/sh
# bench_compare.sh OLD.json NEW.json — render a per-row delta table between
# two benchmark baselines of the same kind:
#
#   BENCH_throughput.json / BENCH_fleet.json   host ns/instr per app
#   BENCH_campaign.json                        warm scenarios/sec per tool,
#                                              tail rate, fleet jobs/sec
#
# The kind is detected from the file contents and must match on both sides.
# The table informs a human reviewing a perf change; the pass/fail
# regression gate is `make bench-check`. Exits non-zero on usage errors and
# on missing, unreadable, malformed or mismatched baselines.
set -eu

[ $# -eq 2 ] || { echo "usage: bench_compare.sh OLD.json NEW.json" >&2; exit 2; }
old=$1
new=$2
[ -r "$old" ] || { echo "bench_compare: cannot read $old" >&2; exit 2; }
[ -r "$new" ] || { echo "bench_compare: cannot read $new" >&2; exit 2; }

# The baselines are written by json.MarshalIndent, one field per line, so a
# line-wise scan is reliable.
kind_of() {
    if grep -q '"warm_per_sec"' "$1"; then
        echo campaign
    elif grep -q '"host_ns_per_instr"' "$1"; then
        echo hostns
    else
        echo unknown
    fi
}

okind=$(kind_of "$old")
nkind=$(kind_of "$new")
[ "$okind" != unknown ] || { echo "bench_compare: $old is not a recognised baseline" >&2; exit 2; }
[ "$nkind" != unknown ] || { echo "bench_compare: $new is not a recognised baseline" >&2; exit 2; }
[ "$okind" = "$nkind" ] || { echo "bench_compare: kind mismatch: $old is $okind, $new is $nkind" >&2; exit 2; }

# Throughput/fleet rows: remember the row's "app", emit on its
# "host_ns_per_instr". The trailing "total" object carries app TOTAL.
rates() {
    awk -F'"' '
        /"app":/               { app = $4 }
        /"host_ns_per_instr":/ { v = $3; gsub(/[^0-9.eE+-]/, "", v); print app, v }
    ' "$1"
}

# Campaign rows: remember the row's "tool" (the total row carries TOTAL),
# emit its warm and tail-warm scenarios/sec, plus the fleet jobs/sec
# aggregate as pseudo-row FLEET.
crates() {
    awk -F'"' '
        function num(s) { gsub(/[^0-9.eE+-]/, "", s); return s }
        /"tool":/                    { tool = $4 }
        /"warm_per_sec":/            { warm[tool] = num($3) }
        /"tail_warm_per_sec":/       { tail[tool] = num($3); order[++n] = tool }
        /"fleet_warm_jobs_per_sec":/ { warm["FLEET"] = num($3); tail["FLEET"] = ""; order[++n] = "FLEET" }
        END {
            for (i = 1; i <= n; i++) {
                t = order[i]
                print t, warm[t], tail[t]
            }
        }
    ' "$1"
}

if [ "$okind" = hostns ]; then
    {
        rates "$old" | sed 's/^/old /'
        rates "$new" | sed 's/^/new /'
    } | awk -v oldf="$old" -v newf="$new" '
        {
            if (!($2 in seen)) { order[++n] = $2; seen[$2] = 1 }
            if ($1 == "old") o[$2] = $3; else w[$2] = $3
        }
        END {
            if (n == 0) { print "bench_compare: no rows found" > "/dev/stderr"; exit 2 }
            printf "host ns/instr: %s -> %s\n", oldf, newf
            printf "%-12s %12s %12s %9s\n", "app", "old", "new", "delta"
            for (i = 1; i <= n; i++) {
                a = order[i]
                if ((a in o) && (a in w) && o[a] + 0 > 0)
                    printf "%-12s %12.3f %12.3f %+8.1f%%\n", a, o[a], w[a], (w[a] / o[a] - 1) * 100
                else if (a in o)
                    printf "%-12s %12.3f %12s %9s\n", a, o[a], "-", "gone"
                else
                    printf "%-12s %12s %12.3f %9s\n", a, "-", w[a], "new"
            }
        }
    '
else
    {
        crates "$old" | sed 's/^/old /'
        crates "$new" | sed 's/^/new /'
    } | awk -v oldf="$old" -v newf="$new" '
        function delta(a, b) {
            if (a + 0 > 0 && b != "") return sprintf("%+.1f%%", (b / a - 1) * 100)
            return "-"
        }
        {
            if (!($2 in seen)) { order[++n] = $2; seen[$2] = 1 }
            if ($1 == "old") { ow[$2] = $3; ot[$2] = $4 } else { nw[$2] = $3; nt[$2] = $4 }
        }
        END {
            if (n == 0) { print "bench_compare: no rows found" > "/dev/stderr"; exit 2 }
            printf "warm scenarios/sec (FLEET: jobs/sec): %s -> %s\n", oldf, newf
            printf "%-8s %10s %10s %9s %11s %11s %9s\n", "tool", "old", "new", "delta", "old tail", "new tail", "delta"
            for (i = 1; i <= n; i++) {
                t = order[i]
                if (!(t in ow)) { printf "%-8s %10s %10.1f %9s\n", t, "-", nw[t], "new"; continue }
                if (!(t in nw)) { printf "%-8s %10.1f %10s %9s\n", t, ow[t], "-", "gone"; continue }
                if (ot[t] != "" && nt[t] != "")
                    printf "%-8s %10.1f %10.1f %9s %11.1f %11.1f %9s\n", t, ow[t], nw[t], delta(ow[t], nw[t]), ot[t], nt[t], delta(ot[t], nt[t])
                else
                    printf "%-8s %10.1f %10.1f %9s\n", t, ow[t], nw[t], delta(ow[t], nw[t])
            }
        }
    '
fi
