#!/bin/sh
# bench_compare.sh OLD.json NEW.json — render a per-app host-ns/instr delta
# table between two BENCH_throughput.json baselines (as written by
# `safemem-bench -experiment throughput`). The TOTAL row compares the
# aggregates. The table informs a human reviewing a perf change; the
# pass/fail regression gate is `make bench-check`. Exits non-zero only on
# usage or unreadable/empty input.
set -eu

[ $# -eq 2 ] || { echo "usage: bench_compare.sh OLD.json NEW.json" >&2; exit 2; }
old=$1
new=$2
[ -r "$old" ] || { echo "bench_compare: cannot read $old" >&2; exit 2; }
[ -r "$new" ] || { echo "bench_compare: cannot read $new" >&2; exit 2; }

# The baselines are written by json.MarshalIndent, one field per line, so a
# line-wise scan is reliable: remember the row's "app", emit on its
# "host_ns_per_instr". The trailing "total" object carries app TOTAL.
rates() {
    awk -F'"' '
        /"app":/               { app = $4 }
        /"host_ns_per_instr":/ { v = $3; gsub(/[^0-9.eE+-]/, "", v); print app, v }
    ' "$1"
}

{
    rates "$old" | sed 's/^/old /'
    rates "$new" | sed 's/^/new /'
} | awk -v oldf="$old" -v newf="$new" '
    {
        if (!($2 in seen)) { order[++n] = $2; seen[$2] = 1 }
        if ($1 == "old") o[$2] = $3; else w[$2] = $3
    }
    END {
        if (n == 0) { print "bench_compare: no rows found" > "/dev/stderr"; exit 2 }
        printf "host ns/instr: %s -> %s\n", oldf, newf
        printf "%-12s %12s %12s %9s\n", "app", "old", "new", "delta"
        for (i = 1; i <= n; i++) {
            a = order[i]
            if ((a in o) && (a in w) && o[a] + 0 > 0)
                printf "%-12s %12.3f %12.3f %+8.1f%%\n", a, o[a], w[a], (w[a] / o[a] - 1) * 100
            else if (a in o)
                printf "%-12s %12.3f %12s %9s\n", a, o[a], "-", "gone"
            else
                printf "%-12s %12s %12.3f %9s\n", a, "-", w[a], "new"
        }
    }
'
