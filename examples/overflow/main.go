// Overflow: buffer overflow and underflow detection with ECC-guarded pads
// (Section 4), plus the space-overhead comparison against page-protection
// guards (Table 4 in miniature).
package main

import (
	"errors"
	"fmt"
	"log"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/pageprot"
	"safemem/internal/vm"
)

func main() {
	m := machine.MustNew(machine.DefaultConfig())
	alloc := heap.MustNew(m, safemem.HeapOptions(true))
	opts := safemem.DefaultOptions()
	opts.DetectLeaks = false
	opts.StopOnBug = true // pause at the first corruption, like the paper's gdb attach
	tool, err := safemem.Attach(m, alloc, opts)
	if err != nil {
		log.Fatal(err)
	}

	// A parser with a classic off-by-N: it copies a name into a
	// fixed-size record without checking the length.
	record, err := alloc.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	parse := func(name []byte) error {
		return m.Run(func() error {
			for i, c := range name {
				m.Store8(record+vm.VAddr(i), c) // no bounds check
			}
			return nil
		})
	}

	fmt.Println("parsing a well-formed name …")
	if err := parse([]byte("well-formed-name")); err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	fmt.Println("  ok, no reports")

	fmt.Println("parsing a crafted 80-byte name …")
	longName := make([]byte, 80)
	for i := range longName {
		longName[i] = 'A'
	}
	runErr := parse(longName)
	var abort *machine.ProgramAbort
	if !errors.As(runErr, &abort) {
		log.Fatalf("overflow not caught: %v", runErr)
	}
	fmt.Printf("  program paused: %v\n", abort)
	for _, r := range tool.Reports() {
		fmt.Printf("  report: %s\n", r)
		if r.AccessWrite {
			fmt.Println("  (the faulting access was a store, caught on its write-allocate fill)")
		}
	}

	// Underflow, too: one byte before the buffer is the leading guard.
	opts2 := safemem.DefaultOptions()
	opts2.DetectLeaks = false
	m2 := machine.MustNew(machine.Config{MemBytes: 8 << 20})
	alloc2 := heap.MustNew(m2, safemem.HeapOptions(true))
	tool2, err := safemem.Attach(m2, alloc2, opts2)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := alloc2.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	_ = m2.Load8(p2 - 1)
	fmt.Println("\nunderflow demo:")
	for _, r := range tool2.Reports() {
		fmt.Printf("  report: %s\n", r)
	}

	// Space overhead: the same 200-allocation trace guarded by ECC lines
	// versus guard pages.
	m3 := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	eccHeap := heap.MustNew(m3, safemem.HeapOptions(true))
	m4 := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	pageHeap := heap.MustNew(m4, pageprot.HeapOptions())
	for i := 0; i < 200; i++ {
		size := uint64(24 + i*13%1800)
		if _, err := eccHeap.Malloc(size); err != nil {
			log.Fatal(err)
		}
		if _, err := pageHeap.Malloc(size); err != nil {
			log.Fatal(err)
		}
	}
	ecc, page := eccHeap.Stats(), pageHeap.Stats()
	eccPct := 100 * float64(ecc.WasteLive) / float64(ecc.BytesLive)
	pagePct := 100 * float64(page.WasteLive) / float64(page.BytesLive)
	fmt.Printf("\nguard-space overhead on the same trace (200 buffers):\n")
	fmt.Printf("  ECC  protection: %8d waste bytes (%.1f%% of user data)\n", ecc.WasteLive, eccPct)
	fmt.Printf("  page protection: %8d waste bytes (%.1f%% of user data)\n", page.WasteLive, pagePct)
	fmt.Printf("  reduction by ECC: %.0fX\n", pagePct/eccPct)
}
