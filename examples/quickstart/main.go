// Quickstart: build the simulated ECC machine, attach SafeMem, and catch
// one buffer overflow and one memory leak — the five-minute tour of the
// library.
package main

import (
	"fmt"
	"log"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

func main() {
	// 1. A simulated machine: CPU, cache, ECC memory controller, DRAM,
	//    virtual memory and a kernel with the WatchMemory syscalls.
	m := machine.MustNew(machine.DefaultConfig())

	// 2. A heap configured the way SafeMem needs it: cache-line-aligned
	//    buffers with one ECC-guarded line of padding at each end.
	alloc := heap.MustNew(m, safemem.HeapOptions(true))

	// 3. Attach SafeMem. It wraps the allocator and registers the ECC
	//    fault handler. No per-access instrumentation is installed.
	opts := safemem.DefaultOptions()
	// The demo program is tiny, so shrink the leak-detection windows.
	opts.WarmupTime = simtime.FromMicroseconds(50)
	opts.CheckingPeriod = simtime.FromMicroseconds(20)
	opts.SLeakStableTime = simtime.FromMicroseconds(100)
	opts.LeakConfirmTime = simtime.FromMicroseconds(300)
	tool, err := safemem.Attach(m, alloc, opts)
	if err != nil {
		log.Fatal(err)
	}

	// --- Bug 1: a heap buffer overflow -------------------------------
	buf, err := alloc.Malloc(100)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		m.Store8(buf+vm.VAddr(i), byte(i)) // in bounds: fine
	}
	m.Store8(buf+128, 0xbd) // one line past the rounded size: GUARD HIT

	// --- Bug 2: a sometimes-leak --------------------------------------
	// A "server" that allocates a request buffer per iteration and frees
	// it — except iteration 70, which it forgets.
	for i := 0; i < 4000; i++ {
		m.Call(0x1234) // simulated call site
		p, err := alloc.Malloc(64)
		if err != nil {
			log.Fatal(err)
		}
		m.Return()
		m.Store64(p, uint64(i))
		m.Compute(1500) // request processing
		if i == 70 {
			continue // forgot to free: the leak
		}
		if err := alloc.Free(p); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Read the reports.
	fmt.Println("SafeMem reports:")
	for _, r := range tool.Reports() {
		fmt.Println(" ", r)
	}
	st := tool.Stats()
	fmt.Printf("\nstats: %d allocations wrapped, %d leak checks, %d suspects flagged, %d pruned\n",
		st.Allocs, st.LeakChecks, st.SuspectsFlagged, st.SuspectsPruned)
	fmt.Printf("simulated CPU time: %s\n", m.Clock.Now())
}
