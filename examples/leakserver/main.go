// Leakserver: a long-running simulated server with a sometimes-leak,
// showing the full detection lifecycle of Section 3 — lifetime learning,
// suspect flagging, ECC-watch pruning of false positives, and the final
// confirmed report — with progress printed along the way.
//
// The server handles sessions whose buffers normally live 25–40 requests.
// Three kinds of objects stress the detector:
//
//   - ordinary session buffers, freed on time (establish the maximal
//     lifetime);
//   - one "pinned" admin session that lives forever but is touched
//     periodically (flagged as a suspect, then exonerated by the access —
//     the pruned false positive);
//   - one buffer the error path forgets to free (the real leak).
package main

import (
	"fmt"
	"log"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

const siteSession = 0x771000

func main() {
	m := machine.MustNew(machine.DefaultConfig())
	alloc := heap.MustNew(m, safemem.HeapOptions(false)) // leak detection only
	opts := safemem.DefaultOptions()
	opts.DetectCorruption = false
	opts.WarmupTime = simtime.FromMicroseconds(200)
	opts.CheckingPeriod = simtime.FromMicroseconds(50)
	opts.SLeakStableTime = simtime.FromMicroseconds(300)
	opts.LeakConfirmTime = simtime.FromMicroseconds(1500)
	tool, err := safemem.Attach(m, alloc, opts)
	if err != nil {
		log.Fatal(err)
	}

	type session struct {
		buf   vm.VAddr
		until int
	}
	var live []session
	var admin vm.VAddr
	var leaked vm.VAddr

	newSession := func(i, dur int) vm.VAddr {
		m.Call(siteSession)
		p, err := alloc.Malloc(128)
		if err != nil {
			log.Fatal(err)
		}
		m.Return()
		m.Store64(p, uint64(i))
		if dur > 0 {
			live = append(live, session{buf: p, until: i + dur})
		}
		return p
	}

	lastReports := 0
	for i := 0; i < 12000; i++ {
		// Expire due sessions (the access at teardown writes the log).
		kept := live[:0]
		for _, s := range live {
			if s.until <= i {
				m.Store64(s.buf+8, uint64(i)) // final touch
				if err := alloc.Free(s.buf); err != nil {
					log.Fatal(err)
				}
			} else {
				kept = append(kept, s)
			}
		}
		live = kept

		switch {
		case i == 40:
			admin = newSession(i, 0) // immortal but used
			fmt.Printf("[req %5d] admin session opened at %#x (never freed, touched every 100 requests)\n", i, uint64(admin))
		case i == 900:
			leaked = newSession(i, 0) // the bug: error path forgets it
			fmt.Printf("[req %5d] error path leaked session buffer %#x\n", i, uint64(leaked))
		case i%3 == 0:
			newSession(i, 25+i%16)
		}

		if admin != 0 && i%100 == 99 {
			m.Store64(admin+16, uint64(i)) // admin keep-alive touch
		}
		m.Compute(1200)

		if n := len(tool.Reports()); n != lastReports {
			for _, r := range tool.Reports()[lastReports:] {
				fmt.Printf("[req %5d] REPORT %s\n", i, r)
			}
			lastReports = n
		}
		if i%3000 == 2999 {
			st := tool.Stats()
			fmt.Printf("[req %5d] t=%-12s suspects=%d pruned=%d reports=%d watched-lines=%d\n",
				i, m.Clock.Now(), st.SuspectsFlagged, st.SuspectsPruned, st.LeaksReported, st.WatchedLines)
		}
	}

	fmt.Println("\nfinal reports:")
	for _, r := range tool.Reports() {
		fmt.Println(" ", r)
	}
	st := tool.Stats()
	fmt.Printf("\nthe admin session was flagged and exonerated (%d pruned); only the real leak was reported (%d)\n",
		st.SuspectsPruned, st.LeaksReported)
	if st.LeaksReported != 1 {
		log.Fatalf("expected exactly one confirmed leak, got %d", st.LeaksReported)
	}
}
