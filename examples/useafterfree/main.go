// Useafterfree: detecting accesses to freed buffers via whole-buffer ECC
// watches (Section 4), the unwatch-on-reallocation rule, and the
// uninitialized-read extension the paper sketches.
package main

import (
	"fmt"
	"log"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
)

func main() {
	m := machine.MustNew(machine.DefaultConfig())
	alloc := heap.MustNew(m, safemem.HeapOptions(true))
	opts := safemem.DefaultOptions()
	opts.DetectLeaks = false
	opts.DetectUninitRead = true // the Section 4 extension
	tool, err := safemem.Attach(m, alloc, opts)
	if err != nil {
		log.Fatal(err)
	}

	// A connection object with a dangling reference kept after teardown.
	conn, err := alloc.Malloc(256)
	if err != nil {
		log.Fatal(err)
	}
	m.Memset(conn, 0xaa, 256)
	fmt.Printf("connection object at %#x\n", uint64(conn))

	if err := alloc.Free(conn); err != nil {
		log.Fatal(err)
	}
	fmt.Println("connection closed (freed); the retry queue still holds the pointer")

	// The dangling read: the whole freed extent is ECC-watched.
	_ = m.Load64(conn + 16)
	for _, r := range tool.Reports() {
		fmt.Printf("  report: %s\n", r)
	}
	if len(tool.Reports()) != 1 {
		log.Fatal("expected exactly one freed-access report")
	}

	// Reallocation disables the freed watch: the new owner may use the
	// memory freely.
	conn2, err := alloc.Malloc(256)
	if err != nil {
		log.Fatal(err)
	}
	if conn2 != conn {
		fmt.Printf("(allocator returned a different extent %#x)\n", uint64(conn2))
	}
	m.Store64(conn2, 42)
	if got := m.Load64(conn2); got != 42 {
		log.Fatalf("reallocated memory unusable: %d", got)
	}
	if n := len(tool.Reports()); n != 1 {
		log.Fatalf("reuse after reallocation was misreported (%d reports)", n)
	}
	fmt.Println("reallocated extent used freely — watch disabled on reallocation")

	// Uninitialized-read extension: reading a never-written buffer is a
	// bug; the first write silently disarms the watch.
	fresh, err := alloc.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	_ = m.Load64(fresh + 8) // read before any write
	fmt.Println("\nuninitialized-read extension:")
	for _, r := range tool.Reports()[1:] {
		fmt.Printf("  report: %s\n", r)
	}

	initialized, err := alloc.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	m.Store64(initialized, 7) // first write initialises
	_ = m.Load64(initialized) // clean read
	st := tool.Stats()
	fmt.Printf("  first-writes that disarmed a watch: %d (no report for the initialised buffer)\n",
		st.UninitWrites)
	fmt.Printf("\ntotal reports: %d, simulated time %s\n", len(tool.Reports()), m.Clock.Now())
}
