// Hwerrors: SafeMem coexisting with ECC memory's day job. The controller
// keeps detecting and correcting real memory errors while SafeMem borrows
// its check bits for watchpoints:
//
//   - single-bit errors anywhere are corrected transparently (SafeMem never
//     hears about them);
//   - a multi-bit error inside a watched region is recognised by the
//     scramble-signature check and repaired from SafeMem's private copy;
//   - background scrubbing runs under the Section 2.2.2 coordination
//     protocol without tripping any watchpoint;
//   - a multi-bit error in ordinary memory still panics the kernel, exactly
//     like an unmodified OS.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/memctrl"
	"safemem/internal/vm"
)

func main() {
	m := machine.MustNew(machine.DefaultConfig())
	alloc := heap.MustNew(m, safemem.HeapOptions(true))
	tool, err := safemem.Attach(m, alloc, safemem.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	m.Ctrl.SetMode(memctrl.CorrectAndScrub)

	// A working set with live guard watchpoints.
	var bufs []vm.VAddr
	for i := 0; i < 16; i++ {
		p, err := alloc.Malloc(256)
		if err != nil {
			log.Fatal(err)
		}
		m.Memset(p, byte(i+1), 256)
		bufs = append(bufs, p)
	}
	fmt.Printf("16 buffers allocated; %d lines ECC-watched (guards)\n", tool.Stats().WatchedLines)

	// 1. A shower of single-bit soft errors: all silently corrected.
	rng := rand.New(rand.NewSource(2))
	m.Cache.FlushAll()
	for n := 0; n < 50; n++ {
		p := bufs[rng.Intn(len(bufs))]
		off := vm.VAddr(rng.Intn(32) * 8)
		pa, fault := m.AS.Translate(p+off, false)
		if fault != nil {
			log.Fatal(fault)
		}
		m.Phys.FlipDataBit(pa.GroupAddr(), uint(rng.Intn(64)))
		if got := m.Load8(p + off); got != byte(slot(bufs, p)+1) {
			log.Fatalf("single-bit error not corrected: %d", got)
		}
		m.Cache.FlushLine(pa.LineAddr())
	}
	fmt.Printf("50 single-bit errors injected: %d corrected by the controller, %d seen by SafeMem\n",
		m.Ctrl.Stats().CorrectedSingle, tool.Stats().HardwareErrors)

	// 2. A multi-bit error inside a watched guard line: SafeMem's signature
	// check recognises it is NOT an access fault and repairs it from the
	// saved copy.
	pa, _ := m.AS.Translate(bufs[3]+256, false) // the trailing guard line
	m.Phys.FlipDataBit(pa.GroupAddr(), 5)
	m.Phys.FlipDataBit(pa.GroupAddr(), 41)
	_ = m.Load8(bufs[3] + 256) // touches the guard: overflow? no — hardware error
	st := tool.Stats()
	fmt.Printf("multi-bit error in a watched guard: hardware-errors=%d, corruption-reports=%d\n",
		st.HardwareErrors, st.CorruptionReported)

	// 3. Coordinated scrubbing: several full passes, no spurious reports.
	for i := 0; i < 3; i++ {
		m.Kern.CoordinatedScrub()
	}
	fmt.Printf("3 coordinated scrub passes: %d lines scrubbed, reports still %d\n",
		m.Ctrl.Stats().ScrubbedLines, len(tool.Reports()))

	// 4. The guards still work after all of that.
	m.Store8(bufs[0]+256, 0xee)
	fmt.Printf("overflow after the error shower: %d report(s)\n", tool.Stats().CorruptionReported)
	for _, r := range tool.Reports() {
		fmt.Println("  ", r)
	}

	// 5. A multi-bit error in UNWATCHED memory: the kernel panics, as an
	// unmodified OS would (Section 2.1).
	pa2, _ := m.AS.Translate(bufs[9], false)
	m.Cache.FlushAll()
	m.Phys.FlipDataBit(pa2.GroupAddr(), 0)
	m.Phys.FlipDataBit(pa2.GroupAddr(), 1)
	runErr := m.Run(func() error {
		_ = m.Load8(bufs[9])
		return nil
	})
	var pe *kernel.PanicError
	if !errors.As(runErr, &pe) {
		log.Fatalf("expected a kernel panic, got %v", runErr)
	}
	fmt.Printf("\nmulti-bit error in unwatched memory: %v\n", pe)
	fmt.Println("(SafeMem repairs errors only where it holds a saved copy — everywhere else the stock behaviour stands)")
}

func slot(bufs []vm.VAddr, p vm.VAddr) int {
	for i, b := range bufs {
		if b == p {
			return i
		}
	}
	return -1
}
