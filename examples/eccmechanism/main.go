// Eccmechanism: a bit-level walkthrough of Figures 1 and 2 — how ECC memory
// normally works, and how SafeMem's WatchMemory trick turns it into a
// watchpoint. Every state transition is printed with the actual data word
// and check bits from the simulated DRAM.
package main

import (
	"fmt"
	"log"

	"safemem/internal/cache"
	"safemem/internal/ecc"
	"safemem/internal/kernel"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

func main() {
	clock := &simtime.Clock{}
	mem := physmem.MustNew(1 << 20)
	ctrl := memctrl.New(mem, clock)
	ch := cache.MustNew(ctrl, clock, cache.DefaultConfig)
	as := vm.New(mem, clock)
	k := kernel.New(clock, ctrl, ch, as)
	if err := k.MapPages(0x10000, 1); err != nil {
		log.Fatal(err)
	}

	const va = vm.VAddr(0x10000)
	pa, _ := as.Translate(va, true)
	show := func(label string) {
		d, c := mem.ReadGroupRaw(pa.GroupAddr())
		_, _, res := ecc.Decode(d, ecc.Check(c))
		fmt.Printf("  %-34s data=%016x check=%08b decode=%s\n", label, d, c, res)
	}

	fmt.Println("── Figure 1a: write to ECC memory ──────────────────────────")
	ch.StoreWord(pa, 0xdeadbeefcafebabe)
	ch.FlushLine(pa.LineAddr())
	show("after write+flush (encoder ran)")

	fmt.Println("\n── Figure 1b: read with a single-bit hardware error ────────")
	mem.FlipDataBit(pa.GroupAddr(), 17)
	show("bit 17 flipped by a cosmic ray")
	v := ch.LoadWord(pa)
	fmt.Printf("  CPU read returned %016x — corrected transparently\n", v)
	ch.FlushLine(pa.LineAddr())
	show("after the corrected read")

	fmt.Println("\n── Figure 2: WatchMemory arms the line ─────────────────────")
	fmt.Printf("  scramble mask: flip data bits %v (chosen so the syndrome is invalid)\n", ecc.ScrambleBits())
	orig, err := k.WatchMemory(va, 64)
	if err != nil {
		log.Fatal(err)
	}
	show("ECC disabled → scramble → enable")
	fmt.Printf("  saved original (SafeMem private): %016x\n", orig[0])

	fmt.Println("\n── the first access faults ─────────────────────────────────")
	k.RegisterECCFaultHandler(func(f *kernel.ECCFault) bool {
		fmt.Printf("  ECC FAULT: line %#x group %d, observed data=%016x\n",
			uint64(f.VLine), f.GroupIndex, f.Data)
		if ecc.IsScrambleOf(f.Data, orig[f.GroupIndex]) {
			fmt.Println("  signature check: observed == Scramble(original) → ACCESS FAULT (not a hardware error)")
		}
		if err := k.DisableWatchMemory(f.VLine, 64); err != nil {
			log.Fatal(err)
		}
		return true
	})
	v = ch.LoadWord(pa)
	fmt.Printf("  the faulting load still returned the right value: %016x\n", v)
	show("after DisableWatchMemory")

	fmt.Println("\n── why a naive scramble would not work ─────────────────────")
	d := uint64(0xdeadbeefcafebabe)
	c := ecc.Encode(d)
	_, _, res := ecc.Decode(d^0b111, c)
	fmt.Printf("  flipping data bits {0,1,2} instead: decode=%s\n", res)
	fmt.Println("  (SECDED aliases that triple to a plausible single-bit fix — the")
	fmt.Println("   watchpoint would silently never fire; hence the searched pattern)")
}
