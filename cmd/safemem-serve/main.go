// Command safemem-serve is the detection fleet front end: an HTTP server
// that accepts detection jobs (scenario seeds or evaluation apps, with
// tool and fault knobs), schedules them across a worker pool of recycled
// simulated machines, and serves verdicts plus live telemetry from one
// listener.
//
// Usage:
//
//	safemem-serve [-addr :9090] [-workers N] [-queue N] [-snapshots]
//	              [-deadline 30s] [-watchdog 2s] [-max-attempts 3]
//	              [-quota-rate R] [-quota-burst N]
//	              [-chaos] [-chaos-panic-every N] [-chaos-slow-every N]
//	              [-chaos-slow-for D] [-chaos-fail-every N] [-chaos-seed N]
//	              [-drain-timeout 30s] [-flight-dump FILE]
//	              [-log-level info] [-log-format console|json] [-version]
//
// The job API:
//
//	POST /jobs      submit a JSON JobSpec; 202 + job record on admission,
//	                400 invalid, 429 + Retry-After when the queue or the
//	                tenant's quota is saturated, 503 while draining
//	GET  /jobs      list jobs (?state=done filters)
//	GET  /jobs/{id} one job, including its result once terminal
//
// plus the full observability plane on the same listener: /metrics,
// /healthz, /readyz (503 once draining), /buildinfo, /events (SSE),
// /debug/pprof.
//
// SIGINT/SIGTERM drain gracefully: admission stops (new submits get 503),
// queued and running jobs finish, stragglers past -drain-timeout are
// cancelled, and the flight recorder's recent history lands in
// -flight-dump before exit.
//
// -chaos enables fault injection — a deterministic fraction of jobs
// panic mid-simulation, stall past their deadline, or fail transiently —
// for exercising the degradation paths against a live server. Chaos
// fates key on the job spec, so results remain reproducible.
//
// -snapshots turns on the copy-on-write machine-snapshot layer (DESIGN.md
// §4.11): workers serve repeat configurations from warmed, restored
// machines instead of rebuilding per job. Job results are byte-identical
// either way (pinned by the snapshot equivalence suites); watch the
// amortization live via the safemem_snapshot_* gauges on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"safemem/internal/fleet"
	"safemem/internal/obsrv"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/obsrv/logging"
	"safemem/internal/snapshot"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address for the job API and observability plane")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×workers); overflow answers 429")
	deadline := flag.Duration("deadline", 30*time.Second, "per-job-attempt deadline")
	watchdog := flag.Duration("watchdog", 2*time.Second, "grace a cancelled job gets before the watchdog abandons it")
	maxAttempts := flag.Int("max-attempts", 3, "retry budget: total attempts per job before terminal failure")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant admission tokens per second (0 disables quotas)")
	quotaBurst := flag.Int("quota-burst", 10, "per-tenant token-bucket burst size")
	snapshots := flag.Bool("snapshots", false, "serve repeat configurations from warmed machine snapshots (byte-identical results, amortized warmup)")
	chaos := flag.Bool("chaos", false, "inject worker panics, stalls and transient failures (see -chaos-*)")
	chaosPanic := flag.Int("chaos-panic-every", 20, "with -chaos: ~1/N jobs panic mid-simulation")
	chaosSlow := flag.Int("chaos-slow-every", 20, "with -chaos: ~1/N jobs stall for -chaos-slow-for")
	chaosSlowFor := flag.Duration("chaos-slow-for", 500*time.Millisecond, "with -chaos: injected stall length")
	chaosFail := flag.Int("chaos-fail-every", 10, "with -chaos: ~1/N jobs fail transiently (healed by retry)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "with -chaos: decorrelates the chaos selection stream")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before stragglers are cancelled")
	flightDump := flag.String("flight-dump", "safemem-serve-flight.jsonl", "flight-recorder dump written during drain (empty disables)")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}
	log := logging.L("safemem-serve")
	if err := logging.Setup(); err != nil {
		fmt.Fprintf(os.Stderr, "safemem-serve: %v\n", err)
		os.Exit(2)
	}

	cfg := fleet.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		JobDeadline:   *deadline,
		WatchdogGrace: *watchdog,
		MaxAttempts:   *maxAttempts,
		DrainTimeout:  *drainTimeout,
		Quota:         fleet.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst},
	}
	if *chaos {
		cfg.Chaos = &fleet.Chaos{
			Seed:       *chaosSeed,
			PanicEvery: *chaosPanic,
			SlowEvery:  *chaosSlow,
			SlowFor:    *chaosSlowFor,
			FailEvery:  *chaosFail,
		}
		log.Warn("chaos injection enabled",
			"panic_every", *chaosPanic, "slow_every", *chaosSlow, "fail_every", *chaosFail)
	}
	if *snapshots {
		snapshot.SetEnabled(true)
		log.Info("snapshot layer enabled")
	}
	fl := fleet.Start(cfg)

	srv, err := obsrv.Start(obsrv.Config{
		Addr:      *addr,
		Registry:  fl.Registry(),
		Extra:     fl.Handlers(),
		Ready:     fl.ReadyCheck,
		DrainDump: *flightDump,
	})
	if err != nil {
		log.Error("listen", "err", err)
		os.Exit(2)
	}
	log.Info("fleet serving", "addr", srv.Addr(), "workers", cfg.Workers)

	// SIGINT/SIGTERM: drain the fleet first (admission off, in-flight jobs
	// finish), then shut the HTTP server down and flush the flight dump.
	defer obsrv.HandleSignals(srv, *drainTimeout, func(ctx context.Context) {
		if derr := fl.Drain(ctx); derr != nil {
			log.Error("drain", "err", derr)
		}
	}, os.Exit)()

	select {} // serve until signalled
}
