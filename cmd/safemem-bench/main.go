// Command safemem-bench regenerates the paper's evaluation: Tables 2–5 and
// Figure 3 (Section 6), on the simulated ECC machine.
//
// Usage:
//
//	safemem-bench [-experiment table2|table3|table4|table5|sample|figure3|throughput|fleet|campaign|frontier|all]
//	              [-seed N] [-scale N] [-iterations N] [-parallel N]
//	              [-throughput-out FILE] [-throughput-check FILE] [-update]
//	              [-fleet-out FILE] [-fleet-shards N]
//	              [-campaign-out FILE] [-campaign-check FILE] [-campaign-scenarios N]
//	              [-frontier-out FILE] [-frontier-scenarios N]
//	              [-metrics-out FILE] [-trace-out FILE] [-jsonl-out FILE]
//	              [-sample-interval MS] [-serve :9090]
//	              [-log-level info] [-log-format console|json]
//	              [-cpuprofile FILE] [-memprofile FILE] [-version]
//
// Absolute numbers are simulated-cycle measurements; the shapes — who wins,
// by roughly what factor, where the crossovers fall — are the reproduction
// target (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"

	"safemem/internal/apps"
	"safemem/internal/bench"
	"safemem/internal/bench/campbench"
	"safemem/internal/bench/frontier"
	"safemem/internal/obsrv"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/obsrv/logging"
	"safemem/internal/profiling"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// jsonOutput aggregates the requested experiments for -format json.
type jsonOutput struct {
	Seed    int64                 `json:"seed"`
	Scale   int                   `json:"scale,omitempty"`
	Table2  *bench.Table2         `json:"table2,omitempty"`
	Table3  []bench.Table3Row     `json:"table3,omitempty"`
	Table4  []bench.Table4Row     `json:"table4,omitempty"`
	Table5  []bench.Table5Row     `json:"table5,omitempty"`
	Sample  []bench.SampleRow     `json:"sample,omitempty"`
	Figure3 []bench.Figure3Series `json:"figure3,omitempty"`
	Summary []bench.SummaryRow    `json:"summary,omitempty"`
	Through *bench.Throughput     `json:"throughput,omitempty"`
	Fleet   *bench.Fleet          `json:"fleet,omitempty"`
	Camp    *campbench.Campaign   `json:"campaign,omitempty"`
	Front   *frontier.Frontier    `json:"frontier,omitempty"`
}

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: table2, table3, table4, table5, sample, figure3, summary, throughput, fleet, campaign, frontier or all")
	seed := flag.Int64("seed", 42, "workload generator seed")
	scale := flag.Int("scale", 0, "workload scale multiplier (0 = per-experiment default)")
	iterations := flag.Int("iterations", 256, "microbenchmark iterations (table2)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for independent experiment cells (results are identical at any value)")
	throughputOut := flag.String("throughput-out", "BENCH_throughput.json", "where the throughput experiment writes its JSON baseline (empty disables)")
	throughputCheck := flag.String("throughput-check", "", "compare the throughput run against this JSON baseline instead of writing one; exit 1 on >25% host-ns/instr regression")
	update := flag.Bool("update", false, "with -throughput-check: rewrite the baseline from this run instead of comparing")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "where the fleet experiment writes its JSON baseline (empty disables)")
	fleetShards := flag.Int("fleet-shards", 4, "full passes over the app list for the fleet experiment")
	campaignOut := flag.String("campaign-out", "BENCH_campaign.json", "where the campaign experiment writes its JSON baseline (empty disables)")
	campaignCheck := flag.String("campaign-check", "", "compare the campaign run against this JSON baseline instead of writing one; exit 1 on >25% warm scenarios/sec regression")
	campaignScenarios := flag.Int("campaign-scenarios", 0, "scenario count per tool for the campaign experiment (0 = tracked-baseline default)")
	frontierOut := flag.String("frontier-out", "BENCH_frontier.json", "where the frontier experiment writes its JSON baseline (empty disables)")
	frontierScenarios := flag.Int("frontier-scenarios", 0, "scenario count for the frontier sweep (0 = tracked-baseline default)")
	format := flag.String("format", "text", "output format: text or json")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-format metrics dump covering every run to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON timeline (one process per run) to this file")
	jsonlOut := flag.String("jsonl-out", "", "write the JSONL event log to this file")
	sampleMS := flag.Float64("sample-interval", 1, "gauge sampler period in simulated milliseconds (0 disables)")
	serve := flag.String("serve", "", "serve live observability endpoints (/metrics, /events, /healthz, …) on this address, e.g. :9090")
	flightDump := flag.String("flight-dump", "", "with -serve: flush the flight-recorder event history to this JSONL file on SIGINT/SIGTERM drain (empty disables)")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}
	log := logging.L("safemem-bench")
	if err := logging.Setup(); err != nil {
		fmt.Fprintf(os.Stderr, "safemem-bench: %v\n", err)
		os.Exit(2)
	}

	if err := profiling.Start(); err != nil {
		log.Error("profiling", "err", err)
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		log.Error("unknown format", "format", *format)
		profiling.Exit(2)
	}

	var session *telemetry.Session
	if *metricsOut != "" || *traceOut != "" || *jsonlOut != "" || *serve != "" {
		session = telemetry.NewSession(telemetry.Config{
			TraceEnabled:   *traceOut != "" || *jsonlOut != "",
			SampleInterval: simtime.FromMicroseconds(*sampleMS * 1000),
		})
		bench.Telemetry = session
		// Telemetry export orders registries by creation time, which
		// parallel cells would race; keep runs sequential so exported
		// files stay deterministic.
		*parallel = 1
	}
	if *serve != "" {
		srv, err := obsrv.Start(obsrv.Config{Addr: *serve, Session: session, DrainDump: *flightDump})
		if err != nil {
			log.Error("observability server", "err", err)
			profiling.Exit(2)
		}
		defer srv.Close()
		// SIGINT/SIGTERM drain the embedded server with a deadline and
		// flush the flight-recorder dump instead of dying mid-scrape.
		defer obsrv.HandleSignals(srv, obsrv.DefaultShutdownTimeout, nil, profiling.Exit)()
		log.Info("observability server listening", "addr", srv.Addr())
	}
	bench.Parallel = *parallel
	asJSON := *format == "json"
	// Long matrix runs show per-cell movement on stderr through the logging
	// facade. Quiet by default under -format json (machine consumers want
	// silence); debug-level lines remain available there via -log-level.
	level := slog.LevelInfo
	if asJSON {
		level = slog.LevelDebug
	}
	bench.Progress = func(label string, done, total int) {
		log.Log(context.Background(), level, "progress", "experiment", label, "done", done, "total", total)
	}
	out := jsonOutput{Seed: *seed, Scale: *scale}

	cfg := apps.Config{Seed: *seed, Scale: *scale}
	run := func(name string, f func() error) {
		switch *experiment {
		case name, "all":
			if err := f(); err != nil {
				log.Error(name+" failed", "err", err)
				profiling.Exit(1)
			}
		}
	}

	run("table2", func() error {
		t2, err := bench.RunTable2(*iterations)
		if err != nil {
			return err
		}
		if asJSON {
			out.Table2 = t2
		} else {
			fmt.Println(t2.Render())
		}
		return nil
	})
	run("table3", func() error {
		rows, err := bench.RunTable3(cfg)
		if err != nil {
			return err
		}
		if asJSON {
			out.Table3 = rows
		} else {
			fmt.Println(bench.RenderTable3(rows))
		}
		return nil
	})
	run("table4", func() error {
		rows, err := bench.RunTable4(cfg)
		if err != nil {
			return err
		}
		if asJSON {
			out.Table4 = rows
		} else {
			fmt.Println(bench.RenderTable4(rows))
		}
		return nil
	})
	run("table5", func() error {
		rows, err := bench.RunTable5(cfg)
		if err != nil {
			return err
		}
		if asJSON {
			out.Table5 = rows
		} else {
			fmt.Println(bench.RenderTable5(rows))
		}
		return nil
	})
	run("sample", func() error {
		rows, err := bench.RunSampleTable(cfg)
		if err != nil {
			return err
		}
		if asJSON {
			out.Sample = rows
		} else {
			fmt.Println(bench.RenderSampleTable(rows))
		}
		return nil
	})
	// frontier sweeps rate × fleet over the campaign templates — hundreds
	// of scenario runs — so it only runs when requested explicitly (not
	// under -experiment all).
	if *experiment == "frontier" {
		opts := frontier.DefaultOptions()
		opts.Parallel = *parallel
		if *frontierScenarios > 0 {
			opts.Scenarios = *frontierScenarios
		}
		f, err := frontier.Run(opts)
		if err != nil {
			log.Error("frontier failed", "err", err)
			profiling.Exit(1)
		}
		if err := f.Validate(0.001); err != nil {
			log.Error("frontier rejects the analytic model", "err", err)
			profiling.Exit(1)
		}
		if *frontierOut != "" && *frontierScenarios == 0 {
			if err := f.WriteJSON(*frontierOut); err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: frontier: %v\n", err)
				profiling.Exit(1)
			}
			log.Info("wrote frontier baseline", "path", *frontierOut)
		}
		if asJSON {
			out.Front = f
		} else {
			fmt.Println(f.Render())
		}
	}
	// throughput wall-clocks the host, so like summary it only runs when
	// requested explicitly (not under -experiment all).
	if *experiment == "throughput" {
		t, err := bench.RunThroughput(cfg)
		if err != nil {
			log.Error("throughput failed", "err", err)
			profiling.Exit(1)
		}
		switch {
		case *throughputCheck != "" && *update:
			if err := t.WriteJSON(*throughputCheck); err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: throughput: %v\n", err)
				profiling.Exit(1)
			}
			log.Info("updated throughput baseline", "path", *throughputCheck)
		case *throughputCheck != "":
			base, err := bench.ReadThroughput(*throughputCheck)
			if err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: throughput: %v\n", err)
				profiling.Exit(1)
			}
			if err := t.CheckAgainst(base, 0.25); err != nil {
				fmt.Println(t.Render())
				fmt.Fprintf(os.Stderr, "safemem-bench: throughput check vs %s: %v\n", *throughputCheck, err)
				fmt.Fprintf(os.Stderr, "safemem-bench: (rerun with -update to accept the new baseline)\n")
				profiling.Exit(1)
			}
			log.Info("throughput ok", "host_ns_per_instr", t.Total.HostNSPerInstr, "baseline", base.Total.HostNSPerInstr)
		case *throughputOut != "":
			if err := t.WriteJSON(*throughputOut); err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: throughput: %v\n", err)
				profiling.Exit(1)
			}
		}
		if asJSON {
			out.Through = t
		} else {
			fmt.Println(t.Render())
		}
	}
	// fleet wall-clocks the host under full-core contention, so it too only
	// runs when requested explicitly (not under -experiment all).
	if *experiment == "fleet" {
		f, err := bench.RunFleet(cfg, *fleetShards, *parallel)
		if err != nil {
			log.Error("fleet failed", "err", err)
			profiling.Exit(1)
		}
		if *fleetOut != "" {
			if err := f.WriteJSON(*fleetOut); err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: fleet: %v\n", err)
				profiling.Exit(1)
			}
			log.Info("wrote fleet baseline", "path", *fleetOut)
		}
		if asJSON {
			out.Fleet = f
		} else {
			fmt.Println(f.Render())
		}
	}
	// campaign wall-clocks cold-vs-warm executor throughput under the
	// snapshot layer, so it only runs when requested explicitly (not under
	// -experiment all).
	if *experiment == "campaign" {
		opts := campbench.DefaultOptions()
		if *campaignScenarios > 0 {
			opts.Scenarios = *campaignScenarios
		}
		campbench.Progress = bench.Progress
		c, err := campbench.Run(opts)
		if err != nil {
			log.Error("campaign failed", "err", err)
			profiling.Exit(1)
		}
		switch {
		case *campaignCheck != "" && *update:
			if err := c.WriteJSON(*campaignCheck); err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: campaign: %v\n", err)
				profiling.Exit(1)
			}
			log.Info("updated campaign baseline", "path", *campaignCheck)
		case *campaignCheck != "":
			base, err := campbench.Read(*campaignCheck)
			if err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: campaign: %v\n", err)
				profiling.Exit(1)
			}
			if err := c.CheckAgainst(base, 0.25); err != nil {
				fmt.Println(c.Render())
				fmt.Fprintf(os.Stderr, "safemem-bench: campaign check vs %s: %v\n", *campaignCheck, err)
				fmt.Fprintf(os.Stderr, "safemem-bench: (rerun with -update to accept the new baseline)\n")
				profiling.Exit(1)
			}
			log.Info("campaign ok", "warm_per_sec", c.Total.WarmPerSec, "baseline", base.Total.WarmPerSec)
		case *campaignOut != "" && *campaignScenarios == 0:
			if err := c.WriteJSON(*campaignOut); err != nil {
				fmt.Fprintf(os.Stderr, "safemem-bench: campaign: %v\n", err)
				profiling.Exit(1)
			}
			log.Info("wrote campaign baseline", "path", *campaignOut)
		}
		if asJSON {
			out.Camp = c
		} else {
			fmt.Println(c.Render())
		}
	}
	// summary re-runs every experiment internally, so it only runs when
	// requested explicitly (not under -experiment all).
	if *experiment == "summary" {
		rows, err := bench.RunSummary(cfg)
		if err != nil {
			log.Error("summary failed", "err", err)
			profiling.Exit(1)
		}
		if asJSON {
			out.Summary = rows
		} else {
			fmt.Println(bench.RenderSummary(rows))
		}
	}
	run("figure3", func() error {
		series, err := bench.RunFigure3(cfg)
		if err != nil {
			return err
		}
		if asJSON {
			out.Figure3 = series
		} else {
			fmt.Println(bench.RenderFigure3(series))
		}
		return nil
	})

	switch *experiment {
	case "table2", "table3", "table4", "table5", "sample", "figure3", "summary", "throughput", "fleet", "campaign", "frontier", "all":
	default:
		fmt.Fprintf(os.Stderr, "safemem-bench: unknown experiment %q\n", *experiment)
		profiling.Exit(2)
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "safemem-bench: encode: %v\n", err)
			profiling.Exit(1)
		}
	}

	if session != nil {
		if err := session.ExportFiles(*metricsOut, *jsonlOut, *traceOut); err != nil {
			log.Error("telemetry export", "err", err)
			profiling.Exit(1)
		}
	}
	profiling.Exit(0)
}
