// Command leakstudy runs the memory-usage behaviour analysis behind
// Figure 3 (Section 3.1): it executes the three server workloads on normal
// inputs, collects per-group lifetime statistics, and reports how quickly
// each memory-object group's maximal lifetime stabilises.
//
// Usage:
//
//	leakstudy [-seed N] [-scale N] [-csv] [-groups]
//
// -csv emits the raw (time, pct) samples for external plotting; -groups
// dumps the per-group statistics behind the curves.
package main

import (
	"flag"
	"fmt"
	"os"

	"safemem/internal/apps"
	"safemem/internal/bench"
	"safemem/internal/obsrv/buildinfo"
)

func main() {
	seed := flag.Int64("seed", 42, "workload generator seed")
	scale := flag.Int("scale", 0, "workload scale multiplier (0 = study default)")
	csv := flag.Bool("csv", false, "emit CSV samples instead of ASCII plots")
	groups := flag.Bool("groups", false, "also dump per-group lifetime statistics")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}

	cfg := apps.Config{Seed: *seed, Scale: *scale}
	series, err := bench.RunFigure3(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "leakstudy: %v\n", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Println("app,time_seconds,pct_stable_groups")
		for _, s := range series {
			for _, p := range s.Points {
				fmt.Printf("%s,%.6f,%.2f\n", s.App, p.TimeSec, p.Pct)
			}
		}
	} else {
		fmt.Println(bench.RenderFigure3(series))
	}

	if *groups {
		for _, name := range []string{"ypserv1", "proftpd", "squid1"} {
			res, err := bench.Run(name, bench.ToolSafeMemML, apps.Config{Seed: *seed, Scale: *scale})
			if err != nil {
				fmt.Fprintf(os.Stderr, "leakstudy: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s memory-object groups:\n", name)
			fmt.Printf("  %-22s %-6s %-8s %-8s %-14s %-14s %-14s\n",
				"group(size,site)", "live", "allocs", "frees", "max-lifetime", "stable-time", "warmup")
			for _, g := range res.Groups {
				fmt.Printf("  ⟨%d,%#x⟩ %6d %8d %8d %14s %14s %14s\n",
					g.Key.Size, g.Key.Site, g.LiveCount, g.TotalAllocs, g.Frees,
					g.MaxLifetime, g.StableTime, g.WarmUpTime())
			}
			fmt.Println()
		}
	}
}
