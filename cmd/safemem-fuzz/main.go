// Command safemem-fuzz runs randomized bug campaigns against the SafeMem
// detection stack: seed-reproducible synthetic workloads with planted leaks,
// corruptions and benign near-misses, judged by a ground-truth oracle
// (package campaign, DESIGN.md §4.5).
//
// Usage:
//
//	safemem-fuzz [-seeds N] [-base-seed N] [-shards N] [-budget 30s]
//	             [-tool ml,mc,both,sample] [-sample-rate N]
//	             [-json] [-shrink] [-sabotage]
//	             [-fault-rate R] [-storm] [-retire]
//	             [-serve :9090] [-flight-dump FILE]
//	             [-log-level info] [-log-format console|json]
//	             [-cpuprofile FILE] [-memprofile FILE] [-version]
//	safemem-fuzz -seed N [-tool both] [-scenario 'cv1|...']
//
// The first form runs a campaign: N scenarios sharded over goroutines, a
// summary on stdout, exit status 1 if the oracle found violations (each with
// a one-line repro command). The second form replays one scenario — either
// regenerated from -seed or parsed from -scenario, exactly what a printed
// repro command contains.
//
// -fault-rate runs every scenario on flaky DIMMs: a seed-deterministic
// background DRAM fault process at R fault events per million cycles, plus
// the kernel scrub daemon. -storm adds clustered error-storm episodes;
// -retire switches the kernel from panic-on-uncorrectable to page
// retirement (without it the fault process stays single-bit-only, since a
// random double-bit on an unwatched line would panic the stock kernel).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"safemem/internal/campaign"
	"safemem/internal/obsrv"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/obsrv/logging"
	"safemem/internal/profiling"
	"safemem/internal/telemetry"
)

func main() {
	seeds := flag.Int("seeds", 100, "campaign size: number of generated scenarios")
	baseSeed := flag.Uint64("base-seed", 42, "base seed; scenario i uses a sub-seed derived from it")
	seed := flag.Uint64("seed", 0, "single-scenario mode: run exactly this scenario seed")
	shards := flag.Int("shards", 8, "worker goroutines (summary is identical at any shard count)")
	budget := flag.Duration("budget", 0, "wall-clock budget; 0 = run all seeds")
	tool := flag.String("tool", "ml,mc,both", "tool configurations to judge (comma-separated: none, ml, mc, both, sample)")
	sampleRate := flag.Int("sample-rate", 0, "sampling rate N for the sample tool (0 = default 1/8)")
	asJSON := flag.Bool("json", false, "print the canonical JSON summary instead of text")
	shrink := flag.Bool("shrink", true, "shrink violating scenarios to minimal repros")
	sabotage := flag.Bool("sabotage", false, "self-test: silently break corruption detection; the campaign must fail")
	scenario := flag.String("scenario", "", "single-scenario mode: replay this encoded scenario instead of generating one")
	faultRate := flag.Float64("fault-rate", 0, "background DRAM fault events per million cycles (0 = perfect DIMMs)")
	storm := flag.Bool("storm", false, "cluster background faults into error-storm episodes")
	retire := flag.Bool("retire", false, "retire failing pages and continue instead of panicking on uncorrectable errors")
	serve := flag.String("serve", "", "serve live observability endpoints (/metrics, /events, /healthz, …) on this address, e.g. :9090")
	flightDump := flag.String("flight-dump", "safemem-fuzz-flight.jsonl", "write the flight-recorder event history here when the campaign ends in violations (empty disables)")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}
	log := logging.L("safemem-fuzz")
	if err := logging.Setup(); err != nil {
		fmt.Fprintf(os.Stderr, "safemem-fuzz: %v\n", err)
		os.Exit(2)
	}

	if err := profiling.Start(); err != nil {
		log.Error("profiling", "err", err)
		os.Exit(2)
	}
	tools, err := parseTools(*tool)
	if err != nil {
		log.Error("bad -tool list", "err", err)
		profiling.Exit(2)
	}
	env := campaign.Env{Sabotage: *sabotage, FaultRate: *faultRate, Storm: *storm, Retire: *retire,
		SampleRate: *sampleRate}

	// The live plane: a registry the campaign publishes progress into, and
	// the observability server scraping it. Observation-only — the summary
	// is byte-identical with or without it.
	var reg *telemetry.Registry
	if *serve != "" {
		reg = telemetry.NewRegistry("campaign", telemetry.Config{})
		srv, err := obsrv.Start(obsrv.Config{Addr: *serve, Registry: reg, DrainDump: *flightDump})
		if err != nil {
			log.Error("observability server", "err", err)
			profiling.Exit(2)
		}
		defer srv.Close()
		// SIGINT/SIGTERM drain the embedded server with a deadline and
		// flush the flight-recorder dump instead of dying mid-scrape.
		defer obsrv.HandleSignals(srv, obsrv.DefaultShutdownTimeout, nil, profiling.Exit)()
		log.Info("observability server listening", "addr", srv.Addr())
	}

	single := *scenario != "" || isFlagSet("seed")
	if single {
		profiling.Exit(runSingle(*seed, *scenario, tools, env))
	}

	log.Info("campaign starting", "seeds", *seeds, "base_seed", *baseSeed, "shards", *shards)
	sum, err := campaign.Run(campaign.Config{
		Seeds:      *seeds,
		BaseSeed:   *baseSeed,
		Shards:     *shards,
		Tools:      tools,
		Budget:     *budget,
		Shrink:     *shrink,
		Sabotage:   *sabotage,
		FaultRate:  *faultRate,
		Storm:      *storm,
		Retire:     *retire,
		SampleRate: *sampleRate,
		Registry:   reg,
		FlightDump: *flightDump,
	})
	if err != nil {
		log.Error("campaign failed", "err", err)
		profiling.Exit(1)
	}

	if *asJSON {
		b, err := sum.JSON()
		if err != nil {
			log.Error("rendering summary", "err", err)
			profiling.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		printText(sum)
	}
	if len(sum.Violations) > 0 {
		log.Error("oracle violations", "count", len(sum.Violations), "flight_dump", *flightDump)
		profiling.Exit(1)
	}
	profiling.Exit(0)
}

// runSingle replays one scenario under one configuration and reports the
// oracle's verdict. This is the mode a printed repro command invokes.
func runSingle(seed uint64, encoded string, tools []campaign.ToolConfig, env campaign.Env) int {
	var s *campaign.Scenario
	if encoded != "" {
		var err error
		if s, err = campaign.Decode(encoded); err != nil {
			fmt.Fprintf(os.Stderr, "safemem-fuzz: %v\n", err)
			return 2
		}
		// Decode carries no seed; the flag restores it so hardware-fault
		// bit positions replay identically.
		s.Seed = seed
	} else {
		s = campaign.Generate(seed)
	}
	cfg := tools[0]

	res, err := campaign.ExecuteEnv(s, cfg, env)
	if err != nil {
		fmt.Fprintf(os.Stderr, "safemem-fuzz: %v\n", err)
		return 1
	}
	v := campaign.Judge(s, cfg, res)
	fmt.Printf("scenario seed=%d tool=%s: %d ops, %d planted, %d near-misses\n",
		seed, cfg, len(s.Ops), len(s.Plan), len(s.Misses))
	fmt.Printf("verdict: %d true positives, %d false positives, %d missed, %d expected misses, %d sampled misses\n",
		v.TruePositives, v.FalsePositives, v.Missed, v.ExpectedMisses, v.SampledMisses)
	if res.FaultModel {
		r := res.Resilience
		fmt.Printf("hardware: %d fault events, %d corrected, %d repaired, %d pages retired, %d watches migrated, %d data-loss\n",
			res.FaultEvents, res.Corrected, res.Stats.HardwareErrors,
			r.PagesRetired, r.WatchesMigrated, r.DataLossEvents)
	}
	for _, r := range res.Reports {
		fmt.Printf("  report: %s at site %#x: %s\n", r.Kind, r.Site, r.Details)
	}
	if len(v.Violations) == 0 {
		fmt.Println("oracle: PASS")
		return 0
	}
	for _, w := range v.Violations {
		fmt.Printf("violation: %s %s site=%#x strand=%d: %s\n", w.Kind, w.BugKind, w.Site, w.Strand, w.Detail)
	}
	return 1
}

// printText renders the human-readable campaign summary.
func printText(sum *campaign.Summary) {
	fmt.Printf("campaign: %d/%d scenarios (base seed %d)", sum.ScenariosRun, sum.Seeds, sum.BaseSeed)
	if sum.Sabotage {
		fmt.Print(" [SABOTAGE]")
	}
	if sum.FaultRate > 0 {
		fmt.Printf(" [fault-rate=%g", sum.FaultRate)
		if sum.Storm {
			fmt.Print(" storm")
		}
		if sum.Retire {
			fmt.Print(" retire")
		}
		fmt.Print("]")
	}
	fmt.Println()
	for _, cs := range sum.Configs {
		fmt.Printf("  %-6s  TP=%-3d FP=%-3d missed=%-3d expected-miss=%-3d",
			cs.Config, cs.TruePositives, cs.FalsePositives, cs.Missed, cs.ExpectedMisses)
		if cs.SampledMisses > 0 {
			fmt.Printf(" sampled-miss=%-3d", cs.SampledMisses)
		}
		fmt.Printf(" hw=%d\n", cs.HardwareErrors)
		if cs.FaultEvents > 0 || cs.PagesRetired > 0 {
			fmt.Printf("        hardware: %d fault events, %d corrected, %d pages retired, %d watches migrated, %d data-loss\n",
				cs.FaultEvents, cs.CorrectedErrors, cs.PagesRetired, cs.WatchesMigrated, cs.DataLossEvents)
		}
		if cs.Latency != nil {
			fmt.Printf("        detection latency (cycles): p50=%.0f p95=%.0f max=%.0f (n=%d)\n",
				cs.Latency.P50, cs.Latency.P95, cs.Latency.Max, cs.Latency.Count)
		}
		if cs.Overhead != nil {
			fmt.Printf("        overhead vs baseline: mean=%.1f%% p95=%.1f%%\n",
				cs.Overhead.Mean*100, cs.Overhead.P95*100)
		}
	}
	if len(sum.Violations) == 0 {
		fmt.Println("oracle: PASS")
		return
	}
	fmt.Printf("oracle: FAIL — %d violation(s)\n", len(sum.Violations))
	for _, v := range sum.Violations {
		fmt.Printf("  [%s/%s] seed=%d cfg=%s: %s\n", v.Kind, v.BugKind, v.Seed, v.Config, v.Detail)
		if v.Shrunk != "" {
			fmt.Printf("    repro (shrunk): %s\n", v.Shrunk)
		} else if v.Repro != "" {
			fmt.Printf("    repro: %s\n", v.Repro)
		}
	}
}

// parseTools resolves the -tool flag's comma-separated list.
func parseTools(s string) ([]campaign.ToolConfig, error) {
	var out []campaign.ToolConfig
	for _, name := range strings.Split(s, ",") {
		c, err := campaign.ParseToolConfig(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -tool list")
	}
	return out, nil
}

// isFlagSet reports whether the named flag was given explicitly.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
