// Command safemem-trace records and replays workload traces — the
// production-debugging workflow a SafeMem-style tool enables: capture the
// allocation/access trace of a misbehaving service once (cheaply, with no
// detector attached), then replay it in-house under SafeMem or any other
// tool, deterministically.
//
// Record a buggy gzip run, then reproduce the overflow under SafeMem:
//
//	safemem-trace -record gzip -buggy -o gzip.trace
//	safemem-trace -replay gzip.trace -tool safemem
//
// Or compare detectors on the identical execution:
//
//	safemem-trace -replay gzip.trace -tool purify
package main

import (
	"flag"
	"fmt"
	"os"

	"safemem/internal/apps"
	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/pageprot"
	"safemem/internal/purify"
	"safemem/internal/trace"
)

func main() {
	record := flag.String("record", "", "application to record (ypserv1, proftpd, squid1, ypserv2, gzip, tar, squid2)")
	replay := flag.String("replay", "", "trace file to replay")
	statsFile := flag.String("stats", "", "trace file to summarise")
	analyzeFile := flag.String("analyze", "", "trace file to run the offline leak analysis on")
	out := flag.String("o", "app.trace", "output file for -record")
	toolName := flag.String("tool", "safemem", "replay tool: safemem, purify, pageprot, none")
	buggy := flag.Bool("buggy", false, "record with bug-triggering inputs")
	seed := flag.Int64("seed", 42, "workload seed")
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}

	switch {
	case *analyzeFile != "":
		if err := doAnalyze(*analyzeFile); err != nil {
			fmt.Fprintf(os.Stderr, "safemem-trace: %v\n", err)
			os.Exit(1)
		}
	case *statsFile != "":
		if err := doStats(*statsFile); err != nil {
			fmt.Fprintf(os.Stderr, "safemem-trace: %v\n", err)
			os.Exit(1)
		}
	case *record != "" && *replay == "":
		if err := doRecord(*record, *out, apps.Config{Seed: *seed, Scale: *scale, Buggy: *buggy}); err != nil {
			fmt.Fprintf(os.Stderr, "safemem-trace: %v\n", err)
			os.Exit(1)
		}
	case *replay != "" && *record == "":
		if err := doReplay(*replay, *toolName); err != nil {
			fmt.Fprintf(os.Stderr, "safemem-trace: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "safemem-trace: exactly one of -record, -replay, -stats or -analyze required")
		os.Exit(2)
	}
}

// doAnalyze runs the Section 3 leak analysis offline over a recorded trace:
// zero production overhead, no ECC hardware, hindsight-exact pruning.
func doAnalyze(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	findings, err := trace.Analyze(r, trace.DefaultAnalyzeOptions())
	if err != nil {
		return err
	}
	if len(findings) == 0 {
		fmt.Printf("%s: no leak candidates\n", path)
		return nil
	}
	fmt.Printf("%s: %d leak candidate group(s)\n", path, len(findings))
	for _, fd := range findings {
		fmt.Printf("  %s\n", fd)
	}
	return nil
}

func doStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	s, err := trace.Summarize(r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d events\n", path, s.Events)
	fmt.Printf("  allocations  %d (%d bytes), frees %d\n", s.Mallocs, s.BytesAlloced, s.Frees)
	fmt.Printf("  accesses     %d loads, %d stores\n", s.Loads, s.Stores)
	fmt.Printf("  computes     %d, calls %d, returns %d\n", s.Computes, s.Calls, s.Returns)
	fmt.Printf("  anomalies    %d out-of-bounds, %d freed-memory accesses\n", s.OutOfBounds, s.FreedAccesses)
	return nil
}

func doRecord(appName, path string, cfg apps.Config) error {
	app, ok := apps.Get(appName)
	if !ok {
		return fmt.Errorf("unknown app %q", appName)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		return err
	}
	alloc, err := heap.New(m, heap.Options{Limit: 48 << 20})
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(w)
	rec.Attach(m, alloc)

	env := &apps.Env{M: m, Alloc: alloc}
	if err := m.Run(func() error { return app.Run(env, cfg) }); err != nil {
		return fmt.Errorf("recording run terminated: %w", err)
	}
	if err := w.Close(); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Printf("recorded %s to %s: %d events (%d mallocs, %d frees, %d accesses, %d dropped)\n",
		appName, path, w.Events(), st.Mallocs, st.Frees, st.Accesses, st.Dropped)
	return nil
}

func doReplay(path, toolName string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}

	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		return err
	}

	var ho heap.Options
	switch toolName {
	case "safemem":
		ho = safemem.HeapOptions(true)
	case "pageprot":
		ho = pageprot.HeapOptions()
	case "purify", "none":
		ho = heap.Options{}
	default:
		return fmt.Errorf("unknown tool %q", toolName)
	}
	ho.Limit = 96 << 20
	alloc, err := heap.New(m, ho)
	if err != nil {
		return err
	}

	var smTool *safemem.Tool
	var pfTool *purify.Tool
	var ppTool *pageprot.Tool
	switch toolName {
	case "safemem":
		smTool, err = safemem.Attach(m, alloc, safemem.DefaultOptions())
	case "purify":
		pfTool = purify.Attach(m, alloc, purify.DefaultOptions())
	case "pageprot":
		ppTool, err = pageprot.Attach(m, alloc, false)
	}
	if err != nil {
		return err
	}

	var st trace.ReplayStats
	runErr := m.Run(func() error {
		var err error
		st, err = trace.Replay(r, m, alloc)
		return err
	})
	fmt.Printf("replayed %s under %s: %d events (%d mallocs, %d frees, %d accesses), sim time %s\n",
		path, toolName, st.Events, st.Mallocs, st.Frees, st.Accesses, m.Clock.Now())
	if runErr != nil {
		fmt.Printf("replay terminated: %v\n", runErr)
	}
	switch {
	case smTool != nil:
		for _, rep := range smTool.Reports() {
			fmt.Printf("  BUG %s\n", rep)
		}
		if len(smTool.Reports()) == 0 {
			fmt.Println("  no bugs reported")
		}
	case pfTool != nil:
		for _, rep := range pfTool.Reports() {
			fmt.Printf("  BUG %s\n", rep)
		}
	case ppTool != nil:
		for _, rep := range ppTool.Reports() {
			fmt.Printf("  BUG %s\n", rep)
		}
	}
	return nil
}
