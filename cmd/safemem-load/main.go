// Command safemem-load is the detection fleet's load generator: it drives
// many concurrent job-submission sessions against a safemem-serve
// instance, honours (or deliberately ignores) the server's back-pressure,
// waits for every admitted job to reach a terminal state, and reports the
// outcome distribution.
//
// Usage:
//
//	safemem-load [-url http://host:9090] [-jobs 1000] [-concurrency 32]
//	             [-seed N] [-tenants N] [-burst] [-chaos] [-self]
//	             [-timeout 2m] [-json] [-version]
//
// With -self (or an empty -url) it self-hosts: an in-process
// safemem-serve fleet on an ephemeral port, loaded over real HTTP — the
// one-command smoke test. -chaos then also enables server-side fault
// injection (worker panics, stalls, transient failures), turning the run
// into the chaos suite: every job must still reach a terminal state.
//
// -burst submits without pacing or retry, the queue-pressure pattern that
// exercises 429 + Retry-After admission control. -chaos implies -burst.
//
// Exit status: 0 when every admitted job reached a terminal state, 1
// otherwise (a stuck job is a fleet bug), 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"safemem/internal/fleet"
	"safemem/internal/obsrv"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/obsrv/logging"
)

func main() {
	url := flag.String("url", "", "target safemem-serve base URL (empty = -self)")
	jobs := flag.Int("jobs", 200, "jobs to submit")
	concurrency := flag.Int("concurrency", 32, "concurrent submitter sessions")
	seed := flag.Uint64("seed", 1, "seed for the generated job mix")
	tenants := flag.Int("tenants", 0, "spread jobs across N tenant names (exercises quotas)")
	burst := flag.Bool("burst", false, "submit without pacing or retry — force queue-pressure 429s")
	chaos := flag.Bool("chaos", false, "chaos mode: bursty submission; with -self, also server-side fault injection")
	self := flag.Bool("self", false, "self-host an in-process fleet on an ephemeral port and load that")
	timeout := flag.Duration("timeout", 2*time.Minute, "whole-run budget")
	asJSON := flag.Bool("json", false, "print the report as JSON")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}
	log := logging.L("safemem-load")
	if err := logging.Setup(); err != nil {
		fmt.Fprintf(os.Stderr, "safemem-load: %v\n", err)
		os.Exit(2)
	}

	base := *url
	if base == "" {
		*self = true
	}
	if *self {
		fl := fleet.Start(fleet.Config{
			Chaos: selfChaos(*chaos, *seed),
		})
		srv, err := obsrv.Start(obsrv.Config{
			Addr:     "127.0.0.1:0",
			Registry: fl.Registry(),
			Extra:    fl.Handlers(),
			Ready:    fl.ReadyCheck,
		})
		if err != nil {
			log.Error("self-host listen", "err", err)
			os.Exit(2)
		}
		base = srv.URL()
		log.Info("self-hosted fleet", "addr", srv.Addr(), "chaos", *chaos)
		defer srv.Close()
		defer fl.Close() //nolint:errcheck // drain errors only mean slow jobs
	}

	rep, err := fleet.RunLoad(context.Background(), fleet.LoadConfig{
		BaseURL:     base,
		Jobs:        *jobs,
		Concurrency: *concurrency,
		Seed:        *seed,
		Tenants:     *tenants,
		Burst:       *burst || *chaos,
		Timeout:     *timeout,
	})
	if *asJSON {
		b, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(b))
	} else {
		fmt.Print(rep.String())
	}
	if err != nil {
		log.Error("load run failed", "err", err)
		os.Exit(1)
	}
}

// selfChaos builds the self-hosted server's chaos config: aggressive
// enough that a few-hundred-job run reliably draws every fate.
func selfChaos(on bool, seed uint64) *fleet.Chaos {
	if !on {
		return nil
	}
	return &fleet.Chaos{
		Seed:       seed,
		PanicEvery: 15,
		SlowEvery:  25,
		SlowFor:    300 * time.Millisecond,
		FailEvery:  10,
	}
}
