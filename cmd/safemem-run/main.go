// Command safemem-run executes one of the evaluation workloads under a
// chosen monitoring tool and prints its reports and statistics — the
// "run the buggy app under SafeMem and read the bug report" experience.
//
// Usage:
//
//	safemem-run -app ypserv1 [-tool safemem|safemem-ml|safemem-mc|sample|purify|pageprot|none]
//	            [-buggy] [-seed N] [-scale N] [-stop] [-sample-rate N]
//	            [-fault-rate R] [-storm] [-retire]
//	            [-stats] [-metrics-out FILE] [-trace-out FILE] [-jsonl-out FILE]
//	            [-sample-interval MS] [-serve :9090] [-version]
//
// Examples:
//
//	safemem-run -app gzip -buggy            # catch the overflow with SafeMem
//	safemem-run -app squid1 -buggy          # catch the leak
//	safemem-run -app gzip -tool purify      # same workload under Purify
//	safemem-run -app squid1 -buggy -trace-out /tmp/t.json   # Perfetto timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"safemem/internal/apps"
	"safemem/internal/bench"
	"safemem/internal/obsrv"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/obsrv/logging"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

func main() {
	appName := flag.String("app", "", "application to run (ypserv1, proftpd, squid1, ypserv2, gzip, tar, squid2)")
	toolName := flag.String("tool", "safemem", "monitoring tool: safemem, safemem-ml, safemem-mc, sample, purify, pageprot, mmp, none")
	sampleRate := flag.Int("sample-rate", 8, "with -tool sample: watch ~1/N of allocations")
	buggy := flag.Bool("buggy", false, "use the bug-triggering inputs")
	seed := flag.Int64("seed", 42, "workload generator seed")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	explain := flag.Bool("explain", false, "print gdb-style elaborations of SafeMem reports")
	stats := flag.Bool("stats", false, "print cache and ECC-controller statistics at exit")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-format metrics dump to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON timeline (chrome://tracing, Perfetto) to this file")
	jsonlOut := flag.String("jsonl-out", "", "write the JSONL event log to this file")
	sampleMS := flag.Float64("sample-interval", 1, "gauge sampler period in simulated milliseconds (0 disables)")
	faultRate := flag.Float64("fault-rate", 0, "background DRAM fault events per million cycles (0 = perfect DIMMs)")
	storm := flag.Bool("storm", false, "cluster background faults into error-storm episodes")
	retire := flag.Bool("retire", false, "retire failing pages and continue instead of panicking on uncorrectable errors")
	serve := flag.String("serve", "", "serve live observability endpoints (/metrics, /events, /healthz, …) on this address, e.g. :9090")
	flightDump := flag.String("flight-dump", "", "with -serve: flush the flight-recorder event history to this JSONL file on SIGINT/SIGTERM drain (empty disables)")
	flag.Parse()
	if buildinfo.HandleFlag(os.Stdout) {
		return
	}
	log := logging.L("safemem-run")
	if err := logging.Setup(); err != nil {
		fmt.Fprintf(os.Stderr, "safemem-run: %v\n", err)
		os.Exit(2)
	}

	if *appName == "" {
		var names []string
		for _, a := range apps.All() {
			names = append(names, a.Name)
		}
		fmt.Fprintf(os.Stderr, "safemem-run: -app required (one of %s)\n", strings.Join(names, ", "))
		os.Exit(2)
	}
	app, ok := apps.Get(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "safemem-run: unknown app %q\n", *appName)
		os.Exit(2)
	}

	var tool bench.Tool
	switch *toolName {
	case "safemem":
		tool = bench.ToolSafeMemBoth
	case "safemem-ml":
		tool = bench.ToolSafeMemML
	case "safemem-mc":
		tool = bench.ToolSafeMemMC
	case "sample":
		tool = bench.ToolSample
	case "purify":
		tool = bench.ToolPurify
	case "pageprot":
		tool = bench.ToolPageProt
	case "mmp":
		tool = bench.ToolMMP
	case "none":
		tool = bench.ToolNone
	default:
		fmt.Fprintf(os.Stderr, "safemem-run: unknown tool %q\n", *toolName)
		os.Exit(2)
	}

	// A live server needs a session even when no export file was asked for:
	// the sampler's simulation-thread reads are what keep the /metrics
	// source cache fresh.
	telemetryWanted := *metricsOut != "" || *traceOut != "" || *jsonlOut != "" || *serve != ""
	var session *telemetry.Session
	if telemetryWanted {
		session = telemetry.NewSession(telemetry.Config{
			TraceEnabled:   *traceOut != "" || *jsonlOut != "",
			SampleInterval: simtime.FromMicroseconds(*sampleMS * 1000),
		})
		bench.Telemetry = session
	}
	if *serve != "" {
		srv, err := obsrv.Start(obsrv.Config{Addr: *serve, Session: session, DrainDump: *flightDump})
		if err != nil {
			log.Error("observability server", "err", err)
			os.Exit(2)
		}
		defer srv.Close()
		// SIGINT/SIGTERM drain the embedded server with a deadline and
		// flush the flight-recorder dump instead of dying mid-scrape.
		defer obsrv.HandleSignals(srv, obsrv.DefaultShutdownTimeout, nil, os.Exit)()
		log.Info("observability server listening", "addr", srv.Addr())
	}

	if *faultRate > 0 {
		bench.Faults = &bench.FaultKnobs{Rate: *faultRate, Storm: *storm, Retire: *retire}
	}
	if tool == bench.ToolSample {
		bench.SampleRate = *sampleRate
	}

	cfg := apps.Config{Seed: *seed, Scale: *scale, Buggy: *buggy}
	res, err := bench.Run(app.Name, tool, cfg)
	if err != nil {
		log.Error("run failed", "app", app.Name, "err", err)
		os.Exit(1)
	}

	fmt.Printf("%s (%s, %s inputs) under %v\n", app.Name, app.Description, inputKind(*buggy), tool)
	fmt.Printf("  simulated CPU time: %s (%d loads, %d stores, %d mallocs, %d frees)\n",
		res.Cycles, res.Machine.Loads, res.Machine.Stores, res.Heap.Mallocs, res.Heap.Frees)
	if res.Err != nil {
		fmt.Printf("  program terminated: %v\n", res.Err)
	}
	if *faultRate > 0 {
		r := res.Resilience
		fmt.Printf("  dram faults: %d events injected, %d pages retired, %d watches migrated, %d data-loss, %d scrub-daemon steps\n",
			res.FaultEvents, r.PagesRetired, r.WatchesMigrated, r.DataLossEvents, r.ScrubDaemonSteps)
	}

	switch tool {
	case bench.ToolSafeMemML, bench.ToolSafeMemMC, bench.ToolSafeMemBoth:
		st := res.SafeMemStats
		fmt.Printf("  safemem: %d allocs wrapped, %d leak checks, %d suspects (%d pruned), max %d watched lines\n",
			st.Allocs, st.LeakChecks, st.SuspectsFlagged, st.SuspectsPruned, st.MaxWatchedLines)
		if len(res.SafeMem) == 0 {
			fmt.Println("  no bugs reported")
		}
		for i, r := range res.SafeMem {
			fmt.Printf("  BUG %s\n", r)
			if *explain && i < len(res.SafeMemExplain) {
				for _, line := range strings.Split(strings.TrimRight(res.SafeMemExplain[i], "\n"), "\n") {
					fmt.Printf("      %s\n", line)
				}
			}
		}
	case bench.ToolSample:
		ss := res.SampleStats
		fmt.Printf("  sample: 1/%d rate — %d sampled, %d unsampled allocs (pool peak %d live), %d detections\n",
			*sampleRate, ss.Sampled, ss.Unsampled, ss.PoolPeak, ss.Detections)
		st := res.SafeMemStats
		fmt.Printf("  safemem (inner): %d allocs wrapped, %d suspects (%d pruned), max %d watched lines\n",
			st.Allocs, st.SuspectsFlagged, st.SuspectsPruned, st.MaxWatchedLines)
		if len(res.SafeMem) == 0 {
			fmt.Println("  no bugs reported (unsampled allocations are never checked — rerun with a lower -sample-rate or another seed)")
		}
		for _, r := range res.SafeMem {
			fmt.Printf("  BUG %s\n", r)
		}
	case bench.ToolPurify:
		st := res.PurifyStats
		fmt.Printf("  purify: %d accesses checked, %d leak scans (%d bytes swept)\n",
			st.AccessesChecked, st.LeakScans, st.BytesSwept)
		if len(res.Purify) == 0 {
			fmt.Println("  no bugs reported")
		}
		for _, r := range res.Purify {
			fmt.Printf("  BUG %s\n", r)
		}
	case bench.ToolPageProt:
		st := res.PageProtStats
		fmt.Printf("  pageprot: %d protects, %d faults taken\n", st.Protects, st.FaultsTaken)
		for _, r := range res.PageProt {
			fmt.Printf("  BUG %s\n", r)
		}
	case bench.ToolMMP:
		st := res.MMPStats
		fmt.Printf("  mmp: %d allocations tabled, %d accesses checked\n", st.Allocs, st.Checks)
		for _, r := range res.MMP {
			fmt.Printf("  BUG %s\n", r)
		}
	}

	if *stats {
		cs := res.Cache
		total := cs.Hits + cs.Misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(cs.Hits) / float64(total)
		}
		fmt.Printf("  cache: %d hits, %d misses (%.2f%% hit ratio), %d write-backs, %d flushes\n",
			cs.Hits, cs.Misses, 100*ratio, cs.WriteBacks, cs.Flushes)
		ms := res.Ctrl
		fmt.Printf("  ecc-ctrl: %d line reads, %d line writes, %d corrected-single, %d uncorrectable\n",
			ms.LineReads, ms.LineWrites, ms.CorrectedSingle, ms.Uncorrectable)
		fmt.Printf("  scrub: %d lines scrubbed (%d corrected), %d coordinated passes\n",
			ms.ScrubbedLines, ms.ScrubCorrected, res.Kern.ScrubPasses)
	}

	if session != nil {
		if err := session.ExportFiles(*metricsOut, *jsonlOut, *traceOut); err != nil {
			log.Error("telemetry export", "err", err)
			os.Exit(1)
		}
	}
}

func inputKind(buggy bool) string {
	if buggy {
		return "buggy"
	}
	return "normal"
}
