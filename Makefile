GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: compile, vet, tests, race tests.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
