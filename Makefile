GO ?= go

.PHONY: all build vet test race check ci bench bench-quick bench-check bench-fleet bench-campaign fleet-smoke campaign storm fuzz-short frontier coverage-floor serve-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# internal/bench alone needs most of an hour of CPU under the race
# detector; the explicit timeout keeps it from dying at go test's 10m
# default.
race:
	$(GO) test -race -timeout 30m ./...

# campaign runs the randomized bug campaign on a fixed seed set with a
# wall-clock budget. Exit status 1 (with one-line repro commands printed)
# on any oracle violation.
campaign:
	$(GO) run ./cmd/safemem-fuzz -seeds 48 -shards 8 -budget 30s

# storm reruns a seeded campaign on flaky DIMMs: a background DRAM fault
# process with error-storm episodes, the kernel scrub daemon, and page
# retirement instead of panics. It must complete with zero crashes and zero
# oracle violations — detection quality survives failing hardware.
storm:
	$(GO) run ./cmd/safemem-fuzz -seeds 24 -shards 8 -budget 30s -fault-rate 40 -storm -retire

# frontier regenerates the tracked detection-probability frontier
# (BENCH_frontier.json): sampling rate × fleet size over the campaign bug
# templates, validated against the analytic 1-(1-1/N)^k before writing.
frontier:
	$(GO) run ./cmd/safemem-bench -experiment frontier

# fuzz-short gives each native fuzz target a few seconds of coverage-guided
# exploration on top of its checked-in seed corpus.
fuzz-short:
	$(GO) test ./internal/ecc -run '^$$' -fuzz FuzzDecode -fuzztime 3s
	$(GO) test ./internal/ecc -run '^$$' -fuzz FuzzEncodeRoundTrip -fuzztime 3s
	$(GO) test ./internal/ecc -run '^$$' -fuzz FuzzScramble -fuzztime 3s
	$(GO) test ./internal/sampletool -run '^$$' -fuzz FuzzSampleDecisions -fuzztime 3s

# coverage-floor holds the safety-critical packages to statement-coverage
# thresholds: the sampling tool (a bookkeeping slip means phantom reports
# or double-watched lines), the serving fleet (its error paths —
# admission rejects, retries, panic isolation, drains — are exactly the
# code that only runs when something is already wrong), and the snapshot
# store (a restore or taint slip silently corrupts every warm run).
coverage-floor:
	./scripts/coverage_floor.sh ./internal/sampletool 85 ./internal/fleet 80 ./internal/snapshot 85

# serve-smoke is the serving-stack end-to-end gate: a full safemem-serve
# stack (fleet + observability plane on one listener) driven over real
# HTTP with a mixed job batch (all scenario tools incl. sampling, fault
# models, app jobs) plus its chaos variant (injected panics, stalls and
# transient failures under bursty submission), under the race detector.
# Every admitted job must reach a terminal state, the stack must drain
# cleanly, and zero goroutines may leak.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./internal/fleet

# check is the full verification gate: compile, vet, tests, race tests,
# short fuzzing, the randomized campaigns (clean and storm hardware), and
# the throughput-regression gate against the tracked baseline.
check: build vet test race fuzz-short campaign storm bench-check

# ci is the continuous-integration gate (.github/workflows/ci.yml): the
# full build + vet + test sweep, a shuffled re-run of the order-sensitive
# new packages, the coverage floors, a race-detector pass over the
# concurrent serving/observability/telemetry layers plus the sample-tool
# campaign and the snapshot-on campaign equivalence leg (cheap enough for
# every push, unlike `make race`), the serving-stack chaos smoke, a
# one-shard fleet-bench + bench_compare.sh smoke, and the
# throughput/campaign regression gates.
ci: build vet test
	$(GO) test -shuffle=on -count=1 ./internal/sampletool ./internal/campaign ./internal/bench/frontier
	$(MAKE) coverage-floor
	$(GO) test -race ./internal/obsrv/... ./internal/telemetry/... ./internal/fleet
	$(GO) test -race -run 'TestSampleCampaign|TestSampleRateOne$$' ./internal/campaign
	$(GO) test -race -count=1 ./internal/snapshot
	$(GO) test -race -count=1 -run 'TestSnapshot' ./internal/campaign
	$(MAKE) serve-smoke
	$(MAKE) fleet-smoke
	$(MAKE) bench-check

# bench runs every Go benchmark in the tree (ECC encode/decode, cache hit
# path, controller read path, ablations, ...).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# bench-quick refreshes the tracked simulator-throughput baseline
# (BENCH_throughput.json): each app runs uninstrumented and wall-clocked.
# Simulated columns are deterministic; host columns describe this machine.
bench-quick:
	$(GO) run ./cmd/safemem-bench -experiment throughput

# bench-check guards the perf fast lanes: it reruns the throughput
# experiment and fails (exit 1) if host-ns/instr regressed more than 25%
# against the tracked BENCH_throughput.json baseline — on the aggregate
# total or on any single app's row (a batched-run bail-out regression can
# triple one workload while barely moving the total) — then reruns the
# campaign experiment and fails if warm scenarios/sec (any tool row, the
# total, the short tail, or the fleet jobs/sec leg) regressed more than
# 25% against BENCH_campaign.json. After a deliberate perf trade-off,
# accept the new numbers with `make bench-check BENCHFLAGS=-update`.
bench-check:
	$(GO) run ./cmd/safemem-bench -experiment throughput -throughput-check BENCH_throughput.json $(BENCHFLAGS)
	$(GO) run ./cmd/safemem-bench -experiment campaign -campaign-check BENCH_campaign.json $(BENCHFLAGS)

# bench-campaign refreshes the tracked campaign-throughput baseline
# (BENCH_campaign.json): per tool config, scenario batches wall-clocked
# cold (fresh machine per scenario) and warm (snapshot restore per
# scenario), plus a snapshot-backed fleet jobs/sec leg. Simulated work is
# identical on both paths; the speedup columns describe this machine.
bench-campaign:
	$(GO) run ./cmd/safemem-bench -experiment campaign

# bench-fleet refreshes the tracked fleet-throughput baseline
# (BENCH_fleet.json): shards × apps uninstrumented runs on pooled machines
# across every host core — aggregate sim-MIPS and sim-MIPS/core.
bench-fleet:
	$(GO) run ./cmd/safemem-bench -experiment fleet

# fleet-smoke is the cheap ci variant: build the bench CLI and step one
# fleet shard without touching the tracked baseline, plus self-compares of
# the bench_compare.sh delta-table tool against every tracked baseline it
# understands (all deltas must read +0.0%).
fleet-smoke:
	$(GO) run ./cmd/safemem-bench -experiment fleet -fleet-shards 1 -fleet-out ""
	./scripts/bench_compare.sh BENCH_throughput.json BENCH_throughput.json
	./scripts/bench_compare.sh BENCH_fleet.json BENCH_fleet.json
	./scripts/bench_compare.sh BENCH_campaign.json BENCH_campaign.json
