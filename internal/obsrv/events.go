package obsrv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"safemem/internal/obsrv/flight"
)

// sseHeartbeat is the keep-alive comment interval on idle /events streams.
const sseHeartbeat = 15 * time.Second

// handleEvents streams the flight recorder as Server-Sent Events: each
// event is `id: <seq>` / `event: <kind>` / `data: <json>`. On connect the
// stream replays the last ReplayLastN ring events, then follows live
// emission until the client disconnects or the server closes. A slow
// client's missed events are dropped (and counted) rather than ever
// back-pressuring emitters.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before snapshotting the replay so nothing emitted in
	// between is lost; events the replay already covered are skipped by
	// sequence number when they arrive on the channel.
	ch, cancel := s.rec.Subscribe(256)
	defer cancel()

	var lastSent uint64
	sentAny := false
	send := func(ev flight.Event) bool {
		if sentAny && ev.Seq <= lastSent {
			return true // replayed already
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
			return false
		}
		lastSent, sentAny = ev.Seq, true
		return true
	}

	if s.cfg.ReplayLastN > 0 {
		for _, ev := range s.rec.LastN(s.cfg.ReplayLastN) {
			if !send(ev) {
				return
			}
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !send(ev) {
				return
			}
			// Drain whatever else is queued before flushing once.
			for len(ch) > 0 {
				if ev, ok = <-ch; !ok || !send(ev) {
					return
				}
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
