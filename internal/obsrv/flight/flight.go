// Package flight is the simulator's flight recorder: a fixed-size ring
// buffer of structured host-side events — bug reports, degradation events,
// page retirements, fault-model plants, campaign verdicts and shard
// lifecycle — that a live /events endpoint can stream and a failing
// campaign can dump as last-seconds context next to its repro.
//
// Determinism contract: the recorder is observation-only. Emit never reads
// or advances the simulated clock (emitters pass the cycle count they
// already hold), never allocates simulated memory, and nothing in the
// simulation ever reads the recorder back. Simulated results are therefore
// bit-identical with the recorder hot, cold, or absent; only host-side
// observability changes. Emission is safe from any goroutine, so sharded
// campaign workers and an HTTP streamer can share one recorder.
package flight

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"

	"safemem/internal/simtime"
)

// Kind classifies a flight-recorder event.
type Kind string

// The event vocabulary. Emitters across the tree use these constants so
// the /events stream and health endpoints can filter without string
// matching on free-form detail text.
const (
	// KindBugReport is one SafeMem bug report (fields: addr, site,
	// latency_cycles).
	KindBugReport Kind = "bug-report"
	// KindDegraded is one monitoring capability SafeMem gave up to keep
	// the program running (core's DegradedEvent).
	KindDegraded Kind = "degraded"
	// KindPageRetired is a kernel page retirement (fields: old_frame,
	// new_frame, moved_watches).
	KindPageRetired Kind = "page-retired"
	// KindRetireFailed is an abandoned retirement (no spare frame).
	KindRetireFailed Kind = "retire-failed"
	// KindDataLoss is an unrepairable uncorrectable error absorbed under
	// RetireAndContinue.
	KindDataLoss Kind = "data-loss"
	// KindFaultPlant is one background fault-model event (fields: va, bit).
	KindFaultPlant Kind = "fault-plant"
	// KindVerdict is one campaign ⟨scenario, config⟩ oracle verdict
	// (fields: seed, tp, fp, missed).
	KindVerdict Kind = "verdict"
	// KindViolation is one campaign oracle violation.
	KindViolation Kind = "violation"
	// KindShardStart / KindShardFinish bracket one campaign worker.
	KindShardStart  Kind = "shard-start"
	KindShardFinish Kind = "shard-finish"
	// KindCampaignStart / KindCampaignFinish bracket a whole campaign.
	KindCampaignStart  Kind = "campaign-start"
	KindCampaignFinish Kind = "campaign-finish"

	// Fleet lifecycle (internal/fleet, the safemem-serve scheduler).
	// KindJobAdmitted is a job accepted into the queue (fields: job, seed).
	KindJobAdmitted Kind = "job-admitted"
	// KindJobRejected is a job refused at admission — queue saturation,
	// tenant quota, or draining (detail says which).
	KindJobRejected Kind = "job-rejected"
	// KindJobDone is a job reaching the done state (fields: job, attempts).
	KindJobDone Kind = "job-done"
	// KindJobRetry is one transient failure consuming retry budget.
	KindJobRetry Kind = "job-retry"
	// KindJobCrashed is a worker panic isolated to its job; the in-flight
	// machine was discarded, never repooled.
	KindJobCrashed Kind = "job-crashed"
	// KindJobTimedOut is a job killed by its deadline (or abandoned by the
	// watchdog after ignoring cancellation).
	KindJobTimedOut Kind = "job-timed-out"
	// KindJobFailed is a job out of retry budget (terminal failure).
	KindJobFailed Kind = "job-failed"
	// KindDrainStart / KindDrainFinish bracket a fleet drain (SIGTERM).
	KindDrainStart  Kind = "drain-start"
	KindDrainFinish Kind = "drain-finish"
)

// Event is one recorded flight event. WallNS is host wall-clock time
// (observability metadata, deliberately outside the simulation); Cycles is
// the emitter's simulated time, when it has one.
type Event struct {
	Seq       uint64            `json:"seq"`
	WallNS    int64             `json:"wall_ns"`
	Cycles    uint64            `json:"cycles,omitempty"`
	Kind      Kind              `json:"kind"`
	Component string            `json:"component,omitempty"`
	Detail    string            `json:"detail,omitempty"`
	Fields    map[string]uint64 `json:"fields,omitempty"`
}

// Field is one numeric annotation on an event.
type Field struct {
	Key string
	Val uint64
}

// F builds a Field.
func F(key string, val uint64) Field { return Field{Key: key, Val: val} }

// DefaultCapacity is the Default recorder's ring size. At the simulator's
// event rates (reports, retirements, campaign verdicts — not per-access
// noise) this holds minutes of context.
const DefaultCapacity = 4096

// Recorder is a fixed-capacity ring of events with a subscriber fan-out.
// All methods are safe for concurrent use; a nil *Recorder is a valid
// no-op emitter, so call sites never need to guard.
type Recorder struct {
	mu     sync.Mutex
	ring   []Event
	next   uint64 // total events ever emitted; ring index is next % cap
	counts map[Kind]uint64
	subs   map[int]chan Event
	subID  int
	// subDropped counts events a slow subscriber missed (its channel was
	// full); the ring itself never blocks or drops below capacity.
	subDropped uint64
}

// Default is the process-wide recorder every component emits into unless a
// caller injects its own (tests do, for isolation).
var Default = New(DefaultCapacity)

// New creates a recorder holding the last capacity events.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring:   make([]Event, 0, capacity),
		counts: make(map[Kind]uint64),
		subs:   make(map[int]chan Event),
	}
}

// Emit records one event on the Default recorder.
func Emit(kind Kind, component string, cycles simtime.Cycles, detail string, fields ...Field) {
	Default.Emit(kind, component, cycles, detail, fields...)
}

// Emit records one event: it stamps the sequence number and host wall
// clock, overwrites the oldest slot once the ring is full, and fans the
// event out to subscribers without blocking (a full subscriber channel
// drops the event for that subscriber only).
func (r *Recorder) Emit(kind Kind, component string, cycles simtime.Cycles, detail string, fields ...Field) {
	if r == nil {
		return
	}
	ev := Event{
		WallNS:    time.Now().UnixNano(),
		Cycles:    uint64(cycles),
		Kind:      kind,
		Component: component,
		Detail:    detail,
	}
	if len(fields) > 0 {
		ev.Fields = make(map[string]uint64, len(fields))
		for _, f := range fields {
			ev.Fields[f.Key] = f.Val
		}
	}

	r.mu.Lock()
	ev.Seq = r.next
	r.next++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[int(ev.Seq%uint64(cap(r.ring)))] = ev
	}
	r.counts[kind]++
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default:
			r.subDropped++
		}
	}
	r.mu.Unlock()
}

// Total returns how many events have ever been emitted (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Count returns how many events of kind have ever been emitted.
func (r *Recorder) Count(kind Kind) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[kind]
}

// Counts returns a copy of the per-kind emission totals.
func (r *Recorder) Counts() map[Kind]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// SubscriberDrops returns how many events slow subscribers missed.
func (r *Recorder) SubscriberDrops() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subDropped
}

// LastN returns up to n most-recent events in emission order (oldest
// first). n <= 0 returns everything still in the ring.
func (r *Recorder) LastN(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := len(r.ring)
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Event, 0, n)
	for i := held - n; i < held; i++ {
		// Oldest surviving event is at next % cap once the ring wrapped,
		// at 0 before.
		idx := i
		if held == cap(r.ring) {
			idx = int((r.next + uint64(i)) % uint64(cap(r.ring)))
		}
		out = append(out, r.ring[idx])
	}
	return out
}

// Subscribe registers a live event channel with the given buffer and
// returns it with its cancel function. Events emitted while the channel is
// full are dropped for this subscriber (counted in SubscriberDrops);
// cancel closes the channel.
func (r *Recorder) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	r.mu.Lock()
	id := r.subID
	r.subID++
	r.subs[id] = ch
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if _, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(ch)
		}
		r.mu.Unlock()
	}
	return ch, cancel
}

// WriteJSONL writes the last n events (n <= 0: all held) as one JSON
// object per line — the flight-dump format.
func (r *Recorder) WriteJSONL(w io.Writer, n int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.LastN(n) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpFile writes the last n events to path as JSONL. This is the
// crash/violation snapshot the campaign runner drops next to its repro.
func (r *Recorder) DumpFile(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONL parses a dump written by WriteJSONL/DumpFile.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}
