package flight

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestRingHoldsLastN(t *testing.T) {
	r := New(8)
	for i := 0; i < 20; i++ {
		r.Emit(KindVerdict, "test", 0, fmt.Sprintf("event %d", i), F("i", uint64(i)))
	}
	if got := r.Total(); got != 20 {
		t.Fatalf("Total = %d, want 20", got)
	}
	evs := r.LastN(0)
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	for j, ev := range evs {
		want := uint64(12 + j)
		if ev.Seq != want {
			t.Errorf("event %d: seq %d, want %d", j, ev.Seq, want)
		}
		if ev.Fields["i"] != want {
			t.Errorf("event %d: field i = %d, want %d", j, ev.Fields["i"], want)
		}
	}
	if got := r.LastN(3); len(got) != 3 || got[0].Seq != 17 {
		t.Fatalf("LastN(3) = %+v, want seqs 17..19", got)
	}
}

func TestLastNBeforeWrap(t *testing.T) {
	r := New(16)
	for i := 0; i < 5; i++ {
		r.Emit(KindBugReport, "safemem", 100, "r")
	}
	evs := r.LastN(0)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for j, ev := range evs {
		if ev.Seq != uint64(j) {
			t.Errorf("event %d: seq %d", j, ev.Seq)
		}
		if ev.Cycles != 100 {
			t.Errorf("event %d: cycles %d, want 100", j, ev.Cycles)
		}
	}
}

func TestCounts(t *testing.T) {
	r := New(4)
	r.Emit(KindDegraded, "safemem", 0, "")
	r.Emit(KindDegraded, "safemem", 0, "")
	r.Emit(KindPageRetired, "kernel", 0, "")
	if got := r.Count(KindDegraded); got != 2 {
		t.Errorf("Count(degraded) = %d, want 2", got)
	}
	if got := r.Count(KindPageRetired); got != 1 {
		t.Errorf("Count(page-retired) = %d, want 1", got)
	}
	if got := r.Count(KindDataLoss); got != 0 {
		t.Errorf("Count(data-loss) = %d, want 0", got)
	}
	c := r.Counts()
	if c[KindDegraded] != 2 || c[KindPageRetired] != 1 {
		t.Errorf("Counts() = %v", c)
	}
}

func TestSubscribe(t *testing.T) {
	r := New(8)
	ch, cancel := r.Subscribe(4)
	r.Emit(KindVerdict, "campaign", 0, "a", F("seed", 7))
	ev := <-ch
	if ev.Kind != KindVerdict || ev.Fields["seed"] != 7 {
		t.Fatalf("subscriber got %+v", ev)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	// Emitting after cancel must not panic or deliver.
	r.Emit(KindVerdict, "campaign", 0, "b")
	// Double cancel is a no-op.
	cancel()
}

func TestSubscriberDropsWhenFull(t *testing.T) {
	r := New(64)
	_, cancel := r.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		r.Emit(KindFaultPlant, "faultmodel", 0, "")
	}
	if got := r.SubscriberDrops(); got != 8 {
		t.Errorf("SubscriberDrops = %d, want 8", got)
	}
	// The ring itself kept everything.
	if got := len(r.LastN(0)); got != 10 {
		t.Errorf("ring holds %d, want 10", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(8)
	r.Emit(KindViolation, "campaign", 1234, "missed plant", F("seed", 42), F("site", 0x9000))
	r.Emit(KindDataLoss, "kernel", 5678, "line 0x40")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("round-tripped %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindViolation || evs[0].Fields["seed"] != 42 || evs[0].Cycles != 1234 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KindDataLoss || evs[1].Detail != "line 0x40" {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestDumpFile(t *testing.T) {
	r := New(8)
	for i := 0; i < 12; i++ {
		r.Emit(KindVerdict, "campaign", 0, "", F("i", uint64(i)))
	}
	path := t.TempDir() + "/flight.jsonl"
	if err := r.DumpFile(path, 4); err != nil {
		t.Fatal(err)
	}
	f, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(bytes.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 || evs[0].Fields["i"] != 8 {
		t.Fatalf("dump = %+v, want events 8..11", evs)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit(KindVerdict, "x", 0, "")
	if r.Total() != 0 || r.Count(KindVerdict) != 0 || r.LastN(5) != nil || r.Counts() != nil {
		t.Fatal("nil recorder not a no-op")
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := New(128)
	ch, cancel := r.Subscribe(16)
	done := make(chan struct{})
	go func() {
		for range ch {
		}
		close(done)
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(KindVerdict, "campaign", 0, "", F("w", uint64(w)))
				r.LastN(4)
				r.Count(KindVerdict)
			}
		}(w)
	}
	wg.Wait()
	cancel()
	<-done
	if got := r.Total(); got != 1600 {
		t.Fatalf("Total = %d, want 1600", got)
	}
	// All sequence numbers in the ring are distinct and the latest 128.
	seen := map[uint64]bool{}
	for _, ev := range r.LastN(0) {
		if ev.Seq < 1600-128 || seen[ev.Seq] {
			t.Fatalf("bad seq %d in ring", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
