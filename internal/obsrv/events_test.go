package obsrv

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"safemem/internal/obsrv/flight"
)

// stallSSE opens a raw /events connection that reads the response headers
// and then stops reading entirely — the misbehaving client whose kernel
// buffers eventually fill and block the handler's writes.
func stallSSE(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /events HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n", addr)
	// Read just past the headers so the handler is known to be streaming.
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response headers: %v", err)
		}
		if line == "\r\n" {
			break
		}
	}
	return conn
}

// TestEventsSlowConsumerDrops pins the no-back-pressure contract: a
// client that stops reading must never stall emitters. Its subscriber
// buffer fills, further events are dropped for that subscriber, and the
// drops are counted — both on the recorder and on the /metrics scrape.
func TestEventsSlowConsumerDrops(t *testing.T) {
	rec := flight.New(4096)
	s := testServer(t, Config{Recorder: rec, ReplayLastN: -1})

	conn := stallSSE(t, s.Addr())
	defer conn.Close()

	// Big payloads fill the handler's socket buffers fast; once writes
	// block, the 256-slot subscriber channel fills and drops begin. Every
	// Emit must return promptly regardless.
	pad := strings.Repeat("x", 4096)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; rec.SubscriberDrops() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no subscriber drops after 10s of emitting at a stalled client")
		}
		start := time.Now()
		rec.Emit(flight.KindShardStart, "test", 0, pad, flight.F("i", uint64(i)))
		if took := time.Since(start); took > time.Second {
			t.Fatalf("Emit blocked %v behind a stalled subscriber", took)
		}
	}

	// The drop count is part of the scrape surface.
	code, body, _ := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "safemem_flight_subscriber_drops_total") {
		t.Error("/metrics missing subscriber-drop counter")
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "safemem_flight_subscriber_drops_total") &&
			strings.HasSuffix(line, " 0") {
			t.Errorf("scrape reports zero drops after a stalled consumer: %q", line)
		}
	}
}

// sseClient collects one /events stream's lines until its context ends.
type sseClient struct {
	lines chan string
	resp  *http.Response
}

func dialSSE(t *testing.T, ctx context.Context, url string) *sseClient {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	c := &sseClient{lines: make(chan string, 1024), resp: resp}
	go func() {
		defer close(c.lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			c.lines <- sc.Text()
		}
	}()
	return c
}

func (c *sseClient) expect(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-c.lines:
			if !ok {
				t.Fatalf("stream closed waiting for %q", substr)
			}
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("timeout waiting for %q", substr)
		}
	}
}

// TestEventsReconnectWithReplay pins the reconnect story: a client that
// drops and comes back sees what it missed — ring replay covers the gap,
// and sequence numbers keep the history totally ordered across the two
// connections.
func TestEventsReconnectWithReplay(t *testing.T) {
	rec := flight.New(256)
	s := testServer(t, Config{Recorder: rec, ReplayLastN: 64})

	ctx1, cancel1 := context.WithCancel(context.Background())
	c1 := dialSSE(t, ctx1, s.URL())
	rec.Emit(flight.KindShardStart, "test", 0, "before disconnect", flight.F("mark", 1))
	c1.expect(t, `"mark":1`)
	cancel1()
	c1.resp.Body.Close()

	// The client is gone; these land only in the ring.
	for i := uint64(2); i <= 5; i++ {
		rec.Emit(flight.KindShardFinish, "test", 0, "while disconnected", flight.F("mark", i))
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	c2 := dialSSE(t, ctx2, s.URL())
	defer c2.resp.Body.Close()

	// Replay must deliver the missed events in order.
	for i := uint64(2); i <= 5; i++ {
		c2.expect(t, fmt.Sprintf(`"mark":%d`, i))
	}
	// And the stream continues live after replay.
	rec.Emit(flight.KindViolation, "test", 0, "after reconnect", flight.F("mark", 6))
	line := c2.expect(t, `"mark":6`)
	if !strings.HasPrefix(line, "data: ") {
		t.Errorf("live event after replay: %q", line)
	}
}

// TestEventsNoDuplicateAcrossReplayBoundary pins the seq-dedup in the
// handler: an event captured by both the replay snapshot and the live
// subscription must be sent once.
func TestEventsNoDuplicateAcrossReplayBoundary(t *testing.T) {
	rec := flight.New(256)
	s := testServer(t, Config{Recorder: rec, ReplayLastN: 64})
	rec.Emit(flight.KindShardStart, "test", 0, "boundary", flight.F("mark", 7))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := dialSSE(t, ctx, s.URL())
	defer c.resp.Body.Close()

	c.expect(t, `"mark":7`)
	// Emit a sentinel, then count how many times the boundary event
	// arrived by scanning everything up to the sentinel.
	rec.Emit(flight.KindShardFinish, "test", 0, "sentinel", flight.F("mark", 8))
	seen := 0
	deadline := time.After(5 * time.Second)
scan:
	for {
		select {
		case line, ok := <-c.lines:
			if !ok {
				t.Fatal("stream closed before sentinel")
			}
			if strings.Contains(line, `"mark":7`) {
				seen++
			}
			if strings.Contains(line, `"mark":8`) {
				break scan
			}
		case <-deadline:
			t.Fatal("timeout waiting for sentinel")
		}
	}
	if seen != 0 {
		t.Errorf("boundary event re-sent %d times after replay", seen)
	}
}

// TestEventsConcurrentScrapeWhileDraining hammers /metrics and /events
// with concurrent clients while emitters run and the server shuts down
// mid-traffic. Run under -race this pins the plane's concurrency safety;
// functionally it pins that Shutdown is idempotent and never deadlocks
// behind open SSE streams.
func TestEventsConcurrentScrapeWhileDraining(t *testing.T) {
	rec := flight.New(1024)
	cfg := Config{Addr: "127.0.0.1:0", Recorder: rec, ReplayLastN: 16}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Emitters: constant event flow through the drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				rec.Emit(flight.KindShardStart, "drain-test", 0, "tick", flight.F("i", uint64(i)))
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	// Scrapers: /metrics in a tight loop until the listener dies.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(s.URL() + "/metrics")
				if err != nil {
					return // listener closed mid-drain: expected
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	// SSE churn: connect, read a little, disconnect.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, s.URL()+"/events", nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
				cancel()
				if err != nil {
					return // listener closed mid-drain: expected
				}
			}
		}()
	}

	// Let traffic build, then drain while it's all in flight —
	// concurrently, from several goroutines, to pin idempotency.
	time.Sleep(100 * time.Millisecond)
	var shutdownWG sync.WaitGroup
	for g := 0; g < 3; g++ {
		shutdownWG.Add(1)
		go func() {
			defer shutdownWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
				t.Errorf("Shutdown: %v", err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { shutdownWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked behind open scrape/SSE connections")
	}
	close(stop)
	wg.Wait()
}
