// Package logging is the CLIs' structured-logging facade: a thin wrapper
// over log/slog with leveled, component-tagged loggers and a uniform pair
// of flags. Importing it registers -log-level and -log-format on the
// default flag set; after flag.Parse the CLI calls Setup once, then tags
// loggers per component with L("campaign"), L("bench"), ….
//
// Two handlers are supported: "console" (slog's text handler on stderr,
// the human default) and "json" (one JSON object per line, the
// log-shipper format). Status chatter goes through this package; computed
// results — tables, campaign summaries, -json payloads — stay on stdout
// via fmt, because they are output, not logs.
package logging

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

var (
	levelFlag  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	formatFlag = flag.String("log-format", "console", "log format: console or json")
)

// level is the dynamic level every handler built by this package shares,
// so tests (and a future SIGUSR-style toggle) can change verbosity live.
var level slog.LevelVar

// root is the configured base logger. Before Setup it defaults to a
// console handler at info, so library code calling L never nil-checks.
var root = slog.New(newHandler(os.Stderr, "console"))

func newHandler(w io.Writer, format string) slog.Handler {
	opts := &slog.HandlerOptions{Level: &level}
	if format == "json" {
		return slog.NewJSONHandler(w, opts)
	}
	return slog.NewTextHandler(w, opts)
}

// ParseLevel resolves a -log-level value.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("logging: unknown level %q (want debug|info|warn|error)", s)
	}
}

// Setup applies the -log-level / -log-format flags to the package logger.
// Call once after flag.Parse.
func Setup() error {
	return SetupWriter(os.Stderr)
}

// SetupWriter is Setup with an explicit destination (tests capture logs
// through it).
func SetupWriter(w io.Writer) error {
	lv, err := ParseLevel(*levelFlag)
	if err != nil {
		return err
	}
	switch *formatFlag {
	case "console", "json":
	default:
		return fmt.Errorf("logging: unknown format %q (want console|json)", *formatFlag)
	}
	level.Set(lv)
	root = slog.New(newHandler(w, *formatFlag))
	return nil
}

// L returns a logger tagged with the component name — the structured
// analogue of the old "safemem-fuzz: …" stderr prefixes.
func L(component string) *slog.Logger {
	return root.With("component", component)
}

// SetLevel changes the live minimum level (all loggers share it).
func SetLevel(lv slog.Level) { level.Set(lv) }

// Level returns the current minimum level.
func Level() slog.Level { return level.Level() }
