package logging

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
}

func setFlags(t *testing.T, level, format string) {
	t.Helper()
	for k, v := range map[string]string{"log-level": level, "log-format": format} {
		if err := flag.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		flag.Set("log-level", "info")
		flag.Set("log-format", "console")
		SetupWriter(&bytes.Buffer{})
	})
}

func TestConsoleOutput(t *testing.T) {
	setFlags(t, "info", "console")
	var buf bytes.Buffer
	if err := SetupWriter(&buf); err != nil {
		t.Fatal(err)
	}
	L("campaign").Info("progress", "done", 5, "total", 10)
	L("campaign").Debug("suppressed at info")
	out := buf.String()
	for _, want := range []string{"component=campaign", "progress", "done=5", "total=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("console output %q missing %q", out, want)
		}
	}
	if strings.Contains(out, "suppressed") {
		t.Errorf("debug line leaked at info level: %q", out)
	}
}

func TestJSONOutput(t *testing.T) {
	setFlags(t, "debug", "json")
	var buf bytes.Buffer
	if err := SetupWriter(&buf); err != nil {
		t.Fatal(err)
	}
	L("bench").Debug("cell done", "experiment", "table3", "done", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["component"] != "bench" || rec["experiment"] != "table3" || rec["msg"] != "cell done" {
		t.Errorf("record = %v", rec)
	}
}

func TestBadFlags(t *testing.T) {
	setFlags(t, "loud", "console")
	if err := SetupWriter(&bytes.Buffer{}); err == nil {
		t.Error("bad level accepted")
	}
	setFlags(t, "info", "xml")
	if err := SetupWriter(&bytes.Buffer{}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestSetLevel(t *testing.T) {
	setFlags(t, "info", "console")
	var buf bytes.Buffer
	if err := SetupWriter(&buf); err != nil {
		t.Fatal(err)
	}
	SetLevel(slog.LevelError)
	if Level() != slog.LevelError {
		t.Fatalf("Level() = %v", Level())
	}
	L("x").Warn("hidden")
	if buf.Len() != 0 {
		t.Errorf("warn leaked at error level: %q", buf.String())
	}
}
