package obsrv

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safemem/internal/obsrv/logging"
)

// DefaultShutdownTimeout bounds how long a signal-triggered drain waits for
// in-flight HTTP requests before giving up on them.
const DefaultShutdownTimeout = 5 * time.Second

// HandleSignals installs a SIGINT/SIGTERM handler that drains gracefully
// instead of letting the runtime kill the process mid-scrape: drain (when
// non-nil, e.g. the fleet's stop-admission-and-finish-in-flight) runs
// first, then srv.Shutdown with the timeout — which also flushes the
// configured drain dump — and finally exit(130) in the SIGINT tradition.
// A second signal skips the graceful path and exits immediately.
//
// The returned stop function uninstalls the handler (tests, and CLIs that
// finish normally before any signal arrives).
func HandleSignals(srv *Server, timeout time.Duration, drain func(context.Context), exit func(int)) (stop func()) {
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	if exit == nil {
		exit = os.Exit
	}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		log := logging.L("obsrv")
		log.Info("signal received, draining", "signal", sig.String(), "timeout", timeout)
		// A second signal while draining forces an immediate exit.
		go func() {
			if _, ok := <-ch; ok {
				log.Warn("second signal, exiting immediately")
				exit(130)
			}
		}()
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if drain != nil {
			drain(ctx)
		}
		if srv != nil {
			if err := srv.Shutdown(ctx); err != nil {
				log.Error("shutdown", "err", err)
			}
		}
		exit(130)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}
