package obsrv

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"safemem/internal/obsrv/flight"
	"safemem/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// testServer starts a server on an ephemeral port with a private recorder
// and registry, pre-populated with known metrics.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// scrapeRegistry builds the fixed registry behind the golden scrape.
func scrapeRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry("campaign", telemetry.Config{})
	reg.Counter("campaign", "scenarios_done").Add(17)
	reg.Counter("campaign", "live_violations").Add(1)
	reg.Gauge("campaign", "shard0_scenarios_done").Set(9)
	reg.Gauge("campaign", "shard1_scenarios_done").Set(8)
	reg.Gauge("campaign", "scenarios_per_sec").Set(4.5)
	h := reg.Histogram("campaign", "detection_latency_cycles", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	// Names that need sanitising ("-" → "_") pin promName escaping.
	reg.Counter("fault-model", "plants.total").Add(3)
	return reg
}

func TestMetricsGolden(t *testing.T) {
	rec := flight.New(16)
	rec.Emit(flight.KindVerdict, "campaign", 0, "seed 1")
	s := testServer(t, Config{Registry: scrapeRegistry(), Recorder: rec})

	status, body, hdr := get(t, s.URL()+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.PromContentType)
	}

	// The pool/snapshot gauges are process-global — their values depend on
	// what other tests ran before this one — so the golden pins everything
	// else and TestMetricsPoolGauges pins their shape.
	body = stripPoolMetrics(body)

	const goldenPath = "testdata/metrics.golden"
	if *update {
		if err := os.WriteFile(goldenPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if body != string(want) {
		t.Errorf("scrape differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, body, want)
	}
}

// stripPoolMetrics drops the safemem_pool_* / safemem_snapshot_* lines
// (TYPE headers included) from a scrape body.
func stripPoolMetrics(body string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(body, "\n") {
		if strings.Contains(line, "safemem_pool_") || strings.Contains(line, "safemem_snapshot_") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// TestMetricsPoolGauges pins the shape of the run-loop pool and snapshot
// telemetry: every counter family is present for both run loops.
func TestMetricsPoolGauges(t *testing.T) {
	s := testServer(t, Config{Recorder: flight.New(4)})
	_, body, _ := get(t, s.URL()+"/metrics")
	families := []string{
		"pool_released", "pool_dropped",
		"snapshot_hits", "snapshot_misses", "snapshot_drops", "snapshot_releases",
	}
	for _, name := range families {
		if !strings.Contains(body, fmt.Sprintf("# TYPE safemem_%s gauge\n", name)) {
			t.Errorf("missing TYPE line for safemem_%s", name)
		}
		for _, loop := range []string{"campaign", "bench"} {
			if !strings.Contains(body, fmt.Sprintf("safemem_%s{loop=%q} ", name, loop)) {
				t.Errorf("missing safemem_%s sample for loop %q", name, loop)
			}
		}
	}
}

func TestMetricsEscaping(t *testing.T) {
	reg := telemetry.NewRegistry(`run"with\quotes`, telemetry.Config{})
	reg.Counter("weird component", "name-with.dots").Add(1)
	s := testServer(t, Config{Registry: reg, Recorder: flight.New(4)})
	_, body, _ := get(t, s.URL()+"/metrics")
	if !strings.Contains(body, "safemem_weird_component_name_with_dots") {
		t.Errorf("metric name not sanitised:\n%s", body)
	}
	// The run label must be a valid quoted Prometheus string.
	if !strings.Contains(body, `run="run\"with\\quotes"`) {
		t.Errorf("run label not escaped:\n%s", body)
	}
}

func TestMetricsConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry("stress", telemetry.Config{})
	ctr := reg.Counter("comp", "n")
	s := testServer(t, Config{Registry: reg, Recorder: flight.New(64)})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body, _ := get(t, s.URL()+"/metrics")
				if status != http.StatusOK {
					t.Errorf("scrape status %d", status)
					return
				}
				if !strings.Contains(body, "safemem_comp_n") {
					t.Errorf("partial scrape:\n%s", body)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		ctr.Inc()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestHealthzFlipsOnDegradation(t *testing.T) {
	rec := flight.New(16)
	s := testServer(t, Config{Recorder: rec})
	if status, body, _ := get(t, s.URL()+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthy server: status %d (%s)", status, body)
	}
	// Forced degradation: SafeMem gives up a capability.
	rec.Emit(flight.KindDegraded, "safemem", 1000, "quarantine line 0x40")
	status, body, _ := get(t, s.URL()+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded server: status %d, want 503", status)
	}
	if !strings.Contains(body, "degraded") {
		t.Errorf("body %q", body)
	}
}

func TestHealthzFlipsOnDataLoss(t *testing.T) {
	rec := flight.New(16)
	s := testServer(t, Config{Recorder: rec})
	rec.Emit(flight.KindDataLoss, "kernel", 1000, "line 0x80")
	if status, _, _ := get(t, s.URL()+"/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", status)
	}
}

func TestReadyzRetirementBudget(t *testing.T) {
	rec := flight.New(64)
	s := testServer(t, Config{Recorder: rec, RetireBudget: 3})
	if status, _, _ := get(t, s.URL()+"/readyz"); status != http.StatusOK {
		t.Fatal("fresh server not ready")
	}
	for i := 0; i < 3; i++ {
		rec.Emit(flight.KindPageRetired, "kernel", 0, "")
	}
	// At the budget: still ready.
	if status, _, _ := get(t, s.URL()+"/readyz"); status != http.StatusOK {
		t.Fatal("server unready at budget")
	}
	rec.Emit(flight.KindPageRetired, "kernel", 0, "")
	status, body, _ := get(t, s.URL()+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d over budget, want 503", status)
	}
	if !strings.Contains(body, "budget") {
		t.Errorf("body %q", body)
	}
	// Health is orthogonal: retirements alone don't degrade monitoring.
	if status, _, _ := get(t, s.URL()+"/healthz"); status != http.StatusOK {
		t.Error("healthz flipped on retirements")
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	s := testServer(t, Config{Recorder: flight.New(4)})
	status, body, hdr := get(t, s.URL()+"/buildinfo")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{`"module"`, `"go_version"`} {
		if !strings.Contains(body, want) {
			t.Errorf("buildinfo %q missing %q", body, want)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	s := testServer(t, Config{Recorder: flight.New(4)})
	status, body, _ := get(t, s.URL()+"/debug/pprof/cmdline")
	if status != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline: status %d, %d bytes", status, len(body))
	}
}

func TestEventsStream(t *testing.T) {
	rec := flight.New(64)
	rec.Emit(flight.KindShardStart, "campaign", 0, "shard 0", flight.F("shard", 0))
	s := testServer(t, Config{Recorder: rec, ReplayLastN: 8})

	resp, err := http.Get(s.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	expect := func(substr string) string {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed waiting for %q", substr)
				}
				if strings.Contains(line, substr) {
					return line
				}
			case <-deadline:
				t.Fatalf("timeout waiting for %q", substr)
			}
		}
	}

	// The pre-connect event is replayed…
	expect("event: shard-start")
	expect(`"shard":0`)
	// …and live events follow.
	rec.Emit(flight.KindViolation, "campaign", 999, "missed plant", flight.F("seed", 42))
	expect("event: violation")
	data := expect(`"seed":42`)
	if !strings.HasPrefix(data, "data: ") {
		t.Errorf("payload line %q", data)
	}
}
