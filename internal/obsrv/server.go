// Package obsrv is the live observability plane: an embedded HTTP server
// (the -serve flag of safemem-fuzz, safemem-bench and safemem-run)
// exposing the running simulator's telemetry and flight recorder.
//
// Endpoints:
//
//	/metrics      Prometheus text scrape of the live telemetry registries
//	/healthz      200 while monitoring is undegraded, 503 once SafeMem has
//	              given up capabilities or the kernel absorbed data loss
//	/readyz       200 while the page-retirement budget holds, 503 after
//	/buildinfo    build identity JSON (module, version, VCS rev, Go)
//	/events       Server-Sent Events stream of the flight recorder
//	/debug/pprof  the standard Go profiling handlers
//
// Determinism contract: the plane is observation-only. Every handler reads
// host-side state — atomic registry metrics, cached source values, the
// flight-recorder ring — and never touches a simulated machine, clock or
// source callback. Simulated results (campaign JSON summaries, bench
// tables, goldens) are byte-identical with the server on or off; the
// equivalence is pinned by TestCampaignDeterminismWithServer.
package obsrv

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"safemem/internal/bench"
	"safemem/internal/campaign"
	"safemem/internal/obsrv/buildinfo"
	"safemem/internal/obsrv/flight"
	"safemem/internal/profiling"
	"safemem/internal/snapshot"
	"safemem/internal/telemetry"
)

// Config parameterises a server.
type Config struct {
	// Addr is the listen address (the -serve flag), e.g. ":9090" or
	// "127.0.0.1:0" for an ephemeral test port.
	Addr string
	// Session, when set, is scraped by /metrics (every registry, live).
	Session *telemetry.Session
	// Registry, when set, is scraped by /metrics alongside the session's
	// registries (the campaign CLI passes its aggregate registry here).
	Registry *telemetry.Registry
	// Recorder backs /events and the health endpoints. Nil uses
	// flight.Default — what every in-tree emitter writes to.
	Recorder *flight.Recorder
	// RetireBudget is the page-retirement count beyond which /readyz turns
	// 503 (the machine is running out of healthy frames). 0 means the
	// DefaultRetireBudget.
	RetireBudget uint64
	// ReplayLastN is how many historical events /events replays to a new
	// subscriber before live streaming. 0 means DefaultReplayLastN; -1
	// disables replay.
	ReplayLastN int
	// Extra mounts additional handlers onto the server's mux, keyed by
	// pattern (net/http ServeMux syntax, method prefixes allowed). The
	// fleet front end mounts its job API here so one listener carries both
	// the serving API and the observability plane.
	Extra map[string]http.Handler
	// Ready, when set, is an additional /readyz veto: returning ok=false
	// turns readiness 503 with the detail in the body. The fleet reports
	// "draining" through it.
	Ready func() (ok bool, detail string)
	// DrainDump, when non-empty, is a JSONL path the recorder's recent
	// history is flushed to during Shutdown — the flight-recorder dump a
	// graceful SIGTERM drain must not lose.
	DrainDump string
	// DrainDumpN caps how many trailing events the drain dump writes
	// (0 means DefaultDrainDumpN).
	DrainDumpN int
}

// DefaultDrainDumpN is the shutdown flight-dump size when unset.
const DefaultDrainDumpN = 256

// DefaultRetireBudget is the /readyz retirement budget: past this many
// retired pages the process should be drained, not handed new work.
const DefaultRetireBudget = 64

// DefaultReplayLastN is how much flight history /events replays on connect.
const DefaultReplayLastN = 64

// Server is a running observability endpoint.
type Server struct {
	cfg      Config
	rec      *flight.Recorder
	ln       net.Listener
	srv      *http.Server
	scrapeMu sync.Mutex

	mu     sync.Mutex
	closed bool
}

// Start listens on cfg.Addr and serves the observability endpoints until
// Close. It returns once the listener is bound, so callers can print the
// resolved address (ephemeral ports) before starting their run.
func Start(cfg Config) (*Server, error) {
	if cfg.Recorder == nil {
		cfg.Recorder = flight.Default
	}
	if cfg.RetireBudget == 0 {
		cfg.RetireBudget = DefaultRetireBudget
	}
	if cfg.ReplayLastN == 0 {
		cfg.ReplayLastN = DefaultReplayLastN
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, rec: cfg.Recorder, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/buildinfo", s.handleBuildinfo)
	mux.HandleFunc("/events", s.handleEvents)
	profiling.AttachHTTP(mux)
	for pattern, h := range cfg.Extra {
		mux.Handle(pattern, h)
	}

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" test ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down, waiting briefly for in-flight requests
// (SSE streams are closed immediately via their contexts).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown gracefully stops the server: /readyz flips to 503 immediately,
// in-flight requests get until the context's deadline, and — when the
// configuration asks for one — the flight recorder's recent history is
// flushed to the drain-dump file so a SIGTERM never loses the black box.
// Safe to call more than once; later calls are no-ops.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	if s.cfg.DrainDump != "" {
		n := s.cfg.DrainDumpN
		if n <= 0 {
			n = DefaultDrainDumpN
		}
		if derr := s.rec.DumpFile(s.cfg.DrainDump, n); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// registries collects every registry /metrics should scrape.
func (s *Server) registries() []*telemetry.Registry {
	var regs []*telemetry.Registry
	if s.cfg.Session != nil {
		regs = s.cfg.Session.Registries()
	}
	if s.cfg.Registry != nil {
		regs = append(regs, s.cfg.Registry)
	}
	return regs
}

// handleMetrics serves the Prometheus text scrape. The scrape lock
// serialises concurrent scrapers (Prometheus + a curl won't interleave
// buffered writes); freshness comes from the live snapshot path — owned
// metrics through their atomics, source values from the last
// simulation-thread sample — never from calling sources off-thread.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()
	w.Header().Set("Content-Type", telemetry.PromContentType)
	for _, reg := range s.registries() {
		if err := reg.WritePrometheusLive(w); err != nil {
			return // client went away mid-scrape
		}
	}
	// Flight-recorder meta-metrics, so scrapers see event flow without
	// consuming /events.
	fmt.Fprintf(w, "# TYPE safemem_flight_events_total counter\n")
	fmt.Fprintf(w, "safemem_flight_events_total %d\n", s.rec.Total())
	fmt.Fprintf(w, "# TYPE safemem_flight_subscriber_drops_total counter\n")
	fmt.Fprintf(w, "safemem_flight_subscriber_drops_total %d\n", s.rec.SubscriberDrops())
	writePoolMetrics(w)
}

// writePoolMetrics appends the machine-pool and snapshot-store counters of
// both run loops (campaign scenarios serve fleet jobs, bench serves app
// jobs), so operators can watch warmup amortization — and taint drops —
// live. Process-global, like the pools themselves.
func writePoolMetrics(w io.Writer) {
	cr, cd := campaign.PoolStats()
	br, bd := bench.PoolStats()
	fmt.Fprintf(w, "# TYPE safemem_pool_released gauge\n")
	fmt.Fprintf(w, "safemem_pool_released{loop=%q} %d\n", "campaign", cr)
	fmt.Fprintf(w, "safemem_pool_released{loop=%q} %d\n", "bench", br)
	fmt.Fprintf(w, "# TYPE safemem_pool_dropped gauge\n")
	fmt.Fprintf(w, "safemem_pool_dropped{loop=%q} %d\n", "campaign", cd)
	fmt.Fprintf(w, "safemem_pool_dropped{loop=%q} %d\n", "bench", bd)
	stores := []struct {
		loop string
		st   snapshot.Stats
	}{
		{"campaign", campaign.ExecSnapshotStats()},
		{"bench", bench.SnapshotStats()},
	}
	for _, name := range []string{"hits", "misses", "drops", "releases"} {
		fmt.Fprintf(w, "# TYPE safemem_snapshot_%s gauge\n", name)
		for _, s := range stores {
			var v uint64
			switch name {
			case "hits":
				v = s.st.Hits
			case "misses":
				v = s.st.Misses
			case "drops":
				v = s.st.Drops
			case "releases":
				v = s.st.Releases
			}
			fmt.Fprintf(w, "safemem_snapshot_%s{loop=%q} %d\n", name, s.loop, v)
		}
	}
}

// handleHealthz reports monitoring health: the process is "degraded" once
// SafeMem has given up any capability (a DegradedEvent) or the kernel
// absorbed an unrepairable fault as data loss — both flow through the
// flight recorder, so health needs no hook into the simulation.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	degraded := s.rec.Count(flight.KindDegraded)
	loss := s.rec.Count(flight.KindDataLoss)
	if degraded == 0 && loss == 0 {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "degraded: %d degraded-monitoring events, %d data-loss events\n", degraded, loss)
}

// handleReadyz reports scheduling readiness: a machine that has burned
// through its page-retirement budget is still alive (healthz may even be
// fine) but should drain, not accept new detection jobs.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	retired := s.rec.Count(flight.KindPageRetired)
	failures := s.rec.Count(flight.KindRetireFailed)
	if ok, detail := s.ready(); !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, detail)
		return
	}
	switch {
	case closed:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "shutting down")
	case retired > s.cfg.RetireBudget:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "retirement budget exhausted: %d pages retired (budget %d), %d failures\n",
			retired, s.cfg.RetireBudget, failures)
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "ready (%d/%d pages retired)\n", retired, s.cfg.RetireBudget)
	}
}

// ready evaluates the configured extra readiness veto.
func (s *Server) ready() (bool, string) {
	if s.cfg.Ready == nil {
		return true, ""
	}
	return s.cfg.Ready()
}

// handleBuildinfo serves the binary's build identity.
func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(buildinfo.Get().JSON())
}
