package obsrv

import (
	"bytes"
	"net/http"
	"strings"
	"sync"
	"testing"

	"safemem/internal/campaign"
	"safemem/internal/obsrv/flight"
	"safemem/internal/telemetry"
)

// TestCampaignDeterminismWithServer is the plane's determinism pin: a
// campaign's JSON summary must be byte-identical whether or not an obsrv
// server is scraping it mid-run, at any shard count. This is also the
// -race audit for scraping a live campaign: the sim threads update
// registry metrics while HTTP goroutines scrape continuously.
func TestCampaignDeterminismWithServer(t *testing.T) {
	runQuiet := func(shards int) []byte {
		sum, err := campaign.Run(campaign.Config{
			Seeds: 4, BaseSeed: 99, Shards: shards,
			Tools:    []campaign.ToolConfig{campaign.CfgBoth},
			Recorder: flight.New(256),
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}

	runServed := func(shards int) []byte {
		rec := flight.New(256)
		reg := telemetry.NewRegistry("campaign", telemetry.Config{})
		s := testServer(t, Config{Registry: reg, Recorder: rec})

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(s.URL() + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}()
		}
		sum, err := campaign.Run(campaign.Config{
			Seeds: 4, BaseSeed: 99, Shards: shards,
			Tools:    []campaign.ToolConfig{campaign.CfgBoth},
			Registry: reg, Recorder: rec,
		})
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}

		// The finished run's live gauges are visible in a final scrape.
		status, body, _ := get(t, s.URL()+"/metrics")
		if status != http.StatusOK {
			t.Fatalf("final scrape status %d", status)
		}
		for _, want := range []string{
			"safemem_campaign_live_scenarios_done",
			"safemem_campaign_shard0_scenarios_done",
			"safemem_campaign_scenarios_per_sec",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("final scrape missing %q", want)
			}
		}

		js, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}

	for _, shards := range []int{1, 3} {
		quiet := runQuiet(shards)
		served := runServed(shards)
		if !bytes.Equal(quiet, served) {
			t.Errorf("shards=%d: summary differs with server on vs off:\n--- off ---\n%s\n--- on ---\n%s",
				shards, quiet, served)
		}
	}
}
