// Package buildinfo gives every CLI in this repo a uniform -version flag
// and the /buildinfo endpoint's payload: module path and version, VCS
// revision and dirty bit, and the Go toolchain, all read from the binary's
// embedded debug.BuildInfo. Importing it registers -version on the default
// flag set (the same idiom as internal/profiling's pprof flags); after
// flag.Parse the CLI calls HandleFlag and exits when it returns true.
package buildinfo

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
)

var showVersion = flag.Bool("version", false, "print build information and exit")

// Info is the build identity of the running binary.
type Info struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the binary's build information. Fields missing from the
// embedded BuildInfo (e.g. a plain `go run` without VCS stamping) come back
// as "unknown" rather than empty, so output stays greppable.
func Get() Info {
	once.Do(func() {
		cached = Info{Module: "safemem", Version: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Path != "" {
			cached.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			cached.Version = bi.Main.Version
		}
		cached.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.time":
				cached.Time = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}

// String renders the one-line -version output.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s (%s", i.Module, i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += ", rev " + rev
		if i.Modified {
			s += "+dirty"
		}
	}
	return s + ")"
}

// JSON renders the /buildinfo endpoint payload.
func (i Info) JSON() []byte {
	b, err := json.MarshalIndent(i, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// HandleFlag prints build information to w and reports true when -version
// was given. Call after flag.Parse; on true the CLI should exit 0.
func HandleFlag(w io.Writer) bool {
	if !*showVersion {
		return false
	}
	fmt.Fprintln(w, Get())
	return true
}
