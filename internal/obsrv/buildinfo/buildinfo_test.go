package buildinfo

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	i := Get()
	if i.Module == "" || i.Version == "" || i.GoVersion == "" {
		t.Fatalf("Get() left fields empty: %+v", i)
	}
	// Under `go test` the module path is the real one.
	if i.Module != "safemem" {
		t.Errorf("module = %q, want safemem", i.Module)
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("go version = %q", i.GoVersion)
	}
}

func TestString(t *testing.T) {
	s := Info{Module: "safemem", Version: "v1.2.3", GoVersion: "go1.24.0",
		Revision: "0123456789abcdef", Modified: true}.String()
	for _, want := range []string{"safemem", "v1.2.3", "go1.24.0", "0123456789ab+dirty"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("String() = %q: revision not truncated to 12 chars", s)
	}
}

func TestJSON(t *testing.T) {
	var back Info
	if err := json.Unmarshal(Get().JSON(), &back); err != nil {
		t.Fatalf("JSON() not valid JSON: %v", err)
	}
	if back != Get() {
		t.Errorf("round trip: %+v != %+v", back, Get())
	}
}

func TestHandleFlag(t *testing.T) {
	var buf bytes.Buffer
	if HandleFlag(&buf) {
		t.Fatal("HandleFlag true without -version")
	}
	if buf.Len() != 0 {
		t.Fatalf("printed %q without -version", buf.String())
	}
	if err := flag.Set("version", "true"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("version", "false")
	if !HandleFlag(&buf) {
		t.Fatal("HandleFlag false with -version set")
	}
	if !strings.Contains(buf.String(), "safemem") {
		t.Errorf("output %q", buf.String())
	}
}
