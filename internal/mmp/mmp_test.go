package mmp

import (
	"errors"
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

type rig struct {
	m     *machine.Machine
	alloc *heap.Allocator
	tool  *Tool
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{}) // plain layout: no padding at all
	if err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, alloc: alloc, tool: Attach(m, alloc, false)}
}

func (r *rig) malloc(t *testing.T, n uint64) vm.VAddr {
	t.Helper()
	p, err := r.alloc.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExactBoundsOffByOne(t *testing.T) {
	// The word-granularity claim: even a ONE-byte overflow is caught with
	// zero padding — finer than SafeMem's 64-byte guard granularity.
	r := newRig(t)
	p := r.malloc(t, 21) // rounded to 24: bytes 21-23 are slack
	q := r.malloc(t, 24) // packed immediately after the slack
	r.m.Store8(p+20, 1)  // last valid byte
	r.m.Store8(q, 1)     // neighbour's first byte: fine
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("in-bounds access reported: %v", r.tool.Reports())
	}
	r.m.Store8(p+21, 1) // ONE byte past the end, into the rounding slack
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOutOfBounds {
		t.Fatalf("reports = %v", reports)
	}
	if reports[0].BufferAddr != p {
		t.Fatalf("attributed to %#x, want %#x", uint64(reports[0].BufferAddr), uint64(p))
	}
	// The packed-neighbour caveat: an overflow that lands exactly inside
	// the adjacent live object is invisible even at word granularity —
	// address-based protection cannot tell objects in the same domain
	// apart. (SafeMem's guard lines force a gap instead.)
	r.m.Store8(p+24, 1) // == q's first byte
	if n := len(r.tool.Reports()); n != 1 {
		t.Fatalf("packed-neighbour overflow unexpectedly reported: %d", n)
	}
}

func TestFreedAccess(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 64)
	r.m.Store64(p, 1)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load64(p + 8)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugFreedAccess {
		t.Fatalf("reports = %v", reports)
	}
}

func TestReuseClearsFreedState(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 64)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	q := r.malloc(t, 64)
	if q != p {
		t.Skip("extent not reused")
	}
	r.m.Store64(q, 2)
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("reuse reported: %v", r.tool.Reports())
	}
}

func TestZeroSpaceOverhead(t *testing.T) {
	// The Table 4 endpoint: MMP needs no guard bytes at all; the only
	// waste is the allocator's natural 8-byte rounding.
	r := newRig(t)
	for i := 0; i < 100; i++ {
		r.malloc(t, uint64(100+i*13))
	}
	st := r.alloc.Stats()
	wastePct := 100 * float64(st.WasteLive) / float64(st.BytesLive)
	if wastePct > 1.0 {
		t.Fatalf("MMP waste = %.2f%%, expected < 1%%", wastePct)
	}
}

func TestStopOnBug(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 8 << 20})
	alloc := heap.MustNew(m, heap.Options{})
	Attach(m, alloc, true)
	p, err := alloc.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	runErr := m.Run(func() error {
		m.Store8(p+8, 1)
		return nil
	})
	var abort *machine.ProgramAbort
	if !errors.As(runErr, &abort) {
		t.Fatalf("err = %v", runErr)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 16)
	r.m.Store8(p+16, 1)
	r.m.Store8(p+16, 2)
	if n := len(r.tool.Reports()); n != 1 {
		t.Fatalf("reports = %d", n)
	}
}

func TestOutsideHeapIgnored(t *testing.T) {
	r := newRig(t)
	if err := r.m.Kern.MapPages(0x8000000, 1); err != nil {
		t.Fatal(err)
	}
	r.m.Store64(0x8000000, 1)
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("non-heap access reported: %v", r.tool.Reports())
	}
}

func TestResetStats(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 16)
	r.m.Store8(p, 1)
	r.tool.ResetStats()
	if r.tool.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", r.tool.Stats())
	}
}
