// Package mmp implements a Mondrian-Memory-Protection-style corruption
// detector: word-granularity protection domains enforced by (hypothetical)
// hardware, the design the paper points to when discussing ECC protection's
// residual memory waste (Section 2.2.4: "If ECC protection could be done at
// word granularity, such as in the Mondrian Memory Protection, the amount
// of memory waste could be further reduced. Unfortunately, Mondrian Memory
// Protection still does not exist in real hardware yet.").
//
// The detector needs NO padding and NO alignment beyond the natural 8
// bytes: the hardware checks every access against exact object bounds, so
// any access outside a live allocation — one byte past the end, into freed
// memory, anywhere in the gaps — faults precisely. Protection-table updates
// cost a little at allocation time; access checks are free (hardware).
//
// It exists here as the endpoint of the granularity ablation: page (4096 B)
// → ECC line (64 B) → word (8 B), quantifying how much of SafeMem's
// remaining space overhead is the cache-line granularity of commodity ECC.
package mmp

import (
	"fmt"
	"sort"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// Protection-table maintenance charges (the multi-level permissions-table
// writes MMP performs on each allocate/free).
const (
	costProtect   simtime.Cycles = 60
	costUnprotect simtime.Cycles = 60
)

// BugKind classifies reports.
type BugKind int

const (
	// BugOutOfBounds is an access outside every live allocation (overflow,
	// underflow, or a wild pointer within the heap).
	BugOutOfBounds BugKind = iota
	// BugFreedAccess is an access inside a freed-but-unreused allocation.
	BugFreedAccess
)

// String names the kind.
func (k BugKind) String() string {
	switch k {
	case BugOutOfBounds:
		return "out-of-bounds"
	case BugFreedAccess:
		return "freed-memory-access"
	default:
		return fmt.Sprintf("BugKind(%d)", int(k))
	}
}

// Report is one finding.
type Report struct {
	Kind       BugKind
	Time       simtime.Cycles
	Addr       vm.VAddr
	BufferAddr vm.VAddr
	BufferSize uint64
	Site       uint64
	Write      bool
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("[%s] %s addr=%#x buffer=%#x size=%d site=%#x",
		r.Time, r.Kind, uint64(r.Addr), uint64(r.BufferAddr), r.BufferSize, r.Site)
}

// Stats counts detector activity.
type Stats struct {
	Allocs  uint64
	Frees   uint64
	Checks  uint64
	Reports uint64
}

// region is one protection-table entry.
type region struct {
	addr  vm.VAddr
	size  uint64
	site  uint64
	freed bool
}

// Tool is an attached MMP-style detector. It implements heap.Hook and
// machine.Monitor (the monitor stands in for the hardware's per-access
// check and charges no cycles).
type Tool struct {
	m     *machine.Machine
	alloc *heap.Allocator

	// regions is sorted by addr; freed entries persist until reuse, like
	// SafeMem's freed watches.
	regions []*region
	byAddr  map[vm.VAddr]*region

	reports    []Report
	stats      Stats
	suppressed map[vm.VAddr]bool
	stopOnBug  bool
}

// Attach wires the detector onto machine m and allocator alloc. Any
// allocator layout works; no padding is required (that is the point).
func Attach(m *machine.Machine, alloc *heap.Allocator, stopOnBug bool) *Tool {
	t := &Tool{
		m:          m,
		alloc:      alloc,
		byAddr:     make(map[vm.VAddr]*region),
		suppressed: make(map[vm.VAddr]bool),
		stopOnBug:  stopOnBug,
	}
	alloc.AddHook(t)
	m.AttachMonitor(t)
	m.Telemetry.RegisterSource("mmp", func(emit func(string, float64)) {
		s := t.stats
		emit("allocs", float64(s.Allocs))
		emit("frees", float64(s.Frees))
		emit("checks", float64(s.Checks))
		emit("reports", float64(s.Reports))
	})
	return t
}

// Reports returns the findings so far.
func (t *Tool) Reports() []Report {
	out := make([]Report, len(t.reports))
	copy(out, t.reports)
	return out
}

// Stats returns a copy of the counters.
func (t *Tool) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *Tool) ResetStats() { t.stats = Stats{} }

func (t *Tool) search(va vm.VAddr) int {
	return sort.Search(len(t.regions), func(i int) bool { return t.regions[i].addr > va })
}

// OnAlloc implements heap.Hook: enter the object's exact bounds into the
// protection table, evicting freed entries its extent overlaps.
func (t *Tool) OnAlloc(b *heap.Block) {
	t.stats.Allocs++
	t.m.Clock.Advance(costProtect)
	end := b.FullAddr + vm.VAddr(b.FullSize)
	kept := t.regions[:0]
	for _, r := range t.regions {
		if r.freed && r.addr < end && b.FullAddr < r.addr+vm.VAddr(r.size) {
			delete(t.byAddr, r.addr)
			continue
		}
		kept = append(kept, r)
	}
	t.regions = kept
	r := &region{addr: b.Addr, size: b.Size, site: b.Site}
	i := t.search(r.addr)
	t.regions = append(t.regions, nil)
	copy(t.regions[i+1:], t.regions[i:])
	t.regions[i] = r
	t.byAddr[r.addr] = r
}

// OnFree implements heap.Hook: keep the entry, marked freed, so dangling
// accesses identify their buffer.
func (t *Tool) OnFree(b *heap.Block) {
	t.stats.Frees++
	t.m.Clock.Advance(costUnprotect)
	if r, ok := t.byAddr[b.Addr]; ok {
		r.freed = true
	}
}

// check is the hardware permissions lookup: exact bounds, zero cycles.
func (t *Tool) check(va vm.VAddr, size int, write bool) {
	t.stats.Checks++
	lo, hi := t.alloc.ArenaRange()
	if va < lo || va >= hi {
		return // outside the heap: not this detector's jurisdiction
	}
	i := t.search(va)
	if i > 0 {
		r := t.regions[i-1]
		if va >= r.addr && uint64(va-r.addr) < r.size {
			if !r.freed {
				return // inside a live object: permitted
			}
			t.report(BugFreedAccess, va, r, write)
			return
		}
	}
	// In a gap between objects: out of bounds. Attribute to the nearest
	// preceding region for the report.
	var nearest *region
	if i > 0 {
		nearest = t.regions[i-1]
	}
	t.report(BugOutOfBounds, va, nearest, write)
}

func (t *Tool) report(kind BugKind, va vm.VAddr, r *region, write bool) {
	if t.suppressed[va] {
		return
	}
	t.suppressed[va] = true
	rep := Report{Kind: kind, Time: t.m.Clock.Now(), Addr: va, Write: write}
	if r != nil {
		rep.BufferAddr = r.addr
		rep.BufferSize = r.size
		rep.Site = r.site
	}
	t.reports = append(t.reports, rep)
	t.stats.Reports++
	if t.stopOnBug {
		machine.Abort("mmp: %s at %#x", kind, uint64(va))
	}
}

// OnLoad implements machine.Monitor.
func (t *Tool) OnLoad(va vm.VAddr, size int) { t.check(va, size, false) }

// OnStore implements machine.Monitor.
func (t *Tool) OnStore(va vm.VAddr, size int) { t.check(va, size, true) }
