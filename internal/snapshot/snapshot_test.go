package snapshot

import (
	"sync"
	"testing"

	"safemem/internal/machine"
)

func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	m := machine.MustNew(machine.Config{MemBytes: 1 << 20})
	return &Runner{Machine: m, Snap: m.Snapshot()}
}

func TestEnabledKillSwitch(t *testing.T) {
	if Enabled() {
		t.Fatal("snapshot layer must default off")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	if !Enabled() {
		t.Fatal("SetEnabled(true) not observed")
	}
}

func TestStoreMissThenHit(t *testing.T) {
	s := NewStore(2)
	builds := 0
	build := func() (*Runner, error) { builds++; return newTestRunner(t), nil }

	r, err := s.Acquire("k", build)
	if err != nil || r == nil {
		t.Fatalf("cold acquire: %v, %v", r, err)
	}
	s.Release("k", r)
	r2, err := s.Acquire("k", build)
	if err != nil {
		t.Fatalf("warm acquire: %v", err)
	}
	if r2 != r {
		t.Fatal("warm acquire did not return the released runner")
	}
	if builds != 1 {
		t.Fatalf("built %d runners, want 1", builds)
	}
	want := Stats{Hits: 1, Misses: 1, Releases: 1}
	if got := s.Stats(); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
}

func TestStoreKeysIndependent(t *testing.T) {
	s := NewStore(2)
	r := newTestRunner(t)
	s.Release("a", r)
	got, err := s.Acquire("b", func() (*Runner, error) { return newTestRunner(t), nil })
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if got == r {
		t.Fatal("runner released under key a served an acquire for key b")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 0 hits / 1 miss", st)
	}
}

// TestStoreReleaseRestores pins restore-at-release: the runner handed out by
// a warm acquire is already back in its snapshot state, Reset included.
func TestStoreReleaseRestores(t *testing.T) {
	s := NewStore(2)
	m := machine.MustNew(machine.Config{MemBytes: 1 << 20})
	resets := 0
	r := &Runner{Machine: m, Snap: m.Snapshot(), Reset: func() { resets++ }}

	err := m.Run(func() error { return m.Kern.MapPages(0x1000, 1) })
	if err != nil {
		t.Fatalf("dirty run: %v", err)
	}
	s.Release("k", r)
	if resets != 1 {
		t.Fatalf("Reset ran %d times at release, want 1", resets)
	}
	if m.AS.Present(0x1000) {
		t.Fatal("release did not restore the machine to its snapshot")
	}
}

func TestStoreTaintedDropNeverRepooled(t *testing.T) {
	s := NewStore(2)
	builds := 0
	build := func() (*Runner, error) { builds++; return newTestRunner(t), nil }

	r, err := s.Acquire("k", build)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	s.Drop(r) // the run panicked or errored: taint
	r2, err := s.Acquire("k", build)
	if err != nil {
		t.Fatalf("acquire after drop: %v", err)
	}
	if r2 == r {
		t.Fatal("dropped runner came back out of the pool")
	}
	if builds != 2 {
		t.Fatalf("built %d runners, want 2 (drop must force a rebuild)", builds)
	}
	want := Stats{Misses: 2, Drops: 1}
	if got := s.Stats(); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	s.Drop(nil) // nil drop is a no-op, not a drop
	if got := s.Stats().Drops; got != 1 {
		t.Fatalf("nil Drop counted: drops=%d, want 1", got)
	}
}

// TestStoreRestorePanicDrops pins the last taint line of defence: a runner
// whose restore itself blows up is dropped, never repooled.
func TestStoreRestorePanicDrops(t *testing.T) {
	s := NewStore(2)
	m := machine.MustNew(machine.Config{MemBytes: 1 << 20})
	r := &Runner{Machine: m, Snap: m.Snapshot(), Reset: func() { panic("corrupt payload") }}
	s.Release("k", r)
	want := Stats{Drops: 1}
	if got := s.Stats(); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
	if got, err := s.Acquire("k", func() (*Runner, error) { return newTestRunner(t), nil }); err != nil || got == r {
		t.Fatalf("acquire after failed restore returned the tainted runner (err %v)", err)
	}
}

func TestStoreCapacityOverflowDrops(t *testing.T) {
	s := NewStore(1)
	build := func() (*Runner, error) { return newTestRunner(t), nil }
	r1, err1 := s.Acquire("k", build)
	r2, err2 := s.Acquire("k", build)
	if err1 != nil || err2 != nil {
		t.Fatalf("acquires: %v, %v", err1, err2)
	}
	s.Release("k", r1)
	s.Release("k", r2) // pool full: dropped, not queued
	want := Stats{Misses: 2, Drops: 1, Releases: 1}
	if got := s.Stats(); got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
}

func TestStoreDefaultCapacity(t *testing.T) {
	s := NewStore(0)
	if s.capacity != DefaultCapacity {
		t.Fatalf("NewStore(0) capacity = %d, want DefaultCapacity (%d)", s.capacity, DefaultCapacity)
	}
	build := func() (*Runner, error) { return newTestRunner(t), nil }
	var runners []*Runner
	for i := 0; i < DefaultCapacity+1; i++ {
		r, err := s.Acquire("k", build)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		runners = append(runners, r)
	}
	for _, r := range runners {
		s.Release("k", r)
	}
	st := s.Stats()
	if st.Releases != uint64(DefaultCapacity) || st.Drops != 1 {
		t.Fatalf("stats %+v, want %d releases / 1 drop", st, DefaultCapacity)
	}
}

// TestStoreFlushIsNotADrop pins that flushing idle runners (memory
// pressure, test teardown) does not count as taint.
func TestStoreFlushIsNotADrop(t *testing.T) {
	s := NewStore(2)
	s.Release("k", newTestRunner(t))
	s.Flush()
	st := s.Stats()
	if st.Drops != 0 {
		t.Fatalf("Flush counted as %d drops, want 0", st.Drops)
	}
	builds := 0
	if _, err := s.Acquire("k", func() (*Runner, error) { builds++; return newTestRunner(t), nil }); err != nil {
		t.Fatalf("acquire after flush: %v", err)
	}
	if builds != 1 {
		t.Fatal("acquire after Flush was served from the (flushed) pool")
	}
}

// TestStoreSingleFlightWarmup pins the build-lock contract: while one cold
// acquirer is warming a runner, a second acquirer for the same key waits,
// and a runner released in the meantime serves it without a second build.
func TestStoreSingleFlightWarmup(t *testing.T) {
	s := NewStore(2)
	spare := newTestRunner(t)

	entered := make(chan struct{})
	unblock := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r, err := s.Acquire("k", func() (*Runner, error) {
			close(entered)
			<-unblock
			return newTestRunner(t), nil
		})
		if err != nil || r == nil {
			t.Errorf("first acquire: %v, %v", r, err)
		}
	}()
	<-entered // the first build holds the key's build lock
	go func() {
		defer wg.Done()
		r, err := s.Acquire("k", func() (*Runner, error) {
			t.Error("second build ran while a released runner was idle")
			return newTestRunner(t), nil
		})
		if err != nil {
			t.Errorf("second acquire: %v", err)
		}
		if r != spare {
			t.Error("second acquire did not re-take the released runner")
		}
	}()
	s.Release("k", spare) // lands while the second acquirer waits
	close(unblock)
	wg.Wait()
	if st := s.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss / 1 hit", st)
	}
}
