// Package snapshot implements copy-on-write machine snapshots: the
// AFL-forkserver idiom applied to the simulated machine. Warming up a
// machine for a detection run — building the hardware, creating the heap,
// attaching the tool stack — costs the same for every scenario that shares a
// configuration, so the warmup is paid once per configuration, checkpointed
// with machine.Snapshot, and every subsequent run restores the checkpoint in
// O(state the previous run dirtied) instead of rebuilding.
//
// The unit of pooling is the Runner, not the bare image: timers, fault
// observers, ECC handlers and allocation hooks captured inside a snapshot
// are closures over the specific heap and tool objects created during that
// warmup, so an image is only meaningful together with the objects it was
// captured alongside. A Runner carries all of them plus the snapshot.
//
// The Store keeps idle runners per configuration key with a small capacity
// cap (a warmed machine pins its DRAM arrays), restores each runner on
// release so acquisition is instant, and drops — never repools, never
// re-snapshots — any runner whose run panicked or errored: a half-finished
// run can leave state (a locked bus, a mid-flight access) that restore code
// must not be trusted to unwind. Equivalence with the rebuild path is pinned
// byte-for-byte by the campaign and fleet snapshot tests.
//
// The whole layer sits behind a default-off kill switch (SetEnabled);
// DESIGN.md §4.11 documents the restore matrix and taint rules.
package snapshot

import (
	"sync"
	"sync/atomic"

	"safemem/internal/machine"
)

// enabled is the global kill switch. Default off: every run loop rebuilds
// exactly as before unless the caller opts in.
var enabled atomic.Bool

// SetEnabled turns the snapshot fast path on or off process-wide. The run
// loops (campaign, bench, fleet) consult it at machine-acquisition time, so
// flipping it mid-campaign only affects scenarios not yet started.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the snapshot fast path is on.
func Enabled() bool { return enabled.Load() }

// Runner is one warmed machine bound to the heap and tool objects created
// during its warmup, plus the snapshot that returns all of them to the
// warmed-but-idle state. A Runner is exclusively owned between Acquire and
// Release/Drop.
type Runner struct {
	// Machine is the warmed simulated machine.
	Machine *machine.Machine
	// Snap is the checkpoint taken at the end of warmup.
	Snap *machine.Snapshot
	// Payload holds the builder's warmup objects (allocator, tools) for the
	// run loop to use; the Store never inspects it.
	Payload any
	// Reset restores the payload objects after the machine restore (tool and
	// allocator images). Set by the builder; may be nil when the payload is
	// stateless.
	Reset func()
}

// restore returns the runner to its snapshot state, reporting failure
// instead of propagating a panic: a runner whose restore blows up is exactly
// the kind of tainted state the Store must drop.
func (r *Runner) restore() (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	r.Machine.Restore(r.Snap)
	if r.Reset != nil {
		r.Reset()
	}
	return true
}

// Stats is a point-in-time copy of a Store's counters.
type Stats struct {
	// Hits counts acquisitions served by an idle warmed runner.
	Hits uint64
	// Misses counts acquisitions that had to build (and warm) a new runner.
	Misses uint64
	// Drops counts runners discarded instead of repooled: tainted runs,
	// failed restores, and capacity overflow.
	Drops uint64
	// Releases counts runners successfully restored and repooled.
	Releases uint64
}

// DefaultCapacity is the per-key idle-runner cap used when NewStore is given
// a non-positive capacity. Each warmed runner pins its machine's DRAM (the
// campaign's 32 MiB arenas dominate), so the cap bounds host memory, not
// throughput: workers beyond it simply rebuild on a cold acquire.
const DefaultCapacity = 4

// keyPool holds one configuration key's idle runners. The build mutex
// serializes warmups for the key — concurrent cold acquirers each need their
// own runner, but warming several identical machines at once would spike
// host memory and duplicate work a just-released runner could serve.
type keyPool struct {
	build sync.Mutex
	mu    sync.Mutex
	idle  []*Runner
}

// Store pools warmed runners by configuration key. Safe for concurrent use.
type Store struct {
	capacity int

	mu    sync.Mutex
	pools map[string]*keyPool

	hits     atomic.Uint64
	misses   atomic.Uint64
	drops    atomic.Uint64
	releases atomic.Uint64
}

// NewStore creates a store holding at most capacityPerKey idle runners per
// configuration key (DefaultCapacity when non-positive).
func NewStore(capacityPerKey int) *Store {
	if capacityPerKey <= 0 {
		capacityPerKey = DefaultCapacity
	}
	return &Store{capacity: capacityPerKey, pools: make(map[string]*keyPool)}
}

func (s *Store) pool(key string) *keyPool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pools[key]
	if p == nil {
		p = &keyPool{}
		s.pools[key] = p
	}
	return p
}

// take pops an idle runner for p, or nil.
func (p *keyPool) take() *Runner {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.idle)
	if n == 0 {
		return nil
	}
	r := p.idle[n-1]
	p.idle[n-1] = nil
	p.idle = p.idle[:n-1]
	return r
}

// Acquire returns a warmed runner for key, building one with build on a cold
// miss. Returned runners are already in their snapshot state (restored at
// release time), so the caller starts per-run setup immediately. A build
// error is returned verbatim and counts as neither hit nor miss beyond the
// one recorded.
func (s *Store) Acquire(key string, build func() (*Runner, error)) (*Runner, error) {
	p := s.pool(key)
	if r := p.take(); r != nil {
		s.hits.Add(1)
		return r, nil
	}
	// Serialize warmups per key; a runner released while we waited for the
	// build lock serves the acquisition without building.
	p.build.Lock()
	defer p.build.Unlock()
	if r := p.take(); r != nil {
		s.hits.Add(1)
		return r, nil
	}
	s.misses.Add(1)
	return build()
}

// Release restores r to its snapshot and returns it to key's idle pool. A
// failed restore or a full pool drops the runner instead. Only call for
// runs that completed cleanly — a panicked or errored run must go through
// Drop.
func (s *Store) Release(key string, r *Runner) {
	if r == nil {
		return
	}
	if !r.restore() {
		s.drops.Add(1)
		return
	}
	p := s.pool(key)
	p.mu.Lock()
	if len(p.idle) >= s.capacity {
		p.mu.Unlock()
		s.drops.Add(1)
		return
	}
	p.idle = append(p.idle, r)
	p.mu.Unlock()
	s.releases.Add(1)
}

// Drop discards a tainted runner: a run that panicked or returned an error
// may have left the machine in a state no restore is certified for, so the
// runner — snapshot included — is abandoned to the garbage collector and
// the next acquisition for its key warms a fresh one.
func (s *Store) Drop(r *Runner) {
	if r == nil {
		return
	}
	s.drops.Add(1)
}

// Stats returns a copy of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Drops:    s.drops.Load(),
		Releases: s.releases.Load(),
	}
}

// Flush discards every idle runner (tests and memory-pressure paths). The
// dropped runners do not count as drops — nothing was tainted.
func (s *Store) Flush() {
	s.mu.Lock()
	pools := make([]*keyPool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	for _, p := range pools {
		p.mu.Lock()
		p.idle = nil
		p.mu.Unlock()
	}
}
