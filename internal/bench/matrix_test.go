package bench

import (
	"testing"

	"safemem/internal/apps"
	"safemem/internal/purify"
)

// TestCorruptionDetectionMatrix documents which detector catches which
// planted corruption bug — the granularity story in one table:
//
//	bug                     safemem  purify  pageprot  mmp
//	gzip   150B-past-116B   yes      yes     NO (¹)    yes
//	tar    560B-past-512B   yes      yes     NO (¹)    yes
//	squid2 use-after-free   yes      yes     yes (²)   yes
//
// (¹) the overflow stays inside the buffer's page-rounded extent: page
// granularity cannot see it — the paper's Table 4 argument, behaviourally.
// (²) freed pages are protected whole, so page granularity does catch
// dangling accesses (when the extent is not yet reused).
func TestCorruptionDetectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix runs 12 app executions")
	}
	buggy := apps.Config{Seed: 42, Buggy: true}

	detected := func(appName string, tool Tool) bool {
		res, err := Run(appName, tool, buggy)
		if err != nil {
			t.Fatalf("%s under %v: %v", appName, tool, err)
		}
		switch tool {
		case ToolSafeMemBoth:
			app, _ := apps.Get(appName)
			return DetectedBug(app, res)
		case ToolPurify:
			for _, r := range res.Purify {
				switch r.Kind {
				case purify.BugInvalidRead, purify.BugInvalidWrite,
					purify.BugFreeRead, purify.BugFreeWrite:
					return true
				}
			}
			return false
		case ToolPageProt:
			return len(res.PageProt) > 0
		case ToolMMP:
			return len(res.MMP) > 0
		default:
			t.Fatalf("unexpected tool %v", tool)
			return false
		}
	}

	type row struct {
		app                              string
		safemem, purifyT, pageprot, mmpT bool
	}
	want := []row{
		{"gzip", true, true, false, true},
		{"tar", true, true, false, true},
		{"squid2", true, true, true, true},
	}
	for _, w := range want {
		if got := detected(w.app, ToolSafeMemBoth); got != w.safemem {
			t.Errorf("%s under safemem: detected=%v, want %v", w.app, got, w.safemem)
		}
		if got := detected(w.app, ToolPurify); got != w.purifyT {
			t.Errorf("%s under purify: detected=%v, want %v", w.app, got, w.purifyT)
		}
		if got := detected(w.app, ToolPageProt); got != w.pageprot {
			t.Errorf("%s under pageprot: detected=%v, want %v", w.app, got, w.pageprot)
		}
		if got := detected(w.app, ToolMMP); got != w.mmpT {
			t.Errorf("%s under mmp: detected=%v, want %v", w.app, got, w.mmpT)
		}
	}
}
