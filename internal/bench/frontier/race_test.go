//go:build race

package frontier

func init() { raceEnabled = true }
