package frontier

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
)

// raceEnabled is set by race_test.go when the race detector is on. The
// frontier sweep is hundreds of scenario runs whose concurrency pattern
// (independent machines per goroutine) the campaign race tests already
// cover; repeating the whole sweep under race blows the package timeout.
var raceEnabled = false

// TestFrontierStatistics is the statistical acceptance test: a live sweep
// at fixed seeds over the issue's rate ladder {1, 8, 64, 512} must produce
// detection probabilities the exact binomial test cannot distinguish from
// the analytic 1-(1-1/N)^k, and overheads that fall as N grows.
func TestFrontierStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps hundreds of campaign scenarios")
	}
	if raceEnabled {
		t.Skip("bulk sweep; the campaign suite covers this machinery under race")
	}
	opts := Options{
		BaseSeed:  1042,
		Scenarios: 24,
		Rates:     []int{1, 8, 64, 512},
		Fleets:    []int{1, 4, 16},
	}
	f, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(0.001); err != nil {
		t.Fatal(err)
	}
	if f.Plants < opts.Scenarios/2 {
		t.Fatalf("only %d corruption plants across %d scenarios — sweep too thin to mean anything",
			f.Plants, opts.Scenarios)
	}

	// Rate 1 is deterministic: every corruption plant detected, any fleet.
	for _, c := range f.Rates[0].Cells {
		if c.Detected != c.Trials {
			t.Errorf("rate 1 fleet %d: %d/%d detected, want all", c.Fleet, c.Detected, c.Trials)
		}
	}
	// The frontier's overhead axis must fall monotonically with N.
	for i := 1; i < len(f.Rates); i++ {
		if f.Rates[i].OverheadPct >= f.Rates[i-1].OverheadPct {
			t.Errorf("overhead did not fall from rate %d (%.2f%%) to rate %d (%.2f%%)",
				f.Rates[i-1].Rate, f.Rates[i-1].OverheadPct,
				f.Rates[i].Rate, f.Rates[i].OverheadPct)
		}
	}
	// And the detection axis must rise with fleet size at any rate > 1
	// (weakly — these are measurements, so allow ties).
	for _, r := range f.Rates[1:] {
		for i := 1; i < len(r.Cells); i++ {
			if r.Cells[i].Detected < r.Cells[i-1].Detected {
				t.Errorf("rate %d: detections fell from fleet %d (%d) to fleet %d (%d)",
					r.Rate, r.Cells[i-1].Fleet, r.Cells[i-1].Detected,
					r.Cells[i].Fleet, r.Cells[i].Detected)
			}
		}
	}
}

// TestFrontierBaselineTracked validates the tracked BENCH_frontier.json at
// the repo root: produced by the default options, internally consistent,
// and still passing the binomial acceptance test. If the detection stack
// changes behaviour, regenerate with
//
//	safemem-bench -experiment frontier
func TestFrontierBaselineTracked(t *testing.T) {
	path := filepath.Join("..", "..", "..", "BENCH_frontier.json")
	f, err := Read(path)
	if err != nil {
		t.Fatalf("missing tracked baseline (regenerate with `safemem-bench -experiment frontier`): %v", err)
	}
	def := DefaultOptions()
	if f.BaseSeed != def.BaseSeed || f.Scenarios != def.Scenarios {
		t.Errorf("baseline ran seed=%d scenarios=%d, want the default %d/%d",
			f.BaseSeed, f.Scenarios, def.BaseSeed, def.Scenarios)
	}
	if len(f.Rates) != len(def.Rates) {
		t.Fatalf("baseline has %d rates, want %d", len(f.Rates), len(def.Rates))
	}
	for i, r := range f.Rates {
		if r.Rate != def.Rates[i] {
			t.Errorf("baseline rate[%d] = %d, want %d", i, r.Rate, def.Rates[i])
		}
		if len(r.Cells) != len(def.Fleets) {
			t.Fatalf("rate %d has %d fleet cells, want %d", r.Rate, len(r.Cells), len(def.Fleets))
		}
	}
	if err := f.Validate(0.001); err != nil {
		t.Fatal(err)
	}
	first, last := f.Rates[0], f.Rates[len(f.Rates)-1]
	if first.OverheadPct <= last.OverheadPct {
		t.Errorf("baseline overhead frontier is flat: rate %d at %.2f%% vs rate %d at %.2f%%",
			first.Rate, first.OverheadPct, last.Rate, last.OverheadPct)
	}
}

// TestAnalyticP pins the closed form against a direct product.
func TestAnalyticP(t *testing.T) {
	if got := AnalyticP(1, 7); got != 1 {
		t.Errorf("AnalyticP(1, 7) = %v, want 1", got)
	}
	want := 1.0
	for i := 0; i < 4; i++ {
		want *= 1 - 1.0/8
	}
	if got := AnalyticP(8, 4); math.Abs(got-(1-want)) > 1e-12 {
		t.Errorf("AnalyticP(8, 4) = %v, want %v", got, 1-want)
	}
}

// TestMemberSeedsDistinct guards the independence assumption: the fleet
// argument needs distinct decision streams per member, rate and scenario.
func TestMemberSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, scen := range []uint64{1042, 9000} {
		for _, rate := range []int{8, 64, 512} {
			for j := 0; j < 64; j++ {
				s := memberSeed(scen, rate, j)
				id := fmt.Sprintf("scen=%d rate=%d member=%d", scen, rate, j)
				if prev, dup := seen[s]; dup {
					t.Fatalf("member seed collision: %s and %s both got %#x", prev, id, s)
				}
				seen[s] = id
			}
		}
	}
}
