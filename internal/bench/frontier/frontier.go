// Package frontier measures the sampling tool's detection-probability
// frontier: how the per-process sampling rate N and the fleet size k trade
// overhead against aggregate detection probability. A single process
// watching 1/N of its allocations detects a given corruption bug with
// probability ~1/N, but k processes with independent sampling seeds detect
// it with probability 1-(1-1/N)^k — the GWP-ASan fleet argument. The
// experiment sweeps rate × fleet over the campaign's bug templates,
// measures both axes, and checks the measured detection probability against
// the analytic expectation with an exact binomial test.
//
// It lives beside internal/bench rather than inside it because the
// campaign package's own tests import bench; importing campaign from bench
// would close that cycle.
package frontier

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"safemem/internal/campaign"
	"safemem/internal/stats"
)

// Options configures a frontier sweep.
type Options struct {
	// BaseSeed seeds the scenario stream; scenario i runs at
	// campaign.SubSeed(BaseSeed, i).
	BaseSeed uint64
	// Scenarios is the number of campaign scenarios swept.
	Scenarios int
	// Rates are the sampling rates N measured.
	Rates []int
	// Fleets are the fleet sizes k evaluated. The largest decides how many
	// independently-seeded members run per scenario and rate; smaller
	// fleets reuse prefixes of the same member list.
	Fleets []int
	// Parallel bounds concurrent scenario runs (≤ 0 means GOMAXPROCS).
	Parallel int
}

// DefaultOptions is the tracked-baseline configuration behind
// BENCH_frontier.json.
func DefaultOptions() Options {
	return Options{
		BaseSeed:  1042,
		Scenarios: 40,
		Rates:     []int{1, 8, 64, 512},
		Fleets:    []int{1, 4, 16, 64},
	}
}

// Cell is one (rate, fleet) point of the frontier.
type Cell struct {
	Fleet int `json:"fleet"`
	// Trials is the number of detection opportunities: every corruption
	// plant across all scenarios is one trial.
	Trials int `json:"trials"`
	// Detected counts trials where at least one of the fleet's first
	// `Fleet` members reported the plant.
	Detected  int     `json:"detected"`
	MeasuredP float64 `json:"measured_p"`
	// AnalyticP is 1-(1-1/N)^k, the expectation under independent
	// per-member sampling.
	AnalyticP float64 `json:"analytic_p"`
	// PValue is the exact two-sided binomial test of Detected/Trials
	// against AnalyticP; small values mean the measurement contradicts the
	// analytic model.
	PValue float64 `json:"p_value"`
}

// Rate is one sampling rate's slice of the frontier.
type Rate struct {
	Rate int `json:"rate"`
	// OverheadPct is the mean simulated-time overhead of a single sampling
	// member versus the uninstrumented baseline, in percent.
	OverheadPct float64 `json:"overhead_pct"`
	Cells       []Cell  `json:"cells"`
}

// Frontier is the sweep result, serialised to BENCH_frontier.json so the
// detection/overhead trade-off is tracked in-repo. Every field is a
// deterministic function of the options: simulated cycles, sampling
// decisions and detection outcomes are all seed-pinned.
type Frontier struct {
	BaseSeed  uint64 `json:"base_seed"`
	Scenarios int    `json:"scenarios"`
	// Plants is the corruption-plant count across all scenarios — the
	// trial count of every cell.
	Plants int    `json:"plants"`
	Rates  []Rate `json:"rates"`
}

// memberSeed derives fleet member j's sampling-decision seed for one
// scenario and rate. Distinct members must sample independently — that
// independence is the entire fleet argument — so each gets its own stream.
// The derivation is two chained SubSeed mixes: folding rate and member
// into one call with XOR would make (rate a, member b) collide with
// (rate b, member a), and TestMemberSeedsDistinct caught exactly that.
func memberSeed(scenarioSeed uint64, rate, member int) uint64 {
	s := campaign.SubSeed(campaign.SubSeed(scenarioSeed, rate), member+1)
	if s == 0 {
		s = 1 // zero means "derive from scenario seed" to the executor
	}
	return s
}

// scenarioRuns is one scenario's contribution to the sweep.
type scenarioRuns struct {
	plants   int
	overhead map[int]float64  // rate → member-0 cycle overhead fraction
	detected map[int][][]bool // rate → [member][plant]
}

// Run executes the sweep. Scenarios run in parallel; aggregation is
// sequential in scenario order, so the result is identical at any
// Parallel value.
func Run(opts Options) (*Frontier, error) {
	if opts.Scenarios <= 0 || len(opts.Rates) == 0 || len(opts.Fleets) == 0 {
		return nil, fmt.Errorf("frontier: need scenarios, rates and fleets")
	}
	maxFleet := 0
	for _, k := range opts.Fleets {
		if k > maxFleet {
			maxFleet = k
		}
	}
	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	results := make([]*scenarioRuns, opts.Scenarios)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, par)
	for i := 0; i < opts.Scenarios; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := runScenario(opts, maxFleet, i)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	f := &Frontier{BaseSeed: opts.BaseSeed, Scenarios: opts.Scenarios}
	for _, r := range results {
		f.Plants += r.plants
	}
	for _, rate := range opts.Rates {
		var ohSum float64
		for _, r := range results {
			ohSum += r.overhead[rate]
		}
		fr := Rate{Rate: rate, OverheadPct: round6(ohSum / float64(len(results)) * 100)}
		for _, k := range opts.Fleets {
			trials, detected := 0, 0
			for _, r := range results {
				det := r.detected[rate]
				for pi := 0; pi < r.plants; pi++ {
					trials++
					for j := 0; j < k && j < len(det); j++ {
						if det[j][pi] {
							detected++
							break
						}
					}
				}
			}
			p := AnalyticP(rate, k)
			cell := Cell{Fleet: k, Trials: trials, Detected: detected, AnalyticP: round6(p)}
			if trials > 0 {
				cell.MeasuredP = round6(float64(detected) / float64(trials))
				cell.PValue = round6(stats.BinomTwoSidedP(trials, detected, p))
			} else {
				cell.PValue = 1
			}
			fr.Cells = append(fr.Cells, cell)
		}
		f.Rates = append(f.Rates, fr)
	}
	return f, nil
}

func runScenario(opts Options, maxFleet, i int) (*scenarioRuns, error) {
	seed := campaign.SubSeed(opts.BaseSeed, i)
	s := campaign.Generate(seed)
	var corr []campaign.Planted
	for _, p := range s.Plan {
		if p.Kind.Corruption() {
			corr = append(corr, p)
		}
	}
	base, err := campaign.ExecuteEnv(s, campaign.CfgNone, campaign.Env{})
	if err != nil {
		return nil, err
	}
	if base.Err != nil {
		return nil, fmt.Errorf("frontier: scenario %d baseline: %w", i, base.Err)
	}

	runs := &scenarioRuns{
		plants:   len(corr),
		overhead: make(map[int]float64, len(opts.Rates)),
		detected: make(map[int][][]bool, len(opts.Rates)),
	}
	for _, rate := range opts.Rates {
		members := maxFleet
		if rate <= 1 {
			// Rate 1 samples every allocation: all members are identical,
			// one run stands in for any fleet size.
			members = 1
		}
		det := make([][]bool, members)
		for j := 0; j < members; j++ {
			env := campaign.Env{SampleRate: rate, SampleSeed: memberSeed(seed, rate, j)}
			res, err := campaign.ExecuteEnv(s, campaign.CfgSample, env)
			if err != nil {
				return nil, err
			}
			if res.Err != nil {
				return nil, fmt.Errorf("frontier: scenario %d rate %d member %d: %w", i, rate, j, res.Err)
			}
			row := make([]bool, len(corr))
			for pi, p := range corr {
				row[pi] = campaign.PlantDetected(p, res.Reports)
			}
			det[j] = row
			if j == 0 {
				runs.overhead[rate] = float64(int64(res.Cycles)-int64(base.Cycles)) / float64(base.Cycles)
			}
		}
		runs.detected[rate] = det
	}
	return runs, nil
}

// AnalyticP is the fleet-aggregate detection probability 1-(1-1/N)^k.
func AnalyticP(rate, fleet int) float64 {
	if rate <= 1 {
		return 1
	}
	return 1 - math.Pow(1-1/float64(rate), float64(fleet))
}

// round6 trims float noise so the tracked JSON stays readable and stable.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// Validate checks the report's internal consistency and its agreement with
// the analytic model: every cell's trial count matches the plant count,
// its analytic column matches 1-(1-1/N)^k, and its exact binomial test
// clears alpha. Run both on freshly measured sweeps and on the tracked
// baseline.
func (f *Frontier) Validate(alpha float64) error {
	if f.Plants <= 0 {
		return fmt.Errorf("frontier: no corruption plants swept")
	}
	for _, r := range f.Rates {
		for _, c := range r.Cells {
			if c.Trials != f.Plants {
				return fmt.Errorf("frontier: rate %d fleet %d: %d trials, want %d",
					r.Rate, c.Fleet, c.Trials, f.Plants)
			}
			want := round6(AnalyticP(r.Rate, c.Fleet))
			if math.Abs(c.AnalyticP-want) > 1e-6 {
				return fmt.Errorf("frontier: rate %d fleet %d: analytic_p %v, want %v",
					r.Rate, c.Fleet, c.AnalyticP, want)
			}
			pv := stats.BinomTwoSidedP(c.Trials, c.Detected, AnalyticP(r.Rate, c.Fleet))
			if pv < alpha {
				return fmt.Errorf("frontier: rate %d fleet %d: detected %d/%d (p=%.4f) rejects analytic %.4f at alpha %v",
					r.Rate, c.Fleet, c.Detected, c.Trials, pv, AnalyticP(r.Rate, c.Fleet), alpha)
			}
		}
	}
	return nil
}

// Render formats the frontier for terminal output.
func (f *Frontier) Render() string {
	tab := stats.NewTable(
		fmt.Sprintf("Detection-probability frontier (%d scenarios, %d corruption plants)",
			f.Scenarios, f.Plants),
		"rate N", "overhead", "fleet k", "detected", "measured p", "analytic p", "p-value")
	for _, r := range f.Rates {
		for _, c := range r.Cells {
			tab.AddRow(
				fmt.Sprintf("%d", r.Rate),
				fmt.Sprintf("%.1f%%", r.OverheadPct),
				fmt.Sprintf("%d", c.Fleet),
				fmt.Sprintf("%d/%d", c.Detected, c.Trials),
				fmt.Sprintf("%.3f", c.MeasuredP),
				fmt.Sprintf("%.3f", c.AnalyticP),
				fmt.Sprintf("%.3f", c.PValue),
			)
		}
	}
	return tab.Render()
}

// WriteJSON writes the report to path (the tracked BENCH_frontier.json at
// the repo root).
func (f *Frontier) WriteJSON(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads a frontier report written by WriteJSON.
func Read(path string) (*Frontier, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &Frontier{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("frontier: parse %s: %w", path, err)
	}
	return f, nil
}
