package bench

import (
	"errors"
	"sync/atomic"
	"testing"

	"safemem/internal/apps"
)

// TestRunCells checks the worker-pool cell dispatcher: every cell runs
// exactly once at any worker count, and the reported error is the
// lowest-indexed one, matching a sequential sweep.
func TestRunCells(t *testing.T) {
	defer func(old int) { Parallel = old }(Parallel)
	for _, workers := range []int{1, 2, 7, 64} {
		Parallel = workers
		var ran [40]atomic.Uint32
		if err := runCells("test", len(ran), func(i int) error {
			ran[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, n)
			}
		}
	}

	errA, errB := errors.New("cell 3"), errors.New("cell 17")
	Parallel = 8
	err := runCells("test", 40, func(i int) error {
		switch i {
		case 3:
			return errA
		case 17:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("runCells error = %v, want lowest-indexed (%v)", err, errA)
	}
}

// TestParallelMatrixDeterminism pins the contract of the parallel bench
// matrix: the rendered tables are byte-identical at any worker count,
// because each cell owns a fresh machine and rows are assembled in order.
func TestParallelMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Table 4/5 matrices twice")
	}
	defer func(old int) { Parallel = old }(Parallel)
	cfg := apps.Config{Seed: 42}

	render := func() string {
		t4, err := RunTable4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t5, err := RunTable5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return RenderTable4(t4) + "\n" + RenderTable5(t5)
	}

	Parallel = 1
	sequential := render()
	Parallel = 4
	parallel := render()
	if sequential != parallel {
		t.Errorf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", sequential, parallel)
	}
}
