package bench

import (
	"strings"
	"testing"

	"safemem/internal/apps"
	"safemem/internal/purify"
)

// These tests assert the paper's qualitative results (the reproduction
// target): who wins, by roughly what factor, and where the crossovers are.
// Exact measured values live in EXPERIMENTS.md.

func TestTable2Shape(t *testing.T) {
	t2, err := RunTable2(128)
	if err != nil {
		t.Fatal(err)
	}
	within := func(got, want float64) bool { return got > want*0.9 && got < want*1.1 }
	if !within(t2.WatchMemoryUS, 2.0) {
		t.Errorf("WatchMemory = %.2fµs, paper 2.0µs", t2.WatchMemoryUS)
	}
	if !within(t2.DisableWatchMemoryUS, 1.5) {
		t.Errorf("DisableWatchMemory = %.2fµs, paper 1.5µs", t2.DisableWatchMemoryUS)
	}
	if !within(t2.MprotectUS, 1.02) {
		t.Errorf("mprotect = %.2fµs, paper 1.02µs", t2.MprotectUS)
	}
	// The ECC calls cost slightly more than mprotect (pinning).
	if t2.WatchMemoryUS <= t2.MprotectUS || t2.DisableWatchMemoryUS <= t2.MprotectUS {
		t.Error("ECC watch calls should exceed mprotect")
	}
	if !strings.Contains(t2.Render(), "WatchMemory") {
		t.Error("render missing rows")
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 is slow")
	}
	rows, err := RunTable3(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.BugDetected {
			t.Errorf("%s: bug not detected", r.App)
		}
		// SafeMem total overhead stays in the paper's band (1.6%–14.4%,
		// with slack for simulator variance).
		if r.MLMCPct < 0.5 || r.MLMCPct > 16 {
			t.Errorf("%s: ML+MC overhead %.1f%% outside the paper band", r.App, r.MLMCPct)
		}
		// Purify costs multiples, not percents.
		if r.PurifyFactor < 4.5 {
			t.Errorf("%s: Purify slowdown %.1fX below the paper's floor", r.App, r.PurifyFactor)
		}
		// Corruption detection is the dominant SafeMem cost (Section 6.2).
		if r.OnlyMLPct > r.OnlyMCPct {
			t.Errorf("%s: ML (%.1f%%) exceeds MC (%.1f%%)", r.App, r.OnlyMLPct, r.OnlyMCPct)
		}
		// The headline claim: orders of magnitude cheaper than Purify.
		if r.ReductionX < 25 {
			t.Errorf("%s: reduction %.0fX too small", r.App, r.ReductionX)
		}
	}
	// gzip is the access-dominated extreme: the worst Purify case.
	var gzipRow, squid2Row *Table3Row
	for i := range rows {
		switch rows[i].App {
		case "gzip":
			gzipRow = &rows[i]
		case "squid2":
			squid2Row = &rows[i]
		}
	}
	if gzipRow.PurifyFactor < 2*squid2Row.PurifyFactor {
		t.Errorf("gzip (%.1fX) should suffer far more under Purify than squid2 (%.1fX)",
			gzipRow.PurifyFactor, squid2Row.PurifyFactor)
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "ypserv1") || !strings.Contains(out, "YES") {
		t.Error("render incomplete")
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := RunTable4(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: reduction by ECC 64X–74X. Allow the simulator's trace mix
		// some slack around that band.
		if r.ReductionX < 55 || r.ReductionX > 100 {
			t.Errorf("%s: reduction %.0fX outside ~64–74X band", r.App, r.ReductionX)
		}
		if r.ECCPct >= r.PagePct {
			t.Errorf("%s: ECC waste not smaller than page waste", r.App)
		}
	}
	if !strings.Contains(RenderTable4(rows), "Reduction") {
		t.Error("render incomplete")
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := RunTable5(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 leak apps", len(rows))
	}
	totalBefore := 0
	for _, r := range rows {
		if r.BeforePruning < 1 {
			t.Errorf("%s: no false positives before pruning (nothing to prune)", r.App)
		}
		if r.AfterPruning > 1 {
			t.Errorf("%s: %d false positives after pruning, paper ≤ 1", r.App, r.AfterPruning)
		}
		if r.AfterPruning > r.BeforePruning {
			t.Errorf("%s: pruning increased false positives", r.App)
		}
		totalBefore += r.BeforePruning
	}
	if totalBefore < 8 {
		t.Errorf("only %d false positives before pruning across all apps; pruning undertested", totalBefore)
	}
	// The paper's squid1 keeps exactly one residual false positive.
	for _, r := range rows {
		if r.App == "squid1" && r.AfterPruning != 1 {
			t.Errorf("squid1 after pruning = %d, paper reports 1", r.AfterPruning)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	series, err := RunFigure3(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Groups < 3 {
			t.Errorf("%s: only %d groups in the study", s.App, s.Groups)
		}
		last := s.Points[len(s.Points)-1]
		if last.Pct < 99 {
			t.Errorf("%s: only %.0f%% of groups stable by run end", s.App, last.Pct)
		}
		// The paper's claim: groups stabilise early. At 2/3 of the run at
		// least 60% must be stable.
		for _, p := range s.Points {
			if p.TimeSec >= s.RunSec*2/3 {
				if p.Pct < 60 {
					t.Errorf("%s: only %.0f%% stable at 2/3 run", s.App, p.Pct)
				}
				break
			}
		}
	}
	out := RenderFigure3(series)
	if !strings.Contains(out, "ypserv1") || !strings.Contains(out, "#") {
		t.Error("render incomplete")
	}
}

func TestToolStrings(t *testing.T) {
	for tool, want := range map[Tool]string{
		ToolNone:        "none",
		ToolSafeMemML:   "safemem-ml",
		ToolSafeMemMC:   "safemem-mc",
		ToolSafeMemBoth: "safemem",
		ToolPurify:      "purify",
		ToolPageProt:    "pageprot",
	} {
		if tool.String() != want {
			t.Errorf("%d -> %s, want %s", tool, tool.String(), want)
		}
	}
}

func TestRunUnknownAppAndTool(t *testing.T) {
	if _, err := Run("nonesuch", ToolNone, apps.Config{}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Run("gzip", Tool(99), apps.Config{}); err == nil {
		t.Error("unknown tool accepted")
	}
}

func TestOverheadHelper(t *testing.T) {
	if Overhead(100, 150) != 0.5 {
		t.Error("Overhead math wrong")
	}
	if Overhead(0, 10) != 0 {
		t.Error("zero base not guarded")
	}
}

func TestPurifyFindsCorruptionToo(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Purify should also flag gzip's overflow (as an invalid write) —
	// the comparison tools see the same bugs, at different cost.
	res, err := Run("gzip", ToolPurify, apps.Config{Seed: 42, Buggy: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Purify {
		if r.Kind == purify.BugInvalidWrite {
			found = true
		}
	}
	if !found {
		t.Errorf("purify missed the overflow; reports: %v", res.Purify)
	}
}

func TestPageProtFindsCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Run("gzip", ToolPageProt, apps.Config{Seed: 42, Buggy: true})
	if err != nil {
		t.Fatal(err)
	}
	// gzip's 150-byte name lands within the page-rounded record, so page
	// protection CANNOT see this overflow — exactly the granularity
	// argument of the paper. No reports expected.
	if len(res.PageProt) != 0 {
		t.Logf("page protection reported: %v", res.PageProt)
	}
}
