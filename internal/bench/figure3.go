package bench

import (
	"fmt"
	"strings"

	"safemem/internal/apps"
	"safemem/internal/stats"
)

// Figure3Point is one sample of a lifetime-stability curve: by time T
// (seconds of process execution), Pct percent of memory-object groups had
// reached their stable maximal lifetime.
type Figure3Point struct {
	TimeSec float64
	Pct     float64
}

// Figure3Series is one application's curve from Figure 3.
type Figure3Series struct {
	App string
	// Groups is the number of memory-object groups with enough
	// deallocations (≥2) for a lifetime to be meaningful.
	Groups int
	// RunSec is the total simulated CPU time of the run.
	RunSec float64
	Points []Figure3Point
}

// figure3Apps are the three server programs the paper uses for the study.
var figure3Apps = []string{"ypserv1", "proftpd", "squid1"}

// RunFigure3 reproduces the lifetime-stability study (Figure 3): each
// server runs on normal inputs under leak monitoring; for every
// memory-object group we record its WarmUpTime — the process time at which
// its maximal lifetime last changed — and plot the cumulative fraction of
// stabilised groups against process execution time.
func RunFigure3(cfg apps.Config) ([]Figure3Series, error) {
	cfg.Buggy = false
	if cfg.Scale == 0 {
		// Stabilisation happens at fixed absolute times; a longer run shows
		// the paper's shape — every curve saturating early in execution.
		cfg.Scale = 3
	}
	var out []Figure3Series
	for fi, name := range figure3Apps {
		res, err := Run(name, ToolSafeMemML, cfg)
		noteProgress("figure3", fi+1, len(figure3Apps))
		if err != nil {
			return nil, err
		}
		if res.Err != nil {
			return nil, fmt.Errorf("figure3: %s: %w", name, res.Err)
		}
		var warmups []float64
		for _, g := range res.Groups {
			if g.Frees < 2 {
				continue
			}
			warmups = append(warmups, g.WarmUpTime().Seconds())
		}
		cdf := stats.NewCDF(warmups)
		runSec := res.Cycles.Seconds()
		series := Figure3Series{App: name, Groups: cdf.N(), RunSec: runSec}
		const samples = 24
		for i := 0; i <= samples; i++ {
			t := runSec * float64(i) / samples
			series.Points = append(series.Points, Figure3Point{
				TimeSec: t,
				Pct:     100 * cdf.At(t),
			})
		}
		out = append(out, series)
	}
	return out, nil
}

// RenderFigure3 renders the curves as ASCII plots plus the underlying
// sample tables.
func RenderFigure3(series []Figure3Series) string {
	var b strings.Builder
	b.WriteString("Figure 3: Stability of maximal lifetime (MOG = memory object group)\n")
	b.WriteString("Each curve: cumulative % of MOGs whose maximal lifetime is stable by time t.\n\n")
	for _, s := range series {
		fmt.Fprintf(&b, "(%s)  groups=%d  run=%.4fs\n", s.App, s.Groups, s.RunSec)
		// ASCII plot: 10 rows (100%..0%), len(points) columns.
		const rows = 10
		for r := rows; r >= 1; r-- {
			level := float64(r) * 100 / rows
			fmt.Fprintf(&b, "%4.0f%% |", level)
			for _, p := range s.Points {
				if p.Pct >= level {
					b.WriteByte('#')
				} else {
					b.WriteByte(' ')
				}
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", len(s.Points)))
		fmt.Fprintf(&b, "       0s%*s\n", len(s.Points)-2, fmt.Sprintf("%.4fs", s.RunSec))
		b.WriteString("       process execution time\n\n")
	}
	return b.String()
}
