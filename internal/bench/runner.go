// Package bench is the experiment harness: it wires ⟨application, tool⟩
// pairs onto fresh simulated machines, runs them on identical inputs, and
// regenerates every table and figure of the paper's evaluation
// (Sections 5–6). See DESIGN.md §3 for the experiment index.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"safemem/internal/apps"
	"safemem/internal/cache"
	safemem "safemem/internal/core"
	"safemem/internal/faultmodel"
	"safemem/internal/heap"
	"safemem/internal/inject"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/memctrl"
	"safemem/internal/mmp"
	"safemem/internal/pageprot"
	"safemem/internal/purify"
	"safemem/internal/sampletool"
	"safemem/internal/simtime"
	"safemem/internal/snapshot"
	"safemem/internal/telemetry"
)

// Telemetry, when set, collects metrics and traces for every run started
// through this package: each run gets its own registry in the session,
// labelled "app/tool". Nil (the default) leaves runs on a quiet private
// registry. The CLIs set it from their -metrics-out / -trace-out flags.
var Telemetry *telemetry.Session

// FaultKnobs configures the background DRAM fault process for runs started
// through this package (the -fault-rate / -storm / -retire flags).
type FaultKnobs struct {
	// Rate is fault events per million simulated cycles over the heap arena.
	Rate float64
	// Storm clusters faults into error-storm episodes.
	Storm bool
	// Retire switches the kernel to page retirement on uncorrectable errors.
	// Without it the process plants only correctable single-bit faults — a
	// random double-bit on an unwatched line would panic the stock kernel.
	Retire bool
}

// Faults, when set with a positive Rate, runs every benchmark "on flaky
// DIMMs": a fault process seeded from the workload seed, the kernel scrub
// daemon, and (with Retire) page retirement. Nil (the default) leaves the
// hardware perfect, preserving the stock evaluation numbers.
var Faults *FaultKnobs

// Parallel is the worker count runCells uses to execute independent
// experiment cells concurrently (the -parallel flag of safemem-bench).
// Values below 2 keep the legacy fully-sequential order. Every cell builds
// its own machine, so results are identical at any worker count; only host
// wall-clock changes.
var Parallel = 1

// Progress, when set, is called after each experiment cell completes:
// label names the experiment ("table3", "figure3", …), done/total count
// cells so far. The CLI installs a logging printer here so long matrix
// runs show movement; nil (the default) stays silent. Cells run on worker
// goroutines, so implementations must be safe for concurrent use. Progress
// observes the sweep — it never influences results.
var Progress func(label string, done, total int)

// noteProgress reports one finished cell to the Progress hook.
func noteProgress(label string, done, total int) {
	if Progress != nil {
		Progress(label, done, total)
	}
}

// runCells executes n independent cell functions, each writing only its own
// result slot, on up to Parallel workers, reporting each finished cell to
// the Progress hook under label. Cells must not share simulator state (each
// bench.Run constructs a fresh machine). The returned error is the
// lowest-indexed cell error, matching what a sequential sweep would have
// reported first; later cells still run to completion either way.
func runCells(label string, n int, cell func(i int) error) error {
	var done atomic.Int64
	workers := Parallel
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	finish := func(i int, err error) {
		errs[i] = err
		noteProgress(label, int(done.Add(1)), n)
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			finish(i, cell(i))
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					finish(i, cell(i))
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Tool selects the monitoring configuration of a run (the columns of
// Table 3).
type Tool int

const (
	// ToolNone is the uninstrumented baseline.
	ToolNone Tool = iota
	// ToolSafeMemML is SafeMem with only memory-leak detection.
	ToolSafeMemML
	// ToolSafeMemMC is SafeMem with only memory-corruption detection.
	ToolSafeMemMC
	// ToolSafeMemBoth is the full SafeMem configuration (ML + MC).
	ToolSafeMemBoth
	// ToolPurify is the Purify baseline.
	ToolPurify
	// ToolPageProt is the page-protection corruption detector.
	ToolPageProt
	// ToolMMP is the hypothetical word-granularity (Mondrian-style)
	// corruption detector of Section 2.2.4's discussion.
	ToolMMP
	// ToolSample is the GWP-ASan-style sampling SafeMem: the full detector
	// applied to a ~1/SampleRate sampled allocation pool, everything else
	// unwatched (internal/sampletool).
	ToolSample
)

// String names the tool configuration.
func (t Tool) String() string {
	switch t {
	case ToolNone:
		return "none"
	case ToolSafeMemML:
		return "safemem-ml"
	case ToolSafeMemMC:
		return "safemem-mc"
	case ToolSafeMemBoth:
		return "safemem"
	case ToolPurify:
		return "purify"
	case ToolPageProt:
		return "pageprot"
	case ToolMMP:
		return "mmp"
	case ToolSample:
		return "sample"
	default:
		return fmt.Sprintf("Tool(%d)", int(t))
	}
}

// SampleRate is the sampling rate N for ToolSample runs started through
// Run/RunWithMachine (the -sample-rate flag). Sweeps that need several
// rates concurrently use RunSample with an explicit rate instead.
var SampleRate = 8

// SampleSeed, when non-zero, overrides the sampling-decision seed for
// ToolSample runs; zero derives it from the workload seed.
var SampleSeed uint64

// sampleSeedSalt decorrelates the derived sampling-decision stream from
// the workload's own seed ("SAMPLE" in ASCII).
const sampleSeedSalt uint64 = 0x53414d504c45

// SafeMemOptions returns the SafeMem configuration used throughout the
// evaluation harness: DefaultOptions with the always-leak threshold scaled
// to the simulator's workload sizes (the paper's server runs see orders of
// magnitude more objects than a deterministic simulation can).
func SafeMemOptions(leaks, corruption bool) safemem.Options {
	o := safemem.DefaultOptions()
	o.DetectLeaks = leaks
	o.DetectCorruption = corruption
	o.ALeakLiveThreshold = 24
	// The warm-up must comfortably exceed initialisation time plus the
	// ALeak growth window, or an init-time working set still looks
	// "recently growing" at the first check.
	o.WarmupTime = simtime.FromMicroseconds(4000)
	return o
}

// Result captures everything a single run produced.
type Result struct {
	App  string
	Tool Tool
	Cfg  apps.Config
	Err  error // non-nil when the program aborted or crashed

	// Cycles is the simulated CPU time of the run.
	Cycles simtime.Cycles
	// Instrs is the simulated-instruction count (loads + stores + compute
	// cycles) — the denominator of the throughput experiment.
	Instrs uint64
	// HostNS is host wall-clock spent inside Machine.Run — the simulated
	// program only, excluding machine construction/recycling, heap setup and
	// tool attachment. The throughput and fleet experiments aggregate it.
	HostNS int64

	// Tool-specific outputs (only the attached tool's fields are set).
	SafeMem []safemem.BugReport
	// SafeMemExplain holds the gdb-style elaboration of each SafeMem
	// report (same order), rendered while the machine state is live.
	SafeMemExplain []string
	SafeMemStats   safemem.Stats
	Groups         []safemem.GroupInfo
	Purify         []purify.Report
	PurifyStats    purify.Stats
	PageProt       []pageprot.Report
	PageProtStats  pageprot.Stats
	MMP            []mmp.Report
	MMPStats       mmp.Stats
	// SampleStats holds the sampling front-end's counters (ToolSample
	// runs; the inner detector's output lands in SafeMem/SafeMemStats, so
	// a rate-1 sample run is directly comparable to ToolSafeMemBoth).
	SampleStats sampletool.Stats

	// Heap and machine statistics (all runs).
	Heap    heap.Stats
	Machine machine.Stats

	// Substrate statistics (all runs) — cache, ECC controller, kernel.
	Cache cache.Stats
	Ctrl  memctrl.Stats
	Kern  kernel.Stats

	// Resilience holds the kernel's hardware-fault survival counters;
	// FaultEvents counts background fault-process events (both zero unless
	// Faults is set).
	Resilience  kernel.ResilienceStats
	FaultEvents uint64

	// Registry is the run's telemetry registry (always non-nil; shared with
	// the package-level Session when one is installed).
	Registry *telemetry.Registry
}

// heapOptionsFor returns the allocator configuration each tool requires.
func heapOptionsFor(tool Tool) heap.Options {
	switch tool {
	case ToolSafeMemML:
		return safemem.HeapOptions(false)
	case ToolSafeMemMC, ToolSafeMemBoth, ToolSample:
		return safemem.HeapOptions(true)
	case ToolPageProt:
		return pageprot.HeapOptions()
	default:
		return heap.Options{} // stock 8-byte-aligned malloc
	}
}

// Run executes one ⟨app, tool⟩ pair on a fresh machine and returns its
// result. The machine, heap, tool and workload are fully reconstructed per
// call, so runs are independent and deterministic for a given cfg.
func Run(appName string, tool Tool, cfg apps.Config) (*Result, error) {
	return RunWithMachine(appName, tool, cfg, machine.DefaultConfig())
}

// machinePools recycles bench machines, one pool per machine configuration.
// Building a 64 MiB machine costs tens of host milliseconds of arena
// zeroing, which dominates the short apps; a recycled machine is
// observationally identical to a fresh one (Machine.Recycle's contract,
// pinned by TestMachineRecycleEquivalence and the golden tables), so reuse
// changes host wall-clock only. Machines carrying a per-run telemetry
// registry or the direct-ECC capability are never pooled: the registry is
// part of the run's output, and Recycle deliberately revokes controller
// capabilities.
var machinePools sync.Map // machine.Config → *sync.Pool

// poolReleased / poolDropped count machines recycled into versus withheld
// from the pools — the crash-safety pin that a run which errored or
// panicked never reaches sync.Pool.Put (TestPanickedMachineNeverRepooled).
var poolReleased, poolDropped atomic.Uint64

// PoolStats reports (released, dropped) machine counts since process start.
func PoolStats() (released, dropped uint64) {
	return poolReleased.Load(), poolDropped.Load()
}

// runHook, when non-nil, runs inside the simulated program just before the
// app body — test-only instrumentation for pinning the panic-discard path.
var runHook func()

func poolable(mcfg machine.Config) bool {
	return mcfg.Telemetry == nil && !mcfg.DirectECCAccess
}

func acquireMachine(mcfg machine.Config) (*machine.Machine, error) {
	if poolable(mcfg) {
		p, _ := machinePools.LoadOrStore(mcfg, new(sync.Pool))
		if v := p.(*sync.Pool).Get(); v != nil {
			return v.(*machine.Machine), nil
		}
	}
	return machine.New(mcfg)
}

// releaseMachine recycles a machine whose run terminated normally back into
// its pool; machines that panicked mid-run are dropped instead.
func releaseMachine(mcfg machine.Config, m *machine.Machine) {
	if !poolable(mcfg) {
		return
	}
	m.Recycle()
	p, _ := machinePools.LoadOrStore(mcfg, new(sync.Pool))
	p.(*sync.Pool).Put(m)
	poolReleased.Add(1)
}

// RunWithMachine is Run with an explicit machine configuration — used to
// evaluate hardware variants such as the Section 2.2.3 direct-ECC
// interface.
//
// With the snapshot layer enabled (snapshot.SetEnabled), runs whose machine
// is poolable and whose tool stack supports checkpoint/restore are served
// from a per-⟨tool, machine⟩ pool of warmed runners instead of rebuilding
// heap and tools per run; per-run state is then applied in exactly the
// rebuild order, so results are byte-identical (TestSnapshotBenchEquivalence).
func RunWithMachine(appName string, tool Tool, cfg apps.Config, mcfg machine.Config) (*Result, error) {
	app, ok := apps.Get(appName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown app %q", appName)
	}
	if mcfg.Telemetry == nil && Telemetry != nil {
		mcfg.Telemetry = Telemetry.NewRegistry(appName + "/" + tool.String())
	}
	if snapshot.Enabled() && poolable(mcfg) && snapshotTool(tool) {
		return runSnapshot(appName, app, tool, cfg, mcfg)
	}
	m, err := acquireMachine(mcfg)
	if err != nil {
		return nil, err
	}
	// Crash-safety accounting: a machine that is not cleanly recycled —
	// setup failure, program error, or a panic unwinding out of this frame
	// into a recovering caller — is counted dropped and never repooled.
	recycled := false
	defer func() {
		if !recycled {
			poolDropped.Add(1)
		}
	}()
	sseed := SampleSeed
	if sseed == 0 {
		sseed = uint64(cfg.Seed) ^ sampleSeedSalt
	}
	w, err := attachBench(m, tool, SampleRate, sseed)
	if err != nil {
		return nil, err
	}
	res := runBench(appName, app, tool, cfg, w)
	if res.Err == nil {
		releaseMachine(mcfg, m)
		recycled = true
	}
	return res, nil
}

// benchWarmup is the warmed object set of one bench run: the machine plus
// the heap and tool stack attached to it. It is what a snapshot runner
// pools. Only the attached tool's pointer is non-nil.
type benchWarmup struct {
	m       *machine.Machine
	alloc   *heap.Allocator
	smTool  *safemem.Tool
	pfTool  *purify.Tool
	ppTool  *pageprot.Tool
	mmpTool *mmp.Tool
	sampler *sampletool.Tool
}

// attachBench creates the bench heap and attaches the tool stack to m — the
// warmup every run of this ⟨tool, machine⟩ pair shares. rate and sseed only
// matter for ToolSample.
func attachBench(m *machine.Machine, tool Tool, rate int, sseed uint64) (*benchWarmup, error) {
	ho := heapOptionsFor(tool)
	ho.Limit = 48 << 20
	alloc, err := heap.New(m, ho)
	if err != nil {
		return nil, err
	}
	w := &benchWarmup{m: m, alloc: alloc}
	switch tool {
	case ToolNone:
	case ToolSafeMemML:
		w.smTool, err = safemem.Attach(m, alloc, SafeMemOptions(true, false))
	case ToolSafeMemMC:
		w.smTool, err = safemem.Attach(m, alloc, SafeMemOptions(false, true))
	case ToolSafeMemBoth:
		w.smTool, err = safemem.Attach(m, alloc, SafeMemOptions(true, true))
	case ToolSample:
		w.sampler, err = sampletool.Attach(m, alloc,
			sampletool.Options{Rate: rate, Seed: sseed, SafeMem: SafeMemOptions(true, true)})
	case ToolPurify:
		w.pfTool = purify.Attach(m, alloc, purify.DefaultOptions())
	case ToolPageProt:
		w.ppTool, err = pageprot.Attach(m, alloc, false)
	case ToolMMP:
		w.mmpTool = mmp.Attach(m, alloc, false)
	default:
		err = fmt.Errorf("bench: unknown tool %v", tool)
	}
	if err != nil {
		return nil, err
	}
	return w, nil
}

// runBench executes one app on an already-warmed machine and collects the
// result. Shared verbatim by the rebuild and snapshot paths: everything
// per-run — resilience policy, fault process, scrub daemon, the run itself —
// happens here, in one order, so the two paths cannot drift. Pool and
// snapshot-store handling stay with the caller.
func runBench(appName string, app *apps.App, tool Tool, cfg apps.Config, w *benchWarmup) *Result {
	m, alloc := w.m, w.alloc
	res := &Result{App: appName, Tool: tool, Cfg: cfg}
	env := &apps.Env{M: m, Alloc: alloc}
	if w.pfTool != nil {
		env.AddRoot = w.pfTool.AddRoot
	}

	var fp *faultmodel.Process
	if Faults != nil && Faults.Rate > 0 {
		if Faults.Retire {
			m.Kern.SetResilience(kernel.ResilienceOptions{Policy: kernel.RetireAndContinue})
		}
		base, _ := alloc.ArenaRange()
		fc := faultmodel.Config{
			Seed:         uint64(cfg.Seed) ^ 0x5afe,
			MeanInterval: simtime.Cycles(1_000_000 / Faults.Rate),
			Targets:      []inject.Region{{Base: base, Size: alloc.Options().Limit}},
		}
		if Faults.Storm {
			fc.StormInterval = 8 * fc.MeanInterval
		}
		if !Faults.Retire {
			fc.DoubleBitFrac = -1
		}
		fp = faultmodel.Start(m, inject.New(m, inject.Config{Seed: cfg.Seed}), fc)
		m.Kern.StartScrubDaemon(kernel.ScrubDaemonOptions{})
	}

	runSpan := m.Telemetry.Tracer().Begin("run", appName+"/"+tool.String())
	start := time.Now()
	res.Err = m.Run(func() error {
		if runHook != nil {
			runHook()
		}
		return app.Run(env, cfg)
	})
	res.HostNS = time.Since(start).Nanoseconds()
	runSpan.End()
	if fp != nil {
		fp.Stop()
		res.FaultEvents = fp.Stats().Events + fp.Stats().Refires
	}
	res.Resilience = m.Kern.ResilienceStats()
	res.Cycles = m.Clock.Now()
	res.Instrs = m.Instructions()
	res.Heap = alloc.Stats()
	res.Machine = m.Stats()
	res.Cache = m.Cache.Stats()
	res.Ctrl = m.Ctrl.Stats()
	res.Kern = m.Kern.Stats()
	res.Registry = m.Telemetry

	smTool := w.smTool
	if w.sampler != nil {
		res.SampleStats = w.sampler.Stats()
		smTool = w.sampler.Inner()
	}
	if smTool != nil {
		res.SafeMem = smTool.Reports()
		for _, rep := range res.SafeMem {
			res.SafeMemExplain = append(res.SafeMemExplain, smTool.Explain(rep))
		}
		res.SafeMemStats = smTool.Stats()
		res.Groups = smTool.Groups()
	}
	if w.pfTool != nil {
		// An exit-time scan, as Purify performs when the program ends.
		w.pfTool.LeakScan()
		res.Purify = w.pfTool.Reports()
		res.PurifyStats = w.pfTool.Stats()
	}
	if w.ppTool != nil {
		res.PageProt = w.ppTool.Reports()
		res.PageProtStats = w.ppTool.Stats()
	}
	if w.mmpTool != nil {
		res.MMP = w.mmpTool.Reports()
		res.MMPStats = w.mmpTool.Stats()
	}
	m.Telemetry.Finish()
	return res
}

// benchStore pools snapshot-checkpointed bench runners per ⟨tool, machine⟩
// configuration.
var benchStore = snapshot.NewStore(0)

// SnapshotStats returns the bench snapshot store's counters, for telemetry
// export and the equivalence tests.
func SnapshotStats() snapshot.Stats { return benchStore.Stats() }

// FlushSnapshots discards every idle pooled bench runner (tests; memory
// pressure).
func FlushSnapshots() { benchStore.Flush() }

// snapshotTool reports whether the tool stack supports checkpoint/restore.
// Purify, pageprot and MMP keep monitor state without capture support, so
// they stay on the rebuild path — correct, just not accelerated.
func snapshotTool(tool Tool) bool {
	switch tool {
	case ToolNone, ToolSafeMemML, ToolSafeMemMC, ToolSafeMemBoth, ToolSample:
		return true
	}
	return false
}

// benchKey identifies one warmup configuration: everything attachBench bakes
// into the checkpoint. Per-run knobs (workload seeds, fault knobs, the
// sampling-decision seed) are deliberately absent — they are applied after
// restore, in rebuild order. The sampling rate is baked in (it is part of
// the captured tool options), so it is in the key; 0 for non-sample tools
// keeps SampleRate changes from splitting their pools.
func benchKey(tool Tool, mcfg machine.Config, rate int) string {
	return fmt.Sprintf("bench|%s|mem=%d|cache=%+v|rate=%d", tool, mcfg.MemBytes, mcfg.Cache, rate)
}

// runSnapshot is RunWithMachine's snapshot fast path: acquire a checkpointed
// warmed runner for the ⟨tool, machine⟩ pair (building one on a cold miss),
// reseed its sampler for this workload, and run. Clean runs release the
// runner — restored back to its checkpoint — for the next run; a run that
// errored or panicked drops it, warmup and all.
func runSnapshot(appName string, app *apps.App, tool Tool, cfg apps.Config, mcfg machine.Config) (*Result, error) {
	rate := 0
	if tool == ToolSample {
		rate = SampleRate
	}
	key := benchKey(tool, mcfg, rate)
	r, err := benchStore.Acquire(key, func() (*snapshot.Runner, error) {
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		// The warmup seed is a placeholder: every acquisition reseeds the
		// sampler for its workload, exactly like a fresh attach with that
		// seed (Reseed resets the whole decision stream).
		w, err := attachBench(m, tool, rate, 0)
		if err != nil {
			return nil, err
		}
		aimg := w.alloc.CaptureImage()
		var timg *safemem.Image
		if w.smTool != nil {
			if timg, err = w.smTool.CaptureImage(); err != nil {
				return nil, err
			}
		}
		var simg *sampletool.Image
		if w.sampler != nil {
			if simg, err = w.sampler.CaptureImage(); err != nil {
				return nil, err
			}
		}
		return &snapshot.Runner{
			Machine: m,
			Snap:    m.Snapshot(),
			Payload: w,
			Reset: func() {
				w.alloc.RestoreImage(aimg)
				if w.smTool != nil {
					w.smTool.RestoreImage(timg)
				}
				if w.sampler != nil {
					w.sampler.RestoreImage(simg)
				}
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	w := r.Payload.(*benchWarmup)
	// Taint accounting mirrors the machine pool's: a runner is released
	// exactly once on a clean run; any other exit — error result, panic
	// unwinding through this frame — drops it.
	released := false
	defer func() {
		if !released {
			benchStore.Drop(r)
		}
	}()
	if w.sampler != nil {
		sseed := SampleSeed
		if sseed == 0 {
			sseed = uint64(cfg.Seed) ^ sampleSeedSalt
		}
		w.sampler.Reseed(sseed)
	}
	res := runBench(appName, app, tool, cfg, w)
	if res.Err == nil {
		benchStore.Release(key, r)
		released = true
	}
	return res, nil
}

// RunWithOptions is Run with an explicit SafeMem configuration (used by the
// Table 5 pruning ablation). Only SafeMem tool kinds are supported.
func RunWithOptions(appName string, opts safemem.Options, cfg apps.Config) (*Result, error) {
	app, ok := apps.Get(appName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown app %q", appName)
	}
	mcfg := machine.DefaultConfig()
	if Telemetry != nil {
		mcfg.Telemetry = Telemetry.NewRegistry(appName + "/custom")
	}
	m, err := acquireMachine(mcfg)
	if err != nil {
		return nil, err
	}
	recycled := false
	defer func() {
		if !recycled {
			poolDropped.Add(1)
		}
	}()
	ho := safemem.HeapOptions(opts.DetectCorruption || opts.DetectUninitRead)
	ho.Limit = 48 << 20
	alloc, err := heap.New(m, ho)
	if err != nil {
		return nil, err
	}
	smTool, err := safemem.Attach(m, alloc, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{App: appName, Tool: ToolSafeMemBoth, Cfg: cfg}
	env := &apps.Env{M: m, Alloc: alloc}
	runSpan := m.Telemetry.Tracer().Begin("run", appName+"/custom")
	start := time.Now()
	res.Err = m.Run(func() error { return app.Run(env, cfg) })
	res.HostNS = time.Since(start).Nanoseconds()
	runSpan.End()
	res.Cycles = m.Clock.Now()
	res.Instrs = m.Instructions()
	res.Heap = alloc.Stats()
	res.Machine = m.Stats()
	res.Cache = m.Cache.Stats()
	res.Ctrl = m.Ctrl.Stats()
	res.Kern = m.Kern.Stats()
	res.Registry = m.Telemetry
	res.SafeMem = smTool.Reports()
	res.SafeMemStats = smTool.Stats()
	res.Groups = smTool.Groups()
	m.Telemetry.Finish()
	if res.Err == nil {
		releaseMachine(mcfg, m)
		recycled = true
	}
	return res, nil
}

// RunSample is Run for the sampling tool at an explicit rate and decision
// seed. The sample-overhead table and the frontier experiment run cells
// with different rates concurrently, so they cannot share the package-
// level SampleRate knob.
func RunSample(appName string, rate int, seed uint64, cfg apps.Config) (*Result, error) {
	app, ok := apps.Get(appName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown app %q", appName)
	}
	mcfg := machine.DefaultConfig()
	if Telemetry != nil {
		mcfg.Telemetry = Telemetry.NewRegistry(appName + "/sample")
	}
	m, err := acquireMachine(mcfg)
	if err != nil {
		return nil, err
	}
	recycled := false
	defer func() {
		if !recycled {
			poolDropped.Add(1)
		}
	}()
	ho := safemem.HeapOptions(true)
	ho.Limit = 48 << 20
	alloc, err := heap.New(m, ho)
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = uint64(cfg.Seed) ^ sampleSeedSalt
	}
	sampler, err := sampletool.Attach(m, alloc,
		sampletool.Options{Rate: rate, Seed: seed, SafeMem: SafeMemOptions(true, true)})
	if err != nil {
		return nil, err
	}
	res := &Result{App: appName, Tool: ToolSample, Cfg: cfg}
	env := &apps.Env{M: m, Alloc: alloc}
	runSpan := m.Telemetry.Tracer().Begin("run", appName+"/sample")
	start := time.Now()
	res.Err = m.Run(func() error { return app.Run(env, cfg) })
	res.HostNS = time.Since(start).Nanoseconds()
	runSpan.End()
	res.Cycles = m.Clock.Now()
	res.Instrs = m.Instructions()
	res.Heap = alloc.Stats()
	res.Machine = m.Stats()
	res.Cache = m.Cache.Stats()
	res.Ctrl = m.Ctrl.Stats()
	res.Kern = m.Kern.Stats()
	res.Registry = m.Telemetry
	res.SampleStats = sampler.Stats()
	res.SafeMem = sampler.Reports()
	res.SafeMemStats = sampler.SafeMemStats()
	res.Groups = sampler.Inner().Groups()
	m.Telemetry.Finish()
	if res.Err == nil {
		releaseMachine(mcfg, m)
		recycled = true
	}
	return res, nil
}

// Overhead returns (tool − base) / base as a fraction.
func Overhead(base, withTool simtime.Cycles) float64 {
	if base == 0 {
		return 0
	}
	return (float64(withTool) - float64(base)) / float64(base)
}

// ClassifyLeaks splits SafeMem leak reports into true and false positives
// against the app's ground truth.
func ClassifyLeaks(app *apps.App, reports []safemem.BugReport) (truePos, falsePos int) {
	for _, r := range reports {
		if !r.Kind.IsLeak() {
			continue
		}
		if app.IsRealLeak != nil && app.IsRealLeak(r.Site, r.BufferSize) {
			truePos++
		} else {
			falsePos++
		}
	}
	return truePos, falsePos
}

// DetectedBug reports whether a SafeMem run (buggy inputs, full config)
// found the app's planted bug.
func DetectedBug(app *apps.App, res *Result) bool {
	for _, r := range res.SafeMem {
		switch app.Class {
		case apps.ClassALeak:
			if r.Kind == safemem.BugALeak && app.IsRealLeak != nil && app.IsRealLeak(r.Site, r.BufferSize) {
				return true
			}
		case apps.ClassSLeak:
			if r.Kind == safemem.BugSLeak && app.IsRealLeak != nil && app.IsRealLeak(r.Site, r.BufferSize) {
				return true
			}
		case apps.ClassOverflow:
			if r.Kind == safemem.BugOverflow || r.Kind == safemem.BugUnderflow {
				return true
			}
		case apps.ClassFreedAccess:
			if r.Kind == safemem.BugFreedAccess {
				return true
			}
		}
	}
	return false
}
