package bench

import (
	"fmt"

	"safemem/internal/apps"
	"safemem/internal/stats"
)

// SampleRates are the sampling-rate sweep points of the sample-overhead
// table and the detection-probability frontier: full SafeMem (N=1) down to
// the ~free production regime (N=512).
var SampleRates = []int{1, 8, 64, 512}

// SampleRow is one application's row of the sample-overhead table: the
// full-tool overhead for reference, then the sampling tool's overhead at
// each SampleRates point.
type SampleRow struct {
	App        string
	SafeMemPct float64
	// RatePct[i] is the overhead percentage at SampleRates[i].
	RatePct []float64
}

// RunSampleTable measures the sampling tool's time overhead across the
// Table 3 applications at every SampleRates point, against the
// uninstrumented baseline. Cells run on runCells workers; each sampling
// cell pins its rate explicitly (RunSample), so output is identical at any
// Parallel value.
func RunSampleTable(cfg apps.Config) ([]SampleRow, error) {
	all := apps.All()
	ncell := 2 + len(SampleRates) // baseline, full SafeMem, each rate
	results := make([]*Result, len(all)*ncell)
	if err := runCells("sample", len(results), func(i int) error {
		app := all[i/ncell].Name
		var res *Result
		var err error
		switch c := i % ncell; c {
		case 0:
			res, err = Run(app, ToolNone, cfg)
		case 1:
			res, err = Run(app, ToolSafeMemBoth, cfg)
		default:
			res, err = RunSample(app, SampleRates[c-2], 0, cfg)
		}
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	var rows []SampleRow
	for ai, app := range all {
		cells := results[ai*ncell : (ai+1)*ncell]
		base := cells[0]
		if base.Err != nil {
			return nil, fmt.Errorf("sample: %s base run: %w", app.Name, base.Err)
		}
		row := SampleRow{App: app.Name, SafeMemPct: Overhead(base.Cycles, cells[1].Cycles) * 100}
		for _, res := range cells[2:] {
			row.RatePct = append(row.RatePct, Overhead(base.Cycles, res.Cycles)*100)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSampleTable formats the rows in the Table 3 style.
func RenderSampleTable(rows []SampleRow) string {
	headers := []string{"Application", "SafeMem (full)"}
	for _, n := range SampleRates {
		headers = append(headers, fmt.Sprintf("sample N=%d", n))
	}
	tab := stats.NewTable(
		"Sampling-mode time overhead (%) vs sampling rate N", headers...)
	for _, r := range rows {
		cells := []string{r.App, fmt.Sprintf("%.1f%%", r.SafeMemPct)}
		for _, pct := range r.RatePct {
			cells = append(cells, fmt.Sprintf("%.1f%%", pct))
		}
		tab.AddRow(cells...)
	}
	return tab.Render()
}
