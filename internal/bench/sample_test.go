package bench

import (
	"reflect"
	"testing"

	"safemem/internal/apps"
)

// TestSampleRateOneEquivalence is the differential golden for the sampling
// tool's degenerate end: at rate 1 every allocation is admitted, and the
// sampling draw is host-side with zero simulated cost, so each Table 3 app
// must produce bit-for-bit the full SafeMem run — cycles, instruction
// count, machine and heap counters, reports and detector stats.
func TestSampleRateOneEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full table workloads twice")
	}
	for _, buggy := range []bool{false, true} {
		cfg := apps.Config{Seed: 42, Buggy: buggy}
		for _, app := range apps.All() {
			full, err := Run(app.Name, ToolSafeMemBoth, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := RunSample(app.Name, 1, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if full.Err != nil || sampled.Err != nil {
				t.Fatalf("%s buggy=%v: run errors %v / %v", app.Name, buggy, full.Err, sampled.Err)
			}
			if full.Cycles != sampled.Cycles || full.Instrs != sampled.Instrs {
				t.Errorf("%s buggy=%v: rate-1 timing diverges: %v/%d vs %v/%d",
					app.Name, buggy, full.Cycles, full.Instrs, sampled.Cycles, sampled.Instrs)
			}
			if full.Machine != sampled.Machine || full.Heap != sampled.Heap ||
				full.Cache != sampled.Cache || full.Ctrl != sampled.Ctrl {
				t.Errorf("%s buggy=%v: rate-1 machine counters diverge", app.Name, buggy)
			}
			if !reflect.DeepEqual(full.SafeMem, sampled.SafeMem) {
				t.Errorf("%s buggy=%v: rate-1 reports diverge:\nfull:    %v\nsampled: %v",
					app.Name, buggy, full.SafeMem, sampled.SafeMem)
			}
			if full.SafeMemStats != sampled.SafeMemStats {
				t.Errorf("%s buggy=%v: rate-1 detector stats diverge:\nfull:    %+v\nsampled: %+v",
					app.Name, buggy, full.SafeMemStats, sampled.SafeMemStats)
			}
			if ss := sampled.SampleStats; ss.Unsampled != 0 || ss.Sampled != full.SafeMemStats.Allocs {
				t.Errorf("%s buggy=%v: rate-1 split %d/%d, want %d/0",
					app.Name, buggy, ss.Sampled, ss.Unsampled, full.SafeMemStats.Allocs)
			}
		}
	}
}

// TestSampleOverheadShrinks pins the point of the tool: sampling at 1/512
// must cost materially less than full SafeMem on every app.
func TestSampleOverheadShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full table workloads")
	}
	rows, err := RunSampleTable(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sparse := r.RatePct[len(r.RatePct)-1]
		if r.SafeMemPct > 1 && sparse > r.SafeMemPct/2 {
			t.Errorf("%s: overhead at N=512 is %.1f%%, not well under full SafeMem's %.1f%%",
				r.App, sparse, r.SafeMemPct)
		}
		if sparse < -0.5 {
			t.Errorf("%s: negative overhead %.1f%% at N=512 — baseline mismatch", r.App, sparse)
		}
	}
}
