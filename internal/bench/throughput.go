package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"safemem/internal/apps"
	"safemem/internal/stats"
)

// ThroughputRow is one application's row of the simulator-throughput
// experiment: how fast the host executes the simulated machine.
type ThroughputRow struct {
	App string `json:"app"`
	// SimInstrs is the simulated-instruction count of the run (loads +
	// stores + compute cycles).
	SimInstrs uint64 `json:"sim_instrs"`
	// SimCycles is the simulated CPU time of the run in 2.4 GHz cycles.
	SimCycles uint64 `json:"sim_cycles"`
	// HostNS is the host wall-clock spent executing the run, in nanoseconds.
	HostNS int64 `json:"host_ns"`
	// SimMIPS is millions of simulated instructions per host second.
	SimMIPS float64 `json:"sim_mips"`
	// HostNSPerInstr is host nanoseconds per simulated instruction.
	HostNSPerInstr float64 `json:"host_ns_per_instr"`
}

// Throughput is the result of the throughput experiment, serialised to
// BENCH_throughput.json so speedups and regressions are tracked in-repo.
// The simulated columns (instructions, cycles) are deterministic for a
// given seed/scale; the host columns vary with the machine running the
// benchmark and are indicative, not golden.
type Throughput struct {
	Seed  int64           `json:"seed"`
	Scale int             `json:"scale,omitempty"`
	Rows  []ThroughputRow `json:"rows"`
	// Total aggregates all rows (SimMIPS and HostNSPerInstr recomputed
	// from the summed columns, not averaged).
	Total ThroughputRow `json:"total"`
}

// RunThroughput runs every app uninstrumented (ToolNone) and wall-clocks
// each run on the host. Rows run sequentially even when Parallel > 1:
// concurrent cells would contend for host cores and corrupt the per-row
// timings. Each row times only Machine.Run (Result.HostNS) — machine
// construction, pool recycling and heap setup are harness cost, not
// simulator throughput, and timing them made short rows look ~2× slower
// than the simulator actually is.
func RunThroughput(cfg apps.Config) (*Throughput, error) {
	t := &Throughput{Seed: cfg.Seed, Scale: cfg.Scale}
	all := apps.All()
	for ai, app := range all {
		res, err := Run(app.Name, ToolNone, cfg)
		noteProgress("throughput", ai+1, len(all))
		if err != nil {
			return nil, fmt.Errorf("throughput: %s: %w", app.Name, err)
		}
		if res.Err != nil {
			return nil, fmt.Errorf("throughput: %s run: %w", app.Name, res.Err)
		}
		row := ThroughputRow{
			App:       app.Name,
			SimInstrs: res.Instrs,
			SimCycles: uint64(res.Cycles),
			HostNS:    res.HostNS,
		}
		row.fillRates()
		t.Rows = append(t.Rows, row)
		t.Total.SimInstrs += row.SimInstrs
		t.Total.SimCycles += row.SimCycles
		t.Total.HostNS += row.HostNS
	}
	t.Total.App = "TOTAL"
	t.Total.fillRates()
	return t, nil
}

func (r *ThroughputRow) fillRates() {
	if r.HostNS > 0 {
		// instrs / (ns * 1e-9 s) / 1e6 = instrs * 1e3 / ns.
		r.SimMIPS = float64(r.SimInstrs) * 1e3 / float64(r.HostNS)
	}
	if r.SimInstrs > 0 {
		r.HostNSPerInstr = float64(r.HostNS) / float64(r.SimInstrs)
	}
}

// Render formats the throughput report as a table.
func (t *Throughput) Render() string {
	tab := stats.NewTable(
		"Simulator throughput (uninstrumented apps, host wall-clock)",
		"Application", "Sim instrs", "Sim cycles", "Host ms", "Sim MIPS", "Host ns/instr")
	rows := append(append([]ThroughputRow{}, t.Rows...), t.Total)
	for _, r := range rows {
		tab.AddRow(r.App,
			fmt.Sprintf("%d", r.SimInstrs),
			fmt.Sprintf("%d", r.SimCycles),
			fmt.Sprintf("%.1f", float64(r.HostNS)/1e6),
			fmt.Sprintf("%.1f", r.SimMIPS),
			fmt.Sprintf("%.1f", r.HostNSPerInstr))
	}
	return tab.Render()
}

// WriteJSON writes the report to path (the tracked BENCH_throughput.json
// baseline at the repo root, by default).
func (t *Throughput) WriteJSON(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadThroughput loads a previously written baseline.
func ReadThroughput(path string) (*Throughput, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t := &Throughput{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("throughput baseline %s: %w", path, err)
	}
	return t, nil
}

// CheckAgainst compares this run's host-ns-per-instruction — the aggregate
// total and every per-app row — against a baseline and returns an error if
// any regressed by more than tolerance (0.25 = 25% slower). The total gate
// catches access-path-wide regressions; the per-app gates catch a fast-lane
// bail-out regression that hammers one workload's idiom (say, CompareRun
// falling back to byte loads would triple gzip while barely moving the
// total). Rows present only on one side are skipped — adding an app must
// not fail the gate until the baseline is regenerated.
func (t *Throughput) CheckAgainst(base *Throughput, tolerance float64) error {
	cur, ref := t.Total.HostNSPerInstr, base.Total.HostNSPerInstr
	if ref <= 0 {
		return fmt.Errorf("throughput baseline has no total rate")
	}
	if cur > ref*(1+tolerance) {
		return fmt.Errorf("host ns/instr regressed: %.4f vs baseline %.4f (+%.0f%%, tolerance %.0f%%)",
			cur, ref, (cur/ref-1)*100, tolerance*100)
	}
	baseRows := make(map[string]float64, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.App] = r.HostNSPerInstr
	}
	for _, r := range t.Rows {
		bref, ok := baseRows[r.App]
		if !ok || bref <= 0 {
			continue
		}
		if r.HostNSPerInstr > bref*(1+tolerance) {
			return fmt.Errorf("%s host ns/instr regressed: %.4f vs baseline %.4f (+%.0f%%, tolerance %.0f%%)",
				r.App, r.HostNSPerInstr, bref, (r.HostNSPerInstr/bref-1)*100, tolerance*100)
		}
	}
	return nil
}
