package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"safemem/internal/apps"
	"safemem/internal/stats"
)

// FleetRow aggregates one application's runs across every shard of the
// fleet-throughput experiment. HostNS sums only Machine.Run wall-clock
// (Result.HostNS); the pool recycling between tenants is harness cost and
// is visible instead in the gap between the summed rows and WallNS.
type FleetRow struct {
	App string `json:"app"`
	// Runs is how many times the app ran (one per shard).
	Runs int `json:"runs"`
	// SimInstrs sums the simulated-instruction counts of those runs.
	SimInstrs uint64 `json:"sim_instrs"`
	// HostNS sums the host wall-clock spent inside Machine.Run.
	HostNS int64 `json:"host_ns"`
	// HostNSPerInstr is HostNS / SimInstrs — per-app simulator speed while
	// the whole fleet contends for the host's cores.
	HostNSPerInstr float64 `json:"host_ns_per_instr"`
}

// Fleet is the result of the fleet-throughput experiment: shards × apps
// uninstrumented runs on pooled machines, spread across every host core —
// the aggregate-simulation-capacity view that the campaign and serve planes
// actually experience, as opposed to RunThroughput's one-machine-at-a-time
// view. Serialised to BENCH_fleet.json; the simulated columns are
// deterministic for a seed/scale, the host columns indicative.
type Fleet struct {
	Seed  int64 `json:"seed"`
	Scale int   `json:"scale,omitempty"`
	// Shards is how many full passes over the app list ran.
	Shards int `json:"shards"`
	// Workers is how many runs executed concurrently (≤ host cores).
	Workers int `json:"workers"`
	// Cores is runtime.GOMAXPROCS at run time.
	Cores int `json:"cores"`
	// Rows aggregates per app, in apps.All order.
	Rows []FleetRow `json:"rows"`
	// SimInstrs is the fleet-wide simulated-instruction total.
	SimInstrs uint64 `json:"sim_instrs"`
	// WallNS is the host wall-clock of the whole sweep, launch to last run.
	WallNS int64 `json:"wall_ns"`
	// SimMIPS is fleet-wide millions of simulated instructions per host
	// second: SimInstrs / WallNS. SimMIPSPerCore divides by Workers — the
	// per-core capacity number for sizing detection fleets.
	SimMIPS        float64 `json:"sim_mips"`
	SimMIPSPerCore float64 `json:"sim_mips_per_core"`
}

// RunFleet executes shards full passes over the uninstrumented app list on
// up to workers concurrent goroutines (0 = all host cores), recycling
// machines through the bench pool exactly as the campaign runner does.
// Results are deterministic per run (each cell builds or recycles an
// isolated machine); only the host timings vary with contention.
func RunFleet(cfg apps.Config, shards, workers int) (*Fleet, error) {
	if shards < 1 {
		shards = 1
	}
	cores := runtime.GOMAXPROCS(0)
	if workers < 1 || workers > cores {
		workers = cores
	}
	all := apps.All()
	f := &Fleet{Seed: cfg.Seed, Scale: cfg.Scale, Shards: shards, Workers: workers, Cores: cores}
	type cellRes struct {
		app    int
		instrs uint64
		hostNS int64
		err    error
	}
	n := shards * len(all)
	if workers > n {
		workers = n
		f.Workers = workers
	}
	results := make([]cellRes, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	var done sync.Mutex
	finished := 0
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				ai := i % len(all)
				res, err := Run(all[ai].Name, ToolNone, cfg)
				c := cellRes{app: ai, err: err}
				if err == nil {
					if res.Err != nil {
						c.err = fmt.Errorf("fleet: %s run: %w", all[ai].Name, res.Err)
					} else {
						c.instrs, c.hostNS = res.Instrs, res.HostNS
					}
				}
				results[i] = c
				done.Lock()
				finished++
				noteProgress("fleet", finished, n)
				done.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	f.WallNS = time.Since(start).Nanoseconds()

	f.Rows = make([]FleetRow, len(all))
	for ai, app := range all {
		f.Rows[ai].App = app.Name
	}
	for _, c := range results {
		if c.err != nil {
			return nil, c.err
		}
		r := &f.Rows[c.app]
		r.Runs++
		r.SimInstrs += c.instrs
		r.HostNS += c.hostNS
		f.SimInstrs += c.instrs
	}
	for i := range f.Rows {
		if r := &f.Rows[i]; r.SimInstrs > 0 {
			r.HostNSPerInstr = float64(r.HostNS) / float64(r.SimInstrs)
		}
	}
	if f.WallNS > 0 {
		f.SimMIPS = float64(f.SimInstrs) * 1e3 / float64(f.WallNS)
		f.SimMIPSPerCore = f.SimMIPS / float64(f.Workers)
	}
	return f, nil
}

// Render formats the fleet report as a table plus the aggregate line.
func (f *Fleet) Render() string {
	tab := stats.NewTable(
		fmt.Sprintf("Fleet throughput (%d shards × %d apps on %d workers, %d cores)",
			f.Shards, len(f.Rows), f.Workers, f.Cores),
		"Application", "Runs", "Sim instrs", "Host ms", "Host ns/instr")
	rows := append([]FleetRow{}, f.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].App < rows[j].App })
	for _, r := range rows {
		tab.AddRow(r.App,
			fmt.Sprintf("%d", r.Runs),
			fmt.Sprintf("%d", r.SimInstrs),
			fmt.Sprintf("%.1f", float64(r.HostNS)/1e6),
			fmt.Sprintf("%.2f", r.HostNSPerInstr))
	}
	return tab.Render() + fmt.Sprintf(
		"\nAggregate: %d sim instrs in %.1f host ms — %.1f sim-MIPS, %.1f sim-MIPS/core\n",
		f.SimInstrs, float64(f.WallNS)/1e6, f.SimMIPS, f.SimMIPSPerCore)
}

// WriteJSON writes the report to path (the tracked BENCH_fleet.json
// baseline at the repo root, by default).
func (f *Fleet) WriteJSON(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFleet loads a previously written fleet baseline.
func ReadFleet(path string) (*Fleet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &Fleet{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("fleet baseline %s: %w", path, err)
	}
	return f, nil
}
