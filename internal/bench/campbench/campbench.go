// Package campbench is the campaign-throughput experiment behind
// `safemem-bench -experiment campaign`: how many campaign scenarios per
// host second the executor sustains with the warmup rebuilt per run (cold:
// machine construction, heap creation, tool attachment — the unamortized
// cost every new shard or fleet worker pays, so the cold pass runs with
// machine pooling off) versus served from the snapshot layer (warm,
// internal/snapshot), per tool configuration, plus the same before/after
// for fleet scenario jobs. The short-scenario tail — the shortest quartile
// by op count, where warmup dominates the run — is reported separately; it
// is the population the snapshot layer exists for, and the tracked
// BENCH_campaign.json baseline pins its speedup.
//
// Simulated results are identical on both passes (the snapshot equivalence
// tests pin that byte-for-byte); only host wall-clock differs, so like the
// throughput and fleet baselines the host columns are indicative, not
// golden.
package campbench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"safemem/internal/campaign"
	"safemem/internal/fleet"
	"safemem/internal/snapshot"
	"safemem/internal/stats"
)

// Options configures the experiment.
type Options struct {
	// Seed is the base scenario seed; scenario i uses Seed+i.
	Seed uint64
	// Scenarios is how many scenarios each tool configuration runs per pass.
	Scenarios int
	// FleetJobs is how many scenario jobs the fleet leg runs per pass.
	FleetJobs int
	// Workers is the fleet leg's concurrency (capped at the snapshot
	// store's per-key capacity so the warm pass is served from the pool).
	Workers int
	// WarmReps is how many times each warm pass repeats; the best (minimum
	// total time) repetition is reported. Warm batches complete in
	// single-digit milliseconds, so one GC pause or scheduler preemption
	// would otherwise dominate the measurement — host noise is one-sided,
	// and the minimum is the robust estimator the regression gate needs.
	WarmReps int
}

// DefaultOptions returns the tracked-baseline configuration.
func DefaultOptions() Options {
	w := runtime.GOMAXPROCS(0)
	if w > snapshot.DefaultCapacity {
		w = snapshot.DefaultCapacity
	}
	return Options{Seed: 42, Scenarios: 32, FleetJobs: 32, Workers: w, WarmReps: 8}
}

// Row is one tool configuration's before/after comparison.
type Row struct {
	Tool string `json:"tool"`
	// Scenarios is the per-pass scenario count.
	Scenarios int `json:"scenarios"`
	// ColdNS / WarmNS are summed per-scenario host wall-clock (warmup +
	// run) for the unpooled rebuild and snapshot passes; the warm figure
	// is the best of Options.WarmReps repetitions.
	ColdNS int64 `json:"cold_ns"`
	WarmNS int64 `json:"warm_ns"`
	// ColdPerSec / WarmPerSec are scenarios per host second.
	ColdPerSec float64 `json:"cold_per_sec"`
	WarmPerSec float64 `json:"warm_per_sec"`
	// Speedup is WarmPerSec / ColdPerSec.
	Speedup float64 `json:"speedup"`
	// The short-scenario tail: the shortest quartile by op count, where
	// warmup dominates and the snapshot layer pays off most.
	TailScenarios  int     `json:"tail_scenarios"`
	TailColdNS     int64   `json:"tail_cold_ns"`
	TailWarmNS     int64   `json:"tail_warm_ns"`
	TailColdPerSec float64 `json:"tail_cold_per_sec"`
	TailWarmPerSec float64 `json:"tail_warm_per_sec"`
	TailSpeedup    float64 `json:"tail_speedup"`
}

// fillRates computes the derived per-second and speedup columns.
func (r *Row) fillRates() {
	if r.ColdNS > 0 {
		r.ColdPerSec = float64(r.Scenarios) * 1e9 / float64(r.ColdNS)
	}
	if r.WarmNS > 0 {
		r.WarmPerSec = float64(r.Scenarios) * 1e9 / float64(r.WarmNS)
	}
	if r.ColdPerSec > 0 {
		r.Speedup = r.WarmPerSec / r.ColdPerSec
	}
	if r.TailColdNS > 0 {
		r.TailColdPerSec = float64(r.TailScenarios) * 1e9 / float64(r.TailColdNS)
	}
	if r.TailWarmNS > 0 {
		r.TailWarmPerSec = float64(r.TailScenarios) * 1e9 / float64(r.TailWarmNS)
	}
	if r.TailColdPerSec > 0 {
		r.TailSpeedup = r.TailWarmPerSec / r.TailColdPerSec
	}
}

// Campaign is the experiment result, serialised to BENCH_campaign.json.
type Campaign struct {
	Seed      uint64 `json:"seed"`
	Scenarios int    `json:"scenarios"`
	// Rows compares per tool configuration, in campaign.AllConfigs order;
	// Total aggregates them (rates recomputed from summed columns).
	Rows  []Row `json:"rows"`
	Total Row   `json:"total"`
	// The fleet leg: FleetJobs scenario jobs through the fleet executor on
	// FleetWorkers goroutines, cold versus warm, wall-clocked end to end
	// (warm: best of Options.WarmReps repetitions).
	FleetJobs       int     `json:"fleet_jobs"`
	FleetWorkers    int     `json:"fleet_workers"`
	FleetColdNS     int64   `json:"fleet_cold_ns"`
	FleetWarmNS     int64   `json:"fleet_warm_ns"`
	FleetColdPerSec float64 `json:"fleet_cold_jobs_per_sec"`
	FleetWarmPerSec float64 `json:"fleet_warm_jobs_per_sec"`
	FleetSpeedup    float64 `json:"fleet_speedup"`
}

// Progress, when set, is called after each completed pass segment (same
// contract as bench.Progress; the CLI wires the two together).
var Progress func(label string, done, total int)

func note(done, total int) {
	if Progress != nil {
		Progress("campaign", done, total)
	}
}

// Run executes the experiment. The snapshot kill switch is flipped per pass
// and restored to its entry state afterwards; idle pooled runners are
// flushed on exit so the experiment leaves no warmed machines pinned.
func Run(opts Options) (*Campaign, error) {
	if opts.Scenarios < 4 {
		opts.Scenarios = 4
	}
	if opts.FleetJobs < 1 {
		opts.FleetJobs = 1
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.WarmReps < 1 {
		opts.WarmReps = 1
	}
	wasEnabled := snapshot.Enabled()
	defer func() {
		snapshot.SetEnabled(wasEnabled)
		campaign.FlushSnapshots()
	}()

	scenarios := make([]*campaign.Scenario, opts.Scenarios)
	for i := range scenarios {
		scenarios[i] = campaign.Generate(opts.Seed + uint64(i))
	}
	// The short tail: indices of the shortest quartile by op count.
	byOps := make([]int, len(scenarios))
	for i := range byOps {
		byOps[i] = i
	}
	sort.SliceStable(byOps, func(a, b int) bool {
		return len(scenarios[byOps[a]].Ops) < len(scenarios[byOps[b]].Ops)
	})
	tail := make(map[int]bool, len(scenarios)/4)
	for _, i := range byOps[:len(byOps)/4] {
		tail[i] = true
	}

	c := &Campaign{Seed: opts.Seed, Scenarios: opts.Scenarios}
	total := len(campaign.AllConfigs)*2 + 2
	done := 0

	pass := func(cfg campaign.ToolConfig, warm bool, row *Row) error {
		snapshot.SetEnabled(warm)
		// The cold pass measures the true per-scenario warmup a new shard
		// or worker pays: a freshly built machine every run, no pooling.
		defer campaign.SetMachinePooling(campaign.SetMachinePooling(warm))
		reps := 1
		if warm {
			// Prime the pool: the one-time warmup build is the cost the
			// campaign amortises across a whole shard, so it is excluded
			// from the steady-state rate (and included in the cold pass,
			// which pays it per scenario).
			if _, err := campaign.ExecuteEnv(scenarios[0], cfg, campaign.Env{}); err != nil {
				return err
			}
			reps = opts.WarmReps
		}
		// The cold pass sheds hundreds of megabytes of dead machines; a
		// concurrent collection digesting them would tax the millisecond
		// warm windows with allocation assists. Start every timed pass on
		// a collected heap (testing.B does the same between benchmarks).
		runtime.GC()
		var bestNS, bestTailNS int64
		for r := 0; r < reps; r++ {
			var ns, tailNS int64
			for i, s := range scenarios {
				start := time.Now()
				res, err := campaign.ExecuteEnv(s, cfg, campaign.Env{})
				dt := time.Since(start).Nanoseconds()
				if err != nil {
					return fmt.Errorf("campaign: %s seed %d: %w", cfg, s.Seed, err)
				}
				if res.Err != nil {
					return fmt.Errorf("campaign: %s seed %d run: %w", cfg, s.Seed, res.Err)
				}
				ns += dt
				if tail[i] {
					tailNS += dt
				}
			}
			if r == 0 || ns < bestNS {
				bestNS = ns
			}
			if r == 0 || tailNS < bestTailNS {
				bestTailNS = tailNS
			}
		}
		if warm {
			row.WarmNS, row.TailWarmNS = bestNS, bestTailNS
		} else {
			row.ColdNS, row.TailColdNS = bestNS, bestTailNS
		}
		return nil
	}

	for _, cfg := range campaign.AllConfigs {
		row := Row{Tool: cfg.String(), Scenarios: opts.Scenarios, TailScenarios: len(tail)}
		if err := pass(cfg, false, &row); err != nil {
			return nil, err
		}
		done++
		note(done, total)
		if err := pass(cfg, true, &row); err != nil {
			return nil, err
		}
		done++
		note(done, total)
		row.fillRates()
		c.Rows = append(c.Rows, row)
		c.Total.Scenarios += row.Scenarios
		c.Total.ColdNS += row.ColdNS
		c.Total.WarmNS += row.WarmNS
		c.Total.TailScenarios += row.TailScenarios
		c.Total.TailColdNS += row.TailColdNS
		c.Total.TailWarmNS += row.TailWarmNS
	}
	c.Total.Tool = "TOTAL"
	c.Total.fillRates()

	// The fleet leg: the same jobs/sec measurement the serving plane sees.
	// The warm batch finishes in milliseconds, so like the scenario passes
	// it repeats and keeps the best wall clock.
	c.FleetJobs, c.FleetWorkers = opts.FleetJobs, opts.Workers
	fleetPass := func(warm bool) (int64, error) {
		snapshot.SetEnabled(warm)
		defer campaign.SetMachinePooling(campaign.SetMachinePooling(warm))
		reps := 1
		if warm {
			// Prime one runner per worker (the store serves concurrent
			// workers from its per-key pool).
			var wg sync.WaitGroup
			for w := 0; w < opts.Workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					fleet.Execute(context.Background(), fleet.JobSpec{Seed: seed, Tool: "both"}, nil)
				}(opts.Seed + uint64(w))
			}
			wg.Wait()
			// The fleet batch is one wall-clock window, not a sum of
			// per-scenario slices, so it gets half the averaging the
			// scenario passes do per rep — double the rep count to keep
			// the minimum equally robust.
			reps = 2 * opts.WarmReps
		}
		runtime.GC() // same clean-heap start as the scenario passes
		var best int64
		for r := 0; r < reps; r++ {
			errs := make([]error, opts.FleetJobs)
			idx := make(chan int)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < opts.Workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						spec := fleet.JobSpec{Seed: opts.Seed + uint64(i), Tool: "both"}
						if _, err := fleet.Execute(context.Background(), spec, nil); err != nil {
							errs[i] = fmt.Errorf("campaign: fleet job seed %d: %w", spec.Seed, err)
						}
					}
				}()
			}
			for i := 0; i < opts.FleetJobs; i++ {
				idx <- i
			}
			close(idx)
			wg.Wait()
			wall := time.Since(start).Nanoseconds()
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			if r == 0 || wall < best {
				best = wall
			}
		}
		return best, nil
	}
	var err error
	if c.FleetColdNS, err = fleetPass(false); err != nil {
		return nil, err
	}
	done++
	note(done, total)
	if c.FleetWarmNS, err = fleetPass(true); err != nil {
		return nil, err
	}
	done++
	note(done, total)
	if c.FleetColdNS > 0 {
		c.FleetColdPerSec = float64(c.FleetJobs) * 1e9 / float64(c.FleetColdNS)
	}
	if c.FleetWarmNS > 0 {
		c.FleetWarmPerSec = float64(c.FleetJobs) * 1e9 / float64(c.FleetWarmNS)
	}
	if c.FleetColdPerSec > 0 {
		c.FleetSpeedup = c.FleetWarmPerSec / c.FleetColdPerSec
	}
	return c, nil
}

// Render formats the report as a table plus the fleet aggregate line.
func (c *Campaign) Render() string {
	tab := stats.NewTable(
		fmt.Sprintf("Campaign throughput (%d scenarios per tool, cold unpooled rebuild vs warm snapshot)", c.Scenarios),
		"Tool", "Cold /s", "Warm /s", "Speedup", "Tail cold /s", "Tail warm /s", "Tail speedup")
	rows := append(append([]Row{}, c.Rows...), c.Total)
	for _, r := range rows {
		tab.AddRow(r.Tool,
			fmt.Sprintf("%.1f", r.ColdPerSec),
			fmt.Sprintf("%.1f", r.WarmPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.TailColdPerSec),
			fmt.Sprintf("%.1f", r.TailWarmPerSec),
			fmt.Sprintf("%.2fx", r.TailSpeedup))
	}
	return tab.Render() + fmt.Sprintf(
		"\nFleet: %d jobs on %d workers — %.1f cold jobs/s, %.1f warm jobs/s (%.2fx)\n",
		c.FleetJobs, c.FleetWorkers, c.FleetColdPerSec, c.FleetWarmPerSec, c.FleetSpeedup)
}

// WriteJSON writes the report to path (the tracked BENCH_campaign.json
// baseline at the repo root, by default).
func (c *Campaign) WriteJSON(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads a previously written campaign baseline.
func Read(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c := &Campaign{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("campaign baseline %s: %w", path, err)
	}
	return c, nil
}

// CheckAgainst compares this run's warm scenarios/sec — the aggregate total,
// every per-tool row, and the short tail — against a baseline and returns an
// error if any regressed by more than its tolerance. The aggregates (total
// warm, total tail warm, fleet jobs/sec) use tolerance directly (0.25 = 25%
// slower fails); per-tool rows use double that, because each row sums a
// fifth of the aggregate's samples and single-digit-millisecond windows on
// a loaded host jitter past 25% without any code change — while the
// regression class this gate exists for (the snapshot restore path falling
// back to rebuild work) costs 10-100x and trips either threshold. Rows
// present only on one side are skipped, so adding a tool configuration does
// not fail the gate until the baseline is regenerated.
func (c *Campaign) CheckAgainst(base *Campaign, tolerance float64) error {
	check := func(name string, cur, ref, tol float64) error {
		if ref <= 0 {
			return nil
		}
		if cur < ref*(1-tol) {
			return fmt.Errorf("%s scenarios/sec regressed: %.1f vs baseline %.1f (-%.0f%%, tolerance %.0f%%)",
				name, cur, ref, (1-cur/ref)*100, tol*100)
		}
		return nil
	}
	if base.Total.WarmPerSec <= 0 {
		return fmt.Errorf("campaign baseline has no total warm rate")
	}
	if err := check("total warm", c.Total.WarmPerSec, base.Total.WarmPerSec, tolerance); err != nil {
		return err
	}
	if err := check("total tail warm", c.Total.TailWarmPerSec, base.Total.TailWarmPerSec, tolerance); err != nil {
		return err
	}
	baseRows := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Tool] = r
	}
	rowTol := 2 * tolerance
	for _, r := range c.Rows {
		b, ok := baseRows[r.Tool]
		if !ok {
			continue
		}
		if err := check(r.Tool+" warm", r.WarmPerSec, b.WarmPerSec, rowTol); err != nil {
			return err
		}
		if err := check(r.Tool+" tail warm", r.TailWarmPerSec, b.TailWarmPerSec, rowTol); err != nil {
			return err
		}
	}
	return check("fleet warm jobs", c.FleetWarmPerSec, base.FleetWarmPerSec, tolerance)
}
