package campbench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// gateFixture builds a healthy run/baseline pair the tolerance cases below
// perturb. Rates are round numbers so percentage drops are exact.
func gateFixture() *Campaign {
	row := func(tool string, warm, tailWarm float64) Row {
		return Row{Tool: tool, WarmPerSec: warm, TailWarmPerSec: tailWarm}
	}
	return &Campaign{
		Rows: []Row{
			row("none", 1000, 2000),
			row("both", 500, 800),
		},
		Total:           Row{Tool: "TOTAL", WarmPerSec: 750, TailWarmPerSec: 1400},
		FleetWarmPerSec: 300,
	}
}

func TestCheckAgainstPassesIdentical(t *testing.T) {
	if err := gateFixture().CheckAgainst(gateFixture(), 0.25); err != nil {
		t.Fatalf("identical run failed the gate: %v", err)
	}
}

func TestCheckAgainstRejectsEmptyBaseline(t *testing.T) {
	err := gateFixture().CheckAgainst(&Campaign{}, 0.25)
	if err == nil || !strings.Contains(err.Error(), "no total warm rate") {
		t.Fatalf("empty baseline: err = %v, want no-total-warm-rate", err)
	}
}

// TestCheckAgainstToleranceTiers pins the two-tier thresholds: aggregates
// (total, tail total, fleet) fail past tolerance, per-tool rows only past
// double tolerance — single rows jitter on a loaded host, aggregates don't.
func TestCheckAgainstToleranceTiers(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *Campaign)
		fail   bool
	}{
		{"total warm -30%", func(c *Campaign) { c.Total.WarmPerSec = 525 }, true},
		{"total warm -20%", func(c *Campaign) { c.Total.WarmPerSec = 600 }, false},
		{"total tail warm -30%", func(c *Campaign) { c.Total.TailWarmPerSec = 980 }, true},
		{"fleet warm -30%", func(c *Campaign) { c.FleetWarmPerSec = 210 }, true},
		{"fleet warm -20%", func(c *Campaign) { c.FleetWarmPerSec = 240 }, false},
		{"row warm -40%", func(c *Campaign) { c.Rows[0].WarmPerSec = 600 }, false},
		{"row warm -60%", func(c *Campaign) { c.Rows[0].WarmPerSec = 400 }, true},
		{"row tail warm -40%", func(c *Campaign) { c.Rows[1].TailWarmPerSec = 480 }, false},
		{"row tail warm -60%", func(c *Campaign) { c.Rows[1].TailWarmPerSec = 320 }, true},
	}
	for _, tc := range cases {
		cur := gateFixture()
		tc.mutate(cur)
		err := cur.CheckAgainst(gateFixture(), 0.25)
		if tc.fail && err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
		}
		if !tc.fail && err != nil {
			t.Errorf("%s: gate failed: %v", tc.name, err)
		}
	}
}

// TestCheckAgainstSkipsUnpairedRows pins that a tool configuration present
// on only one side doesn't fail the gate until the baseline is regenerated.
func TestCheckAgainstSkipsUnpairedRows(t *testing.T) {
	cur := gateFixture()
	cur.Rows = append(cur.Rows, Row{Tool: "experimental", WarmPerSec: 1})
	if err := cur.CheckAgainst(gateFixture(), 0.25); err != nil {
		t.Fatalf("new row failed the gate: %v", err)
	}
	base := gateFixture()
	base.Rows = append(base.Rows, Row{Tool: "retired", WarmPerSec: 1e9})
	if err := gateFixture().CheckAgainst(base, 0.25); err != nil {
		t.Fatalf("removed row failed the gate: %v", err)
	}
}

// TestCheckAgainstImprovementPasses pins that the gate is one-sided: faster
// runs never fail, so a perf win doesn't force a baseline refresh.
func TestCheckAgainstImprovementPasses(t *testing.T) {
	cur := gateFixture()
	cur.Total.WarmPerSec *= 10
	cur.Rows[0].WarmPerSec *= 10
	cur.FleetWarmPerSec *= 10
	if err := cur.CheckAgainst(gateFixture(), 0.25); err != nil {
		t.Fatalf("improved run failed the gate: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := gateFixture()
	c.Seed, c.Scenarios, c.FleetJobs = 42, 32, 16
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := c.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip diverged:\nwrote: %+v\nread:  %+v", c, got)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline read succeeded")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Error("malformed baseline read succeeded")
	}
}
