package bench

import (
	"testing"

	"safemem/internal/apps"
	"safemem/internal/stats"
)

// TestSeedRobustness verifies that the headline overhead numbers are a
// property of the workload, not of a lucky seed: across several seeds the
// SafeMem overhead of the fastest app stays tightly banded and the Purify
// slowdown stays in multiples.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed runs are slow")
	}
	var safememPct, purifyX []float64
	for seed := int64(1); seed <= 4; seed++ {
		cfg := apps.Config{Seed: seed}
		base, err := Run("gzip", ToolNone, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := Run("gzip", ToolSafeMemBoth, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := Run("gzip", ToolPurify, cfg)
		if err != nil {
			t.Fatal(err)
		}
		safememPct = append(safememPct, Overhead(base.Cycles, sm.Cycles)*100)
		purifyX = append(purifyX, float64(pf.Cycles)/float64(base.Cycles))
	}
	smSum := stats.Summarize(safememPct)
	pfSum := stats.Summarize(purifyX)
	t.Logf("gzip SafeMem overhead across seeds: mean %.2f%% (σ %.2f, range %.2f–%.2f)",
		smSum.Mean, smSum.Std, smSum.Min, smSum.Max)
	t.Logf("gzip Purify slowdown across seeds: mean %.1fX (σ %.2f)", pfSum.Mean, pfSum.Std)

	if smSum.Max > 8 || smSum.Min < 1 {
		t.Errorf("SafeMem overhead unstable across seeds: %+v", smSum)
	}
	if smSum.Std > smSum.Mean/2 {
		t.Errorf("SafeMem overhead variance too high: %+v", smSum)
	}
	if pfSum.Min < 20 {
		t.Errorf("Purify slowdown collapsed for some seed: %+v", pfSum)
	}
}

// TestDetectionRobustAcrossSeeds verifies every planted bug is found for
// several different workload seeds, not just the default.
func TestDetectionRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed runs are slow")
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				res, err := Run(app.Name, ToolSafeMemBoth, apps.Config{Seed: seed, Buggy: true})
				if err != nil {
					t.Fatal(err)
				}
				if !DetectedBug(app, res) {
					t.Errorf("seed %d: %v bug not detected (reports: %v)", seed, app.Class, res.SafeMem)
				}
			}
		})
	}
}
