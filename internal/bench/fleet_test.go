package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"safemem/internal/apps"
)

// TestFleetShape pins the fleet experiment's structure: one row per app,
// every row aggregating exactly shards runs, totals consistent with the
// rows, and a JSON round trip that loses nothing.
func TestFleetShape(t *testing.T) {
	f, err := RunFleet(apps.Config{Seed: 42}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := apps.All()
	if len(f.Rows) != len(all) {
		t.Fatalf("fleet has %d rows, want one per app (%d)", len(f.Rows), len(all))
	}
	var instrs uint64
	for i, r := range f.Rows {
		if r.App != all[i].Name {
			t.Errorf("row %d is %q, want %q (apps.All order)", i, r.App, all[i].Name)
		}
		if r.Runs != 2 {
			t.Errorf("%s ran %d times, want shards=2", r.App, r.Runs)
		}
		if r.SimInstrs == 0 || r.HostNS <= 0 || r.HostNSPerInstr <= 0 {
			t.Errorf("%s row not filled: %+v", r.App, r)
		}
		instrs += r.SimInstrs
	}
	if f.SimInstrs != instrs {
		t.Errorf("total SimInstrs %d != sum of rows %d", f.SimInstrs, instrs)
	}
	if f.WallNS <= 0 || f.SimMIPS <= 0 || f.SimMIPSPerCore <= 0 {
		t.Errorf("aggregates not filled: wall=%d mips=%.2f mips/core=%.2f",
			f.WallNS, f.SimMIPS, f.SimMIPSPerCore)
	}
	if f.Workers < 1 || f.Workers > f.Cores {
		t.Errorf("workers %d outside [1, cores=%d]", f.Workers, f.Cores)
	}

	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := f.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Errorf("JSON round trip diverges:\nwrote %+v\nread  %+v", f, got)
	}

	if !strings.Contains(f.Render(), "sim-MIPS/core") {
		t.Error("Render lost the per-core aggregate")
	}
}

// TestFleetDeterministicSimColumns pins that the simulated columns of the
// fleet report do not depend on concurrency: the same seed at different
// worker counts yields identical per-app instruction counts (only host
// timings may differ).
func TestFleetDeterministicSimColumns(t *testing.T) {
	a, err := RunFleet(apps.Config{Seed: 7}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(apps.Config{Seed: 7}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].SimInstrs != b.Rows[i].SimInstrs {
			t.Errorf("%s: sim instrs %d at 1 worker vs %d at 4 workers",
				a.Rows[i].App, a.Rows[i].SimInstrs, b.Rows[i].SimInstrs)
		}
	}
}

// TestThroughputPerAppGate pins the per-app rows of CheckAgainst: a single
// app regressing past tolerance must fail the gate even when the total
// stays quiet, rows missing from either side are skipped, and the passing
// direction stays green.
func TestThroughputPerAppGate(t *testing.T) {
	base := &Throughput{
		Rows: []ThroughputRow{
			{App: "gzip", HostNSPerInstr: 2.0},
			{App: "tar", HostNSPerInstr: 2.0},
			{App: "retired", HostNSPerInstr: 1.0},
		},
		Total: ThroughputRow{App: "TOTAL", HostNSPerInstr: 1.0},
	}
	cur := &Throughput{
		Rows: []ThroughputRow{
			{App: "gzip", HostNSPerInstr: 2.1},
			{App: "tar", HostNSPerInstr: 2.0},
			{App: "brand-new", HostNSPerInstr: 9.9},
		},
		Total: ThroughputRow{App: "TOTAL", HostNSPerInstr: 1.05},
	}
	if err := cur.CheckAgainst(base, 0.25); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	cur.Rows[0].HostNSPerInstr = 2.6 // gzip +30%, total untouched
	err := cur.CheckAgainst(base, 0.25)
	if err == nil {
		t.Fatal("per-app regression passed the gate")
	}
	if !strings.Contains(err.Error(), "gzip") {
		t.Fatalf("gate error does not name the regressed app: %v", err)
	}
	cur.Rows[0].HostNSPerInstr = 2.0
	cur.Total.HostNSPerInstr = 1.3 // total +30%
	if err := cur.CheckAgainst(base, 0.25); err == nil {
		t.Fatal("total regression passed the gate")
	}
}
