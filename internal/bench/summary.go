package bench

import (
	"fmt"

	"safemem/internal/apps"
	"safemem/internal/stats"
)

// SummaryRow compares one headline result against the paper.
type SummaryRow struct {
	Metric   string
	Paper    string
	Measured string
}

// RunSummary executes every experiment and condenses the headline
// paper-vs-measured comparison (the table in README.md).
func RunSummary(cfg apps.Config) ([]SummaryRow, error) {
	t2, err := RunTable2(256)
	if err != nil {
		return nil, err
	}
	t3, err := RunTable3(cfg)
	if err != nil {
		return nil, err
	}
	t4, err := RunTable4(cfg)
	if err != nil {
		return nil, err
	}
	t5, err := RunTable5(cfg)
	if err != nil {
		return nil, err
	}
	f3, err := RunFigure3(cfg)
	if err != nil {
		return nil, err
	}

	var mlmc, purify, reduction []float64
	detected := 0
	for _, r := range t3 {
		mlmc = append(mlmc, r.MLMCPct)
		purify = append(purify, r.PurifyFactor)
		reduction = append(reduction, r.ReductionX)
		if r.BugDetected {
			detected++
		}
	}
	var t4red []float64
	for _, r := range t4 {
		t4red = append(t4red, r.ReductionX)
	}
	fpBefore, fpAfter := 0, 0
	maxAfter := 0
	for _, r := range t5 {
		fpBefore += r.BeforePruning
		fpAfter += r.AfterPruning
		if r.AfterPruning > maxAfter {
			maxAfter = r.AfterPruning
		}
	}
	stable := 0
	for _, s := range f3 {
		last := s.Points[len(s.Points)-1]
		if last.Pct >= 99 {
			stable++
		}
	}

	sm := stats.Summarize(mlmc)
	pf := stats.Summarize(purify)
	red := stats.Summarize(reduction)
	t4r := stats.Summarize(t4red)

	return []SummaryRow{
		{"WatchMemory / DisableWatchMemory / mprotect",
			"2.0 / 1.5 / 1.02 µs",
			fmt.Sprintf("%.2f / %.2f / %.2f µs", t2.WatchMemoryUS, t2.DisableWatchMemoryUS, t2.MprotectUS)},
		{"planted bugs detected", "7 of 7", fmt.Sprintf("%d of %d", detected, len(t3))},
		{"SafeMem overhead (ML+MC)", "1.6%–14.4%",
			fmt.Sprintf("%.1f%%–%.1f%%", sm.Min, sm.Max)},
		{"Purify slowdown", "4.8X–120X",
			fmt.Sprintf("%.1fX–%.1fX", pf.Min, pf.Max)},
		{"overhead reduction by SafeMem", "2–3 orders of magnitude",
			fmt.Sprintf("%.0fX–%.0fX", red.Min, red.Max)},
		{"space waste: page-protection vs ECC", "64X–74X more",
			fmt.Sprintf("%.0fX–%.0fX more", t4r.Min, t4r.Max)},
		{"leak false positives, before → after pruning", "2–13 → 0–1",
			fmt.Sprintf("%d total → %d total (max %d per app)", fpBefore, fpAfter, maxAfter)},
		{"lifetime CDFs saturating by run end", "3 of 3", fmt.Sprintf("%d of %d", stable, len(f3))},
	}, nil
}

// RenderSummary formats the comparison.
func RenderSummary(rows []SummaryRow) string {
	tab := stats.NewTable("Summary: paper vs this reproduction", "Result", "Paper", "Measured")
	for _, r := range rows {
		tab.AddRow(r.Metric, r.Paper, r.Measured)
	}
	return tab.Render()
}
