package bench

import (
	"testing"

	"safemem/internal/apps"
)

// TestPanickedMachineNeverRepooled pins the bench-side crash-safety
// contract: a run whose simulated program panics out of Machine.Run into a
// recovering caller must drop its machine — sync.Pool.Put never sees a
// machine in an unknown mid-run state.
func TestPanickedMachineNeverRepooled(t *testing.T) {
	runHook = func() { panic("chaos: injected worker panic") }
	defer func() { runHook = nil }()

	r0, d0 := PoolStats()
	func() {
		defer func() {
			if v := recover(); v == nil {
				t.Fatal("injected panic did not propagate out of bench.Run")
			}
		}()
		Run("ypserv1", ToolNone, apps.Config{Seed: 1, Scale: 1})
	}()
	r1, d1 := PoolStats()
	if r1 != r0 {
		t.Fatalf("panicked run released %d machine(s) into the pool", r1-r0)
	}
	if d1-d0 != 1 {
		t.Fatalf("panicked run dropped %d machine(s), want exactly 1", d1-d0)
	}
}

// TestCleanRunRepooled is the counter-positive: a normal run recycles its
// machine exactly once.
func TestCleanRunRepooled(t *testing.T) {
	r0, d0 := PoolStats()
	res, err := Run("ypserv1", ToolNone, apps.Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("clean run terminated abnormally: %v", res.Err)
	}
	r1, d1 := PoolStats()
	if r1-r0 != 1 {
		t.Fatalf("clean run released %d machine(s), want 1", r1-r0)
	}
	if d1 != d0 {
		t.Fatalf("clean run dropped %d machine(s), want 0", d1-d0)
	}
}
