//go:build race

package bench

func init() { raceEnabled = true }
