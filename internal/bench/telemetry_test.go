package bench

import (
	"bytes"
	"strings"
	"testing"

	"safemem/internal/apps"
	"safemem/internal/telemetry"
)

// TestRunTelemetry is the acceptance check for the observability layer: a
// buggy squid1 run under full SafeMem must produce a trace with spans from
// several distinct components and a metrics dump containing the
// detection-latency histogram.
func TestRunTelemetry(t *testing.T) {
	session := telemetry.NewSession(telemetry.Config{
		TraceEnabled:   true,
		SampleInterval: 2_400_000, // 1 simulated ms
	})
	Telemetry = session
	defer func() { Telemetry = nil }()

	res, err := Run("squid1", ToolSafeMemBoth, apps.Config{Seed: 42, Scale: 1, Buggy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Registry == nil {
		t.Fatal("no registry on result")
	}
	if got := res.Registry.Run(); got != "squid1/safemem" {
		t.Fatalf("run label = %q", got)
	}

	comps := map[string]bool{}
	for _, ev := range res.Registry.Tracer().Events() {
		if ev.Phase == telemetry.PhaseBegin && ev.Component != "" {
			comps[ev.Component] = true
		}
	}
	if len(comps) < 4 {
		t.Fatalf("trace spans from %d components (%v), want >= 4", len(comps), comps)
	}

	var lat *telemetry.Histogram
	for _, h := range res.Registry.Histograms() {
		if h.Count() > 0 {
			lat = h
		}
	}
	if lat == nil {
		t.Fatal("no histogram observations recorded")
	}

	var buf bytes.Buffer
	if err := session.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{
		"safemem_safemem_detection_latency_cycles_bucket",
		"safemem_cache_hits",
		"safemem_memctrl_corrected_single",
		`run="squid1/safemem"`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}

	if len(res.Registry.Samples()) == 0 {
		t.Error("sampler recorded no snapshots")
	}

	var trace bytes.Buffer
	if err := session.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 {
		t.Fatal("empty Chrome trace")
	}
}

// TestRunWithoutTelemetry checks runs stay quiet (no sampling, no tracing)
// when no session is installed, while stats still flow into the result.
func TestRunWithoutTelemetry(t *testing.T) {
	res, err := Run("gzip", ToolSafeMemBoth, apps.Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Registry == nil {
		t.Fatal("no registry on result")
	}
	if n := len(res.Registry.Tracer().Events()); n != 0 {
		t.Fatalf("quiet registry recorded %d trace events", n)
	}
	if len(res.Registry.Samples()) != 0 {
		t.Fatal("quiet registry sampled")
	}
	if res.Cache.Hits+res.Cache.Misses == 0 {
		t.Fatal("cache stats not captured")
	}
	if res.Ctrl.LineReads == 0 {
		t.Fatal("controller stats not captured")
	}
}
