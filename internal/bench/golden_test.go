package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"safemem/internal/apps"
)

var update = flag.Bool("update", false, "rewrite the golden files from this run's output")

// raceEnabled is set by race_test.go when the race detector is on. The
// golden runs are byte-comparison regression pins over workloads the other
// bench tests already exercise under race; repeating them there only
// pushes the package past the test timeout.
var raceEnabled = false

// TestGoldenOutputs pins the rendered text of the paper's tables and
// Figure 3 for the canonical seed. The simulation is deterministic, so any
// diff here is a real behaviour change in the detection stack, the
// workloads or the renderers — inspect it, then refresh the files with
//
//	go test ./internal/bench -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full table workloads")
	}
	if raceEnabled {
		t.Skip("byte-identical output comparison; raced elsewhere")
	}
	cfg := apps.Config{Seed: 42}

	cases := []struct {
		name   string
		render func() (string, error)
	}{
		{"table3", func() (string, error) {
			rows, err := RunTable3(cfg)
			if err != nil {
				return "", err
			}
			return RenderTable3(rows), nil
		}},
		{"table4", func() (string, error) {
			rows, err := RunTable4(cfg)
			if err != nil {
				return "", err
			}
			return RenderTable4(rows), nil
		}},
		{"table5", func() (string, error) {
			rows, err := RunTable5(cfg)
			if err != nil {
				return "", err
			}
			return RenderTable5(rows), nil
		}},
		{"sample", func() (string, error) {
			rows, err := RunSampleTable(cfg)
			if err != nil {
				return "", err
			}
			return RenderSampleTable(rows), nil
		}},
		{"figure3", func() (string, error) {
			series, err := RunFigure3(cfg)
			if err != nil {
				return "", err
			}
			return RenderFigure3(series), nil
		}},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := tc.render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file %s\n--- got\n%s\n--- want\n%s",
					tc.name, path, got, want)
			}
		})
	}
}
