package bench

import (
	"fmt"

	"safemem/internal/apps"
	"safemem/internal/cache"
	"safemem/internal/kernel"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/stats"
	"safemem/internal/vm"
)

// Table2 reproduces the syscall microbenchmarks (Table 2): the cost of the
// ECC monitoring calls next to standard mprotect. Costs are measured
// through the full kernel paths, averaged over iterations.
type Table2 struct {
	WatchMemoryUS        float64
	DisableWatchMemoryUS float64
	MprotectUS           float64
}

// RunTable2 measures the three calls on a fresh machine.
func RunTable2(iterations int) (*Table2, error) {
	if iterations <= 0 {
		iterations = 256
	}
	clock := &simtime.Clock{}
	mem, err := physmem.New(64 << 20)
	if err != nil {
		return nil, err
	}
	ctrl := memctrl.New(mem, clock)
	ch, err := cache.New(ctrl, clock, cache.DefaultConfig)
	if err != nil {
		return nil, err
	}
	as := vm.New(mem, clock)
	k := kernel.New(clock, ctrl, ch, as)

	const base = vm.VAddr(0x100000)
	pages := iterations/(vm.PageBytes/physmem.LineBytes) + 2
	if err := k.MapPages(base, pages); err != nil {
		return nil, err
	}

	t2 := &Table2{}
	// WatchMemory / DisableWatchMemory over distinct lines.
	var watchTotal, disableTotal simtime.Cycles
	for i := 0; i < iterations; i++ {
		line := base + vm.VAddr(i*physmem.LineBytes)
		start := clock.Now()
		if _, err := k.WatchMemory(line, physmem.LineBytes); err != nil {
			return nil, err
		}
		watchTotal += clock.Now() - start
		start = clock.Now()
		if err := k.DisableWatchMemory(line, physmem.LineBytes); err != nil {
			return nil, err
		}
		disableTotal += clock.Now() - start
	}
	var protTotal simtime.Cycles
	for i := 0; i < iterations; i++ {
		prot := vm.ProtNone
		if i%2 == 1 {
			prot = vm.ProtRW
		}
		start := clock.Now()
		if err := k.Mprotect(base, 1, prot); err != nil {
			return nil, err
		}
		protTotal += clock.Now() - start
	}
	t2.WatchMemoryUS = (watchTotal / simtime.Cycles(iterations)).Microseconds()
	t2.DisableWatchMemoryUS = (disableTotal / simtime.Cycles(iterations)).Microseconds()
	t2.MprotectUS = (protTotal / simtime.Cycles(iterations)).Microseconds()
	return t2, nil
}

// Render formats Table 2 like the paper.
func (t *Table2) Render() string {
	tab := stats.NewTable("Table 2: Time for the ECC system calls", "Calls", "Time(microseconds)")
	tab.AddRow("ECC Protection  WatchMemory", fmt.Sprintf("%.2f", t.WatchMemoryUS))
	tab.AddRow("ECC Protection  DisableWatchMemory", fmt.Sprintf("%.2f", t.DisableWatchMemoryUS))
	tab.AddRow("Page Protection mprotect", fmt.Sprintf("%.2f", t.MprotectUS))
	return tab.Render()
}

// Table3Row is one application's row of Table 3.
type Table3Row struct {
	App          string
	BugDetected  bool
	OnlyMLPct    float64
	OnlyMCPct    float64
	MLMCPct      float64
	PurifyFactor float64
	ReductionX   float64
}

// RunTable3 reproduces the detection + time-overhead comparison (Table 3):
// every app runs under no tool, SafeMem (ML only / MC only / ML+MC) and
// Purify on identical normal inputs; detection is verified on buggy inputs
// with the full configuration. The app×tool cells are independent — each
// owns a fresh machine — and run on runCells workers; rows are assembled in
// app order afterwards, so the output is byte-identical at any Parallel
// value.
func RunTable3(cfg apps.Config) ([]Table3Row, error) {
	all := apps.All()
	normal := cfg
	normal.Buggy = false
	buggy := cfg
	buggy.Buggy = true
	cells := []struct {
		tool Tool
		cfg  apps.Config
	}{
		{ToolNone, normal},
		{ToolSafeMemML, normal},
		{ToolSafeMemMC, normal},
		{ToolSafeMemBoth, normal},
		{ToolPurify, normal},
		{ToolSafeMemBoth, buggy},
	}
	results := make([]*Result, len(all)*len(cells))
	if err := runCells("table3", len(results), func(i int) error {
		sp := cells[i%len(cells)]
		res, err := Run(all[i/len(cells)].Name, sp.tool, sp.cfg)
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	var rows []Table3Row
	for ai, app := range all {
		row6 := results[ai*len(cells) : (ai+1)*len(cells)]
		base, ml, mc, both, pf, det := row6[0], row6[1], row6[2], row6[3], row6[4], row6[5]
		if base.Err != nil {
			return nil, fmt.Errorf("table3: %s base run: %w", app.Name, base.Err)
		}

		mlmc := Overhead(base.Cycles, both.Cycles)
		purify := float64(pf.Cycles) / float64(base.Cycles)
		row := Table3Row{
			App:          app.Name,
			BugDetected:  DetectedBug(app, det),
			OnlyMLPct:    Overhead(base.Cycles, ml.Cycles) * 100,
			OnlyMCPct:    Overhead(base.Cycles, mc.Cycles) * 100,
			MLMCPct:      mlmc * 100,
			PurifyFactor: purify,
		}
		if mlmc > 0 {
			row.ReductionX = (purify - 1) / mlmc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats the rows like the paper.
func RenderTable3(rows []Table3Row) string {
	tab := stats.NewTable(
		"Table 3: Time overhead (%) comparison between SafeMem and Purify",
		"Application", "Bug Detected?", "Only ML", "Only MC", "ML + MC", "Purify Overhead", "Reduction by SafeMem")
	for _, r := range rows {
		det := "NO"
		if r.BugDetected {
			det = "YES"
		}
		tab.AddRow(r.App, det,
			fmt.Sprintf("%.1f%%", r.OnlyMLPct),
			fmt.Sprintf("%.1f%%", r.OnlyMCPct),
			fmt.Sprintf("%.1f%%", r.MLMCPct),
			fmt.Sprintf("%.1fX", r.PurifyFactor),
			fmt.Sprintf("%.0fX", r.ReductionX))
	}
	return tab.Render()
}

// Table4Row is one application's row of Table 4 (space overhead of ECC
// protection vs page protection, computed over the cumulative memory usage
// of the whole execution).
type Table4Row struct {
	App        string
	ECCPct     float64
	PagePct    float64
	ReductionX float64
}

// RunTable4 measures padding+alignment waste under the two protection
// granularities on identical allocation traces. Cells run on runCells
// workers; output is identical at any Parallel value.
func RunTable4(cfg apps.Config) ([]Table4Row, error) {
	all := apps.All()
	tools := []Tool{ToolSafeMemBoth, ToolPageProt}
	results := make([]*Result, len(all)*len(tools))
	if err := runCells("table4", len(results), func(i int) error {
		res, err := Run(all[i/len(tools)].Name, tools[i%len(tools)], cfg)
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	var rows []Table4Row
	for ai, app := range all {
		ecc, page := results[ai*len(tools)], results[ai*len(tools)+1]
		if ecc.Err != nil {
			return nil, fmt.Errorf("table4: %s ECC run: %w", app.Name, ecc.Err)
		}
		if page.Err != nil {
			return nil, fmt.Errorf("table4: %s page run: %w", app.Name, page.Err)
		}
		eccPct := 100 * float64(ecc.Heap.TotalWaste) / float64(ecc.Heap.TotalUser)
		pagePct := 100 * float64(page.Heap.TotalWaste) / float64(page.Heap.TotalUser)
		rows = append(rows, Table4Row{
			App:        app.Name,
			ECCPct:     eccPct,
			PagePct:    pagePct,
			ReductionX: pagePct / eccPct,
		})
	}
	return rows, nil
}

// RenderTable4 formats the rows like the paper.
func RenderTable4(rows []Table4Row) string {
	tab := stats.NewTable(
		"Table 4: Space overhead (%) of ECC-protection vs page-protection",
		"Application", "ECC-Protection", "Page-Protection", "Reduction by ECC")
	for _, r := range rows {
		tab.AddRow(r.App,
			fmt.Sprintf("%.2f%%", r.ECCPct),
			fmt.Sprintf("%.1f%%", r.PagePct),
			fmt.Sprintf("%.0fX", r.ReductionX))
	}
	return tab.Render()
}

// Table5Row is one leak application's row of Table 5 (false positives
// before and after ECC pruning).
type Table5Row struct {
	App           string
	BeforePruning int
	AfterPruning  int
}

// RunTable5 counts false leak reports with pruning disabled (suspects are
// reported immediately) and enabled, on buggy inputs. Cells run on runCells
// workers; output is identical at any Parallel value.
func RunTable5(cfg apps.Config) ([]Table5Row, error) {
	buggy := cfg
	buggy.Buggy = true
	leakApps := apps.LeakApps()
	results := make([]*Result, 2*len(leakApps))
	if err := runCells("table5", len(results), func(i int) error {
		app := leakApps[i/2]
		var res *Result
		var err error
		if i%2 == 0 {
			noPrune := SafeMemOptions(true, true)
			noPrune.PruneWithECC = false
			res, err = RunWithOptions(app.Name, noPrune, buggy)
		} else {
			res, err = Run(app.Name, ToolSafeMemBoth, buggy)
		}
		results[i] = res
		return err
	}); err != nil {
		return nil, err
	}

	var rows []Table5Row
	for ai, app := range leakApps {
		_, fpBefore := ClassifyLeaks(app, results[2*ai].SafeMem)
		_, fpAfter := ClassifyLeaks(app, results[2*ai+1].SafeMem)
		rows = append(rows, Table5Row{App: app.Name, BeforePruning: fpBefore, AfterPruning: fpAfter})
	}
	return rows, nil
}

// RenderTable5 formats the rows like the paper.
func RenderTable5(rows []Table5Row) string {
	tab := stats.NewTable(
		"Table 5: False memory leaks reported before and after ECC-protection pruning",
		"Application", "Before Pruning", "After Pruning")
	for _, r := range rows {
		tab.AddRow(r.App, fmt.Sprintf("%d", r.BeforePruning), fmt.Sprintf("%d", r.AfterPruning))
	}
	return tab.Render()
}
