package bench

import (
	"fmt"
	"strings"
	"testing"

	"safemem/internal/apps"
)

func TestTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	t2, err := RunTable2(64)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(t2.Render())
	rows5, err := RunTable5(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(RenderTable5(rows5))
	rows4, err := RunTable4(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(RenderTable4(rows4))
	f3, err := RunFigure3(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(RenderFigure3(f3))
}

func TestRenderSummaryFormatting(t *testing.T) {
	rows := []SummaryRow{
		{"metric-a", "1.0", "1.1"},
		{"metric-b", "2–3 orders", "37X–571X"},
	}
	out := RenderSummary(rows)
	for _, want := range []string{"metric-a", "37X–571X", "Paper", "Measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary render missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("summary runs every experiment")
	}
	rows, err := RunSummary(apps.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured == "" || r.Paper == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
	// The detection row must show a full score.
	if rows[1].Measured != "7 of 7" {
		t.Errorf("detection row = %q", rows[1].Measured)
	}
}
