package bench

import (
	"reflect"
	"testing"

	"safemem/internal/apps"
	"safemem/internal/machine"
	"safemem/internal/snapshot"
	"safemem/internal/telemetry"
)

// benchSnapDelta runs f and returns how the bench snapshot store's counters
// moved.
func benchSnapDelta(t *testing.T, f func()) snapshot.Stats {
	t.Helper()
	b := SnapshotStats()
	f()
	a := SnapshotStats()
	return snapshot.Stats{
		Hits:     a.Hits - b.Hits,
		Misses:   a.Misses - b.Misses,
		Drops:    a.Drops - b.Drops,
		Releases: a.Releases - b.Releases,
	}
}

func withBenchSnapshots(t *testing.T, f func()) {
	t.Helper()
	snapshot.SetEnabled(true)
	defer func() {
		snapshot.SetEnabled(false)
		FlushSnapshots()
	}()
	f()
}

// comparable strips the host-side fields — wall-clock and the telemetry
// registry pointer — that legitimately differ between two executions of the
// same run.
func comparable(res *Result) Result {
	c := *res
	c.HostNS = 0
	c.Registry = nil
	return c
}

// TestSnapshotBenchEquivalence pins the bench snapshot fast path
// byte-for-byte against the rebuild path: every snapshot-capable tool, on
// clean and buggy workloads, over two seeds so the second snapshot run
// executes on a restored — not freshly built — runner.
func TestSnapshotBenchEquivalence(t *testing.T) {
	tools := []Tool{ToolNone, ToolSafeMemML, ToolSafeMemMC, ToolSafeMemBoth, ToolSample}
	cfgs := []apps.Config{
		{Seed: 42, Scale: 1},
		{Seed: 43, Scale: 1, Buggy: true},
	}
	for _, tool := range tools {
		if !snapshotTool(tool) {
			t.Fatalf("%v missing from snapshotTool", tool)
		}
		for _, cfg := range cfgs {
			want, err := Run("ypserv1", tool, cfg)
			if err != nil {
				t.Fatalf("%v/%+v rebuild: %v", tool, cfg, err)
			}
			withBenchSnapshots(t, func() {
				for i := 0; i < 2; i++ {
					got, err := Run("ypserv1", tool, cfg)
					if err != nil {
						t.Fatalf("%v/%+v snapshot run %d: %v", tool, cfg, i, err)
					}
					if !reflect.DeepEqual(comparable(got), comparable(want)) {
						t.Fatalf("%v/%+v snapshot run %d diverges:\nrebuild:  %+v\nsnapshot: %+v",
							tool, cfg, i, comparable(want), comparable(got))
					}
				}
			})
		}
	}
}

// TestSnapshotToolFallback pins that tools without checkpoint support
// (purify, pageprot, mmp) still run — on the rebuild path — with the
// snapshot layer enabled, producing rebuild-identical results and never
// touching the snapshot store.
func TestSnapshotToolFallback(t *testing.T) {
	for _, tool := range []Tool{ToolPurify, ToolPageProt, ToolMMP} {
		if snapshotTool(tool) {
			t.Fatalf("%v unexpectedly snapshot-capable", tool)
		}
		cfg := apps.Config{Seed: 42, Buggy: true}
		want, err := Run("gzip", tool, cfg)
		if err != nil {
			t.Fatalf("%v rebuild: %v", tool, err)
		}
		withBenchSnapshots(t, func() {
			d := benchSnapDelta(t, func() {
				got, err := Run("gzip", tool, cfg)
				if err != nil {
					t.Fatalf("%v with snapshots enabled: %v", tool, err)
				}
				if !reflect.DeepEqual(comparable(got), comparable(want)) {
					t.Fatalf("%v diverges with snapshots enabled", tool)
				}
			})
			if d != (snapshot.Stats{}) {
				t.Fatalf("%v touched the snapshot store: %+v", tool, d)
			}
		})
	}
}

// TestSnapshotBenchPanicDropsRunner pins the taint rule for bench runs: a
// panic unwinding out of Run drops the pooled runner and never releases it.
func TestSnapshotBenchPanicDropsRunner(t *testing.T) {
	withBenchSnapshots(t, func() {
		cfg := apps.Config{Seed: 1, Scale: 1}
		if _, err := Run("ypserv1", ToolSafeMemBoth, cfg); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
		runHook = func() { panic("chaos: simulated crash mid-run") }
		defer func() { runHook = nil }()
		d := benchSnapDelta(t, func() {
			defer func() {
				if recover() == nil {
					t.Fatal("hooked panic did not propagate")
				}
			}()
			Run("ypserv1", ToolSafeMemBoth, cfg)
		})
		if d.Drops != 1 || d.Releases != 0 {
			t.Fatalf("panicked run: store delta %+v, want exactly 1 drop and 0 releases", d)
		}
	})
}

// TestSnapshotBenchTelemetryBypass pins that runs carrying a per-run
// telemetry registry — part of the run's output, so not poolable — never
// enter the snapshot path, even with the layer enabled, while plain runs
// do.
func TestSnapshotBenchTelemetryBypass(t *testing.T) {
	withBenchSnapshots(t, func() {
		d := benchSnapDelta(t, func() {
			res, err := Run("gzip", ToolNone, apps.Config{Seed: 1})
			if err != nil || res.Err != nil {
				t.Fatalf("plain run: %v / %v", err, res.Err)
			}
		})
		if d.Misses != 1 {
			t.Fatalf("plain run skipped the snapshot path: %+v", d)
		}
		mcfg := machine.DefaultConfig()
		mcfg.Telemetry = telemetry.NewRegistry("bypass", telemetry.Config{})
		d = benchSnapDelta(t, func() {
			res, err := RunWithMachine("gzip", ToolNone, apps.Config{Seed: 1}, mcfg)
			if err != nil || res.Err != nil {
				t.Fatalf("telemetry run: %v / %v", err, res.Err)
			}
		})
		if d != (snapshot.Stats{}) {
			t.Fatalf("telemetry run touched the snapshot store: %+v", d)
		}
	})
}
