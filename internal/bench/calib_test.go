package bench

import (
	"fmt"
	"testing"

	"safemem/internal/apps"
)

// TestCalibration prints the Table 3 shape for every app. Run with
// `go test ./internal/bench -run TestCalibration -v -calib` style; it is a
// dev aid kept as an always-on smoke test at scale 1.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	for _, app := range apps.All() {
		cfg := apps.Config{Seed: 42}
		base, err := Run(app.Name, ToolNone, cfg)
		if err != nil {
			t.Fatalf("%s base: %v", app.Name, err)
		}
		if base.Err != nil {
			t.Fatalf("%s base run failed: %v", app.Name, base.Err)
		}
		ml, err := Run(app.Name, ToolSafeMemML, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := Run(app.Name, ToolSafeMemMC, cfg)
		if err != nil {
			t.Fatal(err)
		}
		both, err := Run(app.Name, ToolSafeMemBoth, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := Run(app.Name, ToolPurify, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []*Result{ml, mc, both, pf} {
			if r.Err != nil {
				t.Errorf("%s %v run failed: %v", app.Name, r.Tool, r.Err)
			}
		}
		fmt.Printf("%-8s base=%-12s ML=%6.1f%% MC=%6.1f%% ML+MC=%6.1f%% purify=%6.1fX  accesses=%d allocs=%d fp(norm)=%d\n",
			app.Name, base.Cycles,
			Overhead(base.Cycles, ml.Cycles)*100,
			Overhead(base.Cycles, mc.Cycles)*100,
			Overhead(base.Cycles, both.Cycles)*100,
			float64(pf.Cycles)/float64(base.Cycles),
			base.Machine.Loads+base.Machine.Stores,
			base.Heap.Mallocs,
			func() int { _, fp := ClassifyLeaks(app, both.SafeMem); return fp }(),
		)
	}
}

// TestDetection verifies every planted bug is found with buggy inputs.
func TestDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("detection run is slow")
	}
	for _, app := range apps.All() {
		res, err := Run(app.Name, ToolSafeMemBoth, apps.Config{Seed: 42, Buggy: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Errorf("%s buggy run failed: %v", app.Name, res.Err)
		}
		if !DetectedBug(app, res) {
			t.Errorf("%s: planted %v bug NOT detected; reports: %v", app.Name, app.Class, res.SafeMem)
		} else {
			tp, fp := ClassifyLeaks(app, res.SafeMem)
			fmt.Printf("%-8s detected %v (reports=%d tp=%d fp=%d)\n", app.Name, app.Class, len(res.SafeMem), tp, fp)
			for _, r := range res.SafeMem {
				if r.Kind.IsLeak() && (app.IsRealLeak == nil || !app.IsRealLeak(r.Site, r.BufferSize)) {
					fmt.Printf("    FP: %s\n", r)
				}
			}
		}
	}
}
