package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"safemem/internal/apps"
	"safemem/internal/bench"
	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// withTLB runs f with the software TLB globally forced on or off, restoring
// the default afterwards. Campaign and bench tests never run in parallel
// within this package, so flipping the package variable is race-free.
func withTLB(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := vm.TLBDefault
	vm.TLBDefault = on
	defer func() { vm.TLBDefault = prev }()
	f()
}

// benchDigest is every simulated observable of a bench run; the host-side
// Registry pointer and explain strings are deliberately excluded.
type benchDigest struct {
	cycles  simtime.Cycles
	instrs  uint64
	mstats  machine.Stats
	heap    heap.Stats
	reports []safemem.BugReport
	sm      safemem.Stats
}

func digestBench(t *testing.T, app string, tool bench.Tool) benchDigest {
	t.Helper()
	res, err := bench.Run(app, tool, apps.Config{Seed: 42})
	if err != nil {
		t.Fatalf("%s/%v: %v", app, tool, err)
	}
	if res.Err != nil {
		t.Fatalf("%s/%v run failed: %v", app, tool, res.Err)
	}
	return benchDigest{
		cycles: res.Cycles, instrs: res.Instrs, mstats: res.Machine,
		heap: res.Heap, reports: res.SafeMem, sm: res.SafeMemStats,
	}
}

// TestTLBEquivalence pins that the software TLB is a pure host-side
// optimisation: every paper app and a whole campaign (including the flaky-
// DIMM environment, whose swap, retirement and migration paths exercise all
// the invalidation sites) produce bit-identical simulated results with the
// TLB on and off. The unit-level version is TestTLBTransparent in
// internal/vm.
func TestTLBEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("TLB equivalence sweep is slow")
	}

	for _, app := range apps.All() {
		for _, tool := range []bench.Tool{bench.ToolNone, bench.ToolSafeMemBoth} {
			var on, off benchDigest
			withTLB(t, true, func() { on = digestBench(t, app.Name, tool) })
			withTLB(t, false, func() { off = digestBench(t, app.Name, tool) })
			if !reflect.DeepEqual(on, off) {
				t.Errorf("%s/%v diverges with TLB:\non:  %+v\noff: %+v", app.Name, tool, on, off)
			}
		}
	}

	for _, cfg := range []Config{
		{Seeds: 8, BaseSeed: 42, Shards: 2},
		{Seeds: 4, BaseSeed: 411, Shards: 2, FaultRate: 40, Storm: true, Retire: true},
	} {
		var on, off []byte
		withTLB(t, true, func() { on = campaignJSON(t, cfg) })
		withTLB(t, false, func() { off = campaignJSON(t, cfg) })
		if !bytes.Equal(on, off) {
			t.Errorf("campaign %+v diverges with TLB:\n--- on\n%s\n--- off\n%s", cfg, on, off)
		}
	}
}

func campaignJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// withPool runs f with machine pooling forced on or off.
func withPool(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := poolMachines
	poolMachines = on
	defer func() { poolMachines = prev }()
	f()
}

// TestRecycleEquivalence pins the pooling determinism contract: a campaign
// summary is byte-identical whether every scenario runs on a fresh machine
// or on recycled ones, at any shard count. The flaky-DIMM configuration
// matters most — it leaves the dirtiest machines behind (retired pages,
// migrated watches, scrub daemon timers, controller capabilities).
func TestRecycleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("recycle equivalence sweep is slow")
	}

	for _, cfg := range []Config{
		{Seeds: 8, BaseSeed: 42, Shards: 1},
		{Seeds: 6, BaseSeed: 411, Shards: 1, FaultRate: 40, Storm: true, Retire: true},
		// The sampling tool leaves its own kind of dirt behind — a sampled
		// pool and its scrambled watch lines — so it gets its own row.
		{Seeds: 6, BaseSeed: 77, Shards: 1, Tools: []ToolConfig{CfgSample, CfgBoth}, SampleRate: 8},
	} {
		var fresh, pooled1, pooled3 []byte
		withPool(t, false, func() { fresh = campaignJSON(t, cfg) })
		withPool(t, true, func() { pooled1 = campaignJSON(t, cfg) })
		cfg3 := cfg
		cfg3.Shards = 3
		withPool(t, true, func() { pooled3 = campaignJSON(t, cfg3) })

		if !bytes.Equal(fresh, pooled1) {
			t.Errorf("pooled summary diverges from fresh (cfg %+v):\n--- fresh\n%s\n--- pooled\n%s", cfg, fresh, pooled1)
		}
		if !bytes.Equal(fresh, pooled3) {
			t.Errorf("pooled 3-shard summary diverges from fresh (cfg %+v):\n--- fresh\n%s\n--- pooled shards=3\n%s", cfg, fresh, pooled3)
		}
	}
}

// withBatch runs f with the batched access fast lane globally forced on or
// off, restoring the default afterwards (same discipline as withTLB).
func withBatch(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := machine.BatchDefault
	machine.BatchDefault = on
	defer func() { machine.BatchDefault = prev }()
	f()
}

// TestBatchLaneEquivalence pins that the batched access fast lane is a pure
// host-side optimisation at system level: every paper app — under no tool,
// the full SafeMem detector and the sampling detector (so watched and
// guarded lines land mid-batch and must produce identical bug reports,
// detection latencies and stats) — and whole campaigns at shard counts 1
// and 3, including the flaky-DIMM environment, produce bit-identical
// simulated results with the lane on and off. The unit-level version is
// TestBatchEquivalence in internal/machine.
func TestBatchLaneEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("batch equivalence sweep is slow")
	}

	for _, app := range apps.All() {
		for _, tool := range []bench.Tool{bench.ToolNone, bench.ToolSafeMemBoth, bench.ToolSample} {
			var on, off benchDigest
			withBatch(t, true, func() { on = digestBench(t, app.Name, tool) })
			withBatch(t, false, func() { off = digestBench(t, app.Name, tool) })
			if !reflect.DeepEqual(on, off) {
				t.Errorf("%s/%v diverges with the batch lane:\non:  %+v\noff: %+v", app.Name, tool, on, off)
			}
		}
	}

	for _, cfg := range []Config{
		{Seeds: 8, BaseSeed: 42, Shards: 1},
		{Seeds: 8, BaseSeed: 42, Shards: 3},
		{Seeds: 4, BaseSeed: 411, Shards: 3, FaultRate: 40, Storm: true, Retire: true},
	} {
		var on, off []byte
		withBatch(t, true, func() { on = campaignJSON(t, cfg) })
		withBatch(t, false, func() { off = campaignJSON(t, cfg) })
		if !bytes.Equal(on, off) {
			t.Errorf("campaign %+v diverges with the batch lane:\n--- on\n%s\n--- off\n%s", cfg, on, off)
		}
	}
}
