package campaign

import "safemem/internal/physmem"

// The generator's scenarios are template-instantiated, not free op soup:
// each bug and near-miss template is a strand of atomic blocks whose
// internal timing guarantees the detector's trigger (or non-trigger)
// condition by construction, which is what makes the oracle's expectations
// machine-checkable. Blocks from different strands interleave in random
// order (strand-internal order preserved); ops inside a block never
// interleave, so timing-sensitive sequences — free→use, flag→touch,
// plant→access — cannot be broken up by another strand's allocations.
//
// All times below are in cycles and sized against Tuning() — e.g. the
// 360_000-cycle aging advances exceed SLeakLifetimeFactor × the 150_000
// established lifetime, and the 310_000 closer advances exceed
// LeakConfirmTime — so every planted leak is flagged by the template's own
// trigger block and confirmed by the closers or the shutdown pass.

// Generation timing constants. Tuning() must agree with these; the
// generator test asserts the invariants between them.
const (
	genWarmup      = 210_000 // prologue advance; > Options.WarmupTime
	genChurnLife   = 150_000 // established stable lifetime for SLeak groups
	genAgeAdvance  = 360_000 // > SLeakLifetimeFactor*genChurnLife, > CheckingPeriod
	genCloseOut    = 310_000 // closer advance; > LeakConfirmTime
	genRecentGap   = 110_000 // > CheckingPeriod, < ALeakRecentWindow
	genALeakAllocs = 18      // phase-body allocations; +4 in the trigger block
)

// rng is a splitmix64 stream: tiny, seedable, and stable across Go
// releases — math/rand's algorithm is not part of its compatibility
// promise, and campaign seeds must mean the same scenario forever.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// between returns a value in [lo, hi].
func (r *rng) between(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// subSeed derives the scenario seed for index i of a campaign, independent
// of sharding.
func subSeed(base uint64, i int) uint64 {
	r := rng{state: base ^ (uint64(i) * 0x9e3779b97f4a7c15)}
	return r.next()
}

// SubSeed is the exported sub-seed derivation, so external sweeps (the
// bench frontier experiment) enumerate exactly the scenarios a campaign
// with the same base seed would run.
func SubSeed(base uint64, i int) uint64 { return subSeed(base, i) }

// block is an atomic run of ops; strand blocks interleave, block ops do not.
type block []Op

// genState threads slot/site/strand counters through template builders.
type genState struct {
	r      *rng
	s      *Scenario
	slot   int
	site   uint64
	strand int
}

func (g *genState) newSlot() int { g.slot++; return g.slot - 1 }

// newSite returns a fresh call-site address. Site uniqueness is what lets
// the oracle match reports to plan entries; the interpreter brackets each
// allocation with Call(site)/Return() on an otherwise empty stack, so the
// callstack signature of a depth-1 stack is the site value itself.
func (g *genState) newSite() uint64 { g.site += 64; return g.site }

// Generate builds the scenario for one seed: a benign-churn strand, one to
// three bug strands, one to three near-miss strands, a warmup prologue and
// two confirmation closers.
func Generate(seed uint64) *Scenario {
	r := &rng{state: seed}
	g := &genState{r: r, s: &Scenario{Seed: seed}, site: 0x4000}

	bugTemplates := []func(*genState) []block{genALeak, genSLeak, genOverflow, genUnderflow, genUAF}
	missTemplates := []func(*genState) []block{genEdgeWrite, genReallocReuse, genPruneTouch, genHWMask, genErrorStorm, genFlakyLine}

	var strands [][]block
	strands = append(strands, genChurn(g))
	for _, i := range pick(r, len(bugTemplates), r.between(1, 3)) {
		strands = append(strands, bugTemplates[i](g))
	}
	for _, i := range pick(r, len(missTemplates), r.between(1, 3)) {
		strands = append(strands, missTemplates[i](g))
	}

	// Prologue: pass the tool's warm-up window before any template body, so
	// every trigger block can rely on leak checks being live.
	g.s.Ops = append(g.s.Ops, Op{Kind: OpAdvance, Size: genWarmup, Strand: -1})

	// Random interleave, preserving per-strand block order.
	live := make([]int, len(strands))
	for i := range live {
		live[i] = i
	}
	next := make([]int, len(strands))
	for len(live) > 0 {
		k := r.intn(len(live))
		si := live[k]
		for _, op := range strands[si][next[si]] {
			g.s.Ops = append(g.s.Ops, op)
		}
		next[si]++
		if next[si] == len(strands[si]) {
			live = append(live[:k], live[k+1:]...)
		}
	}

	// Closers: two aged allocation pulses. The first fires a leak check at
	// least LeakConfirmTime after any flag set during the body (confirming
	// those suspects) and may flag stragglers; the second confirms the
	// stragglers. Shutdown's exit pass is the final backstop.
	for i := 0; i < 2; i++ {
		d := g.newSlot()
		g.s.Ops = append(g.s.Ops,
			Op{Kind: OpAdvance, Size: genCloseOut, Strand: -1},
			Op{Kind: OpAlloc, Slot: d, Size: 16, Site: g.newSite(), Strand: -1},
			Op{Kind: OpFree, Slot: d, Strand: -1},
		)
	}
	return g.s
}

// pick returns k distinct indices out of n, in random order.
func pick(r *rng, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	if k > n {
		k = n
	}
	return idx[:k]
}

// genChurn emits benign allocate-use-free traffic. Each object lives and
// dies inside its own atomic block, so no leak check can ever observe one
// older than its block's internal advance — provably unflaggable.
func genChurn(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	c := g.newSlot()
	var out []block
	for i, n := 0, g.r.between(3, 6); i < n; i++ {
		size := uint64(g.r.between(2, 60)) * 8
		out = append(out, block{
			{Kind: OpAlloc, Slot: c, Size: size, Site: site, Strand: st},
			{Kind: OpWrite, Slot: c, Off: 0, Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
			{Kind: OpFree, Slot: c, Strand: st},
		})
	}
	return out
}

// genALeak plants an always-leak: a never-freed group pushed past the live
// threshold while still growing. The trigger block keeps the group's last
// allocation recent (genRecentGap < ALeakRecentWindow) when the aux
// allocation fires the check that flags the oldest objects.
func genALeak(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 32)) * 8
	var out []block
	for i := 0; i < genALeakAllocs; i++ {
		out = append(out, block{
			{Kind: OpAlloc, Slot: g.newSlot(), Size: size, Site: site, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 8_000)), Strand: st},
		})
	}
	trigger := block{}
	for i := 0; i < 4; i++ {
		trigger = append(trigger,
			Op{Kind: OpAlloc, Slot: g.newSlot(), Size: size, Site: site, Strand: st},
			Op{Kind: OpAdvance, Size: 20_000, Strand: st},
		)
	}
	aux := g.newSlot()
	trigger = append(trigger,
		Op{Kind: OpAdvance, Size: genRecentGap, Strand: st},
		Op{Kind: OpAlloc, Slot: aux, Size: 16, Site: g.newSite(), Strand: st},
		Op{Kind: OpFree, Slot: aux, Strand: st},
	)
	out = append(out, trigger)
	g.s.Plan = append(g.s.Plan, Planted{Kind: BugALeak, Site: site, Strand: st})
	return out
}

// sleakProlog emits the three equal-lifetime churn blocks that establish a
// stable maximal lifetime for site (stableTime accrues between the frees:
// 2 × genChurnLife > SLeakStableTime).
func sleakProlog(g *genState, st int, site uint64, size uint64) []block {
	c := g.newSlot()
	var out []block
	for i := 0; i < 3; i++ {
		out = append(out, block{
			{Kind: OpAlloc, Slot: c, Size: size, Site: site, Strand: st},
			{Kind: OpAdvance, Size: genChurnLife, Strand: st},
			{Kind: OpFree, Slot: c, Strand: st},
		})
	}
	return out
}

// genSLeak plants a sometimes-leak: after the stable-lifetime prologue one
// object is allocated and never freed or touched. The trigger block ages it
// past SLeakLifetimeFactor × lifetime and fires a check; the closers (or
// shutdown) confirm the untouched suspect.
func genSLeak(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 32)) * 8
	out := sleakProlog(g, st, site, size)
	out = append(out, block{
		{Kind: OpAlloc, Slot: g.newSlot(), Size: size, Site: site, Strand: st},
	})
	aux := g.newSlot()
	out = append(out, block{
		{Kind: OpAdvance, Size: genAgeAdvance, Strand: st},
		{Kind: OpAlloc, Slot: aux, Size: 16, Site: g.newSite(), Strand: st},
		{Kind: OpFree, Slot: aux, Strand: st},
	})
	g.s.Plan = append(g.s.Plan, Planted{Kind: BugSLeak, Site: site, Strand: st})
	return out
}

// genOverflow plants a write past the end of a buffer, landing inside the
// suffix guard line at a random 8-byte-aligned offset.
func genOverflow(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 120)) * 8
	v := g.newSlot()
	off := int64(roundLine(size)) + int64(g.r.intn(8))*8
	g.s.Plan = append(g.s.Plan, Planted{Kind: BugOverflow, Site: site, Strand: st})
	return []block{
		{
			{Kind: OpAlloc, Slot: v, Size: size, Site: site, Strand: st},
			{Kind: OpWrite, Slot: v, Off: 0, Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
		},
		{
			{Kind: OpWrite, Slot: v, Off: off, Size: 8, Strand: st},
		},
		{
			{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 5_000)), Strand: st},
			{Kind: OpFree, Slot: v, Strand: st},
		},
	}
}

// genUnderflow plants a write before the start of a buffer, landing inside
// the prefix guard line.
func genUnderflow(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 120)) * 8
	v := g.newSlot()
	off := -64 + int64(g.r.intn(8))*8
	g.s.Plan = append(g.s.Plan, Planted{Kind: BugUnderflow, Site: site, Strand: st})
	return []block{
		{
			{Kind: OpAlloc, Slot: v, Size: size, Site: site, Strand: st},
			{Kind: OpWrite, Slot: v, Off: 0, Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
		},
		{
			{Kind: OpWrite, Slot: v, Off: off, Size: 8, Strand: st},
		},
		{
			{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 5_000)), Strand: st},
			{Kind: OpFree, Slot: v, Strand: st},
		},
	}
}

// genUAF plants a use-after-free. Free and use share one atomic block so no
// other strand's allocation can reuse the freed extent (which would disarm
// the freed-region watch) in between.
func genUAF(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 60)) * 8
	u := g.newSlot()
	g.s.Plan = append(g.s.Plan, Planted{Kind: BugUAF, Site: site, Strand: st})
	return []block{
		{
			{Kind: OpAlloc, Slot: u, Size: size, Site: site, Strand: st},
			{Kind: OpWrite, Slot: u, Off: 0, Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
		},
		{
			{Kind: OpFree, Slot: u, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(5_000, 40_000)), Strand: st},
			{Kind: OpRead, Slot: u, Off: 0, Size: 8, Strand: st},
		},
	}
}

// genEdgeWrite writes the last 8 in-bounds bytes of a buffer — one byte
// short of the guard line. Must stay silent.
func genEdgeWrite(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 120)) * 8
	e := g.newSlot()
	g.s.Misses = append(g.s.Misses, NearMiss{Name: "edge-write", Site: site, Strand: st})
	return []block{{
		{Kind: OpAlloc, Slot: e, Size: size, Site: site, Strand: st},
		{Kind: OpWrite, Slot: e, Off: int64(size) - 8, Size: 8, Strand: st},
		{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
		{Kind: OpFree, Slot: e, Strand: st},
	}}
}

// genReallocReuse frees a buffer and immediately reallocates the same size:
// the second allocation may be carved from the freed (watched) extent, which
// must disarm the freed-region watch instead of reporting the reuse.
func genReallocReuse(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 60)) * 8
	y, y2 := g.newSlot(), g.newSlot()
	g.s.Misses = append(g.s.Misses, NearMiss{Name: "realloc-reuse", Site: site, Strand: st})
	return []block{{
		{Kind: OpAlloc, Slot: y, Size: size, Site: site, Strand: st},
		{Kind: OpWrite, Slot: y, Off: 0, Size: 8, Strand: st},
		{Kind: OpFree, Slot: y, Strand: st},
		{Kind: OpAlloc, Slot: y2, Size: size, Site: site, Strand: st},
		{Kind: OpWrite, Slot: y2, Off: 0, Size: 8, Strand: st},
		{Kind: OpFree, Slot: y2, Strand: st},
	}}
}

// genPruneTouch builds a leak suspect that the program then touches: the
// aged elder is flagged by the check inside the block and immediately
// exonerated by the read — ECC-watch pruning in action, no report allowed.
// Flag, touch and free share one atomic block so no interleaved advance can
// push the suspect past the confirmation window first.
func genPruneTouch(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 32)) * 8
	out := sleakProlog(g, st, site, size)
	elder, d := g.newSlot(), g.newSlot()
	out = append(out, block{
		{Kind: OpAlloc, Slot: elder, Size: size, Site: site, Strand: st},
		{Kind: OpAdvance, Size: genAgeAdvance, Strand: st},
		{Kind: OpAlloc, Slot: d, Size: 16, Site: g.newSite(), Strand: st},
		{Kind: OpFree, Slot: d, Strand: st},
		{Kind: OpRead, Slot: elder, Off: 0, Size: 8, Strand: st},
		{Kind: OpFree, Slot: elder, Strand: st},
	})
	g.s.Misses = append(g.s.Misses, NearMiss{Name: "prune-touch", Site: site, Strand: st})
	return out
}

// genHWMask plants a genuine double-bit hardware fault inside a watched
// suffix guard line, then writes past the end of the buffer. SafeMem must
// classify the fault as a hardware error (signature mismatch), repair the
// line and stay silent — the overflow is masked, and the oracle instead
// checks the hardware-error counter.
func genHWMask(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 60)) * 8
	h := g.newSlot()
	g.s.HWFaults++
	g.s.Misses = append(g.s.Misses, NearMiss{Name: "hw-mask", Site: site, Strand: st})
	return []block{
		{
			{Kind: OpAlloc, Slot: h, Size: size, Site: site, Strand: st},
			{Kind: OpWrite, Slot: h, Off: 0, Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
		},
		{
			{Kind: OpHWFault, Slot: h, Strand: st},
			{Kind: OpWrite, Slot: h, Off: int64(roundLine(size)), Size: 8, Strand: st},
		},
		{
			{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 5_000)), Strand: st},
			{Kind: OpFree, Slot: h, Strand: st},
		},
	}
}

// genErrorStorm is a burst of correctable single-bit faults in a buffer's
// interior — never-watched words — each resolved by a read. The controller
// corrects every one on the fly; SafeMem must stay silent (no report, no
// hardware-repair count) while the oracle checks the corrected-error
// counter. This is background radiation, not a bug.
func genErrorStorm(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(16, 56)) * 8
	e := g.newSlot()
	g.s.Misses = append(g.s.Misses, NearMiss{Name: "error-storm", Site: site, Strand: st})
	out := []block{{
		{Kind: OpAlloc, Slot: e, Size: size, Site: site, Strand: st},
		{Kind: OpWrite, Slot: e, Off: 0, Size: size, Strand: st},
		{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
	}}
	for i, n := 0, g.r.between(4, 8); i < n; i++ {
		off := int64(g.r.intn(int(size/8))) * 8
		out = append(out, block{
			{Kind: OpCEFault, Slot: e, Off: off, Strand: st},
			{Kind: OpRead, Slot: e, Off: off, Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 4_000)), Strand: st},
		})
	}
	out = append(out, block{
		{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 5_000)), Strand: st},
		{Kind: OpFree, Slot: e, Strand: st},
	})
	return out
}

// genFlakyLine is an intermittent fault on a watched guard line: the same
// pad takes an uncorrectable double-bit hit three times, each discovered by
// a pad write. SafeMem must classify every hit as hardware (repair, no bug
// report), re-arm the guard after the first two, and quarantine the line at
// the third — the stock QuarantineThreshold — all without a single
// corruption report. The oracle's hardware accounting (plants == repairs)
// pins that the re-armed watches kept attributing faults correctly.
func genFlakyLine(g *genState) []block {
	st := g.strand
	g.strand++
	site := g.newSite()
	size := uint64(g.r.between(2, 60)) * 8
	fl := g.newSlot()
	g.s.Misses = append(g.s.Misses, NearMiss{Name: "flaky-line", Site: site, Strand: st})
	out := []block{{
		{Kind: OpAlloc, Slot: fl, Size: size, Site: site, Strand: st},
		{Kind: OpWrite, Slot: fl, Off: 0, Size: 8, Strand: st},
		{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 10_000)), Strand: st},
	}}
	for i := 0; i < 3; i++ {
		g.s.HWFaults++
		out = append(out, block{
			{Kind: OpHWFault, Slot: fl, Strand: st},
			// One aligned 8-byte store: a single access discovers the fault,
			// and the deferred re-arm lands only after it completes.
			{Kind: OpWrite, Slot: fl, Off: int64(roundLine(size)), Size: 8, Strand: st},
			{Kind: OpAdvance, Size: uint64(g.r.between(2_000, 8_000)), Strand: st},
		})
	}
	out = append(out, block{
		{Kind: OpAdvance, Size: uint64(g.r.between(1_000, 5_000)), Strand: st},
		{Kind: OpFree, Slot: fl, Strand: st},
	})
	return out
}

// roundLine rounds n up to the cache-line size (the allocator's rounding,
// so base+roundLine(size) is the first guard-line byte).
func roundLine(n uint64) uint64 {
	return (n + physmem.LineBytes - 1) &^ uint64(physmem.LineBytes-1)
}
