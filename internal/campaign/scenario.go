// Package campaign is the randomized correctness harness: it generates
// seed-reproducible synthetic workloads with a known plan of injected bugs
// (and benign near-misses that must stay silent), executes them on fresh
// simulated machines under each SafeMem configuration, and judges the
// resulting reports against the plan with a ground-truth oracle. Campaigns
// shard across goroutines with per-scenario sub-seeds and aggregate into a
// byte-stable JSON summary; any oracle violation is shrunk to a minimal
// scenario with a one-line repro command. See DESIGN.md §4.5.
package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"safemem/internal/vm"
)

// OpKind enumerates the scenario script operations.
type OpKind int

const (
	// OpAlloc allocates Size bytes into Slot at call site Site.
	OpAlloc OpKind = iota
	// OpFree frees Slot (skipped if the slot is not currently allocated).
	OpFree
	// OpWrite writes Size bytes at Slot's address + Off (Off may be
	// negative, reaching the prefix guard line).
	OpWrite
	// OpRead reads Size bytes at Slot's address + Off.
	OpRead
	// OpAdvance advances the simulated clock by Size cycles of computation.
	OpAdvance
	// OpHWFault plants an uncorrectable double-bit hardware fault in Slot's
	// suffix guard line (executed only under configurations that declare
	// corruption detection; without the guard watch the fault would panic
	// the machine, which models nothing the oracle wants to test).
	OpHWFault
	// OpCEFault plants a correctable single-bit fault at Slot's address +
	// Off (an interior, never-watched word). The controller corrects it on
	// the next access, so it runs under every configuration — the oracle
	// checks the corrected-error counter, not the bug reports.
	OpCEFault
)

// Op is one scenario script operation. Ops carry the strand that emitted
// them so the shrinker can remove whole strands and the oracle can
// attribute near-miss sites.
type Op struct {
	Kind   OpKind
	Slot   int
	Size   uint64 // bytes for Alloc/Write/Read, cycles for Advance
	Off    int64  // access offset relative to the slot base (Write/Read)
	Site   uint64 // allocation call site (Alloc only)
	Strand int
}

// BugKind enumerates the planted bug classes.
type BugKind string

const (
	BugALeak     BugKind = "aleak"
	BugSLeak     BugKind = "sleak"
	BugOverflow  BugKind = "overflow"
	BugUnderflow BugKind = "underflow"
	BugUAF       BugKind = "uaf"
)

// Corruption reports whether the kind is a corruption class — the plants a
// sampling (CfgSample) run is judged on.
func (k BugKind) Corruption() bool {
	return k == BugOverflow || k == BugUnderflow || k == BugUAF
}

// Planted is one ground-truth bug in the scenario plan: the oracle expects
// exactly one report of the matching kind at Site under configurations that
// detect that kind, and none otherwise.
type Planted struct {
	Kind   BugKind
	Site   uint64
	Strand int
}

// NearMiss is a benign pattern that skirts a detector's trigger condition —
// an in-bounds edge write, a free-then-realloc reuse, a suspect exonerated
// by a late access, a hardware fault masked inside a guard line. Any report
// at a near-miss site is a false positive.
type NearMiss struct {
	Name   string
	Site   uint64
	Strand int
}

// Scenario is one generated test case: a script plus its ground-truth plan.
type Scenario struct {
	Seed     uint64
	Ops      []Op
	Plan     []Planted
	Misses   []NearMiss
	HWFaults int // number of OpHWFault ops in the script
}

// scenarioVersion tags the wire format; bump on incompatible change.
const scenarioVersion = "cv1"

// Encode renders the scenario in the compact single-line form accepted by
// `safemem-fuzz -scenario=...`:
//
//	cv1|<op>,<op>,...|<kind>@<site>:<strand>,...|<name>@<site>:<strand>,...
//
// with op tokens A<slot>:<size>:<site>:<strand>, F<slot>:<strand>,
// W<slot>:<off>:<len>:<strand>, R<slot>:<off>:<len>:<strand>,
// C<cycles>:<strand>, H<slot>:<strand> and E<slot>:<off>:<strand>.
func (s *Scenario) Encode() string {
	var b strings.Builder
	b.WriteString(scenarioVersion)
	b.WriteByte('|')
	for i, op := range s.Ops {
		if i > 0 {
			b.WriteByte(',')
		}
		switch op.Kind {
		case OpAlloc:
			fmt.Fprintf(&b, "A%d:%d:%d:%d", op.Slot, op.Size, op.Site, op.Strand)
		case OpFree:
			fmt.Fprintf(&b, "F%d:%d", op.Slot, op.Strand)
		case OpWrite:
			fmt.Fprintf(&b, "W%d:%d:%d:%d", op.Slot, op.Off, op.Size, op.Strand)
		case OpRead:
			fmt.Fprintf(&b, "R%d:%d:%d:%d", op.Slot, op.Off, op.Size, op.Strand)
		case OpAdvance:
			fmt.Fprintf(&b, "C%d:%d", op.Size, op.Strand)
		case OpHWFault:
			fmt.Fprintf(&b, "H%d:%d", op.Slot, op.Strand)
		case OpCEFault:
			fmt.Fprintf(&b, "E%d:%d:%d", op.Slot, op.Off, op.Strand)
		}
	}
	b.WriteByte('|')
	for i, p := range s.Plan {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%d:%d", p.Kind, p.Site, p.Strand)
	}
	b.WriteByte('|')
	for i, nm := range s.Misses {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%d:%d", nm.Name, nm.Site, nm.Strand)
	}
	return b.String()
}

// Decode parses the Encode wire form.
func Decode(text string) (*Scenario, error) {
	parts := strings.Split(text, "|")
	if len(parts) != 4 || parts[0] != scenarioVersion {
		return nil, fmt.Errorf("campaign: malformed scenario (want %s|ops|plan|misses)", scenarioVersion)
	}
	s := &Scenario{}
	if parts[1] != "" {
		for _, tok := range strings.Split(parts[1], ",") {
			op, err := decodeOp(tok)
			if err != nil {
				return nil, err
			}
			if op.Kind == OpHWFault {
				s.HWFaults++
			}
			s.Ops = append(s.Ops, op)
		}
	}
	if parts[2] != "" {
		for _, tok := range strings.Split(parts[2], ",") {
			kind, site, strand, err := decodeTagged(tok)
			if err != nil {
				return nil, err
			}
			s.Plan = append(s.Plan, Planted{Kind: BugKind(kind), Site: site, Strand: strand})
		}
	}
	if parts[3] != "" {
		for _, tok := range strings.Split(parts[3], ",") {
			name, site, strand, err := decodeTagged(tok)
			if err != nil {
				return nil, err
			}
			s.Misses = append(s.Misses, NearMiss{Name: name, Site: site, Strand: strand})
		}
	}
	return s, nil
}

func decodeOp(tok string) (Op, error) {
	if tok == "" {
		return Op{}, fmt.Errorf("campaign: empty op token")
	}
	fields := strings.Split(tok[1:], ":")
	nums := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("campaign: op %q: %v", tok, err)
		}
		nums[i] = v
	}
	switch {
	case tok[0] == 'A' && len(nums) == 4:
		return Op{Kind: OpAlloc, Slot: int(nums[0]), Size: uint64(nums[1]), Site: uint64(nums[2]), Strand: int(nums[3])}, nil
	case tok[0] == 'F' && len(nums) == 2:
		return Op{Kind: OpFree, Slot: int(nums[0]), Strand: int(nums[1])}, nil
	case tok[0] == 'W' && len(nums) == 4:
		return Op{Kind: OpWrite, Slot: int(nums[0]), Off: nums[1], Size: uint64(nums[2]), Strand: int(nums[3])}, nil
	case tok[0] == 'R' && len(nums) == 4:
		return Op{Kind: OpRead, Slot: int(nums[0]), Off: nums[1], Size: uint64(nums[2]), Strand: int(nums[3])}, nil
	case tok[0] == 'C' && len(nums) == 2:
		return Op{Kind: OpAdvance, Size: uint64(nums[0]), Strand: int(nums[1])}, nil
	case tok[0] == 'H' && len(nums) == 2:
		return Op{Kind: OpHWFault, Slot: int(nums[0]), Strand: int(nums[1])}, nil
	case tok[0] == 'E' && len(nums) == 3:
		return Op{Kind: OpCEFault, Slot: int(nums[0]), Off: nums[1], Strand: int(nums[2])}, nil
	default:
		return Op{}, fmt.Errorf("campaign: unknown op token %q", tok)
	}
}

func decodeTagged(tok string) (name string, site uint64, strand int, err error) {
	at := strings.IndexByte(tok, '@')
	colon := strings.LastIndexByte(tok, ':')
	if at < 1 || colon < at {
		return "", 0, 0, fmt.Errorf("campaign: malformed plan token %q", tok)
	}
	site, err = strconv.ParseUint(tok[at+1:colon], 10, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("campaign: plan token %q: %v", tok, err)
	}
	s, err := strconv.Atoi(tok[colon+1:])
	if err != nil {
		return "", 0, 0, fmt.Errorf("campaign: plan token %q: %v", tok, err)
	}
	return tok[:at], site, s, nil
}

// vaddrOff applies a signed offset to a virtual address.
func vaddrOff(base vm.VAddr, off int64) vm.VAddr {
	return vm.VAddr(uint64(base) + uint64(off))
}
