package campaign

import (
	"bytes"
	"strings"
	"testing"
)

// TestSampleCampaign is the sampling-tool acceptance check: a fixed-seed
// campaign under CfgSample must finish with zero oracle violations — every
// sampled corruption plant detected, every unsampled one classified as a
// sampled-miss rather than a miss, near-misses silent, hardware accounting
// exact. This is also the template `make ci` runs under -race.
func TestSampleCampaign(t *testing.T) {
	sum, err := Run(Config{Seeds: 12, BaseSeed: 42, Shards: 4,
		Tools: []ToolConfig{CfgSample}, SampleRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ScenariosRun != 12 {
		t.Fatalf("ScenariosRun = %d, want 12", sum.ScenariosRun)
	}
	if len(sum.Violations) != 0 {
		for _, v := range sum.Violations {
			t.Errorf("violation: %s %s site=%#x cfg=%s: %s", v.Kind, v.BugKind, v.Site, v.Config, v.Detail)
		}
		t.Fatalf("sample campaign produced %d oracle violations", len(sum.Violations))
	}
	cs := sum.Configs[0]
	if cs.FalsePositives != 0 || cs.Missed != 0 {
		t.Errorf("FP=%d missed=%d, want 0/0", cs.FalsePositives, cs.Missed)
	}
	// At rate 8 over 12 scenarios both populations must be represented:
	// some plants sampled (detected), some not (sampled-miss). Their
	// absence would mean the sampler is degenerate at one end.
	if cs.TruePositives == 0 {
		t.Error("no sampled plant was detected — pool never caught anything")
	}
	if cs.SampledMisses == 0 {
		t.Error("no sampled-miss recorded — rate-8 sampling watched everything")
	}
	// Leak plants are outside the sampling tool's declared scope.
	if cs.ExpectedMisses == 0 {
		t.Error("no expected-miss recorded — leak plants should be out of scope")
	}
}

// TestSampleShardDeterminism extends the shard-determinism acceptance to
// the sampling tool at an awkward shard mix: 1, 3 and 7 workers must
// produce byte-identical summaries, sampling decisions included.
func TestSampleShardDeterminism(t *testing.T) {
	run := func(shards int) []byte {
		t.Helper()
		return campaignJSON(t, Config{Seeds: 10, BaseSeed: 7, Shards: shards,
			Tools: []ToolConfig{CfgSample, CfgMC}, SampleRate: 8})
	}
	j1 := run(1)
	for _, shards := range []int{3, 7} {
		if j := run(shards); !bytes.Equal(j1, j) {
			t.Fatalf("sample summaries differ between 1 and %d shards:\n--- shards=1\n%s\n--- shards=%d\n%s",
				shards, j1, shards, j)
		}
	}
}

// TestSampleRateOne pins the sampling oracle's degenerate end: at rate 1
// every allocation is sampled, so a CfgSample run must detect every
// corruption plant (no sampled-misses at all).
func TestSampleRateOne(t *testing.T) {
	sum, err := Run(Config{Seeds: 8, BaseSeed: 42, Shards: 2,
		Tools: []ToolConfig{CfgSample}, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("rate-1 sample campaign produced %d violations: %+v", len(sum.Violations), sum.Violations[0])
	}
	cs := sum.Configs[0]
	if cs.SampledMisses != 0 {
		t.Errorf("rate-1 sampling recorded %d sampled-misses, want 0", cs.SampledMisses)
	}
	if cs.TruePositives == 0 {
		t.Error("rate-1 sampling detected nothing")
	}
}

// TestSampleReproCommand checks that a violating sample run's repro
// command carries the -sample-rate flag and replays to the same failure —
// the sabotage self-test through the sampling path.
func TestSampleReproCommand(t *testing.T) {
	sum, err := Run(Config{Seeds: 6, BaseSeed: 42, Shards: 2, Sabotage: true,
		Tools: []ToolConfig{CfgSample}, SampleRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("sabotaged sample campaign reported no violations")
	}
	v := sum.Violations[0]
	if !strings.Contains(v.Repro, "-tool=sample") || !strings.Contains(v.Repro, "-sample-rate=2") {
		t.Fatalf("repro command lacks sampling flags: %q", v.Repro)
	}
	replay := extractScenario(t, v.Repro)
	// Decode carries no seed; replaying restores it from -seed, which also
	// pins the derived sampling-decision stream.
	replay.Seed = v.Seed
	res, err := ExecuteEnv(replay, CfgSample, Env{Sabotage: true, SampleRate: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range Judge(replay, CfgSample, res).Violations {
		if v.sameFailure(w) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("repro does not reproduce the %s/%s violation:\n%s", v.Kind, v.BugKind, v.Repro)
	}
}
