package campaign

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// poolDelta runs f and returns how far the machine-pool counters moved.
func poolDelta(t *testing.T, f func()) (released, dropped uint64) {
	t.Helper()
	r0, d0 := PoolStats()
	f()
	r1, d1 := PoolStats()
	return r1 - r0, d1 - d0
}

// TestPanickedMachineNeverRepooled pins the fleet's crash-safety contract
// at the executor level: when a panic unwinds out of ExecuteEnv into a
// recovering caller (exactly what a fleet worker's panic isolation does),
// the in-flight machine must be dropped, never handed to sync.Pool.Put.
func TestPanickedMachineNeverRepooled(t *testing.T) {
	s := Generate(1)
	released, dropped := poolDelta(t, func() {
		defer func() {
			if v := recover(); v == nil {
				t.Fatal("hook panic did not propagate out of ExecuteEnv")
			}
		}()
		ExecuteEnv(s, CfgBoth, Env{Hook: func(op int) error {
			if op == len(s.Ops)/2 {
				panic("chaos: injected worker panic")
			}
			return nil
		}})
	})
	if released != 0 {
		t.Fatalf("panicked run released %d machine(s) into the pool", released)
	}
	if dropped != 1 {
		t.Fatalf("panicked run dropped %d machine(s), want exactly 1", dropped)
	}
}

// TestErroredRunNeverRepooled pins the same property for runs that
// terminate with an error instead of a panic (hook-injected here; a kernel
// panic or segfault takes the same res.Err path).
func TestErroredRunNeverRepooled(t *testing.T) {
	s := Generate(2)
	bang := errors.New("chaos: injected transient failure")
	released, dropped := poolDelta(t, func() {
		res, err := ExecuteEnv(s, CfgBoth, Env{Hook: func(op int) error { return bang }})
		if err != nil {
			t.Fatalf("ExecuteEnv: %v", err)
		}
		if !errors.Is(res.Err, bang) {
			t.Fatalf("res.Err = %v, want the injected failure", res.Err)
		}
	})
	if released != 0 {
		t.Fatalf("errored run released %d machine(s) into the pool", released)
	}
	if dropped != 1 {
		t.Fatalf("errored run dropped %d machine(s), want exactly 1", dropped)
	}
}

// TestCleanRunRepooled is the counter-positive: a normally terminating run
// does recycle its machine (otherwise the counters above prove nothing).
func TestCleanRunRepooled(t *testing.T) {
	s := Generate(3)
	released, dropped := poolDelta(t, func() {
		res, err := ExecuteEnv(s, CfgBoth, Env{})
		if err != nil || res.Err != nil {
			t.Fatalf("clean run failed: err=%v res.Err=%v", err, res.Err)
		}
	})
	if released != 1 {
		t.Fatalf("clean run released %d machine(s), want 1", released)
	}
	if dropped != 0 {
		t.Fatalf("clean run dropped %d machine(s), want 0", dropped)
	}
}

// TestExecuteEnvContextCancel pins the deadline integration point: a
// cancelled context terminates the run between ops with the context's
// error, and the half-finished machine is discarded.
func TestExecuteEnvContextCancel(t *testing.T) {
	s := Generate(4)
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	released, dropped := poolDelta(t, func() {
		res, err := ExecuteEnv(s, CfgBoth, Env{
			Ctx: ctx,
			Hook: func(op int) error {
				if op == 2 && !fired {
					fired = true
					cancel()
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("ExecuteEnv: %v", err)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("res.Err = %v, want context.Canceled", res.Err)
		}
	})
	if !fired {
		t.Fatal("scenario too short: cancel hook never ran")
	}
	if released != 0 || dropped != 1 {
		t.Fatalf("cancelled run released=%d dropped=%d, want 0/1", released, dropped)
	}
}

// TestPassiveEnvHooksPreserveDeterminism pins that a context that never
// fires and a hook that stays passive leave the simulated result
// bit-identical to a bare environment — the serving layer's observation-
// only contract.
func TestPassiveEnvHooksPreserveDeterminism(t *testing.T) {
	s := Generate(5)
	bare, err := ExecuteEnv(s, CfgBoth, Env{})
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := ExecuteEnv(s, CfgBoth, Env{
		Ctx:  context.Background(),
		Hook: func(op int) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cycles != hooked.Cycles || len(bare.Reports) != len(hooked.Reports) {
		t.Fatalf("passive hooks changed the run: cycles %d vs %d, reports %d vs %d",
			bare.Cycles, hooked.Cycles, len(bare.Reports), len(hooked.Reports))
	}
	for i := range bare.Reports {
		if bare.Reports[i].String() != hooked.Reports[i].String() {
			t.Fatalf("report %d differs:\n%s\nvs\n%s", i, bare.Reports[i], hooked.Reports[i])
		}
	}
}

// TestHookErrorMentionsNoOracleNoise double-checks that hook-injected
// failures surface as ExecResult.Err (a crash verdict at the oracle), not
// as silent truncation.
func TestHookErrorSurfacesAsCrash(t *testing.T) {
	s := Generate(6)
	res, err := ExecuteEnv(s, CfgMC, Env{Hook: func(op int) error {
		return errors.New("injected")
	}})
	if err != nil {
		t.Fatal(err)
	}
	v := Judge(s, CfgMC, res)
	found := false
	for _, vio := range v.Violations {
		if vio.Kind == ViolationCrash && strings.Contains(vio.Detail, "injected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hook error did not produce a crash violation: %+v", v.Violations)
	}
}
