package campaign

// Shrink reduces a violating scenario to a (locally) minimal one that still
// produces the same oracle failure — same violation kind, bug kind and site
// — under the same configuration. Two greedy passes:
//
//  1. strand removal: drop whole strands (ops plus their plan/near-miss
//     entries) to a fixpoint;
//  2. op removal: drop single surviving ops to a fixpoint.
//
// Ops of the violating strand itself are never removed: a Missed violation
// trivially "survives" deleting the plant's own allocations (the plan entry
// still goes unmatched), and such a shrink would destroy exactly the
// behaviour the repro needs to show. The interpreter's skip semantics
// guarantee every candidate subsequence is executable, so each trial is
// just one re-run plus a re-judge.
func Shrink(s *Scenario, cfg ToolConfig, env Env, target Violation) *Scenario {
	check := func(c *Scenario) bool {
		res, err := ExecuteEnv(c, cfg, env)
		if err != nil {
			return false
		}
		for _, w := range Judge(c, cfg, res).Violations {
			if target.sameFailure(w) {
				return true
			}
		}
		return false
	}
	if !check(s) {
		// Not reproducible in isolation (should not happen — runs are
		// deterministic); return unshrunk rather than a bogus minimum.
		return s
	}

	cur := s
	// Pass 1: whole strands.
	for changed := true; changed; {
		changed = false
		for _, st := range strandsOf(cur) {
			if st == target.Strand {
				continue
			}
			cand := withoutStrand(cur, st)
			if check(cand) {
				cur = cand
				changed = true
			}
		}
	}
	// Pass 2: single ops.
	for changed := true; changed; {
		changed = false
		for i := len(cur.Ops) - 1; i >= 0; i-- {
			if cur.Ops[i].Strand == target.Strand {
				continue
			}
			cand := withoutOp(cur, i)
			if check(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}

// strandsOf lists the distinct strand ids present in the scenario's ops, in
// first-appearance order (includes -1, the prologue/closer pseudo-strand).
func strandsOf(s *Scenario) []int {
	seen := map[int]bool{}
	var out []int
	for _, op := range s.Ops {
		if !seen[op.Strand] {
			seen[op.Strand] = true
			out = append(out, op.Strand)
		}
	}
	return out
}

// withoutStrand copies s minus one strand's ops and its plan/near-miss
// entries (a stale plan entry for a removed strand would manufacture new
// Missed noise in every re-judge).
func withoutStrand(s *Scenario, strand int) *Scenario {
	out := &Scenario{Seed: s.Seed}
	for _, op := range s.Ops {
		if op.Strand == strand {
			continue
		}
		if op.Kind == OpHWFault {
			out.HWFaults++
		}
		out.Ops = append(out.Ops, op)
	}
	for _, p := range s.Plan {
		if p.Strand != strand {
			out.Plan = append(out.Plan, p)
		}
	}
	for _, nm := range s.Misses {
		if nm.Strand != strand {
			out.Misses = append(out.Misses, nm)
		}
	}
	return out
}

// withoutOp copies s minus op i. Plan entries stay: op-level shrinking
// narrows the script, not the expectations.
func withoutOp(s *Scenario, i int) *Scenario {
	out := &Scenario{Seed: s.Seed, Plan: s.Plan, Misses: s.Misses}
	for j, op := range s.Ops {
		if j == i {
			continue
		}
		if op.Kind == OpHWFault {
			out.HWFaults++
		}
		out.Ops = append(out.Ops, op)
	}
	return out
}
