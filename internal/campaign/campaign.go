package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"safemem/internal/obsrv/flight"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Config parameterises a campaign run.
type Config struct {
	// Seeds is the number of scenarios to generate and run.
	Seeds int
	// BaseSeed is mixed with each scenario index to derive its sub-seed, so
	// scenario i means the same test case at any shard count.
	BaseSeed uint64
	// Shards is the number of worker goroutines (default 1). Sharding
	// changes wall-clock time only: every scenario runs on its own machine
	// from its own sub-seed, results are collected by index and aggregated
	// sequentially, so the summary is byte-identical at any shard count.
	Shards int
	// Tools lists the configurations to judge (default ml, mc, both). The
	// uninstrumented baseline always runs for the overhead denominator,
	// whether or not CfgNone is listed.
	Tools []ToolConfig
	// Budget, when non-zero, stops workers from *starting* new scenarios
	// once the wall-clock budget is spent (in-flight scenarios finish).
	// Truncation is recorded in the summary's scenarios_run; byte-identical
	// summaries are only guaranteed for unbudgeted runs.
	Budget time.Duration
	// Shrink enables minimisation of violating scenarios.
	Shrink bool
	// Sabotage silently disables corruption detection while still judging
	// against the declared configuration — a self-test that must produce
	// violations (and working repro commands) on any scenario with a
	// corruption-class plant.
	Sabotage bool
	// FaultRate, Storm and Retire run every scenario "on flaky DIMMs": a
	// seed-deterministic background DRAM fault process at FaultRate events
	// per million cycles (with storm episodes when Storm is set), the kernel
	// scrub daemon, and — with Retire — page retirement instead of panics on
	// uncorrectable errors. See Env.
	FaultRate float64
	Storm     bool
	Retire    bool
	// SampleRate is the sampling rate for CfgSample runs (≤ 0 uses
	// DefaultSampleRate). Other configurations ignore it.
	SampleRate int
	// Registry, when non-nil, receives the campaign's aggregate telemetry
	// (true/false positive counters, detection-latency and overhead
	// histograms) plus live progress while the campaign runs: per-shard
	// shard<i>_scenarios_done gauges, live_* verdict counters and a
	// scenarios_per_sec gauge, all updated as workers finish scenarios so a
	// /metrics scrape shows progress mid-run. Live metrics never feed the
	// summary. Nil creates a private registry.
	Registry *telemetry.Registry
	// Recorder receives flight-recorder events (campaign/shard start and
	// finish, per-scenario verdicts, violations). Nil uses flight.Default.
	Recorder *flight.Recorder
	// FlightDump, when non-empty, is a JSONL path the flight recorder's
	// recent history is dumped to whenever the campaign ends in violations
	// or an execution error — the black box recovered next to the shrunk
	// repro.
	FlightDump string
	// FlightDumpN caps how many trailing events a dump writes (default 256).
	FlightDumpN int
}

// defaultFlightDumpN is the dump size when Config.FlightDumpN is zero.
const defaultFlightDumpN = 256

// maxShrinks bounds shrinking work per campaign: violations are rare (a
// green campaign has none), but a systemic breakage would otherwise shrink
// hundreds of scenarios at one re-execution per removed op.
const maxShrinks = 10

// Dist summarises a sample distribution. All fields derive from the sorted
// sample set, so equal inputs give byte-equal JSON.
type Dist struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

func distOf(samples []float64) *Dist {
	if len(samples) == 0 {
		return nil
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	q := func(p int) float64 { return s[(len(s)-1)*p/100] }
	return &Dist{
		Count: len(s), Min: s[0], Max: s[len(s)-1],
		Mean: sum / float64(len(s)), P50: q(50), P95: q(95),
	}
}

// ConfigSummary aggregates one configuration's results across the campaign.
type ConfigSummary struct {
	Config         string `json:"config"`
	Scenarios      int    `json:"scenarios"`
	TruePositives  int    `json:"true_positives"`
	FalsePositives int    `json:"false_positives"`
	Missed         int    `json:"missed"`
	ExpectedMisses int    `json:"expected_misses"`
	SampledMisses  int    `json:"sampled_misses,omitempty"`
	TotalCycles    uint64 `json:"total_cycles"`
	Latency        *Dist  `json:"latency_cycles,omitempty"`
	Overhead       *Dist  `json:"overhead,omitempty"`
	HardwareErrors uint64 `json:"hardware_errors"`
	// Hardware-resilience evidence, summed across the configuration's runs.
	CorrectedErrors uint64 `json:"corrected_errors,omitempty"`
	FaultEvents     uint64 `json:"fault_events,omitempty"`
	PagesRetired    uint64 `json:"pages_retired,omitempty"`
	WatchesMigrated uint64 `json:"watches_migrated,omitempty"`
	DataLossEvents  uint64 `json:"data_loss_events,omitempty"`
}

// Summary is the campaign's result. It deliberately contains nothing about
// the execution environment — no shard count, budget or wall-clock times —
// so summaries compare byte-for-byte across machines and parallelism.
type Summary struct {
	Version      string          `json:"version"`
	BaseSeed     uint64          `json:"base_seed"`
	Seeds        int             `json:"seeds"`
	ScenariosRun int             `json:"scenarios_run"`
	Sabotage     bool            `json:"sabotage,omitempty"`
	FaultRate    float64         `json:"fault_rate,omitempty"`
	Storm        bool            `json:"storm,omitempty"`
	Retire       bool            `json:"retire,omitempty"`
	SampleRate   int             `json:"sample_rate,omitempty"`
	Configs      []ConfigSummary `json:"configs"`
	Violations   []Violation     `json:"violations"`
}

// JSON renders the summary in its canonical indented form.
func (s *Summary) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// ReproCommand builds the one-line command that replays a single violating
// scenario under the same environment.
func ReproCommand(v Violation, scenario *Scenario, env Env) string {
	cmd := fmt.Sprintf("safemem-fuzz -seed=%d -tool=%s", v.Seed, v.Config)
	if v.Config == CfgSample.String() && env.SampleRate > 0 {
		cmd += fmt.Sprintf(" -sample-rate=%d", env.SampleRate)
	}
	if env.Sabotage {
		cmd += " -sabotage"
	}
	if env.FaultRate > 0 {
		cmd += fmt.Sprintf(" -fault-rate=%g", env.FaultRate)
	}
	if env.Storm {
		cmd += " -storm"
	}
	if env.Retire {
		cmd += " -retire"
	}
	return fmt.Sprintf("%s -scenario='%s'", cmd, scenario.Encode())
}

// outcome is one scenario's full result set, collected by index.
type outcome struct {
	scenario *Scenario
	baseline *ExecResult
	runs     []*ExecResult // parallel to the judged config list
	verdicts []*Verdict
	err      error
}

// Run executes the campaign and returns its aggregate summary. Scenario i
// is generated from subSeed(BaseSeed, i) and runs on a fresh machine per
// configuration; workers claim indices atomically and post results into an
// index-ordered slice, and all aggregation happens sequentially afterwards,
// which is what makes the summary independent of Shards and GOMAXPROCS.
func Run(cfg Config) (*Summary, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	tools := cfg.Tools
	if len(tools) == 0 {
		tools = []ToolConfig{CfgML, CfgMC, CfgBoth}
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = flight.Default
	}

	env := Env{Sabotage: cfg.Sabotage, FaultRate: cfg.FaultRate, Storm: cfg.Storm, Retire: cfg.Retire, SampleRate: cfg.SampleRate}

	var deadline time.Time
	if cfg.Budget > 0 {
		deadline = time.Now().Add(cfg.Budget)
	}

	prog := newProgress(cfg.Registry, cfg.Shards)
	rec.Emit(flight.KindCampaignStart, "campaign", 0, "",
		flight.F("seeds", uint64(cfg.Seeds)),
		flight.F("base_seed", cfg.BaseSeed),
		flight.F("shards", uint64(cfg.Shards)))

	results := make([]*outcome, cfg.Seeds)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Shards; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rec.Emit(flight.KindShardStart, "campaign", 0, "", flight.F("shard", uint64(shard)))
			done := uint64(0)
			defer func() {
				rec.Emit(flight.KindShardFinish, "campaign", 0, "",
					flight.F("shard", uint64(shard)), flight.F("scenarios", done))
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Seeds {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				seed := subSeed(cfg.BaseSeed, i)
				o := runScenario(seed, tools, env)
				results[i] = o
				done++
				prog.scenarioDone(shard, done)
				for ti, v := range o.verdicts {
					prog.verdict(v)
					rec.Emit(flight.KindVerdict, "campaign", 0, tools[ti].String(),
						flight.F("seed", seed),
						flight.F("true_positives", uint64(v.TruePositives)),
						flight.F("false_positives", uint64(v.FalsePositives)),
						flight.F("missed", uint64(v.Missed)))
					for _, vio := range v.Violations {
						rec.Emit(flight.KindViolation, "campaign", 0,
							fmt.Sprintf("%s under %s: %s", vio.Kind, vio.Config, vio.Detail),
							flight.F("seed", seed))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	sum, err := aggregate(cfg, env, tools, results)
	switch {
	case err != nil:
		rec.Emit(flight.KindCampaignFinish, "campaign", 0, "error: "+err.Error())
	default:
		rec.Emit(flight.KindCampaignFinish, "campaign", 0, "",
			flight.F("scenarios_run", uint64(sum.ScenariosRun)),
			flight.F("violations", uint64(len(sum.Violations))))
	}
	// The black box: a campaign that ended badly dumps its recent flight
	// history next to the shrunk repro, so the post-mortem has the event
	// stream that led up to the failure.
	if cfg.FlightDump != "" && (err != nil || len(sum.Violations) > 0) {
		n := cfg.FlightDumpN
		if n <= 0 {
			n = defaultFlightDumpN
		}
		if derr := rec.DumpFile(cfg.FlightDump, n); derr != nil {
			rec.Emit(flight.KindCampaignFinish, "campaign", 0, "flight dump failed: "+derr.Error())
		}
	}
	return sum, err
}

// progress publishes live campaign progress into a telemetry registry:
// owned (atomic) metrics only, so a concurrent /metrics scrape is always
// fresh and race-free. A nil registry disables it. Live metrics carry a
// live_ prefix (or shard<i>_) so they never collide with the aggregate
// counters written once at the end of the run.
type progress struct {
	start     time.Time
	shardDone []*telemetry.Gauge
	perSec    *telemetry.Gauge
	total     atomic.Uint64
	scenarios *telemetry.Counter
	tp        *telemetry.Counter
	fp        *telemetry.Counter
	missed    *telemetry.Counter
	vio       *telemetry.Counter
}

func newProgress(reg *telemetry.Registry, shards int) *progress {
	if reg == nil {
		return nil
	}
	p := &progress{
		start:     time.Now(),
		perSec:    reg.Gauge("campaign", "scenarios_per_sec"),
		scenarios: reg.Counter("campaign", "live_scenarios_done"),
		tp:        reg.Counter("campaign", "live_true_positives"),
		fp:        reg.Counter("campaign", "live_false_positives"),
		missed:    reg.Counter("campaign", "live_missed"),
		vio:       reg.Counter("campaign", "live_violations"),
	}
	for i := 0; i < shards; i++ {
		p.shardDone = append(p.shardDone, reg.Gauge("campaign", fmt.Sprintf("shard%d_scenarios_done", i)))
	}
	return p
}

func (p *progress) scenarioDone(shard int, done uint64) {
	if p == nil {
		return
	}
	p.shardDone[shard].Set(float64(done))
	p.scenarios.Inc()
	total := p.total.Add(1)
	if elapsed := time.Since(p.start).Seconds(); elapsed > 0 {
		p.perSec.Set(float64(total) / elapsed)
	}
}

func (p *progress) verdict(v *Verdict) {
	if p == nil {
		return
	}
	p.tp.Add(uint64(v.TruePositives))
	p.fp.Add(uint64(v.FalsePositives))
	p.missed.Add(uint64(v.Missed))
	p.vio.Add(uint64(len(v.Violations)))
}

// runScenario generates and executes one scenario under the baseline and
// every judged configuration.
func runScenario(seed uint64, tools []ToolConfig, env Env) *outcome {
	o := &outcome{scenario: Generate(seed)}
	base, err := ExecuteEnv(o.scenario, CfgNone, env)
	if err != nil {
		o.err = err
		return o
	}
	o.baseline = base
	for _, tc := range tools {
		res := base
		if tc != CfgNone {
			if res, err = ExecuteEnv(o.scenario, tc, env); err != nil {
				o.err = err
				return o
			}
		}
		o.runs = append(o.runs, res)
		o.verdicts = append(o.verdicts, Judge(o.scenario, tc, res))
	}
	return o
}

// aggregate folds the index-ordered outcomes into the summary and the
// telemetry registry.
func aggregate(cfg Config, env Env, tools []ToolConfig, results []*outcome) (*Summary, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry("campaign", telemetry.Config{})
	}
	latencyHist := reg.Histogram("campaign", "detection_latency_cycles", telemetry.LatencyBuckets)
	overheadHist := reg.Histogram("campaign", "overhead", telemetry.OverheadBuckets)
	tpCtr := reg.Counter("campaign", "true_positives")
	fpCtr := reg.Counter("campaign", "false_positives")
	missCtr := reg.Counter("campaign", "missed")
	vioCtr := reg.Counter("campaign", "violations")

	sum := &Summary{
		Version:    scenarioVersion,
		BaseSeed:   cfg.BaseSeed,
		Seeds:      cfg.Seeds,
		Sabotage:   cfg.Sabotage,
		FaultRate:  cfg.FaultRate,
		Storm:      cfg.Storm,
		Retire:     cfg.Retire,
		SampleRate: cfg.SampleRate,
		Violations: []Violation{},
	}
	per := make([]ConfigSummary, len(tools))
	latencies := make([][]float64, len(tools))
	overheads := make([][]float64, len(tools))
	for ti, tc := range tools {
		per[ti].Config = tc.String()
	}

	shrinks := 0
	for _, o := range results {
		if o == nil {
			continue // budget-truncated
		}
		if o.err != nil {
			return nil, o.err
		}
		sum.ScenariosRun++
		for ti, tc := range tools {
			cs := &per[ti]
			verdict, res := o.verdicts[ti], o.runs[ti]
			cs.Scenarios++
			cs.TruePositives += verdict.TruePositives
			cs.FalsePositives += verdict.FalsePositives
			cs.Missed += verdict.Missed
			cs.ExpectedMisses += verdict.ExpectedMisses
			cs.SampledMisses += verdict.SampledMisses
			cs.TotalCycles += uint64(res.Cycles)
			cs.HardwareErrors += res.Stats.HardwareErrors
			cs.CorrectedErrors += res.Corrected
			cs.FaultEvents += res.FaultEvents
			cs.PagesRetired += res.Resilience.PagesRetired
			cs.WatchesMigrated += res.Resilience.WatchesMigrated
			cs.DataLossEvents += res.Resilience.DataLossEvents
			for _, l := range verdict.Latencies {
				latencies[ti] = append(latencies[ti], float64(l))
				latencyHist.ObserveCycles(l)
			}
			if tc != CfgNone && o.baseline.Cycles > 0 {
				ov := (float64(res.Cycles) - float64(o.baseline.Cycles)) / float64(o.baseline.Cycles)
				overheads[ti] = append(overheads[ti], ov)
				overheadHist.Observe(ov)
			}
			tpCtr.Add(uint64(verdict.TruePositives))
			fpCtr.Add(uint64(verdict.FalsePositives))
			missCtr.Add(uint64(verdict.Missed))
			for _, v := range verdict.Violations {
				vioCtr.Inc()
				v.Repro = ReproCommand(v, o.scenario, env)
				if cfg.Shrink && shrinks < maxShrinks {
					shrinks++
					small := Shrink(o.scenario, tc, env, v)
					v.Shrunk = ReproCommand(v, small, env)
				}
				sum.Violations = append(sum.Violations, v)
			}
		}
	}
	for ti := range tools {
		per[ti].Latency = distOf(latencies[ti])
		per[ti].Overhead = distOf(overheads[ti])
	}
	sum.Configs = per
	return sum, nil
}

// Cycles2Micros converts simulated cycles to microseconds for display.
func Cycles2Micros(c simtime.Cycles) float64 { return c.Microseconds() }
