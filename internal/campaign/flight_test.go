package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"safemem/internal/obsrv/flight"
)

// TestSabotageCampaignWritesFlightDump is the black-box acceptance check:
// a campaign that ends in violations must leave a JSONL flight dump (the
// last-N event history) next to the shrunk repro.
func TestSabotageCampaignWritesFlightDump(t *testing.T) {
	rec := flight.New(512)
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	sum, err := Run(Config{
		Seeds: 4, BaseSeed: 42, Shards: 2, Sabotage: true,
		Tools:    []ToolConfig{CfgBoth},
		Recorder: rec, FlightDump: dump, FlightDumpN: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("sabotaged campaign reported no violations")
	}

	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("opening flight dump: %v", err)
	}
	defer f.Close()
	events, err := flight.ReadJSONL(f)
	if err != nil {
		t.Fatalf("reading flight dump: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("flight dump is empty")
	}
	kinds := map[flight.Kind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, want := range []flight.Kind{
		flight.KindCampaignStart, flight.KindShardStart, flight.KindVerdict,
		flight.KindViolation, flight.KindShardFinish, flight.KindCampaignFinish,
	} {
		if kinds[want] == 0 {
			t.Errorf("dump has no %q events (kinds: %v)", want, kinds)
		}
	}
	if kinds[flight.KindViolation] < len(sum.Violations) {
		t.Errorf("dump has %d violation events, summary has %d violations",
			kinds[flight.KindViolation], len(sum.Violations))
	}
}

// TestGreenCampaignWritesNoDump pins the converse: a clean campaign leaves
// no black box behind.
func TestGreenCampaignWritesNoDump(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	sum, err := Run(Config{
		Seeds: 2, BaseSeed: 7, Tools: []ToolConfig{CfgBoth},
		Recorder: flight.New(64), FlightDump: dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("clean campaign produced violations: %+v", sum.Violations)
	}
	if _, err := os.Stat(dump); !os.IsNotExist(err) {
		t.Errorf("dump file exists after a green campaign (stat err: %v)", err)
	}
}
