package campaign

import (
	"bytes"
	"strings"
	"testing"

	"safemem/internal/simtime"
)

// TestCampaignShort is the CI entry point: a fixed-seed mini-campaign that
// must finish with zero oracle violations and a healthy true-positive count.
func TestCampaignShort(t *testing.T) {
	sum, err := Run(Config{Seeds: 12, BaseSeed: 42, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ScenariosRun != 12 {
		t.Fatalf("ScenariosRun = %d, want 12", sum.ScenariosRun)
	}
	if len(sum.Violations) != 0 {
		for _, v := range sum.Violations {
			t.Errorf("violation: %s %s site=%#x cfg=%s: %s", v.Kind, v.BugKind, v.Site, v.Config, v.Detail)
		}
		t.Fatalf("campaign produced %d oracle violations", len(sum.Violations))
	}
	for _, cs := range sum.Configs {
		switch cs.Config {
		case "ml", "both":
			if cs.TruePositives == 0 {
				t.Errorf("config %s: no true positives across %d scenarios", cs.Config, cs.Scenarios)
			}
		}
		if cs.FalsePositives != 0 || cs.Missed != 0 {
			t.Errorf("config %s: FP=%d missed=%d, want 0/0", cs.Config, cs.FalsePositives, cs.Missed)
		}
		if cs.Overhead == nil || cs.Overhead.Count != cs.Scenarios {
			t.Errorf("config %s: missing overhead distribution", cs.Config)
		}
	}
}

// TestShardDeterminism is the acceptance check: the summary JSON must be
// byte-identical regardless of the shard count.
func TestShardDeterminism(t *testing.T) {
	one, err := Run(Config{Seeds: 10, BaseSeed: 7, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(Config{Seeds: 10, BaseSeed: 7, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := one.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j4, err := many.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatalf("summaries differ between 1 and 4 shards:\n--- shards=1\n%s\n--- shards=4\n%s", j1, j4)
	}
}

// TestGenerateDeterministic pins that a seed means the same scenario on
// every call (the repro-command contract).
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xdeadbeef, subSeed(42, 3)} {
		a, b := Generate(seed), Generate(seed)
		if a.Encode() != b.Encode() {
			t.Fatalf("seed %#x: two Generate calls disagree", seed)
		}
	}
}

// TestScenarioRoundTrip checks the -scenario wire form: decode(encode(s))
// must reproduce the script, plan and near-miss set exactly.
func TestScenarioRoundTrip(t *testing.T) {
	for i := 0; i < 25; i++ {
		s := Generate(subSeed(99, i))
		text := s.Encode()
		d, err := Decode(text)
		if err != nil {
			t.Fatalf("seed idx %d: decode: %v", i, err)
		}
		if got := d.Encode(); got != text {
			t.Fatalf("seed idx %d: round trip drifted:\n in: %s\nout: %s", i, text, got)
		}
		if len(d.Ops) != len(s.Ops) || len(d.Plan) != len(s.Plan) || len(d.Misses) != len(s.Misses) {
			t.Fatalf("seed idx %d: shape changed", i)
		}
		if d.HWFaults != s.HWFaults {
			t.Fatalf("seed idx %d: HWFaults %d != %d", i, d.HWFaults, s.HWFaults)
		}
	}
	if _, err := Decode("cv0|||"); err == nil {
		t.Error("decode accepted wrong version")
	}
	if _, err := Decode("cv1|Z1:2||"); err == nil {
		t.Error("decode accepted unknown op")
	}
}

// extractScenario pulls the quoted -scenario payload out of a repro command.
func extractScenario(t *testing.T, cmd string) *Scenario {
	t.Helper()
	i := strings.Index(cmd, "-scenario='")
	if i < 0 {
		t.Fatalf("repro command lacks -scenario: %q", cmd)
	}
	rest := cmd[i+len("-scenario='"):]
	j := strings.IndexByte(rest, '\'')
	if j < 0 {
		t.Fatalf("unterminated -scenario in %q", cmd)
	}
	s, err := Decode(rest[:j])
	if err != nil {
		t.Fatalf("repro scenario does not decode: %v", err)
	}
	return s
}

// TestSabotageShrinksToRepro is the broken-oracle acceptance check: with
// corruption detection silently disabled, any scenario that plants a
// corruption-class bug must yield violations, and each shrunk repro command
// must replay to the same failure with no more ops than the original.
func TestSabotageShrinksToRepro(t *testing.T) {
	// Find a seed whose plan has a corruption-class plant (most do).
	base, idx := uint64(42), -1
	for i := 0; i < 32; i++ {
		s := Generate(subSeed(base, i))
		for _, p := range s.Plan {
			if p.Kind == BugOverflow || p.Kind == BugUnderflow || p.Kind == BugUAF {
				idx = i
				break
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		t.Fatal("no corruption-planting scenario in 32 seeds — generator broken")
	}

	seed := subSeed(base, idx)
	orig := Generate(seed)
	res, err := Execute(orig, CfgBoth, true)
	if err != nil {
		t.Fatal(err)
	}
	verdict := Judge(orig, CfgBoth, res)
	if len(verdict.Violations) == 0 {
		t.Fatal("sabotaged run produced no violations — oracle cannot see broken detection")
	}

	target := verdict.Violations[0]
	small := Shrink(orig, CfgBoth, Env{Sabotage: true}, target)
	if len(small.Ops) > len(orig.Ops) {
		t.Fatalf("shrink grew the scenario: %d -> %d ops", len(orig.Ops), len(small.Ops))
	}

	// The printed repro must replay to the same failure.
	cmd := ReproCommand(target, small, Env{Sabotage: true})
	if !strings.Contains(cmd, "safemem-fuzz -seed=") || !strings.Contains(cmd, "-sabotage") {
		t.Fatalf("malformed repro command: %q", cmd)
	}
	replay := extractScenario(t, cmd)
	rres, err := Execute(replay, CfgBoth, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range Judge(replay, CfgBoth, rres).Violations {
		if target.sameFailure(w) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("shrunk repro does not reproduce the %s/%s violation:\n%s", target.Kind, target.BugKind, cmd)
	}
	t.Logf("shrunk %d ops -> %d ops; repro: %s", len(orig.Ops), len(small.Ops), cmd)
}

// TestSabotageCampaignEndToEnd runs the sabotage path through Run itself:
// violations must surface in the summary with repro and shrunk commands.
func TestSabotageCampaignEndToEnd(t *testing.T) {
	sum, err := Run(Config{Seeds: 4, BaseSeed: 42, Shards: 2, Sabotage: true, Shrink: true,
		Tools: []ToolConfig{CfgBoth}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) == 0 {
		t.Fatal("sabotaged campaign reported no violations")
	}
	for _, v := range sum.Violations[:1] {
		if v.Repro == "" {
			t.Error("violation missing repro command")
		}
		if v.Shrunk == "" {
			t.Error("violation missing shrunk repro command")
		}
	}
}

// TestStormCampaign is the hardware-resilience acceptance check: a seeded
// campaign run on flaky DIMMs — background fault process with storm episodes,
// scrub daemon, page retirement — must complete with zero panics and zero
// oracle violations, leave resilience evidence in the aggregated counters,
// and stay byte-deterministic across shard counts.
func TestStormCampaign(t *testing.T) {
	run := func(shards int) *Summary {
		t.Helper()
		sum, err := Run(Config{
			Seeds: 6, BaseSeed: 411, Shards: shards,
			FaultRate: 40, Storm: true, Retire: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	sum := run(3)
	if sum.ScenariosRun != 6 {
		t.Fatalf("ScenariosRun = %d, want 6", sum.ScenariosRun)
	}
	if len(sum.Violations) != 0 {
		for _, v := range sum.Violations {
			t.Errorf("violation: %s %s site=%#x cfg=%s: %s", v.Kind, v.BugKind, v.Site, v.Config, v.Detail)
		}
		t.Fatalf("storm campaign produced %d oracle violations", len(sum.Violations))
	}
	var faults, corrected uint64
	for _, cs := range sum.Configs {
		if cs.FalsePositives != 0 || cs.Missed != 0 {
			t.Errorf("config %s: FP=%d missed=%d under the storm, want 0/0",
				cs.Config, cs.FalsePositives, cs.Missed)
		}
		faults += cs.FaultEvents
		corrected += cs.CorrectedErrors
	}
	if faults == 0 {
		t.Fatal("fault process planted nothing — the storm never happened")
	}
	if corrected == 0 {
		t.Fatal("controller corrected nothing — scrub daemon/demand correction dead")
	}

	// Same seeds, different shard count: byte-identical summary.
	j3, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j1, err := run(1).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatalf("storm summaries differ between 1 and 3 shards:\n--- shards=1\n%s\n--- shards=3\n%s", j1, j3)
	}
}

// TestGeneratorTimingInvariants pins the relationships between the
// generator's timing constants and Tuning() that the bug templates' trigger
// guarantees rest on. A change to either side that breaks an inequality
// shows up here, not as flaky campaign failures.
func TestGeneratorTimingInvariants(t *testing.T) {
	o := Tuning()
	if simtime.Cycles(genWarmup) <= o.WarmupTime {
		t.Errorf("prologue advance %d must exceed WarmupTime %d", genWarmup, o.WarmupTime)
	}
	if simtime.Cycles(genCloseOut) <= o.LeakConfirmTime {
		t.Errorf("closer advance %d must exceed LeakConfirmTime %d", genCloseOut, o.LeakConfirmTime)
	}
	if simtime.Cycles(genCloseOut) <= o.CheckingPeriod {
		t.Errorf("closer advance %d must exceed CheckingPeriod %d", genCloseOut, o.CheckingPeriod)
	}
	// SLeak: the aging advance must push the leaked object past the
	// suspicion bound, factor × established maximal lifetime (tolerance
	// only gates stability accrual, not suspicion).
	bound := o.SLeakLifetimeFactor * genChurnLife
	if float64(genAgeAdvance) <= bound {
		t.Errorf("aging advance %d must exceed lifetime bound %.0f", genAgeAdvance, bound)
	}
	if simtime.Cycles(genAgeAdvance) <= o.CheckingPeriod {
		t.Errorf("aging advance %d must exceed CheckingPeriod %d", genAgeAdvance, o.CheckingPeriod)
	}
	// Two inter-free gaps of the prologue must establish stability.
	if simtime.Cycles(2*genChurnLife) <= o.SLeakStableTime {
		t.Errorf("2×churn lifetime %d must exceed SLeakStableTime %d", 2*genChurnLife, o.SLeakStableTime)
	}
	// ALeak: the trigger's recent-allocation gap must land inside the
	// recent window yet still let a periodic check fire.
	if simtime.Cycles(genRecentGap) <= o.CheckingPeriod {
		t.Errorf("recent gap %d must exceed CheckingPeriod %d", genRecentGap, o.CheckingPeriod)
	}
	if simtime.Cycles(genRecentGap) >= o.ALeakRecentWindow {
		t.Errorf("recent gap %d must stay inside ALeakRecentWindow %d", genRecentGap, o.ALeakRecentWindow)
	}
	if genALeakAllocs+4 <= o.ALeakLiveThreshold {
		t.Errorf("aleak allocations %d+4 must exceed ALeakLiveThreshold %d", genALeakAllocs, o.ALeakLiveThreshold)
	}
}
