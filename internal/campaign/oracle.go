package campaign

import (
	"fmt"

	safemem "safemem/internal/core"
	"safemem/internal/simtime"
)

// ViolationKind classifies an oracle failure.
type ViolationKind string

const (
	// ViolationFalsePositive is a report matching no expected plant — a
	// duplicate, a wrong-kind report, or a report at a near-miss or benign
	// site.
	ViolationFalsePositive ViolationKind = "false-positive"
	// ViolationMissed is a planted bug the configuration should have
	// detected but did not.
	ViolationMissed ViolationKind = "missed"
	// ViolationCrash is a scenario that terminated abnormally — campaign
	// scenarios are constructed to run to completion under every
	// configuration.
	ViolationCrash ViolationKind = "crash"
	// ViolationHardware is a mismatch between planted hardware faults and
	// SafeMem's hardware-error counter under a corruption-detecting
	// configuration.
	ViolationHardware ViolationKind = "hardware"
)

// Violation is one oracle failure, carrying everything needed to reproduce
// it: the scenario seed, the configuration, and (when the campaign runner
// fills them in) the repro command and the shrunken scenario.
type Violation struct {
	Seed   uint64        `json:"seed"`
	Config string        `json:"config"`
	Kind   ViolationKind `json:"kind"`
	// BugKind is the planted kind for missed plants, or the reported kind
	// for false positives.
	BugKind string `json:"bug_kind,omitempty"`
	Site    uint64 `json:"site,omitempty"`
	// Strand is the scenario strand implicated, or -1 when unknown.
	Strand int    `json:"strand"`
	Detail string `json:"detail"`
	Repro  string `json:"repro,omitempty"`
	Shrunk string `json:"shrunk,omitempty"`
}

// sameFailure reports whether two violations describe the same oracle
// failure — the identity the shrinker must preserve while cutting ops.
func (v Violation) sameFailure(w Violation) bool {
	return v.Kind == w.Kind && v.BugKind == w.BugKind && v.Site == w.Site
}

// Verdict is the oracle's judgement of one ⟨scenario, configuration⟩ run.
type Verdict struct {
	TruePositives  int
	FalsePositives int
	Missed         int
	// ExpectedMisses counts plants the configuration does not claim to
	// detect (e.g. a leak under CfgMC) — correct silence, not a violation.
	ExpectedMisses int
	// SampledMisses counts plants a CfgSample run did not detect because
	// their allocation was never admitted to the sampled pool — the
	// designed behaviour of a sampling tool, distinct from Missed (a
	// sampled plant that went unreported, which IS a violation).
	SampledMisses int
	// Latencies holds each true positive's detection latency.
	Latencies  []simtime.Cycles
	Violations []Violation
}

// expectedDetected reports whether cfg claims to detect kind.
func expectedDetected(kind BugKind, cfg ToolConfig) bool {
	switch kind {
	case BugALeak, BugSLeak:
		return cfg.Leaks()
	case BugOverflow, BugUnderflow, BugUAF:
		return cfg.Corruption()
	default:
		return false
	}
}

// reportMatches reports whether a SafeMem report is the detection of plant
// kind: the kinds correspond and the call-site signatures agree.
func reportMatches(kind BugKind, r safemem.BugReport) bool {
	switch kind {
	case BugALeak:
		return r.Kind == safemem.BugALeak
	case BugSLeak:
		return r.Kind == safemem.BugSLeak
	case BugOverflow:
		return r.Kind == safemem.BugOverflow
	case BugUnderflow:
		return r.Kind == safemem.BugUnderflow
	case BugUAF:
		return r.Kind == safemem.BugFreedAccess
	default:
		return false
	}
}

// PlantDetected reports whether reports contains a detection of plant p —
// the same kind/site matching the oracle uses. The frontier experiment
// uses it to score per-plant detection across a fleet of sampled runs.
func PlantDetected(p Planted, reports []safemem.BugReport) bool {
	for _, r := range reports {
		if r.Site == p.Site && reportMatches(p.Kind, r) {
			return true
		}
	}
	return false
}

// Judge classifies every report of a run against the scenario's ground
// truth. Each plant expects exactly one report of its kind at its site
// under configurations that detect that kind; everything else a report can
// be — duplicate, wrong kind, near-miss site, unknown site — is a false
// positive, and every unmatched expected plant is a miss.
func Judge(s *Scenario, cfg ToolConfig, res *ExecResult) *Verdict {
	v := &Verdict{}
	cfgName := cfg.String()

	if res.Err != nil {
		v.Violations = append(v.Violations, Violation{
			Seed: s.Seed, Config: cfgName, Kind: ViolationCrash, Strand: -1,
			Detail: fmt.Sprintf("scenario terminated abnormally: %v", res.Err),
		})
	}

	claimed := make([]bool, len(s.Plan))
	for _, r := range res.Reports {
		matched := false
		for i, p := range s.Plan {
			if !claimed[i] && p.Site == r.Site && reportMatches(p.Kind, r) && expectedDetected(p.Kind, cfg) {
				claimed[i] = true
				matched = true
				v.TruePositives++
				v.Latencies = append(v.Latencies, r.Latency)
				break
			}
		}
		if matched {
			continue
		}
		v.FalsePositives++
		detail := fmt.Sprintf("unexpected %s report at site %#x: %s", r.Kind, r.Site, r.Details)
		strand := -1
		for _, nm := range s.Misses {
			if nm.Site == r.Site {
				detail = fmt.Sprintf("near-miss %q (site %#x) was reported as %s: %s", nm.Name, r.Site, r.Kind, r.Details)
				strand = nm.Strand
				break
			}
		}
		if strand == -1 {
			for _, p := range s.Plan {
				if p.Site == r.Site {
					detail = fmt.Sprintf("plant %s at site %#x drew an extra/mismatched %s report: %s", p.Kind, r.Site, r.Kind, r.Details)
					strand = p.Strand
					break
				}
			}
		}
		v.Violations = append(v.Violations, Violation{
			Seed: s.Seed, Config: cfgName, Kind: ViolationFalsePositive,
			BugKind: r.Kind.String(), Site: r.Site, Strand: strand, Detail: detail,
		})
	}

	for i, p := range s.Plan {
		if claimed[i] {
			continue
		}
		if !expectedDetected(p.Kind, cfg) {
			v.ExpectedMisses++
			continue
		}
		if cfg == CfgSample && !res.SampledSites[p.Site] {
			// The plant's allocation fell outside the sampled pool: a
			// sampling tool is *supposed* to stay silent here.
			v.SampledMisses++
			continue
		}
		v.Missed++
		v.Violations = append(v.Violations, Violation{
			Seed: s.Seed, Config: cfgName, Kind: ViolationMissed,
			BugKind: string(p.Kind), Site: p.Site, Strand: p.Strand,
			Detail: fmt.Sprintf("planted %s at site %#x was not reported", p.Kind, p.Site),
		})
	}

	judgeHardware(s, cfg, res, v)
	return v
}

// judgeHardware applies the hardware-fault invariants of a run.
//
// Without the random fault model, scripted plants are the only hardware in
// the scenario, so accounting is exact: every planted pad fault must show up
// as exactly one SafeMem repair, every planted correctable must be corrected
// by the controller, and the kernel's retirement counters must be untouched
// (page retirement with nothing planted would mean the detector's own
// scrambles are being mistaken for failing DRAM).
//
// With the fault model on, random faults add repairs beyond the scripted
// plants, so the repair count becomes a floor — a scripted pad fault is
// still either repaired by SafeMem (watched) or absorbed as a kernel
// data-loss event (the pad's line was quarantined by earlier random faults).
// Retirement activity is legitimate there, but only under RetireAndContinue:
// any retirement or data-loss counter moving under the stock panic policy is
// a violation in every environment.
func judgeHardware(s *Scenario, cfg ToolConfig, res *ExecResult, v *Verdict) {
	cfgName := cfg.String()
	hw := func(detail string) {
		v.Violations = append(v.Violations, Violation{
			Seed: s.Seed, Config: cfgName, Kind: ViolationHardware, Strand: -1,
			Detail: detail,
		})
	}

	if cfg.Corruption() {
		repaired := res.Stats.HardwareErrors
		absorbed := res.Resilience.DataLossEvents
		if !res.FaultModel && repaired != uint64(res.HWPlanted) {
			hw(fmt.Sprintf("planted %d hardware faults but SafeMem repaired %d",
				res.HWPlanted, repaired))
		}
		if res.FaultModel && repaired+absorbed < uint64(res.HWPlanted) {
			hw(fmt.Sprintf("planted %d hardware faults but only %d repaired + %d absorbed",
				res.HWPlanted, repaired, absorbed))
		}
	}

	if res.Corrected < uint64(res.CEPlanted) {
		hw(fmt.Sprintf("planted %d correctable faults but controller corrected only %d",
			res.CEPlanted, res.Corrected))
	}

	r := res.Resilience
	if !res.Retire && (r.PagesRetired|r.WatchesMigrated|r.DataLossEvents|r.RetireFailures) != 0 {
		hw(fmt.Sprintf("retirement counters moved under the stock panic policy: retired=%d migrated=%d loss=%d failed=%d",
			r.PagesRetired, r.WatchesMigrated, r.DataLossEvents, r.RetireFailures))
	}
}
