package campaign

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"safemem/internal/snapshot"
)

// snapStatsDelta runs f and returns how the campaign snapshot store's
// counters moved.
func snapStatsDelta(t *testing.T, f func()) snapshot.Stats {
	t.Helper()
	b := ExecSnapshotStats()
	f()
	a := ExecSnapshotStats()
	return snapshot.Stats{
		Hits:     a.Hits - b.Hits,
		Misses:   a.Misses - b.Misses,
		Drops:    a.Drops - b.Drops,
		Releases: a.Releases - b.Releases,
	}
}

// withSnapshots runs f with the snapshot fast path enabled, flushing the
// pooled executors afterwards so tests stay independent.
func withSnapshots(t *testing.T, f func()) {
	t.Helper()
	snapshot.SetEnabled(true)
	defer func() {
		snapshot.SetEnabled(false)
		FlushSnapshots()
	}()
	f()
}

// TestSnapshotExecEquivalence pins the snapshot fast path byte-for-byte
// against the rebuild path at the single-run level: every tool
// configuration, under plain, sabotaged and flaky-DIMM environments, over
// several seeds per configuration so later runs execute on restored — not
// freshly built — executors.
func TestSnapshotExecEquivalence(t *testing.T) {
	envs := map[string]Env{
		"plain":    {},
		"sabotage": {Sabotage: true},
		"faults":   {FaultRate: 4, Storm: true, Retire: true},
	}
	for name, env := range envs {
		for _, cfg := range AllConfigs {
			for seed := uint64(1); seed <= 3; seed++ {
				s := Generate(seed * 1000003)
				want, err := ExecuteEnv(s, cfg, env)
				if err != nil {
					t.Fatalf("%s/%s/seed %d rebuild: %v", name, cfg, seed, err)
				}
				var got *ExecResult
				withSnapshots(t, func() {
					// Two snapshot runs back to back: the first warms the
					// pool (miss), the second runs on a restored runner.
					for i := 0; i < 2; i++ {
						got, err = ExecuteEnv(s, cfg, env)
						if err != nil {
							t.Fatalf("%s/%s/seed %d snapshot run %d: %v", name, cfg, seed, i, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s/%s/seed %d snapshot run %d diverges:\nrebuild:  %+v\nsnapshot: %+v",
								name, cfg, seed, i, want, got)
						}
					}
				})
			}
		}
	}
}

// TestSnapshotSummaryEquivalence pins the end-to-end contract from the
// issue: a whole campaign's summary JSON is byte-identical with snapshots
// on or off, at shard counts 1 and 3, for plain and flaky-DIMM-storm
// campaigns.
func TestSnapshotSummaryEquivalence(t *testing.T) {
	campaigns := map[string]Config{
		"plain": {Seeds: 4, BaseSeed: 77, Tools: AllConfigs},
		"storm": {Seeds: 4, BaseSeed: 77, Tools: AllConfigs, FaultRate: 5, Storm: true, Retire: true},
	}
	for name, base := range campaigns {
		run := func(shards int, snap bool) []byte {
			t.Helper()
			cfg := base
			cfg.Shards = shards
			var out []byte
			body := func() {
				sum, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s campaign (shards=%d snap=%t): %v", name, shards, snap, err)
				}
				out, err = sum.JSON()
				if err != nil {
					t.Fatalf("summary JSON: %v", err)
				}
			}
			if snap {
				withSnapshots(t, body)
			} else {
				body()
			}
			return out
		}
		want := run(1, false)
		for _, shards := range []int{1, 3} {
			if got := run(shards, true); !bytes.Equal(got, want) {
				t.Errorf("%s campaign summary diverges with snapshots on at %d shards:\nwant: %s\ngot:  %s",
					name, shards, want, got)
			}
		}
	}
}

// TestSnapshotPanickedRunDropsRunner pins the taint rule at the store
// level: a panic unwinding out of ExecuteEnv (into a recovering caller,
// exactly like a fleet worker) must drop the pooled runner — never release
// or re-snapshot it.
func TestSnapshotPanickedRunDropsRunner(t *testing.T) {
	withSnapshots(t, func() {
		s := Generate(7)
		// Warm the pool so the panicking run executes on a pooled runner.
		if _, err := ExecuteEnv(s, CfgBoth, Env{}); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
		d := snapStatsDelta(t, func() {
			defer func() {
				if recover() == nil {
					t.Fatal("hooked panic did not propagate")
				}
			}()
			ExecuteEnv(s, CfgBoth, Env{Hook: func(op int) error {
				if op == len(s.Ops)/2 {
					panic("chaos: simulated worker crash")
				}
				return nil
			}})
		})
		if d.Drops != 1 || d.Releases != 0 {
			t.Fatalf("panicked run: store delta %+v, want exactly 1 drop and 0 releases", d)
		}
		// The next acquisition must warm a fresh runner, not reuse taint.
		d = snapStatsDelta(t, func() {
			if _, err := ExecuteEnv(s, CfgBoth, Env{}); err != nil {
				t.Fatalf("post-panic run: %v", err)
			}
		})
		if d.Misses != 1 || d.Hits != 0 {
			t.Fatalf("post-panic acquire: store delta %+v, want a cold miss", d)
		}
	})
}

// TestSnapshotErroredRunDropsRunner pins the same taint rule for runs that
// terminate with an error instead of a panic.
func TestSnapshotErroredRunDropsRunner(t *testing.T) {
	withSnapshots(t, func() {
		s := Generate(11)
		if _, err := ExecuteEnv(s, CfgML, Env{}); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
		boom := errors.New("deadline exceeded")
		d := snapStatsDelta(t, func() {
			res, err := ExecuteEnv(s, CfgML, Env{Hook: func(op int) error {
				if op == 2 {
					return boom
				}
				return nil
			}})
			if err != nil {
				t.Fatalf("errored run: %v", err)
			}
			if !errors.Is(res.Err, boom) {
				t.Fatalf("errored run result: %v, want %v", res.Err, boom)
			}
		})
		if d.Drops != 1 || d.Releases != 0 {
			t.Fatalf("errored run: store delta %+v, want exactly 1 drop and 0 releases", d)
		}
	})
}

// TestSnapshotCleanRunsPool pins the happy path: clean runs under one
// configuration miss once, then hit the pool, releasing after every run.
func TestSnapshotCleanRunsPool(t *testing.T) {
	withSnapshots(t, func() {
		d := snapStatsDelta(t, func() {
			for seed := uint64(1); seed <= 3; seed++ {
				if _, err := ExecuteEnv(Generate(seed), CfgMC, Env{}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
		want := snapshot.Stats{Hits: 2, Misses: 1, Releases: 3}
		if d != want {
			t.Fatalf("store delta %+v, want %+v", d, want)
		}
	})
}

// TestSnapshotDisabledBypassesStore pins the kill switch: with the layer
// off (the default), ExecuteEnv never touches the snapshot store.
func TestSnapshotDisabledBypassesStore(t *testing.T) {
	d := snapStatsDelta(t, func() {
		if _, err := ExecuteEnv(Generate(5), CfgBoth, Env{}); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if d != (snapshot.Stats{}) {
		t.Fatalf("snapshot store touched while disabled: %+v", d)
	}
}

// TestMachinePoolingToggle pins SetMachinePooling: results are identical
// with pooling off (the campaign-throughput experiment's cold pass relies
// on this), and the previous value round-trips.
func TestMachinePoolingToggle(t *testing.T) {
	s := Generate(13)
	want, err := ExecuteEnv(s, CfgBoth, Env{})
	if err != nil {
		t.Fatalf("pooled run: %v", err)
	}
	prev := SetMachinePooling(false)
	defer SetMachinePooling(prev)
	if !prev {
		t.Fatal("machine pooling should default on")
	}
	released, dropped := poolDelta(t, func() {
		got, err := ExecuteEnv(s, CfgBoth, Env{})
		if err != nil {
			t.Fatalf("unpooled run: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("unpooled run diverges:\npooled:   %+v\nunpooled: %+v", want, got)
		}
	})
	if released != 0 {
		t.Fatalf("unpooled run released %d machines into the pool, want 0", released)
	}
	_ = dropped // the unpooled machine counts as dropped; only the release matters here
}
