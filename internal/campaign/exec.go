package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	safemem "safemem/internal/core"
	"safemem/internal/faultmodel"
	"safemem/internal/heap"
	"safemem/internal/inject"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/sampletool"
	"safemem/internal/simtime"
	"safemem/internal/snapshot"
	"safemem/internal/vm"
)

// ToolConfig selects which SafeMem detectors a scenario runs under.
type ToolConfig int

const (
	// CfgNone runs uninstrumented — the overhead baseline, and a crash
	// canary for the generator itself.
	CfgNone ToolConfig = iota
	// CfgML enables only leak detection.
	CfgML
	// CfgMC enables only corruption detection.
	CfgMC
	// CfgBoth enables the full tool.
	CfgBoth
	// CfgSample runs the GWP-ASan-style sampling tool: corruption detection
	// over the ~1/N sampled allocation pool only (internal/sampletool). A
	// plant whose allocation was not sampled is an expected sampled-miss,
	// not a violation — the oracle checks ExecResult.SampledSites.
	CfgSample
)

// AllConfigs lists every configuration, baseline first.
var AllConfigs = []ToolConfig{CfgNone, CfgML, CfgMC, CfgBoth, CfgSample}

// String names the configuration (also the -tool flag vocabulary).
func (c ToolConfig) String() string {
	switch c {
	case CfgNone:
		return "none"
	case CfgML:
		return "ml"
	case CfgMC:
		return "mc"
	case CfgBoth:
		return "both"
	case CfgSample:
		return "sample"
	default:
		return fmt.Sprintf("ToolConfig(%d)", int(c))
	}
}

// Leaks reports whether the configuration detects memory leaks. The
// sampling tool deliberately does not: leak heuristics compare a group's
// live population against full-population thresholds, which a sampled
// sub-population cannot meet deterministically (GWP-ASan makes the same
// scoping choice — sampling targets corruption).
func (c ToolConfig) Leaks() bool { return c == CfgML || c == CfgBoth }

// Corruption reports whether the configuration detects memory corruption
// (for CfgSample: on sampled allocations only).
func (c ToolConfig) Corruption() bool { return c == CfgMC || c == CfgBoth || c == CfgSample }

// ParseToolConfig resolves a -tool flag value.
func ParseToolConfig(s string) (ToolConfig, error) {
	for _, c := range AllConfigs {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown tool config %q (want none|ml|mc|both|sample)", s)
}

// Tuning returns the SafeMem options every campaign run uses: the stock
// detection logic with windows scaled to the generator's scenario lengths
// (a few million cycles, versus the multi-second server runs the default
// options target). The generator's timing constants are sized against
// these values; TestGeneratorTimingInvariants pins the relationships.
func Tuning() safemem.Options {
	o := safemem.DefaultOptions()
	o.WarmupTime = 200_000
	o.CheckingPeriod = 100_000
	o.ALeakLiveThreshold = 16
	o.ALeakRecentWindow = 400_000
	o.SLeakStableTime = 200_000
	o.SLeakLifetimeFactor = 2.0
	o.LifetimeTolerance = 0.25
	o.LeakConfirmTime = 300_000
	o.MaxSuspectsPerGroup = 3
	// Campaign verdicts are strict — every planted bug must be caught — so
	// the machine-wide corruption-arming pause must never engage at campaign
	// fault densities (a paused detector would turn plants into "missed"
	// noise). The pause itself is pinned by the core degradation tests;
	// per-line quarantine keeps its stock threshold and IS exercised here
	// (the flaky-line template).
	o.DegradeErrorThreshold = 256
	return o
}

// Env is the execution environment a whole campaign shares: the sabotage
// self-test switch and the hardware-fault knobs (the -fault-rate, -storm and
// -retire flags).
type Env struct {
	// Sabotage silently disables corruption detection while the declared
	// configuration still claims it (see Execute).
	Sabotage bool
	// FaultRate, when positive, runs a background DRAM fault process over
	// the heap arena at this many fault events per million cycles, seeded
	// from the scenario seed.
	FaultRate float64
	// Storm enables error-storm episodes in the fault process.
	Storm bool
	// Retire switches the kernel to RetireAndContinue. Without it the fault
	// process is restricted to single-bit (correctable) plants: a random
	// double-bit fault on an unwatched line would panic the stock kernel,
	// and a crash the generator did not plan is oracle noise, not signal.
	Retire bool
	// SampleRate is the sampling rate N for CfgSample runs (≤ 0 means
	// DefaultSampleRate). Other configurations ignore it.
	SampleRate int
	// SampleSeed, when non-zero, overrides the sampling-decision seed; zero
	// derives it from the scenario seed, keeping campaigns shard-
	// deterministic. The frontier experiment sets it per fleet member.
	SampleSeed uint64
	// Ctx, when non-nil, is polled between scenario ops: once it is
	// cancelled the run terminates with the context's error as ExecResult.Err
	// and the machine is discarded, not repooled. This is the serving
	// layer's deadline/drain integration point; it is host-side only, so an
	// environment whose context never fires yields bit-identical results to
	// one with no context at all.
	Ctx context.Context
	// Hook, when non-nil, runs host-side before each op (with the op index).
	// A non-nil return terminates the run with that error; a panic unwinds
	// through Machine.Run's recover untouched. The fleet's chaos mode uses
	// it to inject stuck, slow and crashing simulations mid-run; like Ctx it
	// never influences the simulation when it stays passive.
	Hook func(op int) error
}

// DefaultSampleRate is the CfgSample rate when none is configured — the
// GWP-ASan-ish "watch about one allocation in eight" regime, dense enough
// that campaign scenarios still sample some plants.
const DefaultSampleRate = 8

// sampleSeedSalt decorrelates the default sampling-decision stream from
// the scenario's own generator stream ("SAMPLE" in ASCII).
const sampleSeedSalt uint64 = 0x53414d504c45

// faultModel reports whether the environment runs the background process.
func (e Env) faultModel() bool { return e.FaultRate > 0 }

// ExecResult is everything one scenario run produced.
type ExecResult struct {
	// Err is the run's abnormal termination, if any (kernel panic,
	// segmentation fault). Campaign scenarios are constructed to run to
	// completion, so any error is an oracle violation.
	Err error
	// Reports are SafeMem's bug reports in detection order (empty under
	// CfgNone).
	Reports []safemem.BugReport
	// Stats are SafeMem's activity counters.
	Stats safemem.Stats
	// Cycles is the simulated duration of the run.
	Cycles simtime.Cycles
	// HWPlanted counts hardware faults actually planted (OpHWFault executes
	// only under configurations that declare corruption detection).
	HWPlanted int
	// CEPlanted counts scripted correctable single-bit plants (OpCEFault,
	// planted under every configuration).
	CEPlanted int
	// Corrected is the controller's total of corrected single-bit errors
	// (demand corrections plus scrub corrections).
	Corrected uint64
	// Resilience is the kernel's hardware-fault survival counters.
	Resilience kernel.ResilienceStats
	// FaultEvents counts background fault-process events (zero unless the
	// environment enables the fault model).
	FaultEvents uint64
	// FaultModel and Retire echo the environment, so the oracle knows which
	// hardware invariants apply to this run.
	FaultModel bool
	Retire     bool
	// SampleRate echoes the effective sampling rate of a CfgSample run
	// (zero otherwise).
	SampleRate int
	// SampledSites records, for CfgSample runs, whether the most recent
	// allocation at each call site was admitted to the sampled pool — the
	// ground truth the oracle needs to tell a sampled-miss from a real
	// miss. Plant sites allocate exactly once, so last-wins is exact.
	SampledSites map[uint64]bool
}

// execMemBytes is the simulated DRAM size of every executor machine.
const execMemBytes = 32 << 20

// machinePool recycles executor machines across scenario runs. A campaign
// builds several machines per scenario (the baseline plus every judged
// configuration), and at 32 MiB of simulated DRAM each, constructing them
// dominates short scenarios. Recycled machines are observationally
// identical to fresh ones — Machine.Recycle resets every component to its
// just-constructed state, pinned by TestMachineRecycleEquivalence in
// internal/machine and TestRecycleEquivalence here — so pooling changes
// host time only, never simulated results.
var machinePool sync.Pool

// poolMachines lets tests force every run onto a fresh machine.
var poolMachines = true

// SetMachinePooling turns executor machine pooling on or off, returning the
// previous setting. Off forces every rebuild-path run onto a freshly built
// machine — the true cold-start cost a new shard or fleet worker pays. The
// campaign-throughput experiment uses it for its cold pass; results are
// unaffected either way (pooling is host-side only).
func SetMachinePooling(on bool) (prev bool) {
	prev = poolMachines
	poolMachines = on
	return prev
}

// poolReleased / poolDropped count machines recycled into versus withheld
// from the pool. Host-side observability only — but they are also the
// crash-safety pin: TestPanickedMachineNeverRepooled asserts that a run
// which panicked or errored advances only the dropped counter. A machine
// abandoned mid-panic (its frames unwound before any release call) counts
// as dropped too, via the deferred accounting in ExecuteEnv.
var poolReleased, poolDropped atomic.Uint64

// PoolStats reports (released, dropped) machine counts since process start.
func PoolStats() (released, dropped uint64) {
	return poolReleased.Load(), poolDropped.Load()
}

// execMachine draws a machine from the pool or builds a fresh one. Pooled
// machines were recycled on release, so they arrive clean.
func execMachine() (*machine.Machine, error) {
	if poolMachines {
		if v := machinePool.Get(); v != nil {
			return v.(*machine.Machine), nil
		}
	}
	return machine.New(machine.Config{MemBytes: execMemBytes})
}

// releaseMachine recycles a machine back into the pool. Only machines whose
// run terminated normally are released; a machine that panicked mid-access
// or failed setup is dropped, trading a reallocation for certainty.
func releaseMachine(m *machine.Machine) {
	if !poolMachines {
		return
	}
	m.Recycle()
	machinePool.Put(m)
	poolReleased.Add(1)
}

type slotState struct {
	addr      vm.VAddr
	size      uint64
	allocated bool
	ever      bool
}

// Execute runs one scenario under one tool configuration on a fresh
// machine. With sabotage set, corruption detection is silently disabled
// while the configuration still declares it — the oracle keeps judging
// against the declared configuration, so sabotaged runs produce violations;
// this is the harness's own self-test (and the -sabotage CLI flag).
//
// Every configuration uses the corruption-ready heap layout (line-aligned
// with guard padding) so out-of-bounds offsets land in mapped guard space
// under every configuration and heap addresses are comparable across them.
func Execute(s *Scenario, cfg ToolConfig, sabotage bool) (*ExecResult, error) {
	return ExecuteEnv(s, cfg, Env{Sabotage: sabotage})
}

// ExecuteEnv is Execute under an explicit environment. With a fault rate
// set, the run happens "on flaky DIMMs": a seed-deterministic background
// fault process plants transient/intermittent/stuck-at faults over the heap
// arena while the scenario executes, the kernel runs its background scrub
// daemon, and (with Retire) survives uncorrectable errors by page
// retirement instead of panicking. The fault process derives its stream
// from the scenario seed, so runs stay deterministic at any shard count.
//
// With the snapshot layer enabled (snapshot.SetEnabled), the warmup —
// machine construction, heap creation, tool attachment — is served from a
// per-configuration pool of checkpointed runners instead of being rebuilt;
// per-run state (sampler seed, injector, fault model, scrub daemon) is then
// set up in exactly the rebuild order, so results are byte-identical
// (pinned by TestSnapshotExecEquivalence).
func ExecuteEnv(s *Scenario, cfg ToolConfig, env Env) (*ExecResult, error) {
	if snapshot.Enabled() {
		return executeSnapshot(s, cfg, env)
	}
	m, err := execMachine()
	if err != nil {
		return nil, err
	}
	// Crash-safety accounting: every acquired machine is either recycled
	// into the pool exactly once or counted as dropped — including when a
	// panic unwinds straight out of this frame (the fleet's per-worker
	// recover then owns the goroutine, and the machine must never be seen
	// by sync.Pool.Put again).
	recycled := false
	defer func() {
		if !recycled {
			poolDropped.Add(1)
		}
	}()
	w, err := attachTools(m, cfg, env.Sabotage, effectiveRate(cfg, env), sampleSeed(s, env))
	if err != nil {
		return nil, err
	}
	res := runWarmed(s, cfg, env, w)
	if res.Err == nil {
		releaseMachine(m)
		recycled = true
	}
	return res, nil
}

// execWarmup is the warmed object set of one executor: the machine plus the
// heap and tool stack attached to it. It is what a snapshot runner pools.
type execWarmup struct {
	m       *machine.Machine
	alloc   *heap.Allocator
	tool    *safemem.Tool
	sampler *sampletool.Tool
}

// effectiveRate resolves the CfgSample sampling rate (0 for other configs).
func effectiveRate(cfg ToolConfig, env Env) int {
	if cfg != CfgSample {
		return 0
	}
	if env.SampleRate > 0 {
		return env.SampleRate
	}
	return DefaultSampleRate
}

// sampleSeed resolves the sampling-decision seed for this scenario.
func sampleSeed(s *Scenario, env Env) uint64 {
	if env.SampleSeed != 0 {
		return env.SampleSeed
	}
	return s.Seed ^ sampleSeedSalt
}

// attachTools creates the campaign heap and attaches cfg's tool stack to m —
// the warmup every scenario under this configuration shares.
func attachTools(m *machine.Machine, cfg ToolConfig, sabotage bool, rate int, sseed uint64) (*execWarmup, error) {
	ho := safemem.HeapOptions(true)
	ho.Limit = 16 << 20
	alloc, err := heap.New(m, ho)
	if err != nil {
		return nil, err
	}
	w := &execWarmup{m: m, alloc: alloc}
	switch {
	case cfg == CfgSample:
		opts := Tuning()
		opts.DetectLeaks = false
		opts.DetectCorruption = !sabotage
		w.sampler, err = sampletool.Attach(m, alloc, sampletool.Options{Rate: rate, Seed: sseed, SafeMem: opts})
		if err != nil {
			return nil, err
		}
	case cfg != CfgNone:
		opts := Tuning()
		opts.DetectLeaks = cfg.Leaks()
		opts.DetectCorruption = cfg.Corruption() && !sabotage
		w.tool, err = safemem.Attach(m, alloc, opts)
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// runScenario executes the scenario ops on an already-warmed executor and
// collects the result. Shared verbatim by the rebuild and snapshot paths:
// everything per-run — injector, resilience policy, fault model, scrub
// daemon — is set up here, in one order, so the two paths cannot drift.
func runWarmed(s *Scenario, cfg ToolConfig, env Env, w *execWarmup) *ExecResult {
	m, alloc, tool, sampler := w.m, w.alloc, w.tool, w.sampler

	needInject := env.faultModel()
	for _, op := range s.Ops {
		if op.Kind == OpHWFault || op.Kind == OpCEFault {
			needInject = true
			break
		}
	}
	var in *inject.Injector
	if needInject {
		in = inject.New(m, inject.Config{Seed: int64(s.Seed)})
	}

	if env.Retire {
		m.Kern.SetResilience(kernel.ResilienceOptions{Policy: kernel.RetireAndContinue})
	}
	var fp *faultmodel.Process
	if env.faultModel() {
		base, _ := alloc.ArenaRange()
		fc := faultmodel.Config{
			// Decorrelate from the injector's bit stream but stay pinned to
			// the scenario seed.
			Seed:         s.Seed ^ 0x5afe,
			MeanInterval: simtime.Cycles(1_000_000 / env.FaultRate),
			// Target the whole arena the heap may ever grow into; plants on
			// not-yet-resident pages are skipped, as on real hardware where
			// faults in unused rows go unobserved.
			Targets: []inject.Region{{Base: base, Size: alloc.Options().Limit}},
		}
		if env.Storm {
			fc.StormInterval = 8 * fc.MeanInterval
		}
		if !env.Retire {
			fc.DoubleBitFrac = -1 // stock policy: an unwatched double-bit panics
		}
		fp = faultmodel.Start(m, in, fc)
		// Background scrubbing keeps latent singles from pairing up into
		// uncorrectable errors — the kernel half of living with flaky DRAM.
		m.Kern.StartScrubDaemon(kernel.ScrubDaemonOptions{})
	}

	res := &ExecResult{FaultModel: env.faultModel(), Retire: env.Retire}
	if sampler != nil {
		res.SampleRate = sampler.Options().Rate
		res.SampledSites = make(map[uint64]bool)
	}
	nslots := 0
	for _, op := range s.Ops {
		if op.Slot >= nslots {
			nslots = op.Slot + 1
		}
	}
	slots := make([]slotState, nslots)

	// Skip semantics make every subsequence of a valid script executable —
	// the property the shrinker relies on: ops on never-allocated slots are
	// skipped, double frees are skipped, but accesses to freed slots do run
	// (the slot keeps its last address, which is what use-after-free means).
	res.Err = m.Run(func() error {
		for opi, op := range s.Ops {
			if env.Hook != nil {
				if herr := env.Hook(opi); herr != nil {
					return herr
				}
			}
			if env.Ctx != nil {
				if cerr := env.Ctx.Err(); cerr != nil {
					return cerr
				}
			}
			switch op.Kind {
			case OpAlloc:
				sl := &slots[op.Slot]
				m.Call(op.Site)
				addr, aerr := alloc.Malloc(op.Size)
				m.Return()
				if aerr != nil {
					sl.allocated = false
					continue
				}
				*sl = slotState{addr: addr, size: op.Size, allocated: true, ever: true}
				if sampler != nil {
					res.SampledSites[op.Site] = sampler.Sampled(addr)
				}
			case OpFree:
				sl := &slots[op.Slot]
				if !sl.allocated {
					continue
				}
				if ferr := alloc.Free(sl.addr); ferr != nil {
					return ferr
				}
				sl.allocated = false
			case OpWrite:
				sl := &slots[op.Slot]
				if !sl.ever {
					continue
				}
				m.Memset(vaddrOff(sl.addr, op.Off), 0xa5, op.Size)
			case OpRead:
				sl := &slots[op.Slot]
				if !sl.ever {
					continue
				}
				base := vaddrOff(sl.addr, op.Off)
				for i := uint64(0); i < op.Size; i++ {
					m.Load8(base + vm.VAddr(i))
				}
			case OpAdvance:
				m.Compute(op.Size)
			case OpHWFault:
				sl := &slots[op.Slot]
				if !sl.ever || !cfg.Corruption() {
					continue
				}
				// Under sampling, only sampled (watched) buffers take the
				// scripted double-bit plant: on an unwatched pad line it
				// would be an unplanned kernel panic, and the hardware
				// invariant (plants == repairs) only holds for watched pads.
				if sampler != nil && !sampler.Sampled(sl.addr) {
					continue
				}
				pad := vaddrOff(sl.addr, int64(roundLine(sl.size)))
				if in.PlantAt(pad, true) {
					res.HWPlanted++
				}
			case OpCEFault:
				sl := &slots[op.Slot]
				if !sl.ever {
					continue
				}
				if in.PlantAt(vaddrOff(sl.addr, op.Off), false) {
					res.CEPlanted++
				}
			}
		}
		return nil
	})

	if fp != nil {
		// Quiesce the physics before the exit pass so shutdown's unwatching
		// runs against a fixed fault population.
		fp.Stop()
		res.FaultEvents = fp.Stats().Events + fp.Stats().Refires
	}
	if res.Err == nil {
		// The exit pass: confirm aged suspects, disarm every watch.
		if tool != nil {
			tool.Shutdown()
		}
		if sampler != nil {
			sampler.Shutdown()
		}
	}
	res.Cycles = m.Clock.Now()
	cs := m.Ctrl.Stats()
	res.Corrected = cs.CorrectedSingle + cs.ScrubCorrected
	res.Resilience = m.Kern.ResilienceStats()
	if tool != nil {
		res.Reports = tool.Reports()
		res.Stats = tool.Stats()
	}
	if sampler != nil {
		res.Reports = sampler.Reports()
		res.Stats = sampler.SafeMemStats()
	}
	return res
}

// execStore pools snapshot-checkpointed executors per tool configuration.
var execStore = snapshot.NewStore(0)

// ExecSnapshotStats returns the campaign snapshot store's counters, for
// telemetry export and the equivalence tests.
func ExecSnapshotStats() snapshot.Stats { return execStore.Stats() }

// FlushSnapshots discards every idle pooled executor (tests; memory
// pressure).
func FlushSnapshots() { execStore.Flush() }

// execKey identifies one warmup configuration: everything attachTools bakes
// into the checkpoint. Per-run knobs (seeds, fault rates, storms, retire
// policy, contexts, hooks) are deliberately absent — they are applied after
// restore, in rebuild order.
func execKey(cfg ToolConfig, sabotage bool, rate int) string {
	return fmt.Sprintf("exec|%s|sab=%t|rate=%d", cfg, sabotage, rate)
}

// executeSnapshot is ExecuteEnv's snapshot fast path: acquire a checkpointed
// warmed executor for the configuration (building one on a cold miss),
// reseed its sampler for this scenario, and run. Clean runs release the
// runner — restored back to its checkpoint — for the next scenario; a run
// that errored or panicked drops it, warmup and all.
func executeSnapshot(s *Scenario, cfg ToolConfig, env Env) (*ExecResult, error) {
	rate := effectiveRate(cfg, env)
	key := execKey(cfg, env.Sabotage, rate)
	r, err := execStore.Acquire(key, func() (*snapshot.Runner, error) {
		m, err := machine.New(machine.Config{MemBytes: execMemBytes})
		if err != nil {
			return nil, err
		}
		// The warmup seed is a placeholder: every acquisition reseeds the
		// sampler for its scenario, exactly like a fresh attach with that
		// seed (Reseed resets the whole decision stream).
		w, err := attachTools(m, cfg, env.Sabotage, rate, 0)
		if err != nil {
			return nil, err
		}
		aimg := w.alloc.CaptureImage()
		var timg *safemem.Image
		if w.tool != nil {
			if timg, err = w.tool.CaptureImage(); err != nil {
				return nil, err
			}
		}
		var simg *sampletool.Image
		if w.sampler != nil {
			if simg, err = w.sampler.CaptureImage(); err != nil {
				return nil, err
			}
		}
		return &snapshot.Runner{
			Machine: m,
			Snap:    m.Snapshot(),
			Payload: w,
			Reset: func() {
				w.alloc.RestoreImage(aimg)
				if w.tool != nil {
					w.tool.RestoreImage(timg)
				}
				if w.sampler != nil {
					w.sampler.RestoreImage(simg)
				}
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	w := r.Payload.(*execWarmup)
	// Taint accounting mirrors the machine pool's: a runner is released
	// exactly once on a clean run; any other exit — error result, panic
	// unwinding through this frame — drops it.
	released := false
	defer func() {
		if !released {
			execStore.Drop(r)
		}
	}()
	if w.sampler != nil {
		w.sampler.Reseed(sampleSeed(s, env))
	}
	res := runWarmed(s, cfg, env, w)
	if res.Err == nil {
		execStore.Release(key, r)
		released = true
	}
	return res, nil
}
