package cache

import (
	"testing"

	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

func newBenchCache() (*Cache, *simtime.Clock) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(1<<20), clock)
	return MustNew(ctrl, clock, DefaultConfig), clock
}

// BenchmarkCacheHitLoad measures the hottest operation of the whole
// simulator: a load that hits the MRU way.
func BenchmarkCacheHitLoad(b *testing.B) {
	c, _ := newBenchCache()
	c.StoreWord(128, 0xabcdef)
	c.LoadWord(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LoadWord(128)
	}
}

// BenchmarkCacheHitLoadAssocScan is the hit path when the MRU hint misses:
// alternating lines in the same set force the associative scan.
func BenchmarkCacheHitLoadAssocScan(b *testing.B) {
	c, _ := newBenchCache()
	// Two lines mapping to set 0 (addresses differ by Sets×LineBytes).
	stride := physmem.Addr(DefaultConfig.Sets * physmem.LineBytes)
	c.StoreWord(0, 1)
	c.StoreWord(stride, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LoadWord(physmem.Addr(i&1) * stride)
	}
}

// BenchmarkCacheMissFill exercises the miss path: each iteration touches a
// line streak that thrashes one set.
func BenchmarkCacheMissFill(b *testing.B) {
	c, _ := newBenchCache()
	stride := physmem.Addr(DefaultConfig.Sets * physmem.LineBytes)
	n := physmem.Addr(DefaultConfig.Ways + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LoadWord((physmem.Addr(i) % n) * stride)
	}
}

// TestCacheHitPathNoAllocs pins the zero-allocation property of the hit
// path: a single allocation per load would dominate simulator wall-clock.
func TestCacheHitPathNoAllocs(t *testing.T) {
	c, _ := newBenchCache()
	c.StoreWord(64, 7)
	c.LoadWord(64)
	if avg := testing.AllocsPerRun(1000, func() {
		c.LoadWord(64)
		c.StoreWord(64, 9)
		c.LoadBytes(66, 2)
	}); avg != 0 {
		t.Fatalf("hit path allocates %.1f objects per round, want 0", avg)
	}
}

// TestResetStatsResamplesGauges pins the ResetStats fix: with a sampling
// registry attached, resetting the counters must emit fresh gauge samples
// immediately, not leave the exported series at the stale pre-reset values
// until the next periodic tick.
func TestResetStatsResamplesGauges(t *testing.T) {
	clock := &simtime.Clock{}
	reg := telemetry.NewRegistry("test", telemetry.Config{
		SampleInterval: simtime.FromMicroseconds(1000),
	})
	reg.AttachClock(clock)
	ctrl := memctrl.New(physmem.MustNew(1<<20), clock)
	c := MustNew(ctrl, clock, DefaultConfig)
	c.RegisterTelemetry(reg)

	c.LoadWord(0) // miss
	c.LoadWord(0) // hit
	if c.Stats().Hits != 1 || c.Stats().Misses != 1 {
		t.Fatalf("unexpected warm-up stats: %+v", c.Stats())
	}
	before := len(reg.Samples())
	c.ResetStats()
	samples := reg.Samples()[before:]
	if len(samples) == 0 {
		t.Fatal("ResetStats emitted no samples on a sampling registry")
	}
	seen := map[string]float64{}
	for _, s := range samples {
		if s.Component == "cache" {
			seen[s.Name] = s.Value
		}
	}
	for _, name := range []string{"hits", "misses", "write_backs", "flushes"} {
		v, ok := seen[name]
		if !ok {
			t.Errorf("no post-reset sample for cache/%s", name)
		} else if v != 0 {
			t.Errorf("post-reset sample cache/%s = %v, want 0", name, v)
		}
	}

	// A non-sampling registry must stay a no-op (no panic, no samples).
	reg2 := telemetry.NewRegistry("quiet", telemetry.Config{})
	reg2.AttachClock(clock)
	c2 := MustNew(memctrl.New(physmem.MustNew(1<<20), clock), clock, DefaultConfig)
	c2.RegisterTelemetry(reg2)
	c2.LoadWord(0)
	c2.ResetStats()
	if len(reg2.Samples()) != 0 {
		t.Fatal("non-sampling registry recorded samples on reset")
	}
}
