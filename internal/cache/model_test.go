package cache

import (
	"math/rand"
	"testing"

	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

// TestAgainstFlatModel drives the cache with a long random access sequence
// and checks every load against a flat reference model of memory. Any
// write-back, eviction, aliasing or masking bug shows up as a divergence.
func TestAgainstFlatModel(t *testing.T) {
	const memSize = 1 << 16
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(memSize), clock)
	// A tiny cache maximises eviction traffic.
	c := MustNew(ctrl, clock, Config{Sets: 4, Ways: 2})

	model := make([]byte, memSize)
	rng := rand.New(rand.NewSource(31337))

	readModel := func(a physmem.Addr, size int) uint64 {
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(model[int(a)+i])
		}
		return v
	}
	writeModel := func(a physmem.Addr, size int, v uint64) {
		for i := 0; i < size; i++ {
			model[int(a)+i] = byte(v >> (8 * i))
		}
	}

	sizes := []int{1, 2, 4, 8}
	for step := 0; step < 200_000; step++ {
		size := sizes[rng.Intn(len(sizes))]
		// Group-aligned base plus an offset that keeps the access inside
		// the 8-byte ECC group.
		group := physmem.Addr(rng.Intn(memSize/8)) * 8
		off := physmem.Addr(rng.Intn(8/size) * size)
		a := group + off

		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			c.StoreBytes(a, size, v)
			writeModel(a, size, v)
		case 1:
			got := c.LoadBytes(a, size)
			want := readModel(a, size)
			if got != want {
				t.Fatalf("step %d: load %d@%#x = %#x, model %#x", step, size, uint64(a), got, want)
			}
		default:
			if rng.Intn(4) == 0 {
				c.FlushLine(a.LineAddr())
			} else if rng.Intn(50) == 0 {
				c.FlushAll()
			} else {
				got := c.LoadWord(group)
				if want := readModel(group, 8); got != want {
					t.Fatalf("step %d: word load diverged", step)
				}
			}
		}
	}

	// Final flush: DRAM must equal the model exactly.
	c.FlushAll()
	for a := physmem.Addr(0); a < memSize; a += 8 {
		raw, _ := ctrl.Memory().ReadGroupRaw(a)
		if want := readModel(a, 8); raw != want {
			t.Fatalf("DRAM@%#x = %#x, model %#x", uint64(a), raw, want)
		}
	}
	st := c.Stats()
	if st.Misses == 0 || st.WriteBacks == 0 {
		t.Fatalf("suspicious stats %+v for a 8-line cache", st)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(1<<16), clock)
	c := MustNew(ctrl, clock, DefaultConfig)
	c.LoadWord(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LoadWord(0)
	}
}

func BenchmarkCacheMissEvict(b *testing.B) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(1<<20), clock)
	c := MustNew(ctrl, clock, Config{Sets: 1, Ways: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StoreWord(physmem.Addr(i%1024)*64, uint64(i))
	}
}
