// Package cache models the CPU's data cache: a physically-indexed,
// set-associative, write-back cache with LRU replacement, sitting between
// the simulated CPU and the ECC memory controller.
//
// The cache matters to SafeMem for two reasons (Section 2.2.2, "Dealing with
// Cache Effects"):
//
//   - ECC is only checked on *memory* traffic, so an access that hits in the
//     cache can never raise an ECC fault. WatchMemory therefore flushes the
//     watched lines so the next access — read or write, since writes to
//     uncached lines must first fetch the line — goes to DRAM.
//   - After the first (and only interesting) access is detected, the line may
//     legitimately stay cached; SafeMem needs just the first access.
//
// The lookup path is the single hottest function of the simulator (every
// simulated load and store lands here), so its layout is tuned: ways live in
// one flat slice (no per-set slice header chase), validity is a generation
// stamp compared against the cache's current generation, the set index is a
// shift-and-mask with precomputed constants, and the associative probe scans
// a packed side array of line tags (eight 8-byte tags — one host cache line
// per set) instead of striding across the 96-byte way structs, so both the
// hit probe and the full-scan miss touch a single host line. Line addresses
// are 64-byte aligned, so a tag's low bit doubles as its valid bit. None of
// this changes simulated semantics: hit/miss decisions, LRU victim choice,
// write-back order and cycle charges are identical to the straightforward
// implementation.
package cache

import (
	"fmt"

	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Config sizes the cache.
type Config struct {
	// Sets is the number of cache sets; must be a power of two.
	Sets int
	// Ways is the associativity.
	Ways int
}

// DefaultConfig is a 256 KiB 8-way cache (512 sets × 8 ways × 64 B),
// comparable to the L2 of the paper's Pentium 4 platform.
var DefaultConfig = Config{Sets: 512, Ways: 8}

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	WriteBacks uint64
	Flushes    uint64
}

// lineShift is log2(physmem.LineBytes). The zero-width assertion below
// breaks the build if the line size ever changes without this constant.
const lineShift = 6

var _ = [1]struct{}{}[physmem.LineBytes-1<<lineShift]

// way is one cache way. It is valid iff gen equals the cache's current
// generation; single-way invalidation writes gen 0 (the cache generation
// starts at 1 and only grows).
type way struct {
	gen   uint64
	dirty bool
	line  physmem.Addr // line-aligned physical address
	words [physmem.GroupsPerLine]uint64
	lru   uint64
}

// Cache is the simulated data cache. Not safe for concurrent use.
type Cache struct {
	ctrl  *memctrl.Controller
	clock *simtime.Clock
	cfg   Config

	ways []way // cfg.Sets×cfg.Ways, set-major
	// tags mirrors ways: uint64(line)|1 for a valid way, 0 for an invalid
	// one. The probe loop scans only this packed array; every mutation of a
	// way's identity (fill, invalidate, flush-all, recycle) updates the tag.
	tags    []uint64
	setMask uint64 // cfg.Sets-1
	gen     uint64 // current valid generation, ≥1
	// epoch counts residency mutations: every fill, invalidation, flush-all
	// and recycle. A LineRef obtained while Epoch() returned E is still
	// resident (and still holds the same line) as long as Epoch() == E. The
	// machine's batch lane uses this to keep line windows open across runs.
	epoch uint64

	tick  uint64
	stats Stats
	reg   *telemetry.Registry
	tr    *telemetry.Tracer

	// filled logs the global way index of every miss fill since the last
	// CaptureImage/RestoreImage/Recycle. Restoring a pristine image then
	// re-zeroes only these ways instead of all Sets×Ways of them — every
	// other way mutation (hit LRU stamps, LineRef stores, flushes) can only
	// touch a way some fill put there first. The log is capacity-bounded
	// (one entry per way); refill-heavy runs that overflow it set
	// fillSpill, and the restore falls back to the full copy. Appends stay
	// allocation-free: the backing array is preallocated and never grows.
	filled    []int32
	fillSpill bool
}

// New builds a cache over ctrl with the given configuration.
func New(ctrl *memctrl.Controller, clock *simtime.Clock, cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets %d is not a positive power of two", cfg.Sets)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways %d must be positive", cfg.Ways)
	}
	return &Cache{
		ctrl:    ctrl,
		clock:   clock,
		cfg:     cfg,
		ways:    make([]way, cfg.Sets*cfg.Ways),
		tags:    make([]uint64, cfg.Sets*cfg.Ways),
		setMask: uint64(cfg.Sets - 1),
		gen:     1,
		filled:  make([]int32, 0, cfg.Sets*cfg.Ways),
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(ctrl *memctrl.Controller, clock *simtime.Clock, cfg Config) *Cache {
	c, err := New(ctrl, clock, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Recycle resets the cache to its freshly-created state without
// reallocating the way arrays. The ways are fully zeroed rather than
// generation-invalidated: victim selection consults way 0's LRU stamp even
// when invalid, so a stale stamp could change eviction order relative to a
// fresh cache. Part of the pooled machine reset path.
func (c *Cache) Recycle() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	clear(c.tags)
	c.gen = 1
	c.epoch++
	c.tick = 0
	c.stats = Stats{}
	c.filled = c.filled[:0]
	c.fillSpill = false
}

// ResetStats zeroes the counters and, when a sampling registry is attached,
// immediately re-samples the gauges — otherwise exported time-series would
// keep reporting the stale pre-reset values until the next periodic tick.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	if c.reg != nil {
		c.reg.SampleNow()
	}
}

// RegisterTelemetry registers the cache's counters with the registry and
// adopts its tracer for flush spans. The load/store lookup path itself is
// deliberately uninstrumented — it stays plain struct-field increments.
func (c *Cache) RegisterTelemetry(reg *telemetry.Registry) {
	c.reg = reg
	c.tr = reg.Tracer()
	reg.RegisterSource("cache", func(emit func(string, float64)) {
		s := c.stats
		emit("hits", float64(s.Hits))
		emit("misses", float64(s.Misses))
		emit("write_backs", float64(s.WriteBacks))
		emit("flushes", float64(s.Flushes))
		if total := s.Hits + s.Misses; total > 0 {
			emit("hit_ratio", float64(s.Hits)/float64(total))
		}
	})
}

func (c *Cache) setIndex(line physmem.Addr) int {
	return int(uint64(line) >> lineShift & c.setMask)
}

// find returns the way holding line, or nil. The scan walks the packed tag
// array only; a hit touches the way struct itself just once, a miss not at
// all.
func (c *Cache) find(line physmem.Addr) *way {
	if i := c.findIdx(line); i >= 0 {
		return &c.ways[i]
	}
	return nil
}

// findIdx returns the global way index holding line, or -1.
func (c *Cache) findIdx(line physmem.Addr) int {
	base := c.setIndex(line) * c.cfg.Ways
	tag := uint64(line) | 1
	tags := c.tags[base : base+c.cfg.Ways]
	for i := range tags {
		if tags[i] == tag {
			return base + i
		}
	}
	return -1
}

// victim picks the LRU way of set si, writing it back if dirty, and returns
// its way index within the set. The scan replicates the original selection
// exactly (starting from way 0 whatever its validity, breaking at the first
// invalid way from index 1, else the strictly-lowest LRU stamp), so
// eviction order — and with it every downstream memory-traffic number — is
// unchanged.
func (c *Cache) victim(si int) (int, *way) {
	set := c.ways[si*c.cfg.Ways : (si+1)*c.cfg.Ways]
	vi := 0
	v := &set[0]
	for i := 1; i < len(set); i++ {
		if set[i].gen != c.gen {
			vi, v = i, &set[i]
			break
		}
		if set[i].lru < v.lru {
			vi, v = i, &set[i]
		}
	}
	if v.gen == c.gen && v.dirty {
		c.stats.WriteBacks++
		c.clock.Advance(simtime.CostWriteBack)
		c.ctrl.WriteLine(v.line, v.words)
	}
	return vi, v
}

// lookup returns the cache way for line, fetching from DRAM on a miss and
// charging the appropriate hit/miss cost.
func (c *Cache) lookup(line physmem.Addr) *way {
	c.tick++
	if w := c.find(line); w != nil {
		c.stats.Hits++
		c.clock.Advance(simtime.CostCacheHit)
		w.lru = c.tick
		return w
	}
	c.stats.Misses++
	c.clock.Advance(simtime.CostCacheMiss)
	c.epoch++
	si := c.setIndex(line)
	wi, w := c.victim(si)
	// ReadLine runs the ECC path; a watched line raises its fault here, and
	// by the time ReadLine returns the kernel/SafeMem has repaired it, so
	// the fill gets the restored data.
	w.words = c.ctrl.ReadLine(line)
	w.gen = c.gen
	w.dirty = false
	w.line = line
	w.lru = c.tick
	gi := si*c.cfg.Ways + wi
	c.tags[gi] = uint64(line) | 1
	if len(c.filled) < cap(c.filled) {
		c.filled = append(c.filled, int32(gi))
	} else {
		c.fillSpill = true
	}
	return w
}

// LoadWord returns the 64-bit ECC group containing physical address a.
func (c *Cache) LoadWord(a physmem.Addr) uint64 {
	w := c.lookup(a.LineAddr())
	return w.words[a.GroupInLine()]
}

// StoreWord writes the full 64-bit ECC group containing a.
func (c *Cache) StoreWord(a physmem.Addr, v uint64) {
	w := c.lookup(a.LineAddr())
	w.words[a.GroupInLine()] = v
	w.dirty = true
}

// LoadBytes reads size bytes (1..8, not crossing a group boundary) at a,
// returned little-endian in the low bytes of the result.
func (c *Cache) LoadBytes(a physmem.Addr, size int) uint64 {
	checkSpan(a, size)
	word := c.LoadWord(a)
	shift := (uint64(a) % physmem.GroupBytes) * 8
	if size == 8 {
		return word
	}
	mask := (uint64(1) << (uint(size) * 8)) - 1
	return (word >> shift) & mask
}

// StoreBytes writes the low size bytes of v (1..8, not crossing a group
// boundary) at a.
func (c *Cache) StoreBytes(a physmem.Addr, size int, v uint64) {
	checkSpan(a, size)
	if size == 8 {
		c.StoreWord(a, v)
		return
	}
	w := c.lookup(a.LineAddr())
	g := a.GroupInLine()
	shift := (uint64(a) % physmem.GroupBytes) * 8
	mask := ((uint64(1) << (uint(size) * 8)) - 1) << shift
	w.words[g] = w.words[g]&^mask | (v<<shift)&mask
	w.dirty = true
}

// LineRef is a handle to a resident cache line opened for a batched access
// run (the machine's fast lane). It is only valid until the next cache
// operation of any kind — lookups, flushes or fills may evict or rewrite
// the underlying way — which the fast lane guarantees by re-probing after
// every slow-path access.
type LineRef struct {
	w *way
}

// OpenLine probes for line without charging cycles, counting a hit, or
// touching LRU state. ok=false means the line is not resident: the run must
// fall back to the slow path, whose miss fill performs the ECC-checked DRAM
// read (and with it any watched-line fault).
func (c *Cache) OpenLine(line physmem.Addr) (LineRef, bool) {
	w := c.find(line)
	if w == nil {
		return LineRef{}, false
	}
	return LineRef{w: w}, true
}

// Load reads size bytes at byte offset off (0..63) within the opened line,
// data only — hit accounting is settled by CommitRun. The caller has
// already checked that the access does not cross an ECC-group boundary.
func (r LineRef) Load(off uint64, size int) uint64 {
	word := r.w.words[off>>3]
	if size == 8 {
		return word
	}
	shift := (off & 7) * 8
	mask := (uint64(1) << (uint(size) * 8)) - 1
	return (word >> shift) & mask
}

// Store writes the low size bytes of v at byte offset off within the
// opened line and marks it dirty. Same contract as Load.
func (r LineRef) Store(off uint64, size int, v uint64) {
	g := off >> 3
	if size == 8 {
		r.w.words[g] = v
	} else {
		shift := (off & 7) * 8
		mask := ((uint64(1) << (uint(size) * 8)) - 1) << shift
		r.w.words[g] = r.w.words[g]&^mask | (v<<shift)&mask
	}
	r.w.dirty = true
}

// Word and SetWord are the 8-byte-group accessors for the fast lane's
// word-granularity copy loops; g is the group index within the line (0..7).
func (r LineRef) Word(g int) uint64 { return r.w.words[g] }

// SetWord writes group g and marks the line dirty.
func (r LineRef) SetWord(g int, v uint64) {
	r.w.words[g] = v
	r.w.dirty = true
}

// Words exposes the line's backing 8-group array for bulk reads by the fast
// lane's fused loops (word-at-a-time compare). Writers must go through
// Store/SetWord/CopyWords — only the writing accessors maintain the dirty
// bit.
func (r LineRef) Words() *[8]uint64 { return &r.w.words }

// CopyWords copies n groups of src starting at group sg into r starting at
// group dg and marks r dirty — the bulk equivalent of n SetWord(Word) pairs.
func (r LineRef) CopyWords(dg int, src LineRef, sg, n int) {
	copy(r.w.words[dg:dg+n], src.w.words[sg:sg+n])
	r.w.dirty = true
}

// StoreBytesLE writes the low n bytes (1..8) of v little-endian at byte
// offset off — which may straddle a group boundary but not the line — and
// marks the line dirty: the bulk equivalent of n byte Stores.
func (r LineRef) StoreBytesLE(off, n, v uint64) {
	g, b := off>>3, (off&7)*8
	mask := ^uint64(0)
	if n < 8 {
		mask = 1<<(n*8) - 1
		v &= mask
	}
	r.w.words[g] = r.w.words[g]&^(mask<<b) | v<<b
	if b+n*8 > 64 {
		sh := 64 - b
		r.w.words[g+1] = r.w.words[g+1]&^(mask>>sh) | v>>sh
	}
	r.w.dirty = true
}

// CommitRun settles the hit accounting for n batched accesses against r:
// exactly the state n sequential hitting lookups would have produced —
// tick advanced n times, n hits counted, the line's LRU stamp set to the
// final tick. The n·CostCacheHit cycle charge is deliberately left to the
// caller, which folds it into one combined clock Advance per run segment.
// Relative LRU order across lines is preserved (each commit stamps beyond
// every pre-run stamp, and segments commit in access order), so victim
// selection — and with it every downstream memory-traffic number — is
// unchanged; TestBatchLaneCommitOrder pins this.
func (c *Cache) CommitRun(r LineRef, n uint64) {
	c.tick += n
	c.stats.Hits += n
	r.w.lru = c.tick
}

func checkSpan(a physmem.Addr, size int) {
	if size < 1 || size > 8 {
		panic(fmt.Sprintf("cache: access size %d out of range", size))
	}
	if uint64(a)%physmem.GroupBytes+uint64(size) > physmem.GroupBytes {
		panic(fmt.Sprintf("cache: access at %#x size %d crosses ECC-group boundary", uint64(a), size))
	}
}

// FlushLine writes the line back to DRAM if dirty and invalidates it, so the
// next access must go to memory. This is the clflush WatchMemory relies on.
func (c *Cache) FlushLine(line physmem.Addr) {
	if !line.IsLineAligned() {
		panic(fmt.Sprintf("cache: FlushLine at unaligned address %#x", uint64(line)))
	}
	sp := c.tr.Begin("cache", "flush-line", telemetry.KV("line", uint64(line)))
	defer sp.End()
	c.stats.Flushes++
	c.clock.Advance(simtime.CostLineFlush)
	wi := c.findIdx(line)
	if wi < 0 {
		return
	}
	w := &c.ways[wi]
	if w.dirty {
		c.stats.WriteBacks++
		c.clock.Advance(simtime.CostWriteBack)
		c.ctrl.WriteLine(w.line, w.words)
	}
	w.gen = 0
	w.dirty = false
	c.tags[wi] = 0
	c.epoch++
}

// PeekWord returns the current value of the ECC group containing a as the
// CPU would observe it — from the cache if the line is resident (it may be
// dirty), else from DRAM — without charging cycles, updating LRU state, or
// running the ECC check path. Debug/scan use only (Purify's mark-and-sweep
// scanner, bug reporters).
func (c *Cache) PeekWord(a physmem.Addr) uint64 {
	if w := c.find(a.LineAddr()); w != nil {
		return w.words[a.GroupInLine()]
	}
	d, _ := c.ctrl.Memory().ReadGroupRaw(a.GroupAddr())
	return d
}

// Contains reports whether line is currently cached (for tests).
func (c *Cache) Contains(line physmem.Addr) bool { return c.find(line) != nil }

// FlushFrame writes back and invalidates every cached line of the 4 KiB
// physical frame at base. The kernel calls it around page swaps and frame
// reuse: without it, dirty lines would be written back into a frame after
// it has been handed to a new owner, and stale clean lines would serve a
// new owner the previous tenant's data.
func (c *Cache) FlushFrame(base physmem.Addr) {
	sp := c.tr.Begin("cache", "flush-frame", telemetry.KV("frame", uint64(base)))
	defer sp.End()
	for off := physmem.Addr(0); off < 4096; off += physmem.LineBytes {
		if wi := c.findIdx(base + off); wi >= 0 {
			w := &c.ways[wi]
			if w.dirty {
				c.stats.WriteBacks++
				c.clock.Advance(simtime.CostWriteBack)
				c.ctrl.WriteLine(w.line, w.words)
			}
			w.gen = 0
			w.dirty = false
			c.tags[wi] = 0
			c.epoch++
		}
	}
	c.clock.Advance(simtime.CostLineFlush)
}

// FlushAll writes back and invalidates every line (used when the kernel
// swaps a page out). Write-backs keep the classic set-major order; way
// invalidation is a single generation bump, plus a clear of the packed tag
// array (32 KiB for the default geometry — cheap next to the swap itself).
func (c *Cache) FlushAll() {
	sp := c.tr.Begin("cache", "flush-all")
	defer sp.End()
	for i := range c.ways {
		w := &c.ways[i]
		if w.gen == c.gen && w.dirty {
			c.stats.WriteBacks++
			c.clock.Advance(simtime.CostWriteBack)
			c.ctrl.WriteLine(w.line, w.words)
		}
	}
	c.gen++
	c.epoch++
	clear(c.tags)
}

// Epoch returns the residency-mutation counter. Any LineRef obtained at an
// older epoch must be re-derived through OpenLine.
func (c *Cache) Epoch() uint64 { return c.epoch }

// Image is a checkpoint of the cache's simulated state (ways, tags, LRU
// clock, counters), taken with CaptureImage. A pristine image — captured
// from a cache that has never been filled since creation or recycling —
// stores no way copies at all, and restoring it costs O(fills since
// capture) via the fill log.
type Image struct {
	c        *Cache
	pristine bool
	ways     []way
	tags     []uint64
	gen      uint64
	tick     uint64
	stats    Stats
}

// CaptureImage checkpoints the cache and resets the fill log, so a later
// RestoreImage knows which ways diverged.
func (c *Cache) CaptureImage() *Image {
	img := &Image{c: c, gen: c.gen, tick: c.tick, stats: c.stats, pristine: true}
	empty := way{}
	for i := range c.ways {
		if c.ways[i] != empty || c.tags[i] != 0 {
			img.pristine = false
			break
		}
	}
	if !img.pristine {
		img.ways = append([]way(nil), c.ways...)
		img.tags = append([]uint64(nil), c.tags...)
	}
	c.filled = c.filled[:0]
	c.fillSpill = false
	return img
}

// RestoreImage puts the cache back into the captured state and counts one
// residency mutation (epoch bump), like any other invalidation. For a
// pristine image with an intact fill log only the ways filled since capture
// are re-zeroed; otherwise every way is rewritten from the image (or zeroed,
// for a pristine image after log overflow) — slower, never wrong.
func (c *Cache) RestoreImage(img *Image) {
	if img.c != c {
		panic("cache: RestoreImage with an image captured from a different cache")
	}
	switch {
	case img.pristine && !c.fillSpill:
		empty := way{}
		for _, gi := range c.filled {
			c.ways[gi] = empty
			c.tags[gi] = 0
		}
	case img.pristine:
		for i := range c.ways {
			c.ways[i] = way{}
		}
		clear(c.tags)
	default:
		copy(c.ways, img.ways)
		copy(c.tags, img.tags)
	}
	c.gen = img.gen
	c.tick = img.tick
	c.stats = img.stats
	c.epoch++
	c.filled = c.filled[:0]
	c.fillSpill = false
}
