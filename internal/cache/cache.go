// Package cache models the CPU's data cache: a physically-indexed,
// set-associative, write-back cache with LRU replacement, sitting between
// the simulated CPU and the ECC memory controller.
//
// The cache matters to SafeMem for two reasons (Section 2.2.2, "Dealing with
// Cache Effects"):
//
//   - ECC is only checked on *memory* traffic, so an access that hits in the
//     cache can never raise an ECC fault. WatchMemory therefore flushes the
//     watched lines so the next access — read or write, since writes to
//     uncached lines must first fetch the line — goes to DRAM.
//   - After the first (and only interesting) access is detected, the line may
//     legitimately stay cached; SafeMem needs just the first access.
//
// The lookup path is the single hottest function of the simulator (every
// simulated load and store lands here), so its layout is tuned: ways live in
// one flat slice (no per-set slice header chase), validity is a generation
// stamp compared against the cache's current generation (so FlushAll is one
// counter bump instead of a full sweep of invalidations), the set index is a
// shift-and-mask with precomputed constants, and a per-set MRU hint
// short-circuits the associative scan for the dominant repeated-touch
// pattern. None of this changes simulated semantics: hit/miss decisions,
// LRU victim choice, write-back order and cycle charges are identical to
// the straightforward implementation.
package cache

import (
	"fmt"

	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Config sizes the cache.
type Config struct {
	// Sets is the number of cache sets; must be a power of two.
	Sets int
	// Ways is the associativity.
	Ways int
}

// DefaultConfig is a 256 KiB 8-way cache (512 sets × 8 ways × 64 B),
// comparable to the L2 of the paper's Pentium 4 platform.
var DefaultConfig = Config{Sets: 512, Ways: 8}

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	WriteBacks uint64
	Flushes    uint64
}

// lineShift is log2(physmem.LineBytes). The zero-width assertion below
// breaks the build if the line size ever changes without this constant.
const lineShift = 6

var _ = [1]struct{}{}[physmem.LineBytes-1<<lineShift]

// way is one cache way. It is valid iff gen equals the cache's current
// generation; single-way invalidation writes gen 0 (the cache generation
// starts at 1 and only grows).
type way struct {
	gen   uint64
	dirty bool
	line  physmem.Addr // line-aligned physical address
	words [physmem.GroupsPerLine]uint64
	lru   uint64
}

// Cache is the simulated data cache. Not safe for concurrent use.
type Cache struct {
	ctrl  *memctrl.Controller
	clock *simtime.Clock
	cfg   Config

	ways    []way   // cfg.Sets×cfg.Ways, set-major
	mru     []int32 // per-set way index of the last hit/fill (a hint, never authoritative)
	setMask uint64  // cfg.Sets-1
	gen     uint64  // current valid generation, ≥1

	tick  uint64
	stats Stats
	reg   *telemetry.Registry
	tr    *telemetry.Tracer
}

// New builds a cache over ctrl with the given configuration.
func New(ctrl *memctrl.Controller, clock *simtime.Clock, cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets %d is not a positive power of two", cfg.Sets)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways %d must be positive", cfg.Ways)
	}
	return &Cache{
		ctrl:    ctrl,
		clock:   clock,
		cfg:     cfg,
		ways:    make([]way, cfg.Sets*cfg.Ways),
		mru:     make([]int32, cfg.Sets),
		setMask: uint64(cfg.Sets - 1),
		gen:     1,
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(ctrl *memctrl.Controller, clock *simtime.Clock, cfg Config) *Cache {
	c, err := New(ctrl, clock, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Recycle resets the cache to its freshly-created state without
// reallocating the way arrays. The ways are fully zeroed rather than
// generation-invalidated: victim selection consults way 0's LRU stamp even
// when invalid, so a stale stamp could change eviction order relative to a
// fresh cache. Part of the pooled machine reset path.
func (c *Cache) Recycle() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.gen = 1
	c.tick = 0
	c.stats = Stats{}
}

// ResetStats zeroes the counters and, when a sampling registry is attached,
// immediately re-samples the gauges — otherwise exported time-series would
// keep reporting the stale pre-reset values until the next periodic tick.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	if c.reg != nil {
		c.reg.SampleNow()
	}
}

// RegisterTelemetry registers the cache's counters with the registry and
// adopts its tracer for flush spans. The load/store lookup path itself is
// deliberately uninstrumented — it stays plain struct-field increments.
func (c *Cache) RegisterTelemetry(reg *telemetry.Registry) {
	c.reg = reg
	c.tr = reg.Tracer()
	reg.RegisterSource("cache", func(emit func(string, float64)) {
		s := c.stats
		emit("hits", float64(s.Hits))
		emit("misses", float64(s.Misses))
		emit("write_backs", float64(s.WriteBacks))
		emit("flushes", float64(s.Flushes))
		if total := s.Hits + s.Misses; total > 0 {
			emit("hit_ratio", float64(s.Hits)/float64(total))
		}
	})
}

func (c *Cache) setIndex(line physmem.Addr) int {
	return int(uint64(line) >> lineShift & c.setMask)
}

// find returns the way holding line, or nil.
func (c *Cache) find(line physmem.Addr) *way {
	si := c.setIndex(line)
	base := si * c.cfg.Ways
	// MRU short-circuit: repeated touches to the same line dominate real
	// access streams, and they need no associative scan.
	if m := int(c.mru[si]); m < c.cfg.Ways {
		if w := &c.ways[base+m]; w.gen == c.gen && w.line == line {
			return w
		}
	}
	set := c.ways[base : base+c.cfg.Ways]
	for i := range set {
		if set[i].gen == c.gen && set[i].line == line {
			c.mru[si] = int32(i)
			return &set[i]
		}
	}
	return nil
}

// victim picks the LRU way of set si, writing it back if dirty, and returns
// its way index within the set. The scan replicates the original selection
// exactly (starting from way 0 whatever its validity, breaking at the first
// invalid way from index 1, else the strictly-lowest LRU stamp), so
// eviction order — and with it every downstream memory-traffic number — is
// unchanged.
func (c *Cache) victim(si int) (int, *way) {
	set := c.ways[si*c.cfg.Ways : (si+1)*c.cfg.Ways]
	vi := 0
	v := &set[0]
	for i := 1; i < len(set); i++ {
		if set[i].gen != c.gen {
			vi, v = i, &set[i]
			break
		}
		if set[i].lru < v.lru {
			vi, v = i, &set[i]
		}
	}
	if v.gen == c.gen && v.dirty {
		c.stats.WriteBacks++
		c.clock.Advance(simtime.CostWriteBack)
		c.ctrl.WriteLine(v.line, v.words)
	}
	return vi, v
}

// lookup returns the cache way for line, fetching from DRAM on a miss and
// charging the appropriate hit/miss cost.
func (c *Cache) lookup(line physmem.Addr) *way {
	c.tick++
	if w := c.find(line); w != nil {
		c.stats.Hits++
		c.clock.Advance(simtime.CostCacheHit)
		w.lru = c.tick
		return w
	}
	c.stats.Misses++
	c.clock.Advance(simtime.CostCacheMiss)
	si := c.setIndex(line)
	wi, w := c.victim(si)
	// ReadLine runs the ECC path; a watched line raises its fault here, and
	// by the time ReadLine returns the kernel/SafeMem has repaired it, so
	// the fill gets the restored data.
	w.words = c.ctrl.ReadLine(line)
	w.gen = c.gen
	w.dirty = false
	w.line = line
	w.lru = c.tick
	c.mru[si] = int32(wi)
	return w
}

// LoadWord returns the 64-bit ECC group containing physical address a.
func (c *Cache) LoadWord(a physmem.Addr) uint64 {
	w := c.lookup(a.LineAddr())
	return w.words[a.GroupInLine()]
}

// StoreWord writes the full 64-bit ECC group containing a.
func (c *Cache) StoreWord(a physmem.Addr, v uint64) {
	w := c.lookup(a.LineAddr())
	w.words[a.GroupInLine()] = v
	w.dirty = true
}

// LoadBytes reads size bytes (1..8, not crossing a group boundary) at a,
// returned little-endian in the low bytes of the result.
func (c *Cache) LoadBytes(a physmem.Addr, size int) uint64 {
	checkSpan(a, size)
	word := c.LoadWord(a)
	shift := (uint64(a) % physmem.GroupBytes) * 8
	if size == 8 {
		return word
	}
	mask := (uint64(1) << (uint(size) * 8)) - 1
	return (word >> shift) & mask
}

// StoreBytes writes the low size bytes of v (1..8, not crossing a group
// boundary) at a.
func (c *Cache) StoreBytes(a physmem.Addr, size int, v uint64) {
	checkSpan(a, size)
	if size == 8 {
		c.StoreWord(a, v)
		return
	}
	w := c.lookup(a.LineAddr())
	g := a.GroupInLine()
	shift := (uint64(a) % physmem.GroupBytes) * 8
	mask := ((uint64(1) << (uint(size) * 8)) - 1) << shift
	w.words[g] = w.words[g]&^mask | (v<<shift)&mask
	w.dirty = true
}

func checkSpan(a physmem.Addr, size int) {
	if size < 1 || size > 8 {
		panic(fmt.Sprintf("cache: access size %d out of range", size))
	}
	if uint64(a)%physmem.GroupBytes+uint64(size) > physmem.GroupBytes {
		panic(fmt.Sprintf("cache: access at %#x size %d crosses ECC-group boundary", uint64(a), size))
	}
}

// FlushLine writes the line back to DRAM if dirty and invalidates it, so the
// next access must go to memory. This is the clflush WatchMemory relies on.
func (c *Cache) FlushLine(line physmem.Addr) {
	if !line.IsLineAligned() {
		panic(fmt.Sprintf("cache: FlushLine at unaligned address %#x", uint64(line)))
	}
	sp := c.tr.Begin("cache", "flush-line", telemetry.KV("line", uint64(line)))
	defer sp.End()
	c.stats.Flushes++
	c.clock.Advance(simtime.CostLineFlush)
	w := c.find(line)
	if w == nil {
		return
	}
	if w.dirty {
		c.stats.WriteBacks++
		c.clock.Advance(simtime.CostWriteBack)
		c.ctrl.WriteLine(w.line, w.words)
	}
	w.gen = 0
	w.dirty = false
}

// PeekWord returns the current value of the ECC group containing a as the
// CPU would observe it — from the cache if the line is resident (it may be
// dirty), else from DRAM — without charging cycles, updating LRU state, or
// running the ECC check path. Debug/scan use only (Purify's mark-and-sweep
// scanner, bug reporters).
func (c *Cache) PeekWord(a physmem.Addr) uint64 {
	if w := c.find(a.LineAddr()); w != nil {
		return w.words[a.GroupInLine()]
	}
	d, _ := c.ctrl.Memory().ReadGroupRaw(a.GroupAddr())
	return d
}

// Contains reports whether line is currently cached (for tests).
func (c *Cache) Contains(line physmem.Addr) bool { return c.find(line) != nil }

// FlushFrame writes back and invalidates every cached line of the 4 KiB
// physical frame at base. The kernel calls it around page swaps and frame
// reuse: without it, dirty lines would be written back into a frame after
// it has been handed to a new owner, and stale clean lines would serve a
// new owner the previous tenant's data.
func (c *Cache) FlushFrame(base physmem.Addr) {
	sp := c.tr.Begin("cache", "flush-frame", telemetry.KV("frame", uint64(base)))
	defer sp.End()
	for off := physmem.Addr(0); off < 4096; off += physmem.LineBytes {
		line := base + off
		if w := c.find(line); w != nil {
			if w.dirty {
				c.stats.WriteBacks++
				c.clock.Advance(simtime.CostWriteBack)
				c.ctrl.WriteLine(w.line, w.words)
			}
			w.gen = 0
			w.dirty = false
		}
	}
	c.clock.Advance(simtime.CostLineFlush)
}

// FlushAll writes back and invalidates every line (used when the kernel
// swaps a page out). Write-backs keep the classic set-major order;
// invalidation is a single generation bump instead of a sweep.
func (c *Cache) FlushAll() {
	sp := c.tr.Begin("cache", "flush-all")
	defer sp.End()
	for i := range c.ways {
		w := &c.ways[i]
		if w.gen == c.gen && w.dirty {
			c.stats.WriteBacks++
			c.clock.Advance(simtime.CostWriteBack)
			c.ctrl.WriteLine(w.line, w.words)
		}
	}
	c.gen++
}
