package cache

import (
	"testing"
	"testing/quick"

	"safemem/internal/ecc"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

func newRig(memSize uint64, cfg Config) (*Cache, *memctrl.Controller, *simtime.Clock) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(memSize), clock)
	return MustNew(ctrl, clock, cfg), ctrl, clock
}

func TestConfigValidation(t *testing.T) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(4096), clock)
	if _, err := New(ctrl, clock, Config{Sets: 3, Ways: 1}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(ctrl, clock, Config{Sets: 4, Ways: 0}); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestLoadStoreWord(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(64, 0xdeadbeef)
	if got := c.LoadWord(64); got != 0xdeadbeef {
		t.Fatalf("LoadWord = %#x", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit", st)
	}
}

func TestSubWordAccess(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(0, 0x8877665544332211)
	if got := c.LoadBytes(2, 2); got != 0x4433 {
		t.Fatalf("LoadBytes(2,2) = %#x", got)
	}
	if got := c.LoadBytes(7, 1); got != 0x88 {
		t.Fatalf("LoadBytes(7,1) = %#x", got)
	}
	c.StoreBytes(3, 1, 0xff)
	if got := c.LoadWord(0); got != 0x88776655ff332211 {
		t.Fatalf("after StoreBytes word = %#x", got)
	}
	c.StoreBytes(0, 4, 0xaabbccdd)
	if got := c.LoadWord(0); got != 0x88776655aabbccdd {
		t.Fatalf("after 4-byte store word = %#x", got)
	}
}

func TestCrossGroupAccessPanics(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-group access did not panic")
		}
	}()
	c.LoadBytes(6, 4)
}

func TestWriteBackOnEviction(t *testing.T) {
	// 1 set × 1 way: any second distinct line evicts the first.
	c, ctrl, _ := newRig(1<<16, Config{Sets: 1, Ways: 1})
	c.StoreWord(0, 111)
	c.LoadWord(64) // evicts dirty line 0
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", c.Stats().WriteBacks)
	}
	raw, _ := ctrl.Memory().ReadGroupRaw(0)
	if raw != 111 {
		t.Fatalf("DRAM = %d, want 111", raw)
	}
	if got := c.LoadWord(0); got != 111 {
		t.Fatalf("reload = %d, want 111", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _, _ := newRig(1<<16, Config{Sets: 1, Ways: 2})
	c.LoadWord(0)   // miss: {0}
	c.LoadWord(64)  // miss: {0,64}
	c.LoadWord(0)   // hit: 0 becomes MRU
	c.LoadWord(128) // miss: evicts 64, not 0
	if !c.Contains(0) {
		t.Fatal("LRU evicted the most recently used line")
	}
	if c.Contains(64) {
		t.Fatal("LRU kept the least recently used line")
	}
}

func TestCacheFiltersECCFaults(t *testing.T) {
	// The core reason WatchMemory must flush: a cached line never reaches
	// the controller, so no ECC fault can fire.
	c, ctrl, _ := newRig(1<<16, DefaultConfig)
	faults := 0
	ctrl.SetInterruptHandler(func(r memctrl.FaultReport) {
		faults++
		// Repair so execution can continue.
		orig := ecc.Scramble(r.Data)
		ctrl.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
	})

	c.StoreWord(0, 0x1234) // line 0 now cached (dirty)
	// Scramble DRAM behind the cache's back.
	ctrl.Memory().WriteGroupDataOnly(0, ecc.Scramble(0))

	c.LoadWord(0) // hit: filtered, no fault
	if faults != 0 {
		t.Fatalf("cached access raised %d faults", faults)
	}

	// Now flush without write-back contaminating the experiment: line is
	// dirty, so flush writes back and overwrites the scramble. Use a clean
	// line instead.
	c2, ctrl2, _ := newRig(1<<16, DefaultConfig)
	faults2 := 0
	var orig uint64 = 0xfeed
	ctrl2.SetInterruptHandler(func(r memctrl.FaultReport) {
		faults2++
		ctrl2.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
	})
	var line [physmem.GroupsPerLine]uint64
	line[0] = orig
	ctrl2.WriteLine(0, line)
	c2.LoadWord(0) // clean fill
	ctrl2.Memory().WriteGroupDataOnly(0, ecc.Scramble(orig))
	c2.LoadWord(0) // still cached: no fault
	if faults2 != 0 {
		t.Fatal("cached access reached memory")
	}
	c2.FlushLine(0)
	if got := c2.LoadWord(0); got != orig {
		t.Fatalf("post-fault load = %#x, want %#x", got, orig)
	}
	if faults2 != 1 {
		t.Fatalf("flushed access raised %d faults, want 1", faults2)
	}
}

func TestFlushLineWritesBackDirty(t *testing.T) {
	c, ctrl, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(192, 7)
	c.FlushLine(192)
	if c.Contains(192) {
		t.Fatal("line still cached after flush")
	}
	raw, _ := ctrl.Memory().ReadGroupRaw(192)
	if raw != 7 {
		t.Fatalf("DRAM = %d after flush, want 7", raw)
	}
	// Flushing an absent line is a no-op (but still charged).
	c.FlushLine(192)
	if c.Stats().Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2", c.Stats().Flushes)
	}
}

func TestFlushAll(t *testing.T) {
	c, ctrl, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(0, 1)
	c.StoreWord(64, 2)
	c.LoadWord(128)
	c.FlushAll()
	for _, a := range []physmem.Addr{0, 64, 128} {
		if c.Contains(a) {
			t.Fatalf("line %d still cached", a)
		}
	}
	if raw, _ := ctrl.Memory().ReadGroupRaw(64); raw != 2 {
		t.Fatal("FlushAll lost a dirty line")
	}
}

func TestCycleCharges(t *testing.T) {
	c, _, clock := newRig(1<<16, DefaultConfig)
	before := clock.Now()
	c.LoadWord(0)
	missCost := clock.Now() - before
	if missCost < simtime.CostCacheMiss {
		t.Fatalf("miss cost %d < %d", missCost, simtime.CostCacheMiss)
	}
	before = clock.Now()
	c.LoadWord(0)
	if hit := clock.Now() - before; hit != simtime.CostCacheHit {
		t.Fatalf("hit cost %d, want %d", hit, simtime.CostCacheHit)
	}
}

func TestQuickSubWordRoundTrip(t *testing.T) {
	c, _, _ := newRig(1<<20, DefaultConfig)
	f := func(off uint16, v uint64, szRaw uint8) bool {
		size := int(szRaw)%8 + 1
		a := physmem.Addr(uint64(off) &^ 7) // group-aligned base
		if uint64(a)%physmem.GroupBytes+uint64(size) > physmem.GroupBytes {
			return true
		}
		mask := uint64(1)<<(uint(size)*8) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		c.StoreBytes(a, size, v)
		return c.LoadBytes(a, size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchLaneCommitOrder pins CommitRun's LRU contract: committing n
// batched accesses against a line leaves exactly the replacement state n
// sequential hitting lookups would have — same hit counts, same relative
// recency, and therefore the same victims on the next misses.
func TestBatchLaneCommitOrder(t *testing.T) {
	cfg := Config{Sets: 4, Ways: 2}
	seq, _, _ := newRig(1<<16, cfg)
	bat, _, _ := newRig(1<<16, cfg)
	// Four lines in the same set (set-index stride is Sets*LineBytes).
	const A, B, C, D = physmem.Addr(0), physmem.Addr(256), physmem.Addr(512), physmem.Addr(768)

	for _, c := range []*Cache{seq, bat} {
		c.StoreWord(A, 0xa) // miss-fill A
		c.StoreWord(B, 0xb) // miss-fill B — the set is now full
	}
	// Three further touches of A: per-access hits on seq, one batched
	// commit on bat.
	seq.LoadWord(A)
	seq.LoadWord(A)
	seq.LoadWord(A)
	r, ok := bat.OpenLine(A)
	if !ok {
		t.Fatal("A not resident")
	}
	bat.CommitRun(r, 3)
	if seq.Stats() != bat.Stats() {
		t.Fatalf("stats diverge after commit: seq %+v bat %+v", seq.Stats(), bat.Stats())
	}

	// C misses: the victim must be B on both (A was touched more recently).
	for name, c := range map[string]*Cache{"seq": seq, "bat": bat} {
		c.LoadWord(C)
		if _, ok := c.OpenLine(B); ok {
			t.Errorf("%s: B survived; victim choice diverged from per-access LRU", name)
		}
		if _, ok := c.OpenLine(A); !ok {
			t.Errorf("%s: A evicted; CommitRun did not stamp it most-recent", name)
		}
	}
	// D misses next: A is now older than C, so A must go.
	for name, c := range map[string]*Cache{"seq": seq, "bat": bat} {
		c.LoadWord(D)
		if _, ok := c.OpenLine(A); ok {
			t.Errorf("%s: A survived the second eviction", name)
		}
		if _, ok := c.OpenLine(C); !ok {
			t.Errorf("%s: C evicted out of order", name)
		}
	}
	if seq.Stats() != bat.Stats() {
		t.Fatalf("stats diverge after evictions: seq %+v bat %+v", seq.Stats(), bat.Stats())
	}
}

// TestLineRefBulkAccessors pins the fast lane's bulk line accessors against
// the byte-granularity Load/Store they replace.
func TestLineRefBulkAccessors(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	for i := uint64(0); i < physmem.LineBytes; i++ {
		c.StoreBytes(physmem.Addr(i&^7), 8, 0x0101010101010101*(i/8+1))
	}
	r, ok := c.OpenLine(0)
	if !ok {
		t.Fatal("line 0 not resident")
	}
	w := r.Words()
	for g := 0; g < physmem.GroupsPerLine; g++ {
		if w[g] != r.Word(g) {
			t.Fatalf("Words()[%d] = %#x, Word(%d) = %#x", g, w[g], g, r.Word(g))
		}
	}
	// StoreBytesLE across a group boundary must match per-byte stores.
	r.StoreBytesLE(5, 8, 0x1122334455667788)
	for i := uint64(0); i < 8; i++ {
		want := uint64(0x1122334455667788>>(8*i)) & 0xff
		if got := r.Load(5+i, 1); got != want {
			t.Fatalf("byte %d after StoreBytesLE = %#x, want %#x", i, got, want)
		}
	}
	// Short tail with masking: surrounding bytes untouched.
	before := r.Load(16, 8)
	r.StoreBytesLE(18, 3, 0xffffffffff) // only 3 bytes may land
	want := before&^uint64(0xffffff<<16) | 0xffffff<<16
	if got := r.Load(16, 8); got != want {
		t.Fatalf("masked StoreBytesLE word = %#x, want %#x", got, want)
	}
}
