package cache

import (
	"testing"
	"testing/quick"

	"safemem/internal/ecc"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

func newRig(memSize uint64, cfg Config) (*Cache, *memctrl.Controller, *simtime.Clock) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(memSize), clock)
	return MustNew(ctrl, clock, cfg), ctrl, clock
}

func TestConfigValidation(t *testing.T) {
	clock := &simtime.Clock{}
	ctrl := memctrl.New(physmem.MustNew(4096), clock)
	if _, err := New(ctrl, clock, Config{Sets: 3, Ways: 1}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(ctrl, clock, Config{Sets: 4, Ways: 0}); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestLoadStoreWord(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(64, 0xdeadbeef)
	if got := c.LoadWord(64); got != 0xdeadbeef {
		t.Fatalf("LoadWord = %#x", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit", st)
	}
}

func TestSubWordAccess(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(0, 0x8877665544332211)
	if got := c.LoadBytes(2, 2); got != 0x4433 {
		t.Fatalf("LoadBytes(2,2) = %#x", got)
	}
	if got := c.LoadBytes(7, 1); got != 0x88 {
		t.Fatalf("LoadBytes(7,1) = %#x", got)
	}
	c.StoreBytes(3, 1, 0xff)
	if got := c.LoadWord(0); got != 0x88776655ff332211 {
		t.Fatalf("after StoreBytes word = %#x", got)
	}
	c.StoreBytes(0, 4, 0xaabbccdd)
	if got := c.LoadWord(0); got != 0x88776655aabbccdd {
		t.Fatalf("after 4-byte store word = %#x", got)
	}
}

func TestCrossGroupAccessPanics(t *testing.T) {
	c, _, _ := newRig(1<<16, DefaultConfig)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-group access did not panic")
		}
	}()
	c.LoadBytes(6, 4)
}

func TestWriteBackOnEviction(t *testing.T) {
	// 1 set × 1 way: any second distinct line evicts the first.
	c, ctrl, _ := newRig(1<<16, Config{Sets: 1, Ways: 1})
	c.StoreWord(0, 111)
	c.LoadWord(64) // evicts dirty line 0
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", c.Stats().WriteBacks)
	}
	raw, _ := ctrl.Memory().ReadGroupRaw(0)
	if raw != 111 {
		t.Fatalf("DRAM = %d, want 111", raw)
	}
	if got := c.LoadWord(0); got != 111 {
		t.Fatalf("reload = %d, want 111", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _, _ := newRig(1<<16, Config{Sets: 1, Ways: 2})
	c.LoadWord(0)   // miss: {0}
	c.LoadWord(64)  // miss: {0,64}
	c.LoadWord(0)   // hit: 0 becomes MRU
	c.LoadWord(128) // miss: evicts 64, not 0
	if !c.Contains(0) {
		t.Fatal("LRU evicted the most recently used line")
	}
	if c.Contains(64) {
		t.Fatal("LRU kept the least recently used line")
	}
}

func TestCacheFiltersECCFaults(t *testing.T) {
	// The core reason WatchMemory must flush: a cached line never reaches
	// the controller, so no ECC fault can fire.
	c, ctrl, _ := newRig(1<<16, DefaultConfig)
	faults := 0
	ctrl.SetInterruptHandler(func(r memctrl.FaultReport) {
		faults++
		// Repair so execution can continue.
		orig := ecc.Scramble(r.Data)
		ctrl.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
	})

	c.StoreWord(0, 0x1234) // line 0 now cached (dirty)
	// Scramble DRAM behind the cache's back.
	ctrl.Memory().WriteGroupDataOnly(0, ecc.Scramble(0))

	c.LoadWord(0) // hit: filtered, no fault
	if faults != 0 {
		t.Fatalf("cached access raised %d faults", faults)
	}

	// Now flush without write-back contaminating the experiment: line is
	// dirty, so flush writes back and overwrites the scramble. Use a clean
	// line instead.
	c2, ctrl2, _ := newRig(1<<16, DefaultConfig)
	faults2 := 0
	var orig uint64 = 0xfeed
	ctrl2.SetInterruptHandler(func(r memctrl.FaultReport) {
		faults2++
		ctrl2.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
	})
	var line [physmem.GroupsPerLine]uint64
	line[0] = orig
	ctrl2.WriteLine(0, line)
	c2.LoadWord(0) // clean fill
	ctrl2.Memory().WriteGroupDataOnly(0, ecc.Scramble(orig))
	c2.LoadWord(0) // still cached: no fault
	if faults2 != 0 {
		t.Fatal("cached access reached memory")
	}
	c2.FlushLine(0)
	if got := c2.LoadWord(0); got != orig {
		t.Fatalf("post-fault load = %#x, want %#x", got, orig)
	}
	if faults2 != 1 {
		t.Fatalf("flushed access raised %d faults, want 1", faults2)
	}
}

func TestFlushLineWritesBackDirty(t *testing.T) {
	c, ctrl, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(192, 7)
	c.FlushLine(192)
	if c.Contains(192) {
		t.Fatal("line still cached after flush")
	}
	raw, _ := ctrl.Memory().ReadGroupRaw(192)
	if raw != 7 {
		t.Fatalf("DRAM = %d after flush, want 7", raw)
	}
	// Flushing an absent line is a no-op (but still charged).
	c.FlushLine(192)
	if c.Stats().Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2", c.Stats().Flushes)
	}
}

func TestFlushAll(t *testing.T) {
	c, ctrl, _ := newRig(1<<16, DefaultConfig)
	c.StoreWord(0, 1)
	c.StoreWord(64, 2)
	c.LoadWord(128)
	c.FlushAll()
	for _, a := range []physmem.Addr{0, 64, 128} {
		if c.Contains(a) {
			t.Fatalf("line %d still cached", a)
		}
	}
	if raw, _ := ctrl.Memory().ReadGroupRaw(64); raw != 2 {
		t.Fatal("FlushAll lost a dirty line")
	}
}

func TestCycleCharges(t *testing.T) {
	c, _, clock := newRig(1<<16, DefaultConfig)
	before := clock.Now()
	c.LoadWord(0)
	missCost := clock.Now() - before
	if missCost < simtime.CostCacheMiss {
		t.Fatalf("miss cost %d < %d", missCost, simtime.CostCacheMiss)
	}
	before = clock.Now()
	c.LoadWord(0)
	if hit := clock.Now() - before; hit != simtime.CostCacheHit {
		t.Fatalf("hit cost %d, want %d", hit, simtime.CostCacheHit)
	}
}

func TestQuickSubWordRoundTrip(t *testing.T) {
	c, _, _ := newRig(1<<20, DefaultConfig)
	f := func(off uint16, v uint64, szRaw uint8) bool {
		size := int(szRaw)%8 + 1
		a := physmem.Addr(uint64(off) &^ 7) // group-aligned base
		if uint64(a)%physmem.GroupBytes+uint64(size) > physmem.GroupBytes {
			return true
		}
		mask := uint64(1)<<(uint(size)*8) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		c.StoreBytes(a, size, v)
		return c.LoadBytes(a, size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
