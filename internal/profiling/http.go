package profiling

import (
	"net/http"
	"net/http/pprof"
)

// AttachHTTP wires the standard /debug/pprof/* handlers onto mux — the
// live counterpart of the -cpuprofile/-memprofile flags, for the obsrv
// server's embedded endpoint. Handlers are registered explicitly instead
// of importing net/http/pprof for its DefaultServeMux side effect, so
// binaries that never serve HTTP expose nothing.
func AttachHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
