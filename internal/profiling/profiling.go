// Package profiling gives every CLI in this repo the standard pair of pprof
// flags. Importing it registers -cpuprofile and -memprofile on the default
// flag set; after flag.Parse the CLI calls Start once, and routes every
// exit through Exit so profiles are flushed — os.Exit would silently
// truncate a CPU profile mid-write.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")

	cpuOut *os.File
)

// Start begins CPU profiling when -cpuprofile was given. Call it once,
// after flag.Parse.
func Start() error {
	if *cpuProfile == "" {
		return nil
	}
	f, err := os.Create(*cpuProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	cpuOut = f
	return nil
}

// stop flushes the CPU profile and writes the heap profile, if requested.
func stop() error {
	if cpuOut != nil {
		pprof.StopCPUProfile()
		err := cpuOut.Close()
		cpuOut = nil
		if err != nil {
			return err
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // flush garbage so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// Exit flushes any active profiles and terminates the process with code.
func Exit(code int) {
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
