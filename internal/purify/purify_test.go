package purify

import (
	"errors"
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

type rig struct {
	m     *machine.Machine
	alloc *heap.Allocator
	tool  *Tool
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, alloc: alloc, tool: Attach(m, alloc, opts)}
}

func (r *rig) malloc(t *testing.T, n uint64) vm.VAddr {
	t.Helper()
	p, err := r.alloc.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func kindsOf(rs []Report) []BugKind {
	out := make([]BugKind, len(rs))
	for i, r := range rs {
		out[i] = r.Kind
	}
	return out
}

func TestCleanProgramNoReports(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Memset(p, 7, 64)
	for i := uint64(0); i < 64; i++ {
		_ = r.m.Load8(p + vm.VAddr(i))
	}
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("clean run reported: %v", kindsOf(r.tool.Reports()))
	}
}

func TestOverflowIsInvalidAccess(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 24)
	r.m.Store8(p+24, 1) // one byte past the end
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugInvalidWrite {
		t.Fatalf("reports = %v", kindsOf(reports))
	}
}

func TestFreedAccessDetected(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 32)
	r.m.Memset(p, 1, 32)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load8(p)
	r.m.Store8(p+1, 9)
	reports := r.tool.Reports()
	if len(reports) != 2 || reports[0].Kind != BugFreeRead || reports[1].Kind != BugFreeWrite {
		t.Fatalf("reports = %v", kindsOf(reports))
	}
}

func TestUninitReadDetected(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 16)
	r.m.Store8(p, 1)     // initialise byte 0 only
	_ = r.m.Load8(p)     // fine
	_ = r.m.Load8(p + 1) // uninit
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugUninitRead {
		t.Fatalf("reports = %v", kindsOf(reports))
	}
}

func TestUninitCheckCanBeDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.CheckUninit = false
	r := newRig(t, opts)
	p := r.malloc(t, 16)
	_ = r.m.Load8(p)
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("uninit reported despite disabled check: %v", kindsOf(r.tool.Reports()))
	}
}

func TestDuplicateReportsSuppressed(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 8)
	r.m.Store8(p+8, 1)
	r.m.Store8(p+8, 2)
	if n := len(r.tool.Reports()); n != 1 {
		t.Fatalf("reports = %d, want 1 (deduped)", n)
	}
}

func TestReuseAfterFreeIsClean(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 32)
	r.m.Memset(p, 1, 32)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	q := r.malloc(t, 32)
	if q != p {
		t.Skip("allocator did not reuse the extent")
	}
	r.m.Store8(q, 5) // write to reallocated memory: fine
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("reuse reported: %v", kindsOf(r.tool.Reports()))
	}
}

func TestLeakScanFindsUnreachableBlock(t *testing.T) {
	opts := DefaultOptions()
	opts.LeakScanPeriod = 0 // manual scans only
	r := newRig(t, opts)

	// rootCell is a word in simulated memory holding a pointer.
	rootBlock := r.malloc(t, 8)
	r.tool.AddRoot(rootBlock)

	reachable := r.malloc(t, 64)
	r.m.Store64(rootBlock, uint64(reachable)) // root -> reachable
	leaked := r.malloc(t, 48)
	r.m.Memset(leaked, 3, 48) // initialised but unreachable

	r.tool.LeakScan()
	var leaks []Report
	for _, rep := range r.tool.Reports() {
		if rep.Kind == BugLeak {
			leaks = append(leaks, rep)
		}
	}
	if len(leaks) != 1 || leaks[0].Addr != leaked {
		t.Fatalf("leak reports = %v", leaks)
	}
	// A second scan does not re-report.
	r.tool.LeakScan()
	n := 0
	for _, rep := range r.tool.Reports() {
		if rep.Kind == BugLeak {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("leak re-reported: %d", n)
	}
}

func TestLeakScanFollowsPointerChains(t *testing.T) {
	opts := DefaultOptions()
	opts.LeakScanPeriod = 0
	r := newRig(t, opts)
	root := r.malloc(t, 8)
	r.tool.AddRoot(root)
	a := r.malloc(t, 16)
	b := r.malloc(t, 16)
	c := r.malloc(t, 16)
	r.m.Store64(root, uint64(a))
	r.m.Store64(a, uint64(b)) // a -> b
	r.m.Store64(b, uint64(c)) // b -> c
	r.tool.LeakScan()
	for _, rep := range r.tool.Reports() {
		if rep.Kind == BugLeak {
			t.Fatalf("chained block reported leaked: %v", rep)
		}
	}
}

func TestLeakScanHonorsInteriorPointers(t *testing.T) {
	opts := DefaultOptions()
	opts.LeakScanPeriod = 0
	r := newRig(t, opts)
	root := r.malloc(t, 8)
	r.tool.AddRoot(root)
	blk := r.malloc(t, 128)
	r.m.Store64(root, uint64(blk)+40) // interior pointer
	r.tool.LeakScan()
	for _, rep := range r.tool.Reports() {
		if rep.Kind == BugLeak && rep.Addr == blk {
			t.Fatal("conservatively reachable block reported leaked")
		}
	}
}

func TestPerAccessOverheadCharged(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 8)
	r.m.Store64(p, 1)
	before := r.m.Clock.Now()
	_ = r.m.Load64(p)
	cost := r.m.Clock.Now() - before
	if cost < costCheckAccess {
		t.Fatalf("access cost %d < instrumentation charge %d", cost, costCheckAccess)
	}
}

func TestPeriodicScanTriggersFromAllocations(t *testing.T) {
	opts := DefaultOptions()
	opts.LeakScanPeriod = simtime.FromMicroseconds(100)
	r := newRig(t, opts)
	for i := 0; i < 300; i++ {
		p := r.malloc(t, 64)
		r.m.Compute(5000)
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if r.tool.Stats().LeakScans == 0 {
		t.Fatal("periodic scan never ran")
	}
}

func TestScanPausesProgram(t *testing.T) {
	opts := DefaultOptions()
	opts.LeakScanPeriod = 0
	r := newRig(t, opts)
	for i := 0; i < 100; i++ {
		p := r.malloc(t, 1024)
		r.m.Store8(p, 1)
	}
	before := r.m.Clock.Now()
	r.tool.LeakScan()
	pause := r.m.Clock.Now() - before
	if pause < costSweepBase {
		t.Fatalf("scan pause %d below base cost", pause)
	}
	if r.tool.Stats().BytesSwept != 100*1024 {
		t.Fatalf("BytesSwept = %d", r.tool.Stats().BytesSwept)
	}
}

func BenchmarkAccessCheck(b *testing.B) {
	m, err := machine.New(machine.Config{MemBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tool := Attach(m, alloc, DefaultOptions())
	p, err := alloc.Malloc(64)
	if err != nil {
		b.Fatal(err)
	}
	m.Store64(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tool.OnLoad(p, 8)
	}
}

func BenchmarkLeakScan(b *testing.B) {
	m, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{Limit: 12 << 20})
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.LeakScanPeriod = 0
	tool := Attach(m, alloc, opts)
	root, err := alloc.Malloc(8)
	if err != nil {
		b.Fatal(err)
	}
	tool.AddRoot(root)
	prev := root
	for i := 0; i < 500; i++ {
		p, err := alloc.Malloc(1024)
		if err != nil {
			b.Fatal(err)
		}
		m.Store64(prev, uint64(p)) // chain: all reachable
		prev = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tool.LeakScan()
	}
}

func TestReallocTracksShadow(t *testing.T) {
	r := newRig(t, DefaultOptions())
	p := r.malloc(t, 32)
	r.m.Memset(p, 1, 32)
	q, err := r.alloc.Realloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The preserved prefix is initialized; the grown tail is not.
	_ = r.m.Load8(q + 31)
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("copied prefix flagged: %v", kindsOf(r.tool.Reports()))
	}
	_ = r.m.Load8(q + 63)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugUninitRead {
		t.Fatalf("grown tail reports = %v", kindsOf(reports))
	}
	// The old extent (if moved) is freed memory now.
	if q != p {
		r.m.Store8(p, 9)
		found := false
		for _, rep := range r.tool.Reports() {
			if rep.Kind == BugFreeWrite {
				found = true
			}
		}
		if !found {
			t.Fatal("write to pre-realloc extent not flagged")
		}
	}
}

func TestShadowSpansPages(t *testing.T) {
	// One allocation crossing a 4 KiB page boundary: state must be tracked
	// seamlessly across the shadow's per-page arrays.
	r := newRig(t, DefaultOptions())
	filler := r.malloc(t, 4000) // push the next block near the page edge
	_ = filler
	p := r.malloc(t, 2000)
	r.m.Memset(p, 5, 2000)
	for off := uint64(0); off < 2000; off += 123 {
		_ = r.m.Load8(p + vm.VAddr(off))
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("cross-page block misflagged: %v", kindsOf(r.tool.Reports()))
	}
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load8(p + 1999) // far end, other page
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugFreeRead {
		t.Fatalf("cross-page freed read = %v", kindsOf(reports))
	}
}

func TestStopOnBugAborts(t *testing.T) {
	opts := DefaultOptions()
	opts.StopOnBug = true
	r := newRig(t, opts)
	p := r.malloc(t, 8)
	err := r.m.Run(func() error {
		r.m.Store8(p+8, 1)
		return nil
	})
	var abort *machine.ProgramAbort
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want abort", err)
	}
}

func TestSiteAttributionOnFreedAccess(t *testing.T) {
	r := newRig(t, DefaultOptions())
	r.m.Call(0xabc)
	p := r.malloc(t, 32)
	r.m.Return()
	r.m.Memset(p, 1, 32)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	q := r.malloc(t, 32) // same extent, new block, no site frame
	if q == p {
		r.m.Store8(q, 1)
		if len(r.tool.Reports()) != 0 {
			t.Fatalf("reuse flagged: %v", kindsOf(r.tool.Reports()))
		}
	}
}
