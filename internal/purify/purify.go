// Package purify reimplements the paper's comparison baseline from its own
// description (Sections 5 and 7): a Purify-style software-only dynamic
// checker that
//
//   - maintains two status bits for each byte of heap memory (allocated or
//     freed, initialized or uninitialized),
//   - intercepts *every* load and store and checks it against the status —
//     the source of its 5×–120× slowdown,
//   - detects memory leaks with a periodic conservative mark-and-sweep over
//     the whole heap, pausing the program for the duration of the scan.
//
// The tool attaches to the machine as a Monitor (per-access hook) and to
// the heap as a Hook (allocation events).
package purify

import (
	"fmt"
	"sort"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// Per-access instrumentation charge: the injected call, the shadow-memory
// lookup (a real memory access to the 2-bit-per-byte table, often a cache
// miss of its own), and the state test. This single constant is what makes
// Purify 2–3 orders of magnitude more expensive than SafeMem on
// access-dominated programs; large-heap programs additionally pay the
// mark-and-sweep pauses below.
const (
	costCheckAccess simtime.Cycles = 120
	costShadowByte  simtime.Cycles = 1 // shadow updates at alloc/free, per 8 bytes
	// costSweepPerByte is the mark-and-sweep charge per live heap byte
	// scanned (conservative pointer tracking reads every word).
	costSweepPerByte                = 1.2
	costSweepBase    simtime.Cycles = 50_000
)

// state is the 2-bit per-byte status.
type state uint8

const (
	stateUnalloc state = iota // red: never allocated (or heap metadata)
	stateUninit               // yellow: allocated, not yet written
	stateInit                 // green: allocated and written
	stateFreed                // red: freed
)

// BugKind classifies Purify reports.
type BugKind int

const (
	// BugInvalidRead / BugInvalidWrite: access to unallocated heap memory
	// (including guard-zone style overflows past a buffer).
	BugInvalidRead BugKind = iota
	BugInvalidWrite
	// BugFreeRead / BugFreeWrite: access to freed memory.
	BugFreeRead
	BugFreeWrite
	// BugUninitRead: read of an allocated but never-written byte.
	BugUninitRead
	// BugLeak: a block unreachable from the registered roots.
	BugLeak
)

// String names the kind in Purify's classic acronym style.
func (k BugKind) String() string {
	switch k {
	case BugInvalidRead:
		return "IPR(invalid-read)"
	case BugInvalidWrite:
		return "IPW(invalid-write)"
	case BugFreeRead:
		return "FMR(free-memory-read)"
	case BugFreeWrite:
		return "FMW(free-memory-write)"
	case BugUninitRead:
		return "UMR(uninit-memory-read)"
	case BugLeak:
		return "MLK(memory-leak)"
	default:
		return fmt.Sprintf("BugKind(%d)", int(k))
	}
}

// Report is one Purify finding.
type Report struct {
	Kind BugKind
	Time simtime.Cycles
	Addr vm.VAddr
	Size uint64 // leak: leaked bytes; access: access size
	Site uint64 // allocation site (when known)
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("[%s] %s addr=%#x size=%d site=%#x",
		r.Time, r.Kind, uint64(r.Addr), r.Size, r.Site)
}

// Options configures the tool.
type Options struct {
	// CheckUninit enables uninitialized-read reporting (on by default in
	// real Purify; the paper notes it cannot be disabled there).
	CheckUninit bool
	// LeakScanPeriod is the CPU time between mark-and-sweep passes. Zero
	// disables periodic scans (FinalLeakScan can still be called at exit).
	LeakScanPeriod simtime.Cycles
	// StopOnBug aborts the program at the first access bug.
	StopOnBug bool
}

// DefaultOptions mirrors a stock Purify run: all access checks on, leak
// scan every simulated 10 ms.
func DefaultOptions() Options {
	return Options{
		CheckUninit:    true,
		LeakScanPeriod: simtime.FromMicroseconds(10_000),
	}
}

// Stats counts tool activity.
type Stats struct {
	AccessesChecked uint64
	ShadowBytes     uint64
	LeakScans       uint64
	BlocksScanned   uint64
	BytesSwept      uint64
	Reports         uint64
}

// Tool is an attached Purify instance. It implements machine.Monitor and
// heap.Hook.
type Tool struct {
	m     *machine.Machine
	alloc *heap.Allocator
	opts  Options

	// shadow holds the per-byte state, one page-sized array per heap page.
	shadow map[vm.VAddr]*[vm.PageBytes]state

	// roots are simulated-memory addresses whose word values are treated
	// as the root set for conservative pointer tracking. Programs (or the
	// harness) register their globals here.
	roots []vm.VAddr

	lastScan simtime.Cycles
	reports  []Report
	stats    Stats

	// reportedLeaks dedupes leak reports by block sequence number.
	reportedLeaks map[uint64]bool
	// suppressed avoids re-reporting the same access bug address+kind.
	suppressed map[suppressKey]bool
}

type suppressKey struct {
	kind BugKind
	addr vm.VAddr
}

// Attach wires a Purify tool onto machine m and allocator alloc.
func Attach(m *machine.Machine, alloc *heap.Allocator, opts Options) *Tool {
	t := &Tool{
		m:             m,
		alloc:         alloc,
		opts:          opts,
		shadow:        make(map[vm.VAddr]*[vm.PageBytes]state),
		lastScan:      m.Clock.Now(),
		reportedLeaks: make(map[uint64]bool),
		suppressed:    make(map[suppressKey]bool),
	}
	alloc.AddHook(t)
	m.AttachMonitor(t)
	return t
}

// AddRoot registers a simulated-memory word address as part of the root
// set for leak scanning (the stand-in for Purify's stack/global scan).
func (t *Tool) AddRoot(va vm.VAddr) { t.roots = append(t.roots, va) }

// Reports returns all findings so far.
func (t *Tool) Reports() []Report {
	out := make([]Report, len(t.reports))
	copy(out, t.reports)
	return out
}

// Stats returns a copy of the counters.
func (t *Tool) Stats() Stats { return t.stats }

func (t *Tool) report(kind BugKind, addr vm.VAddr, size, site uint64) {
	key := suppressKey{kind: kind, addr: addr}
	if t.suppressed[key] {
		return
	}
	t.suppressed[key] = true
	t.reports = append(t.reports, Report{
		Kind: kind, Time: t.m.Clock.Now(), Addr: addr, Size: size, Site: site,
	})
	t.stats.Reports++
	if t.opts.StopOnBug && kind != BugLeak {
		machine.Abort("purify: %s at %#x", kind, uint64(addr))
	}
}

// setRange paints [va, va+n) with state s.
func (t *Tool) setRange(va vm.VAddr, n uint64, s state) {
	t.stats.ShadowBytes += n
	t.m.Clock.Advance(simtime.Cycles(n/8+1) * costShadowByte)
	for i := uint64(0); i < n; i++ {
		a := va + vm.VAddr(i)
		pg := a.PageAddr()
		sh := t.shadow[pg]
		if sh == nil {
			sh = new([vm.PageBytes]state)
			t.shadow[pg] = sh
		}
		sh[a.PageOffset()] = s
	}
}

func (t *Tool) stateAt(va vm.VAddr) state {
	sh := t.shadow[va.PageAddr()]
	if sh == nil {
		return stateUnalloc
	}
	return sh[va.PageOffset()]
}

// inHeap reports whether va lies in the allocator's arena; Purify only
// checks heap accesses.
func (t *Tool) inHeap(va vm.VAddr) bool {
	lo, hi := t.alloc.ArenaRange()
	return va >= lo && va < hi
}

// OnAlloc implements heap.Hook.
func (t *Tool) OnAlloc(b *heap.Block) {
	t.setRange(b.Addr, b.Size, stateUninit)
	t.maybeScan()
}

// OnFree implements heap.Hook.
func (t *Tool) OnFree(b *heap.Block) {
	t.setRange(b.Addr, b.Size, stateFreed)
	t.maybeScan()
}

// OnLoad implements machine.Monitor: every read is checked.
func (t *Tool) OnLoad(va vm.VAddr, size int) {
	t.stats.AccessesChecked++
	t.m.Clock.Advance(costCheckAccess)
	if !t.inHeap(va) {
		return
	}
	for i := 0; i < size; i++ {
		a := va + vm.VAddr(i)
		switch t.stateAt(a) {
		case stateUnalloc:
			t.report(BugInvalidRead, a, uint64(size), t.siteOf(a))
			return
		case stateFreed:
			t.report(BugFreeRead, a, uint64(size), t.siteOf(a))
			return
		case stateUninit:
			if t.opts.CheckUninit {
				t.report(BugUninitRead, a, uint64(size), t.siteOf(a))
				return
			}
		}
	}
}

// OnStore implements machine.Monitor: every write is checked, and valid
// writes mark bytes initialized.
func (t *Tool) OnStore(va vm.VAddr, size int) {
	t.stats.AccessesChecked++
	t.m.Clock.Advance(costCheckAccess)
	if !t.inHeap(va) {
		return
	}
	for i := 0; i < size; i++ {
		a := va + vm.VAddr(i)
		switch t.stateAt(a) {
		case stateUnalloc:
			t.report(BugInvalidWrite, a, uint64(size), t.siteOf(a))
			return
		case stateFreed:
			t.report(BugFreeWrite, a, uint64(size), t.siteOf(a))
			return
		}
	}
	// Mark written bytes initialized (cheap: statuses are in the same
	// shadow words just inspected).
	for i := 0; i < size; i++ {
		a := va + vm.VAddr(i)
		if t.stateAt(a) == stateUninit {
			sh := t.shadow[a.PageAddr()]
			sh[a.PageOffset()] = stateInit
		}
	}
}

// siteOf best-effort resolves the allocation site of the block adjacent to
// an access bug (for reports only; not on the hot path).
func (t *Tool) siteOf(va vm.VAddr) uint64 {
	if b, ok := t.alloc.BlockContaining(va); ok {
		return b.Site
	}
	return 0
}

// maybeScan runs the periodic leak scan when the period has elapsed. Like
// the real tool, the scan pauses the program: its full cost lands on the
// program's CPU-time clock.
func (t *Tool) maybeScan() {
	if t.opts.LeakScanPeriod == 0 {
		return
	}
	now := t.m.Clock.Now()
	if now-t.lastScan < t.opts.LeakScanPeriod {
		return
	}
	t.lastScan = now
	t.LeakScan()
}

// LeakScan performs one conservative mark-and-sweep pass and reports
// unreachable blocks. Exported so harnesses can force an exit-time scan.
func (t *Tool) LeakScan() {
	t.stats.LeakScans++
	blocks := t.alloc.LiveBlocks()
	t.stats.BlocksScanned += uint64(len(blocks))

	// Charge the pause: conservative pointer tracking reads every word of
	// every live block plus the root set.
	var liveBytes uint64
	for _, b := range blocks {
		liveBytes += b.Size
	}
	t.stats.BytesSwept += liveBytes
	t.m.Clock.Advance(costSweepBase + simtime.Cycles(costSweepPerByte*float64(liveBytes)))

	// Index block ranges for interior-pointer resolution.
	starts := make([]vm.VAddr, len(blocks))
	for i, b := range blocks {
		starts[i] = b.Addr
	}
	find := func(ptr vm.VAddr) int {
		i := sort.Search(len(blocks), func(i int) bool { return starts[i] > ptr }) - 1
		if i >= 0 && ptr >= blocks[i].Addr && ptr < blocks[i].Addr+vm.VAddr(blocks[i].Size) {
			return i
		}
		return -1
	}

	marked := make([]bool, len(blocks))
	var work []int
	markPtr := func(word uint64) {
		if i := find(vm.VAddr(word)); i >= 0 && !marked[i] {
			marked[i] = true
			work = append(work, i)
		}
	}
	for _, root := range t.roots {
		// A root cell is reachable by definition — including when it lives
		// inside a heap block (e.g. a global table allocated at startup).
		markPtr(uint64(root))
		if w, ok := t.m.PeekWord(root); ok {
			markPtr(w)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		b := blocks[i]
		for off := uint64(0); off+8 <= b.Size; off += 8 {
			if w, ok := t.m.PeekWord(b.Addr + vm.VAddr(off)); ok {
				markPtr(w)
			}
		}
	}
	for i, b := range blocks {
		if !marked[i] && !t.reportedLeaks[b.Seq] {
			t.reportedLeaks[b.Seq] = true
			t.report(BugLeak, b.Addr, b.Size, b.Site)
		}
	}
}
