package kernel

import (
	"testing"

	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// tick advances the clock past the daemon's next deadline and drains the
// resulting deferred work, the way a machine access boundary would.
func (r *rig) tick(n simtime.Cycles) {
	r.clock.Advance(n)
	r.k.RunDeferredWork()
}

func TestScrubDaemonStepsAndSkipsWatchedLines(t *testing.T) {
	r := newRig(t, 1<<16) // 1024 lines: one chunk can cover all of DRAM
	mapHeap(t, r, 1)
	r.store(t, base, 0x5a5a)
	if _, err := r.k.WatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	r.k.StartScrubDaemon(ScrubDaemonOptions{Interval: 1_000, Chunk: 1024})
	r.tick(1_100)
	cs := r.ctrl.Stats()
	if cs.ScrubbedLines == 0 {
		t.Fatal("daemon scrubbed nothing")
	}
	if cs.ScrubSkipped == 0 {
		t.Fatal("watched line was not skipped by the scrub filter")
	}
	if cs.ScrubbedLines+cs.ScrubSkipped != 1024 {
		t.Fatalf("scrubbed %d + skipped %d != 1024", cs.ScrubbedLines, cs.ScrubSkipped)
	}
	// The watched line's scramble must be intact: the scrubber never read
	// it, so no fault fired and no stats moved.
	if r.ctrl.Stats().Uncorrectable != 0 {
		t.Fatal("scrub daemon tripped the watched line")
	}
	if r.k.ResilienceStats().ScrubDaemonSteps != 1 {
		t.Fatalf("ScrubDaemonSteps = %d, want 1", r.k.ResilienceStats().ScrubDaemonSteps)
	}
}

func TestScrubDaemonAdaptsToErrorPressure(t *testing.T) {
	r := newRig(t, 1<<16)
	mapHeap(t, r, 1)
	opts := ScrubDaemonOptions{Interval: 10_000, MinInterval: 2_500, MaxInterval: 40_000, Chunk: 8, StormEvents: 4}
	r.k.StartScrubDaemon(opts)
	if got := r.k.ScrubDaemonInterval(); got != 10_000 {
		t.Fatalf("initial interval %d", got)
	}

	// Quiet period: each step without new error events doubles the interval
	// up to the cap.
	r.tick(10_100)
	if got := r.k.ScrubDaemonInterval(); got != 20_000 {
		t.Fatalf("interval after quiet step = %d, want 20000", got)
	}
	r.tick(20_100)
	r.tick(40_100)
	if got := r.k.ScrubDaemonInterval(); got != 40_000 {
		t.Fatalf("interval not capped at MaxInterval: %d", got)
	}

	// Storm: a burst of correctable errors halves the interval down to the
	// floor. Flip one data bit per line — the scrubber (or these demand
	// reads) reports them as corrected singles.
	for i := 0; i < 6; i++ {
		va := base + vm.VAddr(i*8)
		pa, _ := r.as.Translate(va, false)
		r.cache.FlushLine(pa.LineAddr())
		data, check := r.ctrl.Memory().ReadGroupRaw(pa)
		r.ctrl.Memory().WriteGroupRaw(pa, data^1, check)
		r.load(t, va)
	}
	r.tick(40_100)
	if got := r.k.ScrubDaemonInterval(); got != 20_000 {
		t.Fatalf("interval after storm step = %d, want 20000", got)
	}
	r.tick(20_100) // still sees zero new events → doubles again
	if got := r.k.ScrubDaemonInterval(); got != 40_000 {
		t.Fatalf("interval after recovery = %d, want 40000", got)
	}
}

func TestScrubDaemonRetriesBusLockedChunk(t *testing.T) {
	r := newRig(t, 1<<16)
	mapHeap(t, r, 1)
	r.k.StartScrubDaemon(ScrubDaemonOptions{Interval: 1_000, Chunk: 16})
	r.ctrl.LockBus()
	r.tick(1_100)
	if got := r.ctrl.Stats().ScrubbedLines; got != 0 {
		t.Fatalf("scrubbed %d lines with the bus locked", got)
	}
	if got := r.ctrl.Stats().ScrubSkipped; got != 16 {
		t.Fatalf("ScrubSkipped = %d, want 16", got)
	}
	r.ctrl.UnlockBus()
	// The next step covers the debt: 16 retried + 16 fresh. (The locked
	// step saw zero error events, so the interval doubled to 2000.)
	r.tick(3_000)
	if got := r.ctrl.Stats().ScrubbedLines; got != 32 {
		t.Fatalf("ScrubbedLines = %d after retry step, want 32", got)
	}
}

func TestStopScrubDaemonSilencesTimer(t *testing.T) {
	r := newRig(t, 1<<16)
	r.k.StartScrubDaemon(ScrubDaemonOptions{Interval: 1_000, Chunk: 4})
	r.tick(1_100)
	steps := r.k.ResilienceStats().ScrubDaemonSteps
	if steps == 0 {
		t.Fatal("daemon never stepped")
	}
	r.k.StopScrubDaemon()
	r.tick(10_000)
	if got := r.k.ResilienceStats().ScrubDaemonSteps; got != steps {
		t.Fatalf("daemon stepped after Stop: %d -> %d", steps, got)
	}
	if r.k.ScrubDaemonInterval() != 0 {
		t.Fatal("interval reported for stopped daemon")
	}
}

// scrub-daemon + fault-survival integration: a latent multi-bit fault on an
// unwatched line found BY the scrubber is absorbed under RetireAndContinue.
func TestScrubDaemonFindsLatentFaultAndSurvives(t *testing.T) {
	r := newRig(t, 1<<16)
	r.k.SetResilience(ResilienceOptions{Policy: RetireAndContinue})
	mapHeap(t, r, 1)
	r.store(t, base, 0xbeef)
	pa, _ := r.as.Translate(base, false)
	plantBad(r, pa)
	r.k.StartScrubDaemon(ScrubDaemonOptions{Interval: 1_000, Chunk: 1024})
	r.tick(1_100)
	if r.k.Panicked() {
		t.Fatal("kernel panicked on a scrub-found fault under RetireAndContinue")
	}
	if r.k.ResilienceStats().DataLossEvents != 1 {
		t.Fatalf("DataLossEvents = %d, want 1", r.k.ResilienceStats().DataLossEvents)
	}
}
