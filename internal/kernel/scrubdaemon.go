// Background scrub daemon: incremental, watch-aware DRAM scrubbing driven
// by a clock timer. CoordinatedScrub (Section 2.2.2) is a stop-the-world
// full pass — correct but far too expensive to run often (a 32 MiB machine
// is ~half a million lines). The daemon instead scrubs a small chunk per
// step and skips watched lines entirely via the controller's scrub filter:
// watched lines self-verify (every touch faults, and the unwatch path
// detects corrupted scrambles from the signature mismatch), so scrubbing
// them would only raise spurious faults.
//
// The step interval adapts to error pressure: a burst of ECC events since
// the last step (an error storm) halves the interval down to MinInterval —
// scrub harder while latent single-bit errors are piling up, before they
// pair into uncorrectable ones — and quiet periods double it back up to
// MaxInterval.
//
// The timer hook only marks a step due; the actual scrubbing runs at the
// next deferred-work point, where no memory access is in flight.

package kernel

import (
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// ScrubDaemonOptions configures the background scrub daemon.
type ScrubDaemonOptions struct {
	// Interval is the initial gap between scrub steps.
	Interval simtime.Cycles
	// MinInterval / MaxInterval bound the adaptive interval.
	MinInterval simtime.Cycles
	MaxInterval simtime.Cycles
	// Chunk is how many lines one step visits.
	Chunk int
	// StormEvents is the number of ECC error events since the previous
	// step that counts as a storm (interval halves).
	StormEvents uint64
}

// DefaultScrubDaemonOptions returns the defaults: 64-line chunks roughly
// every 50k cycles, adapting between 10k (storm) and 400k (quiet).
func DefaultScrubDaemonOptions() ScrubDaemonOptions {
	return ScrubDaemonOptions{
		Interval:    50_000,
		MinInterval: 10_000,
		MaxInterval: 400_000,
		Chunk:       64,
		StormEvents: 4,
	}
}

// scrubDaemon is the kernel's background scrubber state.
type scrubDaemon struct {
	opts       ScrubDaemonOptions
	interval   simtime.Cycles
	timer      *simtime.Timer
	due        bool
	lastEvents uint64 // controller error-event total at the last step
	debt       int    // bus-locked lines to revisit on the next step
}

// StartScrubDaemon starts (or restarts) the background scrub daemon.
// Zero-valued option fields take their defaults. The controller is switched
// to Correct-and-Scrub mode and given a filter that keeps the scrubber off
// watched lines.
func (k *Kernel) StartScrubDaemon(opts ScrubDaemonOptions) {
	if k.scrubd != nil {
		k.StopScrubDaemon()
	}
	d := DefaultScrubDaemonOptions()
	if opts.Interval <= 0 {
		opts.Interval = d.Interval
	}
	if opts.MinInterval <= 0 {
		opts.MinInterval = d.MinInterval
	}
	if opts.MaxInterval <= 0 {
		opts.MaxInterval = d.MaxInterval
	}
	if opts.Chunk <= 0 {
		opts.Chunk = d.Chunk
	}
	if opts.StormEvents == 0 {
		opts.StormEvents = d.StormEvents
	}
	if opts.MinInterval > opts.Interval {
		opts.MinInterval = opts.Interval
	}
	if opts.MaxInterval < opts.Interval {
		opts.MaxInterval = opts.Interval
	}
	if k.ctrl.Mode() != memctrl.CorrectAndScrub {
		k.ctrl.SetMode(memctrl.CorrectAndScrub)
	}
	k.ctrl.SetScrubFilter(func(line physmem.Addr) bool {
		_, watched := k.byPhys[line]
		return !watched
	})
	sd := &scrubDaemon{opts: opts, interval: opts.Interval, lastEvents: k.errorEvents()}
	sd.timer = k.clock.NewTimer(k.clock.Now()+sd.interval, func(now simtime.Cycles) simtime.Cycles {
		sd.due = true
		return now + sd.interval
	})
	k.scrubd = sd
}

// StopScrubDaemon stops the daemon and removes the scrub filter. The
// controller stays in Correct-and-Scrub mode (CoordinatedScrub still works).
func (k *Kernel) StopScrubDaemon() {
	if k.scrubd == nil {
		return
	}
	k.scrubd.timer.Stop()
	k.ctrl.SetScrubFilter(nil)
	k.scrubd = nil
}

// ScrubDaemonInterval returns the daemon's current adaptive interval, or 0
// when the daemon is not running.
func (k *Kernel) ScrubDaemonInterval() simtime.Cycles {
	if k.scrubd == nil {
		return 0
	}
	return k.scrubd.interval
}

// errorEvents totals the controller's ECC error events (corrected plus
// uncorrectable) — the pressure signal the daemon adapts to.
func (k *Kernel) errorEvents() uint64 {
	s := k.ctrl.Stats()
	return s.CorrectedSingle + s.Uncorrectable
}

// scrubDaemonStep runs one due scrub chunk at a deferred-work point and
// adapts the interval to the observed error pressure.
func (k *Kernel) scrubDaemonStep() {
	sd := k.scrubd
	if sd == nil || !sd.due {
		return
	}
	sd.due = false
	// Adapt before scrubbing: the delta covers everything since the last
	// step, including latent errors the previous chunk itself uncovered —
	// a storm found by scrubbing is still a storm.
	events := k.errorEvents()
	delta := events - sd.lastEvents
	sd.lastEvents = events
	switch {
	case delta >= sd.opts.StormEvents:
		sd.interval /= 2
		if sd.interval < sd.opts.MinInterval {
			sd.interval = sd.opts.MinInterval
		}
	case delta == 0:
		sd.interval *= 2
		if sd.interval > sd.opts.MaxInterval {
			sd.interval = sd.opts.MaxInterval
		}
	}
	sp := k.tr.Begin("kernel", "scrub-daemon-step", telemetry.KV("chunk", uint64(sd.opts.Chunk+sd.debt)))
	defer sp.End()
	want := sd.opts.Chunk + sd.debt
	scrubbed, skipped := k.ctrl.ScrubStep(want)
	// Lines skipped with nothing scrubbed mean the bus was locked for the
	// whole step; carry them as debt so the next step covers the gap.
	// Filter skips (watched lines) are deliberate and are not retried.
	if scrubbed == 0 && skipped == want {
		if sd.debt < want {
			sd.debt = want
		}
	} else {
		sd.debt = 0
	}
	k.resStats.ScrubDaemonSteps++
	// Schedule the next step relative to NOW — after the scrub's own cycle
	// charges and with the freshly adapted interval. Without this, a chunk
	// that costs more than the interval would re-fire the timer mid-drain
	// and the daemon would scrub back-to-back forever.
	sd.due = false
	sd.timer.Reprogram(k.clock.Now() + sd.interval)
}
