package kernel

import (
	"strings"
	"testing"

	"safemem/internal/cache"
	"safemem/internal/ecc"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

type rig struct {
	clock *simtime.Clock
	ctrl  *memctrl.Controller
	cache *cache.Cache
	as    *vm.AddressSpace
	k     *Kernel
}

func newRig(t *testing.T, memBytes uint64) *rig {
	t.Helper()
	clock := &simtime.Clock{}
	mem := physmem.MustNew(memBytes)
	ctrl := memctrl.New(mem, clock)
	ch := cache.MustNew(ctrl, clock, cache.DefaultConfig)
	as := vm.New(mem, clock)
	k := New(clock, ctrl, ch, as)
	return &rig{clock: clock, ctrl: ctrl, cache: ch, as: as, k: k}
}

// load reads the word at virtual address va the way the CPU would: through
// translation and the cache.
func (r *rig) load(t *testing.T, va vm.VAddr) uint64 {
	t.Helper()
	pa, fault := r.as.Translate(va, false)
	if fault != nil {
		t.Fatalf("translate %#x: %v", uint64(va), fault)
	}
	return r.cache.LoadWord(pa)
}

func (r *rig) store(t *testing.T, va vm.VAddr, v uint64) {
	t.Helper()
	pa, fault := r.as.Translate(va, true)
	if fault != nil {
		t.Fatalf("translate %#x: %v", uint64(va), fault)
	}
	r.cache.StoreWord(pa, v)
}

const base = vm.VAddr(0x10000)

func mapHeap(t *testing.T, r *rig, pages int) {
	t.Helper()
	if err := r.k.MapPages(base, pages); err != nil {
		t.Fatal(err)
	}
}

func TestWatchMemoryAlignmentRules(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	if _, err := r.k.WatchMemory(base+8, 64); err == nil {
		t.Error("unaligned address accepted")
	}
	if _, err := r.k.WatchMemory(base, 100); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := r.k.WatchMemory(base, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := r.k.WatchMemory(0x900000, 64); err == nil {
		t.Error("unmapped region accepted")
	}
}

func TestWatchFaultsOnFirstAccessAndHandlerRepairs(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 0xabcdef0123456789)
	r.cache.FlushAll() // start from a cold cache

	orig, err := r.k.WatchMemory(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 8 || orig[0] != 0xabcdef0123456789 {
		t.Fatalf("original data = %v", orig)
	}
	if !r.k.Watched(base + 13) {
		t.Fatal("Watched() false for watched line")
	}

	var faults []*ECCFault
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		faults = append(faults, f)
		if !f.Watched {
			return false
		}
		if err := r.k.DisableWatchMemory(f.VLine, 64); err != nil {
			t.Fatalf("DisableWatchMemory in handler: %v", err)
		}
		return true
	})

	if got := r.load(t, base); got != 0xabcdef0123456789 {
		t.Fatalf("first access = %#x, want original data", got)
	}
	if len(faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(faults))
	}
	f := faults[0]
	if !f.Watched || f.VLine != base || f.GroupIndex != 0 || f.DuringScrub {
		t.Fatalf("bad fault: %+v", f)
	}
	if !ecc.IsScrambleOf(f.Data, orig[0]) {
		t.Fatal("fault data does not carry the scramble signature")
	}
	if r.k.Watched(base) {
		t.Fatal("line still watched after handler disabled it")
	}
	// Subsequent accesses are plain cache hits: no more faults.
	r.load(t, base)
	r.load(t, base+8)
	if len(faults) != 1 {
		t.Fatalf("faults after unwatch = %d", len(faults))
	}
}

func TestWriteToWatchedLineAlsoFaults(t *testing.T) {
	// Writes don't reach DRAM directly, but write-allocate fetches the line
	// first — which is how SafeMem catches stores (Section 2.2.2).
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base+64, 7)
	r.cache.FlushAll()
	if _, err := r.k.WatchMemory(base+64, 64); err != nil {
		t.Fatal(err)
	}
	n := 0
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		n++
		return r.k.DisableWatchMemory(f.VLine, 64) == nil
	})
	r.store(t, base+64, 9)
	if n != 1 {
		t.Fatalf("store to watched line raised %d faults, want 1", n)
	}
	if got := r.load(t, base+64); got != 9 {
		t.Fatalf("value after store = %d, want 9", got)
	}
}

func TestDoubleWatchRejected(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	if _, err := r.k.WatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := r.k.WatchMemory(base, 64); err == nil {
		t.Fatal("double watch accepted")
	}
	if err := r.k.DisableWatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if err := r.k.DisableWatchMemory(base, 64); err == nil {
		t.Fatal("double disable accepted")
	}
}

func TestMultiLineWatch(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 2)
	for i := 0; i < 4; i++ {
		r.store(t, base+vm.VAddr(i*64), uint64(i+1))
	}
	r.cache.FlushAll()
	orig, err := r.k.WatchMemory(base, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 32 {
		t.Fatalf("len(orig) = %d, want 32", len(orig))
	}
	for i := 0; i < 4; i++ {
		if orig[i*8] != uint64(i+1) {
			t.Fatalf("orig[%d] = %d", i*8, orig[i*8])
		}
	}
	if r.k.Stats().LinesWatched != 4 {
		t.Fatalf("LinesWatched = %d", r.k.Stats().LinesWatched)
	}
	if err := r.k.DisableWatchMemory(base, 4*64); err != nil {
		t.Fatal(err)
	}
	if r.k.Stats().LinesWatched != 0 {
		t.Fatal("watches remain")
	}
}

func TestWatchPinsPages(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	if _, err := r.k.WatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if r.as.Pinned(base) != 1 {
		t.Fatalf("pin count = %d, want 1", r.as.Pinned(base))
	}
	if n := r.as.SwapOutLRU(10); n != 0 {
		t.Fatal("watched page was swapped out")
	}
	if err := r.k.DisableWatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if r.as.Pinned(base) != 0 {
		t.Fatal("page still pinned after unwatch")
	}
}

func TestHardwareErrorPanicsWithoutHandler(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 0x42)
	r.cache.FlushAll()
	// Inject a genuine double-bit hardware error.
	pa, _ := r.as.Translate(base, false)
	r.ctrl.Memory().FlipDataBit(pa.GroupAddr(), 1)
	r.ctrl.Memory().FlipDataBit(pa.GroupAddr(), 33)

	defer func() {
		v := recover()
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recover() = %v, want *PanicError", v)
		}
		if !strings.Contains(pe.Error(), "uncorrectable ECC error") {
			t.Fatalf("panic message: %s", pe.Error())
		}
		if !r.k.Panicked() {
			t.Fatal("kernel not in panic mode")
		}
	}()
	r.load(t, base)
}

func TestHandlerReturningFalsePanics(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 1)
	r.cache.FlushAll()
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool { return false })
	pa, _ := r.as.Translate(base, false)
	r.ctrl.Memory().FlipDataBit(pa.GroupAddr(), 0)
	r.ctrl.Memory().FlipDataBit(pa.GroupAddr(), 5)
	defer func() {
		if recover() == nil {
			t.Fatal("no kernel panic")
		}
		if r.k.Stats().ECCFaultsHardware != 1 {
			t.Fatal("hardware fault not counted")
		}
	}()
	r.load(t, base)
}

func TestCoordinatedScrubDoesNotTripWatches(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 0x77)
	r.cache.FlushAll()
	r.ctrl.SetMode(memctrl.CorrectAndScrub)

	saved := map[vm.VAddr][]uint64{}
	watch := func(va vm.VAddr) {
		orig, err := r.k.WatchMemory(va, 64)
		if err != nil {
			t.Fatal(err)
		}
		saved[va] = orig
	}
	watch(base)

	spurious := 0
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		spurious++
		return false
	})
	// SafeMem's coordination: unwatch all before, rewatch after.
	r.k.SetScrubHooks(
		func() {
			for va := range saved {
				if err := r.k.DisableWatchMemory(va, 64); err != nil {
					t.Fatal(err)
				}
			}
		},
		func() {
			for va := range saved {
				if _, err := r.k.WatchMemory(va, 64); err != nil {
					t.Fatal(err)
				}
			}
		},
	)
	r.k.CoordinatedScrub()
	if spurious != 0 {
		t.Fatalf("scrub raised %d spurious faults", spurious)
	}
	if !r.k.Watched(base) {
		t.Fatal("watch not restored after scrub")
	}
	if r.k.Stats().ScrubPasses != 1 {
		t.Fatal("scrub pass not counted")
	}
}

func TestUncoordinatedScrubTripsWatch(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 0x99)
	r.cache.FlushAll()
	r.ctrl.SetMode(memctrl.CorrectAndScrub)
	if _, err := r.k.WatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	scrubFaults := 0
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		if f.DuringScrub && f.Watched {
			scrubFaults++
			return r.k.DisableWatchMemory(f.VLine, 64) == nil
		}
		return false
	})
	r.ctrl.ScrubAll() // no coordination hooks
	if scrubFaults == 0 {
		t.Fatal("uncoordinated scrub did not trip the watch")
	}
}

func TestSyscallCostsMatchTable2(t *testing.T) {
	// Table 2: WatchMemory 2.0µs, DisableWatchMemory 1.5µs, mprotect 1.02µs.
	// The simulator should land within 5% of each.
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 1)
	r.cache.FlushAll()

	measure := func(f func()) float64 {
		before := r.clock.Now()
		f()
		return (r.clock.Now() - before).Microseconds()
	}
	watchUS := measure(func() {
		if _, err := r.k.WatchMemory(base, 64); err != nil {
			t.Fatal(err)
		}
	})
	disableUS := measure(func() {
		if err := r.k.DisableWatchMemory(base, 64); err != nil {
			t.Fatal(err)
		}
	})
	mprotectUS := measure(func() {
		if err := r.k.Mprotect(base, 1, vm.ProtNone); err != nil {
			t.Fatal(err)
		}
	})
	within := func(got, want, tol float64) bool {
		return got >= want*(1-tol) && got <= want*(1+tol)
	}
	if !within(watchUS, 2.0, 0.05) {
		t.Errorf("WatchMemory = %.3fµs, want ≈2.0µs", watchUS)
	}
	if !within(disableUS, 1.5, 0.05) {
		t.Errorf("DisableWatchMemory = %.3fµs, want ≈1.5µs", disableUS)
	}
	if !within(mprotectUS, 1.02, 0.05) {
		t.Errorf("Mprotect = %.3fµs, want ≈1.02µs", mprotectUS)
	}
	if watchUS <= mprotectUS || disableUS <= mprotectUS {
		t.Error("ECC watch calls should cost slightly more than mprotect (pinning)")
	}
}

func TestMprotectDeliversToRegisteredHandler(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	called := false
	r.k.RegisterPageFaultHandler(func(f *vm.Fault) bool {
		called = true
		return false
	})
	h := r.k.PageFaultHandler()
	if h == nil {
		t.Fatal("handler not registered")
	}
	h(&vm.Fault{})
	if !called {
		t.Fatal("handler not invoked")
	}
}

func TestWatchSpanningPageBoundary(t *testing.T) {
	// A watched region crossing a page boundary pins BOTH pages and every
	// line faults correctly.
	r := newRig(t, 1<<20)
	mapHeap(t, r, 2)
	// Two lines straddling the page boundary.
	start := base + vm.VAddr(vm.PageBytes-64)
	r.store(t, start, 0xaa)
	r.store(t, start+64, 0xbb)
	r.cache.FlushAll()
	if _, err := r.k.WatchMemory(start, 128); err != nil {
		t.Fatal(err)
	}
	if r.as.Pinned(base) != 1 || r.as.Pinned(base+vm.PageBytes) != 1 {
		t.Fatalf("pins = %d/%d, want 1/1", r.as.Pinned(base), r.as.Pinned(base+vm.PageBytes))
	}
	faults := 0
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		faults++
		return r.k.DisableWatchMemory(f.VLine, 64) == nil
	})
	if got := r.load(t, start); got != 0xaa {
		t.Fatalf("first line = %#x", got)
	}
	if got := r.load(t, start+64); got != 0xbb {
		t.Fatalf("second line = %#x", got)
	}
	if faults != 2 {
		t.Fatalf("faults = %d, want 2", faults)
	}
	// The second unwatch released each page's pin.
	if r.as.Pinned(base) != 0 || r.as.Pinned(base+vm.PageBytes) != 0 {
		t.Fatal("pins remain")
	}
}

func TestWatchUnmappedTailFailsCleanly(t *testing.T) {
	// A region whose tail is unmapped must fail without leaving partial
	// watches or pins behind.
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	lastLine := base + vm.VAddr(vm.PageBytes-64)
	if _, err := r.k.WatchMemory(lastLine, 128); err == nil {
		t.Fatal("watch into unmapped memory succeeded")
	}
	if r.k.Stats().LinesWatched != 0 {
		t.Fatal("partial watch left behind")
	}
	if r.as.Pinned(base) != 0 {
		t.Fatal("pin leaked")
	}
}
