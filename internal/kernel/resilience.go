// Hardware-fault resilience: the kernel half of surviving DRAM faults
// instead of blue-screening on them. Unmodified kernels panic on any
// uncorrectable ECC error (Section 2.1); production machines with flaky
// DIMMs instead track per-line error history, retire pages whose frames
// keep faulting, and keep running with degraded data when a loss is truly
// unrecoverable. This file implements that ladder:
//
//  1. correctable errors feed a per-line leaky-bucket health score;
//  2. genuine uncorrectable errors (including ones SafeMem repaired from
//     its saved copy) add a heavier weight;
//  3. a line whose score crosses the retirement threshold gets its whole
//     frame queued for retirement — the page migrates to a healthy frame
//     (raw bits verbatim, so watch scrambles survive) and the bad frame is
//     quarantined forever;
//  4. an uncorrectable error nobody can repair is, under RetireAndContinue,
//     absorbed as a data-loss event: the line is rewritten through the ECC
//     generator so the machine keeps running, and the frame's health takes
//     the full uncorrectable penalty.
//
// Retirement cannot run inside the ECC interrupt — the controller re-reads
// the faulting group after the handler returns, and the cache refills under
// the old physical address — so threshold crossings only enqueue work here.
// The machine drains the queue via RunDeferredWork at access boundaries,
// when no memory operation is in flight.

package kernel

import (
	"sort"

	"safemem/internal/memctrl"
	"safemem/internal/obsrv/flight"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// RetirePolicy selects the kernel's response to an uncorrectable ECC error
// that the user-level handler did not handle.
type RetirePolicy int

const (
	// PanicOnUncorrectable is the stock behaviour of unmodified
	// Linux/Windows (Section 2.1): machine-check panic, reboot.
	PanicOnUncorrectable RetirePolicy = iota
	// RetireAndContinue keeps the machine running: the fault is absorbed
	// as a data-loss event, the line's health history is charged, and
	// frames that keep faulting are retired.
	RetireAndContinue
)

// String returns the policy name.
func (p RetirePolicy) String() string {
	if p == RetireAndContinue {
		return "RetireAndContinue"
	}
	return "PanicOnUncorrectable"
}

// ResilienceOptions configures the kernel's hardware-fault handling.
type ResilienceOptions struct {
	// Policy selects panic vs. survive on unhandled uncorrectable errors.
	Policy RetirePolicy
	// RetireThreshold is the leaky-bucket score at which a line's frame is
	// queued for retirement.
	RetireThreshold int
	// UncorrectableWeight is the health charge for one genuine
	// uncorrectable error; correctable errors charge 1.
	UncorrectableWeight int
	// LeakInterval is how often the bucket leaks one point: transient
	// single-bit upsets spread over time never accumulate to retirement,
	// while a weak cell faulting in bursts does.
	LeakInterval simtime.Cycles
}

// DefaultResilienceOptions returns the defaults: stock panic policy, with
// thresholds matching common BIOS/OS page-offlining heuristics (retire
// after a handful of correlated errors, forget isolated ones).
func DefaultResilienceOptions() ResilienceOptions {
	return ResilienceOptions{
		Policy:              PanicOnUncorrectable,
		RetireThreshold:     8,
		UncorrectableWeight: 4,
		LeakInterval:        1_000_000,
	}
}

// ResilienceStats counts resilience activity.
type ResilienceStats struct {
	PagesRetired     uint64 // frames quarantined after repeated errors
	WatchesMigrated  uint64 // watched lines re-pointed by retirements
	DataLossEvents   uint64 // unhandled uncorrectables absorbed (not repaired)
	RetireFailures   uint64 // retirements abandoned (e.g. no spare frame)
	ScrubDaemonSteps uint64 // background scrub chunks executed
}

// RetireNotifier is called after each successful page retirement with the
// doomed and replacement frame bases and the virtual line addresses of any
// watches that were re-pointed. SafeMem's library uses it to keep its own
// error accounting in step with the kernel's.
type RetireNotifier func(oldFrame, freshFrame physmem.Addr, movedWatches []vm.VAddr)

// lineHealth is one line's leaky-bucket error score.
type lineHealth struct {
	score int
	last  simtime.Cycles // last leak accounting time
}

// SetResilience installs the resilience configuration. Zero-valued
// threshold fields take their defaults, so callers can set just the policy.
func (k *Kernel) SetResilience(opts ResilienceOptions) {
	d := DefaultResilienceOptions()
	if opts.RetireThreshold <= 0 {
		opts.RetireThreshold = d.RetireThreshold
	}
	if opts.UncorrectableWeight <= 0 {
		opts.UncorrectableWeight = d.UncorrectableWeight
	}
	if opts.LeakInterval <= 0 {
		opts.LeakInterval = d.LeakInterval
	}
	k.res = opts
	if opts.Policy == RetireAndContinue && !k.healthObserver {
		// Correctable errors never reach handleECCInterrupt (the controller
		// fixes them inline), so health tracking taps the observer list.
		// AddFaultObserver, not SetFaultObserver: the single slot belongs to
		// the fault injector's latency probe.
		k.ctrl.AddFaultObserver(k.observeECCEvent)
		k.healthObserver = true
	}
}

// Resilience returns the current resilience configuration.
func (k *Kernel) Resilience() ResilienceOptions { return k.res }

// ResilienceStats returns a copy of the resilience counters.
func (k *Kernel) ResilienceStats() ResilienceStats { return k.resStats }

// SetRetireNotifier installs the retirement notification callback.
func (k *Kernel) SetRetireNotifier(fn RetireNotifier) { k.onRetire = fn }

// LineHealth returns the current leaky-bucket score of the line at pl,
// without applying leak decay. Zero means no recorded history.
func (k *Kernel) LineHealth(pl physmem.Addr) int {
	if h, ok := k.health[pl.LineAddr()]; ok {
		return h.score
	}
	return 0
}

// observeECCEvent is the controller fault observer feeding health tracking.
// Only correctable events are counted here: uncorrectable reports go
// through handleECCInterrupt, where watchpoint trips (the detector working
// as designed) can be told apart from genuine hardware errors.
func (k *Kernel) observeECCEvent(group physmem.Addr, uncorrectable bool) {
	if uncorrectable {
		return
	}
	k.noteHealth(group.LineAddr(), 1)
}

// noteHealth charges weight to the line's leaky bucket and queues the
// containing frame for retirement when the score crosses the threshold.
// Interrupt-safe: it touches only counters and the retirement queue.
func (k *Kernel) noteHealth(line physmem.Addr, weight int) {
	if k.res.Policy != RetireAndContinue || weight <= 0 {
		return
	}
	line = line.LineAddr()
	now := k.clock.Now()
	h := k.health[line]
	if h == nil {
		h = &lineHealth{last: now}
		k.health[line] = h
	} else if now > h.last {
		// Leak one point per LeakInterval elapsed, keeping the remainder
		// so slow drips still eventually drain the bucket.
		leaked := int((now - h.last) / k.res.LeakInterval)
		if leaked > 0 {
			h.score -= leaked
			if h.score < 0 {
				h.score = 0
			}
			h.last += simtime.Cycles(leaked) * k.res.LeakInterval
		}
	}
	h.score += weight
	if h.score >= k.res.RetireThreshold {
		k.queueRetire(line)
	}
}

// queueRetire enqueues the frame containing line for deferred retirement.
func (k *Kernel) queueRetire(line physmem.Addr) {
	frame := line &^ physmem.Addr(vm.PageBytes-1)
	if k.retireQueued[frame] || k.as.Retired(frame) {
		return
	}
	k.retireQueued[frame] = true
	k.pendingRetire = append(k.pendingRetire, frame)
}

// surviveUncorrectable is the RetireAndContinue floor of the degradation
// ladder: nobody could repair the fault, so the kernel accepts the observed
// (corrupt) data as the new truth, rewrites the line through the ECC
// generator so memory holds a valid codeword again, and charges the line's
// health. Any watch bookkeeping on the line is dropped — its scramble state
// is gone.
func (k *Kernel) surviveUncorrectable(r memctrl.FaultReport, fault *ECCFault) {
	sp := k.tr.Begin("kernel", "survive-uncorrectable", telemetry.KV("line", uint64(r.Line)))
	defer sp.End()
	k.resStats.DataLossEvents++
	flight.Emit(flight.KindDataLoss, "kernel", k.clock.Now(), "uncorrectable fault accepted as data loss",
		flight.F("line", uint64(r.Line)))
	pl := r.Line
	if fault.Watched {
		delete(k.watches, fault.VLine)
		delete(k.byPhys, pl)
		_ = k.as.Unpin(fault.VLine.PageAddr()) // best effort; watch is gone
	}
	// Flush first so no stale cached copy can mask the rewrite, then write
	// the raw bits back with ECC enabled: fresh check bits, same (lost)
	// data. The controller's post-handler re-read then decodes cleanly.
	k.cache.FlushLine(pl)
	raw := k.ctrl.PeekLine(pl)
	k.ctrl.WriteLine(pl, raw)
	k.noteHealth(pl, k.res.UncorrectableWeight)
}

// Defer queues fn to run at the next deferred-work point (after the current
// memory access completes). SafeMem's library uses it to re-arm watches
// from inside the ECC fault handler, where arming directly would make the
// controller's post-handler re-read fault recursively.
func (k *Kernel) Defer(fn func()) { k.deferred = append(k.deferred, fn) }

// WorkPending cheaply reports whether RunDeferredWork has anything to do.
// The machine's access loop checks it so the no-work common case is a
// couple of loads and branches instead of a call into the queue drain.
func (k *Kernel) WorkPending() bool {
	return len(k.pendingRetire) > 0 || len(k.deferred) > 0 ||
		(k.scrubd != nil && k.scrubd.due)
}

// RunDeferredWork drains queued retirements, deferred callbacks and due
// scrub-daemon steps. The machine calls it after every completed memory
// access; it is reentrancy-guarded and O(1) when nothing is pending.
func (k *Kernel) RunDeferredWork() {
	if k.inDeferred || k.panicked {
		return
	}
	k.inDeferred = true
	defer func() { k.inDeferred = false }()
	for {
		switch {
		case len(k.pendingRetire) > 0:
			frame := k.pendingRetire[0]
			k.pendingRetire = k.pendingRetire[1:]
			delete(k.retireQueued, frame)
			k.retireFrame(frame)
		case len(k.deferred) > 0:
			fn := k.deferred[0]
			k.deferred = k.deferred[1:]
			fn()
		case k.scrubd != nil && k.scrubd.due:
			k.scrubDaemonStep()
		default:
			return
		}
	}
}

// retireFrame migrates the page on frame to a healthy frame, quarantines
// frame, and re-points any watch bookkeeping. Runs only at deferred-work
// points.
func (k *Kernel) retireFrame(frame physmem.Addr) {
	if k.as.Retired(frame) {
		return
	}
	va, ok := k.as.VPageOf(frame)
	if !ok {
		// The page was unmapped (or swapped out) before the deferred
		// retirement ran; the frame is back in general circulation.
		// Forget its history rather than chase it.
		k.clearHealth(frame)
		return
	}
	sp := k.tr.Begin("kernel", "retire-page", telemetry.KV("frame", uint64(frame)))
	defer sp.End()
	// Watches on the doomed frame survive migration bit-for-bit (raw copy);
	// only the physical-address bookkeeping needs re-pointing. Sort for
	// deterministic notification order — map iteration is randomized.
	type moved struct {
		lva vm.VAddr
		e   watchEntry
	}
	var onFrame []moved
	for lva, e := range k.watches {
		if e.pline >= frame && e.pline < frame+physmem.Addr(vm.PageBytes) {
			onFrame = append(onFrame, moved{lva, e})
		}
	}
	sort.Slice(onFrame, func(i, j int) bool { return onFrame[i].lva < onFrame[j].lva })
	old, fresh, err := k.as.RetirePage(va)
	if err != nil {
		// No spare frame (all pinned, swap exhausted): abandon this
		// retirement and keep running on the flaky frame. Clearing the
		// health history gives the bucket a fresh start instead of
		// retrying on every subsequent error.
		k.resStats.RetireFailures++
		k.clearHealth(frame)
		flight.Emit(flight.KindRetireFailed, "kernel", k.clock.Now(), "no spare frame; staying on flaky frame",
			flight.F("frame", uint64(frame)))
		return
	}
	movedWatches := make([]vm.VAddr, 0, len(onFrame))
	for _, m := range onFrame {
		npl := fresh + (m.e.pline - old)
		delete(k.byPhys, m.e.pline)
		k.byPhys[npl] = m.lva
		k.watches[m.lva] = watchEntry{pline: npl, direct: m.e.direct}
		movedWatches = append(movedWatches, m.lva)
		k.resStats.WatchesMigrated++
	}
	k.clearHealth(old)
	k.resStats.PagesRetired++
	flight.Emit(flight.KindPageRetired, "kernel", k.clock.Now(), "flaky frame retired",
		flight.F("old_frame", uint64(old)),
		flight.F("new_frame", uint64(fresh)),
		flight.F("moved_watches", uint64(len(movedWatches))))
	if k.onRetire != nil {
		k.onRetire(old, fresh, movedWatches)
	}
}

// clearHealth drops the health history of every line in the frame.
func (k *Kernel) clearHealth(frame physmem.Addr) {
	for line := frame; line < frame+physmem.Addr(vm.PageBytes); line += physmem.LineBytes {
		delete(k.health, line)
	}
}
