package kernel

import (
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/simtime"
)

// newDirectRig builds a rig whose controller implements the Section 2.2.3
// generalised ECC interface.
func newDirectRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, 1<<20)
	r.ctrl.EnableDirectECCAccess()
	return r
}

func TestDirectWatchFaultsWithIntactData(t *testing.T) {
	r := newDirectRig(t)
	mapHeap(t, r, 1)
	r.store(t, base, 0x1234567890abcdef)
	r.cache.FlushAll()

	orig, err := r.k.WatchMemory(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if orig[0] != 0x1234567890abcdef {
		t.Fatalf("original = %#x", orig[0])
	}
	// The data in DRAM is NOT scrambled — only the check bits are.
	pa, _ := r.as.Translate(base, false)
	raw, check := r.ctrl.Memory().ReadGroupRaw(pa.GroupAddr())
	if raw != 0x1234567890abcdef {
		t.Fatalf("direct watch scrambled the data: %#x", raw)
	}
	if ecc.Check(check) != ecc.ScrambleCheck(ecc.Encode(raw)) {
		t.Fatalf("check bits not scramble-flipped")
	}

	var faults []*ECCFault
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		faults = append(faults, f)
		return r.k.DisableWatchMemory(f.VLine, 64) == nil
	})
	if got := r.load(t, base); got != 0x1234567890abcdef {
		t.Fatalf("first access = %#x", got)
	}
	if len(faults) != 1 {
		t.Fatalf("faults = %d", len(faults))
	}
	if !faults[0].Direct {
		t.Fatal("fault not marked Direct")
	}
	if faults[0].Data != 0x1234567890abcdef {
		t.Fatal("fault data should be the intact original")
	}
	// After disarm the memory is consistent.
	if got := r.load(t, base); got != 0x1234567890abcdef {
		t.Fatal("data corrupted after disarm")
	}
}

func TestDirectWatchCheaperThanScramble(t *testing.T) {
	direct := newDirectRig(t)
	mapHeap(t, direct, 1)
	classic := newRig(t, 1<<20)
	mapHeap(t, classic, 1)

	measure := func(r *rig) (simtime.Cycles, simtime.Cycles) {
		before := r.clock.Now()
		if _, err := r.k.WatchMemory(base, 64); err != nil {
			t.Fatal(err)
		}
		watch := r.clock.Now() - before
		before = r.clock.Now()
		if err := r.k.DisableWatchMemory(base, 64); err != nil {
			t.Fatal(err)
		}
		return watch, r.clock.Now() - before
	}
	dw, dd := measure(direct)
	cw, cd := measure(classic)
	if dw >= cw {
		t.Errorf("direct WatchMemory (%v) not cheaper than scramble path (%v)", dw, cw)
	}
	if dd >= cd {
		t.Errorf("direct DisableWatchMemory (%v) not cheaper than scramble path (%v)", dd, cd)
	}
	// The paper's motivation: no bus lock, no chipset mode switches. The
	// saving should be at least those costs.
	saved := cw - dw
	if saved < simtime.CostBusLock+simtime.CostBusUnlock+2*simtime.CostECCModeSwitch-200 {
		t.Errorf("direct path saved only %v", saved)
	}
}

func TestDirectWatchPinsAndCoordinatesLikeClassic(t *testing.T) {
	r := newDirectRig(t)
	mapHeap(t, r, 1)
	if _, err := r.k.WatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if r.as.Pinned(base) != 1 {
		t.Fatal("direct watch did not pin the page")
	}
	if !r.k.Watched(base) {
		t.Fatal("Watched() false")
	}
	if err := r.k.DisableWatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if r.as.Pinned(base) != 0 {
		t.Fatal("page still pinned")
	}
}

func TestDirectHardwareErrorRepair(t *testing.T) {
	// A real memory error that hits a direct-armed line must still be
	// distinguishable: the data no longer equals the saved original.
	r := newDirectRig(t)
	mapHeap(t, r, 1)
	r.store(t, base, 0xfeed)
	r.cache.FlushAll()
	orig, err := r.k.WatchMemory(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := r.as.Translate(base, false)
	r.ctrl.Memory().FlipDataBit(pa.GroupAddr(), 7)

	repaired := false
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		if f.Data == orig[f.GroupIndex] {
			t.Fatal("corrupted data still matches the original")
		}
		repaired = true
		return r.k.DisableWatchMemoryWithData(f.VLine, 64, orig) == nil
	})
	if got := r.load(t, base); got != 0xfeed {
		t.Fatalf("restored read = %#x", got)
	}
	if !repaired {
		t.Fatal("handler never ran")
	}
}

func TestDirectCheckBitAccessRequiresCapability(t *testing.T) {
	r := newRig(t, 1<<20) // no capability
	defer func() {
		if recover() == nil {
			t.Fatal("WriteCheckBits without capability did not panic")
		}
	}()
	r.ctrl.WriteCheckBits(0, 0)
}

func TestMixedBackendsUnwatchIndependently(t *testing.T) {
	// Two regions armed under different capabilities on the same rig (the
	// capability is flipped between calls): each disarms correctly.
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 1)
	r.store(t, base+64, 2)
	r.cache.FlushAll()
	if _, err := r.k.WatchMemory(base, 64); err != nil { // scramble path
		t.Fatal(err)
	}
	r.ctrl.EnableDirectECCAccess()
	if _, err := r.k.WatchMemory(base+64, 64); err != nil { // direct path
		t.Fatal(err)
	}
	if err := r.k.DisableWatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	if err := r.k.DisableWatchMemory(base+64, 64); err != nil {
		t.Fatal(err)
	}
	if got := r.load(t, base); got != 1 {
		t.Fatalf("region 1 = %d", got)
	}
	if got := r.load(t, base+64); got != 2 {
		t.Fatalf("region 2 = %d", got)
	}
}
