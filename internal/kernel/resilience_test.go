package kernel

import (
	"strings"
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
	"safemem/internal/vm"
)

// plantBad corrupts the ECC group at pa so the next checked read reports an
// uncorrectable error: flush any cached copy, then scramble the stored data
// while leaving the check bits stale (the same signature a DRAM multi-bit
// fault presents).
func plantBad(r *rig, pa physmem.Addr) {
	r.cache.FlushLine(pa.LineAddr())
	data, _ := r.ctrl.Memory().ReadGroupRaw(pa)
	r.ctrl.Memory().WriteGroupDataOnly(pa, ecc.Scramble(data))
}

func TestUnwatchedFaultPanicsUnderStockPolicy(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 0xdead)
	pa, _ := r.as.Translate(base, false)
	plantBad(r, pa)

	defer func() {
		v := recover()
		pe, ok := v.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v, want *PanicError", v)
		}
		if !strings.Contains(pe.Msg, "uncorrectable ECC error") {
			t.Fatalf("panic message %q", pe.Msg)
		}
		if !r.k.Panicked() {
			t.Error("kernel not in panic mode")
		}
	}()
	r.load(t, base)
	t.Fatal("load of corrupted unwatched line did not panic")
}

func TestUnwatchedFaultSurvivesUnderRetireAndContinue(t *testing.T) {
	r := newRig(t, 1<<20)
	r.k.SetResilience(ResilienceOptions{Policy: RetireAndContinue})
	mapHeap(t, r, 1)
	r.store(t, base, 0xdead)
	pa, _ := r.as.Translate(base, false)
	plantBad(r, pa)

	// The fault is absorbed: no panic, the observed (corrupt) word becomes
	// the accepted value, and the event is charged to the line's health.
	got := r.load(t, base)
	if got != ecc.Scramble(0xdead) {
		t.Fatalf("surviving load = %#x, want the corrupt word %#x", got, ecc.Scramble(0xdead))
	}
	if r.k.Panicked() {
		t.Fatal("kernel panicked despite RetireAndContinue")
	}
	rs := r.k.ResilienceStats()
	if rs.DataLossEvents != 1 {
		t.Fatalf("DataLossEvents = %d, want 1", rs.DataLossEvents)
	}
	if h := r.k.LineHealth(pa); h != DefaultResilienceOptions().UncorrectableWeight {
		t.Fatalf("LineHealth = %d, want %d", h, DefaultResilienceOptions().UncorrectableWeight)
	}
	// The rewrite restored a valid codeword: the next load is clean.
	before := r.ctrl.Stats().Uncorrectable
	if got := r.load(t, base+8); got != 0 {
		t.Fatalf("neighbour word = %#x, want 0", got)
	}
	r.cache.FlushLine(pa.LineAddr())
	_ = r.load(t, base)
	if r.ctrl.Stats().Uncorrectable != before {
		t.Fatal("line still faults after survive rewrite")
	}
}

func TestRepeatedFaultsRetireTheFrame(t *testing.T) {
	r := newRig(t, 1<<20)
	r.k.SetResilience(ResilienceOptions{Policy: RetireAndContinue})
	mapHeap(t, r, 1)
	r.store(t, base, 0x1111)
	r.store(t, base+vm.VAddr(physmem.LineBytes), 0x2222)
	oldFrame, _ := r.as.FrameOf(base)

	// Two absorbed uncorrectables on the same line reach the default
	// threshold (2 × weight 4 ≥ 8) and queue the frame for retirement.
	for i := 0; i < 2; i++ {
		pa, _ := r.as.Translate(base, false)
		plantBad(r, pa)
		r.load(t, base)
	}
	if r.as.RetiredFrames() != 0 {
		t.Fatal("retirement ran inside the interrupt, not at the deferred point")
	}
	r.k.RunDeferredWork()
	if r.as.RetiredFrames() != 1 || !r.as.Retired(oldFrame) {
		t.Fatalf("frame %#x not retired (retired=%d)", oldFrame, r.as.RetiredFrames())
	}
	rs := r.k.ResilienceStats()
	if rs.PagesRetired != 1 {
		t.Fatalf("PagesRetired = %d, want 1", rs.PagesRetired)
	}
	// Data on the page survived the migration; the page now lives on a
	// different frame and its health history is gone.
	if got, _ := r.as.FrameOf(base); got == oldFrame {
		t.Fatal("page still on the retired frame")
	}
	if got := r.load(t, base+vm.VAddr(physmem.LineBytes)); got != 0x2222 {
		t.Fatalf("neighbour line = %#x after retirement, want 0x2222", got)
	}
	pa, _ := r.as.Translate(base, false)
	if h := r.k.LineHealth(pa); h != 0 {
		t.Fatalf("health not cleared after retirement: %d", h)
	}
}

func TestHardwareRepairOnWatchedLineFeedsHealth(t *testing.T) {
	r := newRig(t, 1<<20)
	r.k.SetResilience(ResilienceOptions{Policy: RetireAndContinue})
	mapHeap(t, r, 1)
	r.store(t, base, 0xfeed)
	orig, err := r.k.WatchMemory(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	pl := r.k.watches[base].pline
	// A real hardware error on the watched line: the stored word no longer
	// equals Scramble(original), so the handler diagnoses hardware, repairs
	// from its saved copy, and reports Hardware=true.
	data, check := r.ctrl.Memory().ReadGroupRaw(pl)
	r.ctrl.Memory().WriteGroupRaw(pl, data^(1<<17), check)

	repaired := false
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		if !f.Watched {
			return false
		}
		if f.Data == ecc.Scramble(orig[f.GroupIndex]) {
			t.Fatal("signature matches: this should look like hardware, not a trip")
		}
		f.Hardware = true
		if err := r.k.DisableWatchMemoryWithData(f.VLine, 64, orig); err != nil {
			t.Fatalf("repair failed: %v", err)
		}
		repaired = true
		return true
	})
	if got := r.load(t, base); got != 0xfeed {
		t.Fatalf("repaired load = %#x, want 0xfeed", got)
	}
	if !repaired {
		t.Fatal("handler never ran")
	}
	if h := r.k.LineHealth(pl); h != DefaultResilienceOptions().UncorrectableWeight {
		t.Fatalf("LineHealth = %d after hardware repair, want %d",
			h, DefaultResilienceOptions().UncorrectableWeight)
	}
}

func TestRetirementRemapsWatches(t *testing.T) {
	r := newRig(t, 1<<20)
	r.k.SetResilience(ResilienceOptions{Policy: RetireAndContinue, RetireThreshold: 4})
	mapHeap(t, r, 1)
	r.store(t, base, 0xabcd)
	orig, err := r.k.WatchMemory(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	oldPl := r.k.watches[base].pline
	oldFrame := oldPl &^ physmem.Addr(vm.PageBytes-1)

	var notified []vm.VAddr
	r.k.SetRetireNotifier(func(old, fresh physmem.Addr, moved []vm.VAddr) {
		if old != oldFrame {
			t.Errorf("notifier old frame %#x, want %#x", old, oldFrame)
		}
		notified = moved
	})
	// Push a *different* line on the same frame over the threshold; the
	// whole frame retires and the watch must follow the page.
	r.k.noteHealth(oldFrame+physmem.Addr(physmem.LineBytes), 4)
	r.k.RunDeferredWork()

	if r.as.RetiredFrames() != 1 {
		t.Fatal("frame not retired")
	}
	if len(notified) != 1 || notified[0] != base {
		t.Fatalf("notifier moved watches = %v, want [%#x]", notified, uint64(base))
	}
	newPl := r.k.watches[base].pline
	if newPl == oldPl {
		t.Fatal("watch still points at the retired frame")
	}
	if got, ok := r.k.byPhys[newPl]; !ok || got != base {
		t.Fatal("byPhys not re-pointed")
	}
	if _, stale := r.k.byPhys[oldPl]; stale {
		t.Fatal("stale byPhys entry for retired frame")
	}
	if r.k.ResilienceStats().WatchesMigrated != 1 {
		t.Fatalf("WatchesMigrated = %d, want 1", r.k.ResilienceStats().WatchesMigrated)
	}

	// The scramble travelled with the raw copy: touching the watched word
	// still faults, and the saved copy still repairs it.
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		if !f.Watched || f.VLine != base {
			t.Errorf("fault not attributed to the migrated watch: %+v", f)
			return false
		}
		if err := r.k.DisableWatchMemoryWithData(f.VLine, 64, orig); err != nil {
			t.Fatalf("repair failed: %v", err)
		}
		return true
	})
	if got := r.load(t, base); got != 0xabcd {
		t.Fatalf("post-migration load = %#x, want 0xabcd", got)
	}
}

func TestSurviveDropsUnrepairedWatch(t *testing.T) {
	r := newRig(t, 1<<20)
	r.k.SetResilience(ResilienceOptions{Policy: RetireAndContinue})
	mapHeap(t, r, 1)
	r.store(t, base, 0x77)
	if _, err := r.k.WatchMemory(base, 64); err != nil {
		t.Fatal(err)
	}
	// No handler registered: the watch trip goes unhandled. Under
	// RetireAndContinue the kernel absorbs it, dropping the orphaned watch
	// instead of panicking.
	_ = r.load(t, base)
	if r.k.Panicked() {
		t.Fatal("kernel panicked")
	}
	if r.k.Watched(base) {
		t.Fatal("watch bookkeeping survived an unrepaired fault")
	}
	if r.k.ResilienceStats().DataLossEvents != 1 {
		t.Fatalf("DataLossEvents = %d, want 1", r.k.ResilienceStats().DataLossEvents)
	}
	if r.as.Pinned(base.PageAddr()) != 0 {
		t.Fatal("page still pinned after watch was dropped")
	}
}
