package kernel

import (
	"strings"
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
)

// TestDoubleDisableWatch: disabling a watch twice must fail cleanly the
// second time, and the failure must leave the kernel consistent enough to
// re-arm the same line.
func TestDoubleDisableWatch(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 4)
	r.store(t, base, 0x1111_2222_3333_4444)

	if _, err := r.k.WatchMemory(base, physmem.LineBytes); err != nil {
		t.Fatal(err)
	}
	if err := r.k.DisableWatchMemory(base, physmem.LineBytes); err != nil {
		t.Fatal(err)
	}
	err := r.k.DisableWatchMemory(base, physmem.LineBytes)
	if err == nil || !strings.Contains(err.Error(), "not watched") {
		t.Fatalf("second disable = %v, want 'not watched'", err)
	}
	if got := r.as.Pinned(base); got != 0 {
		t.Fatalf("pin count = %d after double disable, want 0", got)
	}
	// The failed call must not have broken anything: re-arm and restore.
	orig, err := r.k.WatchMemory(base, physmem.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	if orig[0] != 0x1111_2222_3333_4444 {
		t.Fatalf("re-watch saved %#x", orig[0])
	}
	if err := r.k.DisableWatchMemory(base, physmem.LineBytes); err != nil {
		t.Fatal(err)
	}
	if got := r.load(t, base); got != 0x1111_2222_3333_4444 {
		t.Fatalf("data after re-watch cycle = %#x", got)
	}
}

// TestDisablePartiallyWatchedRegion: a disable covering watched and
// unwatched lines must fail up front without disarming anything.
func TestDisablePartiallyWatchedRegion(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 4)
	r.store(t, base, 0xaaaa)

	if _, err := r.k.WatchMemory(base, physmem.LineBytes); err != nil {
		t.Fatal(err)
	}
	err := r.k.DisableWatchMemory(base, 2*physmem.LineBytes)
	if err == nil || !strings.Contains(err.Error(), "not watched") {
		t.Fatalf("partial disable = %v, want 'not watched'", err)
	}
	if !r.k.Watched(base) {
		t.Fatal("failed partial disable disarmed the watched line")
	}
	// The exact extent still disarms normally.
	if err := r.k.DisableWatchMemory(base, physmem.LineBytes); err != nil {
		t.Fatal(err)
	}
	if got := r.load(t, base); got != 0xaaaa {
		t.Fatalf("data = %#x", got)
	}
}

// TestScrubHitsWatchedLineWithoutHooks: without the Section 2.2.2
// coordination, a scrub pass walks straight into the scrambled groups and
// raises spurious watch faults — the failure mode the hooks exist to
// prevent.
func TestScrubHitsWatchedLineWithoutHooks(t *testing.T) {
	r := newRig(t, 1<<20)
	r.ctrl.SetMode(memctrl.CorrectAndScrub)
	mapHeap(t, r, 4)
	r.store(t, base, 0xbead)

	orig, err := r.k.WatchMemory(base, physmem.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	var spurious int
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		if !f.DuringScrub || !f.Watched {
			t.Errorf("unexpected fault: scrub=%v watched=%v", f.DuringScrub, f.Watched)
		}
		if f.GroupIndex == 0 && !ecc.IsScrambleOf(f.Data, orig[0]) {
			t.Errorf("fault data %#x is not the scramble of %#x", f.Data, orig[0])
		}
		spurious++
		return true
	})
	r.k.CoordinatedScrub()
	if spurious == 0 {
		t.Fatal("scrub over a watched line raised no faults — the coordination protocol would be pointless")
	}
}

// TestCoordinatedScrubRacesWatchArm: the scrub hooks disarm every watch
// before the pass and re-arm after, exactly SafeMem's protocol. The pass
// must stay silent, and the re-armed watch must still trip on the next
// access.
func TestCoordinatedScrubRacesWatchArm(t *testing.T) {
	r := newRig(t, 1<<20)
	r.ctrl.SetMode(memctrl.CorrectAndScrub)
	mapHeap(t, r, 4)
	r.store(t, base, 0xfeed_f00d_dead_beef)

	orig, err := r.k.WatchMemory(base, physmem.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	r.k.SetScrubHooks(
		func() {
			if err := r.k.DisableWatchMemory(base, physmem.LineBytes); err != nil {
				t.Fatalf("before-hook disarm: %v", err)
			}
		},
		func() {
			var werr error
			if orig, werr = r.k.WatchMemory(base, physmem.LineBytes); werr != nil {
				t.Fatalf("after-hook re-arm: %v", werr)
			}
		},
	)
	var faults []*ECCFault
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		faults = append(faults, f)
		return true
	})

	r.k.CoordinatedScrub()
	if len(faults) != 0 {
		t.Fatalf("coordinated scrub raised %d faults, want 0", len(faults))
	}
	if !r.k.Watched(base) {
		t.Fatal("after-hook did not re-arm the watch")
	}
	if orig[0] != 0xfeed_f00d_dead_beef {
		t.Fatalf("re-arm saved %#x — scrub corrupted the unwatched window", orig[0])
	}

	// The re-armed watch must still trip: a demand load faults with the
	// scramble signature.
	tripped := false
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		if !f.Watched || f.DuringScrub {
			t.Errorf("unexpected fault shape: watched=%v scrub=%v", f.Watched, f.DuringScrub)
		}
		if f.GroupIndex == 0 && !ecc.IsScrambleOf(f.Data, orig[0]) {
			t.Errorf("fault data %#x is not the scramble of %#x", f.Data, orig[0])
		}
		tripped = true
		// Repair so the load completes.
		return r.k.DisableWatchMemory(base, physmem.LineBytes) == nil
	})
	if got := r.load(t, base); got != 0xfeed_f00d_dead_beef {
		t.Fatalf("load after repair = %#x", got)
	}
	if !tripped {
		t.Fatal("re-armed watch never tripped")
	}
}

// TestWatchOnSwappedOutPage: arming a watch on a page that has been swapped
// out must demand-swap it back in, save the correct original data, and pin
// the page so later evictions cannot destroy the stale-check-bit state.
func TestWatchOnSwappedOutPage(t *testing.T) {
	r := newRig(t, 1<<20)
	mapHeap(t, r, 1)
	r.store(t, base, 0xcafe_babe_0000_0001)
	r.cache.FlushAll()

	if n := r.as.SwapOutLRU(1); n != 1 {
		t.Fatalf("swapped out %d pages, want 1", n)
	}
	orig, err := r.k.WatchMemory(base, physmem.LineBytes)
	if err != nil {
		t.Fatalf("watch on swapped page: %v", err)
	}
	if orig[0] != 0xcafe_babe_0000_0001 {
		t.Fatalf("saved original %#x — swap-in lost the data", orig[0])
	}
	// The page is pinned now: the swapper must leave it alone.
	if n := r.as.SwapOutLRU(1); n != 0 {
		t.Fatalf("swapper evicted %d pinned pages", n)
	}
	// The watch is live: a load trips it, and repair restores the data.
	tripped := false
	r.k.RegisterECCFaultHandler(func(f *ECCFault) bool {
		tripped = true
		return r.k.DisableWatchMemory(base, physmem.LineBytes) == nil
	})
	if got := r.load(t, base); got != 0xcafe_babe_0000_0001 {
		t.Fatalf("load = %#x", got)
	}
	if !tripped {
		t.Fatal("watch on swapped-in page never tripped")
	}
	// Fully disarmed and unpinned: the page can swap out again.
	if n := r.as.SwapOutLRU(1); n != 1 {
		t.Fatalf("post-disarm swap out = %d pages, want 1", n)
	}
}
