package kernel

import (
	"testing"

	"safemem/internal/cache"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

func newBenchRig(b *testing.B, direct bool) (*Kernel, *simtime.Clock) {
	b.Helper()
	clock := &simtime.Clock{}
	mem := physmem.MustNew(8 << 20)
	ctrl := memctrl.New(mem, clock)
	if direct {
		ctrl.EnableDirectECCAccess()
	}
	ch := cache.MustNew(ctrl, clock, cache.DefaultConfig)
	as := vm.New(mem, clock)
	k := New(clock, ctrl, ch, as)
	if err := k.MapPages(0x100000, 64); err != nil {
		b.Fatal(err)
	}
	return k, clock
}

func benchWatchPair(b *testing.B, direct bool, lines uint64) {
	k, _ := newBenchRig(b, direct)
	size := lines * physmem.LineBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.WatchMemory(0x100000, size); err != nil {
			b.Fatal(err)
		}
		if err := k.DisableWatchMemory(0x100000, size); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWatchUnwatch1Line(b *testing.B)        { benchWatchPair(b, false, 1) }
func BenchmarkWatchUnwatch16Lines(b *testing.B)      { benchWatchPair(b, false, 16) }
func BenchmarkWatchUnwatchDirect1Line(b *testing.B)  { benchWatchPair(b, true, 1) }
func BenchmarkWatchUnwatchDirect16Line(b *testing.B) { benchWatchPair(b, true, 16) }

func BenchmarkMprotectPair(b *testing.B) {
	k, _ := newBenchRig(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Mprotect(0x100000, 1, vm.ProtNone); err != nil {
			b.Fatal(err)
		}
		if err := k.Mprotect(0x100000, 1, vm.ProtRW); err != nil {
			b.Fatal(err)
		}
	}
}
