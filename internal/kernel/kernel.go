// Package kernel models the operating-system layer of the simulated
// machine, extended with the paper's three new system calls (Section 2.2.1):
//
//	WatchMemory(address, size)        — start ECC-watching a region
//	DisableWatchMemory(address, size) — stop watching it
//	RegisterECCFaultHandler(fn)       — install a user-level ECC fault handler
//
// plus the stock Mprotect used by the page-protection baseline, page-mapping
// calls used by the heap, ECC machine-check delivery, the default
// panic-on-ECC-error behaviour of unmodified kernels, and scrub
// coordination (Section 2.2.2).
package kernel

import (
	"fmt"

	"safemem/internal/cache"
	"safemem/internal/ecc"
	"safemem/internal/memctrl"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// ECCFault is the information delivered to the user-level ECC fault handler
// when the memory controller reports an uncorrectable error.
type ECCFault struct {
	// Watched reports whether the faulting line is registered via
	// WatchMemory. A fault on an unwatched line is a hardware error.
	Watched bool
	// VLine is the virtual address of the faulting cache line (valid only
	// when Watched).
	VLine vm.VAddr
	// PLine is the physical address of the faulting cache line.
	PLine physmem.Addr
	// GroupIndex is the index (0..7) of the faulting ECC group in the line.
	GroupIndex int
	// Data and Check are the raw bits the controller observed.
	Data  uint64
	Check uint8
	// DuringScrub is true when the scrubber, not a demand access, found the
	// error.
	DuringScrub bool
	// Direct is true when the watch was armed through the direct-ECC
	// interface (check bits flipped, data intact) rather than the
	// commodity data-scramble trick. The fault handler's signature check
	// differs accordingly.
	Direct bool
	// Hardware is set BY the fault handler before it returns when it
	// diagnosed a genuine hardware error on a watched line (signature
	// mismatch) rather than a watchpoint trip. The kernel folds such
	// events into its per-line health tracking; watch trips are the
	// detector working as designed and carry no health penalty.
	Hardware bool
}

// ECCFaultHandler is a user-level ECC fault handler. It returns true when
// it handled the fault (after repairing memory, e.g. via
// DisableWatchMemory); returning false sends the kernel to panic mode, the
// behaviour of unmodified Linux/Windows on ECC errors (Section 2.1).
type ECCFaultHandler func(*ECCFault) bool

// PageFaultHandler is a user-level page-protection fault handler (SIGSEGV
// style), used by the page-protection baseline. It returns true to retry
// the faulting access.
type PageFaultHandler func(*vm.Fault) bool

// PanicError is the value thrown when the kernel enters panic mode. The
// machine's Run wrapper recovers it and turns it into a normal error.
type PanicError struct {
	Msg string
}

// Error implements error.
func (p *PanicError) Error() string { return "kernel panic: " + p.Msg }

// Stats counts kernel activity.
type Stats struct {
	WatchCalls        uint64
	DisableCalls      uint64
	MprotectCalls     uint64
	MapCalls          uint64
	ECCFaultsHandled  uint64
	ECCFaultsHardware uint64
	PageFaults        uint64
	ScrubPasses       uint64
	LinesWatched      uint64 // currently watched
	MaxLinesWatched   uint64 // high-water mark
}

// watchEntry is the kernel's record of one watched line.
type watchEntry struct {
	pline  physmem.Addr
	direct bool // armed via the direct-ECC interface
}

// Kernel is the simulated operating system.
type Kernel struct {
	clock *simtime.Clock
	ctrl  *memctrl.Controller
	cache *cache.Cache
	as    *vm.AddressSpace

	// watches maps virtual line address -> watch bookkeeping.
	watches map[vm.VAddr]watchEntry
	// byPhys is the reverse index used during fault delivery.
	byPhys map[physmem.Addr]vm.VAddr

	eccHandler  ECCFaultHandler
	pageHandler PageFaultHandler

	// scrub coordination hooks (SafeMem temporarily unwatches everything
	// around a scrub pass, Section 2.2.2).
	scrubBefore func()
	scrubAfter  func()

	// Hardware-fault resilience state (see resilience.go). Deferred work —
	// page retirements, one-shot callbacks, scrub-daemon steps — is queued
	// from interrupt context and drained at machine access boundaries,
	// where no memory access is in flight.
	res            ResilienceOptions
	resStats       ResilienceStats
	health         map[physmem.Addr]*lineHealth
	healthObserver bool
	pendingRetire  []physmem.Addr
	retireQueued   map[physmem.Addr]bool
	deferred       []func()
	inDeferred     bool
	onRetire       RetireNotifier
	scrubd         *scrubDaemon

	tr       *telemetry.Tracer
	panicked bool
	stats    Stats
}

// New wires a kernel to the hardware. It installs itself as the
// controller's machine-check handler.
func New(clock *simtime.Clock, ctrl *memctrl.Controller, c *cache.Cache, as *vm.AddressSpace) *Kernel {
	k := &Kernel{
		clock:        clock,
		ctrl:         ctrl,
		cache:        c,
		as:           as,
		watches:      make(map[vm.VAddr]watchEntry),
		byPhys:       make(map[physmem.Addr]vm.VAddr),
		res:          DefaultResilienceOptions(),
		health:       make(map[physmem.Addr]*lineHealth),
		retireQueued: make(map[physmem.Addr]bool),
	}
	ctrl.SetInterruptHandler(k.handleECCInterrupt)
	// Keep paging coherent with the CPU cache: frames are flushed before
	// swap transfers and ownership changes.
	as.SetFlusher(c)
	return k
}

// AddressSpace returns the process address space managed by this kernel.
func (k *Kernel) AddressSpace() *vm.AddressSpace { return k.as }

// Recycle resets the kernel to its freshly-created state and re-wires it to
// the (already recycled) hardware exactly as New does. Part of the pooled
// machine reset path: the caller is responsible for recycling the clock,
// controller, cache and address space first.
func (k *Kernel) Recycle() {
	k.watches = make(map[vm.VAddr]watchEntry)
	k.byPhys = make(map[physmem.Addr]vm.VAddr)
	k.eccHandler = nil
	k.pageHandler = nil
	k.scrubBefore, k.scrubAfter = nil, nil
	k.res = DefaultResilienceOptions()
	k.resStats = ResilienceStats{}
	k.health = make(map[physmem.Addr]*lineHealth)
	k.healthObserver = false
	k.pendingRetire = nil
	k.retireQueued = make(map[physmem.Addr]bool)
	k.deferred = nil
	k.inDeferred = false
	k.onRetire = nil
	k.scrubd = nil // its timer died with the clock's Recycle
	k.panicked = false
	k.stats = Stats{}
	k.ctrl.SetInterruptHandler(k.handleECCInterrupt)
	k.as.SetFlusher(k.cache)
}

// RegisterTelemetry registers the kernel's counters with the registry and
// adopts its tracer for syscall-level spans (WatchMemory, DisableWatch,
// coordinated scrubs).
func (k *Kernel) RegisterTelemetry(reg *telemetry.Registry) {
	k.tr = reg.Tracer()
	reg.RegisterSource("kernel", func(emit func(string, float64)) {
		s := k.Stats()
		emit("watch_calls", float64(s.WatchCalls))
		emit("disable_calls", float64(s.DisableCalls))
		emit("mprotect_calls", float64(s.MprotectCalls))
		emit("map_calls", float64(s.MapCalls))
		emit("ecc_faults_handled", float64(s.ECCFaultsHandled))
		emit("ecc_faults_hardware", float64(s.ECCFaultsHardware))
		emit("page_faults", float64(s.PageFaults))
		emit("scrub_passes", float64(s.ScrubPasses))
		emit("lines_watched", float64(s.LinesWatched))
		emit("max_lines_watched", float64(s.MaxLinesWatched))
		rs := k.resStats
		emit("pages_retired", float64(rs.PagesRetired))
		emit("data_loss_events", float64(rs.DataLossEvents))
		emit("retire_failures", float64(rs.RetireFailures))
		emit("scrub_daemon_steps", float64(rs.ScrubDaemonSteps))
	})
}

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats {
	s := k.stats
	s.LinesWatched = uint64(len(k.watches))
	return s
}

// Panicked reports whether the kernel has entered panic mode.
func (k *Kernel) Panicked() bool { return k.panicked }

// Panic puts the kernel into panic mode — the blue-screen/reboot path of
// Section 2.1 — and unwinds with a *PanicError.
func (k *Kernel) Panic(format string, args ...any) {
	k.panicked = true
	panic(&PanicError{Msg: fmt.Sprintf(format, args...)})
}

// RegisterECCFaultHandler installs the user-level ECC fault handler
// (syscall 3 of Section 2.2.1).
func (k *Kernel) RegisterECCFaultHandler(h ECCFaultHandler) {
	k.clock.Advance(simtime.CostSyscall)
	k.eccHandler = h
}

// RegisterPageFaultHandler installs a user-level page-fault handler
// (the SIGSEGV path used by the page-protection baseline).
func (k *Kernel) RegisterPageFaultHandler(h PageFaultHandler) {
	k.clock.Advance(simtime.CostSyscall)
	k.pageHandler = h
}

// PageFaultHandler returns the installed page-fault handler, if any.
func (k *Kernel) PageFaultHandler() PageFaultHandler { return k.pageHandler }

// SetScrubHooks registers callbacks run before and after each coordinated
// scrub pass. SafeMem uses them to unwatch and rewatch all regions.
func (k *Kernel) SetScrubHooks(before, after func()) {
	k.scrubBefore = before
	k.scrubAfter = after
}

// handleECCInterrupt is the machine-check entry point called by the memory
// controller on an uncorrectable error.
func (k *Kernel) handleECCInterrupt(r memctrl.FaultReport) {
	if k.panicked {
		return
	}
	fault := &ECCFault{
		PLine:       r.Line,
		GroupIndex:  r.Group.GroupInLine(),
		Data:        r.Data,
		Check:       r.Check,
		DuringScrub: r.DuringScrub,
	}
	if vline, ok := k.byPhys[r.Line]; ok {
		fault.Watched = true
		fault.VLine = vline
		fault.Direct = k.watches[vline].direct
	}
	if k.eccHandler != nil {
		if k.eccHandler(fault) {
			k.stats.ECCFaultsHandled++
			if fault.Hardware {
				// The handler repaired a genuine hardware error on a
				// watched line; fold it into the line's health history.
				k.noteHealth(fault.PLine, k.res.UncorrectableWeight)
			}
			return
		}
	}
	k.stats.ECCFaultsHardware++
	if k.res.Policy == RetireAndContinue {
		k.surviveUncorrectable(r, fault)
		return
	}
	k.Panic("uncorrectable ECC error at physical line %#x group %d (data %#x check %#x)",
		uint64(r.Line), fault.GroupIndex, r.Data, r.Check)
}

// checkLineRegion validates the WatchMemory alignment rules: the region and
// its size must be cache-line aligned (Section 2.2.1).
func checkLineRegion(va vm.VAddr, size uint64) error {
	if uint64(va)%physmem.LineBytes != 0 {
		return fmt.Errorf("kernel: region %#x not cache-line aligned", uint64(va))
	}
	if size == 0 || size%physmem.LineBytes != 0 {
		return fmt.Errorf("kernel: region size %d not a positive multiple of the line size", size)
	}
	return nil
}

// WatchMemory registers the [va, va+size) region for ECC monitoring and
// returns the original data words (8 per line). The caller — SafeMem's
// user-level library — stores them in its private memory to differentiate
// access faults from hardware errors (Section 2.2.2, Figure 2).
//
// Implementation follows the paper exactly: pin the pages, flush the lines
// from the cache, lock the memory bus, disable ECC, write the scrambled
// data (leaving the stale check bits), re-enable ECC, unlock.
func (k *Kernel) WatchMemory(va vm.VAddr, size uint64) ([]uint64, error) {
	sp := k.tr.Begin("kernel", "WatchMemory",
		telemetry.KV("va", uint64(va)), telemetry.KV("bytes", size))
	defer sp.End()
	k.clock.Advance(simtime.CostSyscall)
	k.stats.WatchCalls++
	if err := checkLineRegion(va, size); err != nil {
		return nil, err
	}
	nLines := int(size / physmem.LineBytes)

	// Validate and translate every line up front so failures leave no
	// partial watches behind.
	plines := make([]physmem.Addr, nLines)
	for i := 0; i < nLines; i++ {
		lva := va + vm.VAddr(i*physmem.LineBytes)
		if _, dup := k.watches[lva]; dup {
			return nil, fmt.Errorf("kernel: line %#x already watched", uint64(lva))
		}
		pa, fault := k.as.Translate(lva, true)
		if fault != nil {
			return nil, fault
		}
		plines[i] = pa.LineAddr()
	}

	// Pin every page covering the region so swapping cannot silently
	// destroy the stale-check-bit state.
	for pg := va.PageAddr(); pg < va+vm.VAddr(size); pg += vm.PageBytes {
		if err := k.as.Pin(pg); err != nil {
			return nil, err
		}
	}

	// Flush every line BEFORE disabling ECC: a dirty write-back must go
	// through the ECC generator so the stored check bits match the data we
	// are about to save as "original". (Flushing inside the disabled
	// window would store the write-back with stale check bits, and the
	// scrambled word could then alias to a correctable — or even clean —
	// codeword, silently defeating the watchpoint.)
	for i := 0; i < nLines; i++ {
		k.cache.FlushLine(plines[i])
	}

	if k.ctrl.Capabilities().DirectECCAccess {
		// The Section 2.2.3 generalised interface: arm each group by
		// flipping two check bits. Data stays intact, no bus lock, no
		// ECC-disable window.
		original := make([]uint64, 0, nLines*physmem.GroupsPerLine)
		for i := 0; i < nLines; i++ {
			lva := va + vm.VAddr(i*physmem.LineBytes)
			pl := plines[i]
			words := k.ctrl.PeekLine(pl)
			for g, w := range words {
				original = append(original, w)
				ga := pl + physmem.Addr(g*physmem.GroupBytes)
				k.ctrl.WriteCheckBits(ga, uint8(ecc.ScrambleCheck(ecc.Check(k.ctrl.ReadCheckBits(ga)))))
			}
			k.watches[lva] = watchEntry{pline: pl, direct: true}
			k.byPhys[pl] = lva
		}
		if n := uint64(len(k.watches)); n > k.stats.MaxLinesWatched {
			k.stats.MaxLinesWatched = n
		}
		return original, nil
	}

	// One lock/disable window covers the whole region: the expensive bus
	// quiesce and chipset mode switches are paid once, the per-line work
	// (save, scramble) is paid per line.
	k.ctrl.LockBus()
	prevMode := k.ctrl.Mode()
	k.ctrl.SetMode(memctrl.Disabled)
	original := make([]uint64, 0, nLines*physmem.GroupsPerLine)
	for i := 0; i < nLines; i++ {
		lva := va + vm.VAddr(i*physmem.LineBytes)
		pl := plines[i]

		words := k.ctrl.PeekLine(pl)
		var scrambled [physmem.GroupsPerLine]uint64
		for g, w := range words {
			original = append(original, w)
			scrambled[g] = ecc.Scramble(w)
		}
		k.clock.Advance(simtime.CostScrambleWord * physmem.GroupsPerLine)
		k.ctrl.WriteLine(pl, scrambled) // data only; check bits stay stale

		k.watches[lva] = watchEntry{pline: pl}
		k.byPhys[pl] = lva
	}
	k.ctrl.SetMode(prevMode)
	k.ctrl.UnlockBus()
	if n := uint64(len(k.watches)); n > k.stats.MaxLinesWatched {
		k.stats.MaxLinesWatched = n
	}
	return original, nil
}

// DisableWatchMemory removes monitoring from [va, va+size): it restores the
// original data (un-scrambling — the scramble is an involution), writes it
// through the ECC-enabled path so the check bits become consistent again,
// and unpins the pages.
func (k *Kernel) DisableWatchMemory(va vm.VAddr, size uint64) error {
	sp := k.tr.Begin("kernel", "DisableWatchMemory",
		telemetry.KV("va", uint64(va)), telemetry.KV("bytes", size))
	defer sp.End()
	k.clock.Advance(simtime.CostSyscall)
	k.stats.DisableCalls++
	if err := checkLineRegion(va, size); err != nil {
		return err
	}
	nLines := int(size / physmem.LineBytes)
	for i := 0; i < nLines; i++ {
		lva := va + vm.VAddr(i*physmem.LineBytes)
		if _, ok := k.watches[lva]; !ok {
			return fmt.Errorf("kernel: line %#x not watched", uint64(lva))
		}
	}
	// Direct-armed regions disarm with per-group check-bit restores; the
	// commodity path un-scrambles under the bus lock. Mixed regions are
	// impossible (the backend is chosen per WatchMemory call and regions
	// are disabled with the same extents), but handle lines individually
	// anyway.
	anyScrambled := false
	for i := 0; i < nLines; i++ {
		if !k.watches[va+vm.VAddr(i*physmem.LineBytes)].direct {
			anyScrambled = true
		}
	}
	if anyScrambled {
		k.ctrl.LockBus()
	}
	for i := 0; i < nLines; i++ {
		lva := va + vm.VAddr(i*physmem.LineBytes)
		entry := k.watches[lva]
		pl := entry.pline

		// The line cannot be validly cached (it was flushed at watch time
		// and every fill since would have faulted), but flush defensively
		// so a stale copy can never mask the restore.
		k.cache.FlushLine(pl)

		if entry.direct {
			// Data is intact; recompute honest check bits per group.
			raw := k.ctrl.PeekLine(pl)
			for g, w := range raw {
				ga := pl + physmem.Addr(g*physmem.GroupBytes)
				k.ctrl.WriteCheckBits(ga, uint8(ecc.Encode(w)))
			}
		} else {
			raw := k.ctrl.PeekLine(pl)
			var restored [physmem.GroupsPerLine]uint64
			for g, w := range raw {
				restored[g] = ecc.Scramble(w) // involution: unscramble
			}
			k.clock.Advance(simtime.CostScrambleWord*physmem.GroupsPerLine + simtime.CostWriteBack)
			k.ctrl.WriteLine(pl, restored) // ECC enabled: fresh check bits
		}

		delete(k.watches, lva)
		delete(k.byPhys, pl)
	}
	if anyScrambled {
		k.ctrl.UnlockBus()
	}
	for pg := va.PageAddr(); pg < va+vm.VAddr(size); pg += vm.PageBytes {
		if err := k.as.Unpin(pg); err != nil {
			return err
		}
	}
	return nil
}

// DisableWatchMemoryWithData removes monitoring from [va, va+size) and
// restores the region from the caller-provided original words (8 per line)
// instead of un-scrambling the in-memory data. SafeMem uses this path after
// a real hardware error corrupted a watched line: the in-memory bits are no
// longer Scramble(original), so only the private saved copy can repair them
// (Section 2.2.2, "Differentiate Hardware Errors from Access Faults").
func (k *Kernel) DisableWatchMemoryWithData(va vm.VAddr, size uint64, original []uint64) error {
	sp := k.tr.Begin("kernel", "DisableWatchMemoryWithData",
		telemetry.KV("va", uint64(va)), telemetry.KV("bytes", size))
	defer sp.End()
	k.clock.Advance(simtime.CostSyscall)
	k.stats.DisableCalls++
	if err := checkLineRegion(va, size); err != nil {
		return err
	}
	nLines := int(size / physmem.LineBytes)
	if len(original) != nLines*physmem.GroupsPerLine {
		return fmt.Errorf("kernel: original data has %d words, want %d", len(original), nLines*physmem.GroupsPerLine)
	}
	for i := 0; i < nLines; i++ {
		lva := va + vm.VAddr(i*physmem.LineBytes)
		if _, ok := k.watches[lva]; !ok {
			return fmt.Errorf("kernel: line %#x not watched", uint64(lva))
		}
	}
	for i := 0; i < nLines; i++ {
		lva := va + vm.VAddr(i*physmem.LineBytes)
		pl := k.watches[lva].pline
		k.cache.FlushLine(pl)
		k.ctrl.LockBus()
		var restored [physmem.GroupsPerLine]uint64
		copy(restored[:], original[i*physmem.GroupsPerLine:])
		k.clock.Advance(simtime.CostScrambleWord*physmem.GroupsPerLine + simtime.CostWriteBack)
		k.ctrl.WriteLine(pl, restored)
		k.ctrl.UnlockBus()
		delete(k.watches, lva)
		delete(k.byPhys, pl)
	}
	for pg := va.PageAddr(); pg < va+vm.VAddr(size); pg += vm.PageBytes {
		if err := k.as.Unpin(pg); err != nil {
			return err
		}
	}
	return nil
}

// Watched reports whether the line containing va is currently watched.
func (k *Kernel) Watched(va vm.VAddr) bool {
	_, ok := k.watches[va.LineAddr()]
	return ok
}

// WatchedLines returns the virtual addresses of all watched lines, in
// unspecified order. Used by the scrub coordinator.
func (k *Kernel) WatchedLines() []vm.VAddr {
	out := make([]vm.VAddr, 0, len(k.watches))
	for lva := range k.watches {
		out = append(out, lva)
	}
	return out
}

// Mprotect changes the protection of npages pages at va — the stock
// syscall the page-protection baseline builds on.
func (k *Kernel) Mprotect(va vm.VAddr, npages int, prot vm.Prot) error {
	k.clock.Advance(simtime.CostSyscall + simtime.CostTLBFlush)
	k.stats.MprotectCalls++
	return k.as.Protect(va, npages, prot)
}

// MapPages maps npages fresh pages at va with read-write protection — the
// mmap/sbrk path used by the heap allocator.
func (k *Kernel) MapPages(va vm.VAddr, npages int) error {
	k.clock.Advance(simtime.CostSyscall)
	k.stats.MapCalls++
	return k.as.Map(va, npages, vm.ProtRW)
}

// UnmapPages unmaps npages pages at va.
func (k *Kernel) UnmapPages(va vm.VAddr, npages int) error {
	k.clock.Advance(simtime.CostSyscall)
	return k.as.Unmap(va, npages)
}

// Image is an immutable checkpoint of a Kernel's state, taken with
// CaptureImage. Because snapshots are captured on warmed-but-idle machines
// (tools attached, no program ops yet), the maps it copies are typically
// empty and both capture and restore stay O(1).
type Image struct {
	k           *Kernel
	watches     map[vm.VAddr]watchEntry
	eccHandler  ECCFaultHandler
	pageHandler PageFaultHandler
	scrubBefore func()
	scrubAfter  func()

	res            ResilienceOptions
	resStats       ResilienceStats
	health         map[physmem.Addr]lineHealth
	healthObserver bool
	pendingRetire  []physmem.Addr
	retireQueued   map[physmem.Addr]bool
	deferred       []func()
	onRetire       RetireNotifier
	stats          Stats
}

// CaptureImage checkpoints the kernel. The scrub daemon must not be running
// (it is per-run state started after restore; its timer identity could not
// survive a clock restore) and no deferred work may be in flight.
func (k *Kernel) CaptureImage() *Image {
	if k.scrubd != nil {
		panic("kernel: CaptureImage with the scrub daemon running")
	}
	if k.inDeferred {
		panic("kernel: CaptureImage during deferred work")
	}
	if k.panicked {
		panic("kernel: CaptureImage on a panicked kernel")
	}
	img := &Image{
		k:              k,
		watches:        make(map[vm.VAddr]watchEntry, len(k.watches)),
		eccHandler:     k.eccHandler,
		pageHandler:    k.pageHandler,
		scrubBefore:    k.scrubBefore,
		scrubAfter:     k.scrubAfter,
		res:            k.res,
		resStats:       k.resStats,
		health:         make(map[physmem.Addr]lineHealth, len(k.health)),
		healthObserver: k.healthObserver,
		pendingRetire:  append([]physmem.Addr(nil), k.pendingRetire...),
		retireQueued:   make(map[physmem.Addr]bool, len(k.retireQueued)),
		deferred:       append([]func(){}, k.deferred...),
		onRetire:       k.onRetire,
		stats:          k.stats,
	}
	for lva, e := range k.watches {
		img.watches[lva] = e
	}
	for pl, h := range k.health {
		img.health[pl] = *h
	}
	for f := range k.retireQueued {
		img.retireQueued[f] = true
	}
	return img
}

// RestoreImage puts the kernel back into the captured state. The caller must
// restore the clock, controller, cache and address space first: the scrub
// daemon's timer dies with the clock's timer truncation, and the controller
// image owns the scrub filter, mode and observer list. Costs O(captured
// state); with the typical empty capture it allocates nothing.
func (k *Kernel) RestoreImage(img *Image) {
	if img.k != k {
		panic("kernel: RestoreImage with an image captured from a different kernel")
	}
	// The daemon (if a run started one) is per-run state: its clock timer was
	// already truncated away by the clock restore, so only the pointer and
	// the controller-side filter remain — the controller image restores the
	// filter, we drop the pointer.
	k.scrubd = nil
	clear(k.watches)
	clear(k.byPhys)
	for lva, e := range img.watches {
		k.watches[lva] = e
		k.byPhys[e.pline] = lva
	}
	k.eccHandler = img.eccHandler
	k.pageHandler = img.pageHandler
	k.scrubBefore, k.scrubAfter = img.scrubBefore, img.scrubAfter
	k.res = img.res
	k.resStats = img.resStats
	clear(k.health)
	for pl, h := range img.health {
		hc := h
		k.health[pl] = &hc
	}
	k.healthObserver = img.healthObserver
	k.pendingRetire = append(k.pendingRetire[:0], img.pendingRetire...)
	clear(k.retireQueued)
	for f := range img.retireQueued {
		k.retireQueued[f] = true
	}
	k.deferred = append(k.deferred[:0], img.deferred...)
	k.inDeferred = false
	k.onRetire = img.onRetire
	k.panicked = false
	k.stats = img.stats
}

// CoordinatedScrub performs one full scrub pass with the coordination
// protocol of Section 2.2.2: the before-hook (SafeMem) unwatches all
// regions and blocks the program, the scrubber runs, and the after-hook
// re-watches. Without the hooks, scrubbing a watched line would raise a
// spurious fault.
func (k *Kernel) CoordinatedScrub() {
	sp := k.tr.Begin("kernel", "CoordinatedScrub")
	defer sp.End()
	k.stats.ScrubPasses++
	if k.scrubBefore != nil {
		k.scrubBefore()
	}
	k.ctrl.ScrubAll()
	if k.scrubAfter != nil {
		k.scrubAfter()
	}
}
