package ecc

import (
	"math/rand"
	"testing"
)

// assertDecodeEqual fails unless the optimized and reference decoders agree
// on every output for the given input.
func assertDecodeEqual(t *testing.T, data uint64, check Check) {
	t.Helper()
	d1, c1, r1 := Decode(data, check)
	d2, c2, r2 := decodeRef(data, check)
	if d1 != d2 || c1 != c2 || r1 != r2 {
		t.Fatalf("Decode(%#x, %#x) = (%#x, %#x, %v), decodeRef = (%#x, %#x, %v)",
			data, uint8(check), d1, uint8(c1), r1, d2, uint8(c2), r2)
	}
}

// TestEncodeMatchesReference: the table-driven encoder must agree with the
// mask-loop reference on structured and random words.
func TestEncodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words := []uint64{0, ^uint64(0), 0x5555555555555555, 0xaaaaaaaaaaaaaaaa, 0xdeadbeefcafebabe}
	for i := 0; i < GroupBits; i++ {
		words = append(words, 1<<uint(i))
	}
	for i := 0; i < 4096; i++ {
		words = append(words, rng.Uint64())
	}
	for _, w := range words {
		if got, want := Encode(w), encodeRef(w); got != want {
			t.Fatalf("Encode(%#x) = %#x, encodeRef = %#x", w, uint8(got), uint8(want))
		}
	}
}

// TestDecodeMatchesReferenceAllFlips sweeps every one of the 72 codeword
// single-bit flips (64 data + 8 check) over random words, plus double flips
// and raw random check bytes, checking the optimized decoder against the
// reference on each.
func TestDecodeMatchesReferenceAllFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 256; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		// Clean word.
		assertDecodeEqual(t, data, check)
		// All 64 data-bit flips and all 8 check-bit flips.
		for b := uint(0); b < GroupBits; b++ {
			assertDecodeEqual(t, FlipDataBit(data, b), check)
		}
		for b := uint(0); b < CheckBits; b++ {
			assertDecodeEqual(t, data, FlipCheckBit(check, b))
		}
		// Double flips (data+data, data+check) — the Uncorrectable paths.
		b1, b2 := uint(rng.Intn(GroupBits)), uint(rng.Intn(GroupBits))
		if b1 != b2 {
			assertDecodeEqual(t, FlipDataBit(FlipDataBit(data, b1), b2), check)
		}
		assertDecodeEqual(t, FlipDataBit(data, b1), FlipCheckBit(check, uint(rng.Intn(CheckBits))))
		// Arbitrary garbage check bits: exercises every syndrome value.
		assertDecodeEqual(t, data, Check(rng.Intn(256)))
	}
	// Exhaustive syndrome coverage: one word against all 256 check bytes.
	data := uint64(0x0123456789abcdef)
	for c := 0; c < 256; c++ {
		assertDecodeEqual(t, data, Check(c))
	}
}
