package ecc

// SafeMem's WatchMemory implementation scrambles the data of a watched ECC
// group while the ECC engine is disabled, leaving the stored check bits
// computed over the *original* data (Section 2.2.2, Figure 2). The paper
// requires the scramble to satisfy two properties:
//
//  1. it must decode as a multi-bit (uncorrectable) error, not a single-bit
//     error, because controllers correct single-bit errors silently;
//  2. it must form a recognisable signature so an access fault can be
//     distinguished from a real hardware error.
//
// Property 1 is non-trivial for a 3-bit flip: three flips have odd weight, so
// a SECDED decoder will treat the result as a single-bit error at codeword
// position p1^p2^p3 and silently "correct" it — unless that XOR is not a
// valid codeword position. initScramble searches, deterministically, for the
// lexicographically first triple of data bits whose position XOR exceeds the
// codeword length; flipping those three bits is then guaranteed to decode as
// Uncorrectable.

// scrambleBits holds the three data-bit indices flipped by Scramble.
var scrambleBits [3]uint

// scrambleMask is the 64-bit XOR mask implementing the 3-bit flip.
var scrambleMask uint64

func initScramble() {
	for a := uint(0); a < GroupBits; a++ {
		for b := a + 1; b < GroupBits; b++ {
			for c := b + 1; c < GroupBits; c++ {
				x := dataPos[a] ^ dataPos[b] ^ dataPos[c]
				if x > maxPosition {
					scrambleBits = [3]uint{a, b, c}
					scrambleMask = 1<<a | 1<<b | 1<<c
					return
				}
			}
		}
	}
	panic("ecc: no uncorrectable 3-bit scramble pattern exists")
}

// ScrambleBits returns the three fixed data-bit indices flipped by the
// SafeMem scramble.
func ScrambleBits() [3]uint { return scrambleBits }

// ScrambleMask returns the XOR mask applied by Scramble.
func ScrambleMask() uint64 { return scrambleMask }

// Scramble flips the three fixed scramble bits of data. Scramble is its own
// inverse: Scramble(Scramble(x)) == x, which is how the fault handler
// recomputes the expected in-memory value from the saved original.
func Scramble(data uint64) uint64 { return data ^ scrambleMask }

// IsScrambleOf reports whether observed is exactly the scrambled form of
// original. SafeMem's fault handler uses this signature check to tell an
// access fault (observed == Scramble(original)) from a real hardware memory
// error (Section 2.2.2, "Differentiate Hardware Errors from Access Faults").
func IsScrambleOf(observed, original uint64) bool {
	return observed == original^scrambleMask
}

// CheckScrambleMask is the check-bit flip used to arm a watchpoint on a
// controller with the Section 2.2.3 direct-ECC-access interface: flipping
// Hamming check bits 3 and 6 plus the overall parity bit leaves the data
// intact and produces syndrome 8^64 = 72 — not a valid codeword position —
// with odd parity, which ALWAYS decodes as uncorrectable. The third
// (parity) flip matters: with only the two Hamming flips, a real
// single-bit memory error on the armed group would make three total flips
// and alias to a plausible single-bit "correction", silently destroying
// both the watch and the data. With this mask an extra single-bit error
// yields even parity and a non-zero syndrome: still uncorrectable, and the
// handler's signature check (data ≠ saved original) classifies it as a
// hardware error.
const CheckScrambleMask Check = 1<<3 | 1<<6 | 1<<7

// ScrambleCheck flips the watchpoint check bits; it is its own inverse.
func ScrambleCheck(c Check) Check { return c ^ CheckScrambleMask }
