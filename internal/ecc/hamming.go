// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) extended Hamming(72,64) code used by commodity ECC memory
// controllers such as the Intel E7500 in the paper's platform: 8 check bits
// protect each 64-bit ECC group (Section 2.1).
//
// The package also provides the SafeMem data-scrambling pattern (Section
// 2.2.2, Figure 2): three fixed data-bit positions chosen so that flipping
// them produces a syndrome the decoder classifies as *uncorrectable*. This
// choice matters — an arbitrary 3-bit flip has odd weight, so SECDED decoding
// may alias it to a single-bit error and silently "correct" it, in which case
// the watchpoint would never fire. The positions are found by a deterministic
// search at package initialisation (see scramble.go).
package ecc

// GroupBits is the number of data bits in one ECC group.
const GroupBits = 64

// GroupBytes is the number of data bytes in one ECC group.
const GroupBytes = 8

// CheckBits is the number of ECC check bits per group.
const CheckBits = 8

// Check holds the 8 check bits stored alongside each 64-bit ECC group.
type Check uint8

// Result classifies the outcome of decoding one ECC group.
type Result int

const (
	// OK: data and check bits are consistent.
	OK Result = iota
	// CorrectedData: a single flipped data bit was detected and corrected.
	CorrectedData
	// CorrectedCheck: a single flipped check bit was detected and corrected.
	CorrectedCheck
	// Uncorrectable: a multi-bit error was detected. The memory controller
	// reports this to the processor with an interrupt (Figure 1b).
	Uncorrectable
)

// String returns a short name for the result, for logs and bug reports.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data-bit"
	case CorrectedCheck:
		return "corrected-check-bit"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return "unknown"
	}
}

// codeword layout (extended Hamming):
//
//	position 0            overall parity bit
//	positions 2^j, j=0..6 Hamming parity bits
//	remaining 64 positions in 1..71 carry the data bits, in order.
const (
	codewordLen = 72 // 64 data + 7 Hamming parity + 1 overall parity
	maxPosition = codewordLen - 1
)

var (
	// dataPos[i] is the codeword position of data bit i.
	dataPos [GroupBits]uint
	// posToData[p] is the data bit stored at codeword position p, or -1.
	posToData [codewordLen]int
	// parityMask[j] is a 64-bit mask of the data bits covered by Hamming
	// parity bit j (i.e. data bits whose codeword position has bit j set).
	parityMask [7]uint64
)

func init() {
	for p := range posToData {
		posToData[p] = -1
	}
	i := 0
	for p := uint(1); p <= maxPosition; p++ {
		if p&(p-1) == 0 { // power of two: Hamming parity position
			continue
		}
		dataPos[i] = p
		posToData[p] = i
		i++
	}
	if i != GroupBits {
		panic("ecc: codeword layout did not yield 64 data positions")
	}
	for j := 0; j < 7; j++ {
		var mask uint64
		for i := 0; i < GroupBits; i++ {
			if dataPos[i]&(1<<uint(j)) != 0 {
				mask |= 1 << uint(i)
			}
		}
		parityMask[j] = mask
	}
	initScramble()
}

// parity64 returns the XOR of all bits of x.
func parity64(x uint64) uint {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return uint(x & 1)
}

// Encode computes the 8 check bits for a 64-bit data word, exactly as the
// memory controller's ECC generator does on every write (Figure 1a).
func Encode(data uint64) Check {
	var c Check
	for j := 0; j < 7; j++ {
		if parity64(data&parityMask[j]) != 0 {
			c |= 1 << uint(j)
		}
	}
	// Overall parity covers data plus the seven Hamming bits, and is chosen
	// so the full 72-bit codeword has even weight.
	overall := parity64(data) ^ parity64(uint64(c&0x7f))
	if overall != 0 {
		c |= 1 << 7
	}
	return c
}

// Decode checks a 64-bit data word against its stored check bits, returning
// possibly-corrected data and check bits plus a Result. It mirrors the
// controller's read path (Figure 1b): single-bit errors are corrected
// transparently; multi-bit errors are reported as Uncorrectable.
func Decode(data uint64, stored Check) (uint64, Check, Result) {
	expected := Encode(data)
	// Syndrome over the seven Hamming checks.
	syndrome := uint((expected ^ stored) & 0x7f)
	// Overall parity of the received 72-bit codeword. Encode produced a
	// codeword of even weight, so any odd number of bit flips makes this 1.
	parity := parity64(data) ^ parity64(uint64(stored))

	switch {
	case syndrome == 0 && parity == 0:
		return data, stored, OK
	case syndrome == 0 && parity == 1:
		// Only the overall parity bit flipped.
		return data, stored ^ (1 << 7), CorrectedCheck
	case parity == 0:
		// Non-zero syndrome with even overall parity: double-bit error.
		return data, stored, Uncorrectable
	}
	// Odd parity, non-zero syndrome: decoder assumes a single-bit error at
	// codeword position = syndrome.
	if syndrome > maxPosition {
		return data, stored, Uncorrectable
	}
	if syndrome&(syndrome-1) == 0 {
		// A Hamming parity position: fix the corresponding check bit.
		bit := uint(0)
		for 1<<bit != syndrome {
			bit++
		}
		return data, stored ^ Check(1<<bit), CorrectedCheck
	}
	d := posToData[syndrome]
	if d < 0 {
		return data, stored, Uncorrectable
	}
	return data ^ (1 << uint(d)), stored, CorrectedData
}

// FlipDataBit returns data with the i-th data bit inverted. It is used by
// tests and by the fault injector to model hardware memory errors.
func FlipDataBit(data uint64, i uint) uint64 {
	if i >= GroupBits {
		panic("ecc: data bit index out of range")
	}
	return data ^ (1 << i)
}

// FlipCheckBit returns the check bits with bit i inverted.
func FlipCheckBit(c Check, i uint) Check {
	if i >= CheckBits {
		panic("ecc: check bit index out of range")
	}
	return c ^ Check(1<<i)
}
