// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) extended Hamming(72,64) code used by commodity ECC memory
// controllers such as the Intel E7500 in the paper's platform: 8 check bits
// protect each 64-bit ECC group (Section 2.1).
//
// The package also provides the SafeMem data-scrambling pattern (Section
// 2.2.2, Figure 2): three fixed data-bit positions chosen so that flipping
// them produces a syndrome the decoder classifies as *uncorrectable*. This
// choice matters — an arbitrary 3-bit flip has odd weight, so SECDED decoding
// may alias it to a single-bit error and silently "correct" it, in which case
// the watchpoint would never fire. The positions are found by a deterministic
// search at package initialisation (see scramble.go).
package ecc

import "math/bits"

// GroupBits is the number of data bits in one ECC group.
const GroupBits = 64

// GroupBytes is the number of data bytes in one ECC group.
const GroupBytes = 8

// CheckBits is the number of ECC check bits per group.
const CheckBits = 8

// Check holds the 8 check bits stored alongside each 64-bit ECC group.
type Check uint8

// Result classifies the outcome of decoding one ECC group.
type Result int

const (
	// OK: data and check bits are consistent.
	OK Result = iota
	// CorrectedData: a single flipped data bit was detected and corrected.
	CorrectedData
	// CorrectedCheck: a single flipped check bit was detected and corrected.
	CorrectedCheck
	// Uncorrectable: a multi-bit error was detected. The memory controller
	// reports this to the processor with an interrupt (Figure 1b).
	Uncorrectable
)

// String returns a short name for the result, for logs and bug reports.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data-bit"
	case CorrectedCheck:
		return "corrected-check-bit"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return "unknown"
	}
}

// codeword layout (extended Hamming):
//
//	position 0            overall parity bit
//	positions 2^j, j=0..6 Hamming parity bits
//	remaining 64 positions in 1..71 carry the data bits, in order.
const (
	codewordLen = 72 // 64 data + 7 Hamming parity + 1 overall parity
	maxPosition = codewordLen - 1
)

var (
	// dataPos[i] is the codeword position of data bit i.
	dataPos [GroupBits]uint
	// posToData[p] is the data bit stored at codeword position p, or -1.
	posToData [codewordLen]int
	// parityMask[j] is a 64-bit mask of the data bits covered by Hamming
	// parity bit j (i.e. data bits whose codeword position has bit j set).
	parityMask [7]uint64
)

// Encode is linear over GF(2) — Encode(0) == 0 and every check bit is an XOR
// of data bits — so the whole 64→8 map factors into eight per-byte tables
// XOR-folded together. encTable[i][b] is the check-bit contribution of byte
// value b at byte position i. Built in init from encodeRef, which stays the
// single source of truth for the code's algebra.
var encTable [GroupBytes][256]Check

// synAction is the 128-entry syndrome→action LUT replacing Decode's
// power-of-two search and posToData probe: for each 7-bit syndrome (under
// odd overall parity) it records whether the error is a Hamming check bit, a
// data bit, or uncorrectable, and which bit to flip. Encoding: 0xFF =
// uncorrectable; bit 7 set = flip check bit (low bits = index); otherwise
// flip data bit (value = index). Syndrome 0 never consults the table.
const (
	synUncorrectable = 0xFF
	synCheckFlag     = 0x80
)

var synAction [128]uint8

func initTables() {
	for i := 0; i < GroupBytes; i++ {
		for b := 0; b < 256; b++ {
			encTable[i][b] = encodeRef(uint64(b) << (8 * uint(i)))
		}
	}
	for s := 1; s < 128; s++ {
		switch {
		case s > maxPosition:
			synAction[s] = synUncorrectable
		case s&(s-1) == 0:
			bit := uint8(0)
			for 1<<bit != s {
				bit++
			}
			synAction[s] = synCheckFlag | bit
		default:
			if d := posToData[s]; d >= 0 {
				synAction[s] = uint8(d)
			} else {
				synAction[s] = synUncorrectable
			}
		}
	}
	synAction[0] = synUncorrectable // unreachable; Decode handles syndrome 0 first
}

func init() {
	for p := range posToData {
		posToData[p] = -1
	}
	i := 0
	for p := uint(1); p <= maxPosition; p++ {
		if p&(p-1) == 0 { // power of two: Hamming parity position
			continue
		}
		dataPos[i] = p
		posToData[p] = i
		i++
	}
	if i != GroupBits {
		panic("ecc: codeword layout did not yield 64 data positions")
	}
	for j := 0; j < 7; j++ {
		var mask uint64
		for i := 0; i < GroupBits; i++ {
			if dataPos[i]&(1<<uint(j)) != 0 {
				mask |= 1 << uint(i)
			}
		}
		parityMask[j] = mask
	}
	initTables()
	initScramble()
}

// Encode computes the 8 check bits for a 64-bit data word, exactly as the
// memory controller's ECC generator does on every write (Figure 1a). It is
// the XOR-fold of eight precomputed per-byte tables — combinational logic in
// the real chipset, eight loads and seven XORs here. Equivalent to encodeRef
// for every input (pinned by diff_test.go and the fuzz harnesses).
func Encode(data uint64) Check {
	return encTable[0][data&0xff] ^
		encTable[1][data>>8&0xff] ^
		encTable[2][data>>16&0xff] ^
		encTable[3][data>>24&0xff] ^
		encTable[4][data>>32&0xff] ^
		encTable[5][data>>40&0xff] ^
		encTable[6][data>>48&0xff] ^
		encTable[7][data>>56&0xff]
}

// Decode checks a 64-bit data word against its stored check bits, returning
// possibly-corrected data and check bits plus a Result. It mirrors the
// controller's read path (Figure 1b): single-bit errors are corrected
// transparently; multi-bit errors are reported as Uncorrectable. Syndrome
// classification is one lookup in the 128-entry synAction LUT; equivalent to
// decodeRef for every input.
func Decode(data uint64, stored Check) (uint64, Check, Result) {
	expected := Encode(data)
	// Syndrome over the seven Hamming checks.
	syndrome := uint((expected ^ stored) & 0x7f)
	// Overall parity of the received 72-bit codeword. Encode produced a
	// codeword of even weight, so any odd number of bit flips makes this 1.
	parityOdd := (bits.OnesCount64(data) + bits.OnesCount8(uint8(stored))) & 1

	if syndrome == 0 {
		if parityOdd == 0 {
			return data, stored, OK
		}
		// Only the overall parity bit flipped.
		return data, stored ^ (1 << 7), CorrectedCheck
	}
	if parityOdd == 0 {
		// Non-zero syndrome with even overall parity: double-bit error.
		return data, stored, Uncorrectable
	}
	// Odd parity, non-zero syndrome: decoder assumes a single-bit error at
	// codeword position = syndrome; the LUT says which bit that is.
	switch act := synAction[syndrome]; {
	case act == synUncorrectable:
		return data, stored, Uncorrectable
	case act&synCheckFlag != 0:
		return data, stored ^ Check(1)<<(act&^synCheckFlag), CorrectedCheck
	default:
		return data ^ uint64(1)<<act, stored, CorrectedData
	}
}

// FlipDataBit returns data with the i-th data bit inverted. It is used by
// tests and by the fault injector to model hardware memory errors.
func FlipDataBit(data uint64, i uint) uint64 {
	if i >= GroupBits {
		panic("ecc: data bit index out of range")
	}
	return data ^ (1 << i)
}

// FlipCheckBit returns the check bits with bit i inverted.
func FlipCheckBit(c Check, i uint) Check {
	if i >= CheckBits {
		panic("ecc: check bit index out of range")
	}
	return c ^ Check(1<<i)
}
