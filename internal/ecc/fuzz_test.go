package ecc

import "testing"

// FuzzDecode exercises the decoder with arbitrary data/check pairs: it must
// never panic, must be idempotent on its own corrections, and must accept
// what Encode produces.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(^uint64(0), uint8(0xff))
	f.Add(uint64(0xdeadbeefcafebabe), uint8(Encode(0xdeadbeefcafebabe)))
	f.Add(Scramble(42), uint8(Encode(42)))
	f.Fuzz(func(t *testing.T, data uint64, check uint8) {
		d, c, res := Decode(data, Check(check))
		// The optimized decoder must agree with the reference implementation
		// on every input the mutator finds.
		if d2, c2, res2 := decodeRef(data, Check(check)); d != d2 || c != c2 || res != res2 {
			t.Fatalf("Decode = (%#x, %#x, %v), decodeRef = (%#x, %#x, %v)",
				d, uint8(c), res, d2, uint8(c2), res2)
		}
		switch res {
		case OK:
			if d != data || c != Check(check) {
				t.Fatal("OK decode mutated its inputs")
			}
		case CorrectedData, CorrectedCheck:
			// The corrected pair must decode clean.
			d2, c2, res2 := Decode(d, c)
			if res2 != OK || d2 != d || c2 != c {
				t.Fatalf("correction not a fixed point: %v after %v", res2, res)
			}
		case Uncorrectable:
			if d != data {
				t.Fatal("uncorrectable decode mutated the data")
			}
		default:
			t.Fatalf("unknown result %v", res)
		}
	})
}

// FuzzEncodeRoundTrip: whatever the data, Encode's output must decode OK
// and survive any single data-bit flip.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3))
	f.Fuzz(func(t *testing.T, data uint64, bit uint8) {
		c := Encode(data)
		if ref := encodeRef(data); c != ref {
			t.Fatalf("Encode(%#x) = %#x, encodeRef = %#x", data, uint8(c), uint8(ref))
		}
		if _, _, res := Decode(data, c); res != OK {
			t.Fatalf("clean decode = %v", res)
		}
		i := uint(bit) % GroupBits
		got, _, res := Decode(FlipDataBit(data, i), c)
		if res != CorrectedData || got != data {
			t.Fatalf("single-bit recovery failed: %v", res)
		}
	})
}

// FuzzScramble pins the scramble algebra SafeMem's watchpoints stand on:
// the data and check scrambles are involutions, a scrambled group always
// decodes as uncorrectable against its stale check bits (never silently
// "corrected"), and the signature predicate recognises exactly the
// scrambled form.
func FuzzScramble(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0xdeadbeefcafebabe))
	f.Add(ScrambleMask())
	// Stuck-at-cell seeds: words whose scramble disagrees with a stuck cell
	// in both polarities (bit 0 of Scramble(0x5afe) and bit 63 of
	// Scramble(^0), so the stuck-at property below starts from covered
	// ground instead of waiting for the mutator to find it.
	f.Add(uint64(0x5afe))
	f.Add(^uint64(0) >> 1)
	f.Fuzz(func(t *testing.T, data uint64) {
		if Scramble(Scramble(data)) != data {
			t.Fatal("data scramble is not an involution")
		}
		c := Encode(data)
		if ScrambleCheck(ScrambleCheck(c)) != c {
			t.Fatal("check scramble is not an involution")
		}
		// Data scramble vs stale check bits: must fault, not correct.
		got, _, res := Decode(Scramble(data), c)
		if res != Uncorrectable {
			t.Fatalf("scrambled group decoded as %v, want Uncorrectable", res)
		}
		if got != Scramble(data) {
			t.Fatal("uncorrectable decode mutated the scrambled data")
		}
		// Check-bit scramble (direct ECC access interface): same guarantee.
		if _, _, res := Decode(data, ScrambleCheck(c)); res != Uncorrectable {
			t.Fatalf("check-scrambled group decoded as %v, want Uncorrectable", res)
		}
		// Signature: recognises the scramble, rejects the original (the
		// mask is non-zero, so x is never its own scramble).
		if !IsScrambleOf(Scramble(data), data) {
			t.Fatal("signature check rejected a genuine scramble")
		}
		if IsScrambleOf(data, data) {
			t.Fatal("signature check accepted unscrambled data")
		}
		// A hardware error on top of a scrambled group must not restore
		// the signature: flipping any one further bit breaks it.
		for _, b := range ScrambleBits() {
			if IsScrambleOf(Scramble(data)^(1<<uint(b)), data) {
				t.Fatal("signature survived a bit flip")
			}
		}
		// Stuck-at cell under scramble: a failed DRAM cell forces one bit
		// of the stored word to a constant, so an armed watchpoint's
		// scramble may land with that bit wrong. Whenever the stuck value
		// disagrees with the scramble, the fault must stay visible: the
		// signature must not match, and the word must not decode clean
		// against the stale check bits. (A correctable verdict is allowed —
		// that is the hardware-error repair path — but a silent OK would
		// make the stuck cell invisible to both detectors.)
		sc := Scramble(data)
		for b := uint(0); b < GroupBits; b++ {
			for _, stuck := range []uint64{sc &^ (1 << b), sc | (1 << b)} {
				if stuck == sc {
					continue // this polarity agrees with the scramble
				}
				if IsScrambleOf(stuck, data) {
					t.Fatalf("signature accepted scramble with bit %d stuck", b)
				}
				if _, _, res := Decode(stuck, c); res == OK {
					t.Fatalf("scramble with bit %d stuck decoded clean", b)
				}
			}
		}
	})
}
