package ecc

import "testing"

// FuzzDecode exercises the decoder with arbitrary data/check pairs: it must
// never panic, must be idempotent on its own corrections, and must accept
// what Encode produces.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(^uint64(0), uint8(0xff))
	f.Add(uint64(0xdeadbeefcafebabe), uint8(Encode(0xdeadbeefcafebabe)))
	f.Add(Scramble(42), uint8(Encode(42)))
	f.Fuzz(func(t *testing.T, data uint64, check uint8) {
		d, c, res := Decode(data, Check(check))
		switch res {
		case OK:
			if d != data || c != Check(check) {
				t.Fatal("OK decode mutated its inputs")
			}
		case CorrectedData, CorrectedCheck:
			// The corrected pair must decode clean.
			d2, c2, res2 := Decode(d, c)
			if res2 != OK || d2 != d || c2 != c {
				t.Fatalf("correction not a fixed point: %v after %v", res2, res)
			}
		case Uncorrectable:
			if d != data {
				t.Fatal("uncorrectable decode mutated the data")
			}
		default:
			t.Fatalf("unknown result %v", res)
		}
	})
}

// FuzzEncodeRoundTrip: whatever the data, Encode's output must decode OK
// and survive any single data-bit flip.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(3))
	f.Fuzz(func(t *testing.T, data uint64, bit uint8) {
		c := Encode(data)
		if _, _, res := Decode(data, c); res != OK {
			t.Fatalf("clean decode = %v", res)
		}
		i := uint(bit) % GroupBits
		got, _, res := Decode(FlipDataBit(data, i), c)
		if res != CorrectedData || got != data {
			t.Fatalf("single-bit recovery failed: %v", res)
		}
	})
}
