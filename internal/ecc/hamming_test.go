package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	cases := []uint64{0, 1, ^uint64(0), 0xdeadbeefcafebabe, 0x8000000000000000, 0x5555555555555555}
	for _, d := range cases {
		c := Encode(d)
		got, gotC, res := Decode(d, c)
		if res != OK {
			t.Errorf("Decode(%#x) result = %v, want OK", d, res)
		}
		if got != d || gotC != c {
			t.Errorf("Decode(%#x) changed clean data/check", d)
		}
	}
}

func TestSingleDataBitCorrection(t *testing.T) {
	d := uint64(0x0123456789abcdef)
	c := Encode(d)
	for i := uint(0); i < GroupBits; i++ {
		bad := FlipDataBit(d, i)
		got, _, res := Decode(bad, c)
		if res != CorrectedData {
			t.Fatalf("bit %d: result = %v, want CorrectedData", i, res)
		}
		if got != d {
			t.Fatalf("bit %d: corrected data %#x, want %#x", i, got, d)
		}
	}
}

func TestSingleCheckBitCorrection(t *testing.T) {
	d := uint64(0xfeedface12345678)
	c := Encode(d)
	for i := uint(0); i < CheckBits; i++ {
		badC := FlipCheckBit(c, i)
		got, gotC, res := Decode(d, badC)
		if res != CorrectedCheck {
			t.Fatalf("check bit %d: result = %v, want CorrectedCheck", i, res)
		}
		if got != d {
			t.Fatalf("check bit %d: data corrupted to %#x", i, got)
		}
		if gotC != c {
			t.Fatalf("check bit %d: corrected check %#x, want %#x", i, gotC, c)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	d := uint64(0x00ff00ff00ff00ff)
	c := Encode(d)
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 500; n++ {
		i := uint(rng.Intn(GroupBits))
		j := uint(rng.Intn(GroupBits))
		if i == j {
			continue
		}
		bad := FlipDataBit(FlipDataBit(d, i), j)
		_, _, res := Decode(bad, c)
		if res != Uncorrectable {
			t.Fatalf("double flip (%d,%d): result = %v, want Uncorrectable", i, j, res)
		}
	}
}

func TestDoubleDataPlusCheckDetection(t *testing.T) {
	d := uint64(0xa5a5a5a5a5a5a5a5)
	c := Encode(d)
	for i := uint(0); i < GroupBits; i += 7 {
		for j := uint(0); j < CheckBits; j++ {
			_, _, res := Decode(FlipDataBit(d, i), FlipCheckBit(c, j))
			if res != Uncorrectable {
				t.Fatalf("data bit %d + check bit %d: result = %v, want Uncorrectable", i, j, res)
			}
		}
	}
}

func TestScramblePatternIsUncorrectable(t *testing.T) {
	// The core requirement of Section 2.2.2: the scrambled word must raise a
	// multi-bit ECC fault, for every possible original word.
	cases := []uint64{0, ^uint64(0), 0xdeadbeef, 1 << 63, 0x1234567887654321}
	for _, d := range cases {
		c := Encode(d)
		_, _, res := Decode(Scramble(d), c)
		if res != Uncorrectable {
			t.Fatalf("Scramble(%#x): result = %v, want Uncorrectable", d, res)
		}
	}
}

func TestScrambleProperties(t *testing.T) {
	bits := ScrambleBits()
	if bits[0] >= bits[1] || bits[1] >= bits[2] {
		t.Fatalf("scramble bits not strictly increasing: %v", bits)
	}
	var mask uint64
	for _, b := range bits {
		mask |= 1 << b
	}
	if mask != ScrambleMask() {
		t.Fatalf("ScrambleMask() = %#x, want %#x", ScrambleMask(), mask)
	}
	if got := Scramble(Scramble(0xcafe)); got != 0xcafe {
		t.Fatalf("Scramble is not an involution: %#x", got)
	}
	if !IsScrambleOf(Scramble(42), 42) {
		t.Fatal("IsScrambleOf rejected a genuine scramble")
	}
	if IsScrambleOf(43, 42) {
		t.Fatal("IsScrambleOf accepted a non-scramble")
	}
}

func TestNaiveTripleFlipCanMiscorrect(t *testing.T) {
	// Documents why the scramble pattern must be chosen carefully: flipping
	// data bits 0, 1 and 2 (codeword positions 3, 5, 6 → XOR 0) produces a
	// word that SECDED does NOT flag as uncorrectable.
	d := uint64(0x1122334455667788)
	c := Encode(d)
	bad := d ^ 0b111
	_, _, res := Decode(bad, c)
	if res == Uncorrectable {
		t.Skip("naive triple happened to be uncorrectable on this layout")
	}
	// The miscorrection either claims OK/corrected — i.e. the watchpoint
	// would silently never fire. This is the failure mode SafeMem's pattern
	// search avoids.
	if res != OK && res != CorrectedData && res != CorrectedCheck {
		t.Fatalf("unexpected result %v", res)
	}
}

func TestQuickCleanRoundTrip(t *testing.T) {
	f := func(d uint64) bool {
		got, _, res := Decode(d, Encode(d))
		return res == OK && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSingleBitAlwaysCorrected(t *testing.T) {
	f := func(d uint64, bit uint8) bool {
		i := uint(bit) % GroupBits
		got, _, res := Decode(FlipDataBit(d, i), Encode(d))
		return res == CorrectedData && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScrambleAlwaysUncorrectable(t *testing.T) {
	f := func(d uint64) bool {
		_, _, res := Decode(Scramble(d), Encode(d))
		return res == Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDoubleBitAlwaysDetected(t *testing.T) {
	f := func(d uint64, a, b uint8) bool {
		i, j := uint(a)%GroupBits, uint(b)%GroupBits
		if i == j {
			return true
		}
		_, _, res := Decode(FlipDataBit(FlipDataBit(d, i), j), Encode(d))
		return res == Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCheckScrambleAlwaysUncorrectable(t *testing.T) {
	// The direct-ECC-interface watchpoint: flipping the two check bits of
	// CheckScrambleMask must decode as uncorrectable for every data word.
	f := func(d uint64) bool {
		_, _, res := Decode(d, ScrambleCheck(Encode(d)))
		return res == Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCheckScrambleSurvivesSingleBitError(t *testing.T) {
	// A hardware single-bit error on a check-armed group must still decode
	// as uncorrectable (so the fault handler can classify it), never as a
	// plausible correction.
	f := func(d uint64, bit uint8) bool {
		i := uint(bit) % GroupBits
		_, _, res := Decode(FlipDataBit(d, i), ScrambleCheck(Encode(d)))
		return res == Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleCheckInvolution(t *testing.T) {
	c := Encode(0xdead)
	if ScrambleCheck(ScrambleCheck(c)) != c {
		t.Fatal("ScrambleCheck is not an involution")
	}
	if ScrambleCheck(c) == c {
		t.Fatal("ScrambleCheck is identity")
	}
}
