package ecc

// Reference SECDED implementation: the original mask-loop encoder and
// linear-search decoder, kept verbatim as the specification the optimized
// table-driven Encode/Decode are differentially tested against (see
// diff_test.go and the fuzz harnesses). Production code must call
// Encode/Decode; these exist only so the fast path always has an oracle.

// parity64 returns the XOR of all bits of x.
func parity64(x uint64) uint {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return uint(x & 1)
}

// encodeRef computes the 8 check bits with one parity fold per Hamming mask
// — the pre-optimization Encode, bit-for-bit.
func encodeRef(data uint64) Check {
	var c Check
	for j := 0; j < 7; j++ {
		if parity64(data&parityMask[j]) != 0 {
			c |= 1 << uint(j)
		}
	}
	// Overall parity covers data plus the seven Hamming bits, and is chosen
	// so the full 72-bit codeword has even weight.
	overall := parity64(data) ^ parity64(uint64(c&0x7f))
	if overall != 0 {
		c |= 1 << 7
	}
	return c
}

// decodeRef is the pre-optimization Decode: syndrome classification via a
// power-of-two linear search and the posToData table, bit-for-bit.
func decodeRef(data uint64, stored Check) (uint64, Check, Result) {
	expected := encodeRef(data)
	// Syndrome over the seven Hamming checks.
	syndrome := uint((expected ^ stored) & 0x7f)
	// Overall parity of the received 72-bit codeword. Encode produced a
	// codeword of even weight, so any odd number of bit flips makes this 1.
	parity := parity64(data) ^ parity64(uint64(stored))

	switch {
	case syndrome == 0 && parity == 0:
		return data, stored, OK
	case syndrome == 0 && parity == 1:
		// Only the overall parity bit flipped.
		return data, stored ^ (1 << 7), CorrectedCheck
	case parity == 0:
		// Non-zero syndrome with even overall parity: double-bit error.
		return data, stored, Uncorrectable
	}
	// Odd parity, non-zero syndrome: decoder assumes a single-bit error at
	// codeword position = syndrome.
	if syndrome > maxPosition {
		return data, stored, Uncorrectable
	}
	if syndrome&(syndrome-1) == 0 {
		// A Hamming parity position: fix the corresponding check bit.
		bit := uint(0)
		for 1<<bit != syndrome {
			bit++
		}
		return data, stored ^ Check(1<<bit), CorrectedCheck
	}
	d := posToData[syndrome]
	if d < 0 {
		return data, stored, Uncorrectable
	}
	return data ^ (1 << uint(d)), stored, CorrectedData
}
