package ecc

import "testing"

// The micro-benchmarks below pin the simulator's hottest arithmetic: every
// simulated line transfer decodes (or encodes) 8 ECC groups, so campaign and
// bench wall-clock is dominated by these two functions. The *Ref variants
// measure the mask-loop/linear-search reference so the speedup is visible in
// the same `go test -bench 'Encode|Decode'` run; the acceptance floor is a
// ≥3× speedup on the clean decode path (see EXPERIMENTS.md "Simulator
// throughput").

var (
	benchCheck Check
	benchData  uint64
	benchRes   Result
)

func BenchmarkEncode(b *testing.B) {
	b.ReportAllocs()
	var c Check
	for i := 0; i < b.N; i++ {
		c ^= Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	benchCheck = c
}

func BenchmarkEncodeRef(b *testing.B) {
	b.ReportAllocs()
	var c Check
	for i := 0; i < b.N; i++ {
		c ^= encodeRef(uint64(i) * 0x9e3779b97f4a7c15)
	}
	benchCheck = c
}

// decodeInputs builds a deterministic workload of (data, check) pairs in the
// requested corruption state.
func decodeInputs(kind string) [256]struct {
	data  uint64
	check Check
} {
	var in [256]struct {
		data  uint64
		check Check
	}
	for i := range in {
		data := uint64(i) * 0x9e3779b97f4a7c15
		check := Encode(data)
		switch kind {
		case "clean":
		case "corrected":
			data = FlipDataBit(data, uint(i)%GroupBits)
		case "uncorrectable":
			data = Scramble(data)
		}
		in[i].data = data
		in[i].check = check
	}
	return in
}

func benchDecode(b *testing.B, kind string, decode func(uint64, Check) (uint64, Check, Result)) {
	in := decodeInputs(kind)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := in[i&255]
		d, _, r := decode(p.data, p.check)
		benchData ^= d
		benchRes = r
	}
}

func BenchmarkDecodeClean(b *testing.B)         { benchDecode(b, "clean", Decode) }
func BenchmarkDecodeCleanRef(b *testing.B)      { benchDecode(b, "clean", decodeRef) }
func BenchmarkDecodeCorrected(b *testing.B)     { benchDecode(b, "corrected", Decode) }
func BenchmarkDecodeCorrectedRef(b *testing.B)  { benchDecode(b, "corrected", decodeRef) }
func BenchmarkDecodeUncorrectable(b *testing.B) { benchDecode(b, "uncorrectable", Decode) }
func BenchmarkDecodeUncorrectableRef(b *testing.B) {
	benchDecode(b, "uncorrectable", decodeRef)
}

// TestEncodeDecodeNoAllocs pins the zero-allocation property of the hot
// path: one heap allocation per group decode would dwarf the arithmetic.
func TestEncodeDecodeNoAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		c := Encode(0xdeadbeefcafebabe)
		benchData, benchCheck, benchRes = Decode(0xdeadbeefcafebabe, c)
	}); n != 0 {
		t.Fatalf("Encode+Decode allocates %v times per op, want 0", n)
	}
}
