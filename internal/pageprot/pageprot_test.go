package pageprot

import (
	"errors"
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

type rig struct {
	m     *machine.Machine
	alloc *heap.Allocator
	tool  *Tool
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, HeapOptions())
	if err != nil {
		t.Fatal(err)
	}
	tool, err := Attach(m, alloc, false)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, alloc: alloc, tool: tool}
}

func (r *rig) malloc(t *testing.T, n uint64) vm.VAddr {
	t.Helper()
	p, err := r.alloc.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAttachValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 4 << 20})
	alloc := heap.MustNew(m, heap.Options{Align: 64, PadBytes: 64})
	if _, err := Attach(m, alloc, false); err == nil {
		t.Fatal("line-aligned allocator accepted")
	}
}

func TestOverflowDetected(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 100)
	r.m.Store8(p+99, 1) // in bounds
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("in-bounds access reported: %v", r.tool.Reports())
	}
	// The first byte past the page-rounded size is in the guard page.
	r.m.Store8(p+vm.PageBytes, 0xee)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOverflow {
		t.Fatalf("reports = %v", reports)
	}
	if !reports[0].Write || reports[0].BufferAddr != p {
		t.Fatalf("report detail: %+v", reports[0])
	}
}

func TestUnderflowDetected(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 64)
	_ = r.m.Load8(p - 1)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugUnderflow || reports[0].Write {
		t.Fatalf("reports = %v", reports)
	}
}

func TestFreedAccessDetected(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 64)
	r.m.Store64(p, 5)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load64(p)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugFreedAccess {
		t.Fatalf("reports = %v", reports)
	}
}

func TestReallocationUnprotects(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 64)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	q := r.malloc(t, 64)
	if q != p {
		t.Fatalf("extent not reused: %#x vs %#x", uint64(q), uint64(p))
	}
	r.m.Store64(q, 1)
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("reuse reported: %v", r.tool.Reports())
	}
}

func TestFalseSharingWithinGuardPage(t *testing.T) {
	// The page-granularity problem: a small buffer occupies a whole page,
	// so any access within the same page as the buffer is fine, but the
	// waste is 4096-aligned. Verify the user can touch every byte of the
	// page-rounded region without faulting.
	r := newRig(t)
	p := r.malloc(t, 10)
	for i := uint64(0); i < vm.PageBytes; i += 512 {
		r.m.Store8(p+vm.VAddr(i), 1)
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("accesses within the buffer's own page reported: %v", r.tool.Reports())
	}
}

func TestStopOnBug(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	alloc := heap.MustNew(m, HeapOptions())
	if _, err := Attach(m, alloc, true); err != nil {
		t.Fatal(err)
	}
	p, err := alloc.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	runErr := m.Run(func() error {
		m.Store8(p+vm.PageBytes, 1)
		return nil
	})
	var abort *machine.ProgramAbort
	if !errors.As(runErr, &abort) {
		t.Fatalf("err = %v, want ProgramAbort", runErr)
	}
}

func TestSpaceOverheadVsECC(t *testing.T) {
	// The Table 4 effect in miniature: the same allocation trace costs
	// ~64× more waste under page protection than under ECC protection.
	r := newRig(t)
	m2 := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	eccAlloc := heap.MustNew(m2, heap.Options{Align: 64, PadBytes: 64})

	for i := 0; i < 50; i++ {
		size := uint64(100 + i*37)
		r.malloc(t, size)
		if _, err := eccAlloc.Malloc(size); err != nil {
			t.Fatal(err)
		}
	}
	pageWaste := r.alloc.Stats().WasteLive
	eccWaste := eccAlloc.Stats().WasteLive
	ratio := float64(pageWaste) / float64(eccWaste)
	if ratio < 40 || ratio > 90 {
		t.Fatalf("page/ECC waste ratio = %.1f (page=%d ecc=%d), want ~64×", ratio, pageWaste, eccWaste)
	}
}

func TestStatsCounting(t *testing.T) {
	r := newRig(t)
	p := r.malloc(t, 8)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	st := r.tool.Stats()
	if st.Allocs != 1 || st.Frees != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// alloc: 2 protects; free: 2 unprotects + 1 protect of the extent.
	if st.Protects != 3 || st.Unprotects != 2 {
		t.Fatalf("protect counts = %d/%d", st.Protects, st.Unprotects)
	}
}
