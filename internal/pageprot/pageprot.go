// Package pageprot implements the page-protection baseline the paper
// compares ECC protection against (Sections 2.2.1 and 6.3): the same
// guard-the-pads / watch-freed-buffers strategy as SafeMem's corruption
// detector, but built on mprotect and SIGSEGV-style page faults instead of
// ECC watchpoints.
//
// Because protection is only available at page granularity, every buffer
// must be page aligned with one guard *page* (4096 bytes) per side instead
// of one cache line (64 bytes) — a 64× coarser unit. Table 4 quantifies the
// resulting memory waste; this package regenerates its page-protection
// column.
package pageprot

import (
	"fmt"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// BugKind classifies reports.
type BugKind int

const (
	// BugOverflow / BugUnderflow: access to a guard page.
	BugOverflow BugKind = iota
	BugUnderflow
	// BugFreedAccess: access to a freed, protected buffer.
	BugFreedAccess
)

// String names the kind.
func (k BugKind) String() string {
	switch k {
	case BugOverflow:
		return "buffer-overflow"
	case BugUnderflow:
		return "buffer-underflow"
	case BugFreedAccess:
		return "freed-memory-access"
	default:
		return fmt.Sprintf("BugKind(%d)", int(k))
	}
}

// Report is one finding.
type Report struct {
	Kind BugKind
	Time simtime.Cycles
	Addr vm.VAddr
	// BufferAddr/BufferSize identify the guarded buffer.
	BufferAddr vm.VAddr
	BufferSize uint64
	Site       uint64
	Write      bool
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("[%s] %s addr=%#x buffer=%#x size=%d site=%#x",
		r.Time, r.Kind, uint64(r.Addr), uint64(r.BufferAddr), r.BufferSize, r.Site)
}

// watch describes one protected page region.
type watch struct {
	base  vm.VAddr // page aligned
	pages int
	kind  BugKind
	block *heap.Block
}

// Stats counts tool activity.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	Protects    uint64
	Unprotects  uint64
	FaultsTaken uint64
	Reports     uint64
}

// Tool is an attached page-protection corruption detector. It implements
// heap.Hook and registers a kernel page-fault handler.
type Tool struct {
	m      *machine.Machine
	alloc  *heap.Allocator
	byPage map[vm.VAddr]*watch
	stats  Stats

	reports   []Report
	stopOnBug bool
}

// HeapOptions returns the allocator configuration this baseline requires:
// page-aligned buffers with one guard page per side.
func HeapOptions() heap.Options {
	return heap.Options{Align: vm.PageBytes, PadBytes: vm.PageBytes}
}

// Attach wires the tool onto machine m and allocator alloc, which must be
// configured via HeapOptions.
func Attach(m *machine.Machine, alloc *heap.Allocator, stopOnBug bool) (*Tool, error) {
	ho := alloc.Options()
	if ho.Align != vm.PageBytes || ho.PadBytes != vm.PageBytes {
		return nil, fmt.Errorf("pageprot: allocator must be page aligned with page padding (have align=%d pad=%d)", ho.Align, ho.PadBytes)
	}
	t := &Tool{
		m:         m,
		alloc:     alloc,
		byPage:    make(map[vm.VAddr]*watch),
		stopOnBug: stopOnBug,
	}
	alloc.AddHook(t)
	m.Kern.RegisterPageFaultHandler(t.handlePageFault)
	return t, nil
}

// Reports returns the findings so far.
func (t *Tool) Reports() []Report {
	out := make([]Report, len(t.reports))
	copy(out, t.reports)
	return out
}

// Stats returns a copy of the counters.
func (t *Tool) Stats() Stats { return t.stats }

func (t *Tool) protect(base vm.VAddr, pages int, kind BugKind, b *heap.Block) {
	if err := t.m.Kern.Mprotect(base, pages, vm.ProtNone); err != nil {
		panic(fmt.Sprintf("pageprot: mprotect: %v", err))
	}
	w := &watch{base: base, pages: pages, kind: kind, block: b}
	for i := 0; i < pages; i++ {
		t.byPage[base+vm.VAddr(i*vm.PageBytes)] = w
	}
	t.stats.Protects++
}

func (t *Tool) unprotect(w *watch) {
	if err := t.m.Kern.Mprotect(w.base, w.pages, vm.ProtRW); err != nil {
		panic(fmt.Sprintf("pageprot: unprotect: %v", err))
	}
	for i := 0; i < w.pages; i++ {
		delete(t.byPage, w.base+vm.VAddr(i*vm.PageBytes))
	}
	t.stats.Unprotects++
}

// unprotectOverlapping removes watches intersecting [base, base+size).
func (t *Tool) unprotectOverlapping(base vm.VAddr, size uint64) {
	seen := map[*watch]bool{}
	for pg := base.PageAddr(); pg < base+vm.VAddr(size); pg += vm.PageBytes {
		if w, ok := t.byPage[pg]; ok && !seen[w] {
			seen[w] = true
			t.unprotect(w)
		}
	}
}

// OnAlloc implements heap.Hook: guard pages around the new buffer.
func (t *Tool) OnAlloc(b *heap.Block) {
	t.stats.Allocs++
	t.unprotectOverlapping(b.FullAddr, b.FullSize)
	t.protect(b.PadBefore(), 1, BugUnderflow, b)
	t.protect(b.PadAfter(), 1, BugOverflow, b)
}

// OnFree implements heap.Hook: protect the whole freed extent.
func (t *Tool) OnFree(b *heap.Block) {
	t.stats.Frees++
	t.unprotectOverlapping(b.FullAddr, b.FullSize)
	t.protect(b.FullAddr, int(b.FullSize/vm.PageBytes), BugFreedAccess, b)
}

// handlePageFault classifies a protection fault against the active watches,
// reports, unprotects the region, and retries the access.
func (t *Tool) handlePageFault(f *vm.Fault) bool {
	w, ok := t.byPage[f.Addr.PageAddr()]
	if !ok {
		return false // not ours: let the program crash
	}
	t.stats.FaultsTaken++
	t.stats.Reports++
	var rep Report
	rep.Kind = w.kind
	rep.Time = t.m.Clock.Now()
	rep.Addr = f.Addr
	rep.Write = f.Write
	if w.block != nil {
		rep.BufferAddr = w.block.Addr
		rep.BufferSize = w.block.Size
		rep.Site = w.block.Site
	}
	t.reports = append(t.reports, rep)
	t.unprotect(w)
	if t.stopOnBug {
		machine.Abort("pageprot: %s at %#x", w.kind, uint64(f.Addr))
	}
	return true
}
