package simtime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	c.Advance(100)
	c.AdvanceInstr(5)
	if c.Now() != 100+5*CostInstr {
		t.Fatalf("Now = %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestConversions(t *testing.T) {
	if got := Cycles(2400).Microseconds(); got != 1.0 {
		t.Errorf("2400 cycles = %vµs", got)
	}
	if got := Cycles(2400 * 1e6).Seconds(); got != 1.0 {
		t.Errorf("seconds = %v", got)
	}
	if FromMicroseconds(2.5) != 6000 {
		t.Errorf("FromMicroseconds(2.5) = %d", FromMicroseconds(2.5))
	}
}

func TestStringUnits(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{100, "cy"},
		{4800, "µs"},
		{4_800_000, "ms"},
		{4_800_000_000, "s"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); !strings.Contains(got, tc.want) {
			t.Errorf("%d cycles -> %q, want unit %q", tc.c, got, tc.want)
		}
	}
}

func TestQuickConversionRoundTrip(t *testing.T) {
	f := func(us uint16) bool {
		c := FromMicroseconds(float64(us))
		return c.Microseconds() == float64(us)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostOrdering(t *testing.T) {
	// Sanity of the cost model's internal ordering.
	if CostCacheHit >= CostCacheMiss {
		t.Error("hit not cheaper than miss")
	}
	if CostSyscall <= CostCacheMiss {
		t.Error("syscall not dearer than a miss")
	}
	if CostInterrupt <= CostSyscall {
		t.Error("ECC interrupt delivery should exceed a bare syscall")
	}
}

func TestWakeHook(t *testing.T) {
	var c Clock
	var fired []Cycles
	c.SetWake(100, func(now Cycles) Cycles {
		fired = append(fired, now)
		return now + 100
	})
	c.Advance(50)
	if len(fired) != 0 {
		t.Fatalf("woke early at %v", fired)
	}
	c.Advance(50)  // now=100: fire, rearm at 200
	c.Advance(250) // now=350: the 200 deadline fires once, late, at 350
	if want := []Cycles{100, 350}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	c.ClearWake()
	c.Advance(1000)
	if len(fired) != 2 {
		t.Fatalf("fired after ClearWake: %v", fired)
	}
}

func TestWakeHookOneShot(t *testing.T) {
	var c Clock
	n := 0
	// Returning a wake time not after now uninstalls the hook.
	c.SetWake(10, func(now Cycles) Cycles { n++; return now })
	c.Advance(100)
	c.Advance(100)
	if n != 1 {
		t.Fatalf("one-shot wake fired %d times", n)
	}
}

func TestMultipleTimers(t *testing.T) {
	var c Clock
	var order []string
	c.NewTimer(100, func(now Cycles) Cycles {
		order = append(order, "a")
		return now + 100
	})
	c.NewTimer(150, func(now Cycles) Cycles {
		order = append(order, "b")
		return now + 150
	})
	// 100:a 150:b 200:a 300:a+b (a first: registration order).
	for i := 0; i < 6; i++ {
		c.Advance(50)
	}
	want := "a b a a b"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("fire order %q, want %q", got, want)
	}
}

func TestTimerStopReprogram(t *testing.T) {
	var c Clock
	n := 0
	tm := c.NewTimer(10, func(now Cycles) Cycles { n++; return now + 10 })
	c.Advance(10)
	tm.Stop()
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
	c.Advance(100)
	if n != 1 {
		t.Fatalf("stopped timer fired: n=%d", n)
	}
	tm.Reprogram(c.Now() + 5)
	c.Advance(5)
	if n != 2 || !tm.Active() {
		t.Fatalf("reprogrammed timer did not fire: n=%d active=%v", n, tm.Active())
	}
}

func TestClearWakeSparesTimers(t *testing.T) {
	var c Clock
	legacy, timer := 0, 0
	c.SetWake(10, func(now Cycles) Cycles { legacy++; return now + 10 })
	c.NewTimer(10, func(now Cycles) Cycles { timer++; return now + 10 })
	c.Advance(10)
	c.ClearWake() // must clear only the legacy slot
	c.Advance(10)
	if legacy != 1 || timer != 2 {
		t.Fatalf("legacy=%d timer=%d, want 1, 2", legacy, timer)
	}
	// SetWake reuses the legacy slot rather than stacking a new timer.
	c.SetWake(c.Now()+10, func(now Cycles) Cycles { legacy++; return now + 10 })
	c.Advance(10)
	if legacy != 2 || timer != 3 {
		t.Fatalf("after re-set: legacy=%d timer=%d, want 2, 3", legacy, timer)
	}
}

func TestTimerHookMayAdvanceClock(t *testing.T) {
	// A hook that charges cycles (like the scrub daemon) must not recurse,
	// and deadlines it crosses must still fire before control returns.
	var c Clock
	var fired []string
	c.NewTimer(100, func(now Cycles) Cycles {
		fired = append(fired, "scrub")
		c.Advance(60) // crosses the 150 deadline below
		return c.Now() + 100
	})
	c.NewTimer(150, func(now Cycles) Cycles {
		fired = append(fired, "sample")
		return now + 1000
	})
	c.Advance(100)
	if want := "scrub sample"; strings.Join(fired, " ") != want {
		t.Fatalf("fired %v, want %q", fired, want)
	}
	if c.Now() != 160 {
		t.Fatalf("Now = %d, want 160", c.Now())
	}
}

func TestStaleWakeBound(t *testing.T) {
	// Stop is O(1) and leaves wakeAt as a stale lower bound. Crossing the
	// stale deadline must fire nothing, and a later timer must still fire
	// exactly on time afterwards.
	var c Clock
	early := 0
	late := 0
	tm := c.NewTimer(10, func(now Cycles) Cycles { early++; return now })
	c.NewTimer(100, func(now Cycles) Cycles { late++; return now })
	tm.Stop()
	c.Advance(10) // stale bound crossed: spurious sweep, nothing fires
	if early != 0 || late != 0 {
		t.Fatalf("fired early=%d late=%d at stale bound", early, late)
	}
	c.Advance(89)
	if late != 0 {
		t.Fatal("late timer fired before its deadline")
	}
	c.Advance(1)
	if early != 0 || late != 1 {
		t.Fatalf("early=%d late=%d, want 0, 1", early, late)
	}
	// Reprogram to a later deadline likewise leaves a stale earlier bound.
	tm.Reprogram(c.Now() + 10)
	tm.Reprogram(c.Now() + 50)
	c.Advance(10)
	if early != 0 {
		t.Fatal("fired at the abandoned earlier deadline")
	}
	c.Advance(40)
	if early != 1 {
		t.Fatalf("early=%d, want 1", early)
	}
}

func TestClockRecycle(t *testing.T) {
	var c Clock
	n := 0
	c.NewTimer(10, func(now Cycles) Cycles { n++; return now + 10 })
	c.SetWake(20, func(now Cycles) Cycles { n++; return now + 10 })
	c.Advance(5)
	c.Recycle()
	if c.Now() != 0 {
		t.Fatalf("Now = %d after Recycle", c.Now())
	}
	c.Advance(1000)
	if n != 0 {
		t.Fatalf("recycled clock fired %d stale timers", n)
	}
	// The legacy slot must be reusable after Recycle.
	c.SetWake(c.Now()+10, func(now Cycles) Cycles { n++; return now })
	c.Advance(10)
	if n != 1 {
		t.Fatalf("post-Recycle SetWake fired %d times, want 1", n)
	}
}

func TestTimerRegisteredInsideHook(t *testing.T) {
	var c Clock
	n := 0
	c.NewTimer(10, func(now Cycles) Cycles {
		c.NewTimer(now+5, func(now Cycles) Cycles { n++; return now })
		return now // one-shot
	})
	c.Advance(10)
	if n != 0 {
		t.Fatal("inner timer fired before its deadline")
	}
	c.Advance(5)
	if n != 1 {
		t.Fatalf("inner timer fired %d times, want 1", n)
	}
}

// TestHeadroom pins the bound the batched access fast lane builds on: a
// single Advance of at most Headroom() cycles can never fire a wake, and
// the bound stays conservative (never overshooting a live deadline) even
// when stopped timers leave the cached wake bound stale.
func TestHeadroom(t *testing.T) {
	c := &Clock{}
	if _, bounded := c.Headroom(); bounded {
		t.Fatal("clock with no timers reports a bounded headroom")
	}
	var fired []Cycles
	c.NewTimer(100, func(now Cycles) Cycles { fired = append(fired, now); return 0 })
	h, bounded := c.Headroom()
	if !bounded {
		t.Fatal("armed timer reports unbounded headroom")
	}
	c.Advance(h)
	if len(fired) != 0 {
		t.Fatalf("Advance(Headroom()) fired the timer at %v", fired)
	}
	for len(fired) == 0 {
		c.Advance(1)
	}
	if fired[0] != 100 || c.Now() != 100 {
		t.Fatalf("timer fired at %v (now %v), want exactly 100", fired, c.Now())
	}
	// A stopped earlier timer leaves wakeAt as a stale lower bound; the
	// headroom may shrink batches but must still respect the live deadline.
	stopped := c.NewTimer(c.Now()+50, func(now Cycles) Cycles { return 0 })
	c.NewTimer(c.Now()+200, func(now Cycles) Cycles { fired = append(fired, now); return 0 })
	stopped.Stop()
	h, bounded = c.Headroom()
	if !bounded || h >= 200 {
		t.Fatalf("headroom %v (bounded=%v) overshoots the live +200 deadline", h, bounded)
	}
	c.Advance(h)
	if len(fired) != 1 {
		t.Fatalf("stale-bound Advance(Headroom()) fired a wake: %v", fired)
	}
}
