package simtime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	c.Advance(100)
	c.AdvanceInstr(5)
	if c.Now() != 100+5*CostInstr {
		t.Fatalf("Now = %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestConversions(t *testing.T) {
	if got := Cycles(2400).Microseconds(); got != 1.0 {
		t.Errorf("2400 cycles = %vµs", got)
	}
	if got := Cycles(2400 * 1e6).Seconds(); got != 1.0 {
		t.Errorf("seconds = %v", got)
	}
	if FromMicroseconds(2.5) != 6000 {
		t.Errorf("FromMicroseconds(2.5) = %d", FromMicroseconds(2.5))
	}
}

func TestStringUnits(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{100, "cy"},
		{4800, "µs"},
		{4_800_000, "ms"},
		{4_800_000_000, "s"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); !strings.Contains(got, tc.want) {
			t.Errorf("%d cycles -> %q, want unit %q", tc.c, got, tc.want)
		}
	}
}

func TestQuickConversionRoundTrip(t *testing.T) {
	f := func(us uint16) bool {
		c := FromMicroseconds(float64(us))
		return c.Microseconds() == float64(us)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostOrdering(t *testing.T) {
	// Sanity of the cost model's internal ordering.
	if CostCacheHit >= CostCacheMiss {
		t.Error("hit not cheaper than miss")
	}
	if CostSyscall <= CostCacheMiss {
		t.Error("syscall not dearer than a miss")
	}
	if CostInterrupt <= CostSyscall {
		t.Error("ECC interrupt delivery should exceed a bare syscall")
	}
}

func TestWakeHook(t *testing.T) {
	var c Clock
	var fired []Cycles
	c.SetWake(100, func(now Cycles) Cycles {
		fired = append(fired, now)
		return now + 100
	})
	c.Advance(50)
	if len(fired) != 0 {
		t.Fatalf("woke early at %v", fired)
	}
	c.Advance(50)  // now=100: fire, rearm at 200
	c.Advance(250) // now=350: the 200 deadline fires once, late, at 350
	if want := []Cycles{100, 350}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	c.ClearWake()
	c.Advance(1000)
	if len(fired) != 2 {
		t.Fatalf("fired after ClearWake: %v", fired)
	}
}

func TestWakeHookOneShot(t *testing.T) {
	var c Clock
	n := 0
	// Returning a wake time not after now uninstalls the hook.
	c.SetWake(10, func(now Cycles) Cycles { n++; return now })
	c.Advance(100)
	c.Advance(100)
	if n != 1 {
		t.Fatalf("one-shot wake fired %d times", n)
	}
}
