// Package simtime provides the virtual CPU clock used by the simulated
// machine, together with the cost-model constants that calibrate the
// simulation to the paper's platform (a 2.4 GHz Pentium 4 with an Intel
// E7500 ECC chipset).
//
// Every component of the simulator charges cycles to a Clock instead of
// reading wall-clock time, so experiments are fully deterministic and the
// "CPU time of the monitored program" notion used by the paper's leak
// detector (Section 3) is exact: idle periods between simulated client
// requests simply never advance the clock.
package simtime

import "fmt"

// CyclesPerMicrosecond is the clock rate of the simulated CPU: 2.4 GHz,
// matching the paper's evaluation platform (Section 5.1).
const CyclesPerMicrosecond = 2400

// Cycles counts simulated CPU cycles. It is the only unit of time in the
// simulator; conversions to nanoseconds or microseconds are for display.
type Cycles uint64

// Microseconds converts a cycle count to microseconds on the simulated
// 2.4 GHz machine.
func (c Cycles) Microseconds() float64 {
	return float64(c) / CyclesPerMicrosecond
}

// Seconds converts a cycle count to seconds on the simulated machine.
func (c Cycles) Seconds() float64 {
	return float64(c) / (CyclesPerMicrosecond * 1e6)
}

// String renders the count in a human-friendly unit.
func (c Cycles) String() string {
	switch {
	case c >= CyclesPerMicrosecond*1e6:
		return fmt.Sprintf("%.3fs", c.Seconds())
	case c >= CyclesPerMicrosecond*1000:
		return fmt.Sprintf("%.3fms", c.Microseconds()/1000)
	case c >= CyclesPerMicrosecond:
		return fmt.Sprintf("%.3fµs", c.Microseconds())
	default:
		return fmt.Sprintf("%dcy", uint64(c))
	}
}

// FromMicroseconds converts a duration in microseconds to cycles.
func FromMicroseconds(us float64) Cycles {
	return Cycles(us * CyclesPerMicrosecond)
}

// Cost-model constants. These calibrate the simulator; they are shared by
// every tool under test so overheads are comparable. See DESIGN.md §6.
const (
	// CostInstr is the charge for one ordinary ALU instruction.
	CostInstr Cycles = 1

	// CostCacheHit is a load/store that hits in the CPU cache.
	CostCacheHit Cycles = 3

	// CostCacheMiss is a load that must fetch a line from DRAM.
	CostCacheMiss Cycles = 240

	// CostWriteBack is the charge for writing a dirty line back to DRAM.
	CostWriteBack Cycles = 120

	// CostLineFlush is an explicit clflush of one line (used by WatchMemory).
	CostLineFlush Cycles = 180

	// CostSyscall is the fixed entry/exit cost of any system call
	// (trap, register save/restore, kernel dispatch).
	CostSyscall Cycles = 1400

	// CostBusLock / CostBusUnlock charge for locking the memory bus during
	// the disable-ECC scramble window (Section 2.2.2, Figure 2). Locking
	// quiesces all other bus agents (other processors, DMA), which is slow.
	CostBusLock   Cycles = 800
	CostBusUnlock Cycles = 500

	// CostECCModeSwitch is the chipset configuration-register write that
	// disables or enables the ECC engine; PCI config-space accesses are
	// slow on real chipsets.
	CostECCModeSwitch Cycles = 700

	// CostScrambleWord covers scrambling (or restoring) one 64-bit ECC
	// group, including saving the original data to SafeMem's private area.
	CostScrambleWord Cycles = 40

	// CostPageTableOp is one page-table walk/update (protection change,
	// pin/unpin) inside the kernel.
	CostPageTableOp Cycles = 180

	// CostDirectECCWrite is one check-bit register write on a controller
	// implementing the paper's proposed software-friendly ECC interface
	// (Section 2.2.3): no bus lock or mode switch needed.
	CostDirectECCWrite Cycles = 20

	// CostTLBFlush is the TLB shootdown performed after a protection
	// change (mprotect).
	CostTLBFlush Cycles = 850

	// CostInterrupt is the delivery of an ECC machine-check interrupt from
	// controller to kernel to user-level handler.
	CostInterrupt Cycles = 2200

	// CostPageFault is the delivery of a page-protection fault.
	CostPageFault Cycles = 1800
)

// Clock is the virtual CPU clock. The zero value is a clock at time zero,
// ready to use. Clock is not safe for concurrent use; the simulated machine
// is single-threaded, like the paper's monitored programs.
//
// Periodic background work (the telemetry sampler, the kernel's scrub
// daemon, the DRAM fault process) registers Timers. The Advance hot path
// stays a single compare-and-branch: wakeAt caches a lower bound on the
// earliest deadline over all active timers (see noteDeadline).
type Clock struct {
	now    Cycles
	wakeAt Cycles
	armed  bool
	timers []*Timer
	legacy *Timer
	firing bool
}

// Timer is one wake hook registered on the clock. Timers fire in
// registration order when several share a deadline, which keeps multi-hook
// runs deterministic. A stopped Timer stays registered and can be re-armed
// with Reprogram.
type Timer struct {
	c      *Clock
	at     Cycles
	fn     func(now Cycles) Cycles
	active bool
}

// Now returns the current simulated time.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by n cycles.
func (c *Clock) Advance(n Cycles) {
	c.now += n
	if c.armed && c.now >= c.wakeAt && !c.firing {
		c.fireWake()
	}
}

// AdvanceInstr charges n ordinary instructions.
func (c *Clock) AdvanceInstr(n uint64) { c.Advance(Cycles(n) * CostInstr) }

// Headroom reports how many cycles the clock can advance while provably not
// reaching the next wake deadline, and whether such a bound exists (bounded
// is false when no timer is armed, in which case the headroom is infinite
// and the returned count is meaningless). The batched access fast lane uses
// it to clamp run lengths: a single Advance(n) with n ≤ headroom fires
// nothing, so batching n per-access charges into one call is
// indistinguishable from n singles. The bound is conservative — wakeAt may
// be a stale *lower* bound on the earliest active deadline (see
// noteDeadline) — so clamping against it can only shorten batches, never
// let a wake fire mid-batch.
func (c *Clock) Headroom() (Cycles, bool) {
	if !c.armed {
		return 0, false
	}
	if c.wakeAt <= c.now {
		return 0, true
	}
	// Advancing by wakeAt-now-1 leaves now strictly before wakeAt.
	return c.wakeAt - c.now - 1, true
}

// Reset rewinds the clock to zero. Used between benchmark repetitions.
// Timers stay installed with their deadlines unchanged, so periodic work
// resumes once the clock catches back up.
func (c *Clock) Reset() { c.now = 0 }

// Recycle returns the clock to its zero value: time zero, no timers, no
// legacy hook. Used when a pooled machine is reset between scenarios;
// components that need periodic work re-register their timers afterwards.
func (c *Clock) Recycle() { *c = Clock{} }

// NewTimer registers fn to run the first time the clock reaches or passes
// at. A deadline crossed mid-Advance fires once, late, at the post-Advance
// time (missed periods do not replay). fn returns the next wake time;
// returning a time not after the current time stops the timer. Unlike the
// legacy single-slot hook, a timer's fn may itself advance the clock (e.g.
// a scrub daemon charging scrub cycles): re-entry is suppressed while hooks
// run, and any deadlines crossed inside a hook fire before control returns
// to the program.
func (c *Clock) NewTimer(at Cycles, fn func(now Cycles) Cycles) *Timer {
	t := &Timer{c: c, at: at, fn: fn, active: true}
	c.timers = append(c.timers, t)
	c.noteDeadline(at)
	return t
}

// Stop deactivates the timer. It stays registered; Reprogram re-arms it.
//
// Stop is O(1): wakeAt is left alone and becomes a stale lower bound on
// the earliest active deadline. The worst case is one spurious fireWake
// sweep that fires nothing and then rearms precisely; observable firing
// times are unchanged.
func (t *Timer) Stop() {
	t.active = false
}

// Reprogram re-arms the timer (stopped or not) with a new deadline.
// O(1): moving a deadline later leaves wakeAt as a stale lower bound
// (corrected by the next sweep's rearm), moving it earlier lowers wakeAt.
func (t *Timer) Reprogram(at Cycles) {
	t.at = at
	t.active = true
	t.c.noteDeadline(at)
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.active }

// Deadline returns the timer's next fire time (meaningful while Active).
func (t *Timer) Deadline() Cycles { return t.at }

// SetWake installs fn on the clock's dedicated legacy slot: the
// single-hook API that predates Timers. ClearWake clears only this slot,
// so a component using SetWake/ClearWake (the telemetry sampler) cannot
// disturb timers owned by others. Semantics per NewTimer.
func (c *Clock) SetWake(at Cycles, fn func(now Cycles) Cycles) {
	if c.legacy == nil {
		c.legacy = c.NewTimer(at, fn)
		return
	}
	c.legacy.fn = fn
	c.legacy.Reprogram(at)
}

// ClearWake uninstalls the legacy wake hook. Timers are unaffected.
func (c *Clock) ClearWake() {
	if c.legacy != nil {
		c.legacy.Stop()
	}
}

// timerState is one timer's captured deadline and armed flag.
type timerState struct {
	t      *Timer
	at     Cycles
	active bool
}

// ClockImage is a checkpoint of a clock: the current time plus the deadline
// and armed state of every timer registered at capture time. Timers keep
// their hook closures — an image restores into the same host objects it was
// captured from, which is exactly what the snapshot layer's bound runners
// guarantee.
type ClockImage struct {
	clock  *Clock
	now    Cycles
	wakeAt Cycles
	armed  bool
	legacy *Timer
	timers []timerState
}

// CaptureImage checkpoints the clock. Capturing mid-sweep (from inside a
// timer hook) is a bug and panics.
func (c *Clock) CaptureImage() *ClockImage {
	if c.firing {
		panic("simtime: CaptureImage from inside a timer hook")
	}
	img := &ClockImage{
		clock:  c,
		now:    c.now,
		wakeAt: c.wakeAt,
		armed:  c.armed,
		legacy: c.legacy,
		timers: make([]timerState, len(c.timers)),
	}
	for i, t := range c.timers {
		img.timers[i] = timerState{t: t, at: t.at, active: t.active}
	}
	return img
}

// RestoreImage puts the clock back into the captured state. Timers
// registered after the capture are dropped — they belong to per-run
// components (fault processes, scrub daemons) that are rebuilt per run —
// while the captured prefix gets its deadlines and armed flags back.
func (c *Clock) RestoreImage(img *ClockImage) {
	if img.clock != c {
		panic("simtime: RestoreImage with an image captured from a different clock")
	}
	for i := range img.timers {
		s := &img.timers[i]
		if c.timers[i] != s.t {
			panic("simtime: clock timer list diverged from image prefix")
		}
		s.t.at = s.at
		s.t.active = s.active
	}
	c.timers = c.timers[:len(img.timers)]
	c.now = img.now
	c.wakeAt = img.wakeAt
	c.armed = img.armed
	c.legacy = img.legacy
	c.firing = false
}

// noteDeadline lowers the cached wake bound to cover a new deadline.
// wakeAt is maintained as a lower bound on the earliest active deadline
// (never an exact minimum): Stop and later Reprograms leave it stale, and
// the exact recompute happens only in rearm at the end of a sweep.
func (c *Clock) noteDeadline(at Cycles) {
	if !c.armed || at < c.wakeAt {
		c.wakeAt = at
		c.armed = true
	}
}

// rearm recomputes the cached earliest deadline exactly.
func (c *Clock) rearm() {
	c.armed = false
	for _, t := range c.timers {
		if t.active && (!c.armed || t.at < c.wakeAt) {
			c.wakeAt = t.at
			c.armed = true
		}
	}
}

// fireWake runs every due timer until none remain due. A hook that
// advances the clock may make further timers due; they fire on the next
// sweep, still inside this call, so the program never observes a missed
// deadline.
func (c *Clock) fireWake() {
	c.firing = true
	for {
		fired := false
		// Index loop: a hook may register new timers, growing the slice.
		for i := 0; i < len(c.timers); i++ {
			t := c.timers[i]
			if !t.active || c.now < t.at {
				continue
			}
			fired = true
			next := t.fn(c.now)
			if next <= c.now {
				t.active = false
			} else {
				t.at = next
			}
		}
		if !fired {
			break
		}
	}
	c.firing = false
	c.rearm()
}
