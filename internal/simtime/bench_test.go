package simtime

import "testing"

// BenchmarkTimerStopReprogram measures the Stop/Reprogram cycle a periodic
// component (the scrub daemon, the fault process) performs on every step,
// with a realistic population of other timers registered on the same clock.
// Before the lazy wake bound, each call recomputed the minimum over all
// timers; now both are O(1).
func BenchmarkTimerStopReprogram(b *testing.B) {
	var c Clock
	for i := 0; i < 64; i++ {
		at := Cycles(1 << 40) // far future: never fires during the benchmark
		c.NewTimer(at, func(now Cycles) Cycles { return now + 1000 })
	}
	t := c.NewTimer(1<<40, func(now Cycles) Cycles { return 0 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Stop()
		t.Reprogram(Cycles(1<<40) + Cycles(i))
	}
}

// BenchmarkAdvanceNoTimers pins the cost of the Advance hot path itself.
func BenchmarkAdvanceNoTimers(b *testing.B) {
	var c Clock
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance(CostInstr)
	}
}
