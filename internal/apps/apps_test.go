package apps

import (
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// newEnv builds a bare environment (no monitoring tool).
func newEnv(t *testing.T) *Env {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{Limit: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return &Env{M: m, Alloc: alloc}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("registry has %d apps, want 7", len(all))
	}
	want := []string{"ypserv1", "proftpd", "squid1", "ypserv2", "gzip", "tar", "squid2"}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].Name, name)
		}
		if app, ok := Get(name); !ok || app != all[i] {
			t.Errorf("Get(%s) mismatch", name)
		}
	}
	if _, ok := Get("nonesuch"); ok {
		t.Error("Get of unknown app succeeded")
	}
	if n := len(LeakApps()); n != 4 {
		t.Errorf("LeakApps = %d, want 4", n)
	}
	for _, a := range LeakApps() {
		if !a.Class.IsLeak() {
			t.Errorf("%s in LeakApps but class %v", a.Name, a.Class)
		}
		if a.IsRealLeak == nil {
			t.Errorf("%s has no leak ground truth", a.Name)
		}
	}
}

func TestBugClassStrings(t *testing.T) {
	for c, want := range map[BugClass]string{
		ClassALeak:       "ALeak",
		ClassSLeak:       "SLeak",
		ClassOverflow:    "overflow",
		ClassFreedAccess: "freed-access",
	} {
		if c.String() != want {
			t.Errorf("%v != %s", c, want)
		}
	}
}

func TestAllAppsRunCleanOnNormalInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full app runs are slow")
	}
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			e := newEnv(t)
			err := e.M.Run(func() error {
				return app.Run(e, Config{Seed: 7})
			})
			if err != nil {
				t.Fatalf("normal run failed: %v", err)
			}
			if e.M.Stack.Depth() != 0 {
				t.Fatalf("unbalanced call stack: depth %d", e.M.Stack.Depth())
			}
			st := e.Alloc.Stats()
			if st.Mallocs == 0 {
				t.Fatal("app never allocated")
			}
			ms := e.M.Stats()
			if ms.Loads+ms.Stores == 0 {
				t.Fatal("app never accessed memory")
			}
		})
	}
}

func TestAppsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, name := range []string{"ypserv1", "gzip"} {
		app, _ := Get(name)
		run := func() (uint64, uint64) {
			e := newEnv(t)
			if err := e.M.Run(func() error { return app.Run(e, Config{Seed: 99}) }); err != nil {
				t.Fatal(err)
			}
			return uint64(e.M.Clock.Now()), e.M.Stats().Loads
		}
		c1, l1 := run()
		c2, l2 := run()
		if c1 != c2 || l1 != l2 {
			t.Fatalf("%s not deterministic: (%d,%d) vs (%d,%d)", name, c1, l1, c2, l2)
		}
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	app, _ := Get("proftpd")
	run := func(seed int64) uint64 {
		e := newEnv(t)
		if err := e.M.Run(func() error { return app.Run(e, Config{Seed: seed}) }); err != nil {
			t.Fatal(err)
		}
		return uint64(e.M.Clock.Now())
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	app, _ := Get("tar")
	run := func(scale int) uint64 {
		e := newEnv(t)
		if err := e.M.Run(func() error { return app.Run(e, Config{Seed: 3, Scale: scale}) }); err != nil {
			t.Fatal(err)
		}
		return uint64(e.M.Clock.Now())
	}
	c1, c2 := run(1), run(2)
	if c2 < c1*3/2 {
		t.Fatalf("scale 2 did not grow work: %d vs %d", c1, c2)
	}
}

func TestBuggyModeChangesBehaviourOnlyWhereExpected(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// gzip's buggy input only affects the final file: the overflow writes
	// past the trailer record. Without a tool attached nothing crashes
	// (the heap is mapped), but the run still completes.
	app, _ := Get("gzip")
	e := newEnv(t)
	if err := e.M.Run(func() error { return app.Run(e, Config{Seed: 5, Buggy: true}) }); err != nil {
		t.Fatalf("buggy gzip run crashed without a tool: %v", err)
	}
}

func TestLeakAppsLeakOnlyWhenBuggy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, app := range LeakApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			live := func(buggy bool) int {
				e := newEnv(t)
				if err := e.M.Run(func() error { return app.Run(e, Config{Seed: 11, Buggy: buggy}) }); err != nil {
					t.Fatal(err)
				}
				return e.Alloc.Live()
			}
			normal, buggy := live(false), live(true)
			if buggy <= normal {
				t.Errorf("buggy run did not leak: live %d (normal) vs %d (buggy)", normal, buggy)
			}
		})
	}
}

func TestChainSigMatchesRuntimeStack(t *testing.T) {
	e := newEnv(t)
	e.M.Call(1)
	e.M.Call(2)
	e.M.Call(3)
	if got := e.M.Stack.Signature(); got != chainSig(1, 2, 3) {
		t.Fatalf("chainSig mismatch: %#x vs %#x", got, chainSig(1, 2, 3))
	}
}

func TestHelpers(t *testing.T) {
	e := newEnv(t)
	p := mustMalloc(e, 64)
	storeBytes(e.M, p, []byte("hello"))
	if got := string(loadBytes(e.M, p, 5)); got != "hello" {
		t.Fatalf("loadBytes = %q", got)
	}
	sum1 := checksum(e.M, p, 16)
	e.M.Store8(p+3, 'X')
	if checksum(e.M, p, 16) == sum1 {
		t.Fatal("checksum insensitive to content")
	}
	if (Config{}).scale() != 1 || (Config{Scale: 3}).scale() != 3 {
		t.Fatal("Config.scale defaulting wrong")
	}
}

func TestEnvRootNilSafe(t *testing.T) {
	e := newEnv(t)
	e.Root(0x1234) // AddRoot is nil: must not panic
	called := false
	e.AddRoot = func(vm.VAddr) { called = true }
	e.Root(0x1234)
	if !called {
		t.Fatal("registrar not invoked")
	}
}
