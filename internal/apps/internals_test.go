package apps

import (
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// inflate decodes the gzip workload's LZ token stream (literal bytes, or
// 0x80|len dist16 pairs) — used to verify the compressor emits a stream
// that really reconstructs its input.
func inflate(tokens []byte) []byte {
	var out []byte
	for i := 0; i < len(tokens); {
		b := tokens[i]
		if b&0x80 == 0 {
			out = append(out, b)
			i++
			continue
		}
		length := int(b & 0x7f)
		if i+2 >= len(tokens) {
			break
		}
		dist := int(tokens[i+1]) | int(tokens[i+2])<<8
		i += 3
		for j := 0; j < length; j++ {
			out = append(out, out[len(out)-dist])
		}
	}
	return out
}

func TestGzipCompressionRoundTrip(t *testing.T) {
	// Run the gzip workload's deflate directly and verify the emitted
	// stream inflates back to the exact input — the compressor is a real
	// LZ77, not access noise.
	m := machine.MustNew(machine.Config{MemBytes: 16 << 20})
	alloc := heap.MustNew(m, heap.Options{Limit: 32 << 20})
	e := &Env{M: m, Alloc: alloc}
	s := &gzipState{e: e, m: m}
	s.input = mustMalloc(e, gzFileBytes)
	s.output = mustMalloc(e, gzFileBytes+gzFileBytes/8)
	s.heads = mustMalloc(e, (1<<gzWindowBits)*8)
	s.prevs = mustMalloc(e, gzFileBytes*8)

	// A deterministic, compressible input.
	phrase := []byte("lorem ipsum dolor sit amet consectetur ")
	for pos := 0; pos < gzFileBytes; pos++ {
		m.Store8(s.input+vm.VAddr(pos), phrase[pos%len(phrase)])
	}
	m.Memset(s.heads, 0xff, (1<<gzWindowBits)*8)

	outLen := s.deflate()
	if outLen >= gzFileBytes {
		t.Fatalf("compressor expanded periodic input: %d >= %d", outLen, gzFileBytes)
	}
	if outLen < 100 {
		t.Fatalf("suspiciously small output: %d", outLen)
	}
	tokens := loadBytes(m, s.output, int(outLen))
	got := inflate(tokens)
	if len(got) != gzFileBytes {
		t.Fatalf("inflate produced %d bytes, want %d", len(got), gzFileBytes)
	}
	for i := range got {
		if got[i] != phrase[i%len(phrase)] {
			t.Fatalf("round trip mismatch at byte %d: %q != %q", i, got[i], phrase[i%len(phrase)])
		}
	}
	ratio := float64(outLen) / gzFileBytes
	t.Logf("compressed %d -> %d bytes (ratio %.2f)", gzFileBytes, outLen, ratio)
	if ratio > 0.30 {
		t.Errorf("periodic text should compress below 30%%, got %.0f%%", ratio*100)
	}
}

func TestTarHeaderWellFormed(t *testing.T) {
	// Archive one member and verify the flushed header block: name,
	// octal fields and a checksum that recomputes correctly.
	m := machine.MustNew(machine.Config{MemBytes: 16 << 20})
	alloc := heap.MustNew(m, heap.Options{Limit: 32 << 20})
	e := &Env{M: m, Alloc: alloc}
	s := &tarState{e: e, m: m}
	s.source = mustMalloc(e, tarSourceBytes)
	s.archive = mustMalloc(e, tarArchiveSize)

	s.writeHeader("path/to/file.o", 4096)

	hdr := loadBytes(m, s.archive, tarHeaderSize)
	if string(hdr[:14]) != "path/to/file.o" {
		t.Fatalf("name field = %q", hdr[:20])
	}
	parseOctal := func(off, width int) uint64 {
		var v uint64
		for i := 0; i < width; i++ {
			c := hdr[off+i]
			if c < '0' || c > '7' {
				t.Fatalf("non-octal digit %q at %d", c, off+i)
			}
			v = v<<3 | uint64(c-'0')
		}
		return v
	}
	if got := parseOctal(100, 7); got != 0o644 {
		t.Errorf("mode = %#o", got)
	}
	if got := parseOctal(108, 7); got != 1000 {
		t.Errorf("uid = %d", got)
	}
	if got := parseOctal(124, 11); got != 4096 {
		t.Errorf("size = %d", got)
	}
	if got := parseOctal(136, 11); got != 1_700_000_000 {
		t.Errorf("mtime = %d", got)
	}
	// The checksum was computed while its own field still held NULs, so
	// the stored value must equal the sum of every header byte minus the
	// checksum field's own (later-written) contribution.
	var total, ckField uint64
	for i := 0; i < tarHeaderSize; i++ {
		total += uint64(hdr[i])
		if i >= 148 && i < 155 {
			ckField += uint64(hdr[i])
		}
	}
	stored := parseOctal(148, 7)
	if stored != total-ckField {
		t.Errorf("checksum %d != recomputed %d", stored, total-ckField)
	}
}

func TestNISHashDeterministicAndSpread(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 400; i++ {
		key := "user" + string([]byte{byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)})
		h := nisHash(key) % 256
		seen[h]++
	}
	if nisHash("abc") != nisHash("abc") {
		t.Fatal("hash not deterministic")
	}
	// No pathological clustering: no bucket holds more than 8 of 400 keys.
	for b, n := range seen {
		if n > 8 {
			t.Fatalf("bucket %d holds %d keys", b, n)
		}
	}
}

func TestSquidEvictionBoundsLifetimes(t *testing.T) {
	// Drive the squid engine directly and verify eviction keeps the live
	// object count bounded (lifetimes bounded → the leak detector can
	// learn a stable maximum).
	m := machine.MustNew(machine.Config{MemBytes: 32 << 20})
	alloc := heap.MustNew(m, heap.Options{Limit: 48 << 20})
	e := &Env{M: m, Alloc: alloc}
	app, _ := Get("squid1")
	if err := m.Run(func() error { return app.Run(e, Config{Seed: 9}) }); err != nil {
		t.Fatal(err)
	}
	live := alloc.Live()
	// Hot set (60) ×2 blocks + bounded cold residents + statics; far below
	// the ~460 objects fetched in total.
	if live > 350 {
		t.Fatalf("live objects at exit = %d; eviction is not bounding lifetimes", live)
	}
	if live < 50 {
		t.Fatalf("live objects at exit = %d; cache suspiciously empty", live)
	}
}
