package apps

import (
	"testing"
)

// TestWorkloadProfiles locks in the per-app characteristics that drive the
// Table 3 shape: which workloads are access-dominated (Purify's worst
// case), which are allocation-light (SafeMem's best case), and which are
// compute-heavy (everyone's mildest case). A change that silently shifts an
// app out of its profile would invalidate the reproduction, so the ratios
// are asserted here.
func TestWorkloadProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full app runs are slow")
	}
	type profile struct {
		accesses uint64
		allocs   uint64
		cycles   uint64
	}
	profiles := map[string]profile{}
	for _, app := range All() {
		e := newEnv(t)
		if err := e.M.Run(func() error { return app.Run(e, Config{Seed: 42}) }); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		ms := e.M.Stats()
		profiles[app.Name] = profile{
			accesses: ms.Loads + ms.Stores,
			allocs:   e.Alloc.Stats().Mallocs,
			cycles:   uint64(e.M.Clock.Now()),
		}
	}

	accessesPerAlloc := func(name string) float64 {
		p := profiles[name]
		return float64(p.accesses) / float64(p.allocs)
	}
	accessDensity := func(name string) float64 { // accesses per 1k cycles
		p := profiles[name]
		return 1000 * float64(p.accesses) / float64(p.cycles)
	}

	// The utilities are allocation-light by orders of magnitude: gzip and
	// tar do >10k accesses per allocation, the servers far fewer.
	for _, util := range []string{"gzip", "tar"} {
		if accessesPerAlloc(util) < 10_000 {
			t.Errorf("%s: %0.f accesses/alloc — lost its utility profile", util, accessesPerAlloc(util))
		}
	}
	for _, server := range []string{"ypserv1", "squid1", "squid2"} {
		if accessesPerAlloc(server) > 40_000 {
			t.Errorf("%s: %0.f accesses/alloc — servers should allocate more", server, accessesPerAlloc(server))
		}
	}

	// gzip is the most access-dense program (highest Purify slowdown);
	// squid2 the least dense of the servers (lowest Purify slowdown).
	for name := range profiles {
		if name == "gzip" {
			continue
		}
		if accessDensity(name) >= accessDensity("gzip") {
			t.Errorf("%s access density %.1f ≥ gzip's %.1f", name, accessDensity(name), accessDensity("gzip"))
		}
	}
	if accessDensity("squid2") >= accessDensity("ypserv1") {
		t.Errorf("squid2 density %.1f should be below ypserv1's %.1f",
			accessDensity("squid2"), accessDensity("ypserv1"))
	}

	// Every app does real work: at least tens of millions of cycles.
	for name, p := range profiles {
		if p.cycles < 4_000_000 {
			t.Errorf("%s: only %d cycles of work", name, p.cycles)
		}
		if p.allocs < 10 {
			t.Errorf("%s: only %d allocations", name, p.allocs)
		}
	}
}
