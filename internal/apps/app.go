// Package apps contains the seven workload programs used to evaluate
// SafeMem (Table 1): ypserv ×2, proftpd, squid ×2, gzip and tar. Each is a
// deterministic simulated program, written against the machine/heap API,
// that mirrors its namesake's allocation-rate, access-rate and heap-size
// profile and contains the same *class* of bug in a gated code path:
//
//	ypserv1  — NIS server with an always-leak (ALeak)
//	proftpd  — FTP server with a sometimes-leak (SLeak)
//	squid1   — web proxy cache with a sometimes-leak (SLeak)
//	ypserv2  — NIS server with a sometimes-leak (SLeak)
//	gzip     — compression utility with a heap buffer overflow
//	tar      — archiver with a header-field overflow
//	squid2   — web proxy cache with a freed-memory access
//
// With Buggy=false the bug path never executes (the paper's "normal
// inputs", used for overhead measurement); with Buggy=true the workload
// includes the triggering inputs.
package apps

import (
	"fmt"

	"safemem/internal/callstack"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// Env is the execution environment handed to an application: the machine
// it runs on, the heap it allocates from, and an optional root registrar
// (used by Purify's conservative leak scanner; nil otherwise).
type Env struct {
	M     *machine.Machine
	Alloc *heap.Allocator
	// AddRoot registers a simulated-memory word as a GC root for
	// conservative scanners. May be nil.
	AddRoot func(vm.VAddr)
}

// Root registers va as a scanner root if a registrar is attached.
func (e *Env) Root(va vm.VAddr) {
	if e.AddRoot != nil {
		e.AddRoot(va)
	}
}

// Config parameterises a run.
type Config struct {
	// Scale multiplies the app's default workload size. Zero means 1.
	Scale int
	// Buggy enables the bug-triggering inputs.
	Buggy bool
	// Seed drives the deterministic workload generator.
	Seed int64
}

func (c Config) scale() int {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// BugClass is the class of bug an application carries.
type BugClass int

const (
	// ClassALeak is an always-leak (Section 3.1).
	ClassALeak BugClass = iota
	// ClassSLeak is a sometimes-leak.
	ClassSLeak
	// ClassOverflow is a heap buffer overflow.
	ClassOverflow
	// ClassFreedAccess is a read/write of freed memory.
	ClassFreedAccess
)

// String names the class.
func (c BugClass) String() string {
	switch c {
	case ClassALeak:
		return "ALeak"
	case ClassSLeak:
		return "SLeak"
	case ClassOverflow:
		return "overflow"
	case ClassFreedAccess:
		return "freed-access"
	default:
		return fmt.Sprintf("BugClass(%d)", int(c))
	}
}

// IsLeak reports whether the class is a leak class.
func (c BugClass) IsLeak() bool { return c == ClassALeak || c == ClassSLeak }

// App describes one workload program.
type App struct {
	// Name matches the paper's Table 1 label.
	Name string
	// Description is the paper's one-line characterisation.
	Description string
	// PaperLOC is the line count reported in Table 1 (for documentation).
	PaperLOC int
	// Class is the class of the app's bug.
	Class BugClass
	// IsRealLeak is the ground truth for leak apps: it reports whether a
	// leak report with the given allocation-site signature and object size
	// corresponds to the app's real bug. The experiment harness uses it to
	// classify SafeMem's reports as true or false positives (Table 5).
	// Nil for corruption apps.
	IsRealLeak func(site, size uint64) bool
	// Run executes the workload.
	Run func(e *Env, cfg Config) error
}

// registry holds all applications in the paper's Table 1 order.
var registry = []*App{ypserv1App, proftpdApp, squid1App, ypserv2App, gzipApp, tarApp, squid2App}

// All returns all applications in Table 1 order.
func All() []*App { return registry }

// LeakApps returns the four leak-bug applications (Tables 3 and 5).
func LeakApps() []*App {
	var out []*App
	for _, a := range registry {
		if a.Class.IsLeak() {
			out = append(out, a)
		}
	}
	return out
}

// Get returns the application with the given name.
func Get(name string) (*App, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// chainSig computes the call-stack signature of a call chain, used to
// declare ground-truth leak sites that match what the running program's
// stack produces.
func chainSig(chain ...uint64) uint64 {
	var s callstack.Stack
	for _, r := range chain {
		s.Push(r)
	}
	return s.Signature()
}

// enter pushes a call frame and returns the matching pop, for
// `defer enter(m, site)()` bracketing.
func enter(m *machine.Machine, site uint64) func() {
	m.Call(site)
	return m.Return
}

// mustMalloc allocates or aborts the simulated program (out-of-memory is a
// workload-sizing bug, not an interesting failure).
func mustMalloc(e *Env, size uint64) vm.VAddr {
	p, err := e.Alloc.Malloc(size)
	if err != nil {
		machine.Abort("workload out of memory: %v", err)
	}
	return p
}

// storeBytes writes b into simulated memory at va — a batched run of byte
// stores, the strcpy idiom shared by every app.
func storeBytes(m *machine.Machine, va vm.VAddr, b []byte) {
	m.StoreByteRun(va, b)
}

// loadBytes reads n bytes of simulated memory at va.
func loadBytes(m *machine.Machine, va vm.VAddr, n int) []byte {
	out := make([]byte, n)
	m.LoadByteRun(va, out)
	return out
}

// checksum folds n bytes at va — the generic "the program actually reads
// the data it sends" access pattern. The loads stream through the batched
// fast lane in line-sized chunks; the access sequence (8-byte words while
// at least 8 bytes remain, then byte loads for the tail) is identical to
// the historical open-coded loop.
func checksum(m *machine.Machine, va vm.VAddr, n uint64) uint64 {
	var buf [64]uint64
	var sum uint64
	i := uint64(0)
	for i+8 <= n {
		words := (n - i) / 8
		if words > uint64(len(buf)) {
			words = uint64(len(buf))
		}
		m.LoadRun(va+vm.VAddr(i), 8, 8, buf[:words])
		for _, w := range buf[:words] {
			sum = sum*31 + w
		}
		i += words * 8
	}
	if i < n {
		var tail [7]byte
		m.LoadByteRun(va+vm.VAddr(i), tail[:n-i])
		for _, b := range tail[:n-i] {
			sum = sum*31 + uint64(b)
		}
	}
	return sum
}

// scanWords streams n contiguous 8-byte words at va through batched loads,
// discarding the values — the resident-table scan idiom (DES tables, TLS
// record processing, ACL checks).
func scanWords(m *machine.Machine, va vm.VAddr, n uint64) {
	var buf [64]uint64
	for n > 0 {
		k := n
		if k > uint64(len(buf)) {
			k = uint64(len(buf))
		}
		m.LoadRun(va, 8, 8, buf[:k])
		va += vm.VAddr(k * 8)
		n -= k
	}
}

// fillWords writes n contiguous 8-byte words at va with f(word index),
// batched — the table-init / stream-fill idiom.
func fillWords(m *machine.Machine, va vm.VAddr, n uint64, f func(i uint64) uint64) {
	var buf [64]uint64
	for i := uint64(0); i < n; {
		k := n - i
		if k > uint64(len(buf)) {
			k = uint64(len(buf))
		}
		for j := uint64(0); j < k; j++ {
			buf[j] = f(i + j)
		}
		m.StoreRun(va+vm.VAddr(i*8), 8, 8, buf[:k])
		i += k
	}
}
