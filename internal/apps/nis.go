// The NIS (ypserv) workload: a network-information-service daemon serving
// map lookups. Two variants, like the paper's two buggy ypserv versions:
//
//	ypserv1 — an always-leak: the YPPROC_ALL handler allocates an
//	          iteration cursor and no code path ever frees it.
//	ypserv2 — a sometimes-leak: the transaction-record teardown is skipped
//	          on the unknown-key error path only.
//
// The server's legitimate behaviour deliberately includes the patterns that
// make naive leak detection hard: a result cache that grows for the whole
// run but whose entries are read on every lookup (seven size classes — the
// source of ypserv1's pruned false positives), and batched writes held for
// a variable number of requests (ypserv2's).
package apps

import (
	"fmt"
	"math/rand"

	"safemem/internal/machine"
	"safemem/internal/vm"
)

// Fake return addresses for the simulated call stacks.
const (
	nisSiteMain      = 0x401000
	nisSiteInit      = 0x401040
	nisSiteLoop      = 0x401080
	nisSiteRequest   = 0x4010c0
	nisSiteMatch     = 0x401100
	nisSiteAll       = 0x401140 // ypserv1's leaking handler
	nisSiteTxn       = 0x401180 // ypserv2's sometimes-leaked record
	nisSiteCache     = 0x4011c0 // growing-but-used result cache
	nisSiteHeld      = 0x401200 // batched writes held across requests
	nisSiteAuthCache = 0x401240 // second held group
)

var ypserv1App = &App{
	Name:        "ypserv1",
	Description: "a NIS server",
	PaperLOC:    11200,
	Class:       ClassALeak,
	IsRealLeak: func(site, size uint64) bool {
		return site == chainSig(nisSiteMain, nisSiteLoop, nisSiteRequest, nisSiteAll)
	},
	Run: func(e *Env, cfg Config) error { return runNIS(e, cfg, 1) },
}

var ypserv2App = &App{
	Name:        "ypserv2",
	Description: "a NIS server",
	PaperLOC:    9700,
	Class:       ClassSLeak,
	IsRealLeak: func(site, size uint64) bool {
		return site == chainSig(nisSiteMain, nisSiteLoop, nisSiteRequest, nisSiteMatch, nisSiteTxn)
	},
	Run: func(e *Env, cfg Config) error { return runNIS(e, cfg, 2) },
}

// nisState is the server's in-(simulated-)memory state.
type nisState struct {
	e   *Env
	m   *machine.Machine
	rng *rand.Rand

	buckets  vm.VAddr // bucket pointer array
	nbuckets uint64
	desTable vm.VAddr // 32 KiB scrambling table, resident in cache
	reqBuf   vm.VAddr // static request buffer
	respBuf  vm.VAddr // static response buffer

	// Result cache: singly linked, insert at tail, scan from head so the
	// oldest entries are the hottest (they are also the leak suspects).
	cacheHead vm.VAddr // root cell holding head pointer
	cacheTail vm.VAddr // root cell holding tail pointer

	// held tracks batched-write buffers: alloc now, touch-and-free later.
	held map[int][]vm.VAddr // release request index -> buffers
}

const (
	nisDesTableBytes = 32 << 10
	nisEntryValueLen = 40
	nisRequests      = 1200
)

func runNIS(e *Env, cfg Config, variant int) error {
	m := e.M
	defer enter(m, nisSiteMain)()

	s := &nisState{
		e:    e,
		m:    m,
		rng:  rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9)),
		held: make(map[int][]vm.VAddr),
	}
	s.initServer()

	requests := nisRequests * cfg.scale()
	func() {
		defer enter(m, nisSiteLoop)()
		for i := 0; i < requests; i++ {
			s.handleRequest(i, cfg.Buggy, variant)
		}
	}()
	return nil
}

// initServer builds the NIS map (400 entries over 256 buckets), the DES
// table and the static I/O buffers.
func (s *nisState) initServer() {
	m := s.m
	defer enter(m, nisSiteInit)()

	s.nbuckets = 256
	s.buckets = mustMalloc(s.e, s.nbuckets*8)
	s.e.Root(s.buckets)
	m.Memset(s.buckets, 0, s.nbuckets*8)

	s.desTable = mustMalloc(s.e, nisDesTableBytes)
	s.e.Root(s.desTable)
	fillWords(m, s.desTable, nisDesTableBytes/8, func(i uint64) uint64 {
		return i * 8 * 0x9e3779b97f4a7c15
	})

	s.reqBuf = mustMalloc(s.e, 256)
	s.respBuf = mustMalloc(s.e, 512)
	s.e.Root(s.reqBuf)
	s.e.Root(s.respBuf)
	m.Memset(s.reqBuf, 0, 256)
	m.Memset(s.respBuf, 0, 512)

	s.cacheHead = mustMalloc(s.e, 8)
	s.cacheTail = mustMalloc(s.e, 8)
	s.e.Root(s.cacheHead)
	s.e.Root(s.cacheTail)
	m.Store64(s.cacheHead, 0)
	m.Store64(s.cacheTail, 0)

	// Populate the map: entry layout [next][klen][vlen][key...][value...].
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("user%04d", i)
		vlen := uint64(nisEntryValueLen + (i%4)*16)
		entry := mustMalloc(s.e, 24+uint64(len(key))+vlen)
		h := nisHash(key) % s.nbuckets
		slot := s.buckets + vm.VAddr(h*8)
		m.Store64(entry, m.Load64(slot)) // next = old head
		m.Store64(entry+8, uint64(len(key)))
		m.Store64(entry+16, vlen)
		storeBytes(m, entry+24, []byte(key))
		for off := uint64(0); off < vlen; off++ {
			m.Store8(entry+24+vm.VAddr(len(key))+vm.VAddr(off), byte('A'+off%26))
		}
		m.Store64(slot, uint64(entry))
	}
}

func nisHash(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

// handleRequest services one RPC.
func (s *nisState) handleRequest(i int, buggy bool, variant int) {
	m := s.m
	defer enter(m, nisSiteRequest)()

	// Flush batched writes that are due, whatever the request type.
	s.releaseHeld(i)

	// ypserv1's buggy input mix includes YPPROC_ALL requests.
	if variant == 1 && buggy && i%6 == 5 {
		s.handleAll(i)
		return
	}

	// Parse the request into the static buffer.
	known := true
	// Unknown-key probes are aligned with transaction-record requests
	// (i ≡ 44 mod 60 implies i ≡ 4 mod 20) so the error path always holds
	// a live transaction record to forget.
	if variant == 2 && buggy && i%60 == 44 {
		known = false // ypserv2's buggy inputs probe unknown keys
	}
	var key string
	if known {
		key = fmt.Sprintf("user%04d", s.rng.Intn(400))
	} else {
		key = fmt.Sprintf("ghost%03d", s.rng.Intn(1000))
	}
	storeBytes(m, s.reqBuf, []byte("MATCH passwd.byname "))
	storeBytes(m, s.reqBuf+20, []byte(key))
	_ = loadBytes(m, s.reqBuf, 20+len(key))

	s.handleMatch(i, key)

	// Result-cache maintenance: lookup on every request, insert on every
	// fourth. The cache grows for the entire run but stays in active use:
	// ordinary lookups read the oldest entries, and every eighth request a
	// full statistics sweep touches every entry.
	if i%8 == 5 {
		s.cacheSweep()
	} else {
		s.cacheLookup()
	}
	if i%4 == 3 {
		s.cacheInsert(i)
	}

	// Batched writes: ypserv defers map updates; buffers are held across
	// requests and occasionally much longer than usual.
	if i%25 == 7 {
		s.holdBuffer(i, nisSiteHeld, 96)
	}
	if i%40 == 11 {
		s.holdBuffer(i, nisSiteAuthCache, 160)
	}
}

// handleMatch performs the lookup and builds the response.
func (s *nisState) handleMatch(i int, key string) {
	m := s.m
	defer enter(m, nisSiteMatch)()

	// The per-request transaction record (audit trail).
	var txn vm.VAddr
	func() {
		defer enter(m, nisSiteTxn)()
		if i%20 == 4 {
			txn = mustMalloc(s.e, 192)
			storeBytes(m, txn, []byte(key))
			m.Store64(txn+128, uint64(i))
		}
	}()

	// Hash and walk the bucket chain.
	h := nisHash(key) % s.nbuckets
	m.Compute(60)
	entry := vm.VAddr(m.Load64(s.buckets + vm.VAddr(h*8)))
	var value []byte
	for entry != 0 {
		klen := m.Load64(entry + 8)
		vlen := m.Load64(entry + 16)
		ek := loadBytes(m, entry+24, int(klen))
		if string(ek) == key {
			value = loadBytes(m, entry+24+vm.VAddr(klen), int(vlen))
			break
		}
		entry = vm.VAddr(m.Load64(entry))
	}

	if value == nil {
		// Unknown key: the error path. ypserv2's bug lives here — the
		// transaction record is never freed on this path.
		storeBytes(m, s.respBuf, []byte("ERR nokey"))
		_ = checksum(m, s.respBuf, 16)
		s.desWork()
		return
	}

	// Build and "send" the response.
	storeBytes(m, s.respBuf, []byte("OK "))
	storeBytes(m, s.respBuf+3, value)
	_ = checksum(m, s.respBuf, uint64(3+len(value)))
	s.desWork()

	if txn != 0 {
		_ = checksum(m, txn, 64)
		if err := s.e.Alloc.Free(txn); err != nil {
			machine.Abort("ypserv: free txn: %v", err)
		}
	}
}

// handleAll is ypserv1's YPPROC_ALL handler: it allocates an iteration
// cursor that no path frees — the always-leak.
func (s *nisState) handleAll(i int) {
	m := s.m
	defer enter(m, nisSiteAll)()
	cursor := mustMalloc(s.e, 48)
	m.Store64(cursor, uint64(i))
	m.Store64(cursor+8, uint64(s.buckets))
	// Enumerate a slice of the map through the cursor... and then the
	// handler returns without free(cursor). The cursor is never referenced
	// again: a textbook ALeak.
	entry := vm.VAddr(m.Load64(s.buckets + vm.VAddr(uint64(i%256)*8)))
	n := 0
	for entry != 0 && n < 4 {
		_ = m.Load64(entry + 8)
		entry = vm.VAddr(m.Load64(entry))
		n++
	}
	s.desWork()
}

// desWork models the per-request crypto/marshalling load: a pass over the
// resident DES table plus ALU work.
func (s *nisState) desWork() {
	m := s.m
	scanWords(m, s.desTable, nisDesTableBytes/8)
	m.Compute(52000)
}

// cacheLookup reads the oldest 24 cache entries (layout: [next][size][data]).
// Reading from the head keeps the oldest entries — the ones old enough to
// draw leak suspicion — demonstrably live.
func (s *nisState) cacheLookup() {
	m := s.m
	p := vm.VAddr(m.Load64(s.cacheHead))
	for n := 0; p != 0 && n < 24; n++ {
		size := m.Load64(p + 8)
		if size > 16 {
			_ = m.Load64(p + 16)
		}
		p = vm.VAddr(m.Load64(p))
	}
}

// cacheInsert appends one entry; seven size classes → seven memory-object
// groups that grow for the whole run (ypserv1's false-positive fodder).
func (s *nisState) cacheInsert(i int) {
	m := s.m
	defer enter(m, nisSiteCache)()
	size := uint64(32 + (i/4%7)*16)
	entry := mustMalloc(s.e, size)
	m.Store64(entry, 0)
	m.Store64(entry+8, size)
	m.Store64(entry+16, uint64(i))
	tail := vm.VAddr(m.Load64(s.cacheTail))
	if tail == 0 {
		m.Store64(s.cacheHead, uint64(entry))
	} else {
		m.Store64(tail, uint64(entry))
	}
	m.Store64(s.cacheTail, uint64(entry))
}

// cacheSweep walks the entire result cache (hit-ratio accounting), reading
// every entry.
func (s *nisState) cacheSweep() {
	m := s.m
	p := vm.VAddr(m.Load64(s.cacheHead))
	for p != 0 {
		_ = m.Load64(p + 8)
		p = vm.VAddr(m.Load64(p))
	}
}

// holdBuffer allocates a batched-write buffer released after a delay —
// usually 20 requests, occasionally 10×, which makes the old ones lifetime
// outliers until the access at release time exonerates them.
func (s *nisState) holdBuffer(i int, site uint64, size uint64) {
	m := s.m
	defer enter(m, site)()
	buf := mustMalloc(s.e, size)
	m.Store64(buf, uint64(i))
	delay := 20
	if s.rng.Intn(12) == 0 {
		delay = 200
	}
	s.held[i+delay] = append(s.held[i+delay], buf)
}

// releaseHeld flushes batched buffers due at request i: each is read (the
// deferred write happens) and freed.
func (s *nisState) releaseHeld(i int) {
	m := s.m
	for _, buf := range s.held[i] {
		_ = checksum(m, buf, 32)
		if err := s.e.Alloc.Free(buf); err != nil {
			machine.Abort("ypserv: release held: %v", err)
		}
	}
	delete(s.held, i)
}
