// The proftpd workload: an FTP daemon multiplexing interleaved client
// sessions. Its sometimes-leak is the classic aborted-transfer path: when a
// client drops the connection mid-RETR, the transfer buffer teardown is
// skipped.
//
// Legitimate behaviour that stresses the leak detector: per-session rename
// journals held for a variable number of commands (nine size classes whose
// occasional stragglers are the paper-style pruned false positives), and
// session control blocks with widely varying session lengths.
package apps

import (
	"math/rand"

	"safemem/internal/machine"
	"safemem/internal/vm"
)

const (
	ftpSiteMain    = 0x402000
	ftpSiteInit    = 0x402040
	ftpSiteSession = 0x402080
	ftpSiteCommand = 0x4020c0
	ftpSiteRetr    = 0x402100 // the sometimes-leaking transfer buffer
	ftpSiteList    = 0x402140
	ftpSiteJournal = 0x402180
)

var proftpdApp = &App{
	Name:        "proftpd",
	Description: "a ftp server",
	PaperLOC:    68700,
	Class:       ClassSLeak,
	IsRealLeak: func(site, size uint64) bool {
		return site == chainSig(ftpSiteMain, ftpSiteSession, ftpSiteCommand, ftpSiteRetr) &&
			size == 512+ftpLeakClass*128
	},
	Run: runFTP,
}

const (
	ftpTicks        = 1100
	ftpSessions     = 8
	ftpDirEntries   = 96
	ftpXferClasses  = 6
	ftpLeakClass    = 3 // the class the aborted transfers hit
	ftpJournalKinds = 9

	// ftpTLSTableBytes is the TLS table walked on every command; it stays
	// resident in the 256 KiB cache.
	ftpTLSTableBytes = 40 << 10
)

type ftpSession struct {
	control   vm.VAddr // session control block
	remaining int      // commands until QUIT
	cmds      int
}

type ftpState struct {
	e   *Env
	m   *machine.Machine
	rng *rand.Rand

	dirTable vm.VAddr // [name 24B][size 8][mtime 8] × entries
	tlsTable vm.VAddr // TLS sbox/session tables scanned per command
	sessions [ftpSessions]*ftpSession
	journals map[int][]vm.VAddr // release tick -> buffers
}

func runFTP(e *Env, cfg Config) error {
	m := e.M
	defer enter(m, ftpSiteMain)()
	s := &ftpState{
		e:        e,
		m:        m,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x51ed2701)),
		journals: make(map[int][]vm.VAddr),
	}
	s.initServer()

	ticks := ftpTicks * cfg.scale()
	for tick := 0; tick < ticks; tick++ {
		slot := tick % ftpSessions
		if s.sessions[slot] == nil {
			s.sessions[slot] = s.openSession()
		}
		sess := s.sessions[slot]
		s.command(sess, tick, cfg.Buggy)
		s.releaseJournals(tick)
		sess.cmds++
		sess.remaining--
		if sess.remaining <= 0 {
			s.closeSession(sess)
			s.sessions[slot] = nil
		}
	}
	// Drain: close remaining sessions and flush journals.
	for i, sess := range s.sessions {
		if sess != nil {
			s.closeSession(sess)
			s.sessions[i] = nil
		}
	}
	for tick := range s.journals {
		s.releaseJournals(tick)
	}
	return nil
}

func (s *ftpState) initServer() {
	m := s.m
	defer enter(m, ftpSiteInit)()
	s.dirTable = mustMalloc(s.e, ftpDirEntries*40)
	s.e.Root(s.dirTable)
	s.tlsTable = mustMalloc(s.e, ftpTLSTableBytes)
	s.e.Root(s.tlsTable)
	fillWords(m, s.tlsTable, ftpTLSTableBytes/8, func(i uint64) uint64 {
		return i * 8 * 0x9e3779b97f4a7c15
	})
	for i := 0; i < ftpDirEntries; i++ {
		rec := s.dirTable + vm.VAddr(i*40)
		storeBytes(m, rec, []byte("file"))
		m.Store64(rec+24, uint64(1024+i*512))
		m.Store64(rec+32, uint64(1_000_000+i))
	}
}

// openSession allocates the session control block. Most sessions run 24–56
// commands; one in ten is a marathon.
func (s *ftpState) openSession() *ftpSession {
	m := s.m
	defer enter(m, ftpSiteSession)()
	sess := &ftpSession{control: mustMalloc(s.e, 224)}
	m.Memset(sess.control, 0, 224)
	sess.remaining = 24 + s.rng.Intn(32)
	if s.rng.Intn(10) == 0 {
		sess.remaining = 240
	}
	return sess
}

func (s *ftpState) closeSession(sess *ftpSession) {
	m := s.m
	_ = checksum(m, sess.control, 64) // write session log
	if err := s.e.Alloc.Free(sess.control); err != nil {
		machine.Abort("proftpd: close session: %v", err)
	}
}

// command executes one FTP command for the session.
func (s *ftpState) command(sess *ftpSession, tick int, buggy bool) {
	m := s.m
	m.Call(ftpSiteSession)
	defer m.Return()
	defer enter(m, ftpSiteCommand)()

	// Touch the control block (last-activity bookkeeping) — this is what
	// exonerates long sessions from leak suspicion.
	m.Store64(sess.control+8, uint64(tick))

	// Authentication / command parsing load, plus the TLS record
	// processing every control/data exchange pays.
	m.Compute(55000)
	scanWords(m, s.tlsTable, ftpTLSTableBytes/8)

	switch {
	case tick%6 == 0 || tick%6 == 3:
		s.list()
	case tick%6 == 1:
		s.retr(sess, tick, buggy)
	case tick%12 == 2:
		s.journal(tick)
	default:
		m.Compute(4000) // CWD/NOOP
	}
}

// list scans the directory table and formats entries.
func (s *ftpState) list() {
	m := s.m
	defer enter(m, ftpSiteList)()
	for i := 0; i < ftpDirEntries; i++ {
		rec := s.dirTable + vm.VAddr(i*40)
		_ = m.Load64(rec + 24)
		_ = m.Load64(rec + 32)
		_ = m.Load8(rec)
	}
	m.Compute(2500)
}

// retr transfers a file through a freshly allocated buffer. With buggy
// inputs, a fraction of class-3 transfers are aborted by the client and the
// buffer teardown is skipped — the sometimes-leak.
func (s *ftpState) retr(sess *ftpSession, tick int, buggy bool) {
	m := s.m
	defer enter(m, ftpSiteRetr)()
	class := s.rng.Intn(ftpXferClasses)
	size := uint64(512 + class*128)
	buf := mustMalloc(s.e, size)
	// Fill from the "disk" and send.
	fillWords(m, buf, (size+7)/8, func(i uint64) uint64 {
		return uint64(tick)*0x9e3779b97f4a7c15 + i*8
	})
	_ = checksum(m, buf, size)

	if buggy && class == ftpLeakClass && s.rng.Intn(8) == 0 {
		// Client aborted mid-transfer: error path returns without free.
		return
	}
	if err := s.e.Alloc.Free(buf); err != nil {
		machine.Abort("proftpd: free xfer: %v", err)
	}
}

// journal allocates a rename-journal record held for a variable number of
// ticks — usually 12, occasionally 10× longer. Nine size classes.
func (s *ftpState) journal(tick int) {
	m := s.m
	defer enter(m, ftpSiteJournal)()
	size := uint64(64 + (tick/12%ftpJournalKinds)*32)
	buf := mustMalloc(s.e, size)
	m.Store64(buf, uint64(tick))
	delay := 12
	if s.rng.Intn(8) == 0 {
		delay = 130
	}
	s.journals[tick+delay] = append(s.journals[tick+delay], buf)
}

func (s *ftpState) releaseJournals(tick int) {
	m := s.m
	for _, buf := range s.journals[tick] {
		_ = checksum(m, buf, 48) // apply the deferred rename
		if err := s.e.Alloc.Free(buf); err != nil {
			machine.Abort("proftpd: release journal: %v", err)
		}
	}
	delete(s.journals, tick)
}
