// The tar workload: an archiver streaming files into an archive buffer.
// Like gzip it is utility-shaped — a long byte/word copy loop with a
// handful of small allocations per file — but with a higher
// metadata-to-data ratio (one 512-byte header block per member).
//
// The bug is the classic tar header overflow: the name field is 100 bytes,
// and a member path longer than that (Buggy=true) is copied into the
// header without a bounds check, running past the end of the 512-byte
// header block.
package apps

import (
	"fmt"
	"math/rand"

	"safemem/internal/machine"
	"safemem/internal/vm"
)

const (
	tarSiteMain   = 0x405000
	tarSiteInit   = 0x405040
	tarSiteMember = 0x405080
	tarSiteHeader = 0x4050c0 // the overflowed header block
	tarSiteCopy   = 0x405100
)

var tarApp = &App{
	Name:        "tar",
	Description: "an archiving utility",
	PaperLOC:    34000,
	Class:       ClassOverflow,
	Run:         runTar,
}

const (
	tarFiles       = 20
	tarSourceBytes = 128 << 10
	tarArchiveSize = 128 << 10
	tarHeaderSize  = 512
	tarNameField   = 100
)

type tarState struct {
	e   *Env
	m   *machine.Machine
	rng *rand.Rand

	source  vm.VAddr // staged file contents
	archive vm.VAddr // output archive buffer
	arcOff  uint64
}

func runTar(e *Env, cfg Config) error {
	m := e.M
	defer enter(m, tarSiteMain)()
	s := &tarState{e: e, m: m, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x757374))}

	func() {
		defer enter(m, tarSiteInit)()
		s.source = mustMalloc(e, tarSourceBytes)
		s.archive = mustMalloc(e, tarArchiveSize)
		e.Root(s.source)
		e.Root(s.archive)
		// Stage the source data once, in batched word runs.
		var buf [64]uint64
		for off := uint64(0); off < tarSourceBytes; {
			k := uint64(len(buf))
			if rem := (tarSourceBytes - off) / 8; rem < k {
				k = rem
			}
			for i := uint64(0); i < k; i++ {
				buf[i] = (off + i*8) * 0x100000001b3
			}
			m.StoreRun(s.source+vm.VAddr(off), 8, 8, buf[:k])
			off += k * 8
		}
	}()

	files := tarFiles * cfg.scale()
	for f := 0; f < files; f++ {
		s.addMember(f, cfg.Buggy && f == files-1)
	}
	return nil
}

// addMember archives one file: build its header, then copy its data.
func (s *tarState) addMember(f int, buggy bool) {
	m := s.m
	defer enter(m, tarSiteMember)()

	name := fmt.Sprintf("src/pkg/module%02d/object_file_%04d.o", f%7, f)
	if buggy {
		// The over-long member path of the crafted archive: long enough to
		// run past the end of the 512-byte header block itself.
		long := make([]byte, 0, 560)
		for len(long) < 560 {
			long = append(long, []byte("deeply/nested/path/")...)
		}
		name = string(long[:560])
	}
	size := uint64(232<<10 + s.rng.Intn(5)*8<<10)
	s.writeHeader(name, size)
	s.copyData(size)
}

// writeHeader fills a freshly allocated 512-byte header block: name field,
// numeric fields in octal, and the field checksum — then flushes it into
// the archive and frees it. The name copy has no bounds check.
func (s *tarState) writeHeader(name string, size uint64) {
	m := s.m
	defer enter(m, tarSiteHeader)()

	hdr := mustMalloc(s.e, tarHeaderSize)
	m.Memset(hdr, 0, tarHeaderSize)
	// strcpy(hdr->name, name): past 100 bytes this silently tramples the
	// mode/uid/gid fields, and past 512 the block itself (Buggy inputs).
	storeBytes(m, hdr, []byte(name))
	writeOctal := func(off uint64, width int, v uint64) {
		for i := 0; i < width; i++ {
			m.Store8(hdr+vm.VAddr(off+uint64(width-1-i)), byte('0'+v&7))
			v >>= 3
		}
	}
	writeOctal(100, 7, 0o644)          // mode
	writeOctal(108, 7, 1000)           // uid
	writeOctal(116, 7, 1000)           // gid
	writeOctal(124, 11, size)          // size
	writeOctal(136, 11, 1_700_000_000) // mtime

	// Header checksum over all 512 bytes, read as one batched byte run.
	var hb [tarHeaderSize]byte
	m.LoadByteRun(hdr, hb[:])
	var sum uint64
	for _, b := range hb {
		sum += uint64(b)
	}
	writeOctal(148, 7, sum)

	// Flush into the archive.
	if s.arcOff+tarHeaderSize > tarArchiveSize {
		s.arcOff = 0
	}
	m.Memcpy(s.archive+vm.VAddr(s.arcOff), hdr, tarHeaderSize)
	s.arcOff += tarHeaderSize

	if err := s.e.Alloc.Free(hdr); err != nil {
		machine.Abort("tar: free header: %v", err)
	}
}

// copyData streams size bytes of member data into the archive, 512-byte
// block at a time, padding the final block — the access-dominated bulk of
// tar's work.
func (s *tarState) copyData(size uint64) {
	m := s.m
	defer enter(m, tarSiteCopy)()
	srcOff := uint64(s.rng.Intn(4)) * 8 << 10 // wraps over the staged source
	for copied := uint64(0); copied < size; copied += tarHeaderSize {
		if s.arcOff+tarHeaderSize > tarArchiveSize {
			s.arcOff = 0
		}
		n := size - copied
		if n > tarHeaderSize {
			n = tarHeaderSize
		}
		src := s.source + vm.VAddr((srcOff+copied)%(tarSourceBytes-tarHeaderSize))
		m.Memcpy(s.archive+vm.VAddr(s.arcOff), src, n&^7)
		if n < tarHeaderSize {
			m.Memset(s.archive+vm.VAddr(s.arcOff)+vm.VAddr(n&^7), 0, tarHeaderSize-n&^7)
		}
		s.arcOff += tarHeaderSize
	}
	m.Compute(9000)
}
