package apps

import (
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
)

// benchApp runs one uninstrumented app per iteration and reports host
// nanoseconds per simulated instruction — the per-app view of the
// throughput experiment, convenient for profiling a single workload
// (go test -bench App/gzip -cpuprofile ...).
func benchApp(b *testing.B, name string) {
	app, ok := Get(name)
	if !ok {
		b.Fatalf("unknown app %s", name)
	}
	m := machine.MustNew(machine.DefaultConfig())
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.Recycle()
		alloc, err := heap.New(m, heap.Options{Limit: 48 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		e := &Env{M: m, Alloc: alloc}
		if err := m.Run(func() error { return app.Run(e, Config{Seed: 42}) }); err != nil {
			b.Fatal(err)
		}
		instrs = m.Instructions()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs)/float64(b.N), "ns/instr")
}

func BenchmarkApp(b *testing.B) {
	for _, a := range All() {
		b.Run(a.Name, func(b *testing.B) { benchApp(b, a.Name) })
	}
}
