// The gzip workload: an LZ77 compressor working entirely in simulated
// memory — input buffer, hash-chain match finder, and output buffer, like
// the real deflate inner loop. It is the access-dominated extreme of the
// evaluation: millions of byte-granularity loads and stores with almost no
// allocation, which is where per-access instrumentation (Purify) hurts the
// most and allocation-time instrumentation (SafeMem) costs the least.
//
// The bug is a heap buffer overflow: the per-file trailer record is sized
// for a 100-character path, and a crafted input (Buggy=true) carries a
// longer one whose copy runs past the end of the record into SafeMem's
// guard line.
package apps

import (
	"math/rand"

	"safemem/internal/machine"
	"safemem/internal/vm"
)

const (
	gzSiteMain    = 0x404000
	gzSiteInit    = 0x404040
	gzSiteFile    = 0x404080
	gzSiteDeflate = 0x4040c0
	gzSiteTrailer = 0x404100 // the overflowed record
)

var gzipApp = &App{
	Name:        "gzip",
	Description: "a compression utility",
	PaperLOC:    8900,
	Class:       ClassOverflow,
	Run:         runGzip,
}

const (
	gzFiles      = 8
	gzFileBytes  = 16 << 10
	gzWindowBits = 12 // 4096-entry hash head table
	gzNameMax    = 100
)

type gzipState struct {
	e   *Env
	m   *machine.Machine
	rng *rand.Rand

	input  vm.VAddr // gzFileBytes input buffer (reused per file)
	output vm.VAddr // output buffer (reused per file)
	heads  vm.VAddr // hash-head table: position of last occurrence
	prevs  vm.VAddr // chain links by position
}

func runGzip(e *Env, cfg Config) error {
	m := e.M
	defer enter(m, gzSiteMain)()
	s := &gzipState{e: e, m: m, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x1f8b0808))}

	func() {
		defer enter(m, gzSiteInit)()
		s.input = mustMalloc(e, gzFileBytes)
		s.output = mustMalloc(e, gzFileBytes+gzFileBytes/8)
		s.heads = mustMalloc(e, (1<<gzWindowBits)*8)
		s.prevs = mustMalloc(e, gzFileBytes*8)
		e.Root(s.input)
		e.Root(s.output)
		e.Root(s.heads)
		e.Root(s.prevs)
	}()

	files := gzFiles * cfg.scale()
	for f := 0; f < files; f++ {
		s.compressFile(f, cfg.Buggy && f == files-1)
	}
	return nil
}

// compressFile generates one input file, deflates it, and writes the
// per-file trailer record.
func (s *gzipState) compressFile(f int, buggy bool) {
	m := s.m
	defer enter(m, gzSiteFile)()

	s.generateInput(f)
	outLen := s.deflate()
	_ = checksum(m, s.output, outLen&^7) // crc of the emitted stream
	s.writeTrailer(f, outLen, buggy)
}

// generateInput fills the input buffer with compressible text-like data.
func (s *gzipState) generateInput(f int) {
	m := s.m
	phrase := []byte("the quick brown fox jumps over the lazy dog ")
	pos := 0
	for pos < gzFileBytes {
		if s.rng.Intn(4) == 0 {
			m.Store8(s.input+vm.VAddr(pos), byte('a'+s.rng.Intn(26)))
			pos++
			continue
		}
		k := len(phrase)
		if pos+k > gzFileBytes {
			k = gzFileBytes - pos
		}
		m.StoreByteRun(s.input+vm.VAddr(pos), phrase[:k])
		pos += k
	}
	// Reset the match-finder state.
	m.Memset(s.heads, 0xff, (1<<gzWindowBits)*8)
}

// deflate runs the LZ77 inner loop: hash three bytes, probe the chain for
// the longest match, emit a literal or a (distance, length) pair.
func (s *gzipState) deflate() uint64 {
	m := s.m
	defer enter(m, gzSiteDeflate)()

	var out uint64
	emit := func(b byte) {
		m.Store8(s.output+vm.VAddr(out), b)
		out++
	}

	pos := 0
	for pos+3 <= gzFileBytes {
		h := s.hash3(pos)
		cand := int64(m.Load64(s.heads + vm.VAddr(h*8)))
		bestLen, bestDist := 0, 0
		for probe := 0; probe < 8 && cand >= 0 && pos-int(cand) < 4096; probe++ {
			l := s.matchLen(int(cand), pos)
			if l > bestLen {
				bestLen, bestDist = l, pos-int(cand)
			}
			cand = int64(m.Load64(s.prevs + vm.VAddr(cand*8)))
		}
		// Insert current position into the chain.
		m.Store64(s.prevs+vm.VAddr(pos*8), m.Load64(s.heads+vm.VAddr(h*8)))
		m.Store64(s.heads+vm.VAddr(h*8), uint64(pos))

		if bestLen >= 4 {
			tok := [3]byte{0x80 | byte(bestLen), byte(bestDist), byte(bestDist >> 8)}
			m.StoreByteRun(s.output+vm.VAddr(out), tok[:])
			out += 3
			pos += bestLen
		} else {
			emit(m.Load8(s.input + vm.VAddr(pos)))
			pos++
		}
	}
	for ; pos < gzFileBytes; pos++ {
		emit(m.Load8(s.input + vm.VAddr(pos)))
	}
	return out
}

func (s *gzipState) hash3(pos int) uint64 {
	var b [3]byte
	s.m.LoadByteRun(s.input+vm.VAddr(pos), b[:])
	return (uint64(b[0])<<10 ^ uint64(b[1])<<5 ^ uint64(b[2])) & (1<<gzWindowBits - 1)
}

// matchLen counts matching bytes between positions cand and pos, capped at
// 127 so the length always fits the token's 7-bit field. CompareRun loads
// the same interleaved byte pairs (cand+n then pos+n, both bytes of the
// first mismatching pair included) the open-coded loop did.
func (s *gzipState) matchLen(cand, pos int) int {
	max := gzFileBytes - pos
	if max > 127 {
		max = 127
	}
	return s.m.CompareRun(s.input+vm.VAddr(cand), s.input+vm.VAddr(pos), max)
}

// writeTrailer allocates the per-file trailer record — [crc 8][isize 8]
// [path ≤100] — and copies the original path into it. The copy loop trusts
// the path length: a crafted over-long path (the buggy input) runs past the
// record's end.
func (s *gzipState) writeTrailer(f int, outLen uint64, buggy bool) {
	m := s.m
	defer enter(m, gzSiteTrailer)()

	rec := mustMalloc(s.e, 16+gzNameMax)
	m.Store64(rec, outLen*0x1b5a3)
	m.Store64(rec+8, gzFileBytes)

	name := []byte("archive/file0000.txt")
	name[15] = byte('0' + f%10)
	if buggy {
		// The crafted member path: far longer than the 100-byte field.
		name = make([]byte, 150)
		for i := range name {
			name[i] = byte('A' + i%26)
		}
	}
	// strcpy(rec->path, name) — no bounds check, like the real bug. The
	// batched run bails to the slow path at the guard line (it is flushed,
	// so the first overflowing store misses), faulting exactly as singles.
	storeBytes(m, rec+16, name)
	_ = checksum(m, rec, 16)
	if err := s.e.Alloc.Free(rec); err != nil {
		machine.Abort("gzip: free trailer: %v", err)
	}
}
