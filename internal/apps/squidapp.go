// The squid workload: a web proxy cache. Two buggy versions, as in the
// paper:
//
//	squid1 — a sometimes-leak: when a client aborts mid-fetch, the
//	         half-filled object payload is neither inserted nor freed.
//	squid2 — memory corruption: an aborted request's error buffer is
//	         freed, but the retry queue keeps a dangling pointer that is
//	         dereferenced when the retry fires.
//
// The cache itself is the false-positive generator for squid1: hot objects
// stay resident (and thus "outlive" the maximal lifetime learned from
// evicted cold objects) yet are read on every hit, and the log-rotation
// site keeps one archive buffer alive and untouched for the entire run —
// the paper's one residual false positive after pruning.
package apps

import (
	"math/rand"

	"safemem/internal/machine"
	"safemem/internal/vm"
)

const (
	sqSiteMain   = 0x403000
	sqSiteInit   = 0x403040
	sqSiteReq    = 0x403080
	sqSiteFetch  = 0x4030c0 // payload allocation (squid1's leak)
	sqSiteHeader = 0x403100
	sqSiteLog    = 0x403140 // rotation buffers (residual FP)
	sqSiteError  = 0x403180 // squid2's error buffer (freed then read)
)

var squid1App = &App{
	Name:        "squid1",
	Description: "a Web proxy cache server",
	PaperLOC:    95000,
	Class:       ClassSLeak,
	IsRealLeak: func(site, size uint64) bool {
		// Only the cold upper size classes carry the abort bug; reports on
		// hot-class payload groups are false positives.
		return site == chainSig(sqSiteMain, sqSiteReq, sqSiteFetch) && size >= 192+10*64
	},
	Run: func(e *Env, cfg Config) error { return runSquid(e, cfg, 1) },
}

var squid2App = &App{
	Name:        "squid2",
	Description: "a Web proxy cache server",
	PaperLOC:    93000,
	Class:       ClassFreedAccess,
	Run:         func(e *Env, cfg Config) error { return runSquid(e, cfg, 2) },
}

type squidParams struct {
	requests       int
	hotURLs        int
	coldURLs       int
	hitRate        int // percent of requests aimed at the hot set
	payloadClasses int
	ttl            int // eviction age in requests
	computeACL     uint64
	prewarm        int
	coldTrickle    int // 1-in-N requests forced to a cold upper-class URL
}

func squidConfig(variant int) squidParams {
	if variant == 1 {
		return squidParams{
			requests:       1800,
			hotURLs:        60,
			coldURLs:       4000,
			hitRate:        95,
			payloadClasses: 13,
			ttl:            120,
			computeACL:     105000,
			prewarm:        0,
			coldTrickle:    12,
		}
	}
	return squidParams{
		requests:       1000,
		hotURLs:        100,
		coldURLs:       1500,
		hitRate:        97,
		payloadClasses: 6,
		ttl:            600,
		computeACL:     150000,
		prewarm:        100,
	}
}

// payloadClass maps a URL to its object size class. Hot objects (the
// popular set) come in the lower ten classes; only cold URLs reach the top
// classes — which is also where squid1's aborted fetches happen, since
// slow origin servers are both unpopular and abort-prone.
func (s *squidState) payloadClass(url uint64) int {
	if url < uint64(s.p.hotURLs) {
		n := s.p.payloadClasses - 3
		if n < 1 {
			n = 1
		}
		return int(url) % n
	}
	return int(url) % s.p.payloadClasses
}

func (s *squidState) payloadSize(url uint64) uint64 {
	return uint64(192 + s.payloadClass(url)*64)
}

// cacheEntry header layout in simulated memory:
// [0]=next  [8]=urlID  [16]=payloadPtr  [24]=size  [32]=lastReq  [40]=flags
const sqHeaderBytes = 48

// sqACLTableBytes is the ACL/regex state machine table consulted on every
// request (resident in cache). squid2's configuration walks it more.
const sqACLTableBytes = 20 << 10

type squidState struct {
	e   *Env
	m   *machine.Machine
	rng *rand.Rand
	p   squidParams

	buckets  vm.VAddr
	nbuckets uint64
	aclTable vm.VAddr   // ACL/regex tables walked on every request
	fifo     []vm.VAddr // entry headers in insertion order (eviction queue)

	logBuf     vm.VAddr // current rotation buffer
	logStarted int

	// squid2 retry queue: freed error buffers with their retry request.
	retries map[int]vm.VAddr
}

func runSquid(e *Env, cfg Config, variant int) error {
	m := e.M
	defer enter(m, sqSiteMain)()
	s := &squidState{
		e:       e,
		m:       m,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x00c0ffee)),
		p:       squidConfig(variant),
		retries: make(map[int]vm.VAddr),
	}
	s.initCache()

	// The first log-rotation buffer, plus squid1's "year-end archive": a
	// buffer from the same allocation site and size that stays alive,
	// untouched, for the whole run. It is still referenced (the program
	// writes it out at shutdown) — reporting it is a false positive, and
	// no access ever arrives to prune it.
	s.logBuf = s.newLogBuf()
	archive := s.newLogBuf()
	s.e.Root(archive)

	requests := s.p.requests * cfg.scale()
	for i := 0; i < requests; i++ {
		// Fire due retries first (squid2's dangling-pointer read happens
		// before any allocation of this request can reuse the extent).
		if buf, ok := s.retries[i]; ok {
			s.fireRetry(buf)
			delete(s.retries, i)
		}
		s.request(i, cfg.Buggy, variant)
		if i%100 == 99 {
			s.rotateLog(i)
		}
		s.evict(i)
	}
	return nil
}

func (s *squidState) initCache() {
	m := s.m
	defer enter(m, sqSiteInit)()
	s.nbuckets = 512
	s.buckets = mustMalloc(s.e, s.nbuckets*8)
	s.e.Root(s.buckets)
	m.Memset(s.buckets, 0, s.nbuckets*8)

	s.aclTable = mustMalloc(s.e, sqACLTableBytes)
	s.e.Root(s.aclTable)
	fillWords(m, s.aclTable, sqACLTableBytes/8, func(i uint64) uint64 {
		return i * 8 | 1
	})

	// squid2 runs with a prewarmed, near-static cache.
	for i := 0; i < s.p.prewarm; i++ {
		s.insert(i, uint64(i), 0)
	}
}

func (s *squidState) newLogBuf() vm.VAddr {
	m := s.m
	defer enter(m, sqSiteLog)()
	buf := mustMalloc(s.e, 480)
	m.Store64(buf, 0)
	return buf
}

// rotateLog writes out and frees the current rotation buffer and starts a
// fresh one — giving the log group a stable ~100-request lifetime.
func (s *squidState) rotateLog(i int) {
	m := s.m
	_ = checksum(m, s.logBuf, 128)
	if err := s.e.Alloc.Free(s.logBuf); err != nil {
		machine.Abort("squid: rotate log: %v", err)
	}
	s.logBuf = s.newLogBuf()
	s.logStarted = i
}

func (s *squidState) urlFor(i int) uint64 {
	// A steady trickle of one-shot cold requests hits the upper size
	// classes (the slow origins): crawler and API traffic in the mix.
	if s.p.coldTrickle > 0 && i%s.p.coldTrickle == 4 {
		k := uint64(i / s.p.coldTrickle)
		return uint64(s.p.hotURLs) + (k*13+12)%uint64(s.p.coldURLs)/13*13 + 12
	}
	if s.rng.Intn(100) < s.p.hitRate {
		return uint64(s.rng.Intn(s.p.hotURLs))
	}
	return uint64(s.p.hotURLs + s.rng.Intn(s.p.coldURLs))
}

func sqHash(url, buckets uint64) uint64 {
	h := url * 0x9e3779b97f4a7c15
	return (h ^ h>>29) % buckets
}

// request serves one client request.
func (s *squidState) request(i int, buggy bool, variant int) {
	m := s.m
	defer enter(m, sqSiteReq)()

	// ACL checks, header parsing, URL canonicalisation. The ACL state
	// machine walks its tables once per request (squid2's ruleset is
	// heavier: two extra passes).
	m.Compute(s.p.computeACL)
	passes := 2
	if variant == 2 {
		passes = 3
	}
	for p := 0; p < passes; p++ {
		scanWords(m, s.aclTable, sqACLTableBytes/8)
	}
	url := s.urlFor(i)

	// squid2's bug: occasionally the client disconnects mid-request; the
	// error-response buffer is freed, but the retry queue keeps a dangling
	// pointer to it.
	if variant == 2 && buggy && s.rng.Intn(70) == 0 {
		s.abortRequest(i)
	}

	// Append to the access log.
	m.Store64(s.logBuf+vm.VAddr(8+(uint64(i)%56)*8), uint64(i)<<16|url)

	// Index lookup.
	slot := s.buckets + vm.VAddr(sqHash(url, s.nbuckets)*8)
	entry := vm.VAddr(m.Load64(slot))
	for entry != 0 {
		if m.Load64(entry+8) == url {
			break
		}
		entry = vm.VAddr(m.Load64(entry))
	}

	if entry != 0 {
		// Hit: serve from cache and refresh recency.
		payload := vm.VAddr(m.Load64(entry + 16))
		size := m.Load64(entry + 24)
		n := size
		if n > 512 {
			n = 512
		}
		_ = checksum(m, payload, n)
		m.Store64(entry+32, uint64(i))
		m.Compute(3000)
		return
	}

	// Miss: fetch from origin.
	func() {
		defer enter(m, sqSiteFetch)()
		size := s.payloadSize(url)
		payload := mustMalloc(s.e, size)
		n := size
		if n > 512 {
			n = 512
		}
		fillWords(m, payload, (n+7)/8, func(i uint64) uint64 {
			return url<<32 | i*8
		})

		if variant == 1 && buggy && s.payloadClass(url) >= s.p.payloadClasses-3 && s.rng.Intn(3) == 0 {
			// Client aborted the slow cold fetch mid-transfer: the
			// half-filled payload is abandoned — squid1's sometimes-leak.
			return
		}
		s.insertPayload(i, url, payload, size)
	}()
}

// insert allocates and fills a payload for url, then links it (prewarm and
// normal path share this).
func (s *squidState) insert(i int, url uint64, _ int) {
	m := s.m
	defer enter(m, sqSiteFetch)()
	size := s.payloadSize(url)
	payload := mustMalloc(s.e, size)
	n := size
	if n > 512 {
		n = 512
	}
	fillWords(m, payload, (n+7)/8, func(i uint64) uint64 {
		return url<<32 | i*8
	})
	s.insertPayload(i, url, payload, size)
}

// insertPayload links a fetched payload into the index.
func (s *squidState) insertPayload(i int, url uint64, payload vm.VAddr, size uint64) {
	m := s.m
	var header vm.VAddr
	func() {
		defer enter(m, sqSiteHeader)()
		header = mustMalloc(s.e, sqHeaderBytes)
	}()
	slot := s.buckets + vm.VAddr(sqHash(url, s.nbuckets)*8)
	m.Store64(header, m.Load64(slot))
	m.Store64(header+8, url)
	m.Store64(header+16, uint64(payload))
	m.Store64(header+24, size)
	m.Store64(header+32, uint64(i))
	m.Store64(header+40, 0)
	m.Store64(slot, uint64(header))
	s.fifo = append(s.fifo, header)
}

// evict walks the front of the insertion queue, freeing entries idle longer
// than the TTL and re-queueing still-hot ones. Evictions bound cold-object
// lifetimes, which is what lets the leak detector learn a stable maximum.
func (s *squidState) evict(i int) {
	m := s.m
	for n := 0; n < 4 && len(s.fifo) > 0; n++ {
		header := s.fifo[0]
		last := int(m.Load64(header + 32))
		if i-last <= s.p.ttl {
			// Still fresh: rotate to the back and keep scanning.
			s.fifo = append(s.fifo[1:], header)
			continue
		}
		s.fifo = s.fifo[1:]
		s.unlink(header)
		payload := vm.VAddr(m.Load64(header + 16))
		if err := s.e.Alloc.Free(payload); err != nil {
			machine.Abort("squid: evict payload: %v", err)
		}
		if err := s.e.Alloc.Free(header); err != nil {
			machine.Abort("squid: evict header: %v", err)
		}
	}
}

// unlink removes header from its bucket chain.
func (s *squidState) unlink(header vm.VAddr) {
	m := s.m
	url := m.Load64(header + 8)
	slot := s.buckets + vm.VAddr(sqHash(url, s.nbuckets)*8)
	p := vm.VAddr(m.Load64(slot))
	if p == header {
		m.Store64(slot, m.Load64(header))
		return
	}
	for p != 0 {
		next := vm.VAddr(m.Load64(p))
		if next == header {
			m.Store64(p, m.Load64(header))
			return
		}
		p = next
	}
}

// abortRequest is squid2's buggy path: build an error response, free it,
// but leave its address in the retry queue.
func (s *squidState) abortRequest(i int) {
	m := s.m
	defer enter(m, sqSiteError)()
	buf := mustMalloc(s.e, 1472)
	storeBytes(m, buf, []byte("HTTP/1.0 504 Gateway Timeout"))
	if err := s.e.Alloc.Free(buf); err != nil {
		machine.Abort("squid: free error buf: %v", err)
	}
	s.retries[i+2] = buf // dangling pointer kept by the retry queue
}

// fireRetry dereferences the dangling pointer — the freed-memory access.
func (s *squidState) fireRetry(buf vm.VAddr) {
	m := s.m
	defer enter(m, sqSiteError)()
	_ = m.Load64(buf) // read of freed memory
	_ = m.Load64(buf + 8)
	m.Compute(2000)
}
