package physmem

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) succeeded")
	}
	if _, err := New(100); err == nil {
		t.Error("New(100) (not line multiple) succeeded")
	}
	m, err := New(4096)
	if err != nil {
		t.Fatalf("New(4096): %v", err)
	}
	if m.Size() != 4096 || m.Lines() != 64 {
		t.Fatalf("size=%d lines=%d", m.Size(), m.Lines())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) did not panic")
		}
	}()
	MustNew(3)
}

func TestRawRoundTrip(t *testing.T) {
	m := MustNew(1024)
	m.WriteGroupRaw(64, 0xdead, 0x5a)
	d, c := m.ReadGroupRaw(64)
	if d != 0xdead || c != 0x5a {
		t.Fatalf("got %#x/%#x", d, c)
	}
}

func TestWriteGroupDataOnlyPreservesCheck(t *testing.T) {
	m := MustNew(1024)
	m.WriteGroupRaw(0, 1, 0x77)
	m.WriteGroupDataOnly(0, 2)
	d, c := m.ReadGroupRaw(0)
	if d != 2 {
		t.Fatalf("data = %d, want 2", d)
	}
	if c != 0x77 {
		t.Fatalf("check changed to %#x, want 0x77", c)
	}
}

func TestFlipBits(t *testing.T) {
	m := MustNew(1024)
	m.WriteGroupRaw(8, 0, 0)
	m.FlipDataBit(8, 3)
	m.FlipCheckBit(8, 1)
	d, c := m.ReadGroupRaw(8)
	if d != 8 || c != 2 {
		t.Fatalf("got %#x/%#x, want 0x8/0x2", d, c)
	}
	m.FlipDataBit(8, 3)
	d, _ = m.ReadGroupRaw(8)
	if d != 0 {
		t.Fatal("double flip did not restore")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := MustNew(64)
	for _, f := range []func(){
		func() { m.ReadGroupRaw(64) },
		func() { m.WriteGroupRaw(128, 0, 0) },
		func() { m.ReadGroupRaw(4) }, // unaligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(64*3 + 8*5 + 3)
	if a.LineAddr() != 192 {
		t.Errorf("LineAddr = %d", a.LineAddr())
	}
	if a.LineOffset() != 43 {
		t.Errorf("LineOffset = %d", a.LineOffset())
	}
	if a.GroupAddr() != 192+40 {
		t.Errorf("GroupAddr = %d", a.GroupAddr())
	}
	if a.GroupInLine() != 5 {
		t.Errorf("GroupInLine = %d", a.GroupInLine())
	}
	if a.IsLineAligned() {
		t.Error("unaligned address reported aligned")
	}
	if !Addr(256).IsLineAligned() {
		t.Error("aligned address reported unaligned")
	}
}

func TestQuickAddrDecomposition(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		return uint64(a.LineAddr())+a.LineOffset() == uint64(a) &&
			a.GroupAddr() >= a.LineAddr() &&
			a.GroupInLine() >= 0 && a.GroupInLine() < GroupsPerLine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRawStorageIsExact(t *testing.T) {
	m := MustNew(1 << 16)
	f := func(off uint16, data uint64, check uint8) bool {
		a := Addr(off).GroupAddr()
		m.WriteGroupRaw(a, data, check)
		d, c := m.ReadGroupRaw(a)
		return d == data && c == check
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTouched(t *testing.T) {
	m := MustNew(4096)
	// Dirty a few lines through every mutation route.
	m.WriteGroupRaw(0, 0xdead, 0x5a)
	m.WriteGroupDataOnly(64+8, 0xbeef)
	m.FlipDataBit(128, 3)
	m.FlipCheckBit(4032, 7)
	var hookLines []Addr
	m.SetMutateHook(func(line Addr) { hookLines = append(hookLines, line) })
	m.ZeroTouched()
	// Every touched line re-zeroed, hook fired once per line.
	want := map[Addr]bool{0: true, 64: true, 128: true, 4032: true}
	if len(hookLines) != len(want) {
		t.Fatalf("hook fired for %v, want %d lines", hookLines, len(want))
	}
	for _, l := range hookLines {
		if !want[l] {
			t.Fatalf("hook fired for unexpected line %#x", uint64(l))
		}
	}
	for a := Addr(0); a < 4096; a += GroupBytes {
		if d, c := m.ReadGroupRaw(a); d != 0 || c != 0 {
			t.Fatalf("group %#x not re-zeroed: data=%#x check=%#x", uint64(a), d, c)
		}
	}
	// Bitmap cleared: a second pass touches nothing.
	hookLines = nil
	m.ZeroTouched()
	if len(hookLines) != 0 {
		t.Fatalf("second ZeroTouched re-fired hook for %v", hookLines)
	}
}
