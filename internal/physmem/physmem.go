// Package physmem models the physical DRAM of the simulated machine.
//
// Memory is organised the way the ECC memory controller sees it: 64-byte
// lines (the granularity of all main-memory traffic, Section 2.2.1), each
// made of eight 64-bit ECC groups, each group stored together with its 8 ECC
// check bits (Section 2.1). The package stores raw bits only; the encode/
// check policy — when check bits are regenerated, when errors are corrected
// or reported — belongs to package memctrl, mirroring the hardware split
// between DRAM modules and the chipset.
package physmem

import (
	"fmt"
	"math/bits"

	"safemem/internal/telemetry"
)

const (
	// LineBytes is the size of one cache line / memory-bus transfer.
	LineBytes = 64
	// GroupsPerLine is the number of 64-bit ECC groups per line.
	GroupsPerLine = LineBytes / 8
	// GroupBytes is the number of data bytes per ECC group.
	GroupBytes = 8
)

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// LineAddr returns the address of the line containing a.
func (a Addr) LineAddr() Addr { return a &^ (LineBytes - 1) }

// LineOffset returns a's byte offset within its line.
func (a Addr) LineOffset() uint64 { return uint64(a) & (LineBytes - 1) }

// GroupAddr returns the address of the ECC group containing a.
func (a Addr) GroupAddr() Addr { return a &^ (GroupBytes - 1) }

// GroupInLine returns the index (0..7) of a's ECC group within its line.
func (a Addr) GroupInLine() int { return int(a.LineOffset() / GroupBytes) }

// IsLineAligned reports whether a is aligned to a line boundary.
func (a Addr) IsLineAligned() bool { return a%LineBytes == 0 }

// group is one stored ECC group: 64 data bits plus 8 check bits.
type group struct {
	data  uint64
	check uint8
}

// Memory is the simulated DRAM. The zero value is unusable; create with New.
type Memory struct {
	groups []group
	size   uint64

	// onMutate, when set, observes every mutation of stored bits — raw
	// writes, data-only writes, and bit flips — with the line address of the
	// touched group. The memory controller hooks it to invalidate its
	// known-clean line bitmap, so no writer (fault injector, fault model,
	// VM swap, direct-ECC pokes) can corrupt a line behind the controller's
	// decode-skipping fast path.
	onMutate func(line Addr)

	// touched is a one-bit-per-line bitmap of lines whose stored bits have
	// ever been mutated. It lets ZeroTouched restore a used memory to its
	// pristine all-zero state by re-zeroing only the dirtied lines instead
	// of the whole DRAM — the trick that makes machine pooling cheaper than
	// allocating a fresh 32 MiB arena per campaign scenario.
	touched []uint64

	// dirty is the since-last-capture counterpart of touched: CaptureImage
	// clears it, every mutation sets it, and RestoreImage walks it to
	// re-copy only the lines that actually diverged from the image —
	// O(dirty state) instead of O(memory). Invariant between capture and
	// restore: touched == image.touched | dirty.
	dirty []uint64

	// snapGen guards image validity: CaptureImage stamps the image with the
	// current generation and anything that breaks the dirty-tracking
	// invariant (ZeroTouched, restoring a different image) bumps it, forcing
	// the next RestoreImage onto the always-correct full path.
	snapGen uint64
}

// SetMutateHook installs fn as the mutation observer (nil clears it). There
// is a single slot: the owning memory controller. The hook must not itself
// write to the memory.
func (m *Memory) SetMutateHook(fn func(line Addr)) { m.onMutate = fn }

// noteMutate reports a mutation of the group at index idx to the hook and
// records the line in the touched bitmap.
func (m *Memory) noteMutate(idx uint64) {
	line := idx / GroupsPerLine
	m.touched[line>>6] |= 1 << (line & 63)
	m.dirty[line>>6] |= 1 << (line & 63)
	if m.onMutate != nil {
		m.onMutate(Addr(idx * GroupBytes).LineAddr())
	}
}

// ZeroTouched re-zeroes every line that has ever been mutated (data and
// check bits) and clears the touched bitmap, restoring the memory to its
// freshly-allocated state. The mutate hook fires once per re-zeroed line,
// exactly as it would for explicit writes, so a controller's known-clean
// bitmap cannot go stale. Cost is proportional to the touched footprint,
// not the DRAM size.
func (m *Memory) ZeroTouched() {
	for wi, w := range m.touched {
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			w &^= 1 << b
			line := uint64(wi)<<6 + b
			gi := line * GroupsPerLine
			for g := gi; g < gi+GroupsPerLine; g++ {
				m.groups[g] = group{}
			}
			if m.onMutate != nil {
				m.onMutate(Addr(line * LineBytes))
			}
		}
		m.touched[wi] = 0
		m.dirty[wi] = 0
	}
	// Zeroing breaks any image's dirty-tracking invariant (its lines are
	// gone but its dirty bits were cleared along the way); stale images must
	// take the full restore path.
	m.snapGen++
}

// New allocates a simulated DRAM of the given size in bytes. The size must
// be a positive multiple of the line size.
func New(size uint64) (*Memory, error) {
	if size == 0 || size%LineBytes != 0 {
		return nil, fmt.Errorf("physmem: size %d is not a positive multiple of %d", size, LineBytes)
	}
	lines := size / LineBytes
	return &Memory{
		groups:  make([]group, size/GroupBytes),
		size:    size,
		touched: make([]uint64, (lines+63)/64),
		dirty:   make([]uint64, (lines+63)/64),
	}, nil
}

// MustNew is New, panicking on error. For tests and examples.
func MustNew(size uint64) *Memory {
	m, err := New(size)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// RegisterTelemetry registers the DRAM geometry with the registry.
func (m *Memory) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterSource("physmem", func(emit func(string, float64)) {
		emit("size_bytes", float64(m.size))
		emit("lines", float64(m.Lines()))
	})
}

// Lines returns the number of 64-byte lines.
func (m *Memory) Lines() uint64 { return m.size / LineBytes }

// check panics on out-of-range group-aligned addresses; the simulator's own
// components are the only callers, so a violation is a simulator bug.
func (m *Memory) groupIndex(a Addr) uint64 {
	if uint64(a) >= m.size {
		panic(fmt.Sprintf("physmem: address %#x out of range (size %#x)", uint64(a), m.size))
	}
	if a%GroupBytes != 0 {
		panic(fmt.Sprintf("physmem: address %#x not group aligned", uint64(a)))
	}
	return uint64(a) / GroupBytes
}

// ReadGroupRaw returns the stored data word and check bits of the ECC group
// at a, without any ECC checking.
func (m *Memory) ReadGroupRaw(a Addr) (data uint64, check uint8) {
	g := m.groups[m.groupIndex(a)]
	return g.data, g.check
}

// WriteGroupRaw stores both the data word and the check bits of the group at
// a. This is the full-control path used by the controller and by the fault
// injector.
func (m *Memory) WriteGroupRaw(a Addr, data uint64, check uint8) {
	idx := m.groupIndex(a)
	m.groups[idx] = group{data: data, check: check}
	m.noteMutate(idx)
}

// WriteGroupDataOnly stores the data word at a while leaving the stored
// check bits untouched. This models a write performed while the ECC engine
// is disabled — the heart of SafeMem's WatchMemory trick (Figure 2): the old
// check bits now mismatch the new data.
func (m *Memory) WriteGroupDataOnly(a Addr, data uint64) {
	idx := m.groupIndex(a)
	m.groups[idx].data = data
	m.noteMutate(idx)
}

// FlipDataBit inverts one data bit of the group at a, leaving the check bits
// untouched. It models a hardware memory error (cosmic ray, failing cell).
func (m *Memory) FlipDataBit(a Addr, bit uint) {
	if bit >= 64 {
		panic("physmem: data bit out of range")
	}
	idx := m.groupIndex(a)
	m.groups[idx].data ^= 1 << bit
	m.noteMutate(idx)
}

// Image is an immutable checkpoint of a Memory's stored bits, taken with
// CaptureImage. It records only the touched lines — for the warmed-but-idle
// machines the snapshot layer checkpoints, that is a handful of lines, not
// the DRAM.
type Image struct {
	mem     *Memory
	gen     uint64
	touched []uint64
	lines   map[uint64]*[GroupsPerLine]group
}

// CaptureImage checkpoints the memory's current contents. It also resets
// the dirty-since-capture bitmap, so a later RestoreImage re-copies only
// lines mutated in between. The image belongs to this memory; restoring it
// elsewhere panics.
func (m *Memory) CaptureImage() *Image {
	img := &Image{
		mem:     m,
		touched: append([]uint64(nil), m.touched...),
		lines:   make(map[uint64]*[GroupsPerLine]group),
	}
	for wi, w := range m.touched {
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			w &^= 1 << b
			line := uint64(wi)<<6 + b
			saved := new([GroupsPerLine]group)
			copy(saved[:], m.groups[line*GroupsPerLine:(line+1)*GroupsPerLine])
			img.lines[line] = saved
		}
	}
	clear(m.dirty)
	m.snapGen++
	img.gen = m.snapGen
	return img
}

// restoreLine puts one line back to its image content (or zero, when the
// image never held it) and fires the mutate hook, exactly as an explicit
// write would, so a controller's known-clean bitmap cannot go stale.
func (m *Memory) restoreLine(img *Image, line uint64) {
	gi := line * GroupsPerLine
	if saved, ok := img.lines[line]; ok {
		copy(m.groups[gi:gi+GroupsPerLine], saved[:])
	} else {
		for g := gi; g < gi+GroupsPerLine; g++ {
			m.groups[g] = group{}
		}
	}
	if m.onMutate != nil {
		m.onMutate(Addr(line * LineBytes))
	}
}

// RestoreImage puts the memory back into the captured state. When the
// image's dirty tracking is still valid (nothing but ordinary mutations
// happened since CaptureImage or the previous RestoreImage of this image),
// only the lines dirtied in between are re-copied; otherwise every line
// either side ever touched is restored — slower, never wrong. Afterwards
// the image is valid for the next O(dirty) restore. The mutate hook fires
// once per restored line.
func (m *Memory) RestoreImage(img *Image) {
	if img.mem != m {
		panic("physmem: RestoreImage with an image captured from a different memory")
	}
	if img.gen == m.snapGen {
		// Fast path: touched == img.touched | dirty, so restoring the dirty
		// lines and stripping their extra touched bits lands exactly on the
		// captured bitmaps.
		for wi, w := range m.dirty {
			d := w
			for d != 0 {
				b := uint64(bits.TrailingZeros64(d))
				d &^= 1 << b
				m.restoreLine(img, uint64(wi)<<6+b)
			}
			m.touched[wi] &^= w &^ img.touched[wi]
			m.dirty[wi] = 0
		}
		return
	}
	// Full path: the bitmaps' provenance is unknown (ZeroTouched ran, or a
	// different image was restored), so walk the union of both touched sets.
	for wi := range m.touched {
		w := m.touched[wi] | img.touched[wi]
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			w &^= 1 << b
			m.restoreLine(img, uint64(wi)<<6+b)
		}
		m.touched[wi] = img.touched[wi]
		m.dirty[wi] = 0
	}
	m.snapGen++
	img.gen = m.snapGen
}

// FlipCheckBit inverts one stored check bit of the group at a.
func (m *Memory) FlipCheckBit(a Addr, bit uint) {
	if bit >= 8 {
		panic("physmem: check bit out of range")
	}
	idx := m.groupIndex(a)
	m.groups[idx].check ^= 1 << bit
	m.noteMutate(idx)
}
