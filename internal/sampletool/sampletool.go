// Package sampletool implements a GWP-ASan-style sampling front-end over
// the SafeMem detector: only ~1/N allocations (seed-deterministic) are
// admitted to the ECC-watched pool — guard lines, freed-memory watches,
// leak bookkeeping — while the rest run completely unwatched on the TLB
// fast path. The per-run cost therefore shrinks toward zero as N grows,
// and detection is recovered in aggregate: across k independently seeded
// runs, a bug on a given allocation site is caught with probability
// 1-(1-1/N)^k (see DESIGN.md §4.9 and the `-experiment frontier` sweep in
// internal/bench).
//
// The sampling decision is drawn host-side from a splitmix64 stream and
// charges zero simulated cycles, so a rate-1 tool is bit-for-bit
// equivalent to the full SafeMem tool — the property the differential
// tests pin.
package sampletool

import (
	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// Options configures a sampling tool.
type Options struct {
	// Rate is the sampling rate N: each allocation is admitted to the
	// watched pool independently with probability 1/N. Rate ≤ 1 samples
	// every allocation (full SafeMem).
	Rate int
	// Seed seeds the splitmix64 decision stream. Two tools with the same
	// seed and rate sample the same allocation sequence.
	Seed uint64
	// SafeMem configures the inner detector applied to sampled
	// allocations. DefaultOptions uses the GWP-ASan scope — corruption
	// only — because leak heuristics over a sampled sub-population compare
	// against full-population thresholds.
	SafeMem safemem.Options
}

// DefaultOptions returns the GWP-ASan-style configuration: corruption
// detection only, at the given rate and seed.
func DefaultOptions(rate int, seed uint64) Options {
	inner := safemem.DefaultOptions()
	inner.DetectLeaks = false
	return Options{Rate: rate, Seed: seed, SafeMem: inner}
}

// Stats counts the sampler's own activity; the inner detector's counters
// are available via SafeMemStats.
type Stats struct {
	// Sampled and Unsampled count the allocation-stream split.
	Sampled   uint64
	Unsampled uint64
	// PoolLive is the number of sampled allocations currently live;
	// PoolPeak is its high-water mark.
	PoolLive uint64
	PoolPeak uint64
	// SampledFrees counts frees of sampled allocations (which arm a
	// freed-memory watch); UnsampledFrees counts the rest.
	SampledFrees   uint64
	UnsampledFrees uint64
	// StaleUnwatches counts watch regions disarmed because an unsampled
	// allocation reused a watched freed extent.
	StaleUnwatches uint64
	// Detections counts inner bug reports (leaks + corruption).
	Detections uint64
}

// splitmix64 — the same stable generator the campaign uses, so sampling
// decisions are identical across Go releases.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Tool is an attached sampling detector. It registers itself as the heap
// hook and forwards only the sampled subset of events to an inner SafeMem
// tool attached via safemem.AttachWithoutHook.
type Tool struct {
	m     *machine.Machine
	alloc *heap.Allocator
	inner *safemem.Tool
	opts  Options
	rng   rng
	pool  map[vm.VAddr]struct{} // user pointers of live sampled blocks
	stats Stats
}

// Attach wires a sampling tool onto machine m and allocator alloc. The
// allocator must satisfy the same layout contract as for safemem.Attach
// (cache-line alignment; guard padding when corruption detection is on).
func Attach(m *machine.Machine, alloc *heap.Allocator, opts Options) (*Tool, error) {
	if opts.Rate < 1 {
		opts.Rate = 1
	}
	inner, err := safemem.AttachWithoutHook(m, alloc, opts.SafeMem)
	if err != nil {
		return nil, err
	}
	t := &Tool{
		m:     m,
		alloc: alloc,
		inner: inner,
		opts:  opts,
		rng:   rng{state: opts.Seed},
		pool:  make(map[vm.VAddr]struct{}),
	}
	alloc.AddHook(t)
	m.Telemetry.RegisterSource("sample", func(emit func(string, float64)) {
		s := t.Stats()
		emit("sampled_allocs", float64(s.Sampled))
		emit("unsampled_allocs", float64(s.Unsampled))
		emit("pool_live", float64(s.PoolLive))
		emit("pool_peak", float64(s.PoolPeak))
		emit("stale_unwatches", float64(s.StaleUnwatches))
		emit("detections", float64(s.Detections))
	})
	return t, nil
}

// Options returns the tool's configuration (with Rate normalised to ≥ 1).
func (t *Tool) Options() Options { return t.opts }

// Inner returns the wrapped SafeMem tool.
func (t *Tool) Inner() *safemem.Tool { return t.inner }

// Sampled reports whether the live allocation at user pointer va was
// admitted to the watched pool.
func (t *Tool) Sampled(va vm.VAddr) bool {
	_, ok := t.pool[va]
	return ok
}

// Stats returns a copy of the sampler's counters.
func (t *Tool) Stats() Stats {
	s := t.stats
	s.PoolLive = uint64(len(t.pool))
	is := t.inner.Stats()
	s.Detections = is.LeaksReported + is.CorruptionReported
	return s
}

// SafeMemStats returns the inner detector's counters.
func (t *Tool) SafeMemStats() safemem.Stats { return t.inner.Stats() }

// Reports returns the inner detector's bug reports, in detection order.
func (t *Tool) Reports() []safemem.BugReport { return t.inner.Reports() }

// Shutdown runs the inner detector's program-exit pass and disarms every
// watch. Returns the newly produced reports.
func (t *Tool) Shutdown() []safemem.BugReport { return t.inner.Shutdown() }

// OnAlloc implements heap.Hook: draw the sampling decision and either
// admit the block to the watched pool or leave it bare. The draw happens
// host-side and charges zero simulated cycles — an unsampled allocation is
// indistinguishable from one under no tool at all.
func (t *Tool) OnAlloc(b *heap.Block) {
	if t.opts.Rate <= 1 || t.rng.next()%uint64(t.opts.Rate) == 0 {
		t.stats.Sampled++
		t.pool[b.Addr] = struct{}{}
		if n := uint64(len(t.pool)); n > t.stats.PoolPeak {
			t.stats.PoolPeak = n
		}
		t.inner.OnAlloc(b)
		return
	}
	t.stats.Unsampled++
	// The allocator may have carved this block out of a watched freed
	// extent; the stale watch must be disarmed even though the new tenant
	// goes unwatched, or its ordinary accesses would trip it.
	t.stats.StaleUnwatches += uint64(t.inner.UnwatchRange(b.FullAddr, b.FullSize))
}

// OnFree implements heap.Hook: sampled blocks get the full free-side
// treatment (freed-memory watch over the extent); unsampled blocks return
// to the free list bare.
func (t *Tool) OnFree(b *heap.Block) {
	if _, ok := t.pool[b.Addr]; ok {
		delete(t.pool, b.Addr)
		t.stats.SampledFrees++
		t.inner.OnFree(b)
		return
	}
	t.stats.UnsampledFrees++
}

// Reseed resets the sampling decision stream to the given seed. The
// snapshot layer calls it after each machine restore so a pooled runner
// samples each scenario exactly as a freshly attached tool with that seed
// would.
func (t *Tool) Reseed(seed uint64) {
	t.opts.Seed = seed
	t.rng = rng{state: seed}
}

// Image is an immutable checkpoint of an idle sampling tool (empty pool),
// taken with CaptureImage alongside the inner detector's image.
type Image struct {
	t     *Tool
	opts  Options
	rng   rng
	stats Stats
	inner *safemem.Image
}

// CaptureImage checkpoints the sampler and its inner detector. The pool must
// be empty (capture happens before any program ops).
func (t *Tool) CaptureImage() (*Image, error) {
	if len(t.pool) != 0 {
		return nil, errLivePool(len(t.pool))
	}
	inner, err := t.inner.CaptureImage()
	if err != nil {
		return nil, err
	}
	return &Image{t: t, opts: t.opts, rng: t.rng, stats: t.stats, inner: inner}, nil
}

// RestoreImage puts the sampler and its inner detector back into the
// captured state. Callers running seed-varied scenarios follow up with
// Reseed.
func (t *Tool) RestoreImage(img *Image) {
	if img.t != t {
		panic("sampletool: RestoreImage with an image captured from a different tool")
	}
	t.inner.RestoreImage(img.inner)
	t.opts = img.opts
	t.rng = img.rng
	clear(t.pool)
	t.stats = img.stats
}

// CheckInvariants verifies the sampler's bookkeeping against the heap and
// the inner watch indices: every pool entry is a live block, no unsampled
// live block carries a watch inside its extent, and the inner region/line
// maps agree. Fuzz harnesses call this after every operation.
func (t *Tool) CheckInvariants() error {
	if err := t.inner.CheckWatchInvariants(); err != nil {
		return err
	}
	live := make(map[vm.VAddr]*heap.Block)
	for _, b := range t.alloc.LiveBlocks() {
		live[b.Addr] = b
	}
	for va := range t.pool {
		if _, ok := live[va]; !ok {
			return errPoolEntry(va)
		}
	}
	for va, b := range live {
		if _, sampled := t.pool[va]; sampled {
			continue
		}
		if t.inner.Watched(b.FullAddr, b.FullSize) {
			return errUnsampledWatched(va)
		}
	}
	return nil
}
