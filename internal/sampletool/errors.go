package sampletool

import (
	"fmt"

	"safemem/internal/vm"
)

func errPoolEntry(va vm.VAddr) error {
	return fmt.Errorf("sampletool invariant: pool entry %#x has no live block", uint64(va))
}

func errUnsampledWatched(va vm.VAddr) error {
	return fmt.Errorf("sampletool invariant: unsampled live block %#x carries a watch", uint64(va))
}

func errLivePool(n int) error {
	return fmt.Errorf("sampletool: CaptureImage with %d live pool entries (attach-then-capture before running the program)", n)
}
