package sampletool

import (
	"testing"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

// FuzzSampleDecisions drives random interleavings of allocation, free and
// access through the sampling decision path and checks the bookkeeping
// invariants after every operation: the pool tracks exactly the live
// sampled blocks, no unsampled block carries a watch, and the inner watch
// indices never double-count a line. The script is a byte pair per op:
// opcode selector then argument.
//
//	op%3 == 0: alloc (size = arg%512 + 1)
//	op%3 == 1: free the (arg % live)-th live block
//	op%3 == 2: write inside the (arg % live)-th block, or one byte past
//	           its rounded size when the offset lands there — the guard
//	           line if sampled, inert padding if not
//
// Wired into `make fuzz-short` alongside the scenario-decoder target.
func FuzzSampleDecisions(f *testing.F) {
	f.Add([]byte{0, 64, 0, 100, 2, 64, 1, 0, 0, 64, 2, 65}, uint64(42), byte(8))
	f.Add([]byte{0, 0, 1, 0, 0, 0, 2, 0}, uint64(7), byte(2))
	f.Add([]byte{0, 255, 0, 255, 0, 255, 1, 1, 0, 255, 2, 255}, uint64(3), byte(1))
	f.Fuzz(func(t *testing.T, script []byte, seed uint64, rate byte) {
		if len(script) > 4096 {
			t.Skip("script longer than the interesting range")
		}
		m, err := machine.New(machine.Config{MemBytes: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := heap.New(m, safemem.HeapOptions(true))
		if err != nil {
			t.Fatal(err)
		}
		tool, err := Attach(m, alloc, DefaultOptions(int(rate), seed))
		if err != nil {
			t.Fatal(err)
		}

		type blk struct {
			addr vm.VAddr
			size uint64
		}
		var live []blk
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], script[i+1]
			switch op % 3 {
			case 0:
				size := uint64(arg)%512 + 1
				p, err := alloc.Malloc(size)
				if err != nil {
					continue // arena exhausted; keep fuzzing the rest
				}
				live = append(live, blk{p, size})
			case 1:
				if len(live) == 0 {
					continue
				}
				idx := int(arg) % len(live)
				if err := alloc.Free(live[idx].addr); err != nil {
					t.Fatalf("op %d: free: %v", i/2, err)
				}
				live = append(live[:idx], live[idx+1:]...)
			case 2:
				if len(live) == 0 {
					continue
				}
				b := live[int(arg)%len(live)]
				rounded := (b.size + 63) &^ 63
				off := uint64(arg) % (rounded + 1) // rounded itself = first pad byte
				m.Store8(b.addr+vm.VAddr(off), 0xab)
			}
			if err := tool.CheckInvariants(); err != nil {
				t.Fatalf("op %d (script %v): %v", i/2, script[:i+2], err)
			}
		}
	})
}
