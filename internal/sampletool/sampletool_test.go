package sampletool

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/stats"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

type testRig struct {
	m     *machine.Machine
	alloc *heap.Allocator
	tool  *Tool
}

func newRig(t *testing.T, opts Options) *testRig {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return attachRig(t, m, opts)
}

func attachRig(t *testing.T, m *machine.Machine, opts Options) *testRig {
	t.Helper()
	alloc, err := heap.New(m, safemem.HeapOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	tool, err := Attach(m, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{m: m, alloc: alloc, tool: tool}
}

func (r *testRig) malloc(t *testing.T, size uint64) vm.VAddr {
	t.Helper()
	p, err := r.alloc.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// overflowAll allocates n 64-byte blocks and writes one byte past each
// block's rounded size — into the suffix guard line when the block is
// sampled, into inert padding when it is not. It returns the block
// addresses in allocation order.
func (r *testRig) overflowAll(t *testing.T, n int) []vm.VAddr {
	t.Helper()
	addrs := make([]vm.VAddr, n)
	for i := range addrs {
		addrs[i] = r.malloc(t, 64)
	}
	for _, p := range addrs {
		r.m.Store8(p+64, 0xee)
	}
	return addrs
}

func TestSplitDeterministic(t *testing.T) {
	for _, rate := range []int{1, 8, 64} {
		a := newRig(t, DefaultOptions(rate, 99))
		b := newRig(t, DefaultOptions(rate, 99))
		addrsA := a.overflowAll(t, 200)
		addrsB := b.overflowAll(t, 200)
		if !reflect.DeepEqual(addrsA, addrsB) {
			t.Fatalf("rate %d: allocation sequences diverged", rate)
		}
		for i, p := range addrsA {
			if a.tool.Sampled(p) != b.tool.Sampled(p) {
				t.Fatalf("rate %d: decision for alloc %d differs between equal-seed tools", rate, i)
			}
		}
		if sa, sb := a.tool.Stats(), b.tool.Stats(); sa != sb {
			t.Errorf("rate %d: stats diverged: %+v vs %+v", rate, sa, sb)
		}
		if !reflect.DeepEqual(a.tool.Reports(), b.tool.Reports()) {
			t.Errorf("rate %d: reports diverged", rate)
		}
	}
}

func TestRateOneSamplesEverything(t *testing.T) {
	r := newRig(t, DefaultOptions(1, 7))
	addrs := r.overflowAll(t, 50)
	s := r.tool.Stats()
	if s.Sampled != 50 || s.Unsampled != 0 {
		t.Fatalf("rate-1 split = %d/%d, want 50/0", s.Sampled, s.Unsampled)
	}
	for _, p := range addrs {
		if !r.tool.Sampled(p) {
			t.Fatalf("rate-1 left %#x unsampled", uint64(p))
		}
	}
	if got := len(r.tool.Reports()); got != 50 {
		t.Fatalf("rate-1 overflow sweep reported %d bugs, want 50", got)
	}
}

// TestDetectionProbabilityBinomial is the single-process statistical
// property: across T independent allocations each overflowed once, the
// number of detections is Binomial(T, 1/N). Three fixed seeds per rate;
// the exact two-sided binomial test must not reject at alpha 1e-4. A
// detection here is exactly a sampled allocation — the test also pins that
// every sampled overflow is reported and no unsampled one is.
func TestDetectionProbabilityBinomial(t *testing.T) {
	const trials = 400
	for _, rate := range []int{8, 64} {
		for _, seed := range []uint64{1, 2, 3} {
			r := newRig(t, DefaultOptions(rate, seed))
			r.overflowAll(t, trials)
			s := r.tool.Stats()
			detected := len(r.tool.Reports())
			if uint64(detected) != s.Sampled {
				t.Fatalf("rate %d seed %d: %d reports for %d sampled overflows",
					rate, seed, detected, s.Sampled)
			}
			if pv := stats.BinomTwoSidedP(trials, detected, 1/float64(rate)); pv < 1e-4 {
				t.Errorf("rate %d seed %d: %d/%d detections rejects p=1/%d (p-value %.2g)",
					rate, seed, detected, trials, rate, pv)
			}
			if err := r.tool.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFleetAggregateDetection is the fleet statistical property: k
// independently seeded processes running the same workload detect a given
// bug with probability 1-(1-1/N)^k. Every rig allocates the identical
// sequence, so per-allocation outcomes line up by address; the union over
// fleet prefixes is tested against the analytic aggregate.
func TestFleetAggregateDetection(t *testing.T) {
	const (
		rate   = 8
		trials = 250
		fleet  = 4
	)
	detected := make([]map[vm.VAddr]bool, fleet)
	var addrs []vm.VAddr
	for j := 0; j < fleet; j++ {
		r := newRig(t, DefaultOptions(rate, 1000+uint64(j)))
		seq := r.overflowAll(t, trials)
		if j == 0 {
			addrs = seq
		} else if !reflect.DeepEqual(addrs, seq) {
			t.Fatal("fleet members allocated different sequences")
		}
		detected[j] = make(map[vm.VAddr]bool)
		for _, rep := range r.tool.Reports() {
			detected[j][rep.BufferAddr] = true
		}
	}
	for _, k := range []int{2, 4} {
		hits := 0
		for _, p := range addrs {
			for j := 0; j < k; j++ {
				if detected[j][p] {
					hits++
					break
				}
			}
		}
		analytic := 1 - pow(1-1/float64(rate), k)
		if pv := stats.BinomTwoSidedP(trials, hits, analytic); pv < 1e-4 {
			t.Errorf("fleet %d: %d/%d detections rejects analytic %.3f (p-value %.2g)",
				k, hits, trials, analytic, pv)
		}
	}
}

func pow(x float64, n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= x
	}
	return v
}

// TestUnsampledReuseOfWatchedExtent pins the stale-watch hazard: a sampled
// block is freed (arming a freed-memory watch over its extent), then an
// unsampled allocation reuses that extent. The stale watch must be
// disarmed, or the new tenant's ordinary accesses would report phantom
// use-after-free.
func TestUnsampledReuseOfWatchedExtent(t *testing.T) {
	// Find a seed whose first draw samples and second does not, so the
	// free/realloc pair lands on opposite sides of the split.
	seed := uint64(0)
	for {
		r := rng{state: seed}
		if r.next()%2 == 0 && r.next()%2 != 0 {
			break
		}
		seed++
	}
	r := newRig(t, DefaultOptions(2, seed))
	a := r.malloc(t, 64)
	if !r.tool.Sampled(a) {
		t.Fatal("seed search broke: first allocation unsampled")
	}
	if err := r.alloc.Free(a); err != nil {
		t.Fatal(err)
	}
	b := r.malloc(t, 64)
	if b != a {
		t.Fatalf("allocator no longer reuses the freed extent (%#x vs %#x); rework this test", uint64(b), uint64(a))
	}
	if r.tool.Sampled(b) {
		t.Fatal("seed search broke: second allocation sampled")
	}
	if s := r.tool.Stats(); s.StaleUnwatches == 0 {
		t.Error("reused extent kept its freed-memory watch armed")
	}
	// The new tenant must be able to use its whole extent silently.
	r.m.Store8(b, 0x01)
	r.m.Store8(b+63, 0x02)
	r.m.Store8(b+64, 0x03) // one past: inert padding for an unsampled block
	if got := r.tool.Reports(); len(got) != 0 {
		t.Fatalf("unsampled tenant tripped %d reports: %v", len(got), got)
	}
	if err := r.tool.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndShutdown(t *testing.T) {
	r := newRig(t, DefaultOptions(0, 5)) // rate 0 must normalise to 1
	if got := r.tool.Options().Rate; got != 1 {
		t.Errorf("rate 0 normalised to %d, want 1", got)
	}
	if r.tool.Inner() == nil {
		t.Fatal("no inner tool")
	}
	p := r.malloc(t, 64)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	r.malloc(t, 64)
	r.tool.Shutdown()
	// Shutdown disarms every inner watch; the sampler's bookkeeping must
	// still be coherent afterwards.
	if err := r.tool.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := r.tool.SafeMemStats(); st.Allocs != 2 {
		t.Errorf("inner saw %d allocs, want 2", st.Allocs)
	}
}

func TestTelemetryGauges(t *testing.T) {
	reg := telemetry.NewRegistry("sampletest", telemetry.Config{})
	m, err := machine.New(machine.Config{MemBytes: 16 << 20, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := attachRig(t, m, DefaultOptions(2, 3))
	r.overflowAll(t, 20)
	var buf bytes.Buffer
	if err := m.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"sampled_allocs", "unsampled_allocs", "pool_live", "pool_peak",
		"stale_unwatches", "detections",
	} {
		if !strings.Contains(buf.String(), metric) {
			t.Errorf("telemetry export lacks the %s gauge", metric)
		}
	}
}

func TestCheckInvariantsCatchesCorruptPool(t *testing.T) {
	r := newRig(t, DefaultOptions(8, 1))
	r.malloc(t, 64)
	if err := r.tool.CheckInvariants(); err != nil {
		t.Fatalf("clean tool fails invariants: %v", err)
	}
	r.tool.pool[vm.VAddr(0xdead000)] = struct{}{}
	if err := r.tool.CheckInvariants(); err == nil {
		t.Fatal("pool entry with no live block went unnoticed")
	}
}

func TestCheckInvariantsCatchesWatchedUnsampled(t *testing.T) {
	r := newRig(t, DefaultOptions(1, 1)) // rate 1: everything sampled+watched
	p := r.malloc(t, 64)
	// Forget the pool entry: the block is now live, unsampled by the
	// sampler's account, yet still carries its guard watches.
	delete(r.tool.pool, p)
	if err := r.tool.CheckInvariants(); err == nil {
		t.Fatal("watched-but-unsampled block went unnoticed")
	}
}

// sampleDigest is every simulated observable of a scripted sampler run.
type sampleDigest struct {
	cycles  simtime.Cycles
	stats   Stats
	sm      safemem.Stats
	reports []safemem.BugReport
}

// runJob drives a deterministic mixed workload — allocations, overflows,
// frees with reuse — and returns its digest without shutting the tool
// down, so the machine is left carrying live watches and a non-empty pool.
func runJob(t *testing.T, m *machine.Machine, seed uint64) sampleDigest {
	t.Helper()
	r := attachRig(t, m, DefaultOptions(4, seed))
	var live []vm.VAddr
	for i := 0; i < 60; i++ {
		p := r.malloc(t, uint64(64+(i%3)*64))
		r.m.Store8(p, byte(i))
		if i%4 == 3 {
			r.m.Store8(p+vm.VAddr(64+(i%3)*64), 0xee) // guard if sampled
		}
		live = append(live, p)
		if i%5 == 4 {
			if err := r.alloc.Free(live[0]); err != nil {
				t.Fatal(err)
			}
			live = live[1:]
		}
	}
	if err := r.tool.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return sampleDigest{
		cycles:  r.m.Clock.Now(),
		stats:   r.tool.Stats(),
		sm:      r.tool.SafeMemStats(),
		reports: r.tool.Reports(),
	}
}

// TestRecycleNoSampleInheritance pins the pooling contract at the unit
// level (the campaign-level pin is TestRecycleEquivalence): a machine that
// just ran a sampling job — live pool, armed guard and freed-memory
// watches, no shutdown — must behave bit-for-bit like a fresh machine
// after Recycle.
func TestRecycleNoSampleInheritance(t *testing.T) {
	recycled, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, recycled, 42) // dirty it: watches + pool left behind
	recycled.Recycle()
	got := runJob(t, recycled, 1234)

	fresh, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	want := runJob(t, fresh, 1234)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recycled machine inherits sampling state:\nrecycled: %+v\nfresh:    %+v", got, want)
	}
}
