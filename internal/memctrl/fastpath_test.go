package memctrl

import (
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

// TestFastPathServesCleanReads checks that controller-written lines are
// served by the known-clean bitmap and that the data is unchanged.
func TestFastPathServesCleanReads(t *testing.T) {
	c, _ := newTestController(4096)
	var line [physmem.GroupsPerLine]uint64
	for i := range line {
		line[i] = uint64(i) * 0x0123456789abcdef
	}
	c.WriteLine(256, line)
	for i := 0; i < 3; i++ {
		if got := c.ReadLine(256); got != line {
			t.Fatalf("read %d = %v, want %v", i, got, line)
		}
	}
	if n := c.FastLineReads(); n != 3 {
		t.Fatalf("FastLineReads = %d, want 3", n)
	}
	// A never-written line is not clean: the first read decodes, proves the
	// all-zero groups OK and marks it; the second is fast.
	c.ReadLine(512)
	if n := c.FastLineReads(); n != 3 {
		t.Fatalf("first read of unverified line took the fast path (%d)", n)
	}
	c.ReadLine(512)
	if n := c.FastLineReads(); n != 4 {
		t.Fatalf("verified line not served fast (FastLineReads = %d)", n)
	}
}

// TestFastPathDisabledModes checks the bitmap is bypassed when the fast path
// is switched off and in Disabled mode.
func TestFastPathDisabledModes(t *testing.T) {
	c, _ := newTestController(4096)
	var line [physmem.GroupsPerLine]uint64
	c.WriteLine(0, line)

	c.SetFastPath(false)
	c.ReadLine(0)
	if c.FastLineReads() != 0 {
		t.Fatal("fast path used while disabled")
	}
	c.SetFastPath(true)
	c.SetMode(Disabled)
	c.ReadLine(0)
	if c.FastLineReads() != 0 {
		t.Fatal("fast path used in Disabled mode")
	}
	c.SetMode(CorrectError)
	c.ReadLine(0)
	if c.FastLineReads() != 1 {
		t.Fatalf("fast path not restored (FastLineReads = %d)", c.FastLineReads())
	}
}

// TestFastPathInvalidation drives every stored-bit mutation route the
// simulator has — the WatchMemory scramble, an injected single-bit fault, a
// re-asserting stuck-at cell, and a direct-ECC check-bit poke — and checks
// each one drops the known-clean bit so detection fires on the very first
// access afterwards.
func TestFastPathInvalidation(t *testing.T) {
	const orig = uint64(0x5afe5afe5afe5afe)

	setup := func(t *testing.T) *Controller {
		c, _ := newTestController(4096)
		var line [physmem.GroupsPerLine]uint64
		line[0] = orig
		c.WriteLine(0, line)
		// Prove the line is being served fast before the mutation.
		c.ReadLine(0)
		if c.FastLineReads() != 1 {
			t.Fatal("line not on the fast path before mutation")
		}
		return c
	}

	t.Run("scramble", func(t *testing.T) {
		c := setup(t)
		c.Memory().WriteGroupDataOnly(0, ecc.Scramble(orig))
		c.SetInterruptHandler(func(r FaultReport) {
			c.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
		})
		got := c.ReadLine(0)
		if c.Stats().Uncorrectable != 1 {
			t.Fatalf("scrambled group not detected on first access: %+v", c.Stats())
		}
		if got[0] != orig {
			t.Fatalf("handler repair not picked up: %#x", got[0])
		}
		if c.FastLineReads() != 1 {
			t.Fatal("mutated line was served from the fast path")
		}
	})

	t.Run("injected-fault", func(t *testing.T) {
		c := setup(t)
		c.Memory().FlipDataBit(0, 13)
		if got := c.ReadLine(0); got[0] != orig {
			t.Fatalf("injected bit not corrected: %#x", got[0])
		}
		if c.Stats().CorrectedSingle != 1 {
			t.Fatalf("injected fault not detected on first access: %+v", c.Stats())
		}
	})

	t.Run("stuck-at-cell", func(t *testing.T) {
		// A stuck-at cell re-asserts the same bit after every repair (the
		// fault model replants it through FlipDataBit); each re-assertion
		// must knock the line off the fast path again.
		c := setup(t)
		for round := uint64(1); round <= 3; round++ {
			c.Memory().FlipDataBit(0, 7) // cell re-asserts
			if got := c.ReadLine(0); got[0] != orig {
				t.Fatalf("round %d: not corrected: %#x", round, got[0])
			}
			if c.Stats().CorrectedSingle != round {
				t.Fatalf("round %d: re-asserted fault hidden by fast path: %+v", round, c.Stats())
			}
			// The correcting read repaired DRAM but could not mark the line
			// clean; this verify pass does, putting it back on the fast path.
			c.ReadLine(0)
		}
	})

	t.Run("check-bit-fault", func(t *testing.T) {
		c := setup(t)
		c.Memory().FlipCheckBit(0, 5)
		if got := c.ReadLine(0); got[0] != orig {
			t.Fatalf("data disturbed by check-bit fault: %#x", got[0])
		}
		if c.Stats().CorrectedSingle != 1 {
			t.Fatalf("check-bit fault not detected on first access: %+v", c.Stats())
		}
	})

	t.Run("direct-ecc-write", func(t *testing.T) {
		c := setup(t)
		c.EnableDirectECCAccess()
		// Arm a watchpoint the Section 2.2.3 way: invert the stored check
		// bits. The inversion differs in 8 bits — uncorrectable.
		c.WriteCheckBits(0, c.ReadCheckBits(0)^0xff)
		c.SetInterruptHandler(func(r FaultReport) {
			c.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
		})
		c.ReadLine(0)
		if c.Stats().Uncorrectable != 1 {
			t.Fatalf("direct-ECC poke not detected on first access: %+v", c.Stats())
		}
	})
}

// fastPathScenario drives one controller through every read/write/fault/
// scrub flavour the simulator exercises and returns a digest of all data the
// CPU observed. TestFastPathEquivalence runs it with the fast path on and
// off and requires identical stats, cycle charges and observed data.
func fastPathScenario(c *Controller, clock *simtime.Clock) (digest uint64) {
	mix := func(line [physmem.GroupsPerLine]uint64) {
		for _, w := range line {
			digest = digest*0x9e3779b97f4a7c15 + w
		}
	}
	const repaired = uint64(0x0ddba11c0ffee000)
	c.SetInterruptHandler(func(r FaultReport) {
		c.Memory().WriteGroupRaw(r.Group, repaired, uint8(ecc.Encode(repaired)))
	})

	// Clean traffic over several lines, re-read many times.
	for li := physmem.Addr(0); li < 8; li++ {
		var line [physmem.GroupsPerLine]uint64
		for i := range line {
			line[i] = uint64(li)<<32 | uint64(i)
		}
		c.WriteLine(li*physmem.LineBytes, line)
	}
	for pass := 0; pass < 4; pass++ {
		for li := physmem.Addr(0); li < 8; li++ {
			mix(c.ReadLine(li * physmem.LineBytes))
		}
	}

	// Single-bit data and check faults, read twice (correct, then clean).
	c.Memory().FlipDataBit(2*physmem.LineBytes, 33)
	c.Memory().FlipCheckBit(3*physmem.LineBytes+8, 2)
	mix(c.ReadLine(2 * physmem.LineBytes))
	mix(c.ReadLine(2 * physmem.LineBytes))
	mix(c.ReadLine(3 * physmem.LineBytes))
	mix(c.ReadLine(3 * physmem.LineBytes))

	// Scramble → uncorrectable → handler repair, then re-read.
	c.Memory().WriteGroupDataOnly(4*physmem.LineBytes, ecc.Scramble(4<<32))
	mix(c.ReadLine(4 * physmem.LineBytes))
	mix(c.ReadLine(4 * physmem.LineBytes))

	// CheckOnly leaves the error in DRAM: every read reports it again.
	c.SetMode(CheckOnly)
	c.Memory().FlipDataBit(5*physmem.LineBytes, 1)
	mix(c.ReadLine(5 * physmem.LineBytes))
	mix(c.ReadLine(5 * physmem.LineBytes))
	c.SetMode(CorrectError)
	mix(c.ReadLine(5 * physmem.LineBytes))

	// Disabled-mode write (stale check bits) and read-back.
	c.SetMode(Disabled)
	var scrambled [physmem.GroupsPerLine]uint64
	scrambled[0] = 0xbbbb
	c.WriteLine(6*physmem.LineBytes, scrambled)
	mix(c.ReadLine(6 * physmem.LineBytes))
	c.SetMode(CorrectError)
	mix(c.ReadLine(6 * physmem.LineBytes)) // detects, handler repairs

	// A scrub pass over everything, twice (second pass is all-clean).
	c.SetMode(CorrectAndScrub)
	c.Memory().FlipDataBit(7*physmem.LineBytes, 60)
	c.ScrubAll()
	c.ScrubAll()
	mix(c.ReadLine(7 * physmem.LineBytes))
	return digest
}

// TestFastPathEquivalence pins the fast path's contract: with the clean-line
// bitmap on or off, every stat, every cycle charge and every word the CPU
// reads are identical — the optimisation is wall-clock-only.
func TestFastPathEquivalence(t *testing.T) {
	run := func(fast bool) (Stats, simtime.Cycles, uint64, uint64) {
		c, clock := newTestController(4096)
		c.SetFastPath(fast)
		digest := fastPathScenario(c, clock)
		return c.Stats(), clock.Now(), digest, c.FastLineReads()
	}
	fastStats, fastCycles, fastDigest, fastReads := run(true)
	slowStats, slowCycles, slowDigest, slowReads := run(false)

	if fastStats != slowStats {
		t.Errorf("stats diverge:\n fast: %+v\n slow: %+v", fastStats, slowStats)
	}
	if fastCycles != slowCycles {
		t.Errorf("cycle charges diverge: fast %d, slow %d", fastCycles, slowCycles)
	}
	if fastDigest != slowDigest {
		t.Errorf("observed data diverges: fast %#x, slow %#x", fastDigest, slowDigest)
	}
	if slowReads != 0 {
		t.Errorf("disabled fast path served %d reads", slowReads)
	}
	if fastReads == 0 {
		t.Error("scenario never exercised the fast path")
	}
}
