package memctrl

import (
	"testing"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

func newTestController(size uint64) (*Controller, *simtime.Clock) {
	clock := &simtime.Clock{}
	mem := physmem.MustNew(size)
	return New(mem, clock), clock
}

func TestWriteReadRoundTrip(t *testing.T) {
	c, _ := newTestController(4096)
	var line [physmem.GroupsPerLine]uint64
	for i := range line {
		line[i] = uint64(i) * 0x1111111111111111
	}
	c.WriteLine(128, line)
	got := c.ReadLine(128)
	if got != line {
		t.Fatalf("ReadLine = %v, want %v", got, line)
	}
	st := c.Stats()
	if st.LineReads != 1 || st.LineWrites != 1 {
		t.Fatalf("stats = %+v, want 1 read / 1 write", st)
	}
	if st.CorrectedSingle != 0 || st.Uncorrectable != 0 {
		t.Fatalf("clean round trip reported errors: %+v", st)
	}
}

func TestUnalignedLinePanics(t *testing.T) {
	c, _ := newTestController(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("ReadLine at unaligned address did not panic")
		}
	}()
	c.ReadLine(8)
}

func TestSingleBitErrorCorrectedOnRead(t *testing.T) {
	c, _ := newTestController(4096)
	var line [physmem.GroupsPerLine]uint64
	line[3] = 0xdeadbeefcafef00d
	c.WriteLine(0, line)

	// Inject a hardware single-bit error into group 3.
	c.Memory().FlipDataBit(3*physmem.GroupBytes, 17)

	got := c.ReadLine(0)
	if got != line {
		t.Fatalf("single-bit error not corrected: %v", got)
	}
	if c.Stats().CorrectedSingle != 1 {
		t.Fatalf("CorrectedSingle = %d, want 1", c.Stats().CorrectedSingle)
	}
	// Correct-Error mode repairs DRAM, so a second read is clean.
	c.ReadLine(0)
	if c.Stats().CorrectedSingle != 1 {
		t.Fatal("correction was not written back to DRAM")
	}
}

func TestCheckOnlyModeDoesNotRepair(t *testing.T) {
	c, _ := newTestController(4096)
	c.SetMode(CheckOnly)
	var line [physmem.GroupsPerLine]uint64
	line[0] = 42
	c.WriteLine(0, line)
	c.Memory().FlipDataBit(0, 5)

	c.ReadLine(0)
	c.ReadLine(0)
	if got := c.Stats().CorrectedSingle; got != 2 {
		t.Fatalf("CheckOnly reported %d single-bit errors, want 2 (no repair)", got)
	}
}

func TestMultiBitErrorRaisesInterrupt(t *testing.T) {
	c, _ := newTestController(4096)
	var reports []FaultReport
	c.SetInterruptHandler(func(r FaultReport) { reports = append(reports, r) })

	var line [physmem.GroupsPerLine]uint64
	line[2] = 0x123456789abcdef0
	c.WriteLine(64, line)
	// Two flipped bits in the same group: uncorrectable.
	ga := physmem.Addr(64 + 2*physmem.GroupBytes)
	c.Memory().FlipDataBit(ga, 1)
	c.Memory().FlipDataBit(ga, 40)

	c.ReadLine(64)
	if len(reports) != 1 {
		t.Fatalf("got %d interrupts, want 1", len(reports))
	}
	r := reports[0]
	if r.Group != ga || r.Line != 64 || r.DuringScrub {
		t.Fatalf("bad report: %+v", r)
	}
	if c.Stats().Uncorrectable != 1 {
		t.Fatalf("Uncorrectable = %d, want 1", c.Stats().Uncorrectable)
	}
}

func TestHandlerRepairIsPickedUp(t *testing.T) {
	// When the interrupt handler repairs the faulting group (as SafeMem's
	// DisableWatchMemory does), the read must return the repaired data.
	c, _ := newTestController(4096)
	orig := uint64(0xfeedfacefeedface)
	ga := physmem.Addr(0)
	c.SetInterruptHandler(func(r FaultReport) {
		c.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
	})

	var line [physmem.GroupsPerLine]uint64
	line[0] = orig
	c.WriteLine(0, line)
	// Scramble group 0 the way WatchMemory does: new data, stale check bits.
	c.Memory().WriteGroupDataOnly(ga, ecc.Scramble(orig))

	got := c.ReadLine(0)
	if got[0] != orig {
		t.Fatalf("read after handler repair = %#x, want %#x", got[0], orig)
	}
}

func TestDisabledModeBypassesECC(t *testing.T) {
	c, _ := newTestController(4096)
	var line [physmem.GroupsPerLine]uint64
	line[0] = 0xaaaa
	c.WriteLine(0, line)

	c.SetMode(Disabled)
	line[0] = 0xbbbb
	c.WriteLine(0, line) // stale check bits remain

	if got := c.ReadLine(0); got[0] != 0xbbbb {
		t.Fatalf("disabled-mode read = %#x, want %#x", got[0], 0xbbbb)
	}
	fired := false
	c.SetInterruptHandler(func(FaultReport) { fired = true })
	c.SetMode(CorrectError)
	c.ReadLine(0)
	// 0xaaaa -> 0xbbbb differs in bits 0,1,4,5,8,9,12,13 — even weight, so
	// SECDED must flag it.
	if !fired {
		t.Fatal("re-enabled ECC did not detect the stale check bits")
	}
}

func TestBusLock(t *testing.T) {
	c, _ := newTestController(4096)
	c.LockBus()
	if !c.BusLocked() {
		t.Fatal("bus not locked")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double lock did not panic")
			}
		}()
		c.LockBus()
	}()
	c.UnlockBus()
	if c.BusLocked() {
		t.Fatal("bus still locked")
	}
}

func TestScrubRepairsLatentErrors(t *testing.T) {
	c, _ := newTestController(4096)
	c.SetMode(CorrectAndScrub)
	var line [physmem.GroupsPerLine]uint64
	line[5] = 0x0102030405060708
	c.WriteLine(1024, line)
	c.Memory().FlipDataBit(1024+5*physmem.GroupBytes, 60)

	c.ScrubAll()
	st := c.Stats()
	if st.ScrubbedLines != c.Memory().Lines() {
		t.Fatalf("scrubbed %d lines, want %d", st.ScrubbedLines, c.Memory().Lines())
	}
	if st.ScrubCorrected != 1 {
		t.Fatalf("ScrubCorrected = %d, want 1", st.ScrubCorrected)
	}
	raw, _ := c.Memory().ReadGroupRaw(1024 + 5*physmem.GroupBytes)
	if raw != line[5] {
		t.Fatal("scrub did not repair DRAM")
	}
}

func TestScrubRespectsBusLockAndMode(t *testing.T) {
	c, _ := newTestController(4096)
	if n, skipped := c.ScrubStep(4); n != 0 || skipped != 0 {
		t.Fatalf("scrub ran in CorrectError mode: n=%d skipped=%d", n, skipped)
	}
	c.SetMode(CorrectAndScrub)
	c.LockBus()
	if n, skipped := c.ScrubStep(4); n != 0 || skipped != 4 {
		t.Fatalf("scrub under bus lock: n=%d skipped=%d, want 0, 4", n, skipped)
	}
	if st := c.Stats(); st.ScrubSkipped != 4 {
		t.Fatalf("ScrubSkipped = %d, want 4", st.ScrubSkipped)
	}
	c.UnlockBus()
	if n, skipped := c.ScrubStep(4); n != 4 || skipped != 0 {
		t.Fatalf("scrub step: n=%d skipped=%d, want 4, 0", n, skipped)
	}
}

func TestAddFaultObserverCoexistsWithSetSlot(t *testing.T) {
	c, _ := newTestController(4096)
	var slot, extra1, extra2 int
	c.SetFaultObserver(func(physmem.Addr, bool) { slot++ })
	c.AddFaultObserver(func(physmem.Addr, bool) { extra1++ })
	c.AddFaultObserver(func(physmem.Addr, bool) { extra2++ })
	var line [physmem.GroupsPerLine]uint64
	line[0] = 0xdead
	c.WriteLine(0, line)
	c.Memory().FlipDataBit(0, 3)
	c.ReadLine(0)
	if slot != 1 || extra1 != 1 || extra2 != 1 {
		t.Fatalf("observer counts slot=%d extra1=%d extra2=%d, want 1 each", slot, extra1, extra2)
	}
}

func TestScrubWouldTripWatchedLine(t *testing.T) {
	// Demonstrates why the kernel must unwatch regions before scrubbing: a
	// scrub pass reads scrambled lines and raises spurious faults.
	c, _ := newTestController(4096)
	orig := uint64(0x1111222233334444)
	var line [physmem.GroupsPerLine]uint64
	line[0] = orig
	c.WriteLine(0, line)
	c.Memory().WriteGroupDataOnly(0, ecc.Scramble(orig))

	var scrubFaults int
	c.SetInterruptHandler(func(r FaultReport) {
		if r.DuringScrub {
			scrubFaults++
		}
		// Repair so the scrub can continue.
		c.Memory().WriteGroupRaw(r.Group, orig, uint8(ecc.Encode(orig)))
	})
	c.SetMode(CorrectAndScrub)
	c.ScrubAll()
	if scrubFaults != 1 {
		t.Fatalf("scrub faults = %d, want 1", scrubFaults)
	}
}

func TestScrubCursorWraps(t *testing.T) {
	c, _ := newTestController(256) // 4 lines
	c.SetMode(CorrectAndScrub)
	c.ScrubStep(3)
	if c.ScrubCursor() != 192 {
		t.Fatalf("cursor = %d, want 192", c.ScrubCursor())
	}
	c.ScrubStep(2)
	if c.ScrubCursor() != 64 {
		t.Fatalf("cursor after wrap = %d, want 64", c.ScrubCursor())
	}
}

func TestClockCharges(t *testing.T) {
	c, clock := newTestController(4096)
	before := clock.Now()
	c.SetMode(CheckOnly)
	if clock.Now()-before != simtime.CostECCModeSwitch {
		t.Fatal("SetMode did not charge the mode-switch cost")
	}
	before = clock.Now()
	c.LockBus()
	c.UnlockBus()
	if clock.Now()-before != simtime.CostBusLock+simtime.CostBusUnlock {
		t.Fatal("bus lock/unlock did not charge costs")
	}
}

func BenchmarkReadLineClean(b *testing.B) {
	clock := &simtime.Clock{}
	c := New(physmem.MustNew(1<<20), clock)
	var line [physmem.GroupsPerLine]uint64
	c.WriteLine(0, line)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadLine(0)
	}
}

func BenchmarkScrubPass(b *testing.B) {
	clock := &simtime.Clock{}
	c := New(physmem.MustNew(1<<20), clock)
	c.SetMode(CorrectAndScrub)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScrubStep(64)
	}
}

func TestModeStringsAndAccessors(t *testing.T) {
	names := map[Mode]string{
		Disabled:        "Disabled",
		CheckOnly:       "Check-Only",
		CorrectError:    "Correct-Error",
		CorrectAndScrub: "Correct-and-Scrub",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d -> %q, want %q", m, m.String(), want)
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode has empty name")
	}
	c, _ := newTestController(4096)
	if c.Mode() != CorrectError {
		t.Errorf("default mode = %v", c.Mode())
	}
	c.SetMode(CheckOnly)
	if c.Mode() != CheckOnly {
		t.Error("Mode() does not track SetMode")
	}
}

func TestResetStats(t *testing.T) {
	c, _ := newTestController(4096)
	c.ReadLine(0)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", c.Stats())
	}
}

func TestDirectCheckBitAccess(t *testing.T) {
	c, clock := newTestController(4096)
	if c.Capabilities().DirectECCAccess {
		t.Fatal("capability on by default")
	}
	c.EnableDirectECCAccess()
	if !c.Capabilities().DirectECCAccess {
		t.Fatal("capability not enabled")
	}
	var line [physmem.GroupsPerLine]uint64
	line[0] = 0x1234
	c.WriteLine(0, line)

	before := clock.Now()
	check := c.ReadCheckBits(0)
	if check != uint8(ecc.Encode(0x1234)) {
		t.Fatalf("check = %#x", check)
	}
	c.WriteCheckBits(0, check^0xff)
	if got := c.ReadCheckBits(0); got != check^0xff {
		t.Fatalf("written check = %#x", got)
	}
	// Data untouched by check-bit writes.
	if raw, _ := c.Memory().ReadGroupRaw(0); raw != 0x1234 {
		t.Fatalf("data = %#x", raw)
	}
	if clock.Now()-before != 3*simtime.CostDirectECCWrite {
		t.Fatalf("direct access cost = %v", clock.Now()-before)
	}
	// ReadCheckBits panics without the capability.
	c2, _ := newTestController(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("ReadCheckBits without capability did not panic")
		}
	}()
	c2.ReadCheckBits(0)
}

func TestPeekLineRawAndUnaligned(t *testing.T) {
	c, _ := newTestController(4096)
	var line [physmem.GroupsPerLine]uint64
	line[7] = 0xabc
	c.WriteLine(64, line)
	// Scramble; Peek must return raw bits without faulting.
	fired := false
	c.SetInterruptHandler(func(FaultReport) { fired = true })
	c.Memory().WriteGroupDataOnly(64, ecc.Scramble(0))
	got := c.PeekLine(64)
	if got[7] != 0xabc || got[0] != ecc.Scramble(0) {
		t.Fatalf("PeekLine = %v", got)
	}
	if fired {
		t.Fatal("PeekLine ran the ECC path")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned PeekLine did not panic")
		}
	}()
	c.PeekLine(65)
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	c, _ := newTestController(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("unlock of unlocked bus did not panic")
		}
	}()
	c.UnlockBus()
}

func TestWriteLineUnalignedPanics(t *testing.T) {
	c, _ := newTestController(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned WriteLine did not panic")
		}
	}()
	var line [physmem.GroupsPerLine]uint64
	c.WriteLine(32, line)
}
