package memctrl

import (
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Memory scrubbing (Section 2.2.2, "Dealing with ECC Memory Scrubbing"):
// in Correct-and-Scrub mode the controller periodically walks DRAM, reading
// every line through the ECC path so latent single-bit errors are repaired
// before they can pair up into uncorrectable ones. Scrubbing reads watched
// lines too, which would raise spurious ECC faults — so the kernel
// coordinates with SafeMem to unwatch regions for the duration of a scrub
// pass (see kernel.CoordinatedScrub).

// costScrubLine is the charge for scrubbing one line. Scrubbing runs in idle
// periods on real hardware; the simulator charges it to the clock so that
// experiments enabling scrubbing see its (small) cost.
const costScrubLine simtime.Cycles = 60

// ScrubStep visits the next n lines in physical-address order, wrapping at
// the end of memory, and scrubs each through the ECC read path. It is a
// no-op unless the mode is CorrectAndScrub. Scrubbing is background traffic
// and must respect the bus lock: with the bus locked, nothing is scrubbed
// and the full n is reported as skipped so the caller (the kernel's scrub
// daemon) can retry those lines later. Lines rejected by the scrub filter
// are also skipped — their cursor slot is consumed but no ECC read happens.
func (c *Controller) ScrubStep(n int) (scrubbed, skipped int) {
	if c.mode != CorrectAndScrub {
		return 0, 0
	}
	if c.locked {
		c.stats.ScrubSkipped += uint64(n)
		return 0, n
	}
	lines := c.mem.Lines()
	if lines == 0 {
		return 0, 0
	}
	sp := c.tr.Begin("memctrl", "scrub", telemetry.KV("lines", uint64(n)))
	defer sp.End()
	for v := 0; v < n; v++ {
		a := c.scrubCursor
		c.scrubCursor += physmem.LineBytes
		if uint64(c.scrubCursor) >= c.mem.Size() {
			c.scrubCursor = 0
		}
		if c.scrubFilter != nil && !c.scrubFilter(a) {
			c.stats.ScrubSkipped++
			skipped++
			continue
		}
		// Known-clean lines need no decode: every group would return ecc.OK
		// with no stats or cycle effects, so the scrub visit reduces to its
		// fixed per-line charge. Otherwise run the full ECC pass and, when it
		// finds nothing, remember the line as clean.
		if c.fastPath && c.lineClean(a) {
			c.fastLineReads++
		} else {
			errsBefore := c.stats.CorrectedSingle + c.stats.Uncorrectable
			for i := 0; i < physmem.GroupsPerLine; i++ {
				c.readGroup(a+physmem.Addr(i*physmem.GroupBytes), true)
			}
			if c.stats.CorrectedSingle+c.stats.Uncorrectable == errsBefore {
				c.markClean(a)
			}
		}
		c.stats.ScrubbedLines++
		c.clock.Advance(costScrubLine)
		scrubbed++
	}
	return scrubbed, skipped
}

// ScrubAll performs one full scrub pass over all of DRAM.
func (c *Controller) ScrubAll() {
	c.ScrubStep(int(c.mem.Lines()))
}

// ScrubCursor returns the physical address the scrubber will visit next.
func (c *Controller) ScrubCursor() uint64 { return uint64(c.scrubCursor) }
