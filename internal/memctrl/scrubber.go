package memctrl

import (
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Memory scrubbing (Section 2.2.2, "Dealing with ECC Memory Scrubbing"):
// in Correct-and-Scrub mode the controller periodically walks DRAM, reading
// every line through the ECC path so latent single-bit errors are repaired
// before they can pair up into uncorrectable ones. Scrubbing reads watched
// lines too, which would raise spurious ECC faults — so the kernel
// coordinates with SafeMem to unwatch regions for the duration of a scrub
// pass (see kernel.CoordinatedScrub).

// costScrubLine is the charge for scrubbing one line. Scrubbing runs in idle
// periods on real hardware; the simulator charges it to the clock so that
// experiments enabling scrubbing see its (small) cost.
const costScrubLine simtime.Cycles = 60

// ScrubStep scrubs the next n lines in physical-address order, wrapping at
// the end of memory. It is a no-op unless the mode is CorrectAndScrub or the
// bus is locked (scrubbing is background traffic and must respect the lock).
// It returns the number of lines actually scrubbed.
func (c *Controller) ScrubStep(n int) int {
	if c.mode != CorrectAndScrub || c.locked {
		return 0
	}
	lines := c.mem.Lines()
	if lines == 0 {
		return 0
	}
	sp := c.tr.Begin("memctrl", "scrub", telemetry.KV("lines", uint64(n)))
	defer sp.End()
	done := 0
	for ; done < n; done++ {
		a := c.scrubCursor
		for i := 0; i < 8; i++ {
			c.readGroup(a+physmem.Addr(i*physmem.GroupBytes), true)
		}
		c.stats.ScrubbedLines++
		c.clock.Advance(costScrubLine)
		c.scrubCursor += 64
		if uint64(c.scrubCursor) >= c.mem.Size() {
			c.scrubCursor = 0
		}
	}
	return done
}

// ScrubAll performs one full scrub pass over all of DRAM.
func (c *Controller) ScrubAll() {
	c.ScrubStep(int(c.mem.Lines()))
}

// ScrubCursor returns the physical address the scrubber will visit next.
func (c *Controller) ScrubCursor() uint64 { return uint64(c.scrubCursor) }
