// Package memctrl models a commodity ECC memory controller (the paper's
// Intel E7500 chipset, Section 2.1): it sits between the CPU cache and DRAM,
// generates check bits on every write, verifies them on every read, corrects
// single-bit errors transparently, and reports multi-bit errors to the
// processor with an interrupt (Figure 1).
//
// Like real off-the-shelf controllers — and unlike the research parts used
// by fine-grained DSM systems — it exposes only a narrow software interface:
// software can switch the ECC mode, lock the bus, and enable scrubbing, but
// it can never read or write the stored check bits directly. SafeMem's
// scramble trick (write data with ECC disabled) exists precisely because of
// this restriction.
package memctrl

import (
	"fmt"

	"safemem/internal/ecc"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// Mode selects the controller's ECC behaviour (Section 2.1).
type Mode int

const (
	// Disabled turns off all ECC functionality: reads return raw data and
	// writes do not update the stored check bits.
	Disabled Mode = iota
	// CheckOnly detects and reports single- and multi-bit errors but does
	// not correct them.
	CheckOnly
	// CorrectError detects both and corrects single-bit errors on the fly.
	CorrectError
	// CorrectAndScrub additionally scans memory periodically to find and
	// repair latent errors.
	CorrectAndScrub
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Disabled:
		return "Disabled"
	case CheckOnly:
		return "Check-Only"
	case CorrectError:
		return "Correct-Error"
	case CorrectAndScrub:
		return "Correct-and-Scrub"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// FaultReport describes an uncorrectable ECC error delivered to the
// processor. The report identifies the faulting ECC group and the raw bits
// observed; software (SafeMem's handler) decides whether this is a watched-
// location access fault or a genuine hardware error.
type FaultReport struct {
	// Group is the physical address of the faulting ECC group.
	Group physmem.Addr
	// Line is the physical address of the containing cache line.
	Line physmem.Addr
	// Data and Check are the raw bits read from DRAM.
	Data  uint64
	Check uint8
	// DuringScrub is true when the error was found by the scrubber rather
	// than by a demand read.
	DuringScrub bool
}

// InterruptHandler receives uncorrectable-error interrupts. The handler may
// repair the faulting group (e.g. SafeMem restoring original data); the
// controller re-reads the group after the handler returns.
type InterruptHandler func(FaultReport)

// FaultObserver is notified of every ECC error event the controller sees —
// corrected single-bit errors and uncorrectable reports alike — with the
// group's physical address. The fault injector uses it to measure detection
// latency (cycles from planting a fault to the controller noticing it).
// Observers are measurement probes: they charge no cycles.
type FaultObserver func(group physmem.Addr, uncorrectable bool)

// Stats counts controller activity.
type Stats struct {
	LineReads       uint64
	LineWrites      uint64
	CorrectedSingle uint64 // single-bit errors corrected (or reported in CheckOnly)
	Uncorrectable   uint64 // multi-bit errors reported
	ScrubbedLines   uint64
	ScrubCorrected  uint64
	ScrubSkipped    uint64 // scrub lines deferred because the bus was locked
}

// Capabilities describes optional controller features beyond the narrow
// commodity interface. DirectECCAccess is the generalised interface the
// paper proposes in Section 2.2.3: the OS may read and write the stored
// check bits of any group directly, so watchpoints need no bus lock,
// no ECC-disable window and no data scrambling.
type Capabilities struct {
	DirectECCAccess bool
}

// Controller is the simulated ECC memory controller.
type Controller struct {
	mem       *physmem.Memory
	clock     *simtime.Clock
	mode      Mode
	handler   InterruptHandler
	observer  FaultObserver
	observers []FaultObserver
	locked    bool
	caps      Capabilities
	stats     Stats

	tr      *telemetry.Tracer
	busSpan telemetry.Span

	// clean is the known-clean line bitmap, one bit per 64-byte line: a set
	// bit asserts that every ECC group of the line decodes ecc.OK against
	// its stored check bits, so ReadLine may return the raw words without
	// running 8 decodes. Bits are set only after the controller itself
	// verified or freshly encoded the whole line, and cleared by the physmem
	// mutation hook on *any* stored-bit write — including the fault
	// injector, the DRAM fault model, VM swap traffic and direct-ECC pokes —
	// so a planted fault can never hide behind the fast path.
	clean []uint64
	// fastPath gates the bitmap; SetFastPath(false) restores the literal
	// decode-everything read path (for differential tests).
	fastPath bool
	// fastLineReads counts ReadLine calls served by the bitmap. Diagnostic
	// only: deliberately outside Stats so run results and JSON summaries
	// stay byte-identical to the pre-fast-path simulator.
	fastLineReads uint64

	// scrubCursor is the next line the incremental scrubber will visit.
	scrubCursor physmem.Addr
	// scrubFilter, when set, is consulted per line during scrub steps; lines
	// it rejects are skipped (and counted) instead of read through ECC. The
	// kernel uses it to keep the background scrub daemon off watched lines.
	scrubFilter func(line physmem.Addr) bool
}

// New creates a controller over mem, charging costs to clock. The initial
// mode is CorrectError, the common server default.
func New(mem *physmem.Memory, clock *simtime.Clock) *Controller {
	c := &Controller{
		mem:      mem,
		clock:    clock,
		mode:     CorrectError,
		clean:    make([]uint64, (mem.Lines()+63)/64),
		fastPath: true,
	}
	mem.SetMutateHook(c.invalidateClean)
	return c
}

// Recycle resets the controller to its freshly-created state: default mode,
// no handler or observers, no capabilities, empty stats, known-clean bitmap
// dropped. The physmem mutation hook stays installed (it is re-pointed at
// the same controller). Part of the pooled machine reset path.
func (c *Controller) Recycle() {
	c.mode = CorrectError
	c.handler = nil
	c.observer = nil
	c.observers = nil
	c.locked = false
	c.caps = Capabilities{}
	c.stats = Stats{}
	c.busSpan = telemetry.Span{}
	for i := range c.clean {
		c.clean[i] = 0
	}
	c.fastPath = true
	c.fastLineReads = 0
	c.scrubCursor = 0
	c.scrubFilter = nil
}

// lineIndex converts a line address to its bitmap index.
func lineIndex(line physmem.Addr) uint64 { return uint64(line) / physmem.LineBytes }

// invalidateClean drops the known-clean bit of a line; it is the physmem
// mutation hook, fired on every stored-bit write from any component.
func (c *Controller) invalidateClean(line physmem.Addr) {
	idx := lineIndex(line)
	c.clean[idx/64] &^= 1 << (idx % 64)
}

// markClean records that every group of line currently decodes ecc.OK.
func (c *Controller) markClean(line physmem.Addr) {
	idx := lineIndex(line)
	c.clean[idx/64] |= 1 << (idx % 64)
}

// lineClean reports whether the line holds the known-clean bit. Addresses
// outside DRAM report false, so the slow path raises physmem's usual
// out-of-range panic.
func (c *Controller) lineClean(line physmem.Addr) bool {
	idx := lineIndex(line)
	return idx/64 < uint64(len(c.clean)) && c.clean[idx/64]&(1<<(idx%64)) != 0
}

// SetFastPath enables or disables the known-clean ReadLine fast path. It is
// on by default; turning it off forces every read through the full decode
// loop. Stats, cycle charges and returned data are identical either way —
// pinned by TestFastPathEquivalence.
func (c *Controller) SetFastPath(enabled bool) { c.fastPath = enabled }

// FastLineReads returns the number of ReadLine calls that skipped decoding
// via the known-clean bitmap (diagnostic; not part of Stats).
func (c *Controller) FastLineReads() uint64 { return c.fastLineReads }

// Memory returns the underlying DRAM (used by the fault injector in tests).
func (c *Controller) Memory() *physmem.Memory { return c.mem }

// Capabilities returns the controller's optional feature set.
func (c *Controller) Capabilities() Capabilities { return c.caps }

// EnableDirectECCAccess turns on the Section 2.2.3 generalised interface.
// Real E7500-class chipsets do not have it; the simulator offers it so the
// paper's proposed hardware extension can be evaluated (see
// BenchmarkExtensionDirectECC).
func (c *Controller) EnableDirectECCAccess() { c.caps.DirectECCAccess = true }

// ReadCheckBits returns the stored check bits of the ECC group at a.
// Requires DirectECCAccess.
func (c *Controller) ReadCheckBits(a physmem.Addr) uint8 {
	if !c.caps.DirectECCAccess {
		panic("memctrl: ReadCheckBits without DirectECCAccess capability")
	}
	c.clock.Advance(simtime.CostDirectECCWrite)
	_, check := c.mem.ReadGroupRaw(a.GroupAddr())
	return check
}

// WriteCheckBits overwrites the stored check bits of the ECC group at a,
// leaving the data untouched. Requires DirectECCAccess. This is the
// one-register-write watchpoint arm/disarm of the paper's proposed
// interface.
func (c *Controller) WriteCheckBits(a physmem.Addr, check uint8) {
	if !c.caps.DirectECCAccess {
		panic("memctrl: WriteCheckBits without DirectECCAccess capability")
	}
	c.clock.Advance(simtime.CostDirectECCWrite)
	data, _ := c.mem.ReadGroupRaw(a.GroupAddr())
	c.mem.WriteGroupRaw(a.GroupAddr(), data, check)
}

// Mode returns the current ECC mode.
func (c *Controller) Mode() Mode { return c.mode }

// SetMode switches the ECC mode, charging the chipset register-write cost.
func (c *Controller) SetMode(m Mode) {
	c.clock.Advance(simtime.CostECCModeSwitch)
	c.mode = m
}

// SetInterruptHandler installs the processor's ECC machine-check handler
// (in the simulator, the kernel's entry point).
func (c *Controller) SetInterruptHandler(h InterruptHandler) { c.handler = h }

// SetFaultObserver installs a measurement probe notified on every ECC error
// event (see FaultObserver). There is one such slot; setting it again
// replaces the previous probe. Components that must coexist with it (the
// kernel's per-line health tracker) use AddFaultObserver instead.
func (c *Controller) SetFaultObserver(fn FaultObserver) { c.observer = fn }

// AddFaultObserver appends an additional fault observer. Observers run in
// registration order, after the SetFaultObserver slot.
func (c *Controller) AddFaultObserver(fn FaultObserver) {
	c.observers = append(c.observers, fn)
}

// SetScrubFilter installs a per-line predicate for background scrub steps:
// lines for which fn returns false are skipped rather than read through the
// ECC path. Pass nil to clear. The kernel's scrub daemon uses this to avoid
// tripping watched (deliberately scrambled) lines — those self-verify via
// signature checks, so skipping them loses no coverage.
func (c *Controller) SetScrubFilter(fn func(line physmem.Addr) bool) {
	c.scrubFilter = fn
}

// notifyObservers fans an ECC event out to every registered probe.
func (c *Controller) notifyObservers(group physmem.Addr, uncorrectable bool) {
	if c.observer != nil {
		c.observer(group, uncorrectable)
	}
	for _, fn := range c.observers {
		fn(group, uncorrectable)
	}
}

// RegisterTelemetry registers the controller's counters with the registry
// and adopts its tracer for bus-lock, scrub and fault-delivery spans.
func (c *Controller) RegisterTelemetry(reg *telemetry.Registry) {
	c.tr = reg.Tracer()
	reg.RegisterSource("memctrl", func(emit func(string, float64)) {
		s := c.stats
		emit("line_reads", float64(s.LineReads))
		emit("line_writes", float64(s.LineWrites))
		emit("corrected_single", float64(s.CorrectedSingle))
		emit("uncorrectable", float64(s.Uncorrectable))
		emit("scrubbed_lines", float64(s.ScrubbedLines))
		emit("scrub_corrected", float64(s.ScrubCorrected))
		emit("scrub_skipped", float64(s.ScrubSkipped))
	})
}

// LockBus locks the memory bus. While locked, background traffic (the
// scrubber — the simulator's stand-in for other processors and DMA) is
// blocked. WatchMemory holds the lock across its disable-scramble-enable
// window (Section 2.2.2).
func (c *Controller) LockBus() {
	if c.locked {
		panic("memctrl: bus already locked")
	}
	c.busSpan = c.tr.Begin("memctrl", "bus-locked")
	c.clock.Advance(simtime.CostBusLock)
	c.locked = true
}

// UnlockBus releases the memory bus.
func (c *Controller) UnlockBus() {
	if !c.locked {
		panic("memctrl: bus not locked")
	}
	c.clock.Advance(simtime.CostBusUnlock)
	c.locked = false
	c.busSpan.End()
	c.busSpan = telemetry.Span{}
}

// BusLocked reports whether the bus is currently locked.
func (c *Controller) BusLocked() bool { return c.locked }

// Stats returns a copy of the controller's counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// readGroup performs the ECC read path (Figure 1b) for one group and
// returns the (possibly corrected) data.
func (c *Controller) readGroup(a physmem.Addr, duringScrub bool) uint64 {
	data, check := c.mem.ReadGroupRaw(a)
	if c.mode == Disabled {
		return data
	}
	corrected, correctedCheck, res := ecc.Decode(data, ecc.Check(check))
	switch res {
	case ecc.OK:
		return data
	case ecc.CorrectedData, ecc.CorrectedCheck:
		c.stats.CorrectedSingle++
		if duringScrub {
			c.stats.ScrubCorrected++
		}
		c.notifyObservers(a, false)
		if c.mode == CheckOnly {
			// Detected and reported, but not corrected in memory.
			return data
		}
		c.mem.WriteGroupRaw(a, corrected, uint8(correctedCheck))
		return corrected
	case ecc.Uncorrectable:
		c.stats.Uncorrectable++
		c.notifyObservers(a, true)
		report := FaultReport{
			Group:       a,
			Line:        a.LineAddr(),
			Data:        data,
			Check:       check,
			DuringScrub: duringScrub,
		}
		if c.handler != nil {
			sp := c.tr.Begin("memctrl", "ecc-fault", telemetry.KV("group", uint64(a)))
			c.clock.Advance(simtime.CostInterrupt)
			c.handler(report)
			sp.End()
			// The handler may have repaired the group (SafeMem restores the
			// original data and check bits). Re-read once; if still broken,
			// hand back the raw bits — the kernel has already decided what
			// to do (typically panic).
			data2, check2 := c.mem.ReadGroupRaw(a)
			if d, _, res2 := ecc.Decode(data2, ecc.Check(check2)); res2 != ecc.Uncorrectable {
				if res2 == ecc.CorrectedData {
					return d
				}
				return data2
			}
		}
		return data
	}
	return data
}

// ReadLine fetches the 64-byte line at a (which must be line-aligned) from
// DRAM, running every ECC group through the check/correct path. Lines the
// controller knows to be clean — written by itself with ECC enabled, or
// fully verified on an earlier pass, with no stored-bit mutation since —
// skip the 8 decodes entirely: for such a line every decode returns ecc.OK
// with the data unchanged and no stats or cycle charges, so the fast path
// is observationally identical to the full loop (TestFastPathEquivalence).
func (c *Controller) ReadLine(a physmem.Addr) [physmem.GroupsPerLine]uint64 {
	if !a.IsLineAligned() {
		panic(fmt.Sprintf("memctrl: ReadLine at unaligned address %#x", uint64(a)))
	}
	c.stats.LineReads++
	var out [physmem.GroupsPerLine]uint64
	if c.fastPath && c.mode != Disabled && c.lineClean(a) {
		c.fastLineReads++
		for i := 0; i < physmem.GroupsPerLine; i++ {
			out[i], _ = c.mem.ReadGroupRaw(a + physmem.Addr(i*physmem.GroupBytes))
		}
		return out
	}
	errsBefore := c.stats.CorrectedSingle + c.stats.Uncorrectable
	for i := 0; i < physmem.GroupsPerLine; i++ {
		out[i] = c.readGroup(a+physmem.Addr(i*physmem.GroupBytes), false)
	}
	// A full pass with no ECC events proves every group decodes OK: remember
	// it. (Any event leaves the line unmarked — in CheckOnly mode errors stay
	// in memory, and a handler repair already cleared the bit via the hook.)
	if c.mode != Disabled && c.stats.CorrectedSingle+c.stats.Uncorrectable == errsBefore {
		c.markClean(a)
	}
	return out
}

// WriteLine stores a 64-byte line to DRAM. With ECC enabled the controller's
// generator computes fresh check bits for every group (Figure 1a); with ECC
// disabled the stored check bits are left untouched — the WatchMemory
// scramble path.
func (c *Controller) WriteLine(a physmem.Addr, words [physmem.GroupsPerLine]uint64) {
	if !a.IsLineAligned() {
		panic(fmt.Sprintf("memctrl: WriteLine at unaligned address %#x", uint64(a)))
	}
	c.stats.LineWrites++
	for i := 0; i < physmem.GroupsPerLine; i++ {
		ga := a + physmem.Addr(i*physmem.GroupBytes)
		if c.mode == Disabled {
			c.mem.WriteGroupDataOnly(ga, words[i])
		} else {
			c.mem.WriteGroupRaw(ga, words[i], uint8(ecc.Encode(words[i])))
		}
	}
	// With ECC on, every group now carries freshly generated check bits; the
	// line is clean by construction. (The mutation hook cleared the bit
	// during the writes above; with ECC disabled — the scramble path — it
	// stays cleared.)
	if c.mode != Disabled {
		c.markClean(a)
	}
}

// Image is a checkpoint of the controller's simulated state: mode, handler,
// observers, capabilities, counters and scrub cursor. The known-clean line
// bitmap is deliberately NOT part of the image: it is a host-side read
// accelerator whose entries stay valid across a restore (physmem fires the
// mutation hook for every line a restore rewrites, clearing exactly the bits
// that could go stale), and its state is observationally invisible — pinned
// by TestFastPathEquivalence.
type Image struct {
	c           *Controller
	mode        Mode
	handler     InterruptHandler
	observer    FaultObserver
	nobservers  int
	caps        Capabilities
	stats       Stats
	fastPath    bool
	scrubCursor physmem.Addr
	scrubFilter func(line physmem.Addr) bool
}

// CaptureImage checkpoints the controller. Capturing with the bus locked
// (mid-scramble) is a bug and panics.
func (c *Controller) CaptureImage() *Image {
	if c.locked {
		panic("memctrl: CaptureImage with the bus locked")
	}
	return &Image{
		c:           c,
		mode:        c.mode,
		handler:     c.handler,
		observer:    c.observer,
		nobservers:  len(c.observers),
		caps:        c.caps,
		stats:       c.stats,
		fastPath:    c.fastPath,
		scrubCursor: c.scrubCursor,
		scrubFilter: c.scrubFilter,
	}
}

// RestoreImage puts the controller back into the captured state. Observers
// appended after the capture (per-run measurement probes) are dropped; the
// captured prefix is kept — observer closures bind to warmup-time objects
// the snapshot layer restores in place.
func (c *Controller) RestoreImage(img *Image) {
	if img.c != c {
		panic("memctrl: RestoreImage with an image captured from a different controller")
	}
	c.mode = img.mode
	c.handler = img.handler
	c.observer = img.observer
	c.observers = c.observers[:img.nobservers]
	c.locked = false
	c.caps = img.caps
	c.stats = img.stats
	c.busSpan = telemetry.Span{}
	c.fastPath = img.fastPath
	c.scrubCursor = img.scrubCursor
	c.scrubFilter = img.scrubFilter
}

// PeekLine returns the raw data words of a line without ECC checking or
// cycle charges. It is used by the kernel to save original data before
// scrambling, and by tests.
func (c *Controller) PeekLine(a physmem.Addr) [physmem.GroupsPerLine]uint64 {
	if !a.IsLineAligned() {
		panic(fmt.Sprintf("memctrl: PeekLine at unaligned address %#x", uint64(a)))
	}
	var out [physmem.GroupsPerLine]uint64
	for i := 0; i < physmem.GroupsPerLine; i++ {
		out[i], _ = c.mem.ReadGroupRaw(a + physmem.Addr(i*physmem.GroupBytes))
	}
	return out
}
