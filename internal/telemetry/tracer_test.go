package telemetry

import (
	"testing"

	"safemem/internal/simtime"
)

func tracedRegistry(max int) (*Registry, *simtime.Clock) {
	r := NewRegistry("", Config{TraceEnabled: true, MaxTraceEvents: max})
	var clock simtime.Clock
	r.AttachClock(&clock)
	return r, &clock
}

func TestTracerNesting(t *testing.T) {
	r, clock := tracedRegistry(0)
	tr := r.Tracer()

	outer := tr.Begin("kernel", "WatchMemory", KV("bytes", 64))
	clock.Advance(10)
	inner := tr.Begin("cache", "flush-line")
	clock.Advance(5)
	inner.End()
	tr.Instant("memctrl", "ecc-fault")
	clock.Advance(5)
	outer.End()

	evs := tr.Events()
	want := []struct {
		phase Phase
		name  string
		time  simtime.Cycles
	}{
		{PhaseBegin, "WatchMemory", 0},
		{PhaseBegin, "flush-line", 10},
		{PhaseEnd, "flush-line", 15},
		{PhaseInstant, "ecc-fault", 15},
		{PhaseEnd, "WatchMemory", 20},
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %+v", evs)
	}
	for i, w := range want {
		if evs[i].Phase != w.phase || evs[i].Name != w.name || evs[i].Time != w.time {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
	if evs[0].Args[0] != (Arg{"bytes", 64}) {
		t.Fatalf("args = %+v", evs[0].Args)
	}
}

func TestTracerDisabledIsNoop(t *testing.T) {
	r := NewRegistry("", Config{}) // tracing off
	var clock simtime.Clock
	r.AttachClock(&clock)
	tr := r.Tracer()
	sp := tr.Begin("a", "b")
	tr.Instant("a", "c")
	sp.End()
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("disabled tracer recorded %d events", n)
	}

	// A nil tracer (component never registered) is equally safe.
	var nilTr *Tracer
	nsp := nilTr.Begin("a", "b")
	nilTr.Instant("a", "c")
	nsp.End()
}

func TestTracerCapKeepsBalance(t *testing.T) {
	r, clock := tracedRegistry(6)
	tr := r.Tracer()
	var open []Span
	for i := 0; i < 10; i++ {
		open = append(open, tr.Begin("c", "span"))
		clock.Advance(1)
	}
	for i := len(open) - 1; i >= 0; i-- {
		open[i].End()
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops at the cap")
	}
	depth := 0
	for _, ev := range tr.Events() {
		switch ev.Phase {
		case PhaseBegin:
			depth++
		case PhaseEnd:
			depth--
		}
		if depth < 0 {
			t.Fatal("End without Begin")
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced trace: depth %d", depth)
	}
	if n := len(tr.Events()); n > 6 {
		t.Fatalf("cap exceeded: %d events", n)
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	r, clock := tracedRegistry(0)
	tr := r.Tracer()
	tr.Begin("a", "outer")
	clock.Advance(3)
	tr.Begin("a", "inner") // both abandoned, as after a program abort
	r.Finish()
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[2].Phase != PhaseEnd || evs[3].Phase != PhaseEnd {
		t.Fatalf("open spans not closed: %+v", evs)
	}
}
