package telemetry

import (
	"io"
	"sync"
	"testing"

	"safemem/internal/simtime"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry("", Config{})
	c := r.Counter("comp", "events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("comp", "events") != c {
		t.Fatal("Counter not idempotent")
	}

	g := r.Gauge("comp", "level")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}

	h := r.Histogram("comp", "lat", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	bounds, counts, sum, count := h.Snapshot()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("snapshot shape: bounds=%v counts=%v", bounds, counts)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if sum != 555 || count != 3 {
		t.Fatalf("sum=%v count=%v", sum, count)
	}
}

func TestSnapshotIncludesSources(t *testing.T) {
	r := NewRegistry("", Config{})
	r.Counter("b", "z").Inc()
	hits := 0
	r.RegisterSource("a", func(emit func(string, float64)) {
		hits++
		emit("hits", 7)
	})
	vals := r.Snapshot()
	if hits != 1 {
		t.Fatalf("source called %d times", hits)
	}
	if len(vals) != 2 {
		t.Fatalf("snapshot = %+v", vals)
	}
	// Sorted by component then name: a/hits before b/z.
	if vals[0].Component != "a" || vals[0].Name != "hits" || vals[0].Value != 7 {
		t.Fatalf("vals[0] = %+v", vals[0])
	}
	if vals[1].Component != "b" || vals[1].Name != "z" || vals[1].Value != 1 {
		t.Fatalf("vals[1] = %+v", vals[1])
	}
}

func TestSamplerSnapshotsOnClock(t *testing.T) {
	r := NewRegistry("", Config{SampleInterval: 100})
	var clock simtime.Clock
	g := r.Gauge("comp", "v")
	r.AttachClock(&clock)

	g.Set(1)
	clock.Advance(150) // crosses 100: one sample at t=150
	g.Set(2)
	clock.Advance(150) // crosses 250: one sample at t=300
	samples := r.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %+v", samples)
	}
	if samples[0].Time != 150 || samples[0].Value != 1 {
		t.Fatalf("samples[0] = %+v", samples[0])
	}
	if samples[1].Time != 300 || samples[1].Value != 2 {
		t.Fatalf("samples[1] = %+v", samples[1])
	}

	// Finish takes a final sample and stops the sampler.
	r.Finish()
	n := len(r.Samples())
	if n != 3 {
		t.Fatalf("after Finish: %d samples", n)
	}
	clock.Advance(10_000)
	if len(r.Samples()) != n {
		t.Fatal("sampler still firing after Finish")
	}
	r.Finish() // idempotent
	if len(r.Samples()) != n {
		t.Fatal("second Finish sampled again")
	}
}

// TestConcurrentMetricWrites exercises the concurrency contract: metrics the
// registry owns may be written from multiple goroutines while another dumps
// the registry (a registry without sources can be exported off-thread).
func TestConcurrentMetricWrites(t *testing.T) {
	r := NewRegistry("race", Config{})
	c := r.Counter("comp", "n")
	h := r.Histogram("comp", "lat", LatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
