package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"safemem/internal/simtime"
)

// Session groups the registries of one CLI invocation — one registry per
// simulated machine/run — so a multi-run experiment exports into a single
// set of files (one Chrome-trace "process" per run).
type Session struct {
	cfg Config

	mu   sync.Mutex
	regs []*Registry
}

// NewSession creates a session whose registries all share cfg.
func NewSession(cfg Config) *Session { return &Session{cfg: cfg} }

// NewRegistry creates and adopts a registry labelled run.
func (s *Session) NewRegistry(run string) *Registry {
	r := NewRegistry(run, s.cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regs = append(s.regs, r)
	return r
}

// Registries returns the adopted registries in creation order.
func (s *Session) Registries() []*Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Registry(nil), s.regs...)
}

// ExportFiles writes each requested dump of the session to its path; an
// empty path skips that exporter. This is the CLI back end for the
// -metrics-out / -jsonl-out / -trace-out flags.
func (s *Session) ExportFiles(metricsPath, jsonlPath, tracePath string) error {
	write := func(path string, fn func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(metricsPath, s.WritePrometheus); err != nil {
		return err
	}
	if err := write(jsonlPath, s.WriteJSONL); err != nil {
		return err
	}
	return write(tracePath, s.WriteChromeTrace)
}

// promName sanitises a metric path component for Prometheus exposition.
func promName(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue renders a float the way Prometheus expects (integers without a
// decimal point).
func promValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func promLabels(run string, extra ...string) string {
	var parts []string
	if run != "" {
		parts = append(parts, fmt.Sprintf("run=%q", run))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// PromContentType is the Content-Type of the Prometheus text exposition
// format, for live /metrics endpoints.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus dumps every registry of the session in the Prometheus
// text exposition format. Metric names are safemem_<component>_<name>;
// multi-run sessions distinguish runs with a run="…" label. Must be called
// from the simulation thread (it reads component sources).
func (s *Session) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, s.Registries(), false)
}

// WritePrometheus dumps this registry alone; see Session.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, []*Registry{r}, false)
}

// WritePrometheusLive is the scrape-path variant of WritePrometheus, safe
// to call from an HTTP goroutine while simulations run: scalar values come
// from LiveSnapshot (atomic owned metrics + cached source values) and
// histograms from their own mutexes. The /metrics endpoint serves this.
func (s *Session) WritePrometheusLive(w io.Writer) error {
	return writePrometheus(w, s.Registries(), true)
}

// WritePrometheusLive dumps this registry alone; see the Session variant.
func (r *Registry) WritePrometheusLive(w io.Writer) error {
	return writePrometheus(w, []*Registry{r}, true)
}

func writePrometheus(w io.Writer, regs []*Registry, live bool) error {
	bw := bufio.NewWriter(w)
	snapshot := func(reg *Registry) []MetricValue {
		if live {
			return reg.LiveSnapshot()
		}
		return reg.Snapshot()
	}

	// Scalars: gather (name → kind, rows) so a metric's TYPE header is
	// emitted once even when several runs export it.
	type row struct{ labels, value string }
	scalar := map[string]struct {
		kind Kind
		rows []row
	}{}
	var names []string
	for _, reg := range regs {
		for _, mv := range snapshot(reg) {
			name := "safemem_" + promName(mv.Component) + "_" + promName(mv.Name)
			e, ok := scalar[name]
			if !ok {
				names = append(names, name)
				e.kind = mv.Kind
			}
			e.rows = append(e.rows, row{promLabels(reg.Run()), promValue(mv.Value)})
			scalar[name] = e
		}
	}
	sort.Strings(names)
	for _, name := range names {
		e := scalar[name]
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, e.kind)
		for _, r := range e.rows {
			fmt.Fprintf(bw, "%s%s %s\n", name, r.labels, r.value)
		}
	}

	// Histograms, in the standard _bucket/_sum/_count form.
	for _, reg := range regs {
		for _, h := range reg.Histograms() {
			name := "safemem_" + promName(h.component) + "_" + promName(h.name)
			bounds, counts, sum, count := h.Snapshot()
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name,
					promLabels(reg.Run(), "le", promValue(b)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name, promLabels(reg.Run(), "le", "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", name, promLabels(reg.Run()), promValue(sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", name, promLabels(reg.Run()), count)
		}
	}
	return bw.Flush()
}

// Event is one JSONL record. A run's log is a meta line, then span/instant
// lines in chronological order, then sampler rows, then final metric and
// histogram values. Numeric zero fields are omitted on write; omitted
// fields decode back to zero, so write→read round-trips exactly.
type Event struct {
	Type      string  `json:"type"` // meta | span | instant | sample | metric | histogram
	Run       string  `json:"run,omitempty"`
	Component string  `json:"component,omitempty"`
	Name      string  `json:"name,omitempty"`
	Kind      string  `json:"kind,omitempty"`
	Start     uint64  `json:"start_cycles,omitempty"`
	End       uint64  `json:"end_cycles,omitempty"`
	Time      uint64  `json:"ts_cycles,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Dropped   uint64  `json:"dropped,omitempty"`

	Args map[string]uint64 `json:"args,omitempty"`

	// Histogram payload.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Count  uint64    `json:"count,omitempty"`
}

func argMap(args []Arg) map[string]uint64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]uint64, len(args))
	for _, a := range args {
		m[a.Key] = a.Value
	}
	return m
}

// events converts the registry's state into the JSONL record stream.
func (r *Registry) events() []Event {
	out := []Event{{
		Type:    "meta",
		Run:     r.run,
		Name:    "cycles_per_microsecond",
		Value:   simtime.CyclesPerMicrosecond,
		Dropped: r.tracer.Dropped(),
	}}

	// Pair B/E trace events into span records via the nesting stack.
	var stack []Event
	for _, te := range r.tracer.Events() {
		switch te.Phase {
		case PhaseBegin:
			stack = append(stack, Event{
				Type: "span", Run: r.run, Component: te.Component, Name: te.Name,
				Start: uint64(te.Time), Args: argMap(te.Args),
			})
		case PhaseEnd:
			if len(stack) == 0 {
				continue
			}
			ev := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ev.End = uint64(te.Time)
			out = append(out, ev)
		case PhaseInstant:
			out = append(out, Event{
				Type: "instant", Run: r.run, Component: te.Component, Name: te.Name,
				Time: uint64(te.Time), Args: argMap(te.Args),
			})
		}
	}
	for _, s := range r.Samples() {
		out = append(out, Event{
			Type: "sample", Run: r.run, Component: s.Component, Name: s.Name,
			Time: uint64(s.Time), Value: s.Value,
		})
	}
	for _, mv := range r.Snapshot() {
		out = append(out, Event{
			Type: "metric", Run: r.run, Component: mv.Component, Name: mv.Name,
			Kind: mv.Kind.String(), Value: mv.Value,
		})
	}
	for _, h := range r.Histograms() {
		bounds, counts, sum, count := h.Snapshot()
		out = append(out, Event{
			Type: "histogram", Run: r.run, Component: h.component, Name: h.name,
			Bounds: bounds, Counts: counts, Sum: sum, Count: count,
		})
	}
	return out
}

// WriteJSONL writes the session's full event log, one JSON object per line.
func (s *Session) WriteJSONL(w io.Writer) error {
	return writeJSONL(w, s.Registries())
}

// WriteJSONL writes this registry's event log; see Session.WriteJSONL.
func (r *Registry) WriteJSONL(w io.Writer) error {
	return writeJSONL(w, []*Registry{r})
}

func writeJSONL(w io.Writer, regs []*Registry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, reg := range regs {
		for _, ev := range reg.events() {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an event log written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// chromeEvent is one trace_event record (the Chrome Trace Event Format,
// JSON-object flavour, loadable in chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string         `json:"name,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func cyclesToUs(c simtime.Cycles) float64 {
	return float64(c) / simtime.CyclesPerMicrosecond
}

// WriteChromeTrace writes the session as one Chrome trace_event JSON file.
// Each run is a trace "process" (its simulated machine); spans live on
// thread 1, sampler counters on thread 0 as counter ('C') events. All
// timestamps are simulated microseconds.
func (s *Session) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, s.Registries())
}

// WriteChromeTrace writes this registry alone; see Session.WriteChromeTrace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, []*Registry{r})
}

func writeChromeTrace(w io.Writer, regs []*Registry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(&nopNewline{bw})
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ev)
	}

	for i, reg := range regs {
		pid := i + 1
		name := reg.Run()
		if name == "" {
			name = fmt.Sprintf("run-%d", pid)
		}
		if err := emit(chromeEvent{
			Name: "process_name", Phase: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		}); err != nil {
			return err
		}
		for _, te := range reg.Tracer().Events() {
			ev := chromeEvent{
				Name: te.Name, Cat: te.Component, Phase: string(te.Phase),
				Ts: cyclesToUs(te.Time), Pid: pid, Tid: 1,
			}
			if te.Phase == PhaseInstant {
				ev.Scope = "t"
			}
			if len(te.Args) > 0 {
				args := make(map[string]any, len(te.Args))
				for _, a := range te.Args {
					args[a.Key] = a.Value
				}
				ev.Args = args
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
		for _, sa := range reg.Samples() {
			if err := emit(chromeEvent{
				Name: sa.Component + "/" + sa.Name, Phase: "C",
				Ts: cyclesToUs(sa.Time), Pid: pid, Tid: 0,
				Args: map[string]any{"value": sa.Value},
			}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// nopNewline strips the trailing newline json.Encoder appends, so events
// can be comma-joined.
type nopNewline struct{ w *bufio.Writer }

func (n *nopNewline) Write(p []byte) (int, error) {
	m := len(p)
	for m > 0 && p[m-1] == '\n' {
		m--
	}
	if _, err := n.w.Write(p[:m]); err != nil {
		return 0, err
	}
	return len(p), nil
}
