package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"safemem/internal/simtime"
)

// TestLiveSnapshotServesCachedSources pins the scrape-path contract: owned
// metrics are always fresh, source values are as-of the last
// simulation-thread read, and LiveSnapshot never invokes a source.
func TestLiveSnapshotServesCachedSources(t *testing.T) {
	r := NewRegistry("run", Config{})
	ctr := r.Counter("comp", "hits")
	g := r.Gauge("comp", "level")
	unsafeCounter := 0 // stands in for a component's unsynchronised stat
	calls := 0
	r.RegisterSource("src", func(emit func(string, float64)) {
		calls++
		emit("value", float64(unsafeCounter))
	})

	// Before any simulation-thread read the cache is empty: only owned
	// metrics appear.
	live := r.LiveSnapshot()
	if len(live) != 2 {
		t.Fatalf("pre-cache LiveSnapshot has %d values, want 2 (owned only): %+v", len(live), live)
	}
	if calls != 0 {
		t.Fatalf("LiveSnapshot invoked a source %d times", calls)
	}

	unsafeCounter = 7
	r.Snapshot() // simulation thread reads sources, refreshing the cache
	unsafeCounter = 99
	ctr.Inc()
	g.Set(3.5)

	live = r.LiveSnapshot()
	if calls != 1 {
		t.Fatalf("source called %d times, want 1 (Snapshot only)", calls)
	}
	byName := map[string]float64{}
	for _, mv := range live {
		byName[mv.Component+"/"+mv.Name] = mv.Value
	}
	if byName["comp/hits"] != 1 || byName["comp/level"] != 3.5 {
		t.Errorf("owned metrics stale in live snapshot: %v", byName)
	}
	if byName["src/value"] != 7 {
		t.Errorf("source value = %v, want cached 7 (not live 99)", byName["src/value"])
	}
}

// TestLiveSnapshotConcurrent scrapes while a "simulation thread" updates
// owned metrics and re-reads sources; run under -race this is the mutex
// audit for the live scrape path.
func TestLiveSnapshotConcurrent(t *testing.T) {
	r := NewRegistry("run", Config{SampleInterval: 10})
	clock := &simtime.Clock{}
	r.AttachClock(clock)
	ctr := r.Counter("comp", "hits")
	h := r.Histogram("comp", "lat", []float64{1, 10, 100})
	stat := uint64(0)
	r.RegisterSource("src", func(emit func(string, float64)) {
		emit("value", float64(stat))
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.LiveSnapshot()
				var buf bytes.Buffer
				if err := r.WritePrometheusLive(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// The simulation thread: owned-metric updates, source mutation, and
	// periodic source reads via SampleNow.
	for i := 0; i < 2000; i++ {
		ctr.Inc()
		h.Observe(float64(i % 150))
		stat++
		clock.Advance(1)
		if i%100 == 0 {
			r.SampleNow()
		}
	}
	close(stop)
	wg.Wait()
}

func TestWritePrometheusLiveOutput(t *testing.T) {
	r := NewRegistry("live", Config{})
	r.Counter("campaign", "scenarios_done").Add(12)
	r.Gauge("campaign", "scenarios_per_sec").Set(3.25)
	var buf bytes.Buffer
	if err := r.WritePrometheusLive(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE safemem_campaign_scenarios_done counter",
		`safemem_campaign_scenarios_done{run="live"} 12`,
		`safemem_campaign_scenarios_per_sec{run="live"} 3.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live scrape missing %q:\n%s", want, out)
		}
	}
}
