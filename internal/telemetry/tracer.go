package telemetry

import (
	"sync"

	"safemem/internal/simtime"
)

// Phase identifies a trace event's role, using Chrome trace_event letters.
type Phase byte

const (
	// PhaseBegin opens a span.
	PhaseBegin Phase = 'B'
	// PhaseEnd closes the innermost open span.
	PhaseEnd Phase = 'E'
	// PhaseInstant is a zero-duration event.
	PhaseInstant Phase = 'i'
)

// Arg is one key/value annotation on a trace event.
type Arg struct {
	Key   string
	Value uint64
}

// KV builds an Arg.
func KV(key string, value uint64) Arg { return Arg{Key: key, Value: value} }

// TraceEvent is one recorded begin/end/instant event. Events are stored in
// strictly chronological order; because the simulated machine is
// single-threaded, begin/end pairs are properly nested and parent/child
// relationships fall out of the nesting.
type TraceEvent struct {
	Phase     Phase
	Time      simtime.Cycles
	Component string
	Name      string
	Args      []Arg
}

// Tracer records spans and instants against the simulated clock. All
// methods are nil-safe and no-ops while disabled, so instrumentation sites
// can call unconditionally. Safe for concurrent use (though the simulator
// itself is single-threaded, exporters may read concurrently).
type Tracer struct {
	mu      sync.Mutex
	clock   *simtime.Clock
	enabled bool
	max     int
	events  []TraceEvent
	open    int // currently-open span count (for balancing)
	dropped uint64
}

// Span is a handle to an open span. The zero value (from a disabled or
// saturated tracer) is a valid no-op.
type Span struct {
	tr              *Tracer
	component, name string
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled && t.clock != nil
}

// Begin opens a span for component/name at the current simulated time.
// Close it with End. Spans must be closed in LIFO order (guaranteed by the
// single-threaded simulation when End is deferred).
func (t *Tracer) Begin(component, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled || t.clock == nil {
		return Span{}
	}
	// Reserve room for this span's End plus one End per already-open span,
	// so the trace always closes balanced even at the cap.
	if len(t.events)+t.open+2 > t.max {
		t.dropped++
		return Span{}
	}
	t.events = append(t.events, TraceEvent{
		Phase: PhaseBegin, Time: t.clock.Now(), Component: component, Name: name, Args: args,
	})
	t.open++
	return Span{tr: t, component: component, name: name}
}

// End closes the span. No-op on a zero Span.
func (s Span) End(args ...Arg) {
	t := s.tr
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open == 0 {
		return
	}
	t.events = append(t.events, TraceEvent{
		Phase: PhaseEnd, Time: t.clock.Now(),
		Component: s.component, Name: s.name, Args: args,
	})
	t.open--
}

// Instant records a zero-duration event.
func (t *Tracer) Instant(component, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled || t.clock == nil {
		return
	}
	if len(t.events)+t.open+1 > t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Phase: PhaseInstant, Time: t.clock.Now(), Component: component, Name: name, Args: args,
	})
}

// closeOpen appends End events for any spans still open (a run that aborted
// mid-span), so exports stay balanced.
func (t *Tracer) closeOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.open > 0 {
		t.events = append(t.events, TraceEvent{Phase: PhaseEnd, Time: t.clock.Now()})
		t.open--
	}
}

// Events returns a copy of all recorded events, in chronological order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Dropped returns how many events were discarded at the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
