// Package telemetry is the simulator's unified observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms keyed by
// component/name), span tracing against the simulated clock, a periodic
// gauge sampler, and exporters (Prometheus text, JSONL, Chrome trace_event
// JSON — the last renders in chrome://tracing or Perfetto).
//
// Design constraints, in order:
//
//   - The simulation hot path (loads, stores, cache lookups) must stay
//     untouched. Components keep their plain per-package Stats structs and
//     register a Source — a callback enumerating current values — that the
//     registry calls only at sample/export time. No maps, no interface
//     dispatch, no atomics on the read/write path.
//   - Metrics the telemetry layer owns directly (Counter, Gauge, Histogram)
//     are safe for concurrent use, so an exporter goroutine can dump a
//     registry while the simulation runs. Sources, by contrast, read the
//     components' unsynchronised counters and must only be invoked from the
//     simulation thread; the sampler and end-of-run exporters do so.
//   - All time is simulated cycles (package simtime). A trace of a run is
//     a timeline of the *simulated* machine, not of the Go process.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"safemem/internal/simtime"
)

// Config parameterises a registry (and, via Session, every registry of a
// session).
type Config struct {
	// TraceEnabled turns on span recording. Off, Begin/End are no-ops.
	TraceEnabled bool
	// SampleInterval is the period of the gauge sampler in simulated
	// cycles; 0 disables sampling.
	SampleInterval simtime.Cycles
	// MaxTraceEvents caps the tracer's event buffer (0 = DefaultMaxTraceEvents).
	// Events beyond the cap are counted in DroppedEvents, never silently lost.
	MaxTraceEvents int
}

// DefaultMaxTraceEvents bounds trace memory for long runs (~1M events).
const DefaultMaxTraceEvents = 1 << 20

// LatencyBuckets is the default cycle-bucket layout for detection-latency
// histograms: decades from 1 µs to ~7 min of simulated time at 2.4 GHz.
var LatencyBuckets = []float64{
	2.4e3, 2.4e4, 2.4e5, 2.4e6, 2.4e7, 2.4e8, 2.4e9, 2.4e10, 2.4e11,
}

// OverheadBuckets is the default bucket layout for runtime-overhead
// histograms (fractional slowdown over the uninstrumented baseline): from
// well under the paper's sub-3% claims up to order-of-magnitude slowdowns.
var OverheadBuckets = []float64{
	0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10,
}

// Kind classifies a metric for exporters.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind in Prometheus terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonic counter owned by the registry. Safe for concurrent
// use.
type Counter struct {
	component, name string
	v               atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value owned by the registry. Safe for concurrent
// use.
type Gauge struct {
	component, name string
	bits            atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Safe for concurrent use.
// Bucket i counts observations ≤ bounds[i]; an implicit +Inf bucket catches
// the rest.
type Histogram struct {
	component, name string

	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveCycles records a cycle count.
func (h *Histogram) ObserveCycles(c simtime.Cycles) { h.Observe(float64(c)) }

// Snapshot returns the bucket bounds, per-bucket counts (last = +Inf), the
// sum and the total count.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	counts = append([]uint64(nil), h.counts...)
	return bounds, counts, h.sum, h.count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Source enumerates a component's current metric values. It is called only
// at sample/export time, from the simulation thread.
type Source func(emit func(name string, value float64))

// MetricValue is one exported scalar (counters, gauges and source values;
// histograms export separately).
type MetricValue struct {
	Component string
	Name      string
	Kind      Kind
	Value     float64
}

type sourceEntry struct {
	component string
	fn        Source
}

// Registry holds all metrics, the tracer and the sampler of one simulated
// machine (one run). Create with NewRegistry or Session.NewRegistry.
type Registry struct {
	run string
	cfg Config

	mu       sync.Mutex
	clock    *simtime.Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []string // registration order of owned metrics, for stable export
	sources  []sourceEntry
	// sourceCache holds the source values as of the last simulation-thread
	// read (sampler tick, SampleNow, Snapshot). LiveSnapshot serves these to
	// off-thread scrapers, which must never call the sources themselves —
	// sources read components' unsynchronised counters.
	sourceCache []MetricValue
	samples     []Sample
	tracer      *Tracer
	finished    bool
}

// Sample is one sampler snapshot row.
type Sample struct {
	Time      simtime.Cycles
	Component string
	Name      string
	Value     float64
}

// NewRegistry creates a registry. run labels the run in exports (empty is
// fine for single-run use). The tracer and sampler stay dormant until
// AttachClock wires the simulated clock in.
func NewRegistry(run string, cfg Config) *Registry {
	if cfg.MaxTraceEvents <= 0 {
		cfg.MaxTraceEvents = DefaultMaxTraceEvents
	}
	return &Registry{
		run:      run,
		cfg:      cfg,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   &Tracer{max: cfg.MaxTraceEvents},
	}
}

// Run returns the registry's run label.
func (r *Registry) Run() string { return r.run }

// AttachClock binds the simulated clock: it enables the tracer (when
// configured) and installs the sampler's wake hook on the clock.
func (r *Registry) AttachClock(clock *simtime.Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
	r.tracer.clock = clock
	r.tracer.enabled = r.cfg.TraceEnabled
	if iv := r.cfg.SampleInterval; iv > 0 {
		clock.SetWake(clock.Now()+iv, func(now simtime.Cycles) simtime.Cycles {
			r.sample(now)
			return now + iv
		})
	}
}

// Tracer returns the registry's span tracer (never nil; a no-op while
// tracing is disabled or no clock is attached).
func (r *Registry) Tracer() *Tracer { return r.tracer }

func key(component, name string) string { return component + "/" + name }

// Counter returns the counter component/name, creating it on first use.
func (r *Registry) Counter(component, name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(component, name)
	if c, ok := r.counters[k]; ok {
		return c
	}
	c := &Counter{component: component, name: name}
	r.counters[k] = c
	r.order = append(r.order, k)
	return c
}

// Gauge returns the gauge component/name, creating it on first use.
func (r *Registry) Gauge(component, name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(component, name)
	if g, ok := r.gauges[k]; ok {
		return g
	}
	g := &Gauge{component: component, name: name}
	r.gauges[k] = g
	r.order = append(r.order, k)
	return g
}

// Histogram returns the histogram component/name with the given bucket
// upper bounds (sorted ascending; +Inf is implicit), creating it on first
// use. Bounds are ignored when the histogram already exists.
func (r *Registry) Histogram(component, name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(component, name)
	if h, ok := r.hists[k]; ok {
		return h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{
		component: component,
		name:      name,
		bounds:    b,
		counts:    make([]uint64, len(b)+1),
	}
	r.hists[k] = h
	r.order = append(r.order, k)
	return h
}

// RegisterSource registers a component's value enumerator. Sources are read
// only at sample/export time, from the simulation thread — the hot path
// keeps its plain struct counters.
func (r *Registry) RegisterSource(component string, fn Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, sourceEntry{component: component, fn: fn})
}

// SourceMark returns a cursor into the source registration list. Pair with
// TruncateSources to unwind sources registered after the mark — the snapshot
// layer uses it to drop per-run sources (fault model, injector) when a pooled
// machine is restored, so repeated runs cannot accumulate duplicate emitters.
func (r *Registry) SourceMark() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sources)
}

// TruncateSources forgets every source registered after the given mark.
// Marks taken later than the current length are ignored (the sources they
// cover are already gone).
func (r *Registry) TruncateSources(mark int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark < len(r.sources) {
		r.sources = r.sources[:mark]
	}
}

// owned returns the registry-owned scalar values (counters and gauges) in
// registration order. Their reads are atomic, so this is safe off-thread.
func (r *Registry) owned() []MetricValue {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, k := range r.order {
		if c, ok := r.counters[k]; ok {
			counters = append(counters, c)
		}
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, k := range r.order {
		if g, ok := r.gauges[k]; ok {
			gauges = append(gauges, g)
		}
	}
	r.mu.Unlock()

	var out []MetricValue
	for _, c := range counters {
		out = append(out, MetricValue{c.component, c.name, KindCounter, float64(c.Value())})
	}
	for _, g := range gauges {
		out = append(out, MetricValue{g.component, g.name, KindGauge, g.Value()})
	}
	return out
}

// readSources evaluates every registered source and refreshes the cache
// LiveSnapshot serves. Must be called from the simulation thread: sources
// read components' unsynchronised counters.
func (r *Registry) readSources() []MetricValue {
	r.mu.Lock()
	sources := append([]sourceEntry(nil), r.sources...)
	r.mu.Unlock()
	if len(sources) == 0 {
		return nil
	}
	var out []MetricValue
	for _, s := range sources {
		s.fn(func(name string, value float64) {
			out = append(out, MetricValue{s.component, name, KindGauge, value})
		})
	}
	r.mu.Lock()
	r.sourceCache = out
	r.mu.Unlock()
	return out
}

func sortValues(out []MetricValue) []MetricValue {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Snapshot returns the current value of every scalar metric — owned
// counters and gauges plus all source values — sorted by component then
// name. Must be called from the simulation thread (it reads sources).
func (r *Registry) Snapshot() []MetricValue {
	return sortValues(append(r.owned(), r.readSources()...))
}

// LiveSnapshot is the off-thread variant of Snapshot, safe to call from an
// HTTP scrape goroutine while the simulation runs: registry-owned counters
// and gauges are read through their atomics (always fresh), and source
// values come from the cache of the last simulation-thread read (sampler
// tick, SampleNow or Snapshot) instead of re-invoking the sources.
func (r *Registry) LiveSnapshot() []MetricValue {
	out := r.owned()
	r.mu.Lock()
	out = append(out, r.sourceCache...)
	r.mu.Unlock()
	return sortValues(out)
}

// Histograms returns the registry's histograms sorted by component/name.
func (r *Registry) Histograms() []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Histogram, 0, len(r.hists))
	for _, k := range r.order {
		if h, ok := r.hists[k]; ok {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].component != out[j].component {
			return out[i].component < out[j].component
		}
		return out[i].name < out[j].name
	})
	return out
}

// sample is the sampler tick: one Sample row per scalar metric.
func (r *Registry) sample(now simtime.Cycles) {
	vals := r.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range vals {
		r.samples = append(r.samples, Sample{Time: now, Component: v.Component, Name: v.Name, Value: v.Value})
	}
}

// SampleNow records an immediate sampler snapshot at the current simulated
// time, outside the periodic schedule. Components call it when they change
// the values their Source reports discontinuously — e.g. a stats reset — so
// exported time-series don't keep showing stale pre-reset values until the
// next periodic tick. No-op while sampling is disabled or no clock is
// attached. Must be called from the simulation thread (it reads sources).
func (r *Registry) SampleNow() {
	r.mu.Lock()
	clock := r.clock
	sampling := r.cfg.SampleInterval > 0
	r.mu.Unlock()
	if clock == nil || !sampling {
		return
	}
	r.sample(clock.Now())
}

// Samples returns all sampler rows recorded so far.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Sample(nil), r.samples...)
}

// Finish marks the end of the run: it closes any still-open spans (so
// exported traces have balanced begin/end pairs) and, when sampling is on,
// takes one final sample so the time-series covers the full run. Safe to
// call more than once.
func (r *Registry) Finish() {
	r.mu.Lock()
	clock := r.clock
	done := r.finished
	r.finished = true
	sampling := r.cfg.SampleInterval > 0
	r.mu.Unlock()
	if done {
		return
	}
	r.tracer.closeOpen()
	if clock != nil {
		clock.ClearWake()
		if sampling {
			r.sample(clock.Now())
		}
	}
}
