package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"safemem/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sessionFixture builds a deterministic two-run session exercising every
// exporter feature: owned metrics, a source, spans, instants, samples and a
// histogram.
func sessionFixture() *Session {
	s := NewSession(Config{TraceEnabled: true, SampleInterval: 100})

	r1 := s.NewRegistry("app/tool")
	var c1 simtime.Clock
	r1.AttachClock(&c1)
	r1.Counter("cache", "hits").Add(12)
	r1.Gauge("heap", "bytes_live").Set(4096)
	h := r1.Histogram("safemem", "detection_latency_cycles", []float64{100, 1000})
	h.Observe(50)
	h.Observe(700)
	h.Observe(4000)
	r1.RegisterSource("kernel", func(emit func(string, float64)) {
		emit("watch_calls", 3)
	})
	tr := r1.Tracer()
	sp := tr.Begin("kernel", "WatchMemory", KV("bytes", 64))
	c1.Advance(150) // one sampler tick at t=150
	inner := tr.Begin("cache", "flush-line")
	c1.Advance(10)
	inner.End()
	tr.Instant("safemem", "report", KV("addr", 0x1000))
	sp.End()
	r1.Finish()

	r2 := s.NewRegistry("app/none")
	var c2 simtime.Clock
	r2.AttachClock(&c2)
	r2.Counter("cache", "hits").Add(5)
	c2.Advance(120)
	r2.Finish()
	return s
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sessionFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus dump drifted from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := sessionFixture()
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var want []Event
	for _, reg := range s.Registries() {
		want = append(want, reg.events()...)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}

	// The log carries at least a meta, a span and an instant per traced run.
	kinds := map[string]int{}
	for _, ev := range got {
		kinds[ev.Type]++
	}
	for _, k := range []string{"meta", "span", "instant", "sample", "metric", "histogram"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in log (%v)", k, kinds)
		}
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := sessionFixture().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Ph    string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Pid   int     `json:"pid"`
			Tid   int     `json:"tid"`
			Scope string  `json:"s"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Per (pid,tid) stream: B/E balanced, timestamps monotonic.
	type lane struct{ pid, tid int }
	depth := map[lane]int{}
	lastTs := map[lane]float64{}
	pids := map[int]bool{}
	metas := 0
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		l := lane{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			metas++
			continue
		case "B":
			depth[l]++
		case "E":
			depth[l]--
			if depth[l] < 0 {
				t.Fatalf("E before B on %+v", l)
			}
		case "i":
			if ev.Scope != "t" {
				t.Fatalf("instant scope = %q", ev.Scope)
			}
		case "C":
		default:
			t.Fatalf("unknown phase %q", ev.Ph)
		}
		if ev.Ts < lastTs[l] {
			t.Fatalf("ts regressed on %+v: %v after %v", l, ev.Ts, lastTs[l])
		}
		lastTs[l] = ev.Ts
	}
	for l, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced lane %+v: depth %d", l, d)
		}
	}
	if len(pids) != 2 || metas != 2 {
		t.Fatalf("want 2 run processes with metadata, got pids=%v metas=%d", pids, metas)
	}
}

func TestExportFiles(t *testing.T) {
	dir := t.TempDir()
	m := filepath.Join(dir, "m.txt")
	j := filepath.Join(dir, "e.jsonl")
	c := filepath.Join(dir, "t.json")
	if err := sessionFixture().ExportFiles(m, j, c); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{m, j, c} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
