package safemem

import (
	"fmt"

	"safemem/internal/ecc"
	"safemem/internal/kernel"
	"safemem/internal/vm"
)

// handleECCFault is SafeMem's user-level ECC fault handler, registered via
// RegisterECCFaultHandler (Section 2.2.1). Dispatch follows Section 2.2.2:
//
//  1. Is the faulting line one we are monitoring? If not, it is a hardware
//     error somewhere else in memory — decline, and the kernel panics, the
//     stock behaviour.
//  2. Does the observed data carry the scramble signature (observed ==
//     Scramble(saved original))? If not, a real hardware error hit a
//     monitored line; repair it from the private saved copy and continue —
//     the data there was not useful to the program anyway.
//  3. Otherwise this is the first access to a watched location: a bug
//     (corruption watches), a false positive to prune (leak suspects), or
//     an initialisation event (uninit watches).
func (t *Tool) handleECCFault(f *kernel.ECCFault) bool {
	if !f.Watched {
		// A multi-bit error on a line nobody watches: genuine hardware.
		// Count it toward the degradation window before declining — however
		// the kernel resolves it (panic or retire-and-continue), the machine
		// is visibly degrading.
		t.noteMachineError(true)
		return false
	}
	r, ok := t.byLine[f.VLine]
	if !ok {
		// The kernel watches it but SafeMem has no record: some other
		// component owns the watch. Decline.
		return false
	}

	// The access-fault signature depends on how the watch was armed: the
	// commodity scramble trick leaves Scramble(original) in memory, while
	// the direct-ECC interface (Section 2.2.3) leaves the data intact and
	// corrupts only the check bits.
	orig := r.originalWord(f.VLine, f.GroupIndex)
	signatureOK := ecc.IsScrambleOf(f.Data, orig)
	if f.Direct {
		signatureOK = f.Data == orig
	}
	if !signatureOK {
		// Signature mismatch: a genuine hardware error corrupted a watched
		// line. Restore the whole region from the private copy. The Hardware
		// flag tells the kernel to charge the line's health ledger — this was
		// failing DRAM, not a tripped watch.
		t.stats.HardwareErrors++
		f.Hardware = true
		t.noteMachineError(true)
		rearm := t.noteLineFault(f.VLine)
		if err := t.unwatch(r, true); err != nil {
			t.degrade("hardware-repair", r.base, err.Error())
			t.dropRegion(r)
			return true
		}
		if rearm {
			// Re-arm at the kernel's next safe point so monitoring continues;
			// quarantined lines stay unwatched (their DRAM keeps faulting).
			t.rearmAfterRepair(r)
		} else {
			t.stats.RearmsSkipped++
		}
		return true
	}

	faultVA := t.faultAddress(f.VLine)

	switch r.kind {
	case watchPadBefore, watchPadAfter:
		t.reportCorruption(r, faultVA)
	case watchFreed:
		t.reportFreedAccess(r, faultVA)
	case watchLeakSuspect:
		t.pruneSuspect(r)
	case watchUninit:
		t.handleUninitFault(r, faultVA)
	default:
		// Unknown kind: drop the watch and keep running rather than killing
		// the monitored program over SafeMem's own bookkeeping.
		t.degrade("unknown-watch-kind", r.base, fmt.Sprintf("fault on watch kind %v", r.kind))
		t.unwatchOrDegrade(r, false, "unwatch-unknown-kind")
	}
	return true
}

// faultAddress returns the most precise faulting address available: the
// in-flight program access if the machine exposes one (the simulator's
// precise-interrupt stand-in), else the line address.
func (t *Tool) faultAddress(vline vm.VAddr) vm.VAddr {
	if va, _, _, ok := t.m.AccessInFlight(); ok {
		return va
	}
	return vline
}

// accessIsWrite reports whether the in-flight access is a store (false when
// unknown, e.g. scrub-triggered faults).
func (t *Tool) accessIsWrite() bool {
	_, _, write, ok := t.m.AccessInFlight()
	return ok && write
}

// reportCorruption reports a guard-line access as a buffer overflow or
// underflow, then disables the tripped guard so execution can continue
// ("SafeMem then simply pauses program execution..." — with StopOnBug the
// program aborts here instead).
func (t *Tool) reportCorruption(r *watchRegion, faultVA vm.VAddr) {
	kind := BugOverflow
	side := "past the end"
	if r.kind == watchPadBefore {
		kind = BugUnderflow
		side = "before the start"
	}
	b := r.block
	latency := t.m.Clock.Now() - r.watchedAt
	t.unwatchOrDegrade(r, false, "unwatch-tripped-pad")
	t.report(BugReport{
		Kind:        kind,
		Latency:     latency,
		Addr:        faultVA,
		BufferAddr:  b.Addr,
		BufferSize:  b.Size,
		Site:        b.Site,
		AccessWrite: t.accessIsWrite(),
		Details: fmt.Sprintf("access %s of buffer [%#x,%#x) allocated at site %#x",
			side, uint64(b.Addr), uint64(b.Addr)+b.Size, b.Site),
	})
}

// reportFreedAccess reports an access to a freed buffer and disables the
// watch for the whole freed extent.
func (t *Tool) reportFreedAccess(r *watchRegion, faultVA vm.VAddr) {
	b := r.block
	latency := t.m.Clock.Now() - r.watchedAt
	t.unwatchOrDegrade(r, false, "unwatch-tripped-freed")
	t.report(BugReport{
		Kind:        BugFreedAccess,
		Latency:     latency,
		Addr:        faultVA,
		BufferAddr:  b.Addr,
		BufferSize:  b.Size,
		Site:        b.Site,
		AccessWrite: t.accessIsWrite(),
		Details: fmt.Sprintf("access to freed buffer [%#x,%#x) allocated at site %#x",
			uint64(b.Addr), uint64(b.Addr)+b.Size, b.Site),
	})
}

// handleUninitFault resolves the first access to a never-written buffer:
// a write initialises it (watch silently disarmed), a read is a bug
// (Section 4's extension).
func (t *Tool) handleUninitFault(r *watchRegion, faultVA vm.VAddr) {
	b := r.block
	write := t.accessIsWrite()
	latency := t.m.Clock.Now() - r.watchedAt
	t.unwatchOrDegrade(r, false, "unwatch-uninit")
	if write {
		t.stats.UninitWrites++
		return
	}
	t.report(BugReport{
		Kind:       BugUninitRead,
		Latency:    latency,
		Addr:       faultVA,
		BufferAddr: b.Addr,
		BufferSize: b.Size,
		Site:       b.Site,
		Details: fmt.Sprintf("read of uninitialized buffer [%#x,%#x) allocated at site %#x",
			uint64(b.Addr), uint64(b.Addr)+b.Size, b.Site),
	})
}
