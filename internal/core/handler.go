package safemem

import (
	"fmt"

	"safemem/internal/ecc"
	"safemem/internal/kernel"
	"safemem/internal/vm"
)

// handleECCFault is SafeMem's user-level ECC fault handler, registered via
// RegisterECCFaultHandler (Section 2.2.1). Dispatch follows Section 2.2.2:
//
//  1. Is the faulting line one we are monitoring? If not, it is a hardware
//     error somewhere else in memory — decline, and the kernel panics, the
//     stock behaviour.
//  2. Does the observed data carry the scramble signature (observed ==
//     Scramble(saved original))? If not, a real hardware error hit a
//     monitored line; repair it from the private saved copy and continue —
//     the data there was not useful to the program anyway.
//  3. Otherwise this is the first access to a watched location: a bug
//     (corruption watches), a false positive to prune (leak suspects), or
//     an initialisation event (uninit watches).
func (t *Tool) handleECCFault(f *kernel.ECCFault) bool {
	if !f.Watched {
		return false
	}
	r, ok := t.byLine[f.VLine]
	if !ok {
		// The kernel watches it but SafeMem has no record: some other
		// component owns the watch. Decline.
		return false
	}

	// The access-fault signature depends on how the watch was armed: the
	// commodity scramble trick leaves Scramble(original) in memory, while
	// the direct-ECC interface (Section 2.2.3) leaves the data intact and
	// corrupts only the check bits.
	orig := r.originalWord(f.VLine, f.GroupIndex)
	signatureOK := ecc.IsScrambleOf(f.Data, orig)
	if f.Direct {
		signatureOK = f.Data == orig
	}
	if !signatureOK {
		// Signature mismatch: a genuine hardware error corrupted a watched
		// line. Restore the whole region from the private copy.
		t.stats.HardwareErrors++
		if err := t.unwatch(r, true); err != nil {
			panic(fmt.Sprintf("safemem: hardware-error repair: %v", err))
		}
		// Leak suspects lose their probe but keep their status; the next
		// detection pass may re-watch them.
		return true
	}

	faultVA := t.faultAddress(f.VLine)

	switch r.kind {
	case watchPadBefore, watchPadAfter:
		t.reportCorruption(r, faultVA)
	case watchFreed:
		t.reportFreedAccess(r, faultVA)
	case watchLeakSuspect:
		t.pruneSuspect(r)
	case watchUninit:
		t.handleUninitFault(r, faultVA)
	default:
		panic(fmt.Sprintf("safemem: fault on unknown watch kind %v", r.kind))
	}
	return true
}

// faultAddress returns the most precise faulting address available: the
// in-flight program access if the machine exposes one (the simulator's
// precise-interrupt stand-in), else the line address.
func (t *Tool) faultAddress(vline vm.VAddr) vm.VAddr {
	if va, _, _, ok := t.m.AccessInFlight(); ok {
		return va
	}
	return vline
}

// accessIsWrite reports whether the in-flight access is a store (false when
// unknown, e.g. scrub-triggered faults).
func (t *Tool) accessIsWrite() bool {
	_, _, write, ok := t.m.AccessInFlight()
	return ok && write
}

// reportCorruption reports a guard-line access as a buffer overflow or
// underflow, then disables the tripped guard so execution can continue
// ("SafeMem then simply pauses program execution..." — with StopOnBug the
// program aborts here instead).
func (t *Tool) reportCorruption(r *watchRegion, faultVA vm.VAddr) {
	kind := BugOverflow
	side := "past the end"
	if r.kind == watchPadBefore {
		kind = BugUnderflow
		side = "before the start"
	}
	b := r.block
	latency := t.m.Clock.Now() - r.watchedAt
	if err := t.unwatch(r, false); err != nil {
		panic(fmt.Sprintf("safemem: unwatch tripped pad: %v", err))
	}
	t.report(BugReport{
		Kind:        kind,
		Latency:     latency,
		Addr:        faultVA,
		BufferAddr:  b.Addr,
		BufferSize:  b.Size,
		Site:        b.Site,
		AccessWrite: t.accessIsWrite(),
		Details: fmt.Sprintf("access %s of buffer [%#x,%#x) allocated at site %#x",
			side, uint64(b.Addr), uint64(b.Addr)+b.Size, b.Site),
	})
}

// reportFreedAccess reports an access to a freed buffer and disables the
// watch for the whole freed extent.
func (t *Tool) reportFreedAccess(r *watchRegion, faultVA vm.VAddr) {
	b := r.block
	latency := t.m.Clock.Now() - r.watchedAt
	if err := t.unwatch(r, false); err != nil {
		panic(fmt.Sprintf("safemem: unwatch tripped freed region: %v", err))
	}
	t.report(BugReport{
		Kind:        BugFreedAccess,
		Latency:     latency,
		Addr:        faultVA,
		BufferAddr:  b.Addr,
		BufferSize:  b.Size,
		Site:        b.Site,
		AccessWrite: t.accessIsWrite(),
		Details: fmt.Sprintf("access to freed buffer [%#x,%#x) allocated at site %#x",
			uint64(b.Addr), uint64(b.Addr)+b.Size, b.Site),
	})
}

// handleUninitFault resolves the first access to a never-written buffer:
// a write initialises it (watch silently disarmed), a read is a bug
// (Section 4's extension).
func (t *Tool) handleUninitFault(r *watchRegion, faultVA vm.VAddr) {
	b := r.block
	write := t.accessIsWrite()
	latency := t.m.Clock.Now() - r.watchedAt
	if err := t.unwatch(r, false); err != nil {
		panic(fmt.Sprintf("safemem: unwatch uninit region: %v", err))
	}
	if write {
		t.stats.UninitWrites++
		return
	}
	t.report(BugReport{
		Kind:       BugUninitRead,
		Latency:    latency,
		Addr:       faultVA,
		BufferAddr: b.Addr,
		BufferSize: b.Size,
		Site:       b.Site,
		Details: fmt.Sprintf("read of uninitialized buffer [%#x,%#x) allocated at site %#x",
			uint64(b.Addr), uint64(b.Addr)+b.Size, b.Site),
	})
}
