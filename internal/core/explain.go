package safemem

import (
	"fmt"
	"strings"

	"safemem/internal/vm"
)

// Explain renders a multi-line, gdb-style elaboration of a bug report: the
// classification, the buffer's bounds and allocation site, and a hex dump
// of the memory around the faulting address as the CPU currently sees it.
// This is the simulator's stand-in for the paper's "pause execution so the
// programmer can attach an interactive debugger".
func (t *Tool) Explain(r BugReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %#x (simulated time %s)\n", r.Kind, uint64(r.Addr), r.Time)
	if r.BufferAddr != 0 {
		fmt.Fprintf(&b, "  buffer   [%#x, %#x) — %d bytes, allocation site %#x\n",
			uint64(r.BufferAddr), uint64(r.BufferAddr)+r.BufferSize, r.BufferSize, r.Site)
		switch {
		case r.Addr >= r.BufferAddr+vm.VAddr(r.BufferSize):
			fmt.Fprintf(&b, "  position %d bytes past the end of the buffer\n",
				uint64(r.Addr)-uint64(r.BufferAddr)-r.BufferSize)
		case r.Addr < r.BufferAddr:
			fmt.Fprintf(&b, "  position %d bytes before the start of the buffer\n",
				uint64(r.BufferAddr)-uint64(r.Addr))
		default:
			fmt.Fprintf(&b, "  position %d bytes into the buffer\n",
				uint64(r.Addr)-uint64(r.BufferAddr))
		}
	}
	if r.Kind == BugOverflow || r.Kind == BugUnderflow || r.Kind == BugFreedAccess || r.Kind == BugUninitRead {
		op := "load"
		if r.AccessWrite {
			op = "store"
		}
		fmt.Fprintf(&b, "  access   %s\n", op)
	}
	fmt.Fprintf(&b, "  details  %s\n", r.Details)

	// Hex dump: two lines before the fault through two lines after,
	// clamped to the buffer vicinity.
	start := r.Addr.LineAddr()
	if start >= 2*64 {
		start -= 2 * 64
	}
	fmt.Fprintf(&b, "  memory near the fault (CPU view):\n")
	for line := 0; line < 5; line++ {
		base := start + vm.VAddr(line*64)
		var cells []string
		any := false
		for g := 0; g < 4; g++ {
			w, ok := t.m.PeekWord(base + vm.VAddr(g*8))
			if !ok {
				cells = append(cells, "????????????????")
				continue
			}
			any = true
			cells = append(cells, fmt.Sprintf("%016x", w))
		}
		if !any {
			continue
		}
		marker := "  "
		if r.Addr >= base && r.Addr < base+64 {
			marker = "=>"
		}
		fmt.Fprintf(&b, "  %s %#010x: %s\n", marker, uint64(base), strings.Join(cells, " "))
	}
	return b.String()
}
