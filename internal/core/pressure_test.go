package safemem

import (
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/memctrl"
	"safemem/internal/vm"
)

func TestWatchesSurviveMemoryPressure(t *testing.T) {
	// Section 2.2.2 "Dealing with Page Swapping", end to end: the kernel
	// swaps aggressively under memory pressure, but pages holding watches
	// are pinned, so detection still works afterwards — and unwatched data
	// survives its swap round trips.
	m, err := machine.New(machine.Config{MemBytes: 4 << 20}) // small DRAM
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, heap.Options{Align: 64, PadBytes: 64, Limit: 3 << 20})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.DetectLeaks = false
	tool, err := Attach(m, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A working set of guarded buffers filling a good chunk of memory.
	// Each 16 KiB buffer spans ~4 pages: the guard-holding end pages are
	// pinned, the interior pages are fair game for the swapper.
	const bufBytes = 16384
	var bufs []vm.VAddr
	for i := 0; i < 60; i++ {
		p, err := alloc.Malloc(bufBytes)
		if err != nil {
			t.Fatal(err)
		}
		m.Memset(p, byte(i+1), bufBytes)
		bufs = append(bufs, p)
	}

	// Repeated waves of swap pressure with accesses in between.
	for round := 0; round < 8; round++ {
		if n := m.AS.SwapOutLRU(40); n == 0 && round == 0 {
			t.Fatal("no swap pressure generated; shrink DRAM")
		}
		for i, p := range bufs {
			if (i+round)%5 == 0 {
				off := vm.VAddr((i*997 + round*4096) % bufBytes)
				if got := m.Load8(p + off); got != byte(i+1) {
					t.Fatalf("round %d: buffer %d corrupted: %d", round, i, got)
				}
			}
		}
	}
	if n := len(tool.Reports()); n != 0 {
		t.Fatalf("swap pressure produced %d reports: %v", n, tool.Reports())
	}
	if m.AS.Stats().SwapsOut == 0 || m.AS.Stats().SwapsIn == 0 {
		t.Fatalf("swap never happened: %+v", m.AS.Stats())
	}

	// Every guard is still armed: overflowing any buffer is caught.
	for _, i := range []int{0, 31, 59} {
		before := tool.Stats().CorruptionReported
		m.Store8(bufs[i]+bufBytes, 0xee)
		if tool.Stats().CorruptionReported != before+1 {
			t.Fatalf("guard of buffer %d lost across swapping", i)
		}
	}
}

func TestScrubPreservesSuspectConfirmationClock(t *testing.T) {
	// A leak suspect's ECC watch is torn down and re-armed around every
	// coordinated scrub pass; its confirmation clock must carry over, or
	// frequent scrubbing would postpone leak reports forever.
	o := leakOpts()
	r := newTool(t, o)
	r.m.Ctrl.SetMode(memctrl.CorrectAndScrub)

	var leaked vm.VAddr
	reported := false
	for i := 0; i < 3000 && !reported; i++ {
		r.m.Call(0x6666)
		p, err := r.alloc.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		r.m.Return()
		r.m.Compute(1000)
		if i == 150 {
			leaked = p
		} else if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			r.m.Kern.CoordinatedScrub() // frequent scrubbing
		}
		reported = r.tool.Stats().LeaksReported > 0
	}
	if !reported {
		t.Fatal("leak never reported despite frequent scrubbing")
	}
	reports := r.tool.Reports()
	if reports[0].BufferAddr != leaked {
		t.Fatalf("reported %#x, want %#x", uint64(reports[0].BufferAddr), uint64(leaked))
	}
	if r.m.Ctrl.Stats().ScrubbedLines == 0 {
		t.Fatal("scrubbing never ran")
	}
}
