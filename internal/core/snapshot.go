// Snapshot support for the SafeMem tool: the checkpoint the copy-on-write
// machine-image layer (internal/snapshot) takes right after Attach, before
// the simulated program has allocated anything. At that point the tool's
// entire mutable state is a handful of scalars — every map is empty — so a
// capture records those scalars and a restore clears whatever a run
// accumulated, allocation-free.
package safemem

import (
	"fmt"

	"safemem/internal/simtime"
)

// Image is an immutable checkpoint of an idle Tool, taken with CaptureImage.
type Image struct {
	t         *Tool
	opts      Options
	lastCheck simtime.Cycles
	startTime simtime.Cycles
	onReport  func(BugReport)
	stats     Stats
}

// CaptureImage checkpoints the tool. It must be idle — no tracked objects,
// no armed watches, no quarantine history, no reports: the snapshot layer
// captures a warmed machine before any program ops, where this holds by
// construction. A mid-run tool would need deep copies of the group lists and
// watch regions; refusing keeps the restore path trivially correct.
func (t *Tool) CaptureImage() (*Image, error) {
	if len(t.groups) != 0 || len(t.objects) != 0 || len(t.regions) != 0 ||
		len(t.byLine) != 0 || len(t.quarantine) != 0 || len(t.reports) != 0 ||
		len(t.hwWindow) != 0 || len(t.degradedEvents) != 0 || t.savedForScrub != nil {
		return nil, fmt.Errorf("safemem: CaptureImage on a tool with live state (attach-then-capture before running the program)")
	}
	return &Image{
		t:         t,
		opts:      t.opts,
		lastCheck: t.lastCheck,
		startTime: t.startTime,
		onReport:  t.onReport,
		stats:     t.stats,
	}, nil
}

// RestoreImage puts the tool back into the captured idle state, dropping
// everything the intervening run tracked. The machine (watches, guard
// scrambles, heap) is restored separately by machine.Restore; the two halves
// are consistent because the captured machine held no watches either.
func (t *Tool) RestoreImage(img *Image) {
	if img.t != t {
		panic("safemem: RestoreImage with an image captured from a different tool")
	}
	clear(t.groups)
	clear(t.objects)
	clear(t.regions)
	clear(t.byLine)
	clear(t.quarantine)
	t.hwWindow = t.hwWindow[:0]
	t.degradedEvents = t.degradedEvents[:0]
	t.reports = t.reports[:0]
	t.savedForScrub = nil
	t.opts = img.opts
	t.lastCheck = img.lastCheck
	t.startTime = img.startTime
	t.degradedUntil = 0
	t.onReport = img.onReport
	t.stats = img.stats
}
