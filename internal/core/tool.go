package safemem

import (
	"fmt"
	"sort"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/obsrv/flight"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// Bookkeeping charges for SafeMem's own user-level work (DESIGN.md §6).
// These cover the group hash lookup, list surgery and statistics updates
// performed inside the malloc/free wrappers — everything *except* the
// ECC-watch syscalls, which charge themselves in the kernel.
const (
	costLeakAlloc     simtime.Cycles = 90
	costLeakFree      simtime.Cycles = 110
	costCheckBase     simtime.Cycles = 200
	costCheckPerGroup simtime.Cycles = 40
)

// Tool is an attached SafeMem instance.
type Tool struct {
	m     *machine.Machine
	alloc *heap.Allocator
	opts  Options

	groups  map[GroupKey]*group
	objects map[vm.VAddr]*object // by user pointer

	// ECC-watch bookkeeping (SafeMem's "private memory region").
	regions map[*watchRegion]struct{}
	byLine  map[vm.VAddr]*watchRegion

	lastCheck     simtime.Cycles
	startTime     simtime.Cycles
	savedForScrub []*watchRegion

	// Hardware-fault degradation state (degrade.go): per-line quarantine
	// history, the machine-wide error window, and the arming-pause deadline.
	quarantine     map[vm.VAddr]*quarantineEntry
	hwWindow       []windowEvent
	degradedUntil  simtime.Cycles
	degradedEvents []DegradedEvent

	reports  []BugReport
	onReport func(BugReport)
	stats    Stats

	tr      *telemetry.Tracer
	latency *telemetry.Histogram
}

// Attach wires a SafeMem tool onto machine m and allocator alloc. The
// allocator must be cache-line aligned (Section 4); with corruption
// detection enabled it must also carry one guard line of padding per side —
// use HeapOptions to construct a compatible allocator.
func Attach(m *machine.Machine, alloc *heap.Allocator, opts Options) (*Tool, error) {
	t, err := AttachWithoutHook(m, alloc, opts)
	if err != nil {
		return nil, err
	}
	alloc.AddHook(t)
	return t, nil
}

// AttachWithoutHook builds and wires the tool exactly like Attach — fault
// handler, scrub hooks, fault observer, telemetry — but does NOT register
// it as an allocation hook: the caller owns event delivery and forwards
// OnAlloc/OnFree itself. This is the attachment point for front-ends that
// filter the allocation stream, such as the GWP-ASan-style sampling tool
// (internal/sampletool), which delivers only its sampled subset.
func AttachWithoutHook(m *machine.Machine, alloc *heap.Allocator, opts Options) (*Tool, error) {
	ho := alloc.Options()
	if ho.Align != physmem.LineBytes {
		return nil, fmt.Errorf("safemem: allocator alignment %d, need cache-line alignment (%d)", ho.Align, physmem.LineBytes)
	}
	if opts.DetectCorruption && ho.PadBytes != PadLineBytes {
		return nil, fmt.Errorf("safemem: corruption detection needs %d-byte guard padding, allocator has %d", PadLineBytes, ho.PadBytes)
	}
	if opts.SLeakLifetimeFactor == 0 {
		opts.SLeakLifetimeFactor = 2.0
	}
	if opts.MaxSuspectsPerGroup == 0 {
		opts.MaxSuspectsPerGroup = 3
	}
	if opts.QuarantineThreshold == 0 {
		opts.QuarantineThreshold = 3
	}
	if opts.QuarantineBackoff == 0 {
		opts.QuarantineBackoff = simtime.FromMicroseconds(500)
	}
	if opts.DegradeErrorThreshold == 0 {
		opts.DegradeErrorThreshold = 16
	}
	if opts.DegradeWindow == 0 {
		opts.DegradeWindow = simtime.FromMicroseconds(300)
	}
	t := &Tool{
		m:          m,
		alloc:      alloc,
		opts:       opts,
		groups:     make(map[GroupKey]*group),
		objects:    make(map[vm.VAddr]*object),
		regions:    make(map[*watchRegion]struct{}),
		byLine:     make(map[vm.VAddr]*watchRegion),
		quarantine: make(map[vm.VAddr]*quarantineEntry),
		startTime:  m.Clock.Now(),
		lastCheck:  m.Clock.Now(),
	}
	m.Kern.RegisterECCFaultHandler(t.handleECCFault)
	m.Kern.SetScrubHooks(t.scrubBefore, t.scrubAfter)
	// Machine-wide error pressure: corrected single-bit events feed the
	// degradation window here. Uncorrectable events do NOT — at the
	// controller they are indistinguishable from tripped watches, so the
	// fault handler classifies them (signature check) and reports only the
	// genuine hardware ones via noteMachineError.
	m.Ctrl.AddFaultObserver(func(_ physmem.Addr, uncorrectable bool) {
		if !uncorrectable {
			t.noteMachineError(false)
		}
	})
	t.tr = m.Telemetry.Tracer()
	t.latency = m.Telemetry.Histogram("safemem", "detection_latency_cycles", telemetry.LatencyBuckets)
	m.Telemetry.RegisterSource("safemem", func(emit func(string, float64)) {
		s := t.Stats()
		emit("allocs", float64(s.Allocs))
		emit("frees", float64(s.Frees))
		emit("leak_checks", float64(s.LeakChecks))
		emit("suspects_flagged", float64(s.SuspectsFlagged))
		emit("suspects_pruned", float64(s.SuspectsPruned))
		emit("leaks_reported", float64(s.LeaksReported))
		emit("corruption_reported", float64(s.CorruptionReported))
		emit("hardware_errors", float64(s.HardwareErrors))
		emit("watched_lines", float64(s.WatchedLines))
		emit("max_watched_lines", float64(s.MaxWatchedLines))
		emit("uninit_writes", float64(s.UninitWrites))
		emit("degraded_events", float64(s.DegradedEvents))
		emit("lines_quarantined", float64(s.LinesQuarantined))
		emit("watches_rearmed", float64(s.WatchesRearmed))
		emit("rearms_skipped", float64(s.RearmsSkipped))
		emit("watches_suppressed", float64(s.WatchesSuppressed))
		emit("degrade_periods", float64(s.DegradePeriods))
	})
	return t, nil
}

// Options returns the tool's configuration.
func (t *Tool) Options() Options { return t.opts }

// Reports returns all bug reports so far, in detection order.
func (t *Tool) Reports() []BugReport {
	out := make([]BugReport, len(t.reports))
	copy(out, t.reports)
	return out
}

// Stats returns a copy of the activity counters.
func (t *Tool) Stats() Stats {
	s := t.stats
	s.WatchedLines = uint64(len(t.byLine))
	return s
}

// Groups returns snapshots of all memory-object groups, sorted by first
// allocation order — the input to the Figure 3 lifetime-stability study.
func (t *Tool) Groups() []GroupInfo {
	out := make([]GroupInfo, 0, len(t.groups))
	for _, g := range t.groups {
		out = append(out, GroupInfo{
			Key:           g.key,
			LiveCount:     g.liveCount,
			TotalAllocs:   g.totalAllocs,
			Frees:         g.frees,
			TotalBytes:    g.totalBytes,
			MaxLifetime:   g.maxLifetime,
			StableTime:    g.stableTime,
			LastMaxChange: g.lastMaxChange,
			LastAllocTime: g.lastAllocTime,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Site != out[j].Key.Site {
			return out[i].Key.Site < out[j].Key.Site
		}
		return out[i].Key.Size < out[j].Key.Size
	})
	return out
}

// SetReportCallback registers a function invoked synchronously on every new
// bug report — the hook a long-running server uses to stream findings to
// its log instead of polling Reports().
func (t *Tool) SetReportCallback(fn func(BugReport)) { t.onReport = fn }

func (t *Tool) report(r BugReport) {
	r.Time = t.m.Clock.Now()
	t.reports = append(t.reports, r)
	if r.Kind.IsLeak() {
		t.stats.LeaksReported++
	} else {
		t.stats.CorruptionReported++
	}
	if r.Latency > 0 {
		t.latency.ObserveCycles(r.Latency)
	}
	t.tr.Instant("safemem", "report:"+r.Kind.String(),
		telemetry.KV("addr", uint64(r.Addr)),
		telemetry.KV("latency_cycles", uint64(r.Latency)))
	flight.Emit(flight.KindBugReport, "safemem", r.Time, r.Kind.String(),
		flight.F("addr", uint64(r.Addr)),
		flight.F("site", r.Site),
		flight.F("latency_cycles", uint64(r.Latency)))
	if t.onReport != nil {
		t.onReport(r)
	}
	if t.opts.StopOnBug && !r.Kind.IsLeak() {
		machine.Abort("safemem: %s", r)
	}
}

// Shutdown runs the program-exit pass: any leak suspect that is still
// ECC-watched and has aged past the confirmation window is reported (the
// program is ending — no future access can exonerate it), and every watch
// is disabled so memory is left in its natural state. Further allocator
// activity is no longer monitored for corruption. Returns the newly
// produced reports.
func (t *Tool) Shutdown() []BugReport {
	sp := t.tr.Begin("safemem", "shutdown")
	defer sp.End()
	before := len(t.reports)
	now := t.m.Clock.Now()
	confirm := t.sortedSuspectRegions(now)
	for _, r := range confirm {
		t.reportLeak(r.obj.group, r.obj)
	}
	t.unwatchAll()
	out := make([]BugReport, len(t.reports)-before)
	copy(out, t.reports[before:])
	return out
}

// OnAlloc implements heap.Hook: the malloc/calloc/realloc wrapper
// (Section 3.2.1 for leak bookkeeping, Section 4 for corruption watches).
func (t *Tool) OnAlloc(b *heap.Block) {
	t.stats.Allocs++
	now := t.m.Clock.Now()

	// The allocator may have carved this block out of watched freed space;
	// reallocation disables those watches (Section 4).
	t.unwatchOverlapping(b.FullAddr, b.FullSize)

	if t.opts.DetectLeaks {
		t.m.Clock.Advance(costLeakAlloc)
		key := GroupKey{Size: b.Size, Site: b.Site}
		g := t.groups[key]
		if g == nil {
			g = &group{key: key, lastUpdate: now, lastMaxChange: now}
			t.groups[key] = g
		}
		obj := &object{block: b, group: g, allocTime: now}
		g.append(obj)
		g.lastAllocTime = now
		g.totalBytes += b.Size
		g.totalAllocs++
		t.objects[b.Addr] = obj
	}

	if t.opts.DetectCorruption {
		t.armPad(b.PadBefore(), watchPadBefore, b)
		t.armPad(b.PadAfter(), watchPadAfter, b)
	}

	if t.opts.DetectUninitRead && !t.lineWatched(b.Addr, b.RoundedSize) {
		if t.corruptionDegraded() || t.lineQuarantined(b.Addr, b.RoundedSize) {
			t.stats.WatchesSuppressed++
		} else if _, err := t.watch(b.Addr, b.RoundedSize, watchUninit, b, nil); err != nil {
			t.degrade("arm-uninit", b.Addr, err.Error())
		}
	}

	t.maybeCheckLeaks()
}

// armPad arms one guard-line watch unless degradation policy suppresses it:
// a quarantined pad line (its DRAM keeps faulting) or a machine-wide
// corruption-arming pause. Arming failures degrade instead of panicking.
func (t *Tool) armPad(base vm.VAddr, kind watchKind, b *heap.Block) {
	if t.corruptionDegraded() || t.lineQuarantined(base, PadLineBytes) {
		t.stats.WatchesSuppressed++
		return
	}
	if _, err := t.watch(base, PadLineBytes, kind, b, nil); err != nil {
		t.degrade("arm-"+kind.String(), base, err.Error())
	}
}

// OnFree implements heap.Hook: the free wrapper.
func (t *Tool) OnFree(b *heap.Block) {
	t.stats.Frees++
	now := t.m.Clock.Now()

	if t.opts.DetectLeaks {
		t.m.Clock.Advance(costLeakFree)
		if obj, ok := t.objects[b.Addr]; ok {
			if obj.suspect != nil {
				// Freeing a watched suspect exonerates it.
				t.stats.SuspectsPruned++
				t.unwatchOrDegrade(obj.suspect, false, "unwatch-on-free")
			}
			g := obj.group
			g.remove(obj)
			g.totalBytes -= b.Size
			g.recordDealloc(now, now-obj.allocTime, t.opts.LifetimeTolerance)
			delete(t.objects, b.Addr)
		}
	}

	// Disable any remaining watches inside the block's extent (guard pads,
	// uninit watch), then watch the whole freed extent (Section 4).
	t.unwatchOverlapping(b.FullAddr, b.FullSize)
	if t.opts.DetectCorruption {
		if t.corruptionDegraded() || t.lineQuarantined(b.FullAddr, b.FullSize) {
			t.stats.WatchesSuppressed++
		} else if _, err := t.watch(b.FullAddr, b.FullSize, watchFreed, b, nil); err != nil {
			t.degrade("arm-freed", b.FullAddr, err.Error())
		}
	}

	t.maybeCheckLeaks()
}

// scrubBefore / scrubAfter implement the scrub-coordination protocol
// (Section 2.2.2): all watches are temporarily disabled while the memory
// controller scrubs, then re-armed.
func (t *Tool) scrubBefore() { t.savedForScrub = t.unwatchAll() }
func (t *Tool) scrubAfter()  { t.rewatchAll(t.savedForScrub); t.savedForScrub = nil }
