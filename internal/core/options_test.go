package safemem

import (
	"testing"

	"safemem/internal/simtime"
)

func TestDefaultOptionValues(t *testing.T) {
	o := DefaultOptions()
	if !o.DetectLeaks || !o.DetectCorruption || !o.PruneWithECC {
		t.Fatal("defaults must enable both detectors and pruning")
	}
	if o.DetectUninitRead || o.StopOnBug {
		t.Fatal("extensions must default off")
	}
	if o.SLeakLifetimeFactor != 2.0 {
		t.Fatalf("SLeak factor = %v, paper uses 2×", o.SLeakLifetimeFactor)
	}
	if o.WarmupTime == 0 || o.CheckingPeriod == 0 || o.LeakConfirmTime == 0 {
		t.Fatal("zero time thresholds")
	}
	if o.CheckingPeriod >= o.LeakConfirmTime {
		t.Fatal("checking period should be well below the confirm window")
	}
}

func TestAttachFillsZeroOptions(t *testing.T) {
	r := newTool(t, Options{DetectLeaks: true}) // most fields zero
	if r.tool.Options().SLeakLifetimeFactor != 2.0 {
		t.Fatal("zero SLeakLifetimeFactor not defaulted")
	}
	if r.tool.Options().MaxSuspectsPerGroup != 3 {
		t.Fatal("zero MaxSuspectsPerGroup not defaulted")
	}
}

// leakSetup drives a group to stability with `hold` un-freed stragglers.
func leakSetup(t *testing.T, r *testRig, hold int, iters int) {
	t.Helper()
	kept := 0
	for i := 0; i < iters; i++ {
		r.m.Call(0x1212)
		p, err := r.alloc.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		r.m.Return()
		r.m.Compute(1000)
		if kept < hold && i%9 == 4 {
			kept++
			continue // never freed
		}
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxSuspectsPerGroupBoundsWatches(t *testing.T) {
	// With N stragglers but MaxSuspectsPerGroup=1, at most one suspect is
	// ECC-watched per checking pass.
	o := leakOpts()
	o.MaxSuspectsPerGroup = 1
	o.LeakConfirmTime = simtime.FromMicroseconds(100_000) // no confirms
	r := newTool(t, o)
	leakSetup(t, r, 6, 800)
	if w := r.tool.Stats().WatchedLines; w > 1 {
		t.Fatalf("%d suspect watches live, want ≤ 1", w)
	}
	if r.tool.Stats().SuspectsFlagged == 0 {
		t.Fatal("nothing flagged")
	}
}

func TestLifetimeFactorGatesSuspicion(t *testing.T) {
	// With a huge lifetime factor, nothing is old enough to be a suspect.
	o := leakOpts()
	o.SLeakLifetimeFactor = 10_000
	r := newTool(t, o)
	leakSetup(t, r, 2, 1000)
	if n := r.tool.Stats().SuspectsFlagged; n != 0 {
		t.Fatalf("flagged %d suspects despite a 10000× factor", n)
	}
}

func TestStabilityGateBlocksLowConfidence(t *testing.T) {
	// With an enormous stability requirement, condition 2 of Section 3.2.2
	// never holds and no SLeak suspects are singled out.
	o := leakOpts()
	o.SLeakStableTime = simtime.FromMicroseconds(10_000_000)
	r := newTool(t, o)
	leakSetup(t, r, 2, 1000)
	if n := r.tool.Stats().SuspectsFlagged; n != 0 {
		t.Fatalf("flagged %d suspects without stability", n)
	}
}

func TestLifetimeToleranceControlsStability(t *testing.T) {
	// The §3.2.1 update rule, directly: deallocations whose lifetime stays
	// within (1+tolerance)×max accumulate stability; anything beyond
	// raises the maximum and resets the stability clock.
	feed := func(tolerance float64) (simtime.Cycles, simtime.Cycles) {
		g := &group{key: GroupKey{Size: 1}}
		now := simtime.Cycles(0)
		lifetimes := []simtime.Cycles{100, 105, 112, 108, 118, 110, 115}
		for _, lt := range lifetimes {
			now += 1000
			g.recordDealloc(now, lt, tolerance)
		}
		return g.maxLifetime, g.stableTime
	}
	// ±18% jitter: with a 20% tolerance only the first sample changes the
	// maximum; with a 1% tolerance every new record resets stability.
	maxLoose, stableLoose := feed(0.20)
	maxTight, stableTight := feed(0.01)
	if maxLoose != 100 {
		t.Fatalf("loose max = %v, want the first sample (100)", maxLoose)
	}
	if maxTight != 118 {
		t.Fatalf("tight max = %v, want the record (118)", maxTight)
	}
	if stableLoose != 6000 {
		t.Fatalf("loose stability = %v, want 6000 (six in-band samples)", stableLoose)
	}
	if stableTight >= stableLoose {
		t.Fatalf("tight stability (%v) not below loose (%v)", stableTight, stableLoose)
	}
}

func TestUninitAndCorruptionCompose(t *testing.T) {
	opts := DefaultOptions()
	opts.DetectUninitRead = true
	r := newTool(t, opts)
	p := r.malloc(t, 64)
	_ = r.m.Load8(p + 8) // uninit read
	r.m.Store8(p+64, 1)  // overflow into the guard
	ks := kinds(r.tool.Reports())
	if len(ks) != 2 || ks[0] != BugUninitRead || ks[1] != BugOverflow {
		t.Fatalf("reports = %v", ks)
	}
}
