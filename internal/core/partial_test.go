package safemem

import (
	"testing"
)

func TestPartialReuseDropsWholeFreedWatch(t *testing.T) {
	// When the allocator carves a smaller block out of a watched freed
	// extent, SafeMem disables the watch for the WHOLE old extent (the
	// conservative choice: the region's saved originals no longer describe
	// a single coherent buffer). Accesses to the not-yet-reused remainder
	// are therefore no longer reported — a deliberate, documented
	// trade-off, matching the paper's "when a freed memory buffer is
	// reallocated, ECC monitoring for this buffer will be disabled".
	r := newTool(t, DefaultOptions())
	big := r.malloc(t, 256) // 4 user lines + 2 pads
	r.m.Store64(big, 1)
	if err := r.alloc.Free(big); err != nil {
		t.Fatal(err)
	}
	// Carve a small block from the front of the freed extent.
	small := r.malloc(t, 64)
	if small != big {
		t.Skipf("allocator did not reuse the extent front (%#x vs %#x)", uint64(small), uint64(big))
	}
	r.m.Store64(small, 2) // the reused part: clean
	if n := len(r.tool.Reports()); n != 0 {
		t.Fatalf("reuse reported: %v", r.tool.Reports())
	}
	// The old extent's tail is unwatched now: this dangling access is
	// missed (documented limitation).
	_ = r.m.Load64(big + 192)
	if n := len(r.tool.Reports()); n != 0 {
		t.Fatalf("tail access unexpectedly reported (behaviour changed?): %v", r.tool.Reports())
	}
	// But once the tail is freed again in a later cycle, watching resumes.
	if err := r.alloc.Free(small); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load64(small)
	found := false
	for _, rep := range r.tool.Reports() {
		if rep.Kind == BugFreedAccess {
			found = true
		}
	}
	if !found {
		t.Fatal("re-freed extent not watched")
	}
}

func TestAdjacentBuffersShareNoGuards(t *testing.T) {
	// Each buffer gets its own two guard lines even when buffers are
	// adjacent: an overflow from A is attributed to A, an underflow from B
	// to B, with no cross-talk.
	r := newTool(t, DefaultOptions())
	a := r.malloc(t, 64)
	b := r.malloc(t, 64)
	if b != a+192 { // a + user line + 2 guard lines
		t.Skipf("layout not adjacent: %#x, %#x", uint64(a), uint64(b))
	}
	r.m.Store8(a+64, 1)  // A's trailing guard
	_ = r.m.Load8(b - 1) // B's leading guard
	reports := r.tool.Reports()
	if len(reports) != 2 {
		t.Fatalf("reports = %v", kinds(reports))
	}
	if reports[0].Kind != BugOverflow || reports[0].BufferAddr != a {
		t.Fatalf("report 0 = %+v", reports[0])
	}
	if reports[1].Kind != BugUnderflow || reports[1].BufferAddr != b {
		t.Fatalf("report 1 = %+v", reports[1])
	}
}
