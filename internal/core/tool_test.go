package safemem

import (
	"errors"
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

type testRig struct {
	m     *machine.Machine
	alloc *heap.Allocator
	tool  *Tool
}

func newTool(t *testing.T, opts Options) *testRig {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, HeapOptions(opts.DetectCorruption || opts.DetectUninitRead))
	if err != nil {
		t.Fatal(err)
	}
	tool, err := Attach(m, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{m: m, alloc: alloc, tool: tool}
}

func (r *testRig) malloc(t *testing.T, size uint64) vm.VAddr {
	t.Helper()
	p, err := r.alloc.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func kinds(rs []BugReport) []BugKind {
	out := make([]BugKind, len(rs))
	for i, r := range rs {
		out[i] = r.Kind
	}
	return out
}

func TestAttachValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 4 << 20})
	plain := heap.MustNew(m, heap.Options{}) // 8-byte aligned
	if _, err := Attach(m, plain, DefaultOptions()); err == nil {
		t.Fatal("attach to unaligned allocator accepted")
	}
	aligned := heap.MustNew(m, heap.Options{Align: 64, Base: 0x4000000})
	if _, err := Attach(m, aligned, DefaultOptions()); err == nil {
		t.Fatal("corruption detection without padding accepted")
	}
}

func TestBufferOverflowDetected(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 100)
	// Stay in bounds: no report.
	r.m.Store8(p+99, 1)
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("in-bounds access reported: %v", r.tool.Reports())
	}
	// One byte past the rounded size lands in the guard line.
	r.m.Store8(p+vm.VAddr(128), 0xee)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOverflow {
		t.Fatalf("reports = %v", kinds(reports))
	}
	if reports[0].BufferAddr != p || reports[0].BufferSize != 100 {
		t.Fatalf("report buffer = %#x/%d", uint64(reports[0].BufferAddr), reports[0].BufferSize)
	}
	if !reports[0].AccessWrite {
		t.Fatal("store not identified as write")
	}
	if reports[0].Addr != p+128 {
		t.Fatalf("fault address = %#x, want %#x", uint64(reports[0].Addr), uint64(p+128))
	}
}

func TestBufferUnderflowDetected(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	_ = r.m.Load8(p - 1)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugUnderflow {
		t.Fatalf("reports = %v", kinds(reports))
	}
	if reports[0].AccessWrite {
		t.Fatal("load identified as write")
	}
}

func TestOverflowReportedOncePerPad(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store8(p+64, 1)
	r.m.Store8(p+65, 1) // same tripped (now disabled) pad
	if n := len(r.tool.Reports()); n != 1 {
		t.Fatalf("reports = %d, want 1", n)
	}
}

func TestFreedMemoryAccessDetected(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 0x1234)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load64(p)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugFreedAccess {
		t.Fatalf("reports = %v", kinds(reports))
	}
}

func TestReallocationDisablesFreedWatch(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	q := r.malloc(t, 64) // first fit reuses the extent
	if q != p {
		t.Fatalf("allocator did not reuse extent (%#x vs %#x)", uint64(q), uint64(p))
	}
	r.m.Store64(q, 7)
	if got := r.m.Load64(q); got != 7 {
		t.Fatalf("reallocated memory = %d", got)
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("reuse after realloc reported: %v", r.tool.Reports())
	}
}

func TestStopOnBugAborts(t *testing.T) {
	opts := DefaultOptions()
	opts.StopOnBug = true
	r := newTool(t, opts)
	p := r.malloc(t, 64)
	err := r.m.Run(func() error {
		r.m.Store8(p+64, 1)
		return nil
	})
	var abort *machine.ProgramAbort
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v, want ProgramAbort", err)
	}
}

func TestNormalExecutionNoFalseCorruption(t *testing.T) {
	r := newTool(t, DefaultOptions())
	var ptrs []vm.VAddr
	for i := 0; i < 64; i++ {
		p := r.malloc(t, uint64(16+i*8))
		r.m.Memset(p, byte(i), uint64(16+i*8))
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%2 == 0 {
			if err := r.alloc.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, p := range ptrs {
		if i%2 == 1 {
			_ = r.m.Load8(p)
		}
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("clean run produced reports: %v", r.tool.Reports())
	}
}

// leakOpts returns leak-only options with short, test-friendly windows.
func leakOpts() Options {
	o := DefaultOptions()
	o.DetectCorruption = false
	o.WarmupTime = simtime.FromMicroseconds(50)
	o.CheckingPeriod = simtime.FromMicroseconds(20)
	o.ALeakLiveThreshold = 20
	o.ALeakRecentWindow = simtime.FromMicroseconds(200)
	o.SLeakStableTime = simtime.FromMicroseconds(100)
	o.LeakConfirmTime = simtime.FromMicroseconds(300)
	return o
}

func TestALeakDetected(t *testing.T) {
	r := newTool(t, leakOpts())
	// A group that grows forever and is never freed or accessed.
	for i := 0; i < 2000; i++ {
		r.m.Call(0xbad0)
		p := r.malloc(t, 48)
		r.m.Return()
		_ = p // never freed, never accessed again
		r.m.Compute(2000)
		if len(r.tool.Reports()) > 0 {
			break
		}
	}
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugALeak {
		t.Fatalf("reports = %v", kinds(reports))
	}
}

func TestInitTimeWorkingSetNotFlagged(t *testing.T) {
	r := newTool(t, leakOpts())
	// Allocate a large working set up front, then stop growing it but keep
	// *using* it: a never-freed group that is no longer growing and whose
	// objects are accessed is not a continuous leak (Section 3.2.2).
	var ws []vm.VAddr
	for i := 0; i < 30; i++ {
		r.m.Call(0x1111)
		ws = append(ws, r.malloc(t, 48))
		r.m.Return()
	}
	for i := 0; i < 2000; i++ {
		r.m.Call(0x2222)
		p := r.malloc(t, 16)
		r.m.Return()
		r.m.Compute(1000)
		// Program uses its working set.
		_ = r.m.Load8(ws[i%len(ws)])
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("init-time working set reported: %v", r.tool.Reports())
	}
}

func TestSLeakDetectedAndPruningExonerates(t *testing.T) {
	r := newTool(t, leakOpts())
	// Phase 1: establish a stable lifetime for the group.
	var leaked, touched vm.VAddr
	for i := 0; i < 400; i++ {
		r.m.Call(0x3333)
		p := r.malloc(t, 32)
		r.m.Return()
		r.m.Compute(1000)
		switch i {
		case 100:
			leaked = p // the one the program forgets to free
		case 101:
			touched = p // long-lived but periodically accessed
		default:
			if err := r.alloc.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 && touched != 0 {
			_ = r.m.Load64(touched) // program still uses this one
		}
	}
	// Phase 2: keep the program allocating so checks keep firing.
	for i := 0; i < 3000 && r.tool.Stats().LeaksReported == 0; i++ {
		r.m.Call(0x3333)
		p := r.malloc(t, 32)
		r.m.Return()
		r.m.Compute(1000)
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
		if touched != 0 {
			_ = r.m.Load64(touched)
		}
	}
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugSLeak {
		t.Fatalf("reports = %v", kinds(reports))
	}
	if reports[0].BufferAddr != leaked {
		t.Fatalf("reported %#x, want the leaked object %#x", uint64(reports[0].BufferAddr), uint64(leaked))
	}
	st := r.tool.Stats()
	if st.SuspectsPruned == 0 {
		t.Fatal("the touched long-lived object should have been pruned")
	}
	if st.SuspectsFlagged < 2 {
		t.Fatalf("SuspectsFlagged = %d, want ≥ 2", st.SuspectsFlagged)
	}
}

func TestNoPruningReportsImmediately(t *testing.T) {
	// Table 5's "before pruning" configuration: every suspect becomes a
	// report, including ones the program still uses.
	o := leakOpts()
	o.PruneWithECC = false
	r := newTool(t, o)
	var touched vm.VAddr
	for i := 0; i < 3000 && r.tool.Stats().LeaksReported == 0; i++ {
		r.m.Call(0x4444)
		p := r.malloc(t, 32)
		r.m.Return()
		r.m.Compute(1000)
		if i == 50 {
			touched = p // never freed, but periodically accessed: NOT a leak
		} else if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
		if touched != 0 && i%5 == 0 {
			_ = r.m.Load64(touched)
		}
	}
	if r.tool.Stats().LeaksReported == 0 {
		t.Fatal("no report despite disabled pruning")
	}
	if r.tool.Stats().SuspectsPruned != 0 {
		t.Fatal("pruning happened despite being disabled")
	}
}

func TestPruningPreventsFalsePositive(t *testing.T) {
	// Same program as above but with pruning: the touched object must NOT
	// be reported.
	r := newTool(t, leakOpts())
	var touched vm.VAddr
	for i := 0; i < 3000; i++ {
		r.m.Call(0x4444)
		p := r.malloc(t, 32)
		r.m.Return()
		r.m.Compute(1000)
		if i == 50 {
			touched = p
		} else if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
		if touched != 0 && i%5 == 0 {
			_ = r.m.Load64(touched)
		}
	}
	if n := r.tool.Stats().LeaksReported; n != 0 {
		t.Fatalf("false positives reported: %d (%v)", n, kinds(r.tool.Reports()))
	}
	if r.tool.Stats().SuspectsPruned == 0 {
		t.Fatal("expected at least one pruned suspect")
	}
}

func TestFreeingSuspectExoneratesIt(t *testing.T) {
	r := newTool(t, leakOpts())
	var slow vm.VAddr
	for i := 0; i < 1200; i++ {
		r.m.Call(0x5555)
		p := r.malloc(t, 32)
		r.m.Return()
		r.m.Compute(1000)
		if i == 50 {
			slow = p
		} else if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
		if i == 500 {
			// The program finally frees it — while it is watched, but
			// before the confirmation window elapses.
			if err := r.alloc.Free(slow); err != nil {
				t.Fatal(err)
			}
			slow = 0
		}
	}
	if n := r.tool.Stats().LeaksReported; n != 0 {
		t.Fatalf("freed object reported as leak: %v", kinds(r.tool.Reports()))
	}
}
