package safemem

import (
	"fmt"

	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// BugKind classifies a SafeMem report.
type BugKind int

const (
	// BugALeak is an always-leak: a group that is never freed on any path
	// and keeps growing (Section 3.1).
	BugALeak BugKind = iota
	// BugSLeak is a sometimes-leak: an object that outlived its group's
	// expected maximal lifetime and was never accessed again.
	BugSLeak
	// BugOverflow is a write or read past the end of a buffer (access to
	// the trailing guard line).
	BugOverflow
	// BugUnderflow is an access before the start of a buffer (leading
	// guard line).
	BugUnderflow
	// BugFreedAccess is an access to a freed buffer.
	BugFreedAccess
	// BugUninitRead is a read of a never-written buffer (the Section 4
	// extension).
	BugUninitRead
)

// String names the bug kind.
func (k BugKind) String() string {
	switch k {
	case BugALeak:
		return "memory-leak(always)"
	case BugSLeak:
		return "memory-leak(sometimes)"
	case BugOverflow:
		return "buffer-overflow"
	case BugUnderflow:
		return "buffer-underflow"
	case BugFreedAccess:
		return "freed-memory-access"
	case BugUninitRead:
		return "uninitialized-read"
	default:
		return fmt.Sprintf("BugKind(%d)", int(k))
	}
}

// IsLeak reports whether the kind is one of the two leak classes.
func (k BugKind) IsLeak() bool { return k == BugALeak || k == BugSLeak }

// BugReport is one detected bug. For corruption bugs, the report carries
// enough context for the programmer to find the buffer (the simulator's
// stand-in for attaching gdb at the paused instruction).
type BugReport struct {
	Kind BugKind
	// Time is the simulated CPU time of the report.
	Time simtime.Cycles
	// Latency is the detection latency in simulated cycles: the time from
	// when the bug became observable (the watch was armed — free time for
	// freed accesses, allocation for overflows and uninit reads, suspect
	// flagging for leaks) until this report. Zero when unknown.
	Latency simtime.Cycles
	// Addr is the faulting address (corruption) or the object's user
	// pointer (leaks).
	Addr vm.VAddr
	// BufferAddr / BufferSize identify the associated buffer.
	BufferAddr vm.VAddr
	BufferSize uint64
	// Site is the allocation call-stack signature of the buffer's group.
	Site uint64
	// AccessWrite reports whether the faulting access was a store (valid
	// for corruption bugs when the access kind is known).
	AccessWrite bool
	// Details is a human-readable elaboration.
	Details string
}

// String renders the report in the tool's log format.
func (r BugReport) String() string {
	return fmt.Sprintf("[%s] %s addr=%#x buffer=%#x size=%d site=%#x: %s",
		r.Time, r.Kind, uint64(r.Addr), uint64(r.BufferAddr), r.BufferSize, r.Site, r.Details)
}

// Stats summarises the tool's activity, including the Table 5 pruning
// counters.
type Stats struct {
	// Allocs and Frees count interposed heap events.
	Allocs uint64
	Frees  uint64
	// LeakChecks counts periodic detection passes.
	LeakChecks uint64
	// SuspectsFlagged counts objects flagged as leak suspects (the
	// "before pruning" population of Table 5).
	SuspectsFlagged uint64
	// SuspectsPruned counts suspects exonerated by an access to their
	// ECC-watched bytes.
	SuspectsPruned uint64
	// LeaksReported counts confirmed leak reports.
	LeaksReported uint64
	// CorruptionReported counts corruption reports.
	CorruptionReported uint64
	// HardwareErrors counts real ECC errors repaired from SafeMem's saved
	// copies.
	HardwareErrors uint64
	// WatchedLines is the current number of ECC-watched lines;
	// MaxWatchedLines is the high-water mark.
	WatchedLines    uint64
	MaxWatchedLines uint64
	// UninitWrites counts first-writes that silently disarmed an
	// uninitialized-read watch.
	UninitWrites uint64
	// DegradedEvents counts monitoring capabilities SafeMem gave up to keep
	// the program running (see DegradedEvent).
	DegradedEvents uint64
	// LinesQuarantined counts lines whose hardware kept faulting and are no
	// longer re-armed.
	LinesQuarantined uint64
	// WatchesRearmed counts watches re-armed after a hardware-error repair.
	WatchesRearmed uint64
	// RearmsSkipped counts hardware-repaired watches NOT re-armed because
	// of quarantine or degraded mode.
	RearmsSkipped uint64
	// WatchesSuppressed counts watch arms the degradation policy suppressed
	// (quarantined lines and machine-wide arming pauses).
	WatchesSuppressed uint64
	// DegradePeriods counts machine-wide corruption-arming pauses.
	DegradePeriods uint64
}
