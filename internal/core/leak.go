package safemem

import (
	"fmt"
	"sort"

	"safemem/internal/simtime"
	"safemem/internal/telemetry"
)

// maybeCheckLeaks runs the periodic leak-detection pass (Section 3.2.2).
// It is called only from the allocation/deallocation wrappers: if the
// program is not allocating, its memory usage is not growing and no check
// is needed ("it is safe to perform the detection process only at memory
// allocation/deallocation time").
func (t *Tool) maybeCheckLeaks() {
	if !t.opts.DetectLeaks {
		return
	}
	now := t.m.Clock.Now()
	if now-t.startTime < t.opts.WarmupTime {
		return
	}
	if now-t.lastCheck < t.opts.CheckingPeriod {
		return
	}
	t.lastCheck = now
	t.stats.LeakChecks++
	sp := t.tr.Begin("safemem", "leak-check", telemetry.KV("groups", uint64(len(t.groups))))
	defer sp.End()
	t.m.Clock.Advance(costCheckBase + costCheckPerGroup*simtime.Cycles(len(t.groups)))

	for _, g := range t.sortedGroups() {
		if g.reported || now < g.suspendUntil {
			continue
		}
		if g.everFreed() {
			t.checkSLeak(g, now)
		} else {
			t.checkALeak(g, now)
		}
	}
	t.confirmSuspects()
}

// checkALeak applies the always-leak test: a never-freed group whose live
// population exceeds the threshold *and* whose memory usage is still
// growing (recent last allocation). Groups that allocated a large working
// set at initialisation and stopped growing are deliberately not flagged.
func (t *Tool) checkALeak(g *group, now simtime.Cycles) {
	if g.liveCount < t.opts.ALeakLiveThreshold {
		return
	}
	if now-g.lastAllocTime > t.opts.ALeakRecentWindow {
		return // not growing: likely an init-time working set
	}
	t.flagSuspects(g, now, func(obj *object) bool { return true })
}

// checkSLeak applies the sometimes-leak test of Section 3.2.2: only when
// the group's maximal lifetime has been stable long enough (condition 2)
// are the oldest objects compared against factor × maxLifetime
// (condition 1).
func (t *Tool) checkSLeak(g *group, now simtime.Cycles) {
	if g.stableTime < t.opts.SLeakStableTime {
		return // low confidence: no outliers singled out
	}
	limit := simtime.Cycles(t.opts.SLeakLifetimeFactor * float64(g.maxLifetime))
	if limit == 0 {
		return
	}
	t.flagSuspects(g, now, func(obj *object) bool {
		return now-obj.allocTime > limit
	})
}

// flagSuspects walks the oldest live objects of g (the head of the
// allocation-ordered list) and flags up to MaxSuspectsPerGroup of them that
// satisfy cond. With pruning enabled each suspect is ECC-watched; without
// it (the Table 5 "before pruning" configuration) the suspect is reported
// immediately.
func (t *Tool) flagSuspects(g *group, now simtime.Cycles, cond func(*object) bool) {
	checked := 0
	for obj := g.head; obj != nil && checked < t.opts.MaxSuspectsPerGroup; obj = obj.next {
		checked++
		if obj.suspect != nil || obj.reported {
			continue
		}
		if !cond(obj) {
			// The list is allocation-ordered, so once an old object fails
			// the lifetime condition, younger ones will too.
			break
		}
		t.stats.SuspectsFlagged++
		if !t.opts.PruneWithECC {
			t.reportLeak(g, obj)
			continue
		}
		if t.lineWatched(obj.block.Addr, obj.block.RoundedSize) {
			// Already covered (e.g. an uninit watch): reuse that watch as
			// the pruning probe by marking the object; the fault handler
			// prunes on any access.
			continue
		}
		if t.lineQuarantined(obj.block.Addr, obj.block.RoundedSize) {
			// The suspect's DRAM cannot hold a watch; try again next pass
			// once the quarantine backoff expires.
			t.stats.WatchesSuppressed++
			continue
		}
		r, err := t.watch(obj.block.Addr, obj.block.RoundedSize, watchLeakSuspect, obj.block, obj)
		if err != nil {
			t.degrade("arm-suspect", obj.block.Addr, err.Error())
			continue
		}
		obj.suspect = r
	}
}

// sortedGroups returns the groups in deterministic ⟨site, size⟩ order. Group
// iteration both arms watches (advancing the clock mid-pass) and emits
// reports, so map order would leak into watch timestamps, detection
// latencies and report order — unacceptable for reproducible runs (the
// campaign harness compares whole-run summaries byte for byte).
func (t *Tool) sortedGroups() []*group {
	out := make([]*group, 0, len(t.groups))
	for _, g := range t.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.Site != out[j].key.Site {
			return out[i].key.Site < out[j].key.Site
		}
		return out[i].key.Size < out[j].key.Size
	})
	return out
}

// sortedSuspectRegions returns the leak-suspect watch regions aged past the
// confirmation window, in deterministic base-address order (see
// sortedGroups for why map order must not reach the report stream).
func (t *Tool) sortedSuspectRegions(now simtime.Cycles) []*watchRegion {
	var out []*watchRegion
	for r := range t.regions {
		if r.kind == watchLeakSuspect && r.obj != nil && !r.obj.reported &&
			now >= r.watchedAt && now-r.watchedAt >= t.opts.LeakConfirmTime {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// confirmSuspects reports watched suspects whose memory has stayed
// untouched for the confirmation window: the program had every chance to
// access them and never did. The clock is re-read here because the watch
// syscalls of this same pass advanced it past the time the pass started.
func (t *Tool) confirmSuspects() {
	now := t.m.Clock.Now()
	confirmed := t.sortedSuspectRegions(now)
	for _, r := range confirmed {
		obj := r.obj
		t.reportLeak(obj.group, obj)
		t.unwatchOrDegrade(r, false, "unwatch-confirmed-leak")
	}
}

// reportLeak emits one leak report for the group (each buggy allocation
// site reports once) and marks the object.
func (t *Tool) reportLeak(g *group, obj *object) {
	obj.reported = true
	if g.reported {
		return
	}
	g.reported = true
	kind := BugALeak
	details := fmt.Sprintf("group ⟨size=%d,site=%#x⟩ has %d live objects and keeps growing, none ever freed",
		g.key.Size, g.key.Site, g.liveCount)
	if g.everFreed() {
		kind = BugSLeak
		details = fmt.Sprintf("object outlived %.1f× the stable maximal lifetime (%s) of group ⟨size=%d,site=%#x⟩ and was never accessed again",
			t.opts.SLeakLifetimeFactor, g.maxLifetime, g.key.Size, g.key.Site)
	}
	var latency simtime.Cycles
	if obj.suspect != nil {
		// Confirmation latency: time from flagging (and ECC-watching) the
		// suspect until the report.
		latency = t.m.Clock.Now() - obj.suspect.watchedAt
	}
	t.report(BugReport{
		Kind:       kind,
		Latency:    latency,
		Addr:       obj.block.Addr,
		BufferAddr: obj.block.Addr,
		BufferSize: obj.block.Size,
		Site:       g.key.Site,
		Details:    details,
	})
}

// pruneSuspect exonerates a watched suspect that was just accessed
// (Section 3.2.3): monitoring stops, the object's allocation time restarts,
// and the group's expected maximal lifetime is raised to the object's
// current age so similar false positives stop arising.
func (t *Tool) pruneSuspect(r *watchRegion) {
	now := t.m.Clock.Now()
	obj := r.obj
	t.stats.SuspectsPruned++
	t.unwatchOrDegrade(r, false, "unwatch-pruned-suspect")
	if obj == nil {
		return
	}
	g := obj.group
	if g.everFreed() {
		// Raising the expected maximal lifetime to this suspect's age
		// naturally backs off future flagging in the group (§3.2.3).
		// lastMaxChange is deliberately NOT updated here: it records the
		// deallocation-driven warm-up statistic of the Section 3.1 study,
		// which predates (and is independent of) the pruning machinery.
		living := now - obj.allocTime
		if living > g.maxLifetime {
			g.maxLifetime = living
			g.stableTime = 0
			g.lastUpdate = now
		}
	} else {
		// Always-leak groups have no lifetime statistic to raise, so an
		// exonerated suspect would be re-flagged at the very next check.
		// Suspend flagging for the group instead: it is demonstrably in
		// use.
		g.suspendUntil = now + 4*t.opts.CheckingPeriod
	}
	obj.allocTime = now
	g.moveToTail(obj)
}
