// Graceful degradation under hardware faults.
//
// SafeMem's job is to keep a production run alive; a monitoring tool that
// kills the process because a DRAM cell went bad is worse than the bugs it
// hunts. This file turns every "impossible" watch-repair failure into a
// recorded DegradedEvent, quarantines lines whose hardware keeps faulting,
// and pauses corruption *arming* — never leak detection — while the
// machine-wide ECC error rate is above threshold. The ladder, mildest first:
//
//  1. Repair and re-arm: a hardware error on a watched line is repaired from
//     the private copy and the watch is re-armed at the kernel's next safe
//     point, preserving its confirmation clock.
//  2. Quarantine: after QuarantineThreshold faults on the same line, SafeMem
//     stops re-arming it; every further fault doubles the re-arm backoff.
//  3. Degraded mode: when the weighted machine-wide ECC event count crosses
//     DegradeErrorThreshold within DegradeWindow (an error storm), new
//     corruption watches — guard pads, freed extents, uninit probes — are
//     suppressed until the window passes. Leak bookkeeping and suspect
//     pruning continue unaffected: they need no new watches to stay sound,
//     only the ones already armed.
//  4. Degraded events: a kernel watch operation that still fails is recorded
//     (with the region's bookkeeping force-dropped so SafeMem's view stays
//     consistent) instead of panicking.

package safemem

import (
	"fmt"

	"safemem/internal/obsrv/flight"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// DegradedEvent records one monitoring capability SafeMem gave up to keep
// the program running: a failed watch operation, a quarantined line, or a
// machine-wide corruption-arming pause.
type DegradedEvent struct {
	Time   simtime.Cycles
	Op     string
	Addr   vm.VAddr
	Detail string
}

// String renders the event in the tool's log format.
func (e DegradedEvent) String() string {
	return fmt.Sprintf("[%s] degraded %s addr=%#x: %s", e.Time, e.Op, uint64(e.Addr), e.Detail)
}

// degradeUncorrectableWeight is how many window events one uncorrectable
// error contributes (mirrors the kernel's leaky-bucket weighting: a
// multi-bit error is much stronger evidence of failing hardware than a
// corrected single).
const degradeUncorrectableWeight = 4

// maxQuarantineBackoffShift caps the exponential re-arm backoff at
// QuarantineBackoff << maxQuarantineBackoffShift.
const maxQuarantineBackoffShift = 6

// quarantineEntry is the per-line hardware-error history.
type quarantineEntry struct {
	faults  uint64
	backoff simtime.Cycles
	until   simtime.Cycles
}

// windowEvent is one weighted ECC event in the machine-wide sliding window.
type windowEvent struct {
	at     simtime.Cycles
	weight int
}

// DegradedEvents returns every degradation event so far, in order.
func (t *Tool) DegradedEvents() []DegradedEvent {
	out := make([]DegradedEvent, len(t.degradedEvents))
	copy(out, t.degradedEvents)
	return out
}

// CorruptionDegraded reports whether corruption arming is currently paused
// by machine-wide error pressure.
func (t *Tool) CorruptionDegraded() bool { return t.corruptionDegraded() }

// degrade records one degradation event where the tool used to panic.
func (t *Tool) degrade(op string, addr vm.VAddr, detail string) {
	t.stats.DegradedEvents++
	t.degradedEvents = append(t.degradedEvents, DegradedEvent{
		Time:   t.m.Clock.Now(),
		Op:     op,
		Addr:   addr,
		Detail: detail,
	})
	t.tr.Instant("safemem", "degraded:"+op, telemetry.KV("addr", uint64(addr)))
	flight.Emit(flight.KindDegraded, "safemem", t.m.Clock.Now(), op+": "+detail,
		flight.F("addr", uint64(addr)))
}

// dropRegion force-removes r's bookkeeping after a failed kernel unwatch.
// The kernel may still hold (part of) the watch, but SafeMem must not keep
// believing a region is monitored when repairing it already failed once —
// a later fault on it would loop through the same failure.
func (t *Tool) dropRegion(r *watchRegion) {
	for line := r.base; line < r.base+vm.VAddr(r.size); line += physmem.LineBytes {
		if t.byLine[line] == r {
			delete(t.byLine, line)
		}
	}
	delete(t.regions, r)
	if r.obj != nil && r.obj.suspect == r {
		r.obj.suspect = nil
	}
}

// unwatchOrDegrade disables r, degrading (and force-dropping the
// bookkeeping) instead of panicking when the kernel call fails.
func (t *Tool) unwatchOrDegrade(r *watchRegion, fromSaved bool, op string) {
	if err := t.unwatch(r, fromSaved); err != nil {
		t.degrade(op, r.base, err.Error())
		t.dropRegion(r)
	}
}

// noteMachineError feeds one controller ECC event into the machine-wide
// degradation window. Crossing the threshold pauses corruption arming for
// one DegradeWindow; further events while paused extend the pause.
func (t *Tool) noteMachineError(uncorrectable bool) {
	now := t.m.Clock.Now()
	w := 1
	if uncorrectable {
		w = degradeUncorrectableWeight
	}
	t.hwWindow = append(t.hwWindow, windowEvent{at: now, weight: w})
	cut := 0
	for cut < len(t.hwWindow) && now-t.hwWindow[cut].at > t.opts.DegradeWindow {
		cut++
	}
	if cut > 0 {
		t.hwWindow = append(t.hwWindow[:0], t.hwWindow[cut:]...)
	}
	total := 0
	for _, e := range t.hwWindow {
		total += e.weight
	}
	if total < t.opts.DegradeErrorThreshold {
		return
	}
	if now >= t.degradedUntil {
		t.stats.DegradePeriods++
		t.degrade("corruption-arming-paused", 0,
			fmt.Sprintf("%d weighted ECC events within %s", total, t.opts.DegradeWindow))
	}
	t.degradedUntil = now + t.opts.DegradeWindow
}

// corruptionDegraded reports whether new corruption watches are suppressed.
func (t *Tool) corruptionDegraded() bool {
	return t.m.Clock.Now() < t.degradedUntil
}

// noteLineFault records a hardware error on a watched line and reports
// whether the line may be re-armed. Below QuarantineThreshold it may; at the
// threshold the line is quarantined, and every further fault doubles the
// re-arm backoff (the line's DRAM has demonstrated it cannot hold a watch).
func (t *Tool) noteLineFault(vline vm.VAddr) bool {
	now := t.m.Clock.Now()
	q := t.quarantine[vline]
	if q == nil {
		q = &quarantineEntry{}
		t.quarantine[vline] = q
	}
	q.faults++
	if int(q.faults) < t.opts.QuarantineThreshold {
		return true
	}
	if q.backoff == 0 {
		q.backoff = t.opts.QuarantineBackoff
		t.stats.LinesQuarantined++
		t.degrade("quarantine", vline,
			fmt.Sprintf("%d hardware faults on line; re-arm backed off %s", q.faults, q.backoff))
	} else if q.backoff < t.opts.QuarantineBackoff<<maxQuarantineBackoffShift {
		q.backoff *= 2
	}
	q.until = now + q.backoff
	return false
}

// lineQuarantined reports whether any line of [base, base+size) is inside
// its quarantine backoff.
func (t *Tool) lineQuarantined(base vm.VAddr, size uint64) bool {
	now := t.m.Clock.Now()
	for line := base.LineAddr(); line < base+vm.VAddr(size); line += physmem.LineBytes {
		if q := t.quarantine[line]; q != nil &&
			int(q.faults) >= t.opts.QuarantineThreshold && now < q.until {
			return true
		}
	}
	return false
}

// rearmAfterRepair re-arms a watch dropped by a hardware-error repair.
// WatchMemory cannot run inside the ECC interrupt (the controller is
// mid-read on the faulting line), so the re-arm is deferred to the kernel's
// next safe point. The confirmation clock (watchedAt) carries over: a leak
// suspect does not earn extra confirmation time because a DRAM cell
// hiccuped. If the kernel retires the faulty frame at the same safe point,
// retirement runs first and the re-arm lands on the migrated page.
func (t *Tool) rearmAfterRepair(old *watchRegion) {
	t.m.Kern.Defer(func() {
		if t.lineWatched(old.base, old.size) {
			return // something else (realloc, a fresh watch) got there first
		}
		if t.lineQuarantined(old.base, old.size) {
			t.stats.RearmsSkipped++
			return
		}
		if old.kind != watchLeakSuspect && t.corruptionDegraded() {
			t.stats.RearmsSkipped++
			t.stats.WatchesSuppressed++
			return
		}
		if old.kind == watchLeakSuspect {
			obj := old.obj
			if obj == nil || obj.reported || obj.suspect != nil || t.objects[obj.block.Addr] != obj {
				t.stats.RearmsSkipped++
				return
			}
		}
		r, err := t.watch(old.base, old.size, old.kind, old.block, old.obj)
		if err != nil {
			t.degrade("rearm", old.base, err.Error())
			return
		}
		r.watchedAt = old.watchedAt
		if old.obj != nil && old.obj.suspect == nil && !old.obj.reported {
			old.obj.suspect = r
		}
		t.stats.WatchesRearmed++
	})
}
