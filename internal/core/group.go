package safemem

import (
	"safemem/internal/heap"
	"safemem/internal/simtime"
)

// GroupKey identifies a memory-object group: the ⟨size, call-stack
// signature⟩ tuple of Section 3. Grouping needs no program semantics.
type GroupKey struct {
	Size uint64
	Site uint64
}

// object is SafeMem's per-live-object record. Objects of a group form a
// doubly-linked list in allocation order, so the oldest objects — the only
// SLeak candidates — are found in O(1) (Section 3.2.2).
type object struct {
	block      *heap.Block
	group      *group
	prev, next *object
	// allocTime is the object's (possibly reset) birth time; pruning a
	// false positive restarts the clock (Section 3.2.3).
	allocTime simtime.Cycles
	// suspect is non-nil while the object is an ECC-watched leak suspect.
	suspect *watchRegion
	// reported marks objects already reported as leaks.
	reported bool
}

// group is the per-⟨size,site⟩ lifetime and usage record of Section 3.2.1.
type group struct {
	key GroupKey

	// Live-object list, oldest first.
	head, tail *object
	liveCount  int

	// Lifetime information.
	maxLifetime   simtime.Cycles
	stableTime    simtime.Cycles
	lastUpdate    simtime.Cycles
	lastMaxChange simtime.Cycles // the group's WarmUpTime (Figure 3)

	// Memory usage information.
	lastAllocTime simtime.Cycles
	totalBytes    uint64
	totalAllocs   uint64
	frees         uint64

	// reported marks groups already reported as leaking, so each buggy
	// site produces one report.
	reported bool

	// suspendUntil pauses suspect-flagging for the group after one of its
	// suspects was exonerated by an access: the group is demonstrably in
	// use, so re-probing it every check would only buy watch/unwatch
	// traffic ("the pruning process... is only performed on rare
	// suspects", Section 3.2.3).
	suspendUntil simtime.Cycles
}

// everFreed reports whether any object of this group was ever deallocated —
// the ALeak/SLeak discriminator of Section 3.2.2.
func (g *group) everFreed() bool { return g.frees > 0 }

// append adds obj at the tail (newest end) of the live list.
func (g *group) append(obj *object) {
	obj.prev = g.tail
	obj.next = nil
	if g.tail != nil {
		g.tail.next = obj
	}
	g.tail = obj
	if g.head == nil {
		g.head = obj
	}
	g.liveCount++
}

// remove unlinks obj from the live list.
func (g *group) remove(obj *object) {
	if obj.prev != nil {
		obj.prev.next = obj.next
	} else {
		g.head = obj.next
	}
	if obj.next != nil {
		obj.next.prev = obj.prev
	} else {
		g.tail = obj.prev
	}
	obj.prev, obj.next = nil, nil
	g.liveCount--
}

// moveToTail re-queues obj as the newest object, used when pruning resets
// its allocation time.
func (g *group) moveToTail(obj *object) {
	g.remove(obj)
	g.append(obj)
}

// recordDealloc folds one deallocation into the group's lifetime statistics
// (Section 3.2.1): within the tolerance band of the current maximum the
// stability clock accumulates; beyond it the maximum is raised and
// stability resets.
func (g *group) recordDealloc(now, lifetime simtime.Cycles, tolerance float64) {
	limit := simtime.Cycles(float64(g.maxLifetime) * (1 + tolerance))
	if g.maxLifetime == 0 || lifetime > limit {
		g.maxLifetime = lifetime
		g.stableTime = 0
		g.lastMaxChange = now
	} else {
		g.stableTime += now - g.lastUpdate
	}
	g.lastUpdate = now
	g.frees++
}

// GroupInfo is a read-only snapshot of one memory-object group, used by the
// Figure 3 lifetime-stability study and by reports.
type GroupInfo struct {
	Key           GroupKey
	LiveCount     int
	TotalAllocs   uint64
	Frees         uint64
	TotalBytes    uint64
	MaxLifetime   simtime.Cycles
	StableTime    simtime.Cycles
	LastMaxChange simtime.Cycles
	LastAllocTime simtime.Cycles
}

// WarmUpTime returns how long the group took to reach its stable maximal
// lifetime — the x-axis quantity of Figure 3.
func (gi GroupInfo) WarmUpTime() simtime.Cycles { return gi.LastMaxChange }
