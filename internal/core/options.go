// Package safemem implements the paper's contribution: a low-overhead
// dynamic tool that detects memory leaks and memory corruption during
// production runs by combining intelligent memory-usage behaviour analysis
// (Section 3) with ECC-memory watchpoints (Sections 2 and 4).
//
// The tool attaches to a simulated machine and heap:
//
//	m := machine.MustNew(machine.DefaultConfig())
//	alloc := heap.MustNew(m, safemem.HeapOptions(true))
//	tool, _ := safemem.Attach(m, alloc, safemem.DefaultOptions())
//	... run the program: it allocates via alloc, accesses via m ...
//	for _, r := range tool.Reports() { fmt.Println(r) }
//
// Unlike Purify-style checkers, SafeMem never instruments individual loads
// and stores: all of its work happens at allocation/deallocation time plus
// the rare ECC faults raised by the watched locations themselves.
package safemem

import (
	"safemem/internal/heap"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
)

// Options configures the SafeMem tool. DefaultOptions returns the values
// used throughout the paper's evaluation.
type Options struct {
	// DetectLeaks enables continuous-memory-leak detection (Section 3).
	DetectLeaks bool
	// DetectCorruption enables buffer-overflow and freed-memory detection
	// (Section 4).
	DetectCorruption bool
	// DetectUninitRead enables the Section 4 extension: reads of
	// never-written buffers are reported. Off by default (as in the
	// paper's prototype).
	DetectUninitRead bool
	// PruneWithECC gates leak-suspect pruning by ECC watchpoints
	// (Section 3.2.3). Disabling it reproduces the "before pruning" column
	// of Table 5: suspects are reported immediately.
	PruneWithECC bool
	// StopOnBug pauses the program at the first corruption report, the
	// paper's attach-gdb behaviour. Off by default so detection runs can
	// count every bug.
	StopOnBug bool

	// WarmupTime delays leak checking after program start so lifetime
	// statistics can stabilise (Section 3.1).
	WarmupTime simtime.Cycles
	// CheckingPeriod is the minimum CPU time between leak-detection passes;
	// passes run only at allocation/deallocation time (Section 3.2.2).
	CheckingPeriod simtime.Cycles
	// ALeakLiveThreshold is the live-object count above which an
	// always-leak group becomes suspicious.
	ALeakLiveThreshold int
	// ALeakRecentWindow bounds "the last allocation time is very recent":
	// a group over threshold whose memory usage is still growing.
	ALeakRecentWindow simtime.Cycles
	// SLeakLifetimeFactor is the multiple of the expected maximal lifetime
	// beyond which a live object becomes a sometimes-leak suspect
	// (condition 1 of Section 3.2.2; the paper uses 2×).
	SLeakLifetimeFactor float64
	// SLeakStableTime is how long a group's maximal lifetime must have been
	// stable before SLeak suspects are trusted (condition 2).
	SLeakStableTime simtime.Cycles
	// LifetimeTolerance is the fractional slack above the recorded maximal
	// lifetime that does not reset stability (the paper's "tolerable
	// range... based on a pre-defined threshold").
	LifetimeTolerance float64
	// LeakConfirmTime is how long a watched suspect must stay untouched
	// before it is reported as a leak.
	LeakConfirmTime simtime.Cycles
	// MaxSuspectsPerGroup bounds how many of the oldest live objects are
	// examined per group per pass ("SafeMem only needs to check the top few
	// oldest memory objects").
	MaxSuspectsPerGroup int

	// QuarantineThreshold is how many hardware faults a watched line may
	// suffer before SafeMem stops re-arming watches on it (per-line
	// quarantine; see degrade.go).
	QuarantineThreshold int
	// QuarantineBackoff is the initial re-arm backoff of a quarantined line;
	// it doubles with every further fault on the line.
	QuarantineBackoff simtime.Cycles
	// DegradeErrorThreshold is the weighted machine-wide ECC event count
	// (uncorrectable errors count 4×) within DegradeWindow beyond which new
	// corruption watches are suppressed. Leak detection is unaffected.
	DegradeErrorThreshold int
	// DegradeWindow is the sliding window for DegradeErrorThreshold and the
	// duration of each corruption-arming pause.
	DegradeWindow simtime.Cycles
}

// DefaultOptions returns the paper-evaluation configuration: both detectors
// on, ECC pruning on, thresholds scaled to the simulator's clock.
func DefaultOptions() Options {
	return Options{
		DetectLeaks:         true,
		DetectCorruption:    true,
		PruneWithECC:        true,
		WarmupTime:          simtime.FromMicroseconds(2000), // 2 ms
		CheckingPeriod:      simtime.FromMicroseconds(1000), // 1 ms
		ALeakLiveThreshold:  100,
		ALeakRecentWindow:   simtime.FromMicroseconds(2000), // 2 ms
		SLeakLifetimeFactor: 2.0,
		SLeakStableTime:     simtime.FromMicroseconds(4000), // 4 ms
		LifetimeTolerance:   0.2,
		LeakConfirmTime:     simtime.FromMicroseconds(10000), // 10 ms
		MaxSuspectsPerGroup: 3,

		QuarantineThreshold:   3,
		QuarantineBackoff:     simtime.FromMicroseconds(500), // 0.5 ms
		DegradeErrorThreshold: 16,
		DegradeWindow:         simtime.FromMicroseconds(300), // 0.3 ms
	}
}

// PadLineBytes is the guard-padding unit: one cache line at each end of
// every buffer (Section 4).
const PadLineBytes = physmem.LineBytes

// HeapOptions returns the allocator configuration SafeMem requires:
// cache-line aligned buffers, with one guard line per side when corruption
// detection is enabled (Section 4: "each memory buffer is cache line
// aligned... padding space of two cache lines").
func HeapOptions(detectCorruption bool) heap.Options {
	opts := heap.Options{Align: physmem.LineBytes}
	if detectCorruption {
		opts.PadBytes = PadLineBytes
	}
	return opts
}
