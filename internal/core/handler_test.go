package safemem

import (
	"testing"

	"safemem/internal/memctrl"
	"safemem/internal/simtime"
)

func TestHardwareErrorInWatchedRegionRepaired(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 0xcafe)

	// Corrupt the trailing guard line in DRAM with a double-bit flip. The
	// stored data there is Scramble(original); two more flips break the
	// scramble signature, so the handler must classify this as a hardware
	// error, not an overflow.
	pa, fault := r.m.AS.Translate(p+64, false)
	if fault != nil {
		t.Fatal(fault)
	}
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 3)
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 44)

	// Touch the guard line (a real overflow would normally be reported,
	// but the corrupted data no longer carries the signature).
	_ = r.m.Load8(p + 64)

	st := r.tool.Stats()
	if st.HardwareErrors != 1 {
		t.Fatalf("HardwareErrors = %d, want 1", st.HardwareErrors)
	}
	if st.CorruptionReported != 0 {
		t.Fatalf("hardware error misreported as corruption: %v", r.tool.Reports())
	}
	// The saved original data must have been restored.
	if got := r.m.Load64(p + 64); got != 0 {
		t.Fatalf("restored guard word = %#x, want 0", got)
	}
	if r.m.Kern.Panicked() {
		t.Fatal("kernel panicked on a SafeMem-repairable error")
	}
}

func TestHardwareErrorOutsideWatchesPanics(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 1)
	r.m.Cache.FlushAll()
	pa, _ := r.m.AS.Translate(p, false)
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 0)
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 9)

	err := r.m.Run(func() error {
		_ = r.m.Load64(p)
		return nil
	})
	if err == nil {
		t.Fatal("unwatched hardware error did not panic the kernel")
	}
	if !r.m.Kern.Panicked() {
		t.Fatal("kernel not in panic mode")
	}
}

func TestSingleBitHardwareErrorInvisible(t *testing.T) {
	// Single-bit errors are corrected by the controller without any
	// interrupt; SafeMem never sees them (Section 2.1).
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 0x777)
	r.m.Cache.FlushAll()
	pa, _ := r.m.AS.Translate(p, false)
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 30)

	if got := r.m.Load64(p); got != 0x777 {
		t.Fatalf("corrected read = %#x", got)
	}
	if r.tool.Stats().HardwareErrors != 0 {
		t.Fatal("single-bit error reached SafeMem")
	}
}

func TestScrubCoordinationPreservesDetection(t *testing.T) {
	r := newTool(t, DefaultOptions())
	r.m.Ctrl.SetMode(memctrl.CorrectAndScrub)
	p := r.malloc(t, 64)
	r.m.Store64(p, 42)

	// A coordinated scrub pass must not fire or destroy the guard watches.
	r.m.Kern.CoordinatedScrub()
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("scrub produced reports: %v", r.tool.Reports())
	}
	if got := r.m.Load64(p); got != 42 {
		t.Fatalf("data after scrub = %d", got)
	}
	// The guards are still armed: an overflow after the scrub is caught.
	r.m.Store8(p+64, 1)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOverflow {
		t.Fatalf("post-scrub overflow reports = %v", kinds(reports))
	}
}

func TestUninitReadDetected(t *testing.T) {
	opts := DefaultOptions()
	opts.DetectUninitRead = true
	r := newTool(t, opts)
	p := r.malloc(t, 64)
	_ = r.m.Load64(p) // read before any write
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugUninitRead {
		t.Fatalf("reports = %v", kinds(reports))
	}
}

func TestUninitFirstWriteDisarmsSilently(t *testing.T) {
	opts := DefaultOptions()
	opts.DetectUninitRead = true
	r := newTool(t, opts)
	p := r.malloc(t, 64)
	r.m.Store64(p, 9) // first write initialises
	_ = r.m.Load64(p) // subsequent read is fine
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("initialised read reported: %v", r.tool.Reports())
	}
	if r.tool.Stats().UninitWrites != 1 {
		t.Fatalf("UninitWrites = %d, want 1", r.tool.Stats().UninitWrites)
	}
}

func TestGroupsSnapshot(t *testing.T) {
	o := leakOpts()
	r := newTool(t, o)
	for i := 0; i < 10; i++ {
		r.m.Call(0x100)
		p := r.malloc(t, 24)
		r.m.Return()
		r.m.Compute(500)
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	r.m.Call(0x200)
	r.malloc(t, 24)
	r.m.Return()

	gs := r.tool.Groups()
	if len(gs) != 2 {
		t.Fatalf("groups = %d, want 2", len(gs))
	}
	var freed, unfreed *GroupInfo
	for i := range gs {
		if gs[i].Frees > 0 {
			freed = &gs[i]
		} else {
			unfreed = &gs[i]
		}
	}
	if freed == nil || unfreed == nil {
		t.Fatalf("snapshot did not distinguish the groups: %+v", gs)
	}
	if freed.TotalAllocs != 10 || freed.LiveCount != 0 {
		t.Fatalf("freed group: %+v", freed)
	}
	if freed.MaxLifetime == 0 {
		t.Fatal("freed group has no lifetime statistics")
	}
	if freed.WarmUpTime() != freed.LastMaxChange {
		t.Fatal("WarmUpTime accessor mismatch")
	}
	if unfreed.LiveCount != 1 || unfreed.TotalBytes != 24 {
		t.Fatalf("unfreed group: %+v", unfreed)
	}
}

func TestWatchAccountingStats(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p1 := r.malloc(t, 64)
	p2 := r.malloc(t, 64)
	st := r.tool.Stats()
	if st.WatchedLines != 4 { // 2 pads × 2 buffers
		t.Fatalf("WatchedLines = %d, want 4", st.WatchedLines)
	}
	if err := r.alloc.Free(p1); err != nil {
		t.Fatal(err)
	}
	// Freed watch covers the full extent: user line + 2 pads = 3 lines,
	// plus p2's 2 pads.
	st = r.tool.Stats()
	if st.WatchedLines != 5 {
		t.Fatalf("WatchedLines after free = %d, want 5", st.WatchedLines)
	}
	if st.MaxWatchedLines < 5 {
		t.Fatalf("MaxWatchedLines = %d", st.MaxWatchedLines)
	}
	_ = p2
	if st.Allocs != 2 || st.Frees != 1 {
		t.Fatalf("event counts: %+v", st)
	}
}

func TestLeakCheckRespectsCheckingPeriod(t *testing.T) {
	o := leakOpts()
	o.CheckingPeriod = simtime.FromMicroseconds(1000) // 1 ms
	r := newTool(t, o)
	for i := 0; i < 100; i++ {
		p := r.malloc(t, 16)
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// ~100 alloc/free pairs within far less than 1 ms: at most a couple of
	// checks can have fired.
	if n := r.tool.Stats().LeakChecks; n > 2 {
		t.Fatalf("LeakChecks = %d, expected ≤ 2 under the checking period", n)
	}
}
