package safemem

import (
	"testing"

	"safemem/internal/vm"
)

func TestReportCallback(t *testing.T) {
	r := newTool(t, DefaultOptions())
	var streamed []BugKind
	r.tool.SetReportCallback(func(rep BugReport) { streamed = append(streamed, rep.Kind) })
	p := r.malloc(t, 64)
	r.m.Store8(p+64, 1)
	if err := r.alloc.Free(p); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load8(p)
	if len(streamed) != 2 || streamed[0] != BugOverflow || streamed[1] != BugFreedAccess {
		t.Fatalf("streamed = %v", streamed)
	}
	if len(r.tool.Reports()) != 2 {
		t.Fatal("Reports() out of sync with callback")
	}
}

func TestShutdownConfirmsAgedSuspects(t *testing.T) {
	o := leakOpts()
	r := newTool(t, o)
	// Build a stable group, then leak one object and run just long enough
	// for it to be flagged and watched — but NOT long enough for the
	// in-run confirmation to fire.
	var leaked uint64
	for i := 0; i < 500; i++ {
		r.m.Call(0x8888)
		p, err := r.alloc.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		r.m.Return()
		r.m.Compute(1000)
		if i == 120 {
			leaked = uint64(p)
			continue
		}
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if r.tool.Stats().LeaksReported != 0 {
		t.Fatalf("leak already reported in-run; shorten the run")
	}
	st := r.tool.Stats()
	if st.SuspectsFlagged == 0 {
		t.Fatal("the leaked object was never flagged; lengthen the run")
	}
	// Let the watch age past the confirmation window without any
	// allocator activity (so no in-run check fires), then shut down.
	r.m.Compute(uint64(o.LeakConfirmTime) + 100_000)
	reports := r.tool.Shutdown()
	if len(reports) != 1 || reports[0].Kind != BugSLeak {
		t.Fatalf("shutdown reports = %v", reports)
	}
	if uint64(reports[0].BufferAddr) != leaked {
		t.Fatalf("shutdown reported %#x, want %#x", uint64(reports[0].BufferAddr), leaked)
	}
	if r.tool.Stats().WatchedLines != 0 {
		t.Fatal("watches remain after shutdown")
	}
	// Memory is left consistent: the leaked buffer reads back normally.
	_ = r.m.Load64(vm.VAddr(leaked))
	if n := len(r.tool.Reports()); n != 1 {
		t.Fatalf("post-shutdown access produced reports: %d", n)
	}
}

func TestShutdownQuietOnCleanRun(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 1)
	if reports := r.tool.Shutdown(); len(reports) != 0 {
		t.Fatalf("clean shutdown reported: %v", reports)
	}
	if r.tool.Stats().WatchedLines != 0 {
		t.Fatal("guard watches survived shutdown")
	}
}
