package safemem

import (
	"strings"
	"testing"
)

func TestExplainOverflow(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 100)
	r.m.Memset(p, 0xaa, 100)
	r.m.Store8(p+130, 0xbd)
	reports := r.tool.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	out := r.tool.Explain(reports[0])
	for _, want := range []string{
		"buffer-overflow",
		"buffer   [0x",
		"past the end of the buffer",
		"access   store",
		"memory near the fault",
		"=>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// The dump shows the buffer's 0xaa fill.
	if !strings.Contains(out, "aaaaaaaaaaaaaaaa") {
		t.Errorf("Explain dump missing buffer contents:\n%s", out)
	}
}

func TestExplainUnderflowAndLeak(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	_ = r.m.Load8(p - 2)
	reports := r.tool.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	out := r.tool.Explain(reports[0])
	if !strings.Contains(out, "before the start of the buffer") || !strings.Contains(out, "access   load") {
		t.Errorf("underflow explanation wrong:\n%s", out)
	}

	// Leak reports explain too (no access line).
	leak := BugReport{Kind: BugSLeak, Addr: p, BufferAddr: p, BufferSize: 64, Site: 7, Details: "d"}
	out = r.tool.Explain(leak)
	if strings.Contains(out, "access   ") {
		t.Errorf("leak explanation has an access line:\n%s", out)
	}
	if !strings.Contains(out, "memory-leak(sometimes)") {
		t.Errorf("leak explanation missing kind:\n%s", out)
	}
}
