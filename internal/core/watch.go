package safemem

import (
	"fmt"

	"safemem/internal/heap"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// watchKind distinguishes why a region is ECC-watched.
type watchKind int

const (
	// watchPadBefore / watchPadAfter guard the two ends of a live buffer
	// (buffer-overflow detection, Section 4).
	watchPadBefore watchKind = iota
	watchPadAfter
	// watchFreed guards an entire freed buffer until reallocation.
	watchFreed
	// watchLeakSuspect guards a leak suspect for false-positive pruning
	// (Section 3.2.3).
	watchLeakSuspect
	// watchUninit guards a freshly allocated, never-written buffer
	// (the Section 4 extension).
	watchUninit
)

func (k watchKind) String() string {
	switch k {
	case watchPadBefore:
		return "pad-before"
	case watchPadAfter:
		return "pad-after"
	case watchFreed:
		return "freed"
	case watchLeakSuspect:
		return "leak-suspect"
	case watchUninit:
		return "uninit"
	default:
		return fmt.Sprintf("watchKind(%d)", int(k))
	}
}

// watchRegion is SafeMem's private record of one ECC-watched region: its
// extent, why it is watched, the buffer it belongs to, and — crucially —
// the original data words returned by WatchMemory, which let the fault
// handler tell access faults from hardware errors (Section 2.2.2).
type watchRegion struct {
	base vm.VAddr
	size uint64
	kind watchKind
	// original holds 8 saved words per line.
	original []uint64
	// block is the associated buffer (nil for none).
	block *heap.Block
	// obj is the associated leak-suspect object (watchLeakSuspect only).
	obj *object
	// watchedAt is when monitoring began.
	watchedAt simtime.Cycles
}

func (r *watchRegion) lines() int { return int(r.size / physmem.LineBytes) }

// lineIndex returns which line of the region vline is.
func (r *watchRegion) lineIndex(vline vm.VAddr) int {
	return int(uint64(vline-r.base) / physmem.LineBytes)
}

// originalWord returns the saved word for the given line and ECC group.
func (r *watchRegion) originalWord(vline vm.VAddr, groupIndex int) uint64 {
	return r.original[r.lineIndex(vline)*physmem.GroupsPerLine+groupIndex]
}

// watch registers [base, base+size) with the kernel and records the region.
// Regions must not overlap existing watches; callers check via lineWatched.
func (t *Tool) watch(base vm.VAddr, size uint64, kind watchKind, blk *heap.Block, obj *object) (*watchRegion, error) {
	orig, err := t.m.Kern.WatchMemory(base, size)
	if err != nil {
		return nil, err
	}
	r := &watchRegion{
		base:      base,
		size:      size,
		kind:      kind,
		original:  orig,
		block:     blk,
		obj:       obj,
		watchedAt: t.m.Clock.Now(),
	}
	for line := base; line < base+vm.VAddr(size); line += physmem.LineBytes {
		t.byLine[line] = r
	}
	t.regions[r] = struct{}{}
	if n := uint64(len(t.byLine)); n > t.stats.MaxWatchedLines {
		t.stats.MaxWatchedLines = n
	}
	return r, nil
}

// unwatch removes the region. When fromSaved is true the memory is restored
// from SafeMem's private copy (hardware-error repair); otherwise the kernel
// un-scrambles in place.
func (t *Tool) unwatch(r *watchRegion, fromSaved bool) error {
	var err error
	if fromSaved {
		err = t.m.Kern.DisableWatchMemoryWithData(r.base, r.size, r.original)
	} else {
		err = t.m.Kern.DisableWatchMemory(r.base, r.size)
	}
	if err != nil {
		return err
	}
	for line := r.base; line < r.base+vm.VAddr(r.size); line += physmem.LineBytes {
		delete(t.byLine, line)
	}
	delete(t.regions, r)
	if r.obj != nil && r.obj.suspect == r {
		r.obj.suspect = nil
	}
	return nil
}

// lineWatched reports whether any line of [base, base+size) is watched.
func (t *Tool) lineWatched(base vm.VAddr, size uint64) bool {
	for line := base.LineAddr(); line < base+vm.VAddr(size); line += physmem.LineBytes {
		if _, ok := t.byLine[line]; ok {
			return true
		}
	}
	return false
}

// unwatchOverlapping removes every watch region that intersects
// [base, base+size) — the reallocation path: when the allocator reuses a
// freed extent, its freed-buffer watch must be disabled (Section 4).
// Failures degrade (with the bookkeeping dropped) rather than stopping the
// sweep: the remaining regions must still be disabled.
func (t *Tool) unwatchOverlapping(base vm.VAddr, size uint64) {
	seen := map[*watchRegion]bool{}
	for line := base.LineAddr(); line < base+vm.VAddr(size); line += physmem.LineBytes {
		if r, ok := t.byLine[line]; ok && !seen[r] {
			seen[r] = true
			t.unwatchOrDegrade(r, false, "unwatch-overlapping")
		}
	}
}

// UnwatchRange disables every watch region intersecting [base, base+size).
// Exported for allocation front-ends that filter the event stream
// (internal/sampletool): when the allocator hands out an extent the
// front-end does not forward — one that may have been carved from a
// watched freed buffer — the stale watch must still be disarmed or the new
// tenant's ordinary accesses would trip it.
func (t *Tool) UnwatchRange(base vm.VAddr, size uint64) int {
	before := len(t.regions)
	t.unwatchOverlapping(base, size)
	return before - len(t.regions)
}

// Watched reports whether any line of [base, base+size) is currently
// ECC-watched. Exported for front-end invariant checks and fuzz harnesses.
func (t *Tool) Watched(base vm.VAddr, size uint64) bool {
	return t.lineWatched(base, size)
}

// CheckWatchInvariants cross-checks the two watch indices — the region set
// and the per-line map — and returns an error on any inconsistency: a
// region line that maps to a different region (a double-watched line), or
// an orphaned line entry. Fuzz harnesses call this after every operation.
func (t *Tool) CheckWatchInvariants() error {
	lines := 0
	for r := range t.regions {
		for line := r.base; line < r.base+vm.VAddr(r.size); line += physmem.LineBytes {
			got, ok := t.byLine[line]
			if !ok {
				return fmt.Errorf("watch invariant: region [%#x,+%d) line %#x missing from line index", uint64(r.base), r.size, uint64(line))
			}
			if got != r {
				return fmt.Errorf("watch invariant: line %#x double-watched (region [%#x,+%d) vs [%#x,+%d))",
					uint64(line), uint64(r.base), r.size, uint64(got.base), got.size)
			}
			lines++
		}
	}
	if lines != len(t.byLine) {
		return fmt.Errorf("watch invariant: %d lines indexed, regions cover %d", len(t.byLine), lines)
	}
	return nil
}

// unwatchAll removes every active watch (scrub coordination). It returns
// the removed regions so rewatchAll can restore them.
func (t *Tool) unwatchAll() []*watchRegion {
	out := make([]*watchRegion, 0, len(t.regions))
	for r := range t.regions {
		out = append(out, r)
	}
	for _, r := range out {
		t.unwatchOrDegrade(r, false, "unwatch-for-scrub")
	}
	return out
}

// rewatchAll re-arms the given regions after a scrub pass, preserving their
// kinds and associations. Quarantined lines stay unwatched, and corruption
// watches are not re-armed while arming is degraded — the same policy that
// governs fresh arms.
func (t *Tool) rewatchAll(saved []*watchRegion) {
	for _, old := range saved {
		if t.lineQuarantined(old.base, old.size) {
			t.stats.RearmsSkipped++
			continue
		}
		if old.kind != watchLeakSuspect && t.corruptionDegraded() {
			t.stats.WatchesSuppressed++
			continue
		}
		r, err := t.watch(old.base, old.size, old.kind, old.block, old.obj)
		if err != nil {
			t.degrade("rewatch-after-scrub", old.base, err.Error())
			continue
		}
		r.watchedAt = old.watchedAt // preserve leak-confirmation clocks
		if old.obj != nil {
			old.obj.suspect = r
		}
	}
}
