package safemem_test

import (
	"fmt"

	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/simtime"
)

// The basic corruption-detection flow: attach SafeMem, overflow a buffer,
// read the report.
func ExampleAttach() {
	m := machine.MustNew(machine.Config{MemBytes: 8 << 20})
	alloc := heap.MustNew(m, safemem.HeapOptions(true))
	tool, err := safemem.Attach(m, alloc, safemem.DefaultOptions())
	if err != nil {
		panic(err)
	}

	buf, _ := alloc.Malloc(100)
	m.Store8(buf+99, 1)  // last valid byte: fine
	m.Store8(buf+128, 1) // into the guard line: reported

	for _, r := range tool.Reports() {
		fmt.Println(r.Kind)
	}
	// Output:
	// buffer-overflow
}

// Freed-buffer watching: the whole freed extent is monitored until the
// allocator reuses it.
func ExampleTool_Reports() {
	m := machine.MustNew(machine.Config{MemBytes: 8 << 20})
	alloc := heap.MustNew(m, safemem.HeapOptions(true))
	opts := safemem.DefaultOptions()
	opts.DetectLeaks = false
	tool, _ := safemem.Attach(m, alloc, opts)

	p, _ := alloc.Malloc(64)
	m.Store64(p, 42)
	alloc.Free(p)
	_ = m.Load64(p) // use after free

	q, _ := alloc.Malloc(64) // reuses the extent: watch disabled
	m.Store64(q, 7)          // fine

	for _, r := range tool.Reports() {
		fmt.Println(r.Kind)
	}
	fmt.Println("reports:", len(tool.Reports()))
	// Output:
	// freed-memory-access
	// reports: 1
}

// Leak detection end to end: a group learns its maximal lifetime from the
// freed objects; the forgotten one is flagged, ECC-watched, never touched
// again, and reported.
func ExampleOptions() {
	m := machine.MustNew(machine.Config{MemBytes: 8 << 20})
	alloc := heap.MustNew(m, safemem.HeapOptions(false))

	opts := safemem.DefaultOptions()
	opts.DetectCorruption = false
	opts.WarmupTime = simtime.FromMicroseconds(50)
	opts.CheckingPeriod = simtime.FromMicroseconds(20)
	opts.SLeakStableTime = simtime.FromMicroseconds(100)
	opts.LeakConfirmTime = simtime.FromMicroseconds(300)
	tool, _ := safemem.Attach(m, alloc, opts)

	for i := 0; i < 4000; i++ {
		m.Call(0xfeed) // the allocation site
		p, _ := alloc.Malloc(48)
		m.Return()
		m.Store64(p, uint64(i))
		m.Compute(1500)
		if i != 99 { // iteration 99 forgets the free: the leak
			alloc.Free(p)
		}
	}
	for _, r := range tool.Reports() {
		fmt.Printf("%v at site %#x\n", r.Kind, r.Site)
	}
	// Output:
	// memory-leak(sometimes) at site 0xfeed
}
