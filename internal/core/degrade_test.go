package safemem

import (
	"testing"

	"safemem/internal/kernel"
	"safemem/internal/memctrl"
	"safemem/internal/vm"
)

// breakLine plants a double-bit fault at va's line: two data flips destroy
// both the plain data and any scramble signature, so a read reports an
// uncorrectable error.
func breakLine(t *testing.T, r *testRig, va vm.VAddr) {
	t.Helper()
	pa, fault := r.m.AS.Translate(va, false)
	if fault != nil {
		t.Fatal(fault)
	}
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 5)
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 41)
}

func TestHardwareRepairRearmsWatch(t *testing.T) {
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 0xcafe)

	// Hardware error on the trailing guard: repaired from the saved copy,
	// and — unlike a tripped watch — the guard is re-armed afterwards.
	breakLine(t, r, p+64)
	_ = r.m.Load8(p + 64)
	st := r.tool.Stats()
	if st.HardwareErrors != 1 {
		t.Fatalf("HardwareErrors = %d, want 1", st.HardwareErrors)
	}
	if st.WatchesRearmed != 1 {
		t.Fatalf("WatchesRearmed = %d, want 1", st.WatchesRearmed)
	}
	if st.CorruptionReported != 0 {
		t.Fatalf("hardware error misreported: %v", r.tool.Reports())
	}

	// The re-armed guard still catches a real overflow.
	r.m.Store8(p+64, 0xee)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOverflow {
		t.Fatalf("post-repair overflow reports = %v", kinds(reports))
	}
}

func TestDoubleBitOnLeakSuspectRepairedAndRewatched(t *testing.T) {
	// A leak suspect's probe takes a double-bit hardware error: the region
	// is repaired from the private copy and re-watched with its confirmation
	// clock intact, so the leak is still confirmed — and the hardware error
	// is never mistaken for an exonerating access (no prune).
	r := newTool(t, leakOpts())
	alloc := func() {
		r.m.Call(0x7777)
		_ = r.malloc(t, 48)
		r.m.Return()
		r.m.Compute(2000)
	}
	for i := 0; i < 2000 && r.tool.Stats().SuspectsFlagged == 0; i++ {
		alloc()
	}
	if r.tool.Stats().SuspectsFlagged == 0 {
		t.Fatal("no suspect ever flagged")
	}
	var suspect *watchRegion
	for reg := range r.tool.regions {
		if reg.kind == watchLeakSuspect && (suspect == nil || reg.base < suspect.base) {
			suspect = reg
		}
	}
	if suspect == nil {
		t.Fatal("no suspect watch region found")
	}
	armedAt := suspect.watchedAt
	obj := suspect.obj

	breakLine(t, r, suspect.base)
	_ = r.m.Load64(suspect.base) // surfaces the fault; must NOT prune

	st := r.tool.Stats()
	if st.HardwareErrors != 1 {
		t.Fatalf("HardwareErrors = %d, want 1", st.HardwareErrors)
	}
	if st.SuspectsPruned != 0 {
		t.Fatal("hardware error pruned the suspect")
	}
	if st.WatchesRearmed != 1 {
		t.Fatalf("WatchesRearmed = %d, want 1", st.WatchesRearmed)
	}
	if obj.suspect == nil {
		t.Fatal("suspect probe not restored")
	}
	if obj.suspect.watchedAt != armedAt {
		t.Fatalf("confirmation clock reset: %s -> %s", armedAt, obj.suspect.watchedAt)
	}

	for i := 0; i < 3000 && r.tool.Stats().LeaksReported == 0; i++ {
		alloc()
	}
	if r.tool.Stats().LeaksReported == 0 {
		t.Fatal("leak never confirmed after hardware repair")
	}
	if r.m.Kern.Panicked() {
		t.Fatal("kernel panicked")
	}
}

func TestFlakyLineQuarantinedAfterRepeatedFaults(t *testing.T) {
	r := newTool(t, DefaultOptions()) // QuarantineThreshold 3
	p := r.malloc(t, 64)
	r.m.Store64(p, 1)
	pad := p + 64

	for i := 0; i < 3; i++ {
		breakLine(t, r, pad)
		_ = r.m.Load8(pad)
	}
	st := r.tool.Stats()
	if st.HardwareErrors != 3 {
		t.Fatalf("HardwareErrors = %d, want 3", st.HardwareErrors)
	}
	if st.WatchesRearmed != 2 || st.RearmsSkipped != 1 {
		t.Fatalf("rearms = %d, skipped = %d; want 2/1", st.WatchesRearmed, st.RearmsSkipped)
	}
	if st.LinesQuarantined != 1 {
		t.Fatalf("LinesQuarantined = %d, want 1", st.LinesQuarantined)
	}
	if st.DegradedEvents == 0 {
		t.Fatal("quarantine left no degraded event")
	}

	// The flaky guard is gone: an overflow into it is silently missed (the
	// price of not crashing), and nothing panics.
	r.m.Store8(pad, 0xee)
	if n := r.tool.Stats().CorruptionReported; n != 0 {
		t.Fatalf("quarantined pad still reported: %d", n)
	}
	if r.m.Kern.Panicked() {
		t.Fatal("kernel panicked")
	}
}

func TestErrorStormPausesCorruptionArmingOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.DegradeErrorThreshold = 8 // two uncorrectable events
	r := newTool(t, opts)

	p1 := r.malloc(t, 64)
	p2 := r.malloc(t, 64)
	breakLine(t, r, p1+64)
	_ = r.m.Load8(p1 + 64)
	breakLine(t, r, p2+64)
	_ = r.m.Load8(p2 + 64)

	if !r.tool.CorruptionDegraded() {
		t.Fatal("two uncorrectable errors did not pause corruption arming")
	}
	if r.tool.Stats().DegradePeriods != 1 {
		t.Fatalf("DegradePeriods = %d, want 1", r.tool.Stats().DegradePeriods)
	}

	// While paused, new buffers get no guards: the overflow is missed.
	q := r.malloc(t, 64)
	if got := r.tool.Stats().WatchesSuppressed; got < 2 {
		t.Fatalf("WatchesSuppressed = %d, want >= 2", got)
	}
	r.m.Store8(q+64, 1)
	if n := r.tool.Stats().CorruptionReported; n != 0 {
		t.Fatalf("degraded-mode alloc still guarded: %d reports", n)
	}

	// After the window passes, arming resumes and detection is back.
	r.m.Compute(2 * uint64(opts.DegradeWindow))
	if r.tool.CorruptionDegraded() {
		t.Fatal("degradation did not expire")
	}
	q2 := r.malloc(t, 64)
	r.m.Store8(q2+64, 1)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOverflow {
		t.Fatalf("post-recovery reports = %v", kinds(reports))
	}
}

func TestSingleBitFaultDuringCoordinatedScrub(t *testing.T) {
	// A single-bit fault lands on a (normally watched) guard line inside the
	// scrub window — while the watches are temporarily disabled and the data
	// is plain. The scrubber corrects it before the watch is re-armed, so
	// monitoring resumes on clean data and SafeMem never even counts a
	// hardware error.
	r := newTool(t, DefaultOptions())
	r.m.Ctrl.SetMode(memctrl.CorrectAndScrub)
	p := r.malloc(t, 64)
	r.m.Store64(p, 0x42)

	r.tool.scrubBefore()
	pa, fault := r.m.AS.Translate(p+64, false)
	if fault != nil {
		t.Fatal(fault)
	}
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 13)
	r.m.Ctrl.ScrubAll()
	r.tool.scrubAfter()

	if r.m.Ctrl.Stats().ScrubCorrected == 0 {
		t.Fatal("scrubber did not correct the in-window fault")
	}
	st := r.tool.Stats()
	if st.HardwareErrors != 0 {
		t.Fatalf("HardwareErrors = %d, want 0 (scrub got there first)", st.HardwareErrors)
	}
	if got := r.m.Load64(p); got != 0x42 {
		t.Fatalf("data after scrub = %#x", got)
	}
	// The re-armed guard still works.
	r.m.Store8(p+64, 1)
	reports := r.tool.Reports()
	if len(reports) != 1 || reports[0].Kind != BugOverflow {
		t.Fatalf("post-scrub reports = %v", kinds(reports))
	}
}

func TestUnwatchedFaultUnderBothRetirementPolicies(t *testing.T) {
	// A double-bit error on a line SafeMem does not watch. Stock policy: the
	// kernel panics (the paper's machine-check behaviour). RetireAndContinue:
	// the run survives, the kernel absorbs the loss, and monitoring of
	// everything else keeps working.
	t.Run("panic", func(t *testing.T) {
		r := newTool(t, DefaultOptions())
		p := r.malloc(t, 64)
		r.m.Store64(p, 7)
		r.m.Cache.FlushAll()
		breakLine(t, r, p)
		err := r.m.Run(func() error {
			_ = r.m.Load64(p)
			return nil
		})
		if err == nil || !r.m.Kern.Panicked() {
			t.Fatal("stock policy did not panic on an unwatched uncorrectable error")
		}
	})
	t.Run("retire-and-continue", func(t *testing.T) {
		r := newTool(t, DefaultOptions())
		r.m.Kern.SetResilience(kernel.ResilienceOptions{Policy: kernel.RetireAndContinue})
		p := r.malloc(t, 64)
		r.m.Store64(p, 7)
		r.m.Cache.FlushAll()
		breakLine(t, r, p)
		_ = r.m.Load64(p)
		if r.m.Kern.Panicked() {
			t.Fatal("RetireAndContinue panicked")
		}
		if got := r.m.Kern.ResilienceStats().DataLossEvents; got != 1 {
			t.Fatalf("DataLossEvents = %d, want 1", got)
		}
		if r.tool.Stats().HardwareErrors != 0 {
			t.Fatal("unwatched fault charged to SafeMem's repair counter")
		}
		// Detection still works after the survived fault.
		q := r.malloc(t, 64)
		r.m.Store8(q+64, 1)
		reports := r.tool.Reports()
		if len(reports) != 1 || reports[0].Kind != BugOverflow {
			t.Fatalf("post-survival reports = %v", kinds(reports))
		}
	})
}
