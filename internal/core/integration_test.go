package safemem

import (
	"math/rand"
	"testing"

	"safemem/internal/heap"
	"safemem/internal/machine"
	"safemem/internal/memctrl"
	"safemem/internal/vm"
)

// newDirectTool builds a rig on a machine with the Section 2.2.3 direct-ECC
// interface.
func newDirectTool(t *testing.T, opts Options) *testRig {
	t.Helper()
	m, err := machine.New(machine.Config{MemBytes: 16 << 20, DirectECCAccess: true})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := heap.New(m, HeapOptions(opts.DetectCorruption || opts.DetectUninitRead))
	if err != nil {
		t.Fatal(err)
	}
	tool, err := Attach(m, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{m: m, alloc: alloc, tool: tool}
}

func TestDirectECCDetectionParity(t *testing.T) {
	// All corruption detectors behave identically on the direct-ECC
	// machine — only cheaper.
	r := newDirectTool(t, DefaultOptions())
	p := r.malloc(t, 100)
	r.m.Store8(p+128, 1) // overflow
	q := r.malloc(t, 64)
	if err := r.alloc.Free(q); err != nil {
		t.Fatal(err)
	}
	_ = r.m.Load8(q) // freed access
	ks := kinds(r.tool.Reports())
	if len(ks) != 2 || ks[0] != BugOverflow || ks[1] != BugFreedAccess {
		t.Fatalf("reports = %v", ks)
	}
}

func TestDirectECCHardwareErrorRepair(t *testing.T) {
	r := newDirectTool(t, DefaultOptions())
	p := r.malloc(t, 64)
	r.m.Store64(p, 0xabc)
	// Double-bit error in the trailing guard (armed via check bits: the
	// data there is intact, so two data flips break the signature).
	pa, fault := r.m.AS.Translate(p+64, false)
	if fault != nil {
		t.Fatal(fault)
	}
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 2)
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 50)
	_ = r.m.Load8(p + 64)
	st := r.tool.Stats()
	if st.HardwareErrors != 1 || st.CorruptionReported != 0 {
		t.Fatalf("stats = %+v, want 1 hardware error, 0 corruption", st)
	}
}

func TestRandomProgramNoFalseReports(t *testing.T) {
	// Property-style integration test: a random but CORRECT program —
	// allocations, in-bounds accesses, frees, reallocation reuse — must
	// never produce a SafeMem report, under either watch backend.
	for _, direct := range []bool{false, true} {
		direct := direct
		name := "scramble"
		if direct {
			name = "direct"
		}
		t.Run(name, func(t *testing.T) {
			var r *testRig
			if direct {
				r = newDirectTool(t, DefaultOptions())
			} else {
				r = newTool(t, DefaultOptions())
			}
			rng := rand.New(rand.NewSource(12345))
			type blk struct {
				p    vm.VAddr
				size uint64
			}
			var live []blk
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 4 && len(live) < 200: // malloc
					size := uint64(rng.Intn(700) + 1)
					p, err := r.alloc.Malloc(size)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, blk{p, size})
				case op < 6 && len(live) > 0: // free
					i := rng.Intn(len(live))
					if err := r.alloc.Free(live[i].p); err != nil {
						t.Fatal(err)
					}
					live = append(live[:i], live[i+1:]...)
				case len(live) > 0: // in-bounds access
					b := live[rng.Intn(len(live))]
					off := vm.VAddr(rng.Intn(int(b.size)))
					if rng.Intn(2) == 0 {
						r.m.Store8(b.p+off, byte(step))
					} else {
						_ = r.m.Load8(b.p + off)
					}
				}
				r.m.Compute(200)
			}
			if reports := r.tool.Reports(); len(reports) != 0 {
				t.Fatalf("correct program produced reports: %v", reports)
			}
			// The heap's live accounting matches the program's.
			if r.alloc.Live() != len(live) {
				t.Fatalf("allocator live=%d, program live=%d", r.alloc.Live(), len(live))
			}
		})
	}
}

func TestRandomProgramAllOverflowsCaught(t *testing.T) {
	// Adversarial property: every first out-of-bounds access within the
	// guard line must be reported, at any offset and access size.
	r := newTool(t, DefaultOptions())
	rng := rand.New(rand.NewSource(98765))
	for trial := 0; trial < 120; trial++ {
		size := uint64(rng.Intn(500) + 1)
		p, err := r.alloc.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := r.alloc.BlockAt(p)
		before := r.tool.Stats().CorruptionReported
		// An access somewhere inside the trailing guard line.
		off := vm.VAddr(b.RoundedSize) + vm.VAddr(rng.Intn(60))
		if rng.Intn(2) == 0 {
			r.m.Store8(p+off, 0xee)
		} else {
			_ = r.m.Load8(p + off)
		}
		if r.tool.Stats().CorruptionReported != before+1 {
			t.Fatalf("trial %d: overflow at +%d of %d-byte buffer missed", trial, off, size)
		}
		if err := r.alloc.Free(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScrubbingDuringMonitoredExecution(t *testing.T) {
	// Full integration of Section 2.2.2's scrub coordination: a monitored
	// program runs while the controller is in Correct-and-Scrub mode and
	// the kernel periodically performs coordinated scrub passes. Watches
	// survive, latent hardware errors are repaired, and no spurious
	// reports appear.
	r := newTool(t, DefaultOptions())
	r.m.Ctrl.SetMode(memctrl.CorrectAndScrub)

	var bufs []vm.VAddr
	for i := 0; i < 40; i++ {
		p := r.malloc(t, 96)
		r.m.Memset(p, byte(i), 96)
		bufs = append(bufs, p)
	}
	// Plant a latent single-bit error in a random buffer.
	pa, _ := r.m.AS.Translate(bufs[7]+8, false)
	r.m.Cache.FlushAll()
	r.m.Phys.FlipDataBit(pa.GroupAddr(), 11)

	for round := 0; round < 6; round++ {
		r.m.Kern.CoordinatedScrub()
		for i, p := range bufs {
			if got := r.m.Load8(p); got != byte(i) {
				t.Fatalf("round %d: buffer %d corrupted: %d", round, i, got)
			}
		}
	}
	if n := len(r.tool.Reports()); n != 0 {
		t.Fatalf("scrubbed run produced %d reports: %v", n, r.tool.Reports())
	}
	if r.m.Ctrl.Stats().ScrubbedLines == 0 {
		t.Fatal("scrubber never ran")
	}
	if r.m.Ctrl.Stats().ScrubCorrected == 0 {
		t.Fatal("latent error never repaired by scrubbing")
	}
	// Guards still armed after all those scrub passes.
	r.m.Store8(bufs[0]+128, 1)
	if len(r.tool.Reports()) != 1 {
		t.Fatal("guard lost across scrub coordination")
	}
}

func TestSingleBitErrorStormInvisible(t *testing.T) {
	// Robustness under a storm of random single-bit hardware errors: the
	// controller corrects them all; SafeMem sees nothing; data survives.
	r := newTool(t, DefaultOptions())
	p := r.malloc(t, 4096)
	for off := uint64(0); off < 4096; off += 8 {
		r.m.Store64(p+vm.VAddr(off), off)
	}
	r.m.Cache.FlushAll()
	rng := rand.New(rand.NewSource(777))
	for n := 0; n < 200; n++ {
		off := uint64(rng.Intn(512)) * 8
		pa, fault := r.m.AS.Translate(p+vm.VAddr(off), false)
		if fault != nil {
			t.Fatal(fault)
		}
		r.m.Phys.FlipDataBit(pa.GroupAddr(), uint(rng.Intn(64)))
		if got := r.m.Load64(p + vm.VAddr(off)); got != off {
			t.Fatalf("error %d not corrected: %#x", n, got)
		}
		r.m.Cache.FlushLine(pa.LineAddr())
	}
	if len(r.tool.Reports()) != 0 {
		t.Fatalf("single-bit errors caused reports: %v", r.tool.Reports())
	}
	if r.m.Ctrl.Stats().CorrectedSingle < 190 {
		t.Fatalf("CorrectedSingle = %d", r.m.Ctrl.Stats().CorrectedSingle)
	}
}

func TestMLOnlyHeapNeedsNoPads(t *testing.T) {
	// Leak-only SafeMem runs on a pad-less (but line-aligned) heap.
	m := machine.MustNew(machine.Config{MemBytes: 8 << 20})
	alloc := heap.MustNew(m, HeapOptions(false))
	if alloc.Options().PadBytes != 0 {
		t.Fatal("leak-only heap should not pad")
	}
	opts := DefaultOptions()
	opts.DetectCorruption = false
	if _, err := Attach(m, alloc, opts); err != nil {
		t.Fatalf("attach failed: %v", err)
	}
}
