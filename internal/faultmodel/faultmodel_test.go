package faultmodel

import (
	"testing"

	"safemem/internal/inject"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/vm"
)

const arena = vm.VAddr(0x10000)
const arenaPages = 4
const arenaBytes = uint64(arenaPages) * vm.PageBytes

// newRig builds a machine with a mapped arena, RetireAndContinue (the fault
// model plants uncorrectables; stock policy would panic the first time the
// workload reads one), and an injector for attribution.
func newRig(t *testing.T) (*machine.Machine, *inject.Injector) {
	t.Helper()
	m := machine.MustNew(machine.Config{MemBytes: 1 << 20})
	m.Kern.SetResilience(kernel.ResilienceOptions{Policy: kernel.RetireAndContinue})
	if err := m.Kern.MapPages(arena, arenaPages); err != nil {
		t.Fatal(err)
	}
	return m, inject.New(m, inject.Config{Seed: 1})
}

// workload runs a deterministic read/write loop over the arena, giving the
// clock time to fire fault events and the deferred queue points to drain.
func workload(m *machine.Machine, iters int) {
	for i := 0; i < iters; i++ {
		va := arena + vm.VAddr(uint64(i*56)%arenaBytes)&^7
		m.Store(va, 8, uint64(i))
		_ = m.Load(va, 8)
		m.Compute(2_000)
	}
}

func TestFaultProcessIsSeedDeterministic(t *testing.T) {
	run := func() (Stats, inject.Stats) {
		m, in := newRig(t)
		p := Start(m, in, Config{
			Seed:         42,
			MeanInterval: 20_000,
			Targets:      []inject.Region{{Base: arena, Size: arenaBytes}},
		})
		workload(m, 400)
		p.Stop()
		return p.Stats(), in.Stats()
	}
	s1, i1 := run()
	s2, i2 := run()
	if s1 != s2 {
		t.Fatalf("fault-process stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
	if i1 != i2 {
		t.Fatalf("injector stats diverged across identical runs:\n%+v\n%+v", i1, i2)
	}
	if s1.Events == 0 {
		t.Fatal("fault process planted nothing")
	}
	if i1.Planted == 0 {
		t.Fatal("no plants reached the injector")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed uint64) Stats {
		m, in := newRig(t)
		p := Start(m, in, Config{
			Seed:         seed,
			MeanInterval: 20_000,
			Targets:      []inject.Region{{Base: arena, Size: arenaBytes}},
		})
		workload(m, 400)
		p.Stop()
		return p.Stats()
	}
	if run(1) == run(2) {
		t.Fatal("two seeds produced identical fault histories")
	}
}

func TestStormEpisodesRaiseTheRate(t *testing.T) {
	m, in := newRig(t)
	p := Start(m, in, Config{
		Seed:          7,
		MeanInterval:  50_000,
		DoubleBitFrac: -1, // single-bit only: isolate rate behaviour
		StormInterval: 150_000,
		StormLength:   300_000,
		StormFactor:   10,
		Targets:       []inject.Region{{Base: arena, Size: arenaBytes}},
	})
	workload(m, 500)
	p.Stop()
	s := p.Stats()
	if s.Storms == 0 {
		t.Fatal("no storm episode started")
	}
	// ~1M cycles of workload at mean 50k would give ~20 events without
	// storms; with most of the run inside factor-10 episodes the count must
	// be far higher. A loose 2x bound keeps the test robust to the seed.
	if s.Events < 40 {
		t.Fatalf("only %d events despite storms (storms=%d)", s.Events, s.Storms)
	}
}

func TestStuckCellReassertsAfterRepair(t *testing.T) {
	m, in := newRig(t)
	p := Start(m, in, Config{
		Seed:            3,
		MeanInterval:    30_000,
		TransientWeight: -1, IntermittentWeight: -1, StuckAtWeight: 1,
		StuckCheckInterval: 10_000,
		Targets:            []inject.Region{{Base: arena, Size: arenaBytes}},
	})
	workload(m, 600)
	p.Stop()
	s := p.Stats()
	if s.StuckAt == 0 {
		t.Fatal("no stuck-at cell created")
	}
	// The workload keeps reading the arena; every demand correction
	// "repairs" the cell in DRAM and the next check re-asserts it.
	if s.Refires == 0 {
		t.Fatal("stuck cell never re-asserted after repair")
	}
	if m.Ctrl.Stats().CorrectedSingle == 0 {
		t.Fatal("stuck cell faults never reached the controller")
	}
	if m.Kern.Panicked() {
		t.Fatal("kernel panicked")
	}
}

func TestPlantsStayAttributable(t *testing.T) {
	m, in := newRig(t)
	p := Start(m, in, Config{
		Seed:          9,
		MeanInterval:  15_000,
		DoubleBitFrac: -1,
		Targets:       []inject.Region{{Base: arena, Size: arenaBytes}},
	})
	workload(m, 400)
	p.Stop()
	is := in.Stats()
	if is.Planted == 0 {
		t.Fatal("nothing planted")
	}
	// Every controller-observed event on a planted group resolves through
	// the injector FIFO; with a read-heavy workload most plants are found.
	if is.Resolved == 0 {
		t.Fatal("no plant was ever attributed to an ECC event")
	}
	for _, o := range in.Outcomes() {
		if o.DetectedAt < o.Plant.Time {
			t.Fatalf("outcome detected before plant: %+v", o)
		}
	}
}
