// Package faultmodel is a seed-deterministic DRAM fault process: a
// background "physics" source that plants bit faults while a workload runs,
// driven by the simulated clock rather than the program's access stream.
// Where package inject answers "what happens if a fault lands HERE", this
// package answers "what does a production run on flaky DIMMs look like" —
// faults arrive on their own schedule, in realistic classes:
//
//   - transient upsets: one-shot single-bit flips at random addresses (the
//     cosmic-ray/alpha-particle events ECC exists for);
//   - intermittent faults: a weak cell that keeps re-flipping the same bit
//     a few times before going quiet (marginal hardware);
//   - stuck-at cells: a bit that permanently holds one value — every
//     write-back that disagrees is silently re-corrupted until the frame
//     is retired;
//   - error storms: bounded episodes during which the arrival rate
//     multiplies (a failing DIMM, a thermal event).
//
// Inter-arrival times are exponential, drawn from a splitmix64 stream, so a
// seed pins the entire fault history. Every plant goes through the
// campaign's inject.Injector, so ECC events stay attributable to ground
// truth — the oracle can tell a planted fault's detection from a detector
// false positive.
//
// The clock-timer hook never touches memory itself: it only decides what
// fault happens and defers the plant to the kernel's deferred-work queue,
// which drains between machine accesses. Planting mid-access would let a
// cache flush race the access in flight.
package faultmodel

import (
	"math"

	"safemem/internal/inject"
	"safemem/internal/machine"
	"safemem/internal/obsrv/flight"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// Config parameterises the fault process. Zero-valued fields take defaults.
type Config struct {
	// Seed pins the fault history (sites, bits, classes, timing).
	Seed uint64
	// MeanInterval is the mean inter-arrival time between fault events
	// outside storms. Default 200_000 cycles.
	MeanInterval simtime.Cycles
	// TransientWeight / IntermittentWeight / StuckAtWeight set the fault
	// class mix. Defaults 6 / 3 / 1.
	TransientWeight    int
	IntermittentWeight int
	StuckAtWeight      int
	// DoubleBitFrac makes 1-in-N transient events double-bit
	// (uncorrectable). 0 means the default of 8; negative disables
	// double-bit plants entirely (single-bit-only campaigns).
	DoubleBitFrac int
	// IntermittentRepeats is how many times a weak cell re-fires after its
	// first flip (default 3); IntermittentGap is the spacing (default
	// MeanInterval/4).
	IntermittentRepeats int
	IntermittentGap     simtime.Cycles
	// MaxStuckCells bounds live stuck-at cells (default 2). Further
	// stuck-at draws become transients.
	MaxStuckCells int
	// StuckCheckInterval is how often stuck cells re-assert themselves
	// (default MeanInterval/2).
	StuckCheckInterval simtime.Cycles
	// StormInterval, when non-zero, enables storm episodes with the given
	// mean spacing; StormLength is the episode duration (default
	// 4×MeanInterval) and StormFactor the rate multiplier inside one
	// (default 8).
	StormInterval simtime.Cycles
	StormLength   simtime.Cycles
	StormFactor   int
	// Targets restricts fault sites to the given virtual regions. Required:
	// with no targets the process plants nothing.
	Targets []inject.Region
}

// Stats counts fault-process activity.
type Stats struct {
	Events       uint64 // fresh faults planted (all classes)
	Transient    uint64
	Intermittent uint64
	StuckAt      uint64 // stuck cells created
	DoubleBit    uint64
	Refires      uint64 // weak-cell and stuck-at re-assertions planted
	Storms       uint64 // storm episodes entered
	Skipped      uint64 // plants dropped (page not resident)
}

// splitmix64 — the same stable stream the campaign generator uses; the
// fault history must mean the same thing for a seed forever.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// exp draws an exponential inter-arrival with the given mean, never zero.
func (r *rng) exp(mean simtime.Cycles) simtime.Cycles {
	// 53-bit mantissa draw in (0,1]; -ln(u)·mean is the inverse CDF.
	u := (float64(r.next()>>11) + 1) / (1 << 53)
	d := simtime.Cycles(-math.Log(u) * float64(mean))
	return d + 1
}

// weakCell is a scheduled repeating fault: an intermittent cell counting
// down its re-fires, or a stuck-at cell (remaining < 0, never expires).
type weakCell struct {
	at        simtime.Cycles
	va        vm.VAddr
	bit       uint
	stuck     bool // stuck-at: re-assert the held value forever
	stuckVal  bool
	remaining int // intermittent re-fires left
}

// Process is a running fault process. Create with Start.
type Process struct {
	m   *machine.Machine
	in  *inject.Injector
	cfg Config
	r   rng

	timer     *simtime.Timer
	nextEvent simtime.Cycles
	cells     []weakCell

	stormUntil  simtime.Cycles
	nextStormAt simtime.Cycles

	stopped bool
	stats   Stats
}

// Start launches the fault process on m, planting through in. The process
// registers a clock timer and a "faultmodel" telemetry source.
func Start(m *machine.Machine, in *inject.Injector, cfg Config) *Process {
	if cfg.MeanInterval <= 0 {
		cfg.MeanInterval = 200_000
	}
	if cfg.TransientWeight <= 0 && cfg.IntermittentWeight <= 0 && cfg.StuckAtWeight <= 0 {
		cfg.TransientWeight, cfg.IntermittentWeight, cfg.StuckAtWeight = 6, 3, 1
	}
	if cfg.TransientWeight < 0 {
		cfg.TransientWeight = 0
	}
	if cfg.IntermittentWeight < 0 {
		cfg.IntermittentWeight = 0
	}
	if cfg.StuckAtWeight < 0 {
		cfg.StuckAtWeight = 0
	}
	if cfg.DoubleBitFrac == 0 {
		cfg.DoubleBitFrac = 8
	}
	if cfg.IntermittentRepeats <= 0 {
		cfg.IntermittentRepeats = 3
	}
	if cfg.IntermittentGap <= 0 {
		cfg.IntermittentGap = cfg.MeanInterval / 4
	}
	if cfg.MaxStuckCells <= 0 {
		cfg.MaxStuckCells = 2
	}
	if cfg.StuckCheckInterval <= 0 {
		cfg.StuckCheckInterval = cfg.MeanInterval / 2
	}
	if cfg.StormInterval > 0 {
		if cfg.StormLength <= 0 {
			cfg.StormLength = 4 * cfg.MeanInterval
		}
		if cfg.StormFactor <= 1 {
			cfg.StormFactor = 8
		}
	}
	p := &Process{m: m, in: in, cfg: cfg, r: rng{state: cfg.Seed ^ 0xd1a6f0}}
	now := m.Clock.Now()
	p.nextEvent = now + p.r.exp(p.interval(now))
	if cfg.StormInterval > 0 {
		p.nextStormAt = now + p.r.exp(cfg.StormInterval)
	}
	m.Telemetry.RegisterSource("faultmodel", func(emit func(string, float64)) {
		s := p.stats
		emit("events", float64(s.Events))
		emit("transient", float64(s.Transient))
		emit("intermittent", float64(s.Intermittent))
		emit("stuck_at", float64(s.StuckAt))
		emit("double_bit", float64(s.DoubleBit))
		emit("refires", float64(s.Refires))
		emit("storms", float64(s.Storms))
		emit("skipped", float64(s.Skipped))
	})
	p.timer = m.Clock.NewTimer(p.deadline(), p.fire)
	return p
}

// Stop halts the process. Pending deferred plants still drain; no new
// faults are scheduled.
func (p *Process) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.timer.Stop()
}

// Stats returns a copy of the counters.
func (p *Process) Stats() Stats { return p.stats }

// InStorm reports whether a storm episode is in progress.
func (p *Process) InStorm() bool { return p.m.Clock.Now() < p.stormUntil }

// interval is the current mean inter-arrival, storm-adjusted.
func (p *Process) interval(now simtime.Cycles) simtime.Cycles {
	if now < p.stormUntil {
		return p.cfg.MeanInterval / simtime.Cycles(p.cfg.StormFactor)
	}
	return p.cfg.MeanInterval
}

// deadline is the earliest pending event time.
func (p *Process) deadline() simtime.Cycles {
	d := p.nextEvent
	if p.nextStormAt != 0 && p.nextStormAt < d {
		d = p.nextStormAt
	}
	for _, c := range p.cells {
		if c.at < d {
			d = c.at
		}
	}
	return d
}

// fire is the clock-timer hook. It only makes decisions and defers the
// actual plants; memory is never touched from timer context.
func (p *Process) fire(now simtime.Cycles) simtime.Cycles {
	if p.stopped {
		return 0 // deactivate
	}
	if p.nextStormAt != 0 && now >= p.nextStormAt {
		p.stormUntil = now + p.cfg.StormLength
		p.nextStormAt = now + p.cfg.StormLength + p.r.exp(p.cfg.StormInterval)
		p.stats.Storms++
	}
	for i := range p.cells {
		c := &p.cells[i]
		if now < c.at {
			continue
		}
		p.deferRefire(*c)
		if c.stuck {
			c.at = now + p.cfg.StuckCheckInterval
		} else {
			c.remaining--
			if c.remaining <= 0 {
				c.at = 0 // retire below
			} else {
				c.at = now + p.cfg.IntermittentGap
			}
		}
	}
	// Compact expired intermittent cells.
	live := p.cells[:0]
	for _, c := range p.cells {
		if c.at != 0 {
			live = append(live, c)
		}
	}
	p.cells = live
	if now >= p.nextEvent {
		p.spawn(now)
		p.nextEvent = now + p.r.exp(p.interval(now))
	}
	return p.deadline()
}

// spawn decides one fresh fault event and defers its plant.
func (p *Process) spawn(now simtime.Cycles) {
	va, ok := p.site()
	if !ok {
		p.stats.Skipped++
		return
	}
	total := p.cfg.TransientWeight + p.cfg.IntermittentWeight + p.cfg.StuckAtWeight
	draw := p.r.intn(total)
	bit := uint(p.r.intn(64))
	switch {
	case draw < p.cfg.TransientWeight:
		double := p.cfg.DoubleBitFrac > 0 && p.r.intn(p.cfg.DoubleBitFrac) == 0
		b2 := uint(p.r.intn(63))
		if b2 >= bit {
			b2++
		}
		p.stats.Events++
		p.stats.Transient++
		if double {
			p.stats.DoubleBit++
		}
		p.deferPlant(va, double, bit, b2)
	case draw < p.cfg.TransientWeight+p.cfg.IntermittentWeight:
		p.stats.Events++
		p.stats.Intermittent++
		p.cells = append(p.cells, weakCell{
			at: now + p.cfg.IntermittentGap, va: va, bit: bit,
			remaining: p.cfg.IntermittentRepeats,
		})
		p.deferPlant(va, false, bit, 0)
	default:
		nStuck := 0
		for _, c := range p.cells {
			if c.stuck {
				nStuck++
			}
		}
		if nStuck >= p.cfg.MaxStuckCells {
			// Enough permanent damage already; degrade to a transient.
			p.stats.Events++
			p.stats.Transient++
			p.deferPlant(va, false, bit, 0)
			return
		}
		p.stats.Events++
		p.stats.StuckAt++
		// The cell sticks at the COMPLEMENT of its current value, so the
		// first assertion is an immediate flip.
		cur, resident := p.in.DataBit(va, bit)
		if !resident {
			p.stats.Skipped++
			return
		}
		p.cells = append(p.cells, weakCell{
			at: now + p.cfg.StuckCheckInterval, va: va, bit: bit,
			stuck: true, stuckVal: !cur,
		})
		p.deferPlant(va, false, bit, 0)
	}
}

// deferPlant queues one plant for the next deferred-work point.
func (p *Process) deferPlant(va vm.VAddr, double bool, b1, b2 uint) {
	p.m.Kern.Defer(func() {
		if p.stopped {
			return
		}
		if !p.in.PlantSpecific(va, double, b1, b2) {
			p.stats.Skipped++
			return
		}
		dbl := uint64(0)
		if double {
			dbl = 1
		}
		flight.Emit(flight.KindFaultPlant, "faultmodel", p.m.Clock.Now(), "fault planted",
			flight.F("addr", uint64(va)), flight.F("bit", uint64(b1)), flight.F("double", dbl))
	})
}

// deferRefire queues a weak/stuck cell re-assertion. A stuck cell only
// plants when the stored bit disagrees with the held value — a write-back
// may have "repaired" it, which is exactly when the cell strikes again.
func (p *Process) deferRefire(c weakCell) {
	p.m.Kern.Defer(func() {
		if p.stopped {
			return
		}
		if c.stuck {
			cur, resident := p.in.DataBit(c.va, c.bit)
			if !resident || cur == c.stuckVal {
				return
			}
		}
		if p.in.PlantSpecific(c.va, false, c.bit, 0) {
			p.stats.Refires++
		} else {
			p.stats.Skipped++
		}
	})
}

// site picks a fault address from the configured targets.
func (p *Process) site() (vm.VAddr, bool) {
	if len(p.cfg.Targets) == 0 {
		return 0, false
	}
	t := p.cfg.Targets[p.r.intn(len(p.cfg.Targets))]
	if t.Size == 0 {
		return 0, false
	}
	return t.Base + vm.VAddr(p.r.next()%t.Size), true
}
