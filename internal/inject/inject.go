// Package inject drives hardware-error injection campaigns: while a
// workload runs, random bit flips are planted in DRAM at a configurable
// rate, and the outcome counters show how the ECC machinery and SafeMem
// divide the work — single-bit errors corrected silently by the controller,
// multi-bit errors in watched regions repaired from SafeMem's saved copies,
// multi-bit errors elsewhere escalating to a kernel panic (the stock OS
// behaviour the paper describes in Section 2.1).
//
// The injector attaches as a machine.Monitor and uses the program's own
// access stream as its clock: every N-th access plants one fault in a
// uniformly random mapped frame. Deterministic harnesses (package campaign)
// instead call PlantAt to place a fault at a chosen virtual address.
//
// Every plant is recorded as a structured Plant — intended site, fault
// class, bit positions and plant time — and detections are matched back to
// plants through a per-group FIFO, so two plants landing on the same ECC
// group (an address collision) are disambiguated by order instead of the
// newer plant silently overwriting the older one's bookkeeping.
package inject

import (
	"math/rand"

	"safemem/internal/ecc"

	"safemem/internal/machine"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// Mode selects the planted fault type.
type Mode int

const (
	// SingleBit plants correctable single-bit errors.
	SingleBit Mode = iota
	// DoubleBit plants uncorrectable double-bit errors.
	DoubleBit
	// Mixed plants mostly single-bit with ~1/8 double-bit errors.
	Mixed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SingleBit:
		return "single-bit"
	case DoubleBit:
		return "double-bit"
	case Mixed:
		return "mixed"
	default:
		return "unknown"
	}
}

// Config parameterises a campaign.
type Config struct {
	// EveryN plants one fault per N program accesses.
	EveryN uint64
	// Mode selects the fault type.
	Mode Mode
	// Seed drives the fault-site generator.
	Seed int64
	// Targets restricts fault sites to the given virtual regions (e.g. the
	// heap arena); empty means any of them.
	Targets []Region
}

// Region is a virtual address range.
type Region struct {
	Base vm.VAddr
	Size uint64
}

// Stats counts campaign activity.
type Stats struct {
	Planted       uint64
	PlantedSingle uint64
	PlantedDouble uint64
	// Resolved counts plants matched to an ECC event (corrected or
	// reported); Planted - Resolved plants are still latent in DRAM.
	Resolved uint64
	// SkippedUnmapped counts fault attempts on non-resident pages (the
	// bits would have flipped in swap, which the model does not cover).
	SkippedUnmapped uint64
}

// Plant is the structured record of one injected fault — the ground truth an
// oracle needs to classify what the detection stack later reports. The
// intended "bug" is identified by kind (single vs double bit) and site (the
// virtual address and the physical ECC group), not merely by the group
// address the old bookkeeping kept.
type Plant struct {
	// Seq is the plant's campaign-unique sequence number.
	Seq uint64
	// VAddr is the virtual fault site (0 when planted physically).
	VAddr vm.VAddr
	// Group is the physical ECC group the bits flipped in.
	Group physmem.Addr
	// Time is the simulated time of the plant.
	Time simtime.Cycles
	// Double reports whether two bits were flipped (uncorrectable).
	Double bool
	// Bits holds the flipped data-bit positions (Bits[1] is meaningful only
	// when Double).
	Bits [2]uint
}

// Outcome ties an ECC event back to the plant that caused it.
type Outcome struct {
	Plant Plant
	// DetectedAt is the simulated time the controller saw the error.
	DetectedAt simtime.Cycles
	// Uncorrectable reports whether the event escalated past silent
	// correction.
	Uncorrectable bool
}

// Latency is the plant→detection interval.
func (o Outcome) Latency() simtime.Cycles { return o.DetectedAt - o.Plant.Time }

// Injector plants faults. Attach with machine.AttachMonitor for rate-driven
// campaigns, or drive it directly with PlantAt.
type Injector struct {
	m        *machine.Machine
	cfg      Config
	rng      *rand.Rand
	accesses uint64
	seq      uint64
	stats    Stats

	// pending holds planted-but-undetected faults per ECC group, oldest
	// first. A FIFO (not a single timestamp) so address collisions — two
	// plants in the same group — stay distinguishable.
	pending  map[physmem.Addr][]Plant
	outcomes []Outcome
	observer func(Outcome)

	tr      *telemetry.Tracer
	latency *telemetry.Histogram
}

// New creates an injector for m. It registers an "inject" telemetry source
// and hooks the memory controller's fault observer so every ECC event on a
// planted group records its detection latency and resolves the plant.
func New(m *machine.Machine, cfg Config) *Injector {
	if cfg.EveryN == 0 {
		cfg.EveryN = 10_000
	}
	in := &Injector{
		m:       m,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		pending: make(map[physmem.Addr][]Plant),
	}
	in.tr = m.Telemetry.Tracer()
	in.latency = m.Telemetry.Histogram("inject", "detection_latency_cycles", telemetry.LatencyBuckets)
	m.Telemetry.RegisterSource("inject", func(emit func(string, float64)) {
		s := in.stats
		emit("planted", float64(s.Planted))
		emit("planted_single", float64(s.PlantedSingle))
		emit("planted_double", float64(s.PlantedDouble))
		emit("resolved", float64(s.Resolved))
		emit("skipped_unmapped", float64(s.SkippedUnmapped))
	})
	m.Ctrl.SetFaultObserver(in.observeFault)
	return in
}

// observeFault resolves pending plants on the faulting group. A correctable
// event consumes only the oldest plant (one flipped bit, one correction);
// an uncorrectable event resolves every pending plant on the group — they
// all contributed to the multi-bit pattern the controller saw.
func (in *Injector) observeFault(group physmem.Addr, uncorrectable bool) {
	q := in.pending[group]
	if len(q) == 0 {
		return
	}
	n := 1
	if uncorrectable {
		n = len(q)
	}
	now := in.m.Clock.Now()
	for _, p := range q[:n] {
		o := Outcome{Plant: p, DetectedAt: now, Uncorrectable: uncorrectable}
		in.outcomes = append(in.outcomes, o)
		in.stats.Resolved++
		in.latency.ObserveCycles(o.Latency())
		if in.observer != nil {
			in.observer(o)
		}
	}
	if n == len(q) {
		delete(in.pending, group)
	} else {
		in.pending[group] = q[n:]
	}
}

// SetOutcomeObserver registers a callback invoked synchronously for every
// resolved plant — the hook a campaign oracle uses to stream ground-truth
// matches instead of polling Outcomes.
func (in *Injector) SetOutcomeObserver(fn func(Outcome)) { in.observer = fn }

// Stats returns a copy of the counters.
func (in *Injector) Stats() Stats { return in.stats }

// Outcomes returns all resolved plants in detection order.
func (in *Injector) Outcomes() []Outcome {
	out := make([]Outcome, len(in.outcomes))
	copy(out, in.outcomes)
	return out
}

// PendingPlants returns the plants not yet seen by the controller, in plant
// order.
func (in *Injector) PendingPlants() []Plant {
	var out []Plant
	for _, q := range in.pending {
		out = append(out, q...)
	}
	// Map order is irrelevant once sorted by sequence number.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// OnLoad implements machine.Monitor.
func (in *Injector) OnLoad(va vm.VAddr, size int) { in.tick() }

// OnStore implements machine.Monitor.
func (in *Injector) OnStore(va vm.VAddr, size int) { in.tick() }

func (in *Injector) tick() {
	in.accesses++
	if in.accesses%in.cfg.EveryN != 0 {
		return
	}
	va, ok := in.site()
	if !ok {
		in.stats.SkippedUnmapped++
		return
	}
	double := in.cfg.Mode == DoubleBit || (in.cfg.Mode == Mixed && in.rng.Intn(8) == 0)
	b1 := uint(in.rng.Intn(64))
	b2 := uint(in.rng.Intn(63))
	if b2 >= b1 {
		b2++
	}
	if !in.plant(va, double, b1, b2) {
		in.stats.SkippedUnmapped++
	}
}

// PlantAt flips bit(s) of the ECC group containing va, recording the plant
// for outcome matching. Bit positions come from the injector's seeded
// generator. Returns false when the page is not resident.
func (in *Injector) PlantAt(va vm.VAddr, double bool) bool {
	b1 := uint(in.rng.Intn(64))
	b2 := uint(in.rng.Intn(63))
	if b2 >= b1 {
		b2++
	}
	return in.plant(va, double, b1, b2)
}

// PlantSpecific flips caller-chosen bit(s) of the ECC group containing va,
// recording the plant for outcome matching. The DRAM fault model (package
// faultmodel) uses it so its own seeded stream — not the injector's —
// decides bit positions, keeping repeating faults (weak and stuck-at cells)
// pinned to one bit. Double-bit plants still run the alias-avoidance search.
// Returns false when the page is not resident.
func (in *Injector) PlantSpecific(va vm.VAddr, double bool, b1, b2 uint) bool {
	return in.plant(va, double, b1, b2)
}

// DataBit reports the current value of data bit b of the ECC group
// containing va, bypassing cache and ECC (false when not resident). The
// fault model uses it to decide whether a stuck-at cell needs re-asserting.
func (in *Injector) DataBit(va vm.VAddr, b uint) (bool, bool) {
	frame, resident := in.m.AS.FrameOf(va)
	if !resident {
		return false, false
	}
	ga := (frame + physmem.Addr(va.PageOffset())).GroupAddr()
	// The DRAM cell holds whatever the last write-back left; a dirty cached
	// copy is newer but has not reached the cell yet, so the raw DRAM view
	// is the right one for a cell-level fault model.
	data, _ := in.m.Phys.ReadGroupRaw(ga)
	return data&(1<<b) != 0, true
}

// plant flips bit(s) of the ECC group containing va.
func (in *Injector) plant(va vm.VAddr, double bool, b1, b2 uint) bool {
	frame, resident := in.m.AS.FrameOf(va)
	if !resident {
		return false
	}
	ga := (frame + physmem.Addr(va.PageOffset())).GroupAddr()
	// Evict any cached copy first: a fault under a cache-resident line is
	// invisible until eviction (and a dirty write-back would simply
	// overwrite it). Flushing models the common case — a fault in data
	// that is not currently cached.
	in.m.Cache.FlushLine(ga.LineAddr())
	in.m.Phys.FlipDataBit(ga, b1)
	if double {
		// A double-bit fault must decode as uncorrectable. On a pristine
		// codeword any second flip does, but on a line that is already
		// corrupt — e.g. a SafeMem-scrambled watch line — an unlucky pair
		// can alias to a *correctable* syndrome and be silently absorbed
		// (real SECDED miscorrects too, but a plant that cannot fault is
		// useless to a campaign). Advance b2 to the first position whose
		// combined pattern stays uncorrectable.
		data, check := in.m.Phys.ReadGroupRaw(ga)
		for try := uint(0); try < 64; try++ {
			cand := (b2 + try) % 64
			if cand == b1 {
				continue
			}
			if _, _, res := ecc.Decode(data^(1<<cand), ecc.Check(check)); res == ecc.Uncorrectable {
				b2 = cand
				break
			}
		}
	}
	p := Plant{
		Seq:    in.seq,
		VAddr:  va,
		Group:  ga,
		Time:   in.m.Clock.Now(),
		Double: double,
		Bits:   [2]uint{b1, b2},
	}
	in.seq++
	in.stats.Planted++
	in.tr.Instant("inject", "plant", telemetry.KV("group", uint64(ga)))
	if double {
		in.m.Phys.FlipDataBit(ga, b2)
		in.stats.PlantedDouble++
	} else {
		in.stats.PlantedSingle++
	}
	in.pending[ga] = append(in.pending[ga], p)
	// A fault in DRAM under a dirty cached line will be overwritten by the
	// write-back before anyone reads it — exactly as on real hardware; no
	// special handling needed.
	return true
}

// site picks a random virtual fault address.
func (in *Injector) site() (vm.VAddr, bool) {
	if len(in.cfg.Targets) == 0 {
		return 0, false
	}
	r := in.cfg.Targets[in.rng.Intn(len(in.cfg.Targets))]
	if r.Size == 0 {
		return 0, false
	}
	return r.Base + vm.VAddr(in.rng.Int63n(int64(r.Size))), true
}
