// Package inject drives hardware-error injection campaigns: while a
// workload runs, random bit flips are planted in DRAM at a configurable
// rate, and the outcome counters show how the ECC machinery and SafeMem
// divide the work — single-bit errors corrected silently by the controller,
// multi-bit errors in watched regions repaired from SafeMem's saved copies,
// multi-bit errors elsewhere escalating to a kernel panic (the stock OS
// behaviour the paper describes in Section 2.1).
//
// The injector attaches as a machine.Monitor and uses the program's own
// access stream as its clock: every N-th access plants one fault in a
// uniformly random mapped frame.
package inject

import (
	"math/rand"

	"safemem/internal/machine"
	"safemem/internal/physmem"
	"safemem/internal/simtime"
	"safemem/internal/telemetry"
	"safemem/internal/vm"
)

// Mode selects the planted fault type.
type Mode int

const (
	// SingleBit plants correctable single-bit errors.
	SingleBit Mode = iota
	// DoubleBit plants uncorrectable double-bit errors.
	DoubleBit
	// Mixed plants mostly single-bit with ~1/8 double-bit errors.
	Mixed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SingleBit:
		return "single-bit"
	case DoubleBit:
		return "double-bit"
	case Mixed:
		return "mixed"
	default:
		return "unknown"
	}
}

// Config parameterises a campaign.
type Config struct {
	// EveryN plants one fault per N program accesses.
	EveryN uint64
	// Mode selects the fault type.
	Mode Mode
	// Seed drives the fault-site generator.
	Seed int64
	// Targets restricts fault sites to the given virtual regions (e.g. the
	// heap arena); empty means any of them.
	Targets []Region
}

// Region is a virtual address range.
type Region struct {
	Base vm.VAddr
	Size uint64
}

// Stats counts campaign activity.
type Stats struct {
	Planted       uint64
	PlantedSingle uint64
	PlantedDouble uint64
	// SkippedUnmapped counts fault attempts on non-resident pages (the
	// bits would have flipped in swap, which the model does not cover).
	SkippedUnmapped uint64
}

// Injector plants faults. Attach with machine.AttachMonitor.
type Injector struct {
	m        *machine.Machine
	cfg      Config
	rng      *rand.Rand
	accesses uint64
	stats    Stats

	// plantTime records when each planted-but-undetected fault went in, so
	// the controller's fault observer can measure plant→detection latency.
	plantTime map[physmem.Addr]simtime.Cycles
	tr        *telemetry.Tracer
	latency   *telemetry.Histogram
}

// New creates an injector for m. It registers an "inject" telemetry source
// and hooks the memory controller's fault observer so every ECC event on a
// planted group records its detection latency.
func New(m *machine.Machine, cfg Config) *Injector {
	if cfg.EveryN == 0 {
		cfg.EveryN = 10_000
	}
	in := &Injector{
		m:         m,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		plantTime: make(map[physmem.Addr]simtime.Cycles),
	}
	in.tr = m.Telemetry.Tracer()
	in.latency = m.Telemetry.Histogram("inject", "detection_latency_cycles", telemetry.LatencyBuckets)
	m.Telemetry.RegisterSource("inject", func(emit func(string, float64)) {
		s := in.stats
		emit("planted", float64(s.Planted))
		emit("planted_single", float64(s.PlantedSingle))
		emit("planted_double", float64(s.PlantedDouble))
		emit("skipped_unmapped", float64(s.SkippedUnmapped))
	})
	m.Ctrl.SetFaultObserver(func(group physmem.Addr, uncorrectable bool) {
		at, ok := in.plantTime[group]
		if !ok {
			return
		}
		delete(in.plantTime, group)
		in.latency.ObserveCycles(m.Clock.Now() - at)
	})
	return in
}

// Stats returns a copy of the counters.
func (in *Injector) Stats() Stats { return in.stats }

// OnLoad implements machine.Monitor.
func (in *Injector) OnLoad(va vm.VAddr, size int) { in.tick() }

// OnStore implements machine.Monitor.
func (in *Injector) OnStore(va vm.VAddr, size int) { in.tick() }

func (in *Injector) tick() {
	in.accesses++
	if in.accesses%in.cfg.EveryN != 0 {
		return
	}
	in.plant()
}

// plant flips bit(s) of one ECC group on a random resident target page.
func (in *Injector) plant() {
	va, ok := in.site()
	if !ok {
		in.stats.SkippedUnmapped++
		return
	}
	frame, resident := in.m.AS.FrameOf(va)
	if !resident {
		in.stats.SkippedUnmapped++
		return
	}
	ga := (frame + physmem.Addr(va.PageOffset())).GroupAddr()
	// Evict any cached copy first: a fault under a cache-resident line is
	// invisible until eviction (and a dirty write-back would simply
	// overwrite it). Flushing models the common case — a fault in data
	// that is not currently cached.
	in.m.Cache.FlushLine(ga.LineAddr())
	double := in.cfg.Mode == DoubleBit || (in.cfg.Mode == Mixed && in.rng.Intn(8) == 0)
	b1 := uint(in.rng.Intn(64))
	in.m.Phys.FlipDataBit(ga, b1)
	in.stats.Planted++
	in.plantTime[ga] = in.m.Clock.Now()
	in.tr.Instant("inject", "plant", telemetry.KV("group", uint64(ga)))
	if double {
		b2 := uint(in.rng.Intn(63))
		if b2 >= b1 {
			b2++
		}
		in.m.Phys.FlipDataBit(ga, b2)
		in.stats.PlantedDouble++
	} else {
		in.stats.PlantedSingle++
	}
	// A fault in DRAM under a dirty cached line will be overwritten by the
	// write-back before anyone reads it — exactly as on real hardware; no
	// special handling needed.
}

// site picks a random virtual fault address.
func (in *Injector) site() (vm.VAddr, bool) {
	if len(in.cfg.Targets) == 0 {
		return 0, false
	}
	r := in.cfg.Targets[in.rng.Intn(len(in.cfg.Targets))]
	if r.Size == 0 {
		return 0, false
	}
	return r.Base + vm.VAddr(in.rng.Int63n(int64(r.Size))), true
}
