package inject

import (
	"errors"
	"testing"

	"safemem/internal/apps"
	safemem "safemem/internal/core"
	"safemem/internal/heap"
	"safemem/internal/kernel"
	"safemem/internal/machine"
	"safemem/internal/simtime"
	"safemem/internal/vm"
)

// campaign runs ypserv1 under SafeMem with fault injection and returns the
// run outcome plus all counters.
func campaign(t *testing.T, mode Mode, everyN uint64) (runErr error, in *Injector, tool *safemem.Tool, m *machine.Machine) {
	t.Helper()
	m = machine.MustNew(machine.Config{MemBytes: 64 << 20})
	alloc := heap.MustNew(m, safemem.HeapOptions(true))
	opts := safemem.DefaultOptions()
	// Evaluation-harness leak thresholds (see bench.SafeMemOptions): the
	// warm-up must exceed the app's initialisation phase.
	opts.WarmupTime = simtime.FromMicroseconds(4000)
	var err error
	tool, err = safemem.Attach(m, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := alloc.ArenaRange()
	in = New(m, Config{
		EveryN: everyN,
		Mode:   mode,
		Seed:   7,
		// Target the first 128 KiB of the heap (mapped early in the run).
		Targets: []Region{{Base: lo, Size: 128 << 10}},
	})
	m.AttachMonitor(in)

	app, _ := apps.Get("ypserv1")
	env := &apps.Env{M: m, Alloc: alloc}
	runErr = m.Run(func() error { return app.Run(env, apps.Config{Seed: 42}) })
	return runErr, in, tool, m
}

func TestSingleBitCampaignIsInvisible(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	runErr, in, tool, m := campaign(t, SingleBit, 10_000)
	if runErr != nil {
		t.Fatalf("run failed under single-bit injection: %v", runErr)
	}
	st := in.Stats()
	if st.PlantedSingle < 100 {
		t.Fatalf("only %d faults planted", st.PlantedSingle)
	}
	// The controller corrected at least the planted errors that any read
	// ever saw; SafeMem saw none of them; the program produced no reports.
	if m.Ctrl.Stats().CorrectedSingle == 0 {
		t.Fatal("no corrections recorded")
	}
	if tool.Stats().HardwareErrors != 0 {
		t.Fatalf("single-bit faults escalated to SafeMem: %d", tool.Stats().HardwareErrors)
	}
	if n := len(tool.Reports()); n != 0 {
		for _, r := range tool.Reports() {
			t.Logf("report: %s", r)
		}
		t.Fatalf("injection produced %d bug reports", n)
	}
	t.Logf("planted %d single-bit faults; controller corrected %d reads; zero reports",
		st.PlantedSingle, m.Ctrl.Stats().CorrectedSingle)
}

func TestDoubleBitCampaignEscalates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Double-bit faults sprayed over the heap: some land in watched guard
	// lines (SafeMem repairs them from its saved copies), and sooner or
	// later one lands in plain data — kernel panic, like an unmodified OS.
	runErr, in, tool, _ := campaign(t, DoubleBit, 40_000)
	st := in.Stats()
	if st.PlantedDouble == 0 {
		t.Fatal("no faults planted")
	}
	var pe *kernel.PanicError
	switch {
	case runErr == nil:
		// Statistically possible (every double-bit fault was overwritten
		// or hit a watched line) but with this seed a panic is expected.
		if tool.Stats().HardwareErrors == 0 {
			t.Fatal("run survived but SafeMem repaired nothing — injection ineffective")
		}
	case errors.As(runErr, &pe):
		// Expected: an uncorrectable error outside SafeMem's regions.
	default:
		t.Fatalf("unexpected termination: %v", runErr)
	}
	t.Logf("planted %d double-bit faults; SafeMem repaired %d; outcome: %v",
		st.PlantedDouble, tool.Stats().HardwareErrors, runErr)
}

func TestInjectorConfigDefaults(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 4 << 20})
	in := New(m, Config{})
	if in.cfg.EveryN == 0 {
		t.Fatal("EveryN default not applied")
	}
	// No targets: plants are skipped, not panics.
	in.accesses = in.cfg.EveryN - 1
	in.tick()
	if in.Stats().Planted != 0 || in.Stats().SkippedUnmapped != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestModeStrings(t *testing.T) {
	if SingleBit.String() != "single-bit" || DoubleBit.String() != "double-bit" || Mixed.String() != "mixed" {
		t.Fatal("mode names wrong")
	}
}

func TestPlantAtRecordsStructuredOutcome(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 4 << 20})
	if err := m.Kern.MapPages(0x40000, 1); err != nil {
		t.Fatal(err)
	}
	in := New(m, Config{Seed: 11})
	m.Store64(0x40000, 0xdeadbeef)
	m.Cache.FlushAll()
	m.Clock.Advance(1000)
	if !in.PlantAt(0x40000, false) {
		t.Fatal("plant on mapped page failed")
	}
	plantTime := m.Clock.Now()
	if got := in.PendingPlants(); len(got) != 1 || got[0].VAddr != 0x40000 || got[0].Double {
		t.Fatalf("pending = %+v", got)
	}
	m.Clock.Advance(5000)
	if v := m.Load64(0x40000); v != 0xdeadbeef {
		t.Fatalf("corrected read = %#x", v)
	}
	outs := in.Outcomes()
	if len(outs) != 1 {
		t.Fatalf("outcomes = %+v", outs)
	}
	o := outs[0]
	if o.Uncorrectable || o.Plant.Time != plantTime || o.Latency() < 5000 {
		t.Fatalf("outcome = %+v (latency %d)", o, o.Latency())
	}
	if len(in.PendingPlants()) != 0 || in.Stats().Resolved != 1 {
		t.Fatalf("plant not consumed: pending=%d stats=%+v", len(in.PendingPlants()), in.Stats())
	}
}

// TestAddressCollisionDisambiguation plants two faults in the same ECC group
// before either is detected. The old address-keyed bookkeeping would have
// overwritten the first plant's record; the FIFO must keep both, and the
// resulting uncorrectable (two flipped bits) event must resolve both plants
// with their own plant times.
func TestAddressCollisionDisambiguation(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 4 << 20})
	if err := m.Kern.MapPages(0x40000, 1); err != nil {
		t.Fatal(err)
	}
	in := New(m, Config{Seed: 5})
	m.Store64(0x40000, 7)
	m.Cache.FlushAll()

	if !in.PlantAt(0x40000, false) {
		t.Fatal("first plant failed")
	}
	t0 := m.Clock.Now()
	m.Clock.Advance(10_000)
	// Same group, later time. The two single-bit plants superpose into an
	// uncorrectable double-bit pattern (distinct bit positions are
	// guaranteed only per plant, so retry via a fresh seed is unnecessary:
	// colliding on the same bit would cancel, which the outcome check below
	// would catch as zero outcomes).
	if !in.PlantAt(0x40004, false) {
		t.Fatal("second plant failed")
	}
	t1 := m.Clock.Now()
	if t0 == t1 {
		t.Fatal("plants not separated in time")
	}
	pending := in.PendingPlants()
	if len(pending) != 2 || pending[0].Seq != 0 || pending[1].Seq != 1 {
		t.Fatalf("pending = %+v", pending)
	}
	if pending[0].Group != pending[1].Group {
		t.Fatalf("plants did not collide: groups %#x vs %#x", pending[0].Group, pending[1].Group)
	}

	var seen []Outcome
	in.SetOutcomeObserver(func(o Outcome) { seen = append(seen, o) })
	runErr := m.Run(func() error { m.Load64(0x40000); return nil })

	outs := in.Outcomes()
	switch len(outs) {
	case 2:
		// Both plants resolved by the one uncorrectable event, each keeping
		// its own identity.
		if runErr == nil {
			t.Fatal("uncorrectable read did not terminate the run")
		}
		if !outs[0].Uncorrectable || !outs[1].Uncorrectable {
			t.Fatalf("outcomes not uncorrectable: %+v", outs)
		}
		if outs[0].Plant.Time != t0 || outs[1].Plant.Time != t1 {
			t.Fatalf("plant times lost: %+v", outs)
		}
		if outs[0].Latency() == outs[1].Latency() {
			t.Fatal("colliding plants share a latency — records were merged")
		}
		if len(seen) != 2 {
			t.Fatalf("observer saw %d outcomes", len(seen))
		}
		if len(in.PendingPlants()) != 0 || in.Stats().Resolved != 2 {
			t.Fatalf("pending=%d stats=%+v", len(in.PendingPlants()), in.Stats())
		}
	case 0:
		// The two random bit positions coincided and cancelled — legal
		// physics, but then the read must have succeeded cleanly.
		if runErr != nil {
			t.Fatalf("bits cancelled yet run failed: %v", runErr)
		}
		t.Skip("bit positions coincided; plants cancelled (seed-dependent)")
	default:
		t.Fatalf("outcomes = %+v", outs)
	}
}

func TestRegionTargeting(t *testing.T) {
	m := machine.MustNew(machine.Config{MemBytes: 4 << 20})
	if err := m.Kern.MapPages(0x40000, 1); err != nil {
		t.Fatal(err)
	}
	in := New(m, Config{EveryN: 1, Mode: SingleBit, Seed: 3,
		Targets: []Region{{Base: 0x40000, Size: vm.PageBytes}}})
	m.AttachMonitor(in)
	m.Store64(0x40000, 1) // each access plants one fault in the page
	m.Store64(0x40008, 2)
	if in.Stats().Planted != 2 {
		t.Fatalf("planted = %d", in.Stats().Planted)
	}
}
