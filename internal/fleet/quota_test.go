package fleet

import (
	"testing"
	"time"
)

// fakeClock steps a quotas instance through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQuotas(cfg QuotaConfig) (*quotas, *fakeClock) {
	q := newQuotas(cfg)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	q.now = clk.now
	return q, clk
}

func TestQuotaBurstThenDry(t *testing.T) {
	q, _ := newTestQuotas(QuotaConfig{Rate: 1, Burst: 3})
	for i := 0; i < 3; i++ {
		if ok, _ := q.admit("a"); !ok {
			t.Fatalf("admit %d within burst refused", i)
		}
	}
	ok, retry := q.admit("a")
	if ok {
		t.Fatal("admit past burst succeeded")
	}
	// Bucket is exactly empty: next token is 1/Rate away.
	if retry != time.Second {
		t.Errorf("retryAfter = %v, want 1s", retry)
	}
}

func TestQuotaRefill(t *testing.T) {
	q, clk := newTestQuotas(QuotaConfig{Rate: 2, Burst: 2})
	q.admit("a")
	q.admit("a")
	if ok, _ := q.admit("a"); ok {
		t.Fatal("dry bucket admitted")
	}
	clk.advance(500 * time.Millisecond) // refills one token at 2/s
	if ok, _ := q.admit("a"); !ok {
		t.Fatal("refilled bucket refused")
	}
	if ok, _ := q.admit("a"); ok {
		t.Fatal("second admit after one-token refill succeeded")
	}
}

func TestQuotaRefillCapsAtBurst(t *testing.T) {
	q, clk := newTestQuotas(QuotaConfig{Rate: 100, Burst: 2})
	q.admit("a")
	q.admit("a")
	clk.advance(time.Hour) // would refill thousands of tokens
	for i := 0; i < 2; i++ {
		if ok, _ := q.admit("a"); !ok {
			t.Fatalf("admit %d after long idle refused", i)
		}
	}
	if ok, _ := q.admit("a"); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestQuotaTenantsIsolated(t *testing.T) {
	q, _ := newTestQuotas(QuotaConfig{Rate: 1, Burst: 1})
	if ok, _ := q.admit("a"); !ok {
		t.Fatal("tenant a refused")
	}
	if ok, _ := q.admit("b"); !ok {
		t.Fatal("tenant b throttled by tenant a's spend")
	}
	if ok, _ := q.admit("a"); ok {
		t.Fatal("tenant a's dry bucket admitted")
	}
}

func TestQuotaDisabled(t *testing.T) {
	q, _ := newTestQuotas(QuotaConfig{})
	for i := 0; i < 1000; i++ {
		if ok, _ := q.admit("a"); !ok {
			t.Fatal("disabled quota refused an admit")
		}
	}
	var nilQ *quotas
	if ok, _ := nilQ.admit("a"); !ok {
		t.Fatal("nil quotas refused an admit")
	}
}
